// Behavioral fingerprints of the swarm client variants: observable
// differences in who finishes when, mirroring the round-model ranking
// fingerprints at the piece level.
#include <gtest/gtest.h>

#include <vector>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "swarm/swarm_sim.hpp"
#include "swarming/bandwidth.hpp"

namespace {

using namespace dsa;
using namespace dsa::swarm;

/// Mean completion times per leecher over several seeds, full paper-scale
/// swarm, capacities from the Piatek distribution (sorted ascending).
std::vector<double> completion_profile(ClientVariant variant,
                                       std::size_t leechers = 50,
                                       int seeds = 5) {
  const std::vector<double> capacities =
      swarming::BandwidthDistribution::piatek().stratified_sample(leechers);
  std::vector<double> totals(leechers, 0.0);
  SwarmConfig config;
  for (int seed = 1; seed <= seeds; ++seed) {
    config.seed = static_cast<std::uint64_t>(seed);
    const auto result = run_swarm(
        std::vector<ClientVariant>(leechers, variant), capacities, config);
    for (std::size_t l = 0; l < leechers; ++l) {
      totals[l] += result.completion_time[l] >= 0.0
                       ? result.completion_time[l]
                       : static_cast<double>(config.max_ticks);
    }
  }
  for (double& t : totals) t /= seeds;
  return totals;
}

TEST(SwarmFingerprint, BitTorrentFavorsFastLeechers) {
  // Fastest-first reciprocation: completion time falls with capacity
  // (negative correlation).
  const std::vector<double> capacities =
      swarming::BandwidthDistribution::piatek().stratified_sample(50);
  const auto times = completion_profile(ClientVariant::kBitTorrent);
  EXPECT_LT(stats::pearson(times, capacities), 0.0);
}

TEST(SwarmFingerprint, BirdsSpreadsCompletionAcrossClasses) {
  // Birds clusters by class, so the fast cluster detaches early and the
  // slow majority trails: the completion-time spread (p90 - p10) under
  // Birds is at least as wide as under BitTorrent.
  const auto birds = completion_profile(ClientVariant::kBirds);
  const auto bt = completion_profile(ClientVariant::kBitTorrent);
  const double birds_spread =
      stats::percentile(birds, 0.9) - stats::percentile(birds, 0.1);
  const double bt_spread =
      stats::percentile(bt, 0.9) - stats::percentile(bt, 0.1);
  EXPECT_GT(birds_spread, bt_spread * 0.8);
}

TEST(SwarmFingerprint, SortSlowestServesSequentially) {
  // Sort-S's serve-one-at-a-time dynamic produces a far wider completion
  // spread than any parallel-sharing variant (the Fig. 10 deviation's
  // mechanism, pinned down as a regression test).
  const auto sorts = completion_profile(ClientVariant::kSortSlowest, 30, 3);
  const auto bt = completion_profile(ClientVariant::kBitTorrent, 30, 3);
  const double sorts_spread =
      stats::percentile(sorts, 0.9) - stats::percentile(sorts, 0.1);
  const double bt_spread =
      stats::percentile(bt, 0.9) - stats::percentile(bt, 0.1);
  EXPECT_GT(sorts_spread, 2.0 * bt_spread);
}

TEST(SwarmFingerprint, RandomIsInBitTorrentsLeague) {
  // Fig. 10's "Random performs as well as BitTorrent" as a regression test.
  const auto random = completion_profile(ClientVariant::kRandomRank);
  const auto bt = completion_profile(ClientVariant::kBitTorrent);
  EXPECT_LT(stats::mean(random), stats::mean(bt) * 1.1);
}

TEST(SwarmFingerprint, LoyalWhenNeededIsMixRobust) {
  // Fig. 9(a)'s flatness: Loyal-When-needed's own download times barely
  // move whether it is a 20% minority or an 80% majority.
  SwarmConfig config;
  auto loyal_mean_at = [&](std::size_t count) {
    double total = 0.0;
    for (int seed = 1; seed <= 5; ++seed) {
      config.seed = static_cast<std::uint64_t>(seed) * 101 + count;
      const auto result =
          run_mixed_swarm(ClientVariant::kLoyalWhenNeeded,
                          ClientVariant::kBitTorrent, count, 50, config);
      total += result.group_mean_time(0, count,
                                      static_cast<double>(config.max_ticks));
    }
    return total / 5.0;
  };
  const double as_minority = loyal_mean_at(10);
  const double as_majority = loyal_mean_at(40);
  EXPECT_LT(std::max(as_minority, as_majority),
            std::min(as_minority, as_majority) * 1.25);
}

}  // namespace
