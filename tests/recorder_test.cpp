// Tests for the flight recorder (obs/recorder.hpp) and the report layer
// built on top of it (report/report.hpp):
//
//  * determinism — simulation outputs are bitwise-identical with recording
//    off, on, and under concurrent runs (the recorder's core contract);
//  * canonical ordering — the saved bytes do not depend on which thread
//    flushed first, as long as run keys are unique;
//  * sampling — DSA_RECORD_STRIDE records every k-th round only;
//  * serialization — recording JSONL survives a save -> load -> save round
//    trip byte-for-byte (the schema contract `dsa_cli report` relies on);
//  * golden extraction — the event path and the in-memory twin produce the
//    same figure tables byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "report/report.hpp"
#include "swarm/swarm_sim.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/pra_dataset.hpp"
#include "swarming/simulator.hpp"
#include "util/fs.hpp"

namespace {

using namespace dsa;

/// Resets the global recorder around every test: level off, no events, no
/// context. The recorder is process-wide state, so tests must not leak
/// configuration into each other (or into other suites in this binary).
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { quiesce(); }
  void TearDown() override { quiesce(); }

  static void quiesce() {
    obs::Recorder& recorder = obs::Recorder::global();
    recorder.configure({obs::RecordLevel::kOff, 1});
    recorder.set_context("");
    recorder.reset();
  }

  static void configure(obs::RecordLevel level, std::uint32_t stride = 1) {
    obs::Recorder::global().configure({level, stride});
  }
};

/// Bitwise equality for double vectors: the determinism contract is exact
/// bits, not closeness, so compare through bit_cast (this also treats -0.0
/// vs 0.0 and NaN payloads strictly).
void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "index " << i;
  }
}

swarming::SimulationConfig round_config(swarming::SimEngine engine) {
  swarming::SimulationConfig config;
  config.rounds = 60;
  config.churn_rate = 0.02;
  config.seed = 4242;
  config.engine = engine;
  return config;
}

swarming::SimulationOutcome run_round_model(swarming::SimEngine engine,
                                            std::uint64_t seed = 4242) {
  const auto bandwidths = swarming::BandwidthDistribution::piatek();
  std::vector<swarming::ProtocolSpec> protocols;
  protocols.insert(protocols.end(), 15, swarming::bittorrent_protocol());
  protocols.insert(protocols.end(), 15,
                   swarming::loyal_when_needed_protocol());
  const std::vector<double> capacities =
      bandwidths.stratified_sample(protocols.size());
  auto config = round_config(engine);
  config.seed = seed;
  return swarming::simulate_rounds(protocols, capacities, config,
                                   &bandwidths);
}

swarm::SwarmResult run_small_swarm(std::uint64_t seed = 99) {
  swarm::SwarmConfig config;
  config.piece_count = 16;
  config.max_ticks = 4000;
  config.seed = seed;
  return swarm::run_mixed_swarm(swarm::ClientVariant::kBitTorrent,
                                swarm::ClientVariant::kBirds, 5, 10, config);
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// --- Determinism: recording must never change a result bit ---------------

TEST_F(RecorderTest, RoundModelOutputsIdenticalWithRecordingOnAndOff) {
  for (const auto engine :
       {swarming::SimEngine::kSparse, swarming::SimEngine::kDense}) {
    configure(obs::RecordLevel::kOff);
    const auto off = run_round_model(engine);

    configure(obs::RecordLevel::kFull);
    const auto full = run_round_model(engine);

    expect_bits_equal(off.peer_throughput, full.peer_throughput);
    EXPECT_EQ(off.peers_replaced, full.peers_replaced);
#if DSA_OBS_COMPILED_IN
    EXPECT_GT(obs::Recorder::global().event_count(), 0u);
#else
    EXPECT_EQ(obs::Recorder::global().event_count(), 0u);
#endif
    obs::Recorder::global().reset();
  }
}

TEST_F(RecorderTest, SwarmOutputsIdenticalWithRecordingOnAndOff) {
  configure(obs::RecordLevel::kOff);
  const auto off = run_small_swarm();

  configure(obs::RecordLevel::kFull);
  const auto full = run_small_swarm();

  expect_bits_equal(off.completion_time, full.completion_time);
  expect_bits_equal(off.uploaded_kb, full.uploaded_kb);
  expect_bits_equal(off.downloaded_kb, full.downloaded_kb);
  EXPECT_EQ(off.all_completed, full.all_completed);
#if DSA_OBS_COMPILED_IN
  EXPECT_GT(obs::Recorder::global().event_count(), 0u);
#endif
}

TEST_F(RecorderTest, ConcurrentRunsProduceTheSerialRecordingBytes) {
  // Eight runs with distinct seeds (= distinct run keys), first serially,
  // then from four threads. The canonical snapshot order must make the
  // serialized recording independent of flush interleaving, and each
  // threaded run's outputs must match its serial twin bitwise.
  constexpr std::uint64_t kSeeds[] = {11, 12, 13, 14, 15, 16, 17, 18};
  configure(obs::RecordLevel::kFull);

  std::vector<swarming::SimulationOutcome> serial(8);
  for (std::size_t i = 0; i < 8; ++i) {
    serial[i] = run_round_model(swarming::SimEngine::kSparse, kSeeds[i]);
  }
  const auto serial_events = obs::Recorder::global().snapshot();
  const std::string serial_jsonl = obs::to_recording_jsonl(
      serial_events, obs::RecordLevel::kFull, 1);
  obs::Recorder::global().reset();

  std::vector<swarming::SimulationOutcome> threaded(8);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([t, &threaded, &kSeeds] {
      for (std::size_t i = static_cast<std::size_t>(t); i < 8; i += 4) {
        threaded[i] =
            run_round_model(swarming::SimEngine::kSparse, kSeeds[i]);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const auto threaded_events = obs::Recorder::global().snapshot();
  const std::string threaded_jsonl = obs::to_recording_jsonl(
      threaded_events, obs::RecordLevel::kFull, 1);

  for (std::size_t i = 0; i < 8; ++i) {
    expect_bits_equal(serial[i].peer_throughput,
                      threaded[i].peer_throughput);
  }
  EXPECT_EQ(serial_events.size(), threaded_events.size());
  EXPECT_EQ(serial_jsonl, threaded_jsonl);
}

TEST_F(RecorderTest, SuppressScopeSilencesCapturesOnThisThread) {
  configure(obs::RecordLevel::kFull);
  {
    obs::SuppressScope suppress;
    EXPECT_TRUE(obs::SuppressScope::active());
    run_round_model(swarming::SimEngine::kSparse);
  }
  EXPECT_FALSE(obs::SuppressScope::active());
  EXPECT_EQ(obs::Recorder::global().event_count(), 0u);
}

// --- Sampling -------------------------------------------------------------

#if DSA_OBS_COMPILED_IN
TEST_F(RecorderTest, StrideRecordsEveryKthRoundOnly) {
  configure(obs::RecordLevel::kRounds, 7);
  run_round_model(swarming::SimEngine::kSparse);
  const auto events = obs::Recorder::global().snapshot();
  std::size_t round_events = 0;
  for (const obs::Event& event : events) {
    if (event.kind != obs::EventKind::kRound) continue;
    ++round_events;
    EXPECT_EQ(event.time % 7, 0u) << "round " << event.time;
  }
  // 60 rounds, stride 7 -> rounds 0, 7, ..., 56.
  EXPECT_EQ(round_events, 9u);
}

TEST_F(RecorderTest, RoundsLevelSkipsPerDecisionEvents) {
  configure(obs::RecordLevel::kRounds);
  run_round_model(swarming::SimEngine::kSparse);
  for (const obs::Event& event : obs::Recorder::global().snapshot()) {
    EXPECT_TRUE(event.kind == obs::EventKind::kRun ||
                event.kind == obs::EventKind::kRound ||
                event.kind == obs::EventKind::kPeer)
        << "unexpected kind " << obs::to_string(event.kind);
  }
}
#endif  // DSA_OBS_COMPILED_IN

// --- Serialization --------------------------------------------------------

std::vector<obs::Event> synthetic_events() {
  // One of every kind, exercising the optional-field paths: absent
  // actor/peer, empty and non-empty label/detail, a run key above 2^53
  // (must survive as a decimal string), and doubles needing exact
  // round-trip formatting.
  std::vector<obs::Event> events;
  events.push_back({.kind = obs::EventKind::kRun,
                    .run = 1,
                    .value = {{50.0, 120.0, 0.02, 1.0}},
                    .label = "round",
                    .detail = "unit test"});
  events.push_back({.kind = obs::EventKind::kRound,
                    .run = 1,
                    .time = 7,
                    .value = {{13.25, 2.0, 0.0, 0.0}}});
  events.push_back({.kind = obs::EventKind::kSelect,
                    .run = 1,
                    .time = 7,
                    .actor = 3,
                    .value = {{12.0, 4.0, 1.0, 5.0}}});
  events.push_back({.kind = obs::EventKind::kPartner,
                    .run = 1,
                    .time = 7,
                    .actor = 3,
                    .peer = 9,
                    .value = {{6.5, 1.0 / 3.0, 0.0, 0.0}}});
  events.push_back({.kind = obs::EventKind::kStranger,
                    .run = 1,
                    .time = 7,
                    .actor = 3,
                    .peer = 11,
                    .value = {{0.0, 0.0, 0.0, 0.0}}});
  events.push_back({.kind = obs::EventKind::kPeer,
                    .run = 1,
                    .actor = 0,
                    .value = {{93.0, 41.125, 0.0, 0.0}},
                    .label = "BT(r=sort,k=4)"});
  events.push_back({.kind = obs::EventKind::kPra,
                    .run = 2,
                    .actor = 2,
                    .value = {{0.875, 0.5, 0.25, 101.0}},
                    .label = "policy \"quoted\""});
  events.push_back({.kind = obs::EventKind::kChoke,
                    .run = (1ull << 60) + 3,
                    .time = 40,
                    .actor = 1,
                    .peer = 2,
                    .value = {{1.0, 0.0, 0.0, 0.0}}});
  events.push_back({.kind = obs::EventKind::kPiece,
                    .run = (1ull << 60) + 3,
                    .time = 41,
                    .actor = 2,
                    .peer = 0,
                    .value = {{5.0, 6.0, 0.0, 0.0}}});
  events.push_back({.kind = obs::EventKind::kLeecher,
                    .run = (1ull << 60) + 3,
                    .actor = 4,
                    .value = {{128.0, -1.0, 320.0, 256.0}},
                    .label = "birds"});
  events.push_back({.kind = obs::EventKind::kMixedSwarm,
                    .run = (1ull << 60) + 3,
                    .value = {{25.0, 50.0, 20000.0, 0.0}},
                    .label = "bittorrent|birds",
                    .detail = "Fig. 9(b)"});
  events.push_back({.kind = obs::EventKind::kFault,
                    .run = (1ull << 60) + 3,
                    .time = 81,
                    .actor = 3,
                    .value = {{60.0, 7.0, 0.0, 0.0}},
                    .label = "crash"});
  std::stable_sort(events.begin(), events.end(), obs::event_less);
  return events;
}

TEST_F(RecorderTest, RecordingJsonlSurvivesLoadSaveRoundTrip) {
  const std::vector<obs::Event> events = synthetic_events();
  const std::string first =
      obs::to_recording_jsonl(events, obs::RecordLevel::kFull, 3);
  const auto path =
      std::filesystem::temp_directory_path() / "dsa_recorder_roundtrip.jsonl";
  util::atomic_write(path, first);

  const report::Recording loaded = report::load_recording(path);
  EXPECT_EQ(loaded.level, obs::RecordLevel::kFull);
  EXPECT_EQ(loaded.stride, 3u);
  ASSERT_EQ(loaded.events.size(), events.size());
  const std::string second =
      obs::to_recording_jsonl(loaded.events, loaded.level, loaded.stride);
  EXPECT_EQ(first, second);
  std::filesystem::remove(path);
}

TEST_F(RecorderTest, CsvHasOneRowPerEventPlusHeader) {
  const std::vector<obs::Event> events = synthetic_events();
  const std::string csv = obs::to_recording_csv(events);
  const std::size_t lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, events.size() + 1);
  EXPECT_EQ(csv.rfind("kind,", 0), 0u);
}

TEST_F(RecorderTest, SaveWritesCanonicalBytesForEitherExtension) {
  configure(obs::RecordLevel::kRounds);
  run_round_model(swarming::SimEngine::kSparse);
  obs::Recorder& recorder = obs::Recorder::global();
  const auto dir = std::filesystem::temp_directory_path();
  recorder.save(dir / "dsa_recorder_save.jsonl");
  recorder.save(dir / "dsa_recorder_save.csv");
  const std::string jsonl = slurp(dir / "dsa_recorder_save.jsonl");
  const std::string csv = slurp(dir / "dsa_recorder_save.csv");
  EXPECT_EQ(jsonl, obs::to_recording_jsonl(recorder.snapshot(),
                                           recorder.level(),
                                           recorder.stride()));
  EXPECT_EQ(csv, obs::to_recording_csv(recorder.snapshot()));
  std::filesystem::remove(dir / "dsa_recorder_save.jsonl");
  std::filesystem::remove(dir / "dsa_recorder_save.csv");
}

TEST_F(RecorderTest, ParseRejectsUnknownLevelAndKind) {
  EXPECT_THROW((void)obs::parse_record_level("verbose"),
               std::invalid_argument);
  EXPECT_THROW((void)obs::parse_event_kind("bogus"), std::invalid_argument);
  EXPECT_EQ(obs::parse_record_level("full"), obs::RecordLevel::kFull);
  EXPECT_EQ(obs::parse_event_kind("pra"), obs::EventKind::kPra);
}

// --- Golden extraction: event path == in-memory twin ----------------------

TEST_F(RecorderTest, Fig5TablesFromEventsMatchRecordsPathByteForByte) {
  // A strided sample of real design-space protocol ids, so all three
  // stranger policies and the h = 0 singleton skip path are exercised.
  std::vector<swarming::PraRecord> records;
  std::vector<obs::Event> events;
  for (std::uint32_t id = 0; id < swarming::kProtocolCount; id += 97) {
    swarming::PraRecord rec;
    rec.protocol = id;
    rec.spec = swarming::decode_protocol(id);
    rec.raw_performance = 100.0 + id;
    rec.performance = static_cast<double>(id) / swarming::kProtocolCount;
    rec.robustness = static_cast<double>((id * 31) % 100) / 100.0;
    rec.aggressiveness = static_cast<double>(id % 7) / 7.0;
    records.push_back(rec);
    // Mirror of record_pra_events() in pra_dataset.cpp.
    events.push_back({.kind = obs::EventKind::kPra,
                      .run = id,
                      .actor = id,
                      .value = {{rec.performance, rec.robustness,
                                 rec.aggressiveness, rec.raw_performance}},
                      .label = rec.spec.describe()});
  }

  const auto from_events = report::fig5_robustness_by_policy(
      std::span<const obs::Event>(events));
  const auto from_records = report::fig5_robustness_by_policy(
      std::span<const swarming::PraRecord>(records));
  for (int p = 0; p < 3; ++p) {
    expect_bits_equal(from_events[p], from_records[p]);
    EXPECT_FALSE(from_records[p].empty());
  }
  EXPECT_EQ(report::render_fig5(from_events).text,
            report::render_fig5(from_records).text);
}

#if DSA_OBS_COMPILED_IN
TEST_F(RecorderTest, EncounterSeriesFromSwarmEventsMatchesDirectResults) {
  // Two fractions x two runs of the mixed swarm, recorded; the extractor
  // must rebuild exactly the group means the results report directly.
  configure(obs::RecordLevel::kRounds);
  obs::Recorder::global().set_context("golden");
  swarm::SwarmConfig config;
  config.piece_count = 16;
  config.max_ticks = 4000;
  const double cap_seconds = static_cast<double>(config.max_ticks);

  std::vector<double> direct_a;
  for (const std::size_t count_a : {std::size_t{3}, std::size_t{7}}) {
    for (std::uint64_t run = 0; run < 2; ++run) {
      config.seed = 500 + run * 131 + count_a;
      const auto result = swarm::run_mixed_swarm(
          swarm::ClientVariant::kBitTorrent, swarm::ClientVariant::kBirds,
          count_a, 10, config);
      direct_a.push_back(result.group_mean_time(0, count_a, cap_seconds));
    }
  }

  const auto events = obs::Recorder::global().snapshot();
  const auto series = report::encounter_series_from_events(
      std::span<const obs::Event>(events));
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].title, "golden");
  ASSERT_EQ(series[0].points.size(), 2u);
  EXPECT_EQ(series[0].points[0].count_a, 3u);
  EXPECT_EQ(series[0].points[1].count_a, 7u);
  // Mean over the two runs at each fraction, same order as `direct_a`.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(series[0].points[0].mean_a),
            std::bit_cast<std::uint64_t>((direct_a[0] + direct_a[1]) / 2.0));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(series[0].points[1].mean_a),
            std::bit_cast<std::uint64_t>((direct_a[2] + direct_a[3]) / 2.0));
}
#endif  // DSA_OBS_COMPILED_IN

// --- Histogram quantiles (obs/metrics.hpp) --------------------------------

TEST(HistogramQuantile, KnownDistributionInterpolatesInsideBuckets) {
  // 100 observations spread uniformly over (0, 10]: ten per bucket with
  // bounds 1..10. The cumulative walk puts p50 at the end of bucket 4
  // (50 of 100 observations <= 5.0) and p90 at 9.0.
  obs::Registry registry;
  const obs::Histogram h = registry.histogram(
      "lat", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  for (int i = 0; i < 100; ++i) h.observe(0.05 + i * 0.1);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hist = snap.histograms[0];
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.9), 9.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 10.0);
  // Halfway into bucket 3 (observations 30..40 span (3, 4]).
  EXPECT_DOUBLE_EQ(hist.quantile(0.35), 3.5);
}

TEST(HistogramQuantile, OverflowMassClampsToLastBoundAndEmptyIsZero) {
  obs::Registry registry;
  const obs::Histogram h = registry.histogram("ms", {1.0, 2.0});
  {
    const auto empty = registry.snapshot();
    EXPECT_DOUBLE_EQ(empty.histograms[0].quantile(0.5), 0.0);
  }
  h.observe(0.5);
  h.observe(50.0);  // overflow bucket
  h.observe(60.0);  // overflow bucket
  const auto snap = registry.snapshot();
  const auto& hist = snap.histograms[0];
  // p50 and above land in overflow mass: no upper edge, clamp to 2.0.
  EXPECT_DOUBLE_EQ(hist.quantile(0.99), 2.0);
  // p25 falls inside bucket 0: 0.75 of the way through its single
  // observation's bucket (target 0.75 of 1 observation in (0, 1]).
  EXPECT_DOUBLE_EQ(hist.quantile(0.25), 0.75);
}

TEST(HistogramQuantile, JsonlSnapshotCarriesQuantiles) {
  obs::Registry registry;
  const obs::Histogram h = registry.histogram("ms", {1.0, 10.0});
  h.observe(0.5);
  const std::string jsonl = registry.snapshot().to_jsonl();
  EXPECT_NE(jsonl.find("\"p50\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"p90\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"p99\":"), std::string::npos);
}

}  // namespace
