// Tests for the observability layer: registry concurrency, snapshot merge
// semantics, JSONL/trace output schemas, profiler hierarchy, and the
// determinism contract (instrumentation must never change a result bit).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pra.hpp"
#include "core/subspace.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "swarming/dsa_model.hpp"

namespace {

using namespace dsa;

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

// --- Registry -------------------------------------------------------------

TEST(ObsRegistry, CounterHandleIsIdempotentAndCounts) {
  obs::Registry registry;
  const obs::Counter a = registry.counter("events");
  const obs::Counter b = registry.counter("events");
  a.add(3);
  b.increment();
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("events"), 4u);
  EXPECT_EQ(snap.counter_value("missing"), 0u);
}

TEST(ObsRegistry, DefaultConstructedHandlesNoOp) {
  const obs::Counter counter;
  const obs::Gauge gauge;
  const obs::Histogram histogram;
  counter.add(7);
  gauge.set(1.0);
  histogram.observe(2.0);  // must not crash; nothing to assert beyond that
}

TEST(ObsRegistry, ConcurrentAddsFromManyThreadsMatchSerialTotal) {
  obs::Registry registry;
  const obs::Counter counter = registry.counter("hits");
  const obs::Histogram histogram = registry.histogram("lat", {1.0, 10.0});
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        counter.increment();
        histogram.observe(0.5);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("hits"),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count,
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(snap.histograms[0].buckets[0],
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(ObsRegistry, SnapshotMergesShardsWrittenByExitedThreads) {
  obs::Registry registry;
  const obs::Counter counter = registry.counter("work");
  std::thread([&counter] { counter.add(5); }).join();
  std::thread([&counter] { counter.add(7); }).join();
  counter.add(1);
  EXPECT_EQ(registry.snapshot().counter_value("work"), 13u);
}

TEST(ObsRegistry, GaugeIsLastWriteWinsAndAddAccumulates) {
  obs::Registry registry;
  const obs::Gauge rate = registry.gauge("rate");
  rate.set(2.0);
  rate.set(9.5);
  const obs::Gauge total = registry.gauge("total_kb");
  total.add(1.25);
  total.add(2.25);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauge_value("rate"), 9.5);
  EXPECT_DOUBLE_EQ(snap.gauge_value("total_kb"), 3.5);
}

TEST(ObsRegistry, HistogramBucketPlacementAndOverflow) {
  obs::Registry registry;
  const obs::Histogram h = registry.histogram("ms", {1.0, 2.0, 4.0});
  h.observe(0.5);  // bucket 0 (<= 1)
  h.observe(1.0);  // bucket 0 (inclusive upper bound)
  h.observe(3.0);  // bucket 2 (<= 4)
  h.observe(99.0);  // overflow
  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hist = snap.histograms[0];
  ASSERT_EQ(hist.buckets.size(), 4u);
  EXPECT_EQ(hist.buckets[0], 2u);
  EXPECT_EQ(hist.buckets[1], 0u);
  EXPECT_EQ(hist.buckets[2], 1u);
  EXPECT_EQ(hist.buckets[3], 1u);
  EXPECT_EQ(hist.count, 4u);
  EXPECT_DOUBLE_EQ(hist.sum, 0.5 + 1.0 + 3.0 + 99.0);
}

TEST(ObsRegistry, HistogramRejectsBadOrMismatchedBounds) {
  obs::Registry registry;
  EXPECT_THROW(registry.histogram("empty", {}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("unsorted", {2.0, 1.0}),
               std::invalid_argument);
  registry.histogram("ok", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("ok", {1.0, 3.0}), std::invalid_argument);
  registry.histogram("ok", {1.0, 2.0});  // identical bounds: fine
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsDefinitions) {
  obs::Registry registry;
  const obs::Counter counter = registry.counter("n");
  counter.add(4);
  registry.reset();
  EXPECT_EQ(registry.snapshot().counter_value("n"), 0u);
  counter.add(2);
  EXPECT_EQ(registry.snapshot().counter_value("n"), 2u);
}

// --- JSONL snapshot -------------------------------------------------------

TEST(ObsSnapshot, JsonlHasOneTypedObjectPerLine) {
  obs::Registry registry;
  registry.counter("c").add(2);
  registry.gauge("g").set(1.5);
  registry.histogram("h", {1.0}).observe(0.5);
  const std::string jsonl = registry.snapshot().to_jsonl();

  std::istringstream lines(jsonl);
  std::string line;
  std::vector<std::string> seen;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":"), std::string::npos);
    EXPECT_NE(line.find("\"name\":"), std::string::npos);
    seen.push_back(line);
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_NE(seen[0].find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(seen[0].find("\"value\":2"), std::string::npos);
  EXPECT_NE(seen[1].find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(seen[2].find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(seen[2].find("\"bounds\":[1]"), std::string::npos);
  EXPECT_NE(seen[2].find("\"buckets\":[1,0]"), std::string::npos);
}

TEST(ObsSnapshot, SaveJsonlWritesAtomically) {
  obs::Registry registry;
  registry.counter("c").increment();
  const std::filesystem::path path = temp_file("dsa_obs_snapshot.jsonl");
  registry.snapshot().save_jsonl(path);
  EXPECT_EQ(slurp(path), registry.snapshot().to_jsonl());
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  EXPECT_FALSE(std::filesystem::exists(tmp));
  std::filesystem::remove(path);
}

#if DSA_OBS_COMPILED_IN

// --- Profiler + trace (these toggle the process-global enabled flag) ------

/// Restores the global obs state so test order never matters.
struct ObsStateGuard {
  ~ObsStateGuard() {
    obs::TraceSink::global().stop_and_write();
    obs::set_enabled(false);
    obs::Profiler::global().reset();
  }
};

TEST(ObsProfiler, NestedPhasesAggregateUnderHierarchicalPaths) {
  ObsStateGuard guard;
  obs::Profiler::global().reset();
  obs::set_enabled(true);
  {
    DSA_OBS_PHASE("outer");
    { DSA_OBS_PHASE("inner"); }
    { DSA_OBS_PHASE("inner"); }
  }
  const obs::PhaseReport report = obs::Profiler::global().report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].path, "outer");
  EXPECT_EQ(report[0].count, 1u);
  EXPECT_EQ(report[1].path, "outer/inner");
  EXPECT_EQ(report[1].count, 2u);
  EXPECT_GE(report[0].total_ms, report[1].total_ms);
  EXPECT_NE(obs::Profiler::global().report_text().find("outer/inner"),
            std::string::npos);
}

TEST(ObsProfiler, DisabledPhasesRecordNothing) {
  ObsStateGuard guard;
  obs::Profiler::global().reset();
  obs::set_enabled(false);
  { DSA_OBS_PHASE("ghost"); }
  EXPECT_TRUE(obs::Profiler::global().report().empty());
}

TEST(ObsTrace, CaptureWritesWellFormedChromeTraceJson) {
  ObsStateGuard guard;
  const std::filesystem::path path = temp_file("dsa_obs_trace.json");
  obs::TraceSink::global().start(path);
  EXPECT_TRUE(obs::TraceSink::global().active());
  {
    DSA_OBS_PHASE("alpha");
    { DSA_OBS_PHASE("beta"); }
  }
  obs::TraceSink::global().instant("marker");
  const std::size_t events = obs::TraceSink::global().stop_and_write();
  EXPECT_FALSE(obs::TraceSink::global().active());
  // Two slices + one instant (the process_name metadata event rides along
  // in the file but is not counted).
  EXPECT_EQ(events, 3u);

  const std::string json = slurp(path);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha/beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"marker\""), std::string::npos);
  // Balanced braces/brackets and no trailing comma before the closers —
  // the failure modes that make chrome://tracing reject a file.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.find(",]"), std::string::npos);
  EXPECT_EQ(json.find(",}"), std::string::npos);
  std::filesystem::remove(path);
}

// --- Determinism contract -------------------------------------------------

// The whole point of the obs layer: running the same sweep with metrics,
// phases, and tracing all active must produce bitwise-identical numbers to
// running it with observability off. Uses a strided protocol subset so the
// comparison spans the design space, and 2 worker threads so the sharded
// write path is actually exercised.
TEST(ObsDeterminism, SweepIsBitwiseIdenticalWithTracingOnAndOff) {
  swarming::SimulationConfig sim;
  sim.rounds = 24;
  const swarming::SwarmingModel model(
      sim, swarming::BandwidthDistribution::piatek());
  const core::SubspaceModel subset(model, {0u, 811u, 1622u, 2433u, 3244u});
  core::PraConfig config;
  config.population = 12;
  config.performance_runs = 2;
  config.encounter_runs = 1;
  config.opponent_sample = 2;
  config.seed = 4242;
  config.threads = 2;

  obs::set_enabled(false);
  const core::PraScores baseline = core::PraEngine(subset, config).run();

  const std::filesystem::path path = temp_file("dsa_obs_determinism.json");
  core::PraScores traced;
  {
    ObsStateGuard guard;
    obs::TraceSink::global().start(path);
    traced = core::PraEngine(subset, config).run();
  }
  std::filesystem::remove(path);

  const auto expect_bitwise = [](const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 const char* what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
                std::bit_cast<std::uint64_t>(b[i]))
          << what << "[" << i << "]";
    }
  };
  expect_bitwise(baseline.raw_performance, traced.raw_performance,
                 "raw_performance");
  expect_bitwise(baseline.performance, traced.performance, "performance");
  expect_bitwise(baseline.robustness, traced.robustness, "robustness");
  expect_bitwise(baseline.aggressiveness, traced.aggressiveness,
                 "aggressiveness");
}

#endif  // DSA_OBS_COMPILED_IN

}  // namespace
