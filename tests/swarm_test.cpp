// Tests for the piece-level swarm simulator (Sec. 5 validation substrate):
// completion, determinism, piece accounting, departures, client variants,
// and the experiment helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "swarm/swarm_sim.hpp"

namespace {

using namespace dsa::swarm;

SwarmConfig small_config(std::uint64_t seed = 1) {
  SwarmConfig config;
  config.piece_count = 20;  // 20 x 64 KB keeps unit tests snappy
  config.seed = seed;
  return config;
}

std::vector<ClientVariant> uniform(std::size_t n, ClientVariant v) {
  return std::vector<ClientVariant>(n, v);
}

// ------------------------------------------------------- fundamentals ----

TEST(Swarm, AllVariantsCompleteAHomogeneousSwarm) {
  for (ClientVariant v :
       {ClientVariant::kBitTorrent, ClientVariant::kBirds,
        ClientVariant::kLoyalWhenNeeded, ClientVariant::kSortSlowest,
        ClientVariant::kRandomRank}) {
    const auto result = run_swarm(uniform(12, v),
                                  std::vector<double>(12, 80.0),
                                  small_config());
    EXPECT_TRUE(result.all_completed) << to_string(v);
    for (double t : result.completion_time) {
      EXPECT_GT(t, 0.0) << to_string(v);
    }
  }
}

TEST(Swarm, DeterministicForSameSeed) {
  const auto leechers = uniform(15, ClientVariant::kBitTorrent);
  const std::vector<double> caps(15, 60.0);
  const auto a = run_swarm(leechers, caps, small_config(9));
  const auto b = run_swarm(leechers, caps, small_config(9));
  EXPECT_EQ(a.completion_time, b.completion_time);
}

TEST(Swarm, DifferentSeedsDiffer) {
  const auto leechers = uniform(15, ClientVariant::kBitTorrent);
  const std::vector<double> caps(15, 60.0);
  const auto a = run_swarm(leechers, caps, small_config(1));
  const auto b = run_swarm(leechers, caps, small_config(2));
  EXPECT_NE(a.completion_time, b.completion_time);
}

TEST(Swarm, ValidatesInput) {
  const SwarmConfig config = small_config();
  EXPECT_THROW(run_swarm({}, {}, config), std::invalid_argument);
  EXPECT_THROW(run_swarm(uniform(2, ClientVariant::kBitTorrent), {1.0},
                         config),
               std::invalid_argument);
  EXPECT_THROW(run_swarm(uniform(1, ClientVariant::kBitTorrent), {0.0},
                         config),
               std::invalid_argument);
  SwarmConfig bad = config;
  bad.piece_count = 0;
  EXPECT_THROW(run_swarm(uniform(1, ClientVariant::kBitTorrent), {1.0}, bad),
               std::invalid_argument);
  bad = config;
  bad.rechoke_interval = 0;
  EXPECT_THROW(run_swarm(uniform(1, ClientVariant::kBitTorrent), {1.0}, bad),
               std::invalid_argument);
  EXPECT_THROW(run_mixed_swarm(ClientVariant::kBirds,
                               ClientVariant::kBitTorrent, 5, 4, config),
               std::invalid_argument);
}

TEST(Swarm, SingleLeecherIsSeederBound) {
  // One leecher served by the 128 KBps seeder: 20 pieces x 64 KB = 1280 KB
  // should take at least 1280 / 128 = 10 seconds.
  const auto result = run_swarm(uniform(1, ClientVariant::kBitTorrent),
                                {1000.0}, small_config());
  ASSERT_TRUE(result.all_completed);
  EXPECT_GE(result.completion_time[0], 10.0);
  // ... and not dramatically more (the seeder serves it continuously).
  EXPECT_LE(result.completion_time[0], 40.0);
}

TEST(Swarm, DownloadTimeRespectsFileSizeLowerBound) {
  // Nobody can finish faster than the seeder can emit the full file once.
  SwarmConfig config = small_config(3);
  const auto result = run_swarm(uniform(10, ClientVariant::kBitTorrent),
                                std::vector<double>(10, 500.0), config);
  ASSERT_TRUE(result.all_completed);
  const double file_kb =
      static_cast<double>(config.piece_count) * config.piece_size_kb;
  const double min_time = file_kb / config.seeder_capacity_kbps;
  for (double t : result.completion_time) {
    EXPECT_GE(t, min_time * 0.999);
  }
}

TEST(Swarm, FasterSwarmFinishesSooner) {
  const auto slow = run_swarm(uniform(10, ClientVariant::kBitTorrent),
                              std::vector<double>(10, 20.0), small_config(5));
  const auto fast = run_swarm(uniform(10, ClientVariant::kBitTorrent),
                              std::vector<double>(10, 200.0),
                              small_config(5));
  ASSERT_TRUE(slow.all_completed);
  ASSERT_TRUE(fast.all_completed);
  EXPECT_LT(fast.group_mean_time(0, 10, 1e9),
            slow.group_mean_time(0, 10, 1e9));
}

TEST(Swarm, MaxTicksCapMarksUnfinishedLeechers) {
  SwarmConfig config = small_config();
  config.max_ticks = 5;  // far too short to finish
  const auto result = run_swarm(uniform(8, ClientVariant::kBitTorrent),
                                std::vector<double>(8, 50.0), config);
  EXPECT_FALSE(result.all_completed);
  for (double t : result.completion_time) {
    EXPECT_LT(t, 0.0);
  }
  // Unfinished leechers count as the cap in group means.
  EXPECT_DOUBLE_EQ(result.group_mean_time(0, 8, 123.0), 123.0);
}

TEST(Swarm, GroupMeanTimeChecksRange) {
  SwarmResult result;
  result.completion_time = {10.0, 20.0, -1.0};
  EXPECT_DOUBLE_EQ(result.group_mean_time(0, 2, 100.0), 15.0);
  EXPECT_DOUBLE_EQ(result.group_mean_time(2, 3, 100.0), 100.0);
  EXPECT_THROW(result.group_mean_time(1, 1, 100.0), std::invalid_argument);
  EXPECT_THROW(result.group_mean_time(0, 4, 100.0), std::invalid_argument);
}

// ------------------------------------------------------------ variants ----

TEST(Swarm, MixedSwarmAssignsGroupsInOrder) {
  SwarmConfig config = small_config(7);
  const auto result = run_mixed_swarm(ClientVariant::kBirds,
                                      ClientVariant::kBitTorrent, 4, 12,
                                      config);
  EXPECT_EQ(result.completion_time.size(), 12u);
  EXPECT_TRUE(result.all_completed);
}

TEST(Swarm, HeterogeneousCapacitiesFavorFastPeersUnderBitTorrent) {
  // With fastest-first reciprocation, high-capacity leechers cluster with
  // each other (Legout et al.) and finish sooner on average. The effect is
  // modest in a seeder-bound swarm, so this runs at the paper's full scale
  // (50 leechers, 80-piece file) over 10 seeds.
  SwarmConfig config;
  std::vector<ClientVariant> leechers(50, ClientVariant::kBitTorrent);
  std::vector<double> caps;
  for (int i = 0; i < 25; ++i) caps.push_back(20.0);
  for (int i = 0; i < 25; ++i) caps.push_back(400.0);
  double slow_mean = 0.0, fast_mean = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    config.seed = seed;
    const auto result = run_swarm(leechers, caps, config);
    slow_mean += result.group_mean_time(0, 25, config.max_ticks);
    fast_mean += result.group_mean_time(25, 50, config.max_ticks);
  }
  EXPECT_LT(fast_mean, slow_mean);
}

TEST(Swarm, SortSlowestUsesOneSlotAndStillCompletes) {
  const auto result = run_swarm(uniform(10, ClientVariant::kSortSlowest),
                                std::vector<double>(10, 100.0),
                                small_config(13));
  EXPECT_TRUE(result.all_completed);
}

TEST(Swarm, VariantNamesAreStable) {
  EXPECT_EQ(to_string(ClientVariant::kBitTorrent), "BitTorrent");
  EXPECT_EQ(to_string(ClientVariant::kBirds), "Birds");
  EXPECT_EQ(to_string(ClientVariant::kLoyalWhenNeeded), "Loyal-When-needed");
  EXPECT_EQ(to_string(ClientVariant::kSortSlowest), "Sort-S");
  EXPECT_EQ(to_string(ClientVariant::kRandomRank), "Random");
}

class VariantPairSweep
    : public ::testing::TestWithParam<std::pair<ClientVariant, ClientVariant>> {
};

TEST_P(VariantPairSweep, MixedSwarmsComplete) {
  const auto [a, b] = GetParam();
  SwarmConfig config = small_config(17);
  const auto result = run_mixed_swarm(a, b, 6, 12, config);
  EXPECT_TRUE(result.all_completed)
      << to_string(a) << " vs " << to_string(b);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, VariantPairSweep,
    ::testing::Values(
        std::pair{ClientVariant::kBitTorrent, ClientVariant::kBirds},
        std::pair{ClientVariant::kBitTorrent,
                  ClientVariant::kLoyalWhenNeeded},
        std::pair{ClientVariant::kBirds, ClientVariant::kLoyalWhenNeeded},
        std::pair{ClientVariant::kSortSlowest, ClientVariant::kBitTorrent},
        std::pair{ClientVariant::kRandomRank, ClientVariant::kBirds}));

// ---------------------------------------------------- paper Sec. 5 shape ----

TEST(Swarm, LoyalWhenNeededNeverDoesWorseThanBitTorrentAcrossMixes) {
  // Fig. 9(a)'s qualitative claim, at reduced scale: Loyal-When-needed's
  // average download time stays within a few percent of BitTorrent's in
  // any mix.
  SwarmConfig config;  // full 80-piece file, as in the paper
  double loyal_total = 0.0, bt_total = 0.0;
  for (std::size_t count_loyal : {12u, 25u, 38u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      config.seed = seed * 31 + count_loyal;
      const auto result =
          run_mixed_swarm(ClientVariant::kLoyalWhenNeeded,
                          ClientVariant::kBitTorrent, count_loyal, 50,
                          config);
      loyal_total += result.group_mean_time(0, count_loyal, config.max_ticks);
      bt_total += result.group_mean_time(count_loyal, 50, config.max_ticks);
    }
  }
  EXPECT_LT(loyal_total, bt_total * 1.05);
}

}  // namespace
