// Unit and property tests for src/stats: descriptive statistics,
// correlation, histograms/CCDF, matrices, and OLS regression.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/matrix.hpp"
#include "stats/regression.hpp"
#include "util/rng.hpp"

namespace {

using namespace dsa::stats;

// -------------------------------------------------------- descriptive ----

TEST(Descriptive, MeanVarianceStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyAndSingletonEdges) {
  const std::vector<double> empty;
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
  EXPECT_DOUBLE_EQ(min_value(empty), 0.0);
  EXPECT_DOUBLE_EQ(max_value(empty), 0.0);
  EXPECT_DOUBLE_EQ(ci95_half_width(one), 0.0);
}

TEST(Descriptive, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 1.5), std::invalid_argument);
}

TEST(Descriptive, MinMaxNormalizeMapsToUnitInterval) {
  const std::vector<double> xs{5.0, 10.0, 7.5};
  const auto norm = min_max_normalize(xs);
  EXPECT_DOUBLE_EQ(norm[0], 0.0);
  EXPECT_DOUBLE_EQ(norm[1], 1.0);
  EXPECT_DOUBLE_EQ(norm[2], 0.5);
}

TEST(Descriptive, NormalizeConstantSampleIsZero) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  for (double v : min_max_normalize(xs)) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : standardize(xs)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Descriptive, StandardizeHasZeroMeanUnitVariance) {
  dsa::util::Rng rng(3);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.uniform(10.0, 90.0);
  const auto z = standardize(xs);
  EXPECT_NEAR(mean(z), 0.0, 1e-12);
  EXPECT_NEAR(variance(z), 1.0, 1e-9);
}

TEST(Descriptive, Ci95ShrinksWithSampleSize) {
  dsa::util::Rng rng(5);
  std::vector<double> small(10), large(1000);
  for (auto& x : small) x = rng.uniform();
  for (auto& x : large) x = rng.uniform();
  EXPECT_GT(ci95_half_width(small), ci95_half_width(large));
}

class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, PercentileIsMonotoneInQ) {
  dsa::util::Rng rng(GetParam());
  std::vector<double> xs(50);
  for (auto& x : xs) x = rng.uniform(-5.0, 5.0);
  double prev = percentile(xs, 0.0);
  for (int i = 1; i <= 20; ++i) {
    const double cur = percentile(xs, i / 20.0);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Range(1, 9));

// -------------------------------------------------------- correlation ----

TEST(Correlation, PerfectLinearRelationships) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Correlation, ConstantSampleGivesZero) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Correlation, RejectsBadInput) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(pearson(a, b), std::invalid_argument);
  EXPECT_THROW(pearson(b, b), std::invalid_argument);
  EXPECT_THROW(spearman(a, b), std::invalid_argument);
}

TEST(Correlation, SpearmanCapturesMonotoneNonlinear) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 30; ++i) {
    xs.push_back(i);
    ys.push_back(std::exp(0.3 * i));  // monotone but very non-linear
  }
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(Correlation, SpearmanHandlesTies) {
  const std::vector<double> xs{1.0, 2.0, 2.0, 3.0};
  const std::vector<double> ys{10.0, 20.0, 20.0, 30.0};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Correlation, IndependentSamplesNearZero) {
  dsa::util::Rng rng(17);
  std::vector<double> xs(2000), ys(2000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform();
    ys[i] = rng.uniform();
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.08);
}

// ---------------------------------------------------------- histogram ----

TEST(Histogram1D, CountsAndClampsOutOfRange) {
  Histogram1D h(10, 0.0, 1.0);
  h.add(0.05);
  h.add(0.15);
  h.add(0.15);
  h.add(-1.0);  // clamps into bin 0
  h.add(2.0);   // clamps into bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.4);
}

TEST(Histogram1D, BinEdgesPartitionRange) {
  Histogram1D h(4, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lower(3), 1.5);
  EXPECT_DOUBLE_EQ(h.bin_upper(3), 2.0);
  EXPECT_EQ(h.bin_of(0.999), 1u);
  EXPECT_EQ(h.bin_of(1.0), 2u);
  EXPECT_EQ(h.bin_of(2.0), 3u);  // top edge closed
}

TEST(Histogram1D, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram1D(0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Histogram1D(5, 1.0, 1.0), std::invalid_argument);
}

TEST(FrequencyGrid, RowRelativeFrequencies) {
  FrequencyGrid grid(10, 10);  // deciles x partner count
  grid.add(0.95, 1);
  grid.add(0.95, 1);
  grid.add(0.92, 2);
  grid.add(0.15, 9);
  EXPECT_EQ(grid.count(9, 1), 2u);
  EXPECT_EQ(grid.row_total(9), 3u);
  EXPECT_NEAR(grid.row_relative_frequency(9, 1), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(grid.row_relative_frequency(5, 5), 0.0);  // empty row
  EXPECT_DOUBLE_EQ(grid.row_lower(9), 0.9);
  EXPECT_DOUBLE_EQ(grid.row_upper(9), 1.0);
}

TEST(FrequencyGrid, BoundsChecking) {
  FrequencyGrid grid(2, 3);
  EXPECT_THROW(grid.add(0.5, 3), std::out_of_range);
  EXPECT_THROW(grid.count(2, 0), std::out_of_range);
  EXPECT_THROW(FrequencyGrid(0, 1), std::invalid_argument);
}

TEST(Ccdf, MatchesHandComputedValues) {
  const std::vector<double> sample{1.0, 2.0, 2.0, 3.0};
  Ccdf ccdf(sample);
  EXPECT_DOUBLE_EQ(ccdf.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ccdf.at(1.0), 0.75);   // strictly greater than 1
  EXPECT_DOUBLE_EQ(ccdf.at(2.0), 0.25);
  EXPECT_DOUBLE_EQ(ccdf.at(3.0), 0.0);
  EXPECT_THROW(Ccdf({}), std::invalid_argument);
}

TEST(Ccdf, SeriesIsMonotoneNonIncreasing) {
  dsa::util::Rng rng(23);
  std::vector<double> sample(200);
  for (auto& x : sample) x = rng.uniform();
  Ccdf ccdf(sample);
  const auto series = ccdf.series(0.0, 1.0, 21);
  ASSERT_EQ(series.size(), 21u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.front().first, 0.0);
  EXPECT_DOUBLE_EQ(series.back().first, 1.0);
}

// ------------------------------------------------------------- matrix ----

TEST(Matrix, MultiplyAndTranspose) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
  const Matrix at = a.transposed();
  EXPECT_DOUBLE_EQ(at.at(0, 1), 3.0);
}

TEST(Matrix, SolveRecoversKnownSolution) {
  const Matrix a = Matrix::from_rows({{2.0, 1.0}, {1.0, 3.0}});
  const std::vector<double> b{5.0, 10.0};
  const auto x = a.solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Matrix, SolveNeedsPivoting) {
  // Leading zero forces a row swap.
  const Matrix a = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  const auto x = a.solve(std::vector<double>{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Matrix, SingularMatrixThrows) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_THROW(a.solve(std::vector<double>{1.0, 2.0}), std::runtime_error);
  EXPECT_THROW(a.inverted(), std::runtime_error);
}

TEST(Matrix, InverseTimesSelfIsIdentity) {
  const Matrix a =
      Matrix::from_rows({{4.0, 7.0, 2.0}, {3.0, 6.0, 1.0}, {2.0, 5.0, 3.0}});
  const Matrix product = a * a.inverted();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(product.at(r, c), r == c ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Matrix, ShapeErrors) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  EXPECT_THROW(a.solve(std::vector<double>{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Matrix::from_rows({{1.0}, {1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(a.at(5, 0), std::out_of_range);
}

// --------------------------------------------------------- regression ----

TEST(Ols, RecoversCoefficientsUnderNoise) {
  dsa::util::Rng rng(29);
  OlsModel model({"x1", "x2"});
  for (int i = 0; i < 500; ++i) {
    const double x1 = rng.uniform(-1.0, 1.0);
    const double x2 = rng.uniform(-1.0, 1.0);
    const double noise = rng.uniform(-0.05, 0.05);
    model.add(std::vector<double>{x1, x2}, 1.5 - 2.0 * x1 + 0.5 * x2 + noise);
  }
  const OlsFit fit = model.fit();
  EXPECT_NEAR(fit.coefficient("(intercept)").estimate, 1.5, 0.02);
  EXPECT_NEAR(fit.coefficient("x1").estimate, -2.0, 0.02);
  EXPECT_NEAR(fit.coefficient("x2").estimate, 0.5, 0.02);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_GT(fit.adjusted_r_squared, 0.99);
  EXPECT_TRUE(fit.coefficient("x1").significant_at(0.001));
}

TEST(Ols, InsignificantRegressorDetected) {
  dsa::util::Rng rng(31);
  OlsModel model({"signal", "junk"});
  for (int i = 0; i < 400; ++i) {
    const double s = rng.uniform(-1.0, 1.0);
    const double j = rng.uniform(-1.0, 1.0);
    model.add(std::vector<double>{s, j},
              2.0 * s + rng.uniform(-1.0, 1.0));
  }
  const OlsFit fit = model.fit();
  EXPECT_TRUE(fit.coefficient("signal").significant_at(0.001));
  EXPECT_FALSE(fit.coefficient("junk").significant_at(0.001));
}

TEST(Ols, DummyVariablesMatchGroupMeans) {
  // Response = 1 for group A, 3 for group B; dummy coding with A as base.
  OlsModel model({"isB"});
  for (int i = 0; i < 10; ++i) {
    model.add(std::vector<double>{0.0}, 1.0 + (i % 2 == 0 ? 0.01 : -0.01));
    model.add(std::vector<double>{1.0}, 3.0 + (i % 2 == 0 ? 0.01 : -0.01));
  }
  const OlsFit fit = model.fit();
  EXPECT_NEAR(fit.coefficient("(intercept)").estimate, 1.0, 1e-9);
  EXPECT_NEAR(fit.coefficient("isB").estimate, 2.0, 1e-9);
}

TEST(Ols, PredictAppliesIntercept) {
  OlsModel model({"x"});
  for (int i = 0; i < 10; ++i) {
    model.add(std::vector<double>{static_cast<double>(i)}, 5.0 + 3.0 * i);
  }
  const OlsFit fit = model.fit();
  EXPECT_NEAR(fit.predict(std::vector<double>{4.0}), 17.0, 1e-9);
  EXPECT_THROW(fit.predict(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Ols, CollinearRegressorsThrow) {
  OlsModel model({"x", "x_copy"});
  for (int i = 0; i < 50; ++i) {
    const double x = i;
    model.add(std::vector<double>{x, x}, 2.0 * x);
  }
  EXPECT_THROW(model.fit(), std::runtime_error);
}

TEST(Ols, TooFewObservationsThrow) {
  OlsModel model({"a", "b", "c"});
  model.add(std::vector<double>{1.0, 2.0, 3.0}, 1.0);
  EXPECT_THROW(model.fit(), std::runtime_error);
}

TEST(Ols, WidthMismatchThrows) {
  OlsModel model({"a"});
  EXPECT_THROW(model.add(std::vector<double>{1.0, 2.0}, 0.0),
               std::invalid_argument);
}

TEST(Ols, NoInterceptRegressionThroughOrigin) {
  OlsModel model({"x"}, /*include_intercept=*/false);
  for (int i = 1; i <= 20; ++i) {
    model.add(std::vector<double>{static_cast<double>(i)}, 4.0 * i);
  }
  const OlsFit fit = model.fit();
  ASSERT_EQ(fit.coefficients.size(), 1u);
  EXPECT_NEAR(fit.coefficient("x").estimate, 4.0, 1e-9);
  EXPECT_NEAR(fit.predict(std::vector<double>{2.0}), 8.0, 1e-9);
}

TEST(Ols, UnknownCoefficientThrows) {
  OlsModel model({"x"});
  for (int i = 0; i < 5; ++i) {
    model.add(std::vector<double>{static_cast<double>(i)}, i * 1.0 + 0.1 * (i % 2));
  }
  const OlsFit fit = model.fit();
  EXPECT_THROW(fit.coefficient("nope"), std::out_of_range);
}

// ----------------------------------------------------------- bootstrap ----

TEST(Bootstrap, IntervalCoversTheTrueMean) {
  dsa::util::Rng rng(41);
  std::vector<double> sample(200);
  for (auto& x : sample) x = rng.uniform(0.0, 10.0);  // true mean 5
  const auto ci = bootstrap_mean_ci(sample);
  EXPECT_TRUE(ci.contains(5.0)) << "[" << ci.lower << ", " << ci.upper << "]";
  EXPECT_LT(ci.width(), 2.0);
  EXPECT_TRUE(ci.contains(mean(sample)));
}

TEST(Bootstrap, WiderConfidenceGivesWiderInterval) {
  dsa::util::Rng rng(43);
  std::vector<double> sample(60);
  for (auto& x : sample) x = rng.uniform();
  const auto narrow = bootstrap_mean_ci(sample, 0.80);
  const auto wide = bootstrap_mean_ci(sample, 0.99);
  EXPECT_GT(wide.width(), narrow.width());
}

TEST(Bootstrap, ShrinksWithSampleSize) {
  dsa::util::Rng rng(47);
  std::vector<double> small(20), large(500);
  for (auto& x : small) x = rng.uniform();
  for (auto& x : large) x = rng.uniform();
  EXPECT_GT(bootstrap_mean_ci(small).width(),
            bootstrap_mean_ci(large).width());
}

TEST(Bootstrap, DeterministicInSeed) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto a = bootstrap_mean_ci(sample, 0.95, 500, 7);
  const auto b = bootstrap_mean_ci(sample, 0.95, 500, 7);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(Bootstrap, CustomStatistic) {
  // 30 ordinary values plus one huge outlier: the median's CI must ignore
  // the outlier while the mean's CI is dragged upward.
  std::vector<double> sample;
  for (int i = 1; i <= 30; ++i) sample.push_back(static_cast<double>(i));
  sample.push_back(1000.0);
  const auto median_ci = bootstrap_statistic_ci(
      sample, [](std::span<const double> xs) { return percentile(xs, 0.5); });
  const auto mean_ci = bootstrap_mean_ci(sample);
  EXPECT_LT(median_ci.upper, 30.0);
  EXPECT_GT(mean_ci.upper, median_ci.upper);
}

TEST(Bootstrap, ValidatesInput) {
  const std::vector<double> sample{1.0};
  EXPECT_THROW(bootstrap_mean_ci({}), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(sample, 1.0), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(sample, 0.95, 0), std::invalid_argument);
  EXPECT_THROW(bootstrap_statistic_ci(sample, nullptr),
               std::invalid_argument);
}

TEST(NormalPValue, MatchesKnownQuantiles) {
  EXPECT_NEAR(two_sided_normal_p(0.0), 1.0, 1e-12);
  EXPECT_NEAR(two_sided_normal_p(1.959964), 0.05, 1e-4);
  EXPECT_NEAR(two_sided_normal_p(3.290527), 0.001, 1e-5);
  EXPECT_NEAR(two_sided_normal_p(-3.290527), 0.001, 1e-5);  // symmetric
}

}  // namespace
