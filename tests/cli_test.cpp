// Tests for the CLI argument parser (util/cli.hpp).
#include <gtest/gtest.h>

#include "util/cli.hpp"

namespace {

using dsa::util::CliArgs;

CliArgs parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv(tokens);
  return CliArgs::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, ParsesSubcommandAndFlags) {
  const CliArgs args = parse({"pra", "--runs", "5", "--verbose"});
  EXPECT_EQ(args.subcommand(), "pra");
  EXPECT_EQ(args.get_int("runs", 1), 5);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, EmptyCommandLine) {
  const CliArgs args = parse({});
  EXPECT_TRUE(args.subcommand().empty());
  EXPECT_EQ(args.get("x", "fallback"), "fallback");
}

TEST(CliArgs, TypedAccessors) {
  const CliArgs args = parse({"cmd", "--f", "2.5", "--s", "text", "--n", "7"});
  EXPECT_DOUBLE_EQ(args.get_double("f", 0.0), 2.5);
  EXPECT_EQ(args.get("s", ""), "text");
  EXPECT_EQ(args.get_int("n", 0), 7);
  EXPECT_DOUBLE_EQ(args.get_double("absent", 1.5), 1.5);
}

TEST(CliArgs, BadNumbersThrow) {
  const CliArgs args = parse({"cmd", "--n", "7x", "--f", "abc"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("f", 0.0), std::invalid_argument);
}

TEST(CliArgs, BooleanFlagHasNoValue) {
  const CliArgs args = parse({"cmd", "--flag"});
  EXPECT_TRUE(args.has("flag"));
  EXPECT_THROW(args.value("flag"), std::invalid_argument);
}

TEST(CliArgs, RejectsDuplicateFlags) {
  EXPECT_THROW(parse({"cmd", "--dup", "1", "--dup", "2"}),
               std::invalid_argument);
}

TEST(CliArgs, CollectsPositionals) {
  const CliArgs args = parse({"run", "spec.json", "--threads", "2", "extra"});
  EXPECT_EQ(args.subcommand(), "run");
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positional(0), "spec.json");
  EXPECT_EQ(args.get_int("threads", 0), 2);
  // Only positional 0 was read; "extra" is a stray argument.
  const auto stray = args.unconsumed_positionals();
  ASSERT_EQ(stray.size(), 1u);
  EXPECT_EQ(stray.front(), "extra");
}

TEST(CliArgs, PositionalFallback) {
  const CliArgs args = parse({"cmd"});
  EXPECT_TRUE(args.positionals().empty());
  EXPECT_EQ(args.positional(0, "default"), "default");
  EXPECT_TRUE(args.unconsumed_positionals().empty());
}

TEST(CliArgs, TokenAfterValuedFlagIsItsValueNotPositional) {
  const CliArgs args = parse({"cmd", "--name", "value", "operand"});
  EXPECT_EQ(args.get("name", ""), "value");
  ASSERT_EQ(args.positionals().size(), 1u);
  EXPECT_EQ(args.positional(0), "operand");
}

TEST(CliArgs, TracksUnconsumedFlags) {
  const CliArgs args = parse({"cmd", "--used", "1", "--typo", "2"});
  (void)args.get_int("used", 0);
  const auto unknown = args.unconsumed();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown.front(), "typo");
}

TEST(CliArgs, ValueAfterBooleanFlagBindsToNextFlag) {
  const CliArgs args = parse({"cmd", "--a", "--b", "value"});
  EXPECT_TRUE(args.has("a"));
  EXPECT_EQ(args.get("b", ""), "value");
}

TEST(HelpIndex, FindsCommandsAndAlignsList) {
  const dsa::util::HelpIndex index({
      {"run", "execute a scenario", "usage: run <spec.json>"},
      {"pl", "short name", "usage: pl"},
  });
  ASSERT_NE(index.find("run"), nullptr);
  EXPECT_EQ(index.find("run")->usage, "usage: run <spec.json>");
  EXPECT_EQ(index.find("nope"), nullptr);
  const std::string list = index.command_list();
  // Registration order preserved, names padded to a common column.
  EXPECT_EQ(list,
            "  run  execute a scenario\n"
            "  pl   short name\n");
}

}  // namespace
