// Tests for the CLI argument parser (util/cli.hpp).
#include <gtest/gtest.h>

#include "util/cli.hpp"

namespace {

using dsa::util::CliArgs;

CliArgs parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv(tokens);
  return CliArgs::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, ParsesSubcommandAndFlags) {
  const CliArgs args = parse({"pra", "--runs", "5", "--verbose"});
  EXPECT_EQ(args.subcommand(), "pra");
  EXPECT_EQ(args.get_int("runs", 1), 5);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, EmptyCommandLine) {
  const CliArgs args = parse({});
  EXPECT_TRUE(args.subcommand().empty());
  EXPECT_EQ(args.get("x", "fallback"), "fallback");
}

TEST(CliArgs, TypedAccessors) {
  const CliArgs args = parse({"cmd", "--f", "2.5", "--s", "text", "--n", "7"});
  EXPECT_DOUBLE_EQ(args.get_double("f", 0.0), 2.5);
  EXPECT_EQ(args.get("s", ""), "text");
  EXPECT_EQ(args.get_int("n", 0), 7);
  EXPECT_DOUBLE_EQ(args.get_double("absent", 1.5), 1.5);
}

TEST(CliArgs, BadNumbersThrow) {
  const CliArgs args = parse({"cmd", "--n", "7x", "--f", "abc"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("f", 0.0), std::invalid_argument);
}

TEST(CliArgs, BooleanFlagHasNoValue) {
  const CliArgs args = parse({"cmd", "--flag"});
  EXPECT_TRUE(args.has("flag"));
  EXPECT_THROW(args.value("flag"), std::invalid_argument);
}

TEST(CliArgs, RejectsMalformedInput) {
  EXPECT_THROW(parse({"cmd", "stray-value"}), std::invalid_argument);
  EXPECT_THROW(parse({"cmd", "--dup", "1", "--dup", "2"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"cmd", "--"}), std::invalid_argument);
}

TEST(CliArgs, TracksUnconsumedFlags) {
  const CliArgs args = parse({"cmd", "--used", "1", "--typo", "2"});
  (void)args.get_int("used", 0);
  const auto unknown = args.unconsumed();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown.front(), "typo");
}

TEST(CliArgs, ValueAfterBooleanFlagBindsToNextFlag) {
  const CliArgs args = parse({"cmd", "--a", "--b", "value"});
  EXPECT_TRUE(args.has("a"));
  EXPECT_EQ(args.get("b", ""), "value");
}

}  // namespace
