// Tests for src/obs/telemetry: heartbeat + time-series schemas, the
// sampler lifecycle (configure/begin_run/finish races), staleness
// classification as `dsa_cli top`/`status` see it, and the determinism
// contract — telemetry on vs off, at any thread count, on any engine,
// must never change a result bit.
#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pra.hpp"
#include "core/subspace.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "scenario/plan.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "swarm/swarm_sim.hpp"
#include "swarming/dsa_model.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace fs = std::filesystem;
using namespace dsa;

// Interval long enough that the background thread never fires during a
// test: every sample in these tests is driven explicitly via sample_now()
// or finish(), keeping the file assertions race-free.
constexpr std::uint32_t kNeverFires = 3'600'000;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<util::json::Value> read_jsonl(const fs::path& path) {
  std::ifstream in(path);
  std::vector<util::json::Value> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(util::json::parse(line, path.string()));
  }
  return lines;
}

// Restores the global telemetry/obs state a test flips on, so cases stay
// order-independent when the whole binary runs as one suite.
struct GlobalTelemetryGuard {
  ~GlobalTelemetryGuard() {
    obs::Telemetry::global().configure(obs::TelemetryOptions{});
    obs::set_enabled(false);
  }
};

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("dsa_telemetry_test_" + std::string(info->name()) + "_" +
            std::to_string(static_cast<long long>(::getpid())));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  obs::TelemetryOptions enabled_options(
      std::uint32_t interval_ms = kNeverFires) const {
    obs::TelemetryOptions options;
    options.enabled = true;
    options.interval_ms = interval_ms;
    options.dir = dir_;
    return options;
  }

  fs::path dir_;
};

// --- options / env parsing -------------------------------------------------

TEST(TelemetryOptions, EnvironmentDefaultsAreOff) {
  unsetenv("DSA_STATUS");
  unsetenv("DSA_STATUS_INTERVAL_MS");
  unsetenv("DSA_STATUS_DIR");
  const obs::TelemetryOptions options =
      obs::TelemetryOptions::from_environment();
  EXPECT_FALSE(options.enabled);
  EXPECT_EQ(options.interval_ms, 1000u);
  EXPECT_EQ(options.dir, fs::path("results"));
}

TEST(TelemetryOptions, EnvironmentParsesStrictly) {
  setenv("DSA_STATUS", "on", 1);
  setenv("DSA_STATUS_INTERVAL_MS", "250", 1);
  setenv("DSA_STATUS_DIR", "/tmp/dsa_status", 1);
  const obs::TelemetryOptions options =
      obs::TelemetryOptions::from_environment();
  EXPECT_TRUE(options.enabled);
  EXPECT_EQ(options.interval_ms, 250u);
  EXPECT_EQ(options.dir, fs::path("/tmp/dsa_status"));

  // Errors name the variable and the offending value, like every DSA_* knob.
  setenv("DSA_STATUS", "maybe", 1);
  try {
    (void)obs::TelemetryOptions::from_environment();
    FAIL() << "expected a strict-parse error";
  } catch (const std::exception& error) {
    EXPECT_NE(std::string(error.what()).find("DSA_STATUS"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("maybe"), std::string::npos);
  }
  setenv("DSA_STATUS", "on", 1);
  setenv("DSA_STATUS_INTERVAL_MS", "0", 1);
  EXPECT_THROW((void)obs::TelemetryOptions::from_environment(),
               std::runtime_error);
  setenv("DSA_STATUS_INTERVAL_MS", "junk", 1);
  EXPECT_THROW((void)obs::TelemetryOptions::from_environment(),
               std::runtime_error);

  unsetenv("DSA_STATUS");
  unsetenv("DSA_STATUS_INTERVAL_MS");
  unsetenv("DSA_STATUS_DIR");
}

TEST(TelemetryNames, SanitizeRunName) {
  EXPECT_EQ(obs::sanitize_run_name("pra_results.csv"), "pra_results.csv");
  EXPECT_EQ(obs::sanitize_run_name("a b/c:d"), "a_b_c_d");
  EXPECT_EQ(obs::sanitize_run_name(""), "run");
  EXPECT_EQ(obs::sanitize_run_name("A-Z_0.9"), "A-Z_0.9");
}

// --- heartbeat / time-series schemas ---------------------------------------

TEST_F(TelemetryTest, HeartbeatSchemaRoundTrips) {
  obs::Telemetry telemetry;
  telemetry.configure(enabled_options());

  obs::RunInfo info;
  info.name = "demo";
  info.kind = "sweep";
  info.spec_fingerprint = 0xabcdef0123456789ull;
  info.jobs_total = 10;
  info.output = "results/demo.csv";
  obs::TelemetryRun run = telemetry.begin_run(info);
  ASSERT_TRUE(run.active());

  // begin_run writes the bootstrap heartbeat immediately (seq 0).
  const fs::path heartbeat = dir_ / "demo.status.json";
  ASSERT_TRUE(fs::exists(heartbeat));
  obs::StatusFile status = obs::load_status_file(heartbeat);
  EXPECT_EQ(status.schema, 1);
  EXPECT_EQ(status.name, "demo");
  EXPECT_EQ(status.kind, "sweep");
  EXPECT_EQ(status.state, "running");
  EXPECT_EQ(status.spec_fp, "abcdef0123456789");
  EXPECT_EQ(status.pid, static_cast<std::int64_t>(::getpid()));
  EXPECT_EQ(status.total, 10u);
  EXPECT_EQ(status.output, "results/demo.csv");
  EXPECT_EQ(status.interval_ms, kNeverFires);

  run.set_phase("crunch");
  run.add_done(3);
  run.add_failed(1);
  run.init_shards({"s0", "s1", "s2"});
  run.set_shard_state(0, obs::ShardState::kDone);
  run.set_shard_state(1, obs::ShardState::kRunning);
  run.set_last_error("shard s1 wobbled");
  telemetry.sample_now();

  status = obs::load_status_file(heartbeat);
  EXPECT_EQ(status.state, "running");
  EXPECT_EQ(status.phase, "crunch");
  EXPECT_EQ(status.done, 3u);
  EXPECT_EQ(status.failed, 1u);
  EXPECT_EQ(status.last_error, "shard s1 wobbled");
  EXPECT_GE(status.seq, 1u);
  EXPECT_GT(status.timestamp_unix_ms, 0);
  ASSERT_EQ(status.shards.size(), 3u);
  EXPECT_EQ(status.shards[0].first, "s0");
  EXPECT_EQ(status.shards[0].second, "done");
  EXPECT_EQ(status.shards[1].second, "running");
  EXPECT_EQ(status.shards[2].second, "todo");
  EXPECT_EQ(status.shard_counts.at("done"), 1u);
  EXPECT_EQ(status.shard_counts.at("running"), 1u);
  EXPECT_EQ(status.shard_counts.at("todo"), 1u);
#if defined(__linux__)
  EXPECT_GT(status.rss_kb, 0u);  // /proc/self/status is available
#endif

  run.update_done(7);   // CAS-max: raises
  run.update_done(5);   // ...and never lowers
  run.finish(true);
  status = obs::load_status_file(heartbeat);
  EXPECT_EQ(status.state, "done");
  EXPECT_EQ(status.done, 7u);
  EXPECT_EQ(status.eta_sec, 0.0);
}

TEST_F(TelemetryTest, TimeseriesAppendsWithMonotoneSeq) {
  obs::Telemetry telemetry;
  telemetry.configure(enabled_options());
  obs::TelemetryRun run =
      telemetry.begin_run({.name = "series", .kind = "test"});
  ASSERT_TRUE(run.active());

  run.add_done(1);
  telemetry.sample_now();
  run.add_done(1);
  telemetry.sample_now();
  run.finish(true);

  const fs::path series = dir_ / "STATUS_series.timeseries.jsonl";
  ASSERT_TRUE(fs::exists(series));
  const std::vector<util::json::Value> lines = read_jsonl(series);
  ASSERT_GE(lines.size(), 3u);  // two explicit samples + the final one
  std::uint64_t last_seq = 0;
  for (const util::json::Value& line : lines) {
    ASSERT_EQ(line.find("type")->text, "telemetry");
    EXPECT_EQ(line.find("schema")->number, 1.0);
    EXPECT_EQ(line.find("name")->text, "series");
    const auto seq =
        static_cast<std::uint64_t>(line.find("seq")->number);
    EXPECT_GT(seq, last_seq);  // strictly increasing, never repeats
    last_seq = seq;
    ASSERT_NE(line.find("jobs_done"), nullptr);
    ASSERT_NE(line.find("timestamp_unix_ms"), nullptr);
    ASSERT_NE(line.find("counters_delta"), nullptr);
  }

  // A later run with the same name appends — the series spans restarts.
  obs::TelemetryRun second =
      telemetry.begin_run({.name = "series", .kind = "test"});
  second.finish(true);
  EXPECT_GT(read_jsonl(series).size(), lines.size());
}

#if DSA_OBS_COMPILED_IN
TEST_F(TelemetryTest, TimeseriesCountersAreDeltasNotTotals) {
  obs::Telemetry telemetry;
  telemetry.configure(enabled_options());
  const obs::Counter ticks =
      obs::Registry::global().counter("telemetry_test.ticks");

  // Pollute the counter BEFORE the run starts: the bootstrap sample must
  // absorb it so the first emitted delta covers only the run itself.
  ticks.add(1000);
  obs::TelemetryRun run =
      telemetry.begin_run({.name = "deltas", .kind = "test"});
  ticks.add(7);
  telemetry.sample_now();
  ticks.add(5);
  run.finish(true);

  const std::vector<util::json::Value> lines =
      read_jsonl(dir_ / "STATUS_deltas.timeseries.jsonl");
  ASSERT_GE(lines.size(), 2u);
  const util::json::Value* first =
      lines[0].find("counters_delta")->find("telemetry_test.ticks");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->number, 7.0);
  const util::json::Value* final_delta =
      lines.back().find("counters_delta")->find("telemetry_test.ticks");
  ASSERT_NE(final_delta, nullptr);
  EXPECT_EQ(final_delta->number, 5.0);
}
#endif  // DSA_OBS_COMPILED_IN

TEST_F(TelemetryTest, FailedRunsAndErrorsReachTheHeartbeat) {
  obs::Telemetry telemetry;
  telemetry.configure(enabled_options());
  obs::TelemetryRun run =
      telemetry.begin_run({.name = "boom", .kind = "test", .jobs_total = 2});
  run.add_done(1);
  run.add_failed(1);
  run.set_last_error("job 1 exploded");
  run.finish(false);

  const obs::StatusFile status =
      obs::load_status_file(dir_ / "boom.status.json");
  EXPECT_EQ(status.state, "failed");
  EXPECT_EQ(status.failed, 1u);
  EXPECT_EQ(status.last_error, "job 1 exploded");
  EXPECT_EQ(obs::classify_status(status), obs::RunHealth::kFailed);
}

TEST_F(TelemetryTest, DisabledTelemetryIsInertAndWritesNothing) {
  obs::Telemetry telemetry;  // never configured: disabled
  obs::TelemetryRun run =
      telemetry.begin_run({.name = "ghost", .kind = "test"});
  EXPECT_FALSE(run.active());
  run.set_phase("x");
  run.add_done(5);
  run.init_shards({"a"});
  run.set_shard_state(0, obs::ShardState::kDone);
  run.finish(true);
  telemetry.sample_now();
  EXPECT_FALSE(fs::exists(dir_ / "ghost.status.json"));
  EXPECT_TRUE(fs::is_empty(dir_));
}

// --- staleness classification ----------------------------------------------

TEST(TelemetryHealth, ClassifiesRunningStalledDeadDoneFailed) {
  obs::StatusFile status;
  status.state = "running";
  status.interval_ms = 100;
  status.timestamp_unix_ms = 1'000'000;
  status.pid = 1234;

  // Fresh heartbeat + live pid.
  EXPECT_EQ(obs::classify_status(status, 1'000'150, true),
            obs::RunHealth::kRunning);
  // Exactly 3 intervals old is still within budget; beyond it stalls.
  EXPECT_EQ(obs::classify_status(status, 1'000'300, true),
            obs::RunHealth::kRunning);
  EXPECT_EQ(obs::classify_status(status, 1'000'301, true),
            obs::RunHealth::kStalled);
  // A dead pid trumps heartbeat age (SIGKILL leaves a fresh-looking file).
  EXPECT_EQ(obs::classify_status(status, 1'000'050, false),
            obs::RunHealth::kDead);
  // Terminal states classify by the recorded state, dead pid or not.
  status.state = "done";
  EXPECT_EQ(obs::classify_status(status, 9'999'999, false),
            obs::RunHealth::kDone);
  status.state = "failed";
  EXPECT_EQ(obs::classify_status(status, 1'000'050, true),
            obs::RunHealth::kFailed);
}

TEST(TelemetryHealth, PidAliveProbe) {
  EXPECT_TRUE(obs::pid_alive(static_cast<std::int64_t>(::getpid())));
  EXPECT_FALSE(obs::pid_alive(0));
  EXPECT_FALSE(obs::pid_alive(-1));
  // Far above any real pid_max, so the probe reports ESRCH.
  EXPECT_FALSE(obs::pid_alive(0x7ffffff0));
}

TEST_F(TelemetryTest, FindStatusFilesScansDirectoriesAndAcceptsFiles) {
  const auto touch = [&](const char* name) {
    std::ofstream(dir_ / name) << "{}";
  };
  touch("b.status.json");
  touch("a.status.json");
  touch("unrelated.json");
  touch("STATUS_a.timeseries.jsonl");

  const std::vector<fs::path> found = obs::find_status_files(dir_);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].filename(), "a.status.json");  // sorted by filename
  EXPECT_EQ(found[1].filename(), "b.status.json");

  const std::vector<fs::path> single =
      obs::find_status_files(dir_ / "a.status.json");
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], dir_ / "a.status.json");

  EXPECT_TRUE(obs::find_status_files(dir_ / "missing").empty());
}

// --- lifecycle stress -------------------------------------------------------

// configure() start/stops the sampler thread while other threads register
// runs, push progress, and force samples. Nothing to assert beyond "no
// crash, no deadlock, files stay parseable" — TSan/ASan builds give this
// test its teeth.
TEST_F(TelemetryTest, ConfigureAndRunRegistrationRaceIsSafe) {
  obs::Telemetry telemetry;
  std::vector<std::thread> threads;
  // Disabled options must still point at the test dir: finish_run's
  // terminal heartbeat is unconditional, so a default-constructed dir
  // ("results") would leak race*.status.json into the working tree.
  obs::TelemetryOptions disabled;
  disabled.dir = dir_;
  threads.emplace_back([&] {
    for (int i = 0; i < 60; ++i) {
      telemetry.configure(enabled_options(1));
      telemetry.configure(disabled);
    }
    telemetry.configure(enabled_options(1));
  });
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        obs::TelemetryRun run = telemetry.begin_run(
            {.name = "race" + std::to_string(t), .kind = "stress",
             .jobs_total = 4});
        run.set_phase("spin");
        run.add_done(1);
        telemetry.sample_now();
        run.finish(i % 2 == 0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Whatever interleaving happened, every run that ever wrote a heartbeat
  // also finished, and finish_run's terminal write is unconditional (it does
  // not consult the enabled flag, and the periodic pass never deregisters a
  // run out from under it). So no file may be left saying "running" —
  // regression cover for the sampler pruning a run in the window between
  // `finished` flipping and finish_run taking the core mutex, which
  // swallowed the final done/failed heartbeat.
  for (const fs::path& path : obs::find_status_files(dir_)) {
    const obs::StatusFile status = obs::load_status_file(path);
    EXPECT_TRUE(status.state == "done" || status.state == "failed")
        << path << " state=" << status.state;
  }

  // And the sampler still works after the storm: a controlled run on the
  // re-enabled instance finishes with a terminal heartbeat.
  telemetry.configure(enabled_options());
  obs::TelemetryRun last =
      telemetry.begin_run({.name = "race0", .kind = "stress"});
  last.finish(true);
  EXPECT_EQ(obs::load_status_file(dir_ / "race0.status.json").state, "done");
  telemetry.configure(obs::TelemetryOptions{});
}

// --- determinism contract ---------------------------------------------------

core::PraScores tiny_pra(swarming::SimEngine engine, std::size_t threads) {
  swarming::SimulationConfig sim;
  sim.rounds = 24;
  sim.engine = engine;
  const swarming::SwarmingModel model(
      sim, swarming::BandwidthDistribution::piatek());
  const core::SubspaceModel subset(model, {0u, 811u, 1622u, 2433u});
  core::PraConfig config;
  config.population = 12;
  config.performance_runs = 2;
  config.encounter_runs = 1;
  config.opponent_sample = 2;
  config.seed = 4242;
  config.threads = threads;
  return core::PraEngine(subset, config).run();
}

void expect_bitwise(const std::vector<double>& a,
                    const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << what << "[" << i << "]";
  }
}

void expect_scores_bitwise(const core::PraScores& a,
                           const core::PraScores& b) {
  expect_bitwise(a.raw_performance, b.raw_performance, "raw_performance");
  expect_bitwise(a.performance, b.performance, "performance");
  expect_bitwise(a.robustness, b.robustness, "robustness");
  expect_bitwise(a.aggressiveness, b.aggressiveness, "aggressiveness");
}

// The global sampler fires every millisecond while a PRA sweep runs on
// every engine and at 1 vs 3 threads; all numbers must match the
// telemetry-off baseline bit for bit.
TEST_F(TelemetryTest, PraSweepBitwiseIdenticalWithTelemetryOnAndOff) {
  obs::set_enabled(false);
  const core::PraScores sparse_off =
      tiny_pra(swarming::SimEngine::kSparse, 1);
  const core::PraScores dense_off = tiny_pra(swarming::SimEngine::kDense, 1);
  const core::PraScores batch_off = tiny_pra(swarming::SimEngine::kBatch, 1);

  {
    GlobalTelemetryGuard guard;
    obs::Telemetry::global().configure(enabled_options(1));
    obs::TelemetryRun run = obs::Telemetry::global().begin_run(
        {.name = "pra_identity", .kind = "sweep", .jobs_total = 3});
    expect_scores_bitwise(sparse_off,
                          tiny_pra(swarming::SimEngine::kSparse, 1));
    run.add_done();
    expect_scores_bitwise(dense_off,
                          tiny_pra(swarming::SimEngine::kDense, 3));
    run.add_done();
    expect_scores_bitwise(batch_off,
                          tiny_pra(swarming::SimEngine::kBatch, 3));
    run.add_done();
    // Thread count is already exercised above (dense/batch ran on 3
    // threads against 1-thread baselines); sparse gets the same check.
    expect_scores_bitwise(sparse_off,
                          tiny_pra(swarming::SimEngine::kSparse, 3));
    run.finish(true);
  }
}

TEST_F(TelemetryTest, SwarmSimBitwiseIdenticalWithTelemetryOnAndOff) {
  swarm::SwarmConfig config;
  config.seed = 99;
  obs::set_enabled(false);
  const swarm::SwarmResult baseline = swarm::run_mixed_swarm(
      swarm::ClientVariant::kBirds, swarm::ClientVariant::kBitTorrent, 10,
      20, config);

  swarm::SwarmResult sampled;
  {
    GlobalTelemetryGuard guard;
    obs::Telemetry::global().configure(enabled_options(1));
    obs::TelemetryRun run = obs::Telemetry::global().begin_run(
        {.name = "swarm_identity", .kind = "swarm", .jobs_total = 1});
    sampled = swarm::run_mixed_swarm(swarm::ClientVariant::kBirds,
                                     swarm::ClientVariant::kBitTorrent, 10,
                                     20, config);
    run.finish(true);
  }
  expect_bitwise(baseline.completion_time, sampled.completion_time,
                 "completion_time");
  EXPECT_EQ(baseline.all_completed, sampled.all_completed);
}

// --- scenario runner integration --------------------------------------------

TEST_F(TelemetryTest, ScenarioRunEmitsHeartbeatLatencyAndIdenticalOutput) {
  const auto make_plan = [&](const std::string& name) {
    const std::string json =
        R"({"scenario": "tele-grid", "kind": "evolution", "output": ")" +
        (dir_ / name).string() +
        R"(", "params": {"menu": "bt,birds", "rounds": 40, "population": 20,
            "generations": [4, 6, 8, 10], "runs_per_generation": 1,
            "seed": 9}})";
    return scenario::expand_plan(scenario::parse_scenario_text(json));
  };
  scenario::RunOptions options;
  options.verbose = false;
  options.threads = 2;
  options.keep_manifest = true;

  obs::set_enabled(false);
  const scenario::RunReport baseline =
      scenario::run_scenario(make_plan("off.csv"), options);

  scenario::RunReport sampled;
  {
    GlobalTelemetryGuard guard;
    obs::Telemetry::global().configure(enabled_options(1));
    sampled = scenario::run_scenario(make_plan("on.csv"), options);
  }

  // Same bytes with the sampler attached or not.
  EXPECT_EQ(read_file(dir_ / "off.csv"), read_file(dir_ / "on.csv"));

  // The telemetry-on run left a terminal heartbeat with full progress.
  const obs::StatusFile status =
      obs::load_status_file(dir_ / "tele-grid.status.json");
  EXPECT_EQ(status.state, "done");
  EXPECT_EQ(status.kind, "evolution");
  EXPECT_EQ(status.done, 4u);
  EXPECT_EQ(status.total, 4u);
  ASSERT_EQ(status.shards.size(), 4u);
  for (const auto& [id, state] : status.shards) EXPECT_EQ(state, "done");

  // Per-job wall times landed in the manifest ("ms", provenance-only) and
  // in the report's latency summary.
  const std::string manifest = read_file(sampled.manifest);
  EXPECT_NE(manifest.find("\"ms\":"), std::string::npos);
  EXPECT_GT(sampled.job_ms_p50, 0.0);
  EXPECT_GE(sampled.job_ms_p90, sampled.job_ms_p50);
  EXPECT_GE(sampled.job_ms_p99, sampled.job_ms_p90);
  EXPECT_GE(sampled.slowest_job, 0);
  EXPECT_GE(sampled.slowest_ms, sampled.job_ms_p99 * 0.999);
  EXPECT_FALSE(sampled.slowest_label.empty());
  // The baseline run records latencies too (telemetry gates sampling, not
  // the manifest field).
  EXPECT_GT(baseline.job_ms_p50, 0.0);
}

}  // namespace
