// Tests for src/core: generic design spaces, the PRA engine (exercised on a
// fully deterministic toy model so every score is predictable), subspace
// views, seed derivation, and the heuristic search.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/design_space.hpp"
#include "core/model.hpp"
#include "core/pra.hpp"
#include "core/search.hpp"
#include "core/subspace.hpp"

namespace {

using namespace dsa::core;

// --------------------------------------------------------- DesignSpace ----

TEST(DesignSpace, SizeIsProductOfLevels) {
  DesignSpace space;
  space.add_dimension("a", {"x", "y"});
  space.add_dimension("b", {"1", "2", "3"});
  space.add_dimension("c", {"p", "q", "r", "s"});
  EXPECT_EQ(space.size(), 24u);
  EXPECT_EQ(space.dimension_count(), 3u);
}

TEST(DesignSpace, EncodeDecodeRoundTripsWholeSpace) {
  DesignSpace space;
  space.add_dimension("a", {"x", "y"});
  space.add_dimension("b", {"1", "2", "3"});
  space.add_dimension("c", {"p", "q"});
  for (std::uint64_t id = 0; id < space.size(); ++id) {
    const auto levels = space.decode(id);
    EXPECT_EQ(space.encode(levels), id);
  }
}

TEST(DesignSpace, DescribeNamesEveryDimension) {
  DesignSpace space;
  space.add_dimension("Selection", {"Random", "Best"});
  space.add_dimension("Periodicity", {"Slow", "Fast"});
  const std::string text = space.describe(3);
  EXPECT_EQ(text, "Selection=Best, Periodicity=Fast");
}

TEST(DesignSpace, ErrorsOnBadInput) {
  DesignSpace space;
  EXPECT_THROW(space.add_dimension("empty", {}), std::invalid_argument);
  space.add_dimension("a", {"x", "y"});
  EXPECT_THROW(space.decode(2), std::out_of_range);
  const std::vector<std::size_t> too_many{0, 0};
  EXPECT_THROW(space.encode(too_many), std::invalid_argument);
  const std::vector<std::size_t> bad_level{5};
  EXPECT_THROW(space.encode(bad_level), std::invalid_argument);
}

TEST(DesignSpace, EmptySpaceHasSizeOne) {
  DesignSpace space;
  EXPECT_EQ(space.size(), 1u);
}

// ------------------------------------------------------------ ToyModel ----

/// Deterministic domain: protocol i has strength s_i; groups score their own
/// strength regardless of mix, so tournament outcomes are exactly the
/// strength ordering.
class ToyModel final : public EncounterModel {
 public:
  explicit ToyModel(std::vector<double> strengths)
      : strengths_(std::move(strengths)) {}

  [[nodiscard]] std::uint32_t protocol_count() const override {
    return static_cast<std::uint32_t>(strengths_.size());
  }
  [[nodiscard]] std::string protocol_name(std::uint32_t id) const override {
    return "toy-" + std::to_string(id);
  }
  [[nodiscard]] double homogeneous_utility(std::uint32_t p, std::size_t,
                                           std::uint64_t) const override {
    ++homogeneous_calls;
    return strengths_.at(p);
  }
  [[nodiscard]] std::pair<double, double> mixed_utilities(
      std::uint32_t a, std::uint32_t b, std::size_t count_a,
      std::size_t count_b, std::uint64_t) const override {
    last_count_a = count_a;
    last_count_b = count_b;
    return {strengths_.at(a), strengths_.at(b)};
  }

  mutable std::atomic<std::size_t> homogeneous_calls{0};
  mutable std::atomic<std::size_t> last_count_a{0};
  mutable std::atomic<std::size_t> last_count_b{0};

 private:
  std::vector<double> strengths_;
};

// ----------------------------------------------------------- PraEngine ----

TEST(PraEngine, PerformanceIsNormalizedStrength) {
  ToyModel model({10.0, 40.0, 20.0, 0.0});
  PraConfig config;
  config.performance_runs = 2;
  config.encounter_runs = 1;
  const PraScores scores = PraEngine(model, config).run();
  ASSERT_EQ(scores.performance.size(), 4u);
  EXPECT_DOUBLE_EQ(scores.performance[0], 0.25);
  EXPECT_DOUBLE_EQ(scores.performance[1], 1.0);
  EXPECT_DOUBLE_EQ(scores.performance[2], 0.5);
  EXPECT_DOUBLE_EQ(scores.performance[3], 0.0);
  EXPECT_DOUBLE_EQ(scores.raw_performance[1], 40.0);
}

TEST(PraEngine, TournamentWinRatesFollowStrengthOrder) {
  ToyModel model({10.0, 40.0, 20.0, 30.0});
  PraConfig config;
  config.performance_runs = 1;
  config.encounter_runs = 3;
  const PraScores scores = PraEngine(model, config).run();
  // Protocol 1 beats all 3 others; protocol 0 beats none.
  EXPECT_DOUBLE_EQ(scores.robustness[1], 1.0);
  EXPECT_DOUBLE_EQ(scores.robustness[0], 0.0);
  EXPECT_NEAR(scores.robustness[2], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(scores.robustness[3], 2.0 / 3.0, 1e-12);
  // With strength-only outcomes Aggressiveness equals Robustness.
  EXPECT_EQ(scores.robustness, scores.aggressiveness);
}

TEST(PraEngine, TiesCountAsLosses) {
  ToyModel model({5.0, 5.0});
  PraConfig config;
  config.performance_runs = 1;
  config.encounter_runs = 2;
  const auto robustness = PraEngine(model, config).tournament(0.5);
  EXPECT_DOUBLE_EQ(robustness[0], 0.0);
  EXPECT_DOUBLE_EQ(robustness[1], 0.0);
}

TEST(PraEngine, MinoritySplitUsesRequestedFraction) {
  ToyModel model({1.0, 2.0});
  PraConfig config;
  config.population = 50;
  config.performance_runs = 1;
  config.encounter_runs = 1;
  config.minority_fraction = 0.1;
  PraEngine engine(model, config);
  (void)engine.tournament(0.1);
  // 10% of 50 = 5 peers run Pi.
  EXPECT_EQ(model.last_count_a.load(), 5u);
  EXPECT_EQ(model.last_count_b.load(), 45u);
  (void)engine.tournament(0.9);
  EXPECT_EQ(model.last_count_a.load(), 45u);
  EXPECT_EQ(model.last_count_b.load(), 5u);
}

TEST(PraEngine, SplitNeverEmptiesAGroup) {
  ToyModel model({1.0, 2.0});
  PraConfig config;
  config.population = 4;
  config.performance_runs = 1;
  config.encounter_runs = 1;
  PraEngine engine(model, config);
  (void)engine.tournament(0.001);  // would round to 0 without clamping
  EXPECT_EQ(model.last_count_a.load(), 1u);
  (void)engine.tournament(0.999);  // would round to population
  EXPECT_EQ(model.last_count_a.load(), 3u);
}

TEST(PraEngine, OpponentSamplingPreservesExtremes) {
  std::vector<double> strengths(40);
  std::iota(strengths.begin(), strengths.end(), 1.0);
  ToyModel model(strengths);
  PraConfig config;
  config.performance_runs = 1;
  config.encounter_runs = 1;
  config.opponent_sample = 7;
  const auto robustness = PraEngine(model, config).tournament(0.5);
  EXPECT_DOUBLE_EQ(robustness.back(), 1.0);   // strongest beats any sample
  EXPECT_DOUBLE_EQ(robustness.front(), 0.0);  // weakest loses to any sample
}

TEST(PraEngine, ProgressCallbackCoversAllProtocols) {
  ToyModel model({1.0, 2.0, 3.0});
  PraConfig config;
  config.performance_runs = 1;
  config.encounter_runs = 1;
  std::atomic<std::size_t> final_done{0};
  config.progress = [&](std::size_t done, std::size_t total) {
    EXPECT_LE(done, total);
    final_done = done;
  };
  (void)PraEngine(model, config).raw_performance();
  EXPECT_EQ(final_done.load(), 3u);
}

TEST(PraEngine, RejectsDegenerateConfigs) {
  ToyModel model({1.0, 2.0});
  PraConfig config;
  config.population = 1;
  EXPECT_THROW(PraEngine(model, config), std::invalid_argument);
  config = PraConfig{};
  config.performance_runs = 0;
  EXPECT_THROW(PraEngine(model, config), std::invalid_argument);
  config = PraConfig{};
  config.minority_fraction = 1.0;
  EXPECT_THROW(PraEngine(model, config), std::invalid_argument);
  ToyModel tiny({1.0});
  EXPECT_THROW(PraEngine(tiny, PraConfig{}), std::invalid_argument);
  PraEngine ok(model, PraConfig{});
  EXPECT_THROW(ok.tournament(0.0), std::invalid_argument);
  EXPECT_THROW(ok.tournament(1.0), std::invalid_argument);
}

TEST(DeriveSeed, DistinguishesEveryCoordinate) {
  const auto base = derive_seed(1, 2, 3, 4);
  EXPECT_EQ(base, derive_seed(1, 2, 3, 4));
  EXPECT_NE(base, derive_seed(2, 2, 3, 4));
  EXPECT_NE(base, derive_seed(1, 3, 3, 4));
  EXPECT_NE(base, derive_seed(1, 2, 4, 4));
  EXPECT_NE(base, derive_seed(1, 2, 3, 5));
}

// ------------------------------------------------------- SubspaceModel ----

TEST(SubspaceModel, RemapsIdsToBaseSpace) {
  ToyModel base({10.0, 20.0, 30.0, 40.0});
  SubspaceModel subset(base, {3, 1});
  EXPECT_EQ(subset.protocol_count(), 2u);
  EXPECT_DOUBLE_EQ(subset.homogeneous_utility(0, 10, 1), 40.0);
  EXPECT_DOUBLE_EQ(subset.homogeneous_utility(1, 10, 1), 20.0);
  EXPECT_EQ(subset.member(0), 3u);
  const auto [a, b] = subset.mixed_utilities(0, 1, 5, 5, 1);
  EXPECT_DOUBLE_EQ(a, 40.0);
  EXPECT_DOUBLE_EQ(b, 20.0);
  EXPECT_EQ(subset.protocol_name(0), "toy-3");
}

TEST(SubspaceModel, WorksInsidePraEngine) {
  ToyModel base({10.0, 20.0, 30.0, 40.0});
  SubspaceModel subset(base, {0, 3});
  PraConfig config;
  config.performance_runs = 1;
  config.encounter_runs = 1;
  const PraScores scores = PraEngine(subset, config).run();
  EXPECT_DOUBLE_EQ(scores.performance[0], 0.25);
  EXPECT_DOUBLE_EQ(scores.robustness[1], 1.0);
}

TEST(SubspaceModel, RejectsBadMembers) {
  ToyModel base({1.0, 2.0});
  EXPECT_THROW(SubspaceModel(base, {0}), std::invalid_argument);
  EXPECT_THROW(SubspaceModel(base, {0, 2}), std::invalid_argument);
  EXPECT_THROW(SubspaceModel(base, {0, 0}), std::invalid_argument);
  SubspaceModel ok(base, {0, 1});
  EXPECT_THROW(ok.member(5), std::out_of_range);
  EXPECT_THROW(ok.homogeneous_utility(2, 10, 1), std::out_of_range);
}

// ----------------------------------------------------- HeuristicSearch ----

TEST(HeuristicSearch, FindsTheStrongestProtocol) {
  std::vector<double> strengths(60);
  std::iota(strengths.begin(), strengths.end(), 1.0);
  ToyModel model(strengths);
  SearchConfig config;
  config.restarts = 3;
  config.steps_per_restart = 60;
  NeighborFn neighbor = [&model](std::uint32_t current, dsa::util::Rng& rng) {
    std::uint32_t next;
    do {
      next = static_cast<std::uint32_t>(rng.below(model.protocol_count()));
    } while (next == current);
    return next;
  };
  HeuristicSearch search(model, neighbor, config);
  const SearchResult result = search.run();
  EXPECT_EQ(result.best_protocol, 59u);
  EXPECT_GT(result.best_objective, 0.9);
  EXPECT_GE(result.evaluations, 2u);
  ASSERT_FALSE(result.trajectory.empty());
  // Trajectory objectives improve within each climb's appended entries.
  EXPECT_EQ(result.trajectory.back().first, result.best_protocol);
}

TEST(HeuristicSearch, EvaluatesFarFewerProtocolsThanExhaustive) {
  std::vector<double> strengths(500);
  std::iota(strengths.begin(), strengths.end(), 1.0);
  ToyModel model(strengths);
  SearchConfig config;
  config.restarts = 2;
  config.steps_per_restart = 30;
  HeuristicSearch search(
      model,
      [&model](std::uint32_t, dsa::util::Rng& rng) {
        return static_cast<std::uint32_t>(rng.below(model.protocol_count()));
      },
      config);
  const SearchResult result = search.run();
  EXPECT_LT(result.evaluations, 100u);
}

TEST(HeuristicSearch, ObjectiveIsMemoized) {
  ToyModel model({1.0, 2.0, 3.0});
  SearchConfig config;
  HeuristicSearch search(
      model,
      [](std::uint32_t, dsa::util::Rng&) { return std::uint32_t{0}; },
      config);
  (void)search.objective(2);
  const auto calls_after_first = model.homogeneous_calls.load();
  (void)search.objective(2);
  EXPECT_EQ(model.homogeneous_calls.load(), calls_after_first);
}

TEST(HeuristicSearch, ValidatesConfiguration) {
  ToyModel model({1.0, 2.0});
  SearchConfig config;
  EXPECT_THROW(HeuristicSearch(model, nullptr, config),
               std::invalid_argument);
  NeighborFn neighbor = [](std::uint32_t, dsa::util::Rng&) {
    return std::uint32_t{0};
  };
  config.restarts = 0;
  EXPECT_THROW(HeuristicSearch(model, neighbor, config),
               std::invalid_argument);
  config = SearchConfig{};
  config.performance_weight = 1.5;
  EXPECT_THROW(HeuristicSearch(model, neighbor, config),
               std::invalid_argument);
  config = SearchConfig{};
  config.reference_protocol = 9;
  EXPECT_THROW(HeuristicSearch(model, neighbor, config),
               std::invalid_argument);
}

TEST(HeuristicSearch, BadNeighborIsReported) {
  ToyModel model({1.0, 2.0});
  SearchConfig config;
  HeuristicSearch search(
      model,
      [](std::uint32_t, dsa::util::Rng&) { return std::uint32_t{99}; },
      config);
  EXPECT_THROW(search.run(), std::out_of_range);
}

}  // namespace
