// Cross-library smoke test: every subsystem links and performs a minimal
// end-to-end operation. Detailed behavior is covered by the per-module test
// binaries.
#include <gtest/gtest.h>

#include "core/pra.hpp"
#include "gametheory/expected_wins.hpp"
#include "gametheory/payoff.hpp"
#include "stats/regression.hpp"
#include "swarm/swarm_sim.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/protocol.hpp"
#include "util/rng.hpp"

namespace {

TEST(Smoke, ProtocolSpaceRoundTrips) {
  for (std::uint32_t id : {0u, 1u, 1234u, dsa::swarming::kProtocolCount - 1}) {
    const auto spec = dsa::swarming::decode_protocol(id);
    EXPECT_EQ(dsa::swarming::encode_protocol(spec), id);
  }
}

TEST(Smoke, BitTorrentDilemmaHasDictatorEquilibrium) {
  const auto game = dsa::gametheory::bittorrent_dilemma(100.0, 20.0);
  EXPECT_TRUE(game.is_nash(dsa::gametheory::Action::kDefect,
                           dsa::gametheory::Action::kCooperate));
}

TEST(Smoke, AppendixInvasionDirections) {
  dsa::gametheory::ClassSetup setup;
  setup.peers_above = 10;
  setup.peers_below = 10;
  setup.peers_same = 10;
  setup.regular_slots = 4;
  EXPECT_TRUE(dsa::gametheory::birds_invades_bittorrent(setup)
                  .invader_outperforms);
  EXPECT_FALSE(dsa::gametheory::bittorrent_invades_birds(setup)
                   .invader_outperforms);
}

TEST(Smoke, RoundSimulatorProducesThroughput) {
  dsa::swarming::SimulationConfig config;
  config.rounds = 50;
  const double throughput = dsa::swarming::run_homogeneous_throughput(
      dsa::swarming::bittorrent_protocol(), 20, config,
      dsa::swarming::BandwidthDistribution::piatek());
  EXPECT_GT(throughput, 0.0);
}

TEST(Smoke, SwarmSimulatorCompletes) {
  dsa::swarm::SwarmConfig config;
  config.seed = 3;
  std::vector<dsa::swarm::ClientVariant> leechers(
      10, dsa::swarm::ClientVariant::kBitTorrent);
  std::vector<double> capacities(10, 100.0);
  const auto result = dsa::swarm::run_swarm(leechers, capacities, config);
  EXPECT_TRUE(result.all_completed);
}

TEST(Smoke, OlsRecoversALine) {
  dsa::stats::OlsModel model({"x"});
  for (int i = 0; i < 20; ++i) {
    const double x = i;
    model.add(std::vector<double>{x}, 3.0 + 2.0 * x);
  }
  const auto fit = model.fit();
  EXPECT_NEAR(fit.coefficient("(intercept)").estimate, 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficient("x").estimate, 2.0, 1e-9);
}

}  // namespace
