// Tests for the gossip actualization domain (src/gossip): the Sec. 3.1
// design space, dissemination mechanics, and PRA interoperability.
#include <gtest/gtest.h>

#include <vector>

#include "core/pra.hpp"
#include "core/subspace.hpp"
#include "gossip/gossip_model.hpp"

namespace {

using namespace dsa;
using namespace dsa::gossip;

std::uint32_t protocol_of(Selection s, Periodicity p, Filtering f, Reply r) {
  const core::DesignSpace space = gossip_space();
  const std::vector<std::size_t> levels{
      static_cast<std::size_t>(s), static_cast<std::size_t>(p),
      static_cast<std::size_t>(f), static_cast<std::size_t>(r)};
  return static_cast<std::uint32_t>(space.encode(levels));
}

TEST(GossipSpace, HasThePaperSketchedDimensions) {
  const core::DesignSpace space = gossip_space();
  EXPECT_EQ(space.size(), 48u);
  EXPECT_EQ(space.dimension_count(), 4u);
  EXPECT_EQ(space.dimension(0).name, "Selection");
  EXPECT_EQ(space.dimension(3).levels.size(), 3u);
}

TEST(GossipModel, ImplementsTheEncounterInterface) {
  const GossipModel model;
  EXPECT_EQ(model.protocol_count(), 48u);
  EXPECT_NE(model.protocol_name(0).find("Selection=Random"),
            std::string::npos);
}

TEST(GossipModel, DeterministicAndSeedSensitive) {
  const GossipModel model;
  const auto protocol =
      protocol_of(kRandom, kFast, kNewest, kRespond);
  EXPECT_DOUBLE_EQ(model.homogeneous_utility(protocol, 20, 5),
                   model.homogeneous_utility(protocol, 20, 5));
  EXPECT_NE(model.homogeneous_utility(protocol, 20, 5),
            model.homogeneous_utility(protocol, 20, 6));
}

TEST(GossipModel, RespondersOutLearnIgnorers) {
  // Within a mixed population, replying peers end up learning more than
  // peers that take and never give back (the partners they exploit stop
  // being useful sources for them via Best/Loyal selection).
  const GossipModel model;
  const auto responder = protocol_of(kBest, kFast, kNewest, kRespond);
  const auto ignorer = protocol_of(kBest, kFast, kNewest, kIgnore);
  const auto [resp, ign] = model.mixed_utilities(responder, ignorer, 15, 15, 3);
  EXPECT_GT(resp, 0.0);
  // A homogeneous responder population beats a homogeneous ignorer one.
  EXPECT_GT(model.homogeneous_utility(responder, 30, 3),
            model.homogeneous_utility(ignorer, 30, 3));
  (void)ign;
}

TEST(GossipModel, DroppersLearnNothing) {
  const GossipModel model;
  const auto dropper =
      protocol_of(kRandom, kFast, kNewest, kDropAndIgnore);
  // Every pushed item is discarded immediately: utility ~0.
  EXPECT_LT(model.homogeneous_utility(dropper, 20, 7), 0.05);
}

TEST(GossipModel, FastGossipersLearnMoreThanSlowOnes) {
  const GossipModel model;
  const auto fast = protocol_of(kRandom, kFast, kNewest, kRespond);
  const auto slow = protocol_of(kRandom, kSlow, kNewest, kRespond);
  EXPECT_GT(model.homogeneous_utility(fast, 30, 9),
            model.homogeneous_utility(slow, 30, 9));
}

TEST(GossipModel, NewestFilteringBeatsRandomFiltering) {
  // Pushing the freshest items transfers more news per exchange than a
  // random pick from one's whole (mostly stale) database.
  const GossipModel model;
  const auto newest = protocol_of(kRandom, kFast, kNewest, kRespond);
  const auto random_pick =
      protocol_of(kRandom, kFast, kRandomPick, kRespond);
  double newest_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    newest_total += model.homogeneous_utility(newest, 30, seed);
    random_total += model.homogeneous_utility(random_pick, 30, seed);
  }
  EXPECT_GT(newest_total, random_total);
}

TEST(GossipModel, ValidatesInput) {
  const GossipModel model;
  EXPECT_THROW(model.simulate({}, 1), std::invalid_argument);
  EXPECT_THROW(model.simulate({0}, 1), std::invalid_argument);
  EXPECT_THROW(model.simulate({0, 99}, 1), std::out_of_range);
  EXPECT_THROW(GossipModel(GossipConfig{0, 5}), std::invalid_argument);
}

TEST(GossipModel, WorksInsideThePraEngine) {
  // The whole point: the same PRA machinery runs on the gossip domain.
  const GossipModel model;
  const core::SubspaceModel subset(
      model, {protocol_of(kBest, kFast, kNewest, kRespond),
              protocol_of(kBest, kFast, kNewest, kIgnore),
              protocol_of(kRandom, kSlow, kRandomPick, kDropAndIgnore)});
  core::PraConfig config;
  config.population = 24;
  config.performance_runs = 2;
  config.encounter_runs = 2;
  const core::PraScores scores = core::PraEngine(subset, config).run();
  // The responder dominates the dropper on every measure.
  EXPECT_GT(scores.performance[0], scores.performance[2]);
  EXPECT_GT(scores.robustness[0], scores.robustness[2]);
}

}  // namespace
