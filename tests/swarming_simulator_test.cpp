// Behavioral tests of the Sec. 4.3.1 round-based simulator — the properties
// the paper's results depend on: bootstrap via strangers, Prop Share's
// bootstrap failure without them, freerider collapse, the Sort-Slowest
// effect, churn, and encounter mechanics.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "fault/fault_process.hpp"
#include "swarming/bandwidth.hpp"
#include "swarming/batch_engine.hpp"
#include "swarming/protocol.hpp"
#include "swarming/simulator.hpp"

namespace {

using namespace dsa::swarming;

const BandwidthDistribution& piatek() {
  static const BandwidthDistribution dist = BandwidthDistribution::piatek();
  return dist;
}

SimulationConfig quick(std::uint64_t seed = 1, std::size_t rounds = 150) {
  SimulationConfig config;
  config.rounds = rounds;
  config.seed = seed;
  return config;
}

ProtocolSpec make(StrangerPolicy sp, int h, CandidateWindow w,
                  RankingFunction rank, int k, AllocationPolicy alloc) {
  ProtocolSpec spec;
  spec.stranger_policy = sp;
  spec.stranger_slots = static_cast<std::uint8_t>(h);
  spec.window = w;
  spec.ranking = rank;
  spec.partner_slots = static_cast<std::uint8_t>(k);
  spec.allocation = alloc;
  return spec;
}

// ------------------------------------------------------- fundamentals ----

TEST(RoundSim, DeterministicForSameSeed) {
  const auto a = run_homogeneous_throughput(bittorrent_protocol(), 30,
                                            quick(42), piatek());
  const auto b = run_homogeneous_throughput(bittorrent_protocol(), 30,
                                            quick(42), piatek());
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(RoundSim, DifferentSeedsDiffer) {
  const auto a = run_homogeneous_throughput(bittorrent_protocol(), 30,
                                            quick(1), piatek());
  const auto b = run_homogeneous_throughput(bittorrent_protocol(), 30,
                                            quick(2), piatek());
  EXPECT_NE(a, b);
}

TEST(RoundSim, ValidatesInput) {
  const SimulationConfig config = quick();
  EXPECT_THROW(simulate_rounds({}, {}, config), std::invalid_argument);
  EXPECT_THROW(
      simulate_rounds({bittorrent_protocol()}, {1.0, 2.0}, config),
      std::invalid_argument);
  SimulationConfig zero_rounds = quick();
  zero_rounds.rounds = 0;
  EXPECT_THROW(simulate_rounds({bittorrent_protocol()}, {10.0}, zero_rounds),
               std::invalid_argument);
  SimulationConfig churny = quick();
  churny.churn_rate = 0.1;
  EXPECT_THROW(simulate_rounds({bittorrent_protocol()}, {10.0}, churny,
                               /*churn_source=*/nullptr),
               std::invalid_argument);
  EXPECT_THROW(run_homogeneous_throughput(bittorrent_protocol(), 0, config,
                                          piatek()),
               std::invalid_argument);
  EXPECT_THROW(run_encounter(bittorrent_protocol(), birds_protocol(), 0, 5,
                             config, piatek()),
               std::invalid_argument);
}

TEST(RoundSim, ThroughputNeverExceedsOfferedCapacity) {
  // Received bandwidth is conserved: population mean throughput cannot
  // exceed mean upload capacity.
  const std::vector<double> caps = piatek().stratified_sample(50);
  double cap_mean = 0.0;
  for (double c : caps) cap_mean += c;
  cap_mean /= 50.0;
  const double throughput = run_homogeneous_throughput(
      bittorrent_protocol(), 50, quick(5), piatek());
  EXPECT_LE(throughput, cap_mean * 1.0001);
  EXPECT_GT(throughput, 0.0);
}

TEST(RoundSim, BitTorrentUsesNearlyAllCapacityInSteadyState) {
  // With Equal Split and everyone running BT, every opened slot carries
  // bandwidth, so population throughput should be close to mean capacity.
  const std::vector<double> caps = piatek().stratified_sample(50);
  double cap_mean = 0.0;
  for (double c : caps) cap_mean += c;
  cap_mean /= 50.0;
  const double throughput = run_homogeneous_throughput(
      bittorrent_protocol(), 50, quick(9, 300), piatek());
  EXPECT_GT(throughput, 0.8 * cap_mean);
}

TEST(RoundSim, GroupMeanChecksRange) {
  SimulationOutcome outcome;
  outcome.peer_throughput = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(outcome.group_mean(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(outcome.group_mean(2, 4), 3.5);
  EXPECT_DOUBLE_EQ(outcome.population_mean(), 2.5);
  EXPECT_THROW(outcome.group_mean(2, 2), std::invalid_argument);
  EXPECT_THROW(outcome.group_mean(0, 9), std::invalid_argument);
}

// ---------------------------------------------- paper-critical behavior ----

TEST(RoundSim, TotalFreeridersReceiveAlmostNothingFromEachOther) {
  // Freeride allocation + Defect strangers: nobody ever uploads a byte.
  const ProtocolSpec freerider =
      make(StrangerPolicy::kDefect, 1, CandidateWindow::kTft,
           RankingFunction::kFastest, 4, AllocationPolicy::kFreeride);
  const double throughput =
      run_homogeneous_throughput(freerider, 50, quick(3), piatek());
  EXPECT_DOUBLE_EQ(throughput, 0.0);
}

TEST(RoundSim, PropShareWithDefectStrangersFailsToBootstrap) {
  // The paper's bootstrap hazard: Prop Share never seeds cooperation when
  // strangers get nothing (Sec. 4.4).
  const ProtocolSpec spec =
      make(StrangerPolicy::kDefect, 2, CandidateWindow::kTft,
           RankingFunction::kSlowest, 1, AllocationPolicy::kPropShare);
  const double throughput =
      run_homogeneous_throughput(spec, 50, quick(4), piatek());
  EXPECT_DOUBLE_EQ(throughput, 0.0);
}

TEST(RoundSim, PropShareWithWhenNeededStrangersBootstraps) {
  // ... while the When-needed stranger policy is the paper's lightweight
  // bootstrapping alternative.
  const ProtocolSpec spec =
      make(StrangerPolicy::kWhenNeeded, 2, CandidateWindow::kTft,
           RankingFunction::kFastest, 7, AllocationPolicy::kPropShare);
  const double throughput =
      run_homogeneous_throughput(spec, 50, quick(4, 300), piatek());
  EXPECT_GT(throughput, 0.0);
}

TEST(RoundSim, SortSlowestFamilyPeaksAtOnePartner) {
  // Sec. 4.4's Sort-S story in our model: within the Sort Slowest family,
  // one partner is best (the few-lanes-always-filled effect), and Sort-S
  // stays within ~15% of the BitTorrent reference. (Deviation from the
  // paper: their simulator puts Sort-S at the global performance maximum;
  // ours tops the family but not the space — see EXPERIMENTS.md.)
  auto family_perf = [&](int k) {
    ProtocolSpec spec = sort_s_protocol();
    spec.partner_slots = static_cast<std::uint8_t>(k);
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      total += run_homogeneous_throughput(spec, 50, quick(seed, 300),
                                          piatek());
    }
    return total;
  };
  const double k1 = family_perf(1);
  EXPECT_GT(k1, family_perf(3));
  double bt_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    bt_total += run_homogeneous_throughput(bittorrent_protocol(), 50,
                                           quick(seed, 300), piatek());
  }
  EXPECT_GT(k1, 0.85 * bt_total);
}

TEST(RoundSim, TopPerformersMaintainFewPartners) {
  // Fig. 3's headline: the best homogeneous performers keep k low. The
  // strongest protocol we know of (Loyal-When-needed with one partner)
  // must beat both its own high-k variant and the BitTorrent reference.
  auto perf = [&](ProtocolSpec spec) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      total += run_homogeneous_throughput(spec, 50, quick(seed, 300),
                                          piatek());
    }
    return total;
  };
  ProtocolSpec loyal1 = loyal_when_needed_protocol();
  loyal1.partner_slots = 1;
  ProtocolSpec loyal9 = loyal_when_needed_protocol();
  loyal9.partner_slots = 9;
  const double top = perf(loyal1);
  EXPECT_GT(top, perf(loyal9));
  EXPECT_GT(top, perf(bittorrent_protocol()));
}

TEST(RoundSim, NoPartnerNoStrangerProtocolIsInert) {
  // The doubly-degenerate protocol neither gives nor receives reciprocation;
  // in a homogeneous population nothing ever flows.
  ProtocolSpec inert;
  inert.stranger_slots = 0;
  inert.partner_slots = 0;
  const double throughput =
      run_homogeneous_throughput(inert, 30, quick(8), piatek());
  EXPECT_DOUBLE_EQ(throughput, 0.0);
}

TEST(RoundSim, RobustProtocolBeatsFreeriderInEncounter) {
  // A When-needed + Sort Fastest + Prop Share protocol (the paper's most
  // robust family) must outperform invading freeriders.
  const ProtocolSpec robust =
      make(StrangerPolicy::kWhenNeeded, 2, CandidateWindow::kTft,
           RankingFunction::kFastest, 7, AllocationPolicy::kPropShare);
  const ProtocolSpec freerider =
      make(StrangerPolicy::kPeriodic, 3, CandidateWindow::kTft,
           RankingFunction::kFastest, 9, AllocationPolicy::kFreeride);
  int robust_wins = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto outcome = run_encounter(robust, freerider, 25, 25,
                                       quick(seed, 300), piatek());
    if (outcome.a_wins()) ++robust_wins;
  }
  EXPECT_GE(robust_wins, 4);
}

TEST(RoundSim, EncounterGroupsAreOrderSymmetric) {
  // Swapping the groups swaps the reported means (same seed, same capacity
  // assignment by index).
  const auto ab = run_encounter(bittorrent_protocol(), birds_protocol(), 20,
                                30, quick(11), piatek());
  const auto ba = run_encounter(birds_protocol(), bittorrent_protocol(), 20,
                                30, quick(11), piatek());
  // Note: groups sit at different indices, so this is a sanity check that
  // both orderings produce finite, positive utilities rather than an exact
  // symmetry claim.
  EXPECT_GT(ab.group_a_mean + ab.group_b_mean, 0.0);
  EXPECT_GT(ba.group_a_mean + ba.group_b_mean, 0.0);
}

TEST(RoundSim, StrangerlessProtocolStillReceivesOptimisticContacts) {
  // h = 0 peers never contact anyone first, but periodic-stranger peers
  // find them, so in a mixed population they still bootstrap.
  ProtocolSpec hermit = bittorrent_protocol();
  hermit.stranger_slots = 0;
  const auto outcome = run_encounter(hermit, bittorrent_protocol(), 10, 40,
                                     quick(13, 300), piatek());
  EXPECT_GT(outcome.group_a_mean, 0.0);
}

TEST(RoundSim, KZeroProtocolGivesOnlyToStrangers) {
  // k = 0 with Periodic strangers: gives stranger gifts but never
  // reciprocates. Against BT it still receives optimistic contacts.
  ProtocolSpec no_partners;
  no_partners.stranger_policy = StrangerPolicy::kPeriodic;
  no_partners.stranger_slots = 3;
  no_partners.partner_slots = 0;
  const auto outcome = run_encounter(no_partners, bittorrent_protocol(), 25,
                                     25, quick(17, 300), piatek());
  EXPECT_GT(outcome.group_b_mean, 0.0);
  // BT reciprocates what the strangers gift, so group A receives something
  // too, but less than the reciprocating majority.
  EXPECT_LT(outcome.group_a_mean, outcome.group_b_mean);
}

// --------------------------------------------------------------- churn ----

TEST(RoundSim, ChurnKeepsRunningAndChangesOutcome) {
  SimulationConfig churny = quick(19, 200);
  churny.churn_rate = 0.05;
  const std::vector<ProtocolSpec> protocols(30, bittorrent_protocol());
  const std::vector<double> caps = piatek().stratified_sample(30);
  const auto with_churn =
      simulate_rounds(protocols, caps, churny, &piatek());
  const auto without =
      simulate_rounds(protocols, caps, quick(19, 200), &piatek());
  EXPECT_EQ(with_churn.peer_throughput.size(), 30u);
  EXPECT_NE(with_churn.population_mean(), without.population_mean());
  EXPECT_GT(with_churn.population_mean(), 0.0);
}

TEST(RoundSim, LowPartnerCountStillWinsUnderChurn) {
  // Sec. 4.4: "we ran Performance tests for the whole space under churn
  // rates of 0.01 and 0.1 ... it was still the protocols that employed a
  // low number of partners that performed the best." Low-k variants must
  // beat their high-k siblings at churn 0.1, and by a wider margin than at
  // churn 0 (churn punishes large partner sets hardest).
  auto perf = [&](ProtocolSpec spec, double churn) {
    SimulationConfig config = quick(0, 300);
    config.churn_rate = churn;
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      config.seed = seed;
      total += run_homogeneous_throughput(spec, 50, config, piatek());
    }
    return total / 5.0;
  };
  ProtocolSpec loyal1 = loyal_when_needed_protocol();
  loyal1.partner_slots = 1;
  ProtocolSpec loyal9 = loyal_when_needed_protocol();
  loyal9.partner_slots = 9;
  const double ratio_calm = perf(loyal1, 0.0) / perf(loyal9, 0.0);
  const double ratio_churny = perf(loyal1, 0.1) / perf(loyal9, 0.1);
  EXPECT_GT(ratio_churny, 1.0);
  EXPECT_GT(ratio_churny, ratio_calm);

  ProtocolSpec bt9 = bittorrent_protocol();
  bt9.partner_slots = 9;
  EXPECT_GT(perf(bittorrent_protocol(), 0.1), perf(bt9, 0.1));
}

// ------------------------------------------------- ranking differences ----

class RankingSweep : public ::testing::TestWithParam<RankingFunction> {};

TEST_P(RankingSweep, EveryRankingBootstrapsWithEqualSplit) {
  const ProtocolSpec spec =
      make(StrangerPolicy::kPeriodic, 1, CandidateWindow::kTft, GetParam(), 4,
           AllocationPolicy::kEqualSplit);
  const double throughput =
      run_homogeneous_throughput(spec, 40, quick(29, 200), piatek());
  EXPECT_GT(throughput, 0.0) << "ranking " << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllRankings, RankingSweep,
    ::testing::Values(RankingFunction::kFastest, RankingFunction::kSlowest,
                      RankingFunction::kProximity, RankingFunction::kAdaptive,
                      RankingFunction::kLoyal, RankingFunction::kRandom));

class WindowSweep : public ::testing::TestWithParam<CandidateWindow> {};

TEST_P(WindowSweep, BothWindowsSustainCooperation) {
  ProtocolSpec spec = bittorrent_protocol();
  spec.window = GetParam();
  const double throughput =
      run_homogeneous_throughput(spec, 40, quick(31, 200), piatek());
  EXPECT_GT(throughput, 10.0);
}

INSTANTIATE_TEST_SUITE_P(BothWindows, WindowSweep,
                         ::testing::Values(CandidateWindow::kTft,
                                           CandidateWindow::kTf2t));

// -------------------------------------- dense/sparse/batch equivalence ----
// The production engines' contract is bitwise identity with the dense
// reference (the seed implementation), for every configuration — same RNG
// draw sequence, same floating-point operations in the same order. These
// tests compare the three engines on exactly the configurations where their
// internals differ most: churn (stamp invalidation vs row zeroing), faults,
// the intake cap (touched-list scaling vs row scaling), TF2T (two-generation
// candidate merge), and every ranking function (Loyal reads sparse streaks,
// Random consumes RNG draws that must stay aligned). The batch engine joins
// through its scalar entry point here (a single-lane batch); the W-wide
// lockstep paths are covered by the BatchEngine tests below.

void expect_bitwise_equal(const SimulationOutcome& actual,
                          const SimulationOutcome& expected) {
  ASSERT_EQ(actual.peer_throughput.size(), expected.peer_throughput.size());
  for (std::size_t i = 0; i < actual.peer_throughput.size(); ++i) {
    EXPECT_EQ(actual.peer_throughput[i], expected.peer_throughput[i]) << i;
  }
  ASSERT_EQ(actual.round_throughput.size(), expected.round_throughput.size());
  for (std::size_t i = 0; i < actual.round_throughput.size(); ++i) {
    EXPECT_EQ(actual.round_throughput[i], expected.round_throughput[i]) << i;
  }
  EXPECT_EQ(actual.peers_replaced, expected.peers_replaced);
}

void expect_engines_agree(const std::vector<ProtocolSpec>& protocols,
                          SimulationConfig config,
                          SimWorkspace* workspace = nullptr) {
  const std::vector<double> caps =
      piatek().stratified_sample(protocols.size());
  config.engine = SimEngine::kSparse;
  const auto sparse =
      simulate_rounds(protocols, caps, config, &piatek(), workspace);
  config.engine = SimEngine::kDense;
  const auto dense = simulate_rounds(protocols, caps, config, &piatek());
  expect_bitwise_equal(sparse, dense);
  config.engine = SimEngine::kBatch;
  const auto batch = simulate_rounds(protocols, caps, config, &piatek());
  expect_bitwise_equal(batch, dense);
}

TEST(EngineEquivalence, HomogeneousPopulation) {
  expect_engines_agree(std::vector<ProtocolSpec>(40, bittorrent_protocol()),
                       quick(101, 200));
}

TEST(EngineEquivalence, MixedPopulationWithChurnAndRoundSeries) {
  ProtocolSpec freerider = bittorrent_protocol();
  freerider.allocation = AllocationPolicy::kFreeride;
  std::vector<ProtocolSpec> protocols(15, bittorrent_protocol());
  protocols.insert(protocols.end(), 15, loyal_when_needed_protocol());
  protocols.insert(protocols.end(), 10, freerider);
  SimulationConfig config = quick(103, 250);
  config.churn_rate = 0.04;
  config.record_round_series = true;
  expect_engines_agree(protocols, config);
}

TEST(EngineEquivalence, Tf2tPropShareWithIntakeCap) {
  const ProtocolSpec spec =
      make(StrangerPolicy::kWhenNeeded, 2, CandidateWindow::kTf2t,
           RankingFunction::kFastest, 4, AllocationPolicy::kPropShare);
  SimulationConfig config = quick(107, 200);
  config.intake_factor = 1.2;
  expect_engines_agree(std::vector<ProtocolSpec>(35, spec), config);
}

TEST(EngineEquivalence, EveryFaultProcess) {
  SimulationConfig config = quick(109, 200);
  config.faults = {
      dsa::fault::FaultProcess::memoryless_churn(0.02),
      dsa::fault::FaultProcess::burst_churn(40, 0.2),
      dsa::fault::FaultProcess::capacity_degradation(100, 0.6),
      dsa::fault::FaultProcess::targeted_failure(150, 0.1),
  };
  expect_engines_agree(std::vector<ProtocolSpec>(30, bittorrent_protocol()),
                       config);
}

class EngineEquivalenceRankings
    : public ::testing::TestWithParam<RankingFunction> {};

TEST_P(EngineEquivalenceRankings, AllRankingsAndPoliciesAgree) {
  // TF2T + churn stresses the two-generation merge, Loyal the sparse streak
  // table, Random the RNG draw alignment; mix the stranger policies so
  // defect-contact zero slots appear in the candidate lists of both engines.
  const ProtocolSpec reciprocator =
      make(StrangerPolicy::kWhenNeeded, 2, CandidateWindow::kTf2t, GetParam(),
           3, AllocationPolicy::kEqualSplit);
  const ProtocolSpec defector =
      make(StrangerPolicy::kDefect, 1, CandidateWindow::kTft, GetParam(), 2,
           AllocationPolicy::kPropShare);
  std::vector<ProtocolSpec> protocols(20, reciprocator);
  protocols.insert(protocols.end(), 10, defector);
  SimulationConfig config = quick(113, 200);
  config.churn_rate = 0.03;
  expect_engines_agree(protocols, config);
}

INSTANTIATE_TEST_SUITE_P(
    AllRankings, EngineEquivalenceRankings,
    ::testing::Values(RankingFunction::kFastest, RankingFunction::kSlowest,
                      RankingFunction::kProximity, RankingFunction::kAdaptive,
                      RankingFunction::kLoyal, RankingFunction::kRandom));

TEST(EngineEquivalence, WorkspaceReuseAcrossRunsAndSizes) {
  // One workspace reused across runs of different populations and configs
  // must behave exactly like a fresh workspace every time — the epoch
  // stamping must never leak state from a previous run, including after a
  // shrink-then-grow resize.
  SimWorkspace reused;
  SimulationConfig churny = quick(127, 150);
  churny.churn_rate = 0.05;
  expect_engines_agree(std::vector<ProtocolSpec>(40, bittorrent_protocol()),
                       quick(131, 150), &reused);
  expect_engines_agree(
      std::vector<ProtocolSpec>(20, loyal_when_needed_protocol()), churny,
      &reused);
  expect_engines_agree(std::vector<ProtocolSpec>(40, bittorrent_protocol()),
                       quick(131, 150), &reused);

  // And a reused workspace matches the thread-local (null) path bit for bit.
  const std::vector<ProtocolSpec> protocols(25, bittorrent_protocol());
  const std::vector<double> caps = piatek().stratified_sample(25);
  const auto with_reused =
      simulate_rounds(protocols, caps, quick(137, 150), &piatek(), &reused);
  const auto with_thread_local =
      simulate_rounds(protocols, caps, quick(137, 150), &piatek());
  expect_bitwise_equal(with_reused, with_thread_local);
}

// ------------------------------------------------ batch-lockstep engine ----
// The W-wide paths: every lane of a batch must be bitwise-identical to the
// same simulation run alone on the sparse engine, at every width (including
// width 1 and odd remainders), and workspace reuse across batches of
// different widths and populations must never leak state between lanes.

std::vector<SimulationOutcome> solo_sparse_runs(
    const std::vector<ProtocolSpec>& protocols,
    const std::vector<std::vector<double>>& caps, SimulationConfig config,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<SimulationOutcome> outcomes;
  config.engine = SimEngine::kSparse;
  for (std::size_t w = 0; w < seeds.size(); ++w) {
    config.seed = seeds[w];
    outcomes.push_back(
        simulate_rounds(protocols, caps[w], config, &piatek()));
  }
  return outcomes;
}

TEST(BatchEngine, EveryLaneMatchesSoloSparseRunAtEveryWidth) {
  ProtocolSpec freerider = bittorrent_protocol();
  freerider.allocation = AllocationPolicy::kFreeride;
  std::vector<ProtocolSpec> protocols(12, bittorrent_protocol());
  protocols.insert(protocols.end(), 10, loyal_when_needed_protocol());
  protocols.insert(protocols.end(), 8, freerider);
  SimulationConfig config = quick(139, 150);
  config.churn_rate = 0.04;
  config.record_round_series = true;

  // Widths 1, 4, 8 plus an odd remainder width, as the PRA batcher produces
  // when runs % width != 0.
  for (const std::size_t width : {1u, 4u, 8u, 5u}) {
    std::vector<std::uint64_t> seeds;
    std::vector<std::vector<double>> caps;
    std::vector<BatchLane> lanes;
    for (std::size_t w = 0; w < width; ++w) {
      seeds.push_back(1000 + 7 * w);
      caps.push_back(piatek().stratified_sample(protocols.size()));
      // Perturb one capacity per lane so lanes genuinely differ.
      caps.back()[w % caps.back().size()] += static_cast<double>(w);
    }
    for (std::size_t w = 0; w < width; ++w) {
      lanes.push_back({&protocols, &caps[w], seeds[w]});
    }
    const auto batch = simulate_rounds_batch(lanes, config, &piatek());
    const auto solo = solo_sparse_runs(protocols, caps, config, seeds);
    ASSERT_EQ(batch.size(), width);
    for (std::size_t w = 0; w < width; ++w) {
      SCOPED_TRACE("width " + std::to_string(width) + " lane " +
                   std::to_string(w));
      expect_bitwise_equal(batch[w], solo[w]);
    }
  }
}

TEST(BatchEngine, LanesWithDistinctProtocolVectorsStayIndependent) {
  // The PRA tournament batches encounters against different opponents into
  // one batch: each lane carries its own protocol vector.
  SimulationConfig config = quick(149, 150);
  config.intake_factor = 1.2;
  const ProtocolSpec base =
      make(StrangerPolicy::kWhenNeeded, 2, CandidateWindow::kTf2t,
           RankingFunction::kFastest, 4, AllocationPolicy::kPropShare);
  std::vector<std::vector<ProtocolSpec>> protocols;
  std::vector<std::vector<double>> caps;
  std::vector<std::uint64_t> seeds;
  const std::vector<ProtocolSpec> opponents = {
      bittorrent_protocol(), loyal_when_needed_protocol(), birds_protocol()};
  for (std::size_t w = 0; w < opponents.size(); ++w) {
    std::vector<ProtocolSpec> mix(10, base);
    mix.insert(mix.end(), 15, opponents[w]);
    protocols.push_back(std::move(mix));
    caps.push_back(piatek().stratified_sample(25));
    seeds.push_back(500 + w);
  }
  std::vector<BatchLane> lanes;
  for (std::size_t w = 0; w < opponents.size(); ++w) {
    lanes.push_back({&protocols[w], &caps[w], seeds[w]});
  }
  const auto batch = simulate_rounds_batch(lanes, config, &piatek());
  SimulationConfig solo_config = config;
  solo_config.engine = SimEngine::kSparse;
  for (std::size_t w = 0; w < opponents.size(); ++w) {
    SCOPED_TRACE("lane " + std::to_string(w));
    solo_config.seed = seeds[w];
    expect_bitwise_equal(
        batch[w],
        simulate_rounds(protocols[w], caps[w], solo_config, &piatek()));
  }
}

TEST(BatchEngine, WorkspaceReuseAcrossWidthsAndSizesIsStateless) {
  BatchWorkspace reused;
  SimulationConfig config = quick(151, 120);
  config.churn_rate = 0.05;
  auto run_width = [&](std::size_t width, std::size_t population,
                       std::uint64_t seed_base) {
    const std::vector<ProtocolSpec> protocols(population,
                                              bittorrent_protocol());
    std::vector<std::vector<double>> caps;
    std::vector<std::uint64_t> seeds;
    for (std::size_t w = 0; w < width; ++w) {
      caps.push_back(piatek().stratified_sample(population));
      seeds.push_back(seed_base + w);
    }
    std::vector<BatchLane> lanes;
    for (std::size_t w = 0; w < width; ++w) {
      lanes.push_back({&protocols, &caps[w], seeds[w]});
    }
    const auto batch =
        simulate_rounds_batch(lanes, config, &piatek(), &reused);
    const auto solo = solo_sparse_runs(protocols, caps, config, seeds);
    for (std::size_t w = 0; w < width; ++w) {
      SCOPED_TRACE("width " + std::to_string(width) + " lane " +
                   std::to_string(w));
      expect_bitwise_equal(batch[w], solo[w]);
    }
  };
  run_width(8, 30, 700);   // grow
  run_width(3, 20, 800);   // shrink both width and population
  run_width(8, 30, 700);   // back up: must equal the first call's results
}

TEST(BatchEngine, HelperEntryPointsMatchScalarHelpers) {
  SimulationConfig config = quick(157, 150);
  const std::vector<std::uint64_t> seeds = {11, 22, 33, 44, 55};

  std::vector<double> batch_perf(seeds.size(), 0.0);
  run_homogeneous_throughput_batch(bittorrent_protocol(), 30, config,
                                   piatek(), seeds, batch_perf);
  for (std::size_t w = 0; w < seeds.size(); ++w) {
    SimulationConfig solo = config;
    solo.seed = seeds[w];
    EXPECT_EQ(batch_perf[w], run_homogeneous_throughput(
                                 bittorrent_protocol(), 30, solo, piatek()))
        << w;
  }

  std::vector<BatchEncounter> encounters;
  const std::vector<ProtocolSpec> opponents = {
      birds_protocol(), loyal_when_needed_protocol(), bittorrent_protocol()};
  for (std::size_t w = 0; w < opponents.size(); ++w) {
    encounters.push_back({opponents[w], 900 + w});
  }
  std::vector<EncounterOutcome> batch_enc(encounters.size());
  run_encounter_batch(bittorrent_protocol(), 10, 20, config, piatek(),
                      encounters, batch_enc);
  for (std::size_t w = 0; w < encounters.size(); ++w) {
    SimulationConfig solo = config;
    solo.seed = encounters[w].seed;
    const auto expected = run_encounter(bittorrent_protocol(), opponents[w],
                                        10, 20, solo, piatek());
    EXPECT_EQ(batch_enc[w].group_a_mean, expected.group_a_mean) << w;
    EXPECT_EQ(batch_enc[w].group_b_mean, expected.group_b_mean) << w;
  }
}

TEST(BatchEngine, ValidatesInput) {
  const SimulationConfig config = quick();
  EXPECT_THROW(simulate_rounds_batch({}, config), std::invalid_argument);
  const std::vector<ProtocolSpec> a(5, bittorrent_protocol());
  const std::vector<ProtocolSpec> b(7, bittorrent_protocol());
  const std::vector<double> caps_a(5, 10.0);
  const std::vector<double> caps_b(7, 10.0);
  const std::vector<BatchLane> mismatched = {{&a, &caps_a, 1},
                                             {&b, &caps_b, 2}};
  EXPECT_THROW(simulate_rounds_batch(mismatched, config),
               std::invalid_argument);
  SimulationConfig churny = quick();
  churny.churn_rate = 0.1;
  const std::vector<BatchLane> single = {{&a, &caps_a, 1}};
  EXPECT_THROW(simulate_rounds_batch(single, churny, /*churn_source=*/nullptr),
               std::invalid_argument);
  std::vector<double> out(2, 0.0);
  EXPECT_THROW(run_homogeneous_throughput_batch(
                   bittorrent_protocol(), 10, config, piatek(),
                   std::vector<std::uint64_t>{1, 2, 3}, out),
               std::invalid_argument);
}

}  // namespace
