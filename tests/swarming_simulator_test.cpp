// Behavioral tests of the Sec. 4.3.1 round-based simulator — the properties
// the paper's results depend on: bootstrap via strangers, Prop Share's
// bootstrap failure without them, freerider collapse, the Sort-Slowest
// effect, churn, and encounter mechanics.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_process.hpp"
#include "swarming/bandwidth.hpp"
#include "swarming/protocol.hpp"
#include "swarming/simulator.hpp"

namespace {

using namespace dsa::swarming;

const BandwidthDistribution& piatek() {
  static const BandwidthDistribution dist = BandwidthDistribution::piatek();
  return dist;
}

SimulationConfig quick(std::uint64_t seed = 1, std::size_t rounds = 150) {
  SimulationConfig config;
  config.rounds = rounds;
  config.seed = seed;
  return config;
}

ProtocolSpec make(StrangerPolicy sp, int h, CandidateWindow w,
                  RankingFunction rank, int k, AllocationPolicy alloc) {
  ProtocolSpec spec;
  spec.stranger_policy = sp;
  spec.stranger_slots = static_cast<std::uint8_t>(h);
  spec.window = w;
  spec.ranking = rank;
  spec.partner_slots = static_cast<std::uint8_t>(k);
  spec.allocation = alloc;
  return spec;
}

// ------------------------------------------------------- fundamentals ----

TEST(RoundSim, DeterministicForSameSeed) {
  const auto a = run_homogeneous_throughput(bittorrent_protocol(), 30,
                                            quick(42), piatek());
  const auto b = run_homogeneous_throughput(bittorrent_protocol(), 30,
                                            quick(42), piatek());
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(RoundSim, DifferentSeedsDiffer) {
  const auto a = run_homogeneous_throughput(bittorrent_protocol(), 30,
                                            quick(1), piatek());
  const auto b = run_homogeneous_throughput(bittorrent_protocol(), 30,
                                            quick(2), piatek());
  EXPECT_NE(a, b);
}

TEST(RoundSim, ValidatesInput) {
  const SimulationConfig config = quick();
  EXPECT_THROW(simulate_rounds({}, {}, config), std::invalid_argument);
  EXPECT_THROW(
      simulate_rounds({bittorrent_protocol()}, {1.0, 2.0}, config),
      std::invalid_argument);
  SimulationConfig zero_rounds = quick();
  zero_rounds.rounds = 0;
  EXPECT_THROW(simulate_rounds({bittorrent_protocol()}, {10.0}, zero_rounds),
               std::invalid_argument);
  SimulationConfig churny = quick();
  churny.churn_rate = 0.1;
  EXPECT_THROW(simulate_rounds({bittorrent_protocol()}, {10.0}, churny,
                               /*churn_source=*/nullptr),
               std::invalid_argument);
  EXPECT_THROW(run_homogeneous_throughput(bittorrent_protocol(), 0, config,
                                          piatek()),
               std::invalid_argument);
  EXPECT_THROW(run_encounter(bittorrent_protocol(), birds_protocol(), 0, 5,
                             config, piatek()),
               std::invalid_argument);
}

TEST(RoundSim, ThroughputNeverExceedsOfferedCapacity) {
  // Received bandwidth is conserved: population mean throughput cannot
  // exceed mean upload capacity.
  const std::vector<double> caps = piatek().stratified_sample(50);
  double cap_mean = 0.0;
  for (double c : caps) cap_mean += c;
  cap_mean /= 50.0;
  const double throughput = run_homogeneous_throughput(
      bittorrent_protocol(), 50, quick(5), piatek());
  EXPECT_LE(throughput, cap_mean * 1.0001);
  EXPECT_GT(throughput, 0.0);
}

TEST(RoundSim, BitTorrentUsesNearlyAllCapacityInSteadyState) {
  // With Equal Split and everyone running BT, every opened slot carries
  // bandwidth, so population throughput should be close to mean capacity.
  const std::vector<double> caps = piatek().stratified_sample(50);
  double cap_mean = 0.0;
  for (double c : caps) cap_mean += c;
  cap_mean /= 50.0;
  const double throughput = run_homogeneous_throughput(
      bittorrent_protocol(), 50, quick(9, 300), piatek());
  EXPECT_GT(throughput, 0.8 * cap_mean);
}

TEST(RoundSim, GroupMeanChecksRange) {
  SimulationOutcome outcome;
  outcome.peer_throughput = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(outcome.group_mean(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(outcome.group_mean(2, 4), 3.5);
  EXPECT_DOUBLE_EQ(outcome.population_mean(), 2.5);
  EXPECT_THROW(outcome.group_mean(2, 2), std::invalid_argument);
  EXPECT_THROW(outcome.group_mean(0, 9), std::invalid_argument);
}

// ---------------------------------------------- paper-critical behavior ----

TEST(RoundSim, TotalFreeridersReceiveAlmostNothingFromEachOther) {
  // Freeride allocation + Defect strangers: nobody ever uploads a byte.
  const ProtocolSpec freerider =
      make(StrangerPolicy::kDefect, 1, CandidateWindow::kTft,
           RankingFunction::kFastest, 4, AllocationPolicy::kFreeride);
  const double throughput =
      run_homogeneous_throughput(freerider, 50, quick(3), piatek());
  EXPECT_DOUBLE_EQ(throughput, 0.0);
}

TEST(RoundSim, PropShareWithDefectStrangersFailsToBootstrap) {
  // The paper's bootstrap hazard: Prop Share never seeds cooperation when
  // strangers get nothing (Sec. 4.4).
  const ProtocolSpec spec =
      make(StrangerPolicy::kDefect, 2, CandidateWindow::kTft,
           RankingFunction::kSlowest, 1, AllocationPolicy::kPropShare);
  const double throughput =
      run_homogeneous_throughput(spec, 50, quick(4), piatek());
  EXPECT_DOUBLE_EQ(throughput, 0.0);
}

TEST(RoundSim, PropShareWithWhenNeededStrangersBootstraps) {
  // ... while the When-needed stranger policy is the paper's lightweight
  // bootstrapping alternative.
  const ProtocolSpec spec =
      make(StrangerPolicy::kWhenNeeded, 2, CandidateWindow::kTft,
           RankingFunction::kFastest, 7, AllocationPolicy::kPropShare);
  const double throughput =
      run_homogeneous_throughput(spec, 50, quick(4, 300), piatek());
  EXPECT_GT(throughput, 0.0);
}

TEST(RoundSim, SortSlowestFamilyPeaksAtOnePartner) {
  // Sec. 4.4's Sort-S story in our model: within the Sort Slowest family,
  // one partner is best (the few-lanes-always-filled effect), and Sort-S
  // stays within ~15% of the BitTorrent reference. (Deviation from the
  // paper: their simulator puts Sort-S at the global performance maximum;
  // ours tops the family but not the space — see EXPERIMENTS.md.)
  auto family_perf = [&](int k) {
    ProtocolSpec spec = sort_s_protocol();
    spec.partner_slots = static_cast<std::uint8_t>(k);
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      total += run_homogeneous_throughput(spec, 50, quick(seed, 300),
                                          piatek());
    }
    return total;
  };
  const double k1 = family_perf(1);
  EXPECT_GT(k1, family_perf(3));
  double bt_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    bt_total += run_homogeneous_throughput(bittorrent_protocol(), 50,
                                           quick(seed, 300), piatek());
  }
  EXPECT_GT(k1, 0.85 * bt_total);
}

TEST(RoundSim, TopPerformersMaintainFewPartners) {
  // Fig. 3's headline: the best homogeneous performers keep k low. The
  // strongest protocol we know of (Loyal-When-needed with one partner)
  // must beat both its own high-k variant and the BitTorrent reference.
  auto perf = [&](ProtocolSpec spec) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      total += run_homogeneous_throughput(spec, 50, quick(seed, 300),
                                          piatek());
    }
    return total;
  };
  ProtocolSpec loyal1 = loyal_when_needed_protocol();
  loyal1.partner_slots = 1;
  ProtocolSpec loyal9 = loyal_when_needed_protocol();
  loyal9.partner_slots = 9;
  const double top = perf(loyal1);
  EXPECT_GT(top, perf(loyal9));
  EXPECT_GT(top, perf(bittorrent_protocol()));
}

TEST(RoundSim, NoPartnerNoStrangerProtocolIsInert) {
  // The doubly-degenerate protocol neither gives nor receives reciprocation;
  // in a homogeneous population nothing ever flows.
  ProtocolSpec inert;
  inert.stranger_slots = 0;
  inert.partner_slots = 0;
  const double throughput =
      run_homogeneous_throughput(inert, 30, quick(8), piatek());
  EXPECT_DOUBLE_EQ(throughput, 0.0);
}

TEST(RoundSim, RobustProtocolBeatsFreeriderInEncounter) {
  // A When-needed + Sort Fastest + Prop Share protocol (the paper's most
  // robust family) must outperform invading freeriders.
  const ProtocolSpec robust =
      make(StrangerPolicy::kWhenNeeded, 2, CandidateWindow::kTft,
           RankingFunction::kFastest, 7, AllocationPolicy::kPropShare);
  const ProtocolSpec freerider =
      make(StrangerPolicy::kPeriodic, 3, CandidateWindow::kTft,
           RankingFunction::kFastest, 9, AllocationPolicy::kFreeride);
  int robust_wins = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto outcome = run_encounter(robust, freerider, 25, 25,
                                       quick(seed, 300), piatek());
    if (outcome.a_wins()) ++robust_wins;
  }
  EXPECT_GE(robust_wins, 4);
}

TEST(RoundSim, EncounterGroupsAreOrderSymmetric) {
  // Swapping the groups swaps the reported means (same seed, same capacity
  // assignment by index).
  const auto ab = run_encounter(bittorrent_protocol(), birds_protocol(), 20,
                                30, quick(11), piatek());
  const auto ba = run_encounter(birds_protocol(), bittorrent_protocol(), 20,
                                30, quick(11), piatek());
  // Note: groups sit at different indices, so this is a sanity check that
  // both orderings produce finite, positive utilities rather than an exact
  // symmetry claim.
  EXPECT_GT(ab.group_a_mean + ab.group_b_mean, 0.0);
  EXPECT_GT(ba.group_a_mean + ba.group_b_mean, 0.0);
}

TEST(RoundSim, StrangerlessProtocolStillReceivesOptimisticContacts) {
  // h = 0 peers never contact anyone first, but periodic-stranger peers
  // find them, so in a mixed population they still bootstrap.
  ProtocolSpec hermit = bittorrent_protocol();
  hermit.stranger_slots = 0;
  const auto outcome = run_encounter(hermit, bittorrent_protocol(), 10, 40,
                                     quick(13, 300), piatek());
  EXPECT_GT(outcome.group_a_mean, 0.0);
}

TEST(RoundSim, KZeroProtocolGivesOnlyToStrangers) {
  // k = 0 with Periodic strangers: gives stranger gifts but never
  // reciprocates. Against BT it still receives optimistic contacts.
  ProtocolSpec no_partners;
  no_partners.stranger_policy = StrangerPolicy::kPeriodic;
  no_partners.stranger_slots = 3;
  no_partners.partner_slots = 0;
  const auto outcome = run_encounter(no_partners, bittorrent_protocol(), 25,
                                     25, quick(17, 300), piatek());
  EXPECT_GT(outcome.group_b_mean, 0.0);
  // BT reciprocates what the strangers gift, so group A receives something
  // too, but less than the reciprocating majority.
  EXPECT_LT(outcome.group_a_mean, outcome.group_b_mean);
}

// --------------------------------------------------------------- churn ----

TEST(RoundSim, ChurnKeepsRunningAndChangesOutcome) {
  SimulationConfig churny = quick(19, 200);
  churny.churn_rate = 0.05;
  const std::vector<ProtocolSpec> protocols(30, bittorrent_protocol());
  const std::vector<double> caps = piatek().stratified_sample(30);
  const auto with_churn =
      simulate_rounds(protocols, caps, churny, &piatek());
  const auto without =
      simulate_rounds(protocols, caps, quick(19, 200), &piatek());
  EXPECT_EQ(with_churn.peer_throughput.size(), 30u);
  EXPECT_NE(with_churn.population_mean(), without.population_mean());
  EXPECT_GT(with_churn.population_mean(), 0.0);
}

TEST(RoundSim, LowPartnerCountStillWinsUnderChurn) {
  // Sec. 4.4: "we ran Performance tests for the whole space under churn
  // rates of 0.01 and 0.1 ... it was still the protocols that employed a
  // low number of partners that performed the best." Low-k variants must
  // beat their high-k siblings at churn 0.1, and by a wider margin than at
  // churn 0 (churn punishes large partner sets hardest).
  auto perf = [&](ProtocolSpec spec, double churn) {
    SimulationConfig config = quick(0, 300);
    config.churn_rate = churn;
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      config.seed = seed;
      total += run_homogeneous_throughput(spec, 50, config, piatek());
    }
    return total / 5.0;
  };
  ProtocolSpec loyal1 = loyal_when_needed_protocol();
  loyal1.partner_slots = 1;
  ProtocolSpec loyal9 = loyal_when_needed_protocol();
  loyal9.partner_slots = 9;
  const double ratio_calm = perf(loyal1, 0.0) / perf(loyal9, 0.0);
  const double ratio_churny = perf(loyal1, 0.1) / perf(loyal9, 0.1);
  EXPECT_GT(ratio_churny, 1.0);
  EXPECT_GT(ratio_churny, ratio_calm);

  ProtocolSpec bt9 = bittorrent_protocol();
  bt9.partner_slots = 9;
  EXPECT_GT(perf(bittorrent_protocol(), 0.1), perf(bt9, 0.1));
}

// ------------------------------------------------- ranking differences ----

class RankingSweep : public ::testing::TestWithParam<RankingFunction> {};

TEST_P(RankingSweep, EveryRankingBootstrapsWithEqualSplit) {
  const ProtocolSpec spec =
      make(StrangerPolicy::kPeriodic, 1, CandidateWindow::kTft, GetParam(), 4,
           AllocationPolicy::kEqualSplit);
  const double throughput =
      run_homogeneous_throughput(spec, 40, quick(29, 200), piatek());
  EXPECT_GT(throughput, 0.0) << "ranking " << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllRankings, RankingSweep,
    ::testing::Values(RankingFunction::kFastest, RankingFunction::kSlowest,
                      RankingFunction::kProximity, RankingFunction::kAdaptive,
                      RankingFunction::kLoyal, RankingFunction::kRandom));

class WindowSweep : public ::testing::TestWithParam<CandidateWindow> {};

TEST_P(WindowSweep, BothWindowsSustainCooperation) {
  ProtocolSpec spec = bittorrent_protocol();
  spec.window = GetParam();
  const double throughput =
      run_homogeneous_throughput(spec, 40, quick(31, 200), piatek());
  EXPECT_GT(throughput, 10.0);
}

INSTANTIATE_TEST_SUITE_P(BothWindows, WindowSweep,
                         ::testing::Values(CandidateWindow::kTft,
                                           CandidateWindow::kTf2t));

// -------------------------------------------- dense/sparse equivalence ----
// The sparse production engine's contract is bitwise identity with the dense
// reference (the seed implementation), for every configuration — same RNG
// draw sequence, same floating-point operations in the same order. These
// tests compare the two engines on exactly the configurations where their
// internals differ most: churn (stamp invalidation vs row zeroing), faults,
// the intake cap (touched-list scaling vs row scaling), TF2T (two-generation
// candidate merge), and every ranking function (Loyal reads sparse streaks,
// Random consumes RNG draws that must stay aligned).

void expect_bitwise_equal(const SimulationOutcome& sparse,
                          const SimulationOutcome& dense) {
  ASSERT_EQ(sparse.peer_throughput.size(), dense.peer_throughput.size());
  for (std::size_t i = 0; i < sparse.peer_throughput.size(); ++i) {
    EXPECT_EQ(sparse.peer_throughput[i], dense.peer_throughput[i]) << i;
  }
  ASSERT_EQ(sparse.round_throughput.size(), dense.round_throughput.size());
  for (std::size_t i = 0; i < sparse.round_throughput.size(); ++i) {
    EXPECT_EQ(sparse.round_throughput[i], dense.round_throughput[i]) << i;
  }
  EXPECT_EQ(sparse.peers_replaced, dense.peers_replaced);
}

void expect_engines_agree(const std::vector<ProtocolSpec>& protocols,
                          SimulationConfig config,
                          SimWorkspace* workspace = nullptr) {
  const std::vector<double> caps =
      piatek().stratified_sample(protocols.size());
  config.engine = SimEngine::kSparse;
  const auto sparse =
      simulate_rounds(protocols, caps, config, &piatek(), workspace);
  config.engine = SimEngine::kDense;
  const auto dense = simulate_rounds(protocols, caps, config, &piatek());
  expect_bitwise_equal(sparse, dense);
}

TEST(EngineEquivalence, HomogeneousPopulation) {
  expect_engines_agree(std::vector<ProtocolSpec>(40, bittorrent_protocol()),
                       quick(101, 200));
}

TEST(EngineEquivalence, MixedPopulationWithChurnAndRoundSeries) {
  ProtocolSpec freerider = bittorrent_protocol();
  freerider.allocation = AllocationPolicy::kFreeride;
  std::vector<ProtocolSpec> protocols(15, bittorrent_protocol());
  protocols.insert(protocols.end(), 15, loyal_when_needed_protocol());
  protocols.insert(protocols.end(), 10, freerider);
  SimulationConfig config = quick(103, 250);
  config.churn_rate = 0.04;
  config.record_round_series = true;
  expect_engines_agree(protocols, config);
}

TEST(EngineEquivalence, Tf2tPropShareWithIntakeCap) {
  const ProtocolSpec spec =
      make(StrangerPolicy::kWhenNeeded, 2, CandidateWindow::kTf2t,
           RankingFunction::kFastest, 4, AllocationPolicy::kPropShare);
  SimulationConfig config = quick(107, 200);
  config.intake_factor = 1.2;
  expect_engines_agree(std::vector<ProtocolSpec>(35, spec), config);
}

TEST(EngineEquivalence, EveryFaultProcess) {
  SimulationConfig config = quick(109, 200);
  config.faults = {
      dsa::fault::FaultProcess::memoryless_churn(0.02),
      dsa::fault::FaultProcess::burst_churn(40, 0.2),
      dsa::fault::FaultProcess::capacity_degradation(100, 0.6),
      dsa::fault::FaultProcess::targeted_failure(150, 0.1),
  };
  expect_engines_agree(std::vector<ProtocolSpec>(30, bittorrent_protocol()),
                       config);
}

class EngineEquivalenceRankings
    : public ::testing::TestWithParam<RankingFunction> {};

TEST_P(EngineEquivalenceRankings, AllRankingsAndPoliciesAgree) {
  // TF2T + churn stresses the two-generation merge, Loyal the sparse streak
  // table, Random the RNG draw alignment; mix the stranger policies so
  // defect-contact zero slots appear in the candidate lists of both engines.
  const ProtocolSpec reciprocator =
      make(StrangerPolicy::kWhenNeeded, 2, CandidateWindow::kTf2t, GetParam(),
           3, AllocationPolicy::kEqualSplit);
  const ProtocolSpec defector =
      make(StrangerPolicy::kDefect, 1, CandidateWindow::kTft, GetParam(), 2,
           AllocationPolicy::kPropShare);
  std::vector<ProtocolSpec> protocols(20, reciprocator);
  protocols.insert(protocols.end(), 10, defector);
  SimulationConfig config = quick(113, 200);
  config.churn_rate = 0.03;
  expect_engines_agree(protocols, config);
}

INSTANTIATE_TEST_SUITE_P(
    AllRankings, EngineEquivalenceRankings,
    ::testing::Values(RankingFunction::kFastest, RankingFunction::kSlowest,
                      RankingFunction::kProximity, RankingFunction::kAdaptive,
                      RankingFunction::kLoyal, RankingFunction::kRandom));

TEST(EngineEquivalence, WorkspaceReuseAcrossRunsAndSizes) {
  // One workspace reused across runs of different populations and configs
  // must behave exactly like a fresh workspace every time — the epoch
  // stamping must never leak state from a previous run, including after a
  // shrink-then-grow resize.
  SimWorkspace reused;
  SimulationConfig churny = quick(127, 150);
  churny.churn_rate = 0.05;
  expect_engines_agree(std::vector<ProtocolSpec>(40, bittorrent_protocol()),
                       quick(131, 150), &reused);
  expect_engines_agree(
      std::vector<ProtocolSpec>(20, loyal_when_needed_protocol()), churny,
      &reused);
  expect_engines_agree(std::vector<ProtocolSpec>(40, bittorrent_protocol()),
                       quick(131, 150), &reused);

  // And a reused workspace matches the thread-local (null) path bit for bit.
  const std::vector<ProtocolSpec> protocols(25, bittorrent_protocol());
  const std::vector<double> caps = piatek().stratified_sample(25);
  const auto with_reused =
      simulate_rounds(protocols, caps, quick(137, 150), &piatek(), &reused);
  const auto with_thread_local =
      simulate_rounds(protocols, caps, quick(137, 150), &piatek());
  expect_bitwise_equal(with_reused, with_thread_local);
}

}  // namespace
