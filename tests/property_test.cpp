// Property-based sweeps over the design space: invariants that must hold
// for EVERY protocol, exercised on a deterministic sample of the 3270 ids.
#include <gtest/gtest.h>

#include <vector>

#include "swarming/bandwidth.hpp"
#include "swarming/protocol.hpp"
#include "swarming/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace dsa::swarming;

const BandwidthDistribution& piatek() {
  static const BandwidthDistribution dist = BandwidthDistribution::piatek();
  return dist;
}

/// A spread of protocol ids covering all dimension levels (multiplicative
/// stride through the space).
std::vector<std::uint32_t> sampled_ids() {
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < 40; ++i) {
    ids.push_back((i * 2654435761u) % kProtocolCount);
  }
  return ids;
}

class ProtocolPropertySweep : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  static SimulationConfig config(std::uint64_t seed) {
    SimulationConfig c;
    c.rounds = 80;
    c.seed = seed;
    return c;
  }
};

TEST_P(ProtocolPropertySweep, ThroughputIsConservedAndNonNegative) {
  // No protocol can deliver more than the offered upload capacity, and
  // throughput is never negative.
  const ProtocolSpec spec = decode_protocol(GetParam());
  const std::vector<double> caps = piatek().stratified_sample(30);
  double cap_mean = 0.0;
  for (double c : caps) cap_mean += c;
  cap_mean /= static_cast<double>(caps.size());

  const std::vector<ProtocolSpec> protocols(30, spec);
  const auto outcome = simulate_rounds(protocols, caps, config(11));
  double mean = 0.0;
  for (double t : outcome.peer_throughput) {
    EXPECT_GE(t, 0.0);
    mean += t;
  }
  mean /= static_cast<double>(outcome.peer_throughput.size());
  EXPECT_LE(mean, cap_mean * (1.0 + 1e-9));
}

TEST_P(ProtocolPropertySweep, RunsAreDeterministicPerSeed) {
  const ProtocolSpec spec = decode_protocol(GetParam());
  const double a = run_homogeneous_throughput(spec, 20, config(5), piatek());
  const double b = run_homogeneous_throughput(spec, 20, config(5), piatek());
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_P(ProtocolPropertySweep, SurvivesChurn) {
  // Churn must never crash or produce negative utility for any protocol.
  const ProtocolSpec spec = decode_protocol(GetParam());
  SimulationConfig c = config(7);
  c.churn_rate = 0.1;
  const std::vector<ProtocolSpec> protocols(20, spec);
  const std::vector<double> caps = piatek().stratified_sample(20);
  const auto outcome = simulate_rounds(protocols, caps, c, &piatek());
  for (double t : outcome.peer_throughput) EXPECT_GE(t, 0.0);
}

TEST_P(ProtocolPropertySweep, EncounterGroupUtilitiesAreFinite) {
  const ProtocolSpec spec = decode_protocol(GetParam());
  const auto outcome = run_encounter(spec, bittorrent_protocol(), 10, 10,
                                     config(3), piatek());
  EXPECT_GE(outcome.group_a_mean, 0.0);
  EXPECT_GE(outcome.group_b_mean, 0.0);
  EXPECT_LT(outcome.group_a_mean, 1e7);
  EXPECT_LT(outcome.group_b_mean, 1e7);
}

INSTANTIATE_TEST_SUITE_P(SpaceSample, ProtocolPropertySweep,
                         ::testing::ValuesIn(sampled_ids()));

// ------------------------------------------------------- cross checks ----

TEST(ProtocolSpaceProperties, FreerideNeverBeatsEqualSplitHomogeneously) {
  // Switching allocation to Freeride (everything else equal) can never
  // increase homogeneous population throughput.
  dsa::util::Rng rng(13);
  SimulationConfig config;
  config.rounds = 80;
  for (int trial = 0; trial < 12; ++trial) {
    ProtocolSpec spec = decode_protocol(
        static_cast<std::uint32_t>(rng.below(kProtocolCount)));
    spec.allocation = AllocationPolicy::kEqualSplit;
    config.seed = 100 + trial;
    const double equal =
        run_homogeneous_throughput(spec, 25, config, piatek());
    spec.allocation = AllocationPolicy::kFreeride;
    const double freeride =
        run_homogeneous_throughput(spec, 25, config, piatek());
    EXPECT_LE(freeride, equal + 1e-9) << spec.describe();
  }
}

TEST(ProtocolSpaceProperties, RemovingStrangersNeverHelpsDefectPolicy) {
  // A Defect-policy protocol gives strangers nothing; going from h > 0 to
  // h = 0 only removes visibility (candidates lose the peer), so population
  // throughput should not collapse relative to the h > 0 variant by more
  // than the simulation noise — and both must stay conservative.
  SimulationConfig config;
  config.rounds = 80;
  ProtocolSpec defect;
  defect.stranger_policy = StrangerPolicy::kDefect;
  defect.stranger_slots = 2;
  defect.ranking = RankingFunction::kFastest;
  defect.partner_slots = 4;
  config.seed = 3;
  const double with_contacts =
      run_homogeneous_throughput(defect, 25, config, piatek());
  ProtocolSpec hermit = defect;
  hermit.stranger_policy = StrangerPolicy::kPeriodic;  // canonical for h=0
  hermit.stranger_slots = 0;
  const double without =
      run_homogeneous_throughput(hermit, 25, config, piatek());
  // Defect contacts bootstrap candidate lists even though they carry no
  // bandwidth; removing them must not increase throughput.
  EXPECT_GE(with_contacts, without);
}

TEST(ProtocolSpaceProperties, MoreCapacityNeverHurtsPopulation) {
  // Scaling every peer's capacity up scales throughput up (linearity).
  SimulationConfig config;
  config.rounds = 80;
  config.seed = 19;
  std::vector<double> caps = piatek().stratified_sample(25);
  const std::vector<ProtocolSpec> protocols(25, bittorrent_protocol());
  const double base =
      simulate_rounds(protocols, caps, config).population_mean();
  for (double& c : caps) c *= 2.0;
  const double doubled =
      simulate_rounds(protocols, caps, config).population_mean();
  EXPECT_NEAR(doubled, 2.0 * base, 2.0 * base * 0.01);
}

}  // namespace
