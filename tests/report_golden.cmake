# Byte-for-byte golden test: `dsa_cli report` on a committed example
# recording must reproduce the committed table exactly (the same bytes the
# originating bench printed). Invoked via
#   cmake -DDSA_CLI=... -DRECORDING=... -DTABLE=... -DEXPECTED=... -P report_golden.cmake
execute_process(
  COMMAND "${DSA_CLI}" report "${RECORDING}" --table "${TABLE}"
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "dsa_cli report failed (exit ${status})")
endif()
file(READ "${EXPECTED}" expected)
if(NOT actual STREQUAL expected)
  message(FATAL_ERROR
      "report output differs from ${EXPECTED}\n--- actual ---\n${actual}")
endif()
