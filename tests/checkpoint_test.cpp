// Crash-tolerant PRA sweep machinery: per-protocol engine methods must
// reproduce the batch passes exactly (the property that makes resuming
// sound), and the checkpoint helpers must fingerprint options, round-trip
// partial results, and reject anything that is not a clean protocol prefix.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/pra.hpp"
#include "swarming/pra_dataset.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

using namespace dsa;

/// Seed-sensitive toy domain: utilities depend on (protocol, seed), so any
/// change in per-item seed derivation shows up as a numeric mismatch.
class SeededModel final : public core::EncounterModel {
 public:
  explicit SeededModel(std::uint32_t protocols) : protocols_(protocols) {}

  [[nodiscard]] std::uint32_t protocol_count() const override {
    return protocols_;
  }
  [[nodiscard]] std::string protocol_name(std::uint32_t id) const override {
    return "seeded-" + std::to_string(id);
  }
  [[nodiscard]] double homogeneous_utility(std::uint32_t p, std::size_t,
                                           std::uint64_t seed) const override {
    return static_cast<double>(util::hash64(seed ^ (p * 2654435761ULL)) %
                               10000) /
           100.0;
  }
  [[nodiscard]] std::pair<double, double> mixed_utilities(
      std::uint32_t a, std::uint32_t b, std::size_t count_a, std::size_t,
      std::uint64_t seed) const override {
    const std::uint64_t mix =
        util::hash64(seed ^ (static_cast<std::uint64_t>(a) << 32) ^ b ^
                     count_a);
    return {static_cast<double>(mix % 997), static_cast<double>(mix % 991)};
  }

 private:
  std::uint32_t protocols_;
};

TEST(PraPerProtocol, MatchesBatchPassesExactly) {
  SeededModel model(7);
  core::PraConfig config;
  config.population = 20;
  config.performance_runs = 3;
  config.encounter_runs = 2;
  config.seed = 99;
  config.threads = 2;
  const core::PraEngine engine(model, config);

  const std::vector<double> raw = engine.raw_performance();
  const std::vector<double> robustness = engine.tournament(0.5);
  const std::vector<double> aggressiveness = engine.tournament(0.1);
  for (std::uint32_t p = 0; p < model.protocol_count(); ++p) {
    EXPECT_DOUBLE_EQ(raw[p], engine.raw_performance_of(p)) << p;
    EXPECT_DOUBLE_EQ(robustness[p], engine.win_rate_of(p, 0.5)) << p;
    EXPECT_DOUBLE_EQ(aggressiveness[p], engine.win_rate_of(p, 0.1)) << p;
  }
}

TEST(PraCheckpoint, PathFingerprintsTheOptions) {
  swarming::PraDatasetOptions a;
  a.path = "results/pra_results.csv";
  swarming::PraDatasetOptions b = a;
  EXPECT_EQ(swarming::pra_checkpoint_path(a),
            swarming::pra_checkpoint_path(b));
  const std::string base = swarming::pra_checkpoint_path(a).string();
  EXPECT_NE(base.find("results/pra_results.csv.partial-"), std::string::npos);

  b.pra.seed = a.pra.seed + 1;
  EXPECT_NE(swarming::pra_checkpoint_path(a), swarming::pra_checkpoint_path(b));
  b = a;
  b.rounds = a.rounds + 1;
  EXPECT_NE(swarming::pra_checkpoint_path(a), swarming::pra_checkpoint_path(b));
  b = a;
  b.pra.encounter_runs = a.pra.encounter_runs + 1;
  EXPECT_NE(swarming::pra_checkpoint_path(a), swarming::pra_checkpoint_path(b));
  // The checkpoint interval is pacing, not physics: same fingerprint.
  b = a;
  b.checkpoint_interval = a.checkpoint_interval * 2;
  EXPECT_EQ(swarming::pra_checkpoint_path(a), swarming::pra_checkpoint_path(b));
}

TEST(PraCheckpoint, SaveLoadRoundTripsAPrefix) {
  std::vector<swarming::PraRecord> records(5);
  for (std::uint32_t i = 0; i < records.size(); ++i) {
    records[i].protocol = i;
    records[i].raw_performance = 10.0 + i;
    records[i].robustness = 0.1 * i;
    records[i].aggressiveness = 0.05 * i;
  }
  const auto path = std::filesystem::temp_directory_path() /
                    "dsa_checkpoint_test.partial-feed";
  swarming::save_pra_checkpoint(records, 3, path);
  const auto loaded = swarming::load_pra_checkpoint(path);
  ASSERT_EQ(loaded.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded[i].protocol, i);
    EXPECT_DOUBLE_EQ(loaded[i].raw_performance, 10.0 + i);
    EXPECT_DOUBLE_EQ(loaded[i].robustness, 0.1 * i);
    EXPECT_DOUBLE_EQ(loaded[i].aggressiveness, 0.05 * i);
  }
  std::filesystem::remove(path);
}

TEST(PraCheckpoint, MissingOrMalformedCheckpointYieldsEmpty) {
  EXPECT_TRUE(
      swarming::load_pra_checkpoint("/nonexistent/missing.partial").empty());

  // Rows that are not a contiguous protocol prefix are treated as corrupt.
  const auto path = std::filesystem::temp_directory_path() /
                    "dsa_checkpoint_gap.partial-feed";
  util::CsvTable table(
      {"protocol", "raw_performance", "robustness", "aggressiveness"});
  table.add_row({"0", "1.0", "0.5", "0.5"});
  table.add_row({"2", "1.0", "0.5", "0.5"});  // gap: protocol 1 missing
  table.save(path);
  EXPECT_TRUE(swarming::load_pra_checkpoint(path).empty());
  std::filesystem::remove(path);
}

}  // namespace
