// Crash-tolerant PRA sweep machinery: per-protocol engine methods must
// reproduce the batch passes exactly (the property that makes resuming
// sound), and the checkpoint helpers must fingerprint options, round-trip
// partial results, and reject anything that is not a clean protocol prefix.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/pra.hpp"
#include "core/subspace.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/pra_dataset.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

using namespace dsa;

/// Seed-sensitive toy domain: utilities depend on (protocol, seed), so any
/// change in per-item seed derivation shows up as a numeric mismatch.
class SeededModel final : public core::EncounterModel {
 public:
  explicit SeededModel(std::uint32_t protocols) : protocols_(protocols) {}

  [[nodiscard]] std::uint32_t protocol_count() const override {
    return protocols_;
  }
  [[nodiscard]] std::string protocol_name(std::uint32_t id) const override {
    return "seeded-" + std::to_string(id);
  }
  [[nodiscard]] double homogeneous_utility(std::uint32_t p, std::size_t,
                                           std::uint64_t seed) const override {
    return static_cast<double>(util::hash64(seed ^ (p * 2654435761ULL)) %
                               10000) /
           100.0;
  }
  [[nodiscard]] std::pair<double, double> mixed_utilities(
      std::uint32_t a, std::uint32_t b, std::size_t count_a, std::size_t,
      std::uint64_t seed) const override {
    const std::uint64_t mix =
        util::hash64(seed ^ (static_cast<std::uint64_t>(a) << 32) ^ b ^
                     count_a);
    return {static_cast<double>(mix % 997), static_cast<double>(mix % 991)};
  }

 private:
  std::uint32_t protocols_;
};

TEST(PraPerProtocol, MatchesBatchPassesExactly) {
  SeededModel model(7);
  core::PraConfig config;
  config.population = 20;
  config.performance_runs = 3;
  config.encounter_runs = 2;
  config.seed = 99;
  config.threads = 2;
  const core::PraEngine engine(model, config);

  const std::vector<double> raw = engine.raw_performance();
  const std::vector<double> robustness = engine.tournament(0.5);
  const std::vector<double> aggressiveness = engine.tournament(0.1);
  for (std::uint32_t p = 0; p < model.protocol_count(); ++p) {
    EXPECT_DOUBLE_EQ(raw[p], engine.raw_performance_of(p)) << p;
    EXPECT_DOUBLE_EQ(robustness[p], engine.win_rate_of(p, 0.5)) << p;
    EXPECT_DOUBLE_EQ(aggressiveness[p], engine.win_rate_of(p, 0.1)) << p;
  }
}

TEST(PraCheckpoint, PathFingerprintsTheOptions) {
  swarming::PraDatasetOptions a;
  a.path = "results/pra_results.csv";
  swarming::PraDatasetOptions b = a;
  EXPECT_EQ(swarming::pra_checkpoint_path(a),
            swarming::pra_checkpoint_path(b));
  const std::string base = swarming::pra_checkpoint_path(a).string();
  EXPECT_NE(base.find("results/pra_results.csv.partial-"), std::string::npos);

  b.pra.seed = a.pra.seed + 1;
  EXPECT_NE(swarming::pra_checkpoint_path(a), swarming::pra_checkpoint_path(b));
  b = a;
  b.rounds = a.rounds + 1;
  EXPECT_NE(swarming::pra_checkpoint_path(a), swarming::pra_checkpoint_path(b));
  b = a;
  b.pra.encounter_runs = a.pra.encounter_runs + 1;
  EXPECT_NE(swarming::pra_checkpoint_path(a), swarming::pra_checkpoint_path(b));
  // The checkpoint interval is pacing, not physics: same fingerprint.
  b = a;
  b.checkpoint_interval = a.checkpoint_interval * 2;
  EXPECT_EQ(swarming::pra_checkpoint_path(a), swarming::pra_checkpoint_path(b));
}

TEST(PraCheckpoint, SaveLoadRoundTripsAPrefix) {
  std::vector<swarming::PraRecord> records(5);
  for (std::uint32_t i = 0; i < records.size(); ++i) {
    records[i].protocol = i;
    records[i].raw_performance = 10.0 + i;
    records[i].robustness = 0.1 * i;
    records[i].aggressiveness = 0.05 * i;
  }
  const auto path = std::filesystem::temp_directory_path() /
                    "dsa_checkpoint_test.partial-feed";
  swarming::save_pra_checkpoint(records, 3, path);
  const auto loaded = swarming::load_pra_checkpoint(path);
  ASSERT_EQ(loaded.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded[i].protocol, i);
    EXPECT_DOUBLE_EQ(loaded[i].raw_performance, 10.0 + i);
    EXPECT_DOUBLE_EQ(loaded[i].robustness, 0.1 * i);
    EXPECT_DOUBLE_EQ(loaded[i].aggressiveness, 0.05 * i);
  }
  std::filesystem::remove(path);
}

TEST(PraQuantify, MatchesPerProtocolMethodsExactly) {
  SeededModel model(9);
  core::PraConfig config;
  config.population = 20;
  config.performance_runs = 3;
  config.encounter_runs = 2;
  config.opponent_sample = 4;
  config.seed = 123;
  config.threads = 3;
  const core::PraEngine engine(model, config);

  const auto metrics = engine.quantify(2, 7);
  ASSERT_EQ(metrics.size(), 5u);
  for (std::uint32_t i = 0; i < metrics.size(); ++i) {
    const std::uint32_t p = 2 + i;
    EXPECT_DOUBLE_EQ(metrics[i].raw_performance, engine.raw_performance_of(p))
        << p;
    EXPECT_DOUBLE_EQ(metrics[i].robustness, engine.win_rate_of(p, 0.5)) << p;
    EXPECT_DOUBLE_EQ(metrics[i].aggressiveness,
                     engine.win_rate_of(p, config.minority_fraction))
        << p;
  }
  EXPECT_TRUE(engine.quantify(3, 3).empty());
  EXPECT_THROW(engine.quantify(5, 4), std::invalid_argument);
  EXPECT_THROW(engine.quantify(0, 10), std::invalid_argument);
}

// ------------------------------------ sweep determinism & golden bytes ----

/// The scale knobs of one PRA determinism/fingerprint scenario.
struct SliceScale {
  std::size_t rounds = 120;
  std::size_t performance_runs = 3;
  std::size_t encounter_runs = 1;
};

/// Computes a small PRA slice over named protocols with the real simulator
/// and returns the exact bytes save_pra_checkpoint would persist — the same
/// fingerprint the crash-tolerant sweep trusts when resuming. `passes` lets
/// a caller run the same batch repeatedly on one engine (so the second pass
/// reuses the pool's thread-local simulation workspaces).
std::string pra_slice_bytes(swarming::SimEngine sim_engine,
                            std::size_t threads, const SliceScale& scale,
                            std::size_t passes = 1,
                            std::size_t batch_width = 1) {
  swarming::SimulationConfig sim;
  sim.rounds = scale.rounds;
  sim.engine = sim_engine;
  const swarming::SwarmingModel model(
      sim, swarming::BandwidthDistribution::piatek());
  const core::SubspaceModel subset(
      model, {swarming::encode_protocol(swarming::bittorrent_protocol()),
              swarming::encode_protocol(swarming::birds_protocol()),
              swarming::encode_protocol(swarming::loyal_when_needed_protocol()),
              swarming::encode_protocol(swarming::sort_s_protocol())});
  core::PraConfig config;
  config.population = 20;
  config.performance_runs = scale.performance_runs;
  config.encounter_runs = scale.encounter_runs;
  config.seed = 2011;
  config.threads = threads;
  config.batch_width = batch_width;
  const core::PraEngine engine(subset, config);

  std::vector<core::ProtocolMetrics> metrics;
  for (std::size_t pass = 0; pass < passes; ++pass) {
    metrics = engine.quantify(0, subset.protocol_count());
  }
  std::vector<swarming::PraRecord> records(metrics.size());
  for (std::uint32_t i = 0; i < metrics.size(); ++i) {
    records[i].protocol = i;
    records[i].raw_performance = metrics[i].raw_performance;
    records[i].robustness = metrics[i].robustness;
    records[i].aggressiveness = metrics[i].aggressiveness;
  }
  const auto path = std::filesystem::temp_directory_path() /
                    "dsa_slice_test.partial-bytes";
  swarming::save_pra_checkpoint(records, records.size(), path);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  std::filesystem::remove(path);
  return bytes.str();
}

TEST(PraDeterminism, ThreadCountAndWorkspaceReuseDoNotChangeBytes) {
  // The same slice computed with 1 thread, 4 threads, and on an engine
  // whose pool (and thread-local workspaces) already ran the batch must
  // produce byte-identical CSVs — scheduling and workspace reuse are
  // invisible in the numbers.
  const SliceScale scale;
  const std::string one_thread =
      pra_slice_bytes(swarming::SimEngine::kSparse, 1, scale);
  const std::string four_threads =
      pra_slice_bytes(swarming::SimEngine::kSparse, 4, scale);
  const std::string reused_workspace =
      pra_slice_bytes(swarming::SimEngine::kSparse, 4, scale, /*passes=*/2);
  EXPECT_FALSE(one_thread.empty());
  EXPECT_EQ(one_thread, four_threads);
  EXPECT_EQ(one_thread, reused_workspace);
}

TEST(PraGoldenFingerprint, SparseMatchesDenseAtDefaultScale) {
  // The dense engine is the seed implementation's hot path, byte for byte;
  // equality of the persisted CSVs is the golden-fingerprint guarantee that
  // the optimized sweep changed nothing at the default DSA_* scale.
  const SliceScale scale;  // default-scale knobs: 120 rounds, 3+1 runs
  EXPECT_EQ(pra_slice_bytes(swarming::SimEngine::kSparse, 2, scale),
            pra_slice_bytes(swarming::SimEngine::kDense, 2, scale));
}

TEST(PraGoldenFingerprint, BatchMatchesSparseAtDefaultScaleAcrossWidths) {
  // The batched quantify grid only regroups tasks: every width — including
  // widths that leave odd remainders against the 3-run / 3-opponent game
  // counts — must persist the same CSV bytes as the scalar sparse sweep,
  // with 1 and with 4 worker threads.
  const SliceScale scale;
  const std::string golden =
      pra_slice_bytes(swarming::SimEngine::kSparse, 2, scale);
  for (const std::size_t width : {std::size_t{1}, std::size_t{4},
                                  std::size_t{5}, std::size_t{8}}) {
    SCOPED_TRACE("batch width " + std::to_string(width));
    EXPECT_EQ(golden, pra_slice_bytes(swarming::SimEngine::kBatch, 1, scale,
                                      /*passes=*/1, width));
    EXPECT_EQ(golden, pra_slice_bytes(swarming::SimEngine::kBatch, 4, scale,
                                      /*passes=*/1, width));
  }
  // Workspace reuse across passes must be invisible on the batch engine too.
  EXPECT_EQ(golden, pra_slice_bytes(swarming::SimEngine::kBatch, 4, scale,
                                    /*passes=*/2, 8));
}

TEST(PraGoldenFingerprint, SparseMatchesDenseAtFullSubsetScale) {
  // DSA_FULL-subset scale: the paper-fidelity 500 rounds and 10 encounter
  // runs, on the named-protocol subset so the test stays tier-1 fast.
  SliceScale scale;
  scale.rounds = 500;
  scale.performance_runs = 10;
  scale.encounter_runs = 10;
  EXPECT_EQ(pra_slice_bytes(swarming::SimEngine::kSparse, 2, scale),
            pra_slice_bytes(swarming::SimEngine::kDense, 2, scale));
}

TEST(PraGoldenFingerprint, BatchMatchesSparseAtFullSubsetScale) {
  // The same paper-fidelity subset scale on the lockstep engine at the
  // auto-selected width 8 (10 runs per protocol: one full batch of 8 plus
  // an odd remainder of 2).
  SliceScale scale;
  scale.rounds = 500;
  scale.performance_runs = 10;
  scale.encounter_runs = 10;
  EXPECT_EQ(pra_slice_bytes(swarming::SimEngine::kSparse, 2, scale),
            pra_slice_bytes(swarming::SimEngine::kBatch, 2, scale,
                            /*passes=*/1, 8));
}

TEST(PraCheckpoint, MissingOrMalformedCheckpointYieldsEmpty) {
  EXPECT_TRUE(
      swarming::load_pra_checkpoint("/nonexistent/missing.partial").empty());

  // Rows that are not a contiguous protocol prefix are treated as corrupt.
  const auto path = std::filesystem::temp_directory_path() /
                    "dsa_checkpoint_gap.partial-feed";
  util::CsvTable table(
      {"protocol", "raw_performance", "robustness", "aggressiveness"});
  table.add_row({"0", "1.0", "0.5", "0.5"});
  table.add_row({"2", "1.0", "0.5", "0.5"});  // gap: protocol 1 missing
  table.save(path);
  EXPECT_TRUE(swarming::load_pra_checkpoint(path).empty());
  std::filesystem::remove(path);
}

}  // namespace
