// Tests for src/scenario: spec parsing (strict, key-path errors), plan
// expansion (deterministic, order-stable), and the crash-tolerant job
// runner (kill-and-resume must reproduce an uninterrupted run's output
// byte for byte).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/pra.hpp"
#include "scenario/plan.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/pra_dataset.hpp"
#include "swarming/protocol.hpp"
#include "util/json.hpp"

namespace {

namespace fs = std::filesystem;
using namespace dsa;
using util::json::ParseError;
using util::json::SchemaError;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------- spec parser ----

TEST(SpecParser, UnknownParamNamesKindAndAllowedList) {
  const std::string json = R"({"scenario": "t", "kind": "swarm",
    "output": "o.csv", "params": {"fractoin": 0.5}})";
  try {
    (void)scenario::parse_scenario_text(json, "bad.json");
    FAIL() << "expected SchemaError";
  } catch (const SchemaError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("bad.json"), std::string::npos) << what;
    EXPECT_NE(what.find("$.params"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown parameter \"fractoin\""), std::string::npos)
        << what;
    EXPECT_NE(what.find("swarm"), std::string::npos) << what;
    EXPECT_NE(what.find("fraction"), std::string::npos) << what;  // allowed
  }
}

TEST(SpecParser, RangeViolationNamesKeyPath) {
  const std::string json = R"({"scenario": "t", "kind": "swarm",
    "output": "o.csv", "params": {"fraction": 1.5}})";
  try {
    (void)scenario::parse_scenario_text(json, "bad.json");
    FAIL() << "expected SchemaError";
  } catch (const SchemaError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("$.params.fraction"), std::string::npos) << what;
    EXPECT_NE(what.find("(0, 1)"), std::string::npos) << what;
  }
}

TEST(SpecParser, GridValueErrorNamesElementPath) {
  const std::string json = R"({"scenario": "t", "kind": "swarm",
    "output": "o.csv", "params": {"a": ["bt", "ghost"]}})";
  try {
    (void)scenario::parse_scenario_text(json, "bad.json");
    FAIL() << "expected SchemaError";
  } catch (const SchemaError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("$.params.a[1]"), std::string::npos) << what;
    EXPECT_NE(what.find("ghost"), std::string::npos) << what;
  }
}

TEST(SpecParser, SweepRejectsParameterGrids) {
  const std::string json = R"({"scenario": "t", "kind": "sweep",
    "output": "o.csv", "params": {"rounds": [10, 20]}})";
  EXPECT_THROW((void)scenario::parse_scenario_text(json), SchemaError);
}

TEST(SpecParser, UnknownTopLevelKeyRejected) {
  const std::string json = R"({"scenario": "t", "kind": "sweep",
    "output": "o.csv", "parms": {}})";
  try {
    (void)scenario::parse_scenario_text(json);
    FAIL() << "expected SchemaError";
  } catch (const SchemaError& error) {
    EXPECT_NE(std::string(error.what()).find("unknown key \"parms\""),
              std::string::npos)
        << error.what();
  }
}

TEST(SpecParser, MalformedJsonNamesLine) {
  try {
    (void)scenario::parse_scenario_text("{\n  \"scenario\" \"x\"\n}",
                                        "spec.json");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("spec.json:2"), std::string::npos)
        << error.what();
  }
}

TEST(SpecParser, RequiredKeysEnforced) {
  EXPECT_THROW((void)scenario::parse_scenario_text(
                   R"({"kind": "sweep", "output": "o.csv"})"),
               SchemaError);
  EXPECT_THROW((void)scenario::parse_scenario_text(
                   R"({"scenario": "t", "output": "o.csv"})"),
               SchemaError);
  EXPECT_THROW((void)scenario::parse_scenario_text(
                   R"({"scenario": "t", "kind": "sweep"})"),
               SchemaError);
  EXPECT_THROW(
      (void)scenario::parse_scenario_text(
          R"({"scenario": "t", "kind": "quantum", "output": "o.csv"})"),
      SchemaError);
}

TEST(SpecParser, ChunkOnlyValidForSweep) {
  EXPECT_THROW((void)scenario::parse_scenario_text(
                   R"({"scenario": "t", "kind": "swarm", "output": "o.csv",
                       "chunk": 8})"),
               SchemaError);
}

TEST(SpecParser, DefaultsMatchExplicitValues) {
  const scenario::ScenarioSpec implicit = scenario::parse_scenario_text(
      R"({"scenario": "a", "kind": "ess", "output": "x.csv"})");
  const scenario::ScenarioSpec explicit_spec = scenario::parse_scenario_text(
      R"({"scenario": "b", "kind": "ess", "output": "y.csv",
          "params": {"protocol": "bt", "rounds": 200, "population": 50,
                     "mutant_fraction": 0.1, "runs": 1, "mutant_sample": 24,
                     "seed": 2011}})");
  // Name and output are identity, not content: fingerprints must agree.
  EXPECT_EQ(implicit.fingerprint(), explicit_spec.fingerprint());
}

TEST(SpecParser, KeyOrderDoesNotChangeFingerprintOrJobOrder) {
  const scenario::ScenarioSpec a = scenario::parse_scenario_text(
      R"({"scenario": "t", "kind": "evolution", "output": "o.csv",
          "params": {"seed": [1, 2], "generations": [4, 6]}})");
  const scenario::ScenarioSpec b = scenario::parse_scenario_text(
      R"({"scenario": "t", "kind": "evolution", "output": "o.csv",
          "params": {"generations": [4, 6], "seed": [1, 2]}})");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  const scenario::Plan pa = scenario::expand_plan(a);
  const scenario::Plan pb = scenario::expand_plan(b);
  ASSERT_EQ(pa.jobs.size(), pb.jobs.size());
  for (std::size_t i = 0; i < pa.jobs.size(); ++i) {
    EXPECT_EQ(pa.jobs[i].fingerprint, pb.jobs[i].fingerprint) << i;
    EXPECT_EQ(pa.jobs[i].label, pb.jobs[i].label) << i;
  }
}

// ------------------------------------------------------- plan expansion ----

TEST(PlanExpansion, GridIsCartesianLastAxisFastest) {
  const scenario::Plan plan = scenario::expand_plan(scenario::parse_scenario_text(
      R"({"scenario": "t", "kind": "evolution", "output": "o.csv",
          "params": {"generations": [4, 6], "seed": [1, 2, 3]}})"));
  ASSERT_EQ(plan.jobs.size(), 6u);
  // Table order puts generations before seed, so seed varies fastest.
  EXPECT_EQ(plan.jobs[0].label, "generations=4 seed=1");
  EXPECT_EQ(plan.jobs[1].label, "generations=4 seed=2");
  EXPECT_EQ(plan.jobs[2].label, "generations=4 seed=3");
  EXPECT_EQ(plan.jobs[3].label, "generations=6 seed=1");
  EXPECT_EQ(plan.jobs[5].label, "generations=6 seed=3");
  EXPECT_EQ(plan.jobs[4].params.get_int("generations"), 6);
  EXPECT_EQ(plan.jobs[4].params.get_int("seed"), 2);
}

TEST(PlanExpansion, IsDeterministicAcrossCalls) {
  const scenario::ScenarioSpec spec = scenario::parse_scenario_text(
      R"({"scenario": "t", "kind": "swarm", "output": "o.csv",
          "params": {"a": ["bt", "birds"], "intensity": [0.0, 0.5]}})");
  const scenario::Plan first = scenario::expand_plan(spec);
  const scenario::Plan second = scenario::expand_plan(spec);
  ASSERT_EQ(first.jobs.size(), 4u);
  for (std::size_t i = 0; i < first.jobs.size(); ++i) {
    EXPECT_EQ(first.jobs[i].fingerprint, second.jobs[i].fingerprint);
    EXPECT_EQ(first.jobs[i].index, i);
  }
  // Distinct jobs must not collide.
  for (std::size_t i = 0; i < first.jobs.size(); ++i) {
    for (std::size_t j = i + 1; j < first.jobs.size(); ++j) {
      EXPECT_NE(first.jobs[i].fingerprint, first.jobs[j].fingerprint);
    }
  }
}

TEST(PlanExpansion, SweepShardsSelectionIntoChunks) {
  const scenario::Plan plan = scenario::expand_plan(scenario::parse_scenario_text(
      R"({"scenario": "t", "kind": "sweep", "output": "o.csv", "chunk": 3,
          "params": {"protocols": "stride:500"}})"));
  // stride:500 -> ids 0,500,...,3000 = 7 ids -> shards of 3,3,1.
  ASSERT_EQ(plan.jobs.size(), 3u);
  EXPECT_EQ(plan.jobs[0].protocols,
            (std::vector<std::uint32_t>{0, 500, 1000}));
  EXPECT_EQ(plan.jobs[1].protocols,
            (std::vector<std::uint32_t>{1500, 2000, 2500}));
  EXPECT_EQ(plan.jobs[2].protocols, (std::vector<std::uint32_t>{3000}));
  EXPECT_EQ(plan.jobs[0].label, "protocols 0..1000");
  // Different shards hash differently even with identical parameters.
  EXPECT_NE(plan.jobs[0].fingerprint, plan.jobs[1].fingerprint);
}

// ---------------------------------------------------------------- runner ----

class ScenarioRunner : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case AND per process: ctest runs cases concurrently
    // in separate processes, so a plain counter would collide.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("dsa_scenario_test_" + std::string(info->name()) + "_" +
            std::to_string(static_cast<long long>(::getpid())));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// A fast 4-job evolution grid writing to `name` inside the temp dir.
  scenario::Plan evolution_plan(const std::string& name,
                                std::size_t retries = 0) const {
    const std::string json =
        R"({"scenario": "grid", "kind": "evolution", "output": ")" +
        (dir_ / name).string() + R"(", "retries": )" +
        std::to_string(retries) +
        R"(, "params": {"menu": "bt,birds", "rounds": 40, "population": 20,
            "generations": [4, 6, 8, 10], "runs_per_generation": 1,
            "seed": 9}})";
    return scenario::expand_plan(scenario::parse_scenario_text(json));
  }

  static scenario::RunOptions quiet(std::size_t threads = 1) {
    scenario::RunOptions options;
    options.verbose = false;
    options.threads = threads;
    return options;
  }

  fs::path dir_;
};

TEST_F(ScenarioRunner, ThreadCountNeverChangesOutputBytes) {
  const scenario::Plan one = evolution_plan("one.csv");
  const scenario::Plan three = evolution_plan("three.csv");
  const auto r1 = scenario::run_scenario(one, quiet(1));
  const auto r3 = scenario::run_scenario(three, quiet(3));
  EXPECT_EQ(r1.executed, 4u);
  EXPECT_EQ(r3.executed, 4u);
  const std::string bytes = read_file(one.spec.output);
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, read_file(three.spec.output));
}

TEST_F(ScenarioRunner, KillAndResumeIsByteIdenticalAndSkipsCompletedJobs) {
  // Reference: one uninterrupted run.
  const scenario::Plan reference = evolution_plan("reference.csv");
  scenario::run_scenario(reference, quiet(1));
  const std::string expected = read_file(reference.spec.output);

  // Interrupted run: the max_jobs hook kills the process-equivalent after
  // two jobs; the manifest must hold exactly those two.
  const scenario::Plan plan = evolution_plan("resumed.csv");
  scenario::RunOptions abort_options = quiet(1);
  abort_options.max_jobs = 2;
  EXPECT_THROW(scenario::run_scenario(plan, abort_options),
               scenario::RunAborted);
  EXPECT_FALSE(fs::exists(plan.spec.output));
  EXPECT_EQ(scenario::completed_jobs_in_manifest(plan),
            (std::vector<std::size_t>{0, 1}));

  // Resume: completed jobs are skipped, the rest run, and the merged file
  // is byte-identical to the uninterrupted run. The manifest is gone.
  const auto report = scenario::run_scenario(plan, quiet(2));
  EXPECT_EQ(report.skipped, 2u);
  EXPECT_EQ(report.executed, 2u);
  EXPECT_EQ(read_file(plan.spec.output), expected);
  EXPECT_FALSE(fs::exists(scenario::manifest_path(plan)));
}

TEST_F(ScenarioRunner, TornManifestTailIsIgnoredOnResume) {
  const scenario::Plan reference = evolution_plan("reference.csv");
  scenario::run_scenario(reference, quiet(1));
  const std::string expected = read_file(reference.spec.output);

  const scenario::Plan plan = evolution_plan("torn.csv");
  scenario::RunOptions abort_options = quiet(1);
  abort_options.max_jobs = 2;
  EXPECT_THROW(scenario::run_scenario(plan, abort_options),
               scenario::RunAborted);
  {
    // A kill mid-append leaves a partial line with no newline.
    std::ofstream out(scenario::manifest_path(plan),
                      std::ios::binary | std::ios::app);
    out << R"({"job":2,"fp":"dead)";
  }
  EXPECT_EQ(scenario::completed_jobs_in_manifest(plan),
            (std::vector<std::size_t>{0, 1}));
  const auto report = scenario::run_scenario(plan, quiet(1));
  EXPECT_EQ(report.skipped, 2u);
  EXPECT_EQ(report.executed, 2u);
  EXPECT_EQ(read_file(plan.spec.output), expected);
}

TEST_F(ScenarioRunner, ForeignManifestIsDistrusted) {
  const scenario::Plan plan = evolution_plan("foreign.csv");
  {
    std::ofstream out(scenario::manifest_path(plan), std::ios::binary);
    out << "{\"scenario\":\"other\",\"spec_fp\":\"0000000000000000\","
           "\"jobs\":4,\"columns\":[]}\n";
  }
  EXPECT_TRUE(scenario::completed_jobs_in_manifest(plan).empty());
  const auto report = scenario::run_scenario(plan, quiet(1));
  EXPECT_EQ(report.executed, 4u);
  EXPECT_EQ(report.skipped, 0u);
}

TEST_F(ScenarioRunner, RetriesTransientFailuresThenSucceeds) {
  const scenario::Plan plan = evolution_plan("retry.csv", /*retries=*/1);
  scenario::RunOptions options = quiet(1);
  std::atomic<int> failures_injected{0};
  options.before_attempt = [&](std::size_t job, std::size_t attempt) {
    if (job == 1 && attempt == 0) {
      failures_injected.fetch_add(1);
      throw std::runtime_error("injected transient failure");
    }
  };
  const auto report = scenario::run_scenario(plan, options);
  EXPECT_EQ(failures_injected.load(), 1);
  EXPECT_EQ(report.retried, 1u);
  EXPECT_EQ(report.executed, 4u);
  EXPECT_TRUE(fs::exists(plan.spec.output));
}

TEST_F(ScenarioRunner, ExhaustedRetriesThrowButKeepCompletedJobs) {
  const scenario::Plan plan = evolution_plan("fails.csv", /*retries=*/0);
  scenario::RunOptions options = quiet(1);
  options.before_attempt = [](std::size_t job, std::size_t) {
    if (job == 2) throw std::runtime_error("injected permanent failure");
  };
  try {
    scenario::run_scenario(plan, options);
    FAIL() << "expected runtime_error";
  } catch (const scenario::RunAborted&) {
    FAIL() << "wrong exception type";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("job 2"), std::string::npos) << what;
    EXPECT_NE(what.find("injected permanent failure"), std::string::npos)
        << what;
  }
  EXPECT_FALSE(fs::exists(plan.spec.output));
  EXPECT_EQ(scenario::completed_jobs_in_manifest(plan),
            (std::vector<std::size_t>{0, 1, 3}));

  // A later clean run finishes only the failed job.
  const auto report = scenario::run_scenario(plan, quiet(1));
  EXPECT_EQ(report.skipped, 3u);
  EXPECT_EQ(report.executed, 1u);
}

TEST_F(ScenarioRunner, ExistingOutputShortCircuits) {
  const scenario::Plan plan = evolution_plan("done.csv");
  {
    std::ofstream out(plan.spec.output, std::ios::binary);
    out << "sentinel";
  }
  const auto report = scenario::run_scenario(plan, quiet(1));
  EXPECT_TRUE(report.reused_output);
  EXPECT_EQ(report.executed, 0u);
  EXPECT_EQ(read_file(plan.spec.output), "sentinel");
}

TEST_F(ScenarioRunner, KeepManifestRetainsTheJsonl) {
  const scenario::Plan plan = evolution_plan("kept.csv");
  scenario::RunOptions options = quiet(1);
  options.keep_manifest = true;
  scenario::run_scenario(plan, options);
  EXPECT_TRUE(fs::exists(scenario::manifest_path(plan)));
  EXPECT_EQ(scenario::completed_jobs_in_manifest(plan),
            (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST_F(ScenarioRunner, SweepMergeMatchesCanonicalDatasetWriter) {
  // A miniature of the acceptance criterion: the sharded, resumable sweep
  // must produce the same bytes save_pra_dataset would write for the same
  // records (the full-space spec then reproduces results/pra_results.csv).
  const std::string out = (dir_ / "sweep.csv").string();
  const std::string json =
      R"({"scenario": "mini-sweep", "kind": "sweep", "output": ")" + out +
      R"(", "chunk": 2, "params": {"protocols": "0,1,2,3,4,5", "rounds": 8,
          "population": 10, "performance_runs": 1, "encounter_runs": 1,
          "opponent_sample": 4, "minority_fraction": 0.2, "seed": 3}})";
  const scenario::Plan plan =
      scenario::expand_plan(scenario::parse_scenario_text(json));
  ASSERT_EQ(plan.jobs.size(), 3u);
  scenario::run_scenario(plan, quiet(2));

  swarming::SimulationConfig sim;
  sim.rounds = 8;
  const swarming::SwarmingModel model(
      sim, swarming::BandwidthDistribution::piatek());
  core::PraConfig pra;
  pra.population = 10;
  pra.performance_runs = 1;
  pra.encounter_runs = 1;
  pra.opponent_sample = 4;
  pra.minority_fraction = 0.2;
  pra.seed = 3;
  pra.threads = 1;
  const core::PraEngine engine(model, pra);
  std::vector<swarming::PraRecord> records;
  for (std::uint32_t id = 0; id < 6; ++id) {
    const auto metrics = engine.quantify(id, id + 1);
    swarming::PraRecord rec;
    rec.protocol = id;
    rec.spec = swarming::decode_protocol(id);
    rec.raw_performance = metrics.front().raw_performance;
    rec.robustness = metrics.front().robustness;
    rec.aggressiveness = metrics.front().aggressiveness;
    records.push_back(rec);
  }
  double best = 0.0;
  for (const auto& rec : records) best = std::max(best, rec.raw_performance);
  for (auto& rec : records) {
    rec.performance = best > 0.0 ? rec.raw_performance / best : 0.0;
  }
  const fs::path reference = dir_ / "reference.csv";
  swarming::save_pra_dataset(records, reference);
  EXPECT_EQ(read_file(out), read_file(reference));
}

TEST_F(ScenarioRunner, BatchedSweepKillAndResumeMatchesScalarSweep) {
  // The batch engine through the scenario runner: a sweep on
  // engine=batch/batch_width=4, killed after one chunk and resumed, must
  // merge to the same bytes as an uninterrupted scalar sparse sweep of the
  // same spec — engine, width, kill point, and thread count are all
  // invisible in the output.
  const auto sweep_json = [this](const std::string& name,
                                 const std::string& engine_params) {
    return R"({"scenario": "mini-sweep", "kind": "sweep", "output": ")" +
           (dir_ / name).string() +
           R"(", "chunk": 2, "params": {"protocols": "0,1,2,3,4,5",
               "rounds": 8, "population": 10, "performance_runs": 1,
               "encounter_runs": 1, "opponent_sample": 4,
               "minority_fraction": 0.2, "seed": 3)" +
           engine_params + "}}";
  };
  const scenario::Plan scalar = scenario::expand_plan(
      scenario::parse_scenario_text(sweep_json("scalar.csv", "")));
  scenario::run_scenario(scalar, quiet(1));
  const std::string expected = read_file(scalar.spec.output);
  ASSERT_FALSE(expected.empty());

  const scenario::Plan batched =
      scenario::expand_plan(scenario::parse_scenario_text(sweep_json(
          "batched.csv", R"(, "engine": "batch", "batch_width": 4)")));
  ASSERT_EQ(batched.jobs.size(), 3u);
  scenario::RunOptions abort_options = quiet(1);
  abort_options.max_jobs = 1;
  EXPECT_THROW(scenario::run_scenario(batched, abort_options),
               scenario::RunAborted);
  EXPECT_EQ(scenario::completed_jobs_in_manifest(batched),
            (std::vector<std::size_t>{0}));

  const auto report = scenario::run_scenario(batched, quiet(2));
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.executed, 2u);
  EXPECT_EQ(read_file(batched.spec.output), expected);
}

}  // namespace
