// Tests for the simulator's modeling knobs: stranger-probe efficiency, the
// fixed-lane vs divide-among-selected ablation, and the optional receiver
// intake cap.
#include <gtest/gtest.h>

#include <vector>

#include "swarming/bandwidth.hpp"
#include "swarming/protocol.hpp"
#include "swarming/simulator.hpp"

namespace {

using namespace dsa::swarming;

const BandwidthDistribution& piatek() {
  static const BandwidthDistribution dist = BandwidthDistribution::piatek();
  return dist;
}

SimulationConfig quick(std::uint64_t seed = 1) {
  SimulationConfig config;
  config.rounds = 150;
  config.seed = seed;
  return config;
}

// ------------------------------------------------- stranger efficiency ----

TEST(SimKnobs, GiftOnlyProtocolThroughputScalesWithStrangerEfficiency) {
  // A partnerless gifter delivers exactly stranger_efficiency of its
  // capacity, so population throughput is linear in the knob.
  ProtocolSpec gifter;
  gifter.stranger_slots = 2;
  gifter.partner_slots = 0;

  SimulationConfig low = quick(3);
  low.stranger_efficiency = 0.2;
  SimulationConfig high = quick(3);
  high.stranger_efficiency = 0.4;

  const double at_low =
      run_homogeneous_throughput(gifter, 30, low, piatek());
  const double at_high =
      run_homogeneous_throughput(gifter, 30, high, piatek());
  EXPECT_GT(at_low, 0.0);
  EXPECT_NEAR(at_high, 2.0 * at_low, 0.05 * at_high);
}

TEST(SimKnobs, GiftOnlyCeilingSitsNearThePapersFreeriderCeiling) {
  // With the default 0.3 probe efficiency, the best gift-only protocol
  // lands near the paper's ~0.31 normalized-performance ceiling relative
  // to full capacity use.
  ProtocolSpec gifter;
  gifter.stranger_slots = 3;
  gifter.partner_slots = 0;
  const double gift_throughput =
      run_homogeneous_throughput(gifter, 50, quick(5), piatek());

  const std::vector<double> caps = piatek().stratified_sample(50);
  double cap_mean = 0.0;
  for (double c : caps) cap_mean += c;
  cap_mean /= 50.0;

  const double normalized = gift_throughput / cap_mean;
  EXPECT_GT(normalized, 0.15);
  EXPECT_LT(normalized, 0.45);
}

TEST(SimKnobs, SortSBeatsBitTorrentBecauseDefectionIsFree) {
  // Sec. 4.4 / Fig. 10's counter-intuitive headline, reproduced: Sort-S
  // pays no stranger-probe tax (Defect lanes carry nothing and cost
  // nothing), so it outperforms the BitTorrent reference homogeneously.
  SimulationConfig config = quick(0);
  config.rounds = 300;
  double sort_s = 0.0, bt = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    config.seed = seed;
    sort_s += run_homogeneous_throughput(sort_s_protocol(), 50, config,
                                         piatek());
    bt += run_homogeneous_throughput(bittorrent_protocol(), 50, config,
                                     piatek());
  }
  EXPECT_GT(sort_s, bt);
}

// ------------------------------------------------------- lane ablation ----

TEST(SimKnobs, DivideAmongSelectedRemovesUnfilledLaneWaste) {
  // Under the idealized lane model a k = 9 protocol with few candidates
  // delivers at least as much as under fixed lanes.
  ProtocolSpec spec = bittorrent_protocol();
  spec.partner_slots = 9;
  SimulationConfig fixed = quick(7);
  SimulationConfig ideal = quick(7);
  ideal.lane_model = LaneModel::kDivideAmongSelected;
  const double under_fixed =
      run_homogeneous_throughput(spec, 20, fixed, piatek());
  const double under_ideal =
      run_homogeneous_throughput(spec, 20, ideal, piatek());
  EXPECT_GE(under_ideal, under_fixed * 0.999);
}

TEST(SimKnobs, LaneModelsAgreeWhenLanesAreAlwaysFull) {
  // A k = 1 protocol virtually always fills its single lane, so the two
  // lane models coincide (same seeds, same choices).
  ProtocolSpec spec = sort_s_protocol();
  SimulationConfig fixed = quick(9);
  SimulationConfig ideal = quick(9);
  ideal.lane_model = LaneModel::kDivideAmongSelected;
  const double a = run_homogeneous_throughput(spec, 20, fixed, piatek());
  const double b = run_homogeneous_throughput(spec, 20, ideal, piatek());
  EXPECT_NEAR(a, b, a * 0.02);
}

// ----------------------------------------------------------- intake cap ----

TEST(SimKnobs, IntakeCapBoundsEveryPeersThroughput) {
  SimulationConfig config = quick(11);
  config.intake_factor = 1.0;
  const std::vector<double> caps = piatek().stratified_sample(30);
  const std::vector<ProtocolSpec> protocols(30, bittorrent_protocol());
  const auto outcome = simulate_rounds(protocols, caps, config);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_LE(outcome.peer_throughput[i], caps[i] * 1.0 + 1e-9);
  }
}

TEST(SimKnobs, IntakeCapOnlyEverReducesThroughput) {
  SimulationConfig open = quick(13);
  SimulationConfig capped = quick(13);
  capped.intake_factor = 2.0;
  for (const ProtocolSpec& spec :
       {bittorrent_protocol(), birds_protocol(), sort_s_protocol()}) {
    const double unbounded =
        run_homogeneous_throughput(spec, 25, open, piatek());
    const double bounded =
        run_homogeneous_throughput(spec, 25, capped, piatek());
    EXPECT_LE(bounded, unbounded * 1.0001) << spec.describe();
  }
}

// ---------------------------------------------------------- round series ----

TEST(SimKnobs, RoundSeriesMatchesAggregateThroughput) {
  SimulationConfig config = quick(21);
  config.record_round_series = true;
  const std::vector<ProtocolSpec> protocols(20, bittorrent_protocol());
  const std::vector<double> caps = piatek().stratified_sample(20);
  const auto outcome = simulate_rounds(protocols, caps, config);
  ASSERT_EQ(outcome.round_throughput.size(), config.rounds);
  // Mean of the per-round series equals the population mean of the run.
  double series_mean = 0.0;
  for (double r : outcome.round_throughput) series_mean += r;
  series_mean /= static_cast<double>(config.rounds);
  EXPECT_NEAR(series_mean, outcome.population_mean(),
              1e-9 * (1.0 + series_mean));
}

TEST(SimKnobs, RoundSeriesIsEmptyWhenDisabled) {
  SimulationConfig config = quick(23);
  const std::vector<ProtocolSpec> protocols(10, bittorrent_protocol());
  const auto outcome =
      simulate_rounds(protocols, piatek().stratified_sample(10), config);
  EXPECT_TRUE(outcome.round_throughput.empty());
}

TEST(SimKnobs, CooperationRampsUpOverEarlyRounds) {
  // Bootstrap dynamics: the first round moves almost nothing (only
  // stranger probes), later rounds carry partner lanes.
  SimulationConfig config = quick(25);
  config.record_round_series = true;
  config.rounds = 50;
  const std::vector<ProtocolSpec> protocols(30, bittorrent_protocol());
  const auto outcome =
      simulate_rounds(protocols, piatek().stratified_sample(30), config);
  const double first = outcome.round_throughput.front();
  double late = 0.0;
  for (std::size_t r = 40; r < 50; ++r) late += outcome.round_throughput[r];
  late /= 10.0;
  EXPECT_LT(first, late * 0.5);
}

TEST(SimKnobs, IntakeCapPenalizesCapacityBlindPairingMost) {
  // Under a tight intake cap, capacity-assortative ranking (Proximity)
  // loses less than capacity-blind ranking (Random): the mismatch-cost
  // argument behind Birds.
  SimulationConfig capped = quick(17);
  capped.rounds = 250;
  capped.intake_factor = 1.0;
  auto perf = [&](RankingFunction ranking) {
    ProtocolSpec spec = bittorrent_protocol();
    spec.ranking = ranking;
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      capped.seed = seed;
      total += run_homogeneous_throughput(spec, 50, capped, piatek());
    }
    return total;
  };
  EXPECT_GT(perf(RankingFunction::kProximity),
            perf(RankingFunction::kRandom));
}

}  // namespace
