// Sampling-profiler suite (obs/flame + Profiler live stacks): lock-free
// live-stack snapshots across threads, folded-text round-trips, attribution
// accounting, the terminal renderer, strict DSA_PROF* parsing, and the
// bitwise determinism contract with the sampler thread running.
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pra.hpp"
#include "core/subspace.hpp"
#include "obs/flame/flame.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "swarming/dsa_model.hpp"

namespace {

using namespace dsa;

std::filesystem::path temp_file(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

/// Restores an environment variable on scope exit.
struct EnvGuard {
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  const char* name_;
  std::string old_;
  bool had_ = false;
};

// --- folded text (pure, no instrumentation needed) ------------------------

TEST(Folded, TextRoundTripsAndDuplicateLinesAccumulate) {
  obs::FoldedStacks stacks;
  stacks["a;b;c"] = 7;
  stacks["a;b"] = 2;
  stacks["(idle)"] = 3;
  stacks["zero"] = 0;  // dropped by the writer
  const std::string text = obs::to_folded_text(stacks);
  EXPECT_EQ(text, "(idle) 3\na;b 2\na;b;c 7\n");
  stacks.erase("zero");
  EXPECT_EQ(obs::parse_folded(text), stacks);
  // The parser sums repeated paths (concatenated shards).
  const obs::FoldedStacks merged = obs::parse_folded("x;y 2\nx;y 5\n");
  EXPECT_EQ(merged.at("x;y"), 7u);
}

TEST(Folded, ParserRejectsMalformedLines) {
  EXPECT_THROW(obs::parse_folded("nocount"), std::runtime_error);
  EXPECT_THROW(obs::parse_folded("a b"), std::runtime_error);
  EXPECT_THROW(obs::parse_folded("a 12x"), std::runtime_error);
  EXPECT_THROW(obs::parse_folded(" 5"), std::runtime_error);
  EXPECT_THROW(obs::parse_folded("a;b 1\njunk\n"), std::runtime_error);
  try {
    obs::parse_folded("a 1\nb\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST(Folded, LoadFoldedThrowsOnMissingFile) {
  EXPECT_THROW(obs::load_folded(temp_file("dsa_flame_does_not_exist.folded")),
               std::runtime_error);
}

TEST(Folded, SummaryCountsIdleAndAttribution) {
  obs::FoldedStacks stacks;
  stacks["(idle)"] = 10;
  stacks["root"] = 5;        // one frame: observed but unattributed
  stacks["root;leaf"] = 15;  // two frames: attributed
  const obs::FlameSummary summary = obs::summarize_folded(stacks);
  EXPECT_EQ(summary.total, 30u);
  EXPECT_EQ(summary.idle, 10u);
  EXPECT_EQ(summary.attributed, 15u);
  EXPECT_DOUBLE_EQ(summary.attribution(), 0.75);

  obs::FoldedStacks idle_only;
  idle_only["(idle)"] = 4;
  // Nothing observed means nothing unattributed.
  EXPECT_DOUBLE_EQ(obs::summarize_folded(idle_only).attribution(), 1.0);
  EXPECT_DOUBLE_EQ(obs::summarize_folded({}).attribution(), 1.0);
}

TEST(Folded, RendererShowsTreeAndHottestStacks) {
  obs::FoldedStacks stacks;
  stacks["run;rounds"] = 80;
  stacks["run;rank"] = 15;
  stacks["run"] = 5;
  stacks["(idle)"] = 100;
  const std::string text = obs::render_flame(stacks);
  EXPECT_NE(text.find("flame: 200 samples (100 idle)"), std::string::npos);
  EXPECT_NE(text.find("attribution 95.0%"), std::string::npos);
  EXPECT_NE(text.find("hottest stacks:"), std::string::npos);
  EXPECT_NE(text.find("run;rounds"), std::string::npos);
  // Children render hottest-first: rounds before rank.
  EXPECT_LT(text.find("rounds"), text.find("rank"));

  obs::FoldedStacks idle_only;
  idle_only["(idle)"] = 2;
  EXPECT_NE(obs::render_flame(idle_only).find("(no non-idle samples)"),
            std::string::npos);
}

TEST(FlameOptions, EnvironmentParsingIsStrict) {
  {
    EnvGuard prof("DSA_PROF", nullptr);
    EnvGuard hz("DSA_PROF_HZ", nullptr);
    EnvGuard out("DSA_PROF_OUT", nullptr);
    const obs::FlameOptions options = obs::FlameOptions::from_environment();
    EXPECT_FALSE(options.enabled);
    EXPECT_EQ(options.hz, 97u);
  }
  {
    EnvGuard prof("DSA_PROF", "on");
    EnvGuard hz("DSA_PROF_HZ", "250");
    EnvGuard out("DSA_PROF_OUT", "/tmp/custom.folded");
    const obs::FlameOptions options = obs::FlameOptions::from_environment();
    EXPECT_TRUE(options.enabled);
    EXPECT_EQ(options.hz, 250u);
    EXPECT_EQ(options.out, std::filesystem::path("/tmp/custom.folded"));
  }
  {
    EnvGuard prof("DSA_PROF", "banana");
    EXPECT_THROW(obs::FlameOptions::from_environment(), std::runtime_error);
  }
  for (const char* bad_hz : {"0", "1001", "9x"}) {
    EnvGuard prof("DSA_PROF", "on");
    EnvGuard hz("DSA_PROF_HZ", bad_hz);
    EXPECT_THROW(obs::FlameOptions::from_environment(), std::runtime_error)
        << bad_hz;
  }
}

#if DSA_OBS_COMPILED_IN

// --- live stacks + sampler (need the runtime switch and phase macro) ------

/// Restores the global obs state so test order never matters.
struct ObsStateGuard {
  ObsStateGuard() {
    obs::Profiler::global().reset();
    obs::set_enabled(true);
  }
  ~ObsStateGuard() {
    obs::set_enabled(false);
    obs::Profiler::global().reset();
  }
};

TEST(LiveStacks, NestAndUnwindOnTheCallingThread) {
  ObsStateGuard guard;
  EXPECT_TRUE(obs::Profiler::global().sample_live_stacks().empty());
  {
    DSA_OBS_PHASE("outer");
    {
      std::vector<std::string> stacks =
          obs::Profiler::global().sample_live_stacks();
      ASSERT_EQ(stacks.size(), 1u);
      EXPECT_EQ(stacks[0], "outer");
    }
    {
      DSA_OBS_PHASE("inner");
      std::vector<std::string> stacks =
          obs::Profiler::global().sample_live_stacks();
      ASSERT_EQ(stacks.size(), 1u);
      EXPECT_EQ(stacks[0], "outer;inner");
    }
    // inner closed: back to the one-frame stack.
    EXPECT_EQ(obs::Profiler::global().sample_live_stacks().at(0), "outer");
  }
  EXPECT_TRUE(obs::Profiler::global().sample_live_stacks().empty());
}

TEST(LiveStacks, WorkerThreadsContributeTheirOwnStacks) {
  ObsStateGuard guard;
  std::mutex mutex;
  std::condition_variable cv;
  bool opened = false;
  bool release = false;
  std::thread worker([&] {
    DSA_OBS_PHASE("pool");
    DSA_OBS_PHASE("job");
    {
      std::lock_guard<std::mutex> lock(mutex);
      opened = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return opened; });
  }
  // Main thread has no open phase, so only the worker's stack shows.
  const std::vector<std::string> stacks =
      obs::Profiler::global().sample_live_stacks();
  ASSERT_EQ(stacks.size(), 1u);
  EXPECT_EQ(stacks[0], "pool;job");
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  worker.join();
  EXPECT_TRUE(obs::Profiler::global().sample_live_stacks().empty());
}

TEST(Sampler, SampleNowAccumulatesFoldedStacksAndIdle) {
  ObsStateGuard guard;
  obs::FlameSampler sampler;  // own instance: no background thread
  sampler.sample_now();       // nothing open anywhere -> idle
  {
    DSA_OBS_PHASE("a");
    DSA_OBS_PHASE("b");
    sampler.sample_now();
    sampler.sample_now();
  }
  const obs::FoldedStacks stacks = sampler.stacks();
  EXPECT_EQ(stacks.at(obs::kIdleStack), 1u);
  EXPECT_EQ(stacks.at("a;b"), 2u);
  sampler.reset();
  EXPECT_TRUE(sampler.stacks().empty());
  EXPECT_EQ(sampler.stop_and_write(), 0u);  // nothing sampled: no file
}

TEST(Sampler, StopAndWriteRoundTripsThroughLoadFolded) {
  ObsStateGuard guard;
  const std::filesystem::path out = temp_file("dsa_flame_roundtrip.folded");
  std::filesystem::remove(out);
  obs::FlameSampler sampler;
  obs::FlameOptions options;
  options.enabled = false;  // drive it synchronously
  options.out = out;
  sampler.configure(options);
  {
    DSA_OBS_PHASE("x");
    DSA_OBS_PHASE("y");
    sampler.sample_now();
  }
  sampler.sample_now();  // idle
  EXPECT_EQ(sampler.stop_and_write(), 2u);
  EXPECT_EQ(obs::load_folded(out), sampler.stacks());
  std::filesystem::remove(out);
}

TEST(Sampler, BackgroundThreadSamplesABusyPhase) {
  ObsStateGuard guard;
  const std::filesystem::path out = temp_file("dsa_flame_thread.folded");
  std::filesystem::remove(out);
  obs::FlameSampler sampler;
  obs::FlameOptions options;
  options.enabled = true;
  options.hz = 500;
  options.out = out;
  sampler.configure(options);
  EXPECT_TRUE(sampler.enabled());
  {
    DSA_OBS_PHASE("busy");
    DSA_OBS_PHASE("spin");
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  const std::uint64_t samples = sampler.stop_and_write();
  EXPECT_FALSE(sampler.enabled());
  EXPECT_GT(samples, 0u);
  const obs::FoldedStacks stacks = obs::load_folded(out);
  EXPECT_GT(stacks.count("busy;spin"), 0u);
  std::filesystem::remove(out);
}

// --- determinism contract -------------------------------------------------

// The sampler only reads: a PRA quantification with the sampling thread
// live must produce bitwise-identical scores to a dark run.
TEST(SamplerDeterminism, PraScoresAreBitwiseIdenticalWithSamplerOn) {
  swarming::SimulationConfig sim;
  sim.rounds = 16;
  const swarming::SwarmingModel model(
      sim, swarming::BandwidthDistribution::piatek());
  const core::SubspaceModel subset(model, {0u, 1200u, 2400u});
  core::PraConfig config;
  config.population = 8;
  config.performance_runs = 1;
  config.encounter_runs = 1;
  config.opponent_sample = 2;
  config.seed = 777;
  config.threads = 2;

  obs::set_enabled(false);
  const core::PraScores baseline = core::PraEngine(subset, config).run();

  const std::filesystem::path out = temp_file("dsa_flame_determinism.folded");
  std::filesystem::remove(out);
  core::PraScores sampled;
  {
    ObsStateGuard guard;
    obs::FlameSampler sampler;
    obs::FlameOptions options;
    options.enabled = true;
    options.hz = 1000;  // oversample to maximize interference chances
    options.out = out;
    sampler.configure(options);
    sampled = core::PraEngine(subset, config).run();
    sampler.stop_and_write();
  }
  std::filesystem::remove(out);

  ASSERT_EQ(baseline.performance.size(), sampled.performance.size());
  for (std::size_t i = 0; i < baseline.performance.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(baseline.performance[i]),
              std::bit_cast<std::uint64_t>(sampled.performance[i]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(baseline.robustness[i]),
              std::bit_cast<std::uint64_t>(sampled.robustness[i]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(baseline.aggressiveness[i]),
              std::bit_cast<std::uint64_t>(sampled.aggressiveness[i]));
  }
}

#endif  // DSA_OBS_COMPILED_IN

}  // namespace
