// Behavioral fingerprints of the six ranking functions: each actualization
// must leave its characteristic signature on who-earns-what, observable
// through per-peer throughput without reaching into simulator internals.
#include <gtest/gtest.h>

#include <vector>

#include "stats/correlation.hpp"
#include "swarming/bandwidth.hpp"
#include "swarming/protocol.hpp"
#include "swarming/simulator.hpp"

namespace {

using namespace dsa::swarming;

const BandwidthDistribution& piatek() {
  static const BandwidthDistribution dist = BandwidthDistribution::piatek();
  return dist;
}

/// Per-peer throughput of a homogeneous population with the given ranking,
/// averaged over seeds, aligned with `capacities`.
std::vector<double> throughput_profile(RankingFunction ranking,
                                       const std::vector<double>& capacities) {
  ProtocolSpec spec = bittorrent_protocol();
  spec.ranking = ranking;
  SimulationConfig config;
  config.rounds = 250;
  std::vector<double> totals(capacities.size(), 0.0);
  constexpr int kSeeds = 5;
  const std::vector<ProtocolSpec> protocols(capacities.size(), spec);
  for (int seed = 1; seed <= kSeeds; ++seed) {
    config.seed = static_cast<std::uint64_t>(seed);
    const auto outcome = simulate_rounds(protocols, capacities, config);
    for (std::size_t i = 0; i < totals.size(); ++i) {
      totals[i] += outcome.peer_throughput[i];
    }
  }
  for (double& t : totals) t /= kSeeds;
  return totals;
}

/// How strongly a peer's earnings track its capacity under this ranking.
double capacity_alignment(RankingFunction ranking) {
  const std::vector<double> capacities = piatek().stratified_sample(50);
  return dsa::stats::pearson(throughput_profile(ranking, capacities),
                             capacities);
}

TEST(RankingFingerprint, FastestIsCapacityAssortative) {
  // Fastest-first reciprocation pays peers according to what they offer.
  // (The Piatek tail caps the Pearson value: the one ~4 MBps peer holds a
  // large share of total capacity, and nobody can receive from themselves,
  // so even perfect assortativity cannot reach rho = 1 at n = 50.)
  EXPECT_GT(capacity_alignment(RankingFunction::kFastest), 0.6);
}

TEST(RankingFingerprint, ProximityIsCapacityAssortative) {
  // Birds' capacity-neighbor pairing also aligns earnings with capacity
  // (peers trade with their own class).
  EXPECT_GT(capacity_alignment(RankingFunction::kProximity), 0.6);
}

TEST(RankingFingerprint, SlowestRedistributesDownward) {
  // Sort Slowest points lanes at the weakest contributors, so earnings
  // decouple from capacity far more than under Fastest.
  EXPECT_LT(capacity_alignment(RankingFunction::kSlowest),
            capacity_alignment(RankingFunction::kFastest) - 0.1);
}

TEST(RankingFingerprint, RandomDecouplesEarningsFromCapacity) {
  // Random selection spreads lanes uniformly over OTHER peers, so earnings
  // flatten out and the heavy-capacity tail actually under-earns (it cannot
  // receive its own large share of the lane pool): alignment is near zero
  // or negative, and clearly below the assortative rankings.
  const double random = capacity_alignment(RankingFunction::kRandom);
  EXPECT_LT(random, 0.2);
  EXPECT_LT(random, capacity_alignment(RankingFunction::kFastest) - 0.5);
}

TEST(RankingFingerprint, SlowPeersEarnMoreUnderSlowestThanFastest) {
  // The redistribution view from the bottom: the slowest quartile's mean
  // earnings are higher when everyone sorts slowest-first.
  const std::vector<double> capacities = piatek().stratified_sample(48);
  const auto under_fastest =
      throughput_profile(RankingFunction::kFastest, capacities);
  const auto under_slowest =
      throughput_profile(RankingFunction::kSlowest, capacities);
  double fastest_bottom = 0.0, slowest_bottom = 0.0;
  for (std::size_t i = 0; i < 12; ++i) {  // stratified => sorted ascending
    fastest_bottom += under_fastest[i];
    slowest_bottom += under_slowest[i];
  }
  EXPECT_GT(slowest_bottom, fastest_bottom);
}

TEST(RankingFingerprint, LoyalSustainsThroughputWithoutCapacityData) {
  // Loyal never looks at rates or capacities, yet sustained relationships
  // keep population throughput within ~15% of the Fastest benchmark.
  const std::vector<double> capacities = piatek().stratified_sample(50);
  const auto loyal = throughput_profile(RankingFunction::kLoyal, capacities);
  const auto fastest =
      throughput_profile(RankingFunction::kFastest, capacities);
  double loyal_total = 0.0, fastest_total = 0.0;
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    loyal_total += loyal[i];
    fastest_total += fastest[i];
  }
  EXPECT_GT(loyal_total, fastest_total * 0.85);
}

TEST(RankingFingerprint, AdaptiveRespondsToAspirationSmoothing) {
  // The aspiration level is live state: changing its smoothing constant
  // must change Adaptive outcomes (and must not change, say, Fastest).
  const std::vector<double> capacities = piatek().stratified_sample(30);
  auto run_with = [&](RankingFunction ranking, double smoothing) {
    ProtocolSpec spec = bittorrent_protocol();
    spec.ranking = ranking;
    SimulationConfig config;
    config.rounds = 150;
    config.seed = 3;
    config.aspiration_smoothing = smoothing;
    const std::vector<ProtocolSpec> protocols(capacities.size(), spec);
    return simulate_rounds(protocols, capacities, config).population_mean();
  };
  EXPECT_NE(run_with(RankingFunction::kAdaptive, 0.1),
            run_with(RankingFunction::kAdaptive, 0.9));
  EXPECT_DOUBLE_EQ(run_with(RankingFunction::kFastest, 0.1),
                   run_with(RankingFunction::kFastest, 0.9));
}

}  // namespace
