// Unit and property tests for src/util: RNG, CSV, env config, thread pool,
// and table printing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <vector>

#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/fingerprint.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace dsa::util;

// ---------------------------------------------------------------- Rng ----

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

class RngBelowTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBelowTest, StaysBelowBoundAndHitsAllResidues) {
  const std::uint64_t n = GetParam();
  Rng rng(n * 7919 + 1);
  std::vector<int> seen(static_cast<std::size_t>(n), 0);
  const int draws = static_cast<int>(n) * 200;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = rng.below(n);
    ASSERT_LT(v, n);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    EXPECT_GT(seen[v], 0) << "value " << v << " never drawn";
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBelowTest,
                         ::testing::Values(1, 2, 3, 5, 10, 50, 64, 100));

TEST(Rng, BetweenIsInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, DeriveIsDeterministicAndSensitiveToAllArgs) {
  const Rng base(42);
  Rng a = base.derive(1, 2, 3);
  Rng a2 = base.derive(1, 2, 3);
  EXPECT_EQ(a(), a2());
  // Changing any coordinate changes the stream.
  for (auto [x, y, z] : {std::tuple{2ULL, 2ULL, 3ULL},
                         std::tuple{1ULL, 3ULL, 3ULL},
                         std::tuple{1ULL, 2ULL, 4ULL}}) {
    Rng b = base.derive(x, y, z);
    Rng a3 = base.derive(1, 2, 3);
    EXPECT_NE(a3(), b());
  }
}

TEST(Rng, Hash64IsStable) {
  EXPECT_EQ(hash64(0), hash64(0));
  EXPECT_NE(hash64(0), hash64(1));
}

// ------------------------------------------------------------- LaneRng ----

TEST(LaneRng, EveryLaneEqualsItsScalarStream) {
  const std::vector<std::uint64_t> seeds = {1, 42, 0, 7777777};
  LaneRng lanes;
  lanes.reset(seeds);
  std::vector<Rng> scalar;
  for (const auto seed : seeds) scalar.emplace_back(seed);
  std::vector<std::uint64_t> buf(seeds.size());
  for (int draw = 0; draw < 64; ++draw) {
    lanes.next_all(buf.data());
    for (std::size_t w = 0; w < seeds.size(); ++w) {
      ASSERT_EQ(buf[w], scalar[w]()) << "draw " << draw << " lane " << w;
    }
  }
}

TEST(LaneRng, ScalarAccessorsMatchRngPerLane) {
  const std::vector<std::uint64_t> seeds = {9, 10, 11};
  LaneRng lanes;
  lanes.reset(seeds);
  Rng a(9);
  Rng b(10);
  Rng c(11);
  // Mixed access: bulk draws interleaved with per-lane scalar draws must
  // keep every lane aligned with its own Rng stream.
  EXPECT_EQ(lanes.uniform(0), a.uniform());
  EXPECT_EQ(lanes.below(1, 97), b.below(97));
  EXPECT_EQ(lanes.chance(2, 0.5), c.chance(0.5));
  std::vector<std::uint64_t> buf(seeds.size());
  lanes.next_all(buf.data());
  EXPECT_EQ(buf[0], a());
  EXPECT_EQ(buf[1], b());
  EXPECT_EQ(buf[2], c());
  EXPECT_EQ(lanes.next(0), a());
  EXPECT_EQ(lanes.next(1), b());
  EXPECT_EQ(lanes.next(2), c());
}

TEST(LaneRng, ResetRestartsAllStreams) {
  LaneRng lanes;
  lanes.reset(std::vector<std::uint64_t>{3, 4});
  const auto first = lanes.next(0);
  lanes.next(1);
  lanes.reset(std::vector<std::uint64_t>{3, 4});
  EXPECT_EQ(lanes.next(0), first);
  EXPECT_EQ(lanes.width(), 2u);
}

// ---------------------------------------------------------------- Csv ----

TEST(CsvTable, RoundTripsThroughDisk) {
  CsvTable table({"id", "name", "value"});
  table.add_row({"1", "alpha", "0.5"});
  table.add_row({"2", "beta", "1.25"});
  const auto path =
      std::filesystem::temp_directory_path() / "dsa_csv_test.csv";
  table.save(path);
  const CsvTable loaded = CsvTable::load(path);
  ASSERT_EQ(loaded.row_count(), 2u);
  EXPECT_EQ(loaded.at(0, "name"), "alpha");
  EXPECT_DOUBLE_EQ(loaded.number_at(1, "value"), 1.25);
  std::filesystem::remove(path);
}

TEST(CsvTable, SaveIsAtomicNoTemporaryLeftBehind) {
  CsvTable table({"k"});
  table.add_row({"1"});
  const auto path =
      std::filesystem::temp_directory_path() / "dsa_csv_atomic_test.csv";
  table.save(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  EXPECT_FALSE(std::filesystem::exists(tmp));
  // Overwriting an existing file goes through the same rename and wins.
  CsvTable bigger({"k"});
  bigger.add_row({"1"});
  bigger.add_row({"2"});
  bigger.save(path);
  EXPECT_EQ(CsvTable::load(path).row_count(), 2u);
  EXPECT_FALSE(std::filesystem::exists(tmp));
  std::filesystem::remove(path);
}

TEST(CsvTable, RejectsBadRows) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"x", "has,comma"}), std::invalid_argument);
}

TEST(CsvTable, UnknownColumnThrows) {
  CsvTable table({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.column("missing"), std::out_of_range);
  EXPECT_THROW(table.at(0, "missing"), std::out_of_range);
}

TEST(CsvTable, NonNumericFieldThrows) {
  CsvTable table({"a"});
  table.add_row({"not-a-number"});
  EXPECT_THROW(table.number_at(0, "a"), std::invalid_argument);
}

TEST(CsvTable, LoadMissingFileThrows) {
  EXPECT_THROW(CsvTable::load("/nonexistent/really/missing.csv"),
               std::runtime_error);
}

TEST(FormatNumber, RoundTripsTypicalMetrics) {
  for (double v : {0.0, 1.0, 0.123456789, 56.25, 1e-6, 745.0}) {
    EXPECT_DOUBLE_EQ(std::stod(format_number(v)), v);
  }
}

// ------------------------------------------------------- atomic_write ----

TEST(AtomicWrite, WritesContentsAndLeavesNoTmp) {
  const auto dir = std::filesystem::temp_directory_path() / "dsa_fs_test";
  const auto path = dir / "nested" / "out.json";
  std::filesystem::remove_all(dir);
  atomic_write(path, "{\"ok\":true}\n");
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "{\"ok\":true}\n");
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  std::filesystem::remove_all(dir);
}

TEST(AtomicWrite, ReplacesExistingFile) {
  const auto dir = std::filesystem::temp_directory_path() / "dsa_fs_test2";
  const auto path = dir / "out.txt";
  std::filesystem::remove_all(dir);
  atomic_write(path, "first");
  atomic_write(path, "second");
  std::ifstream in(path);
  std::string text;
  std::getline(in, text);
  EXPECT_EQ(text, "second");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------- env ----

TEST(Env, FallsBackWhenUnset) {
  unsetenv("DSA_TEST_VAR");
  EXPECT_EQ(env_string("DSA_TEST_VAR", "fallback"), "fallback");
  EXPECT_EQ(env_int("DSA_TEST_VAR", 7), 7);
  EXPECT_DOUBLE_EQ(env_double("DSA_TEST_VAR", 0.5), 0.5);
  EXPECT_FALSE(env_flag("DSA_TEST_VAR"));
}

TEST(Env, ParsesSetValues) {
  setenv("DSA_TEST_VAR", "42", 1);
  EXPECT_EQ(env_int("DSA_TEST_VAR", 7), 42);
  setenv("DSA_TEST_VAR", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("DSA_TEST_VAR", 0.0), 2.5);
  setenv("DSA_TEST_VAR", "text", 1);
  EXPECT_EQ(env_string("DSA_TEST_VAR", ""), "text");
  setenv("DSA_TEST_VAR", "1", 1);
  EXPECT_TRUE(env_flag("DSA_TEST_VAR"));
  setenv("DSA_TEST_VAR", "0", 1);
  EXPECT_FALSE(env_flag("DSA_TEST_VAR"));
  unsetenv("DSA_TEST_VAR");
}

// Set-but-invalid values must fail loudly, not silently fall back — a
// typo'd DSA_THREADS would otherwise run a different experiment.
TEST(Env, InvalidSetValuesThrow) {
  setenv("DSA_TEST_VAR", "text", 1);
  EXPECT_THROW(env_int("DSA_TEST_VAR", 7), std::runtime_error);
  EXPECT_THROW(env_double("DSA_TEST_VAR", 0.5), std::runtime_error);
  setenv("DSA_TEST_VAR", "12abc", 1);  // trailing garbage (e.g. "1O" typo)
  EXPECT_THROW(env_int("DSA_TEST_VAR", 7), std::runtime_error);
  setenv("DSA_TEST_VAR", "2.5mb", 1);
  EXPECT_THROW(env_double("DSA_TEST_VAR", 0.5), std::runtime_error);
  setenv("DSA_TEST_VAR", "-3", 1);
  EXPECT_THROW(env_int("DSA_TEST_VAR", 9), std::runtime_error);
  unsetenv("DSA_TEST_VAR");
}

TEST(Env, InvalidMessageNamesVariableAndValue) {
  setenv("DSA_TEST_VAR", "1O", 1);
  try {
    env_int("DSA_TEST_VAR", 7);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("DSA_TEST_VAR"), std::string::npos) << what;
    EXPECT_NE(what.find("1O"), std::string::npos) << what;
  }
  unsetenv("DSA_TEST_VAR");
}

TEST(Env, EnumAcceptsAllowedRejectsOthers) {
  unsetenv("DSA_TEST_VAR");
  EXPECT_EQ(env_enum("DSA_TEST_VAR", "sparse", {"sparse", "dense"}), "sparse");
  setenv("DSA_TEST_VAR", "dense", 1);
  EXPECT_EQ(env_enum("DSA_TEST_VAR", "sparse", {"sparse", "dense"}), "dense");
  setenv("DSA_TEST_VAR", "Dense", 1);
  EXPECT_THROW(env_enum("DSA_TEST_VAR", "sparse", {"sparse", "dense"}),
               std::runtime_error);
  unsetenv("DSA_TEST_VAR");
}

// --------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroCountParallelForIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, WaitIdleRethrowsJobException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("job failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is cleared: the pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      ++ran;
      if (i == 3) throw std::invalid_argument("index 3 exploded");
    });
    FAIL() << "parallel_for should have rethrown";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(), "index 3 exploded");
  }
  EXPECT_GT(ran.load(), 0);
}

TEST(ThreadPool, ChunkedParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  // Grain that doesn't divide the count: the last chunk is short.
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; }, /*grain=*/7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkedParallelForEmptyRangeIsNoop) {
  ThreadPool pool(3);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; }, /*grain=*/16);
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ChunkedParallelForCountBelowThreads) {
  // Fewer indices than workers (and than one grain): everything still runs
  // exactly once and the extra lanes stay idle rather than double-running.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { ++hits[i]; }, /*grain=*/16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkedParallelForGrainZeroBehavesLikeOne) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&](std::size_t i) { ++hits[i]; }, /*grain=*/0);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkedParallelForExceptionSkipsRestOfChunkOnly) {
  ThreadPool pool(2);
  // One worker's chunk throws at its first index; the rest of that chunk is
  // skipped, other chunks still run, and the exception surfaces.
  std::vector<std::atomic<int>> hits(40);
  try {
    pool.parallel_for(
        40,
        [&](std::size_t i) {
          if (i == 10) throw std::runtime_error("chunk exploded");
          ++hits[i];
        },
        /*grain=*/10);
    FAIL() << "parallel_for should have rethrown";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "chunk exploded");
  }
  // Indices 11..19 shared the throwing chunk and must have been skipped; no
  // index anywhere ran twice.
  for (std::size_t i = 11; i < 20; ++i) EXPECT_EQ(hits[i].load(), 0) << i;
  for (const auto& h : hits) EXPECT_LE(h.load(), 1);
  // The pool survives for later work.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { ++count; }, /*grain=*/3);
  EXPECT_EQ(count.load(), 8);
}

// ------------------------------------------------------- TablePrinter ----

TEST(TablePrinter, AlignsColumnsAndSeparates) {
  TablePrinter printer({"name", "v"});
  printer.add_row({"a", "1.00"});
  printer.add_row({"longer", "2"});
  std::ostringstream out;
  printer.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("------"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_EQ(printer.row_count(), 2u);
}

TEST(TablePrinter, RejectsWidthMismatch) {
  TablePrinter printer({"a", "b"});
  EXPECT_THROW(printer.add_row({"only"}), std::invalid_argument);
}

TEST(FixedFormat, ProducesRequestedDigits) {
  EXPECT_EQ(dsa::util::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(dsa::util::fixed(0.5, 0), "0");  // rounds to even
  EXPECT_EQ(dsa::util::fixed(-2.0, 3), "-2.000");
}

// -------------------------------------------------------- Fingerprint ----

TEST(Fingerprint, MatchesManualHashChain) {
  // The shared helper must reproduce the original checkpoint scheme
  // exactly, or every pre-existing .partial file would be orphaned.
  const std::uint64_t salt = 2011 ^ 0x50a5c4ec8f21d3b7ULL;
  std::uint64_t expected = hash64(salt);
  for (const std::uint64_t v : {50ull, 3ull, 1ull, 24ull, 100000ull, 120ull}) {
    expected = hash64(expected ^ v);
  }
  const std::uint64_t got = Fingerprint(salt)
                                .mix(50)
                                .mix(3)
                                .mix(1)
                                .mix(24)
                                .mix(100000)
                                .mix(120)
                                .value();
  EXPECT_EQ(got, expected);
}

TEST(Fingerprint, StringMixIsLengthPrefixed) {
  // "ab" + "c" must not collide with "a" + "bc".
  const auto h1 = Fingerprint(1).mix("ab").mix("c").value();
  const auto h2 = Fingerprint(1).mix("a").mix("bc").value();
  EXPECT_NE(h1, h2);
}

TEST(Fingerprint, DoubleMixDistinguishesBitPatterns) {
  EXPECT_NE(Fingerprint(0).mix_double(1.0).value(),
            Fingerprint(0).mix_double(-1.0).value());
  EXPECT_EQ(Fingerprint(7).mix_double(0.1).value(),
            Fingerprint(7).mix_double(0.1).value());
}

TEST(Fingerprint, HexIsSixteenLowercaseDigits) {
  const std::string hex = Fingerprint(42).hex();
  EXPECT_EQ(hex.size(), 16u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

TEST(Fingerprint, CheckpointPathAppendsSuffix) {
  const auto path = checkpoint_path("results/data.csv", 0xabcdef0123456789ULL);
  EXPECT_EQ(path.string(), "results/data.csv.partial-abcdef0123456789");
}

TEST(ExactNumber, RoundTripsBitwise) {
  for (const double v : {0.1, 1.0 / 3.0, 206.7034833, 1e-300, -42.5, 0.0}) {
    const std::string text = exact_number(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

}  // namespace
