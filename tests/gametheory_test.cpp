// Tests for src/gametheory: the BitTorrent Dilemma payoffs (Fig. 1), the
// Sec. 2.2 expected-wins model against hand-computed values, the Appendix
// Nash-equilibrium analysis across a parameter grid, and an agent-based
// cross-check using the iterated-games simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "gametheory/expected_wins.hpp"
#include "gametheory/iterated.hpp"
#include "gametheory/payoff.hpp"

namespace {

using namespace dsa::gametheory;

// -------------------------------------------------------------- payoff ----

TEST(Payoff, FastPeerAlwaysPrefersDefection) {
  const auto game = bittorrent_dilemma(100.0, 20.0);
  EXPECT_EQ(game.dominant_action(Role::kFast), Action::kDefect);
  // Fast vs a cooperating slow: defecting grabs s instead of s - f < 0.
  EXPECT_DOUBLE_EQ(
      game.payoff(Role::kFast, Action::kCooperate, Action::kCooperate),
      20.0 - 100.0);
  EXPECT_DOUBLE_EQ(
      game.payoff(Role::kFast, Action::kDefect, Action::kCooperate), 20.0);
}

TEST(Payoff, SlowPeerCooperatesInBitTorrentView) {
  const auto game = bittorrent_dilemma(100.0, 20.0);
  EXPECT_EQ(game.dominant_action(Role::kSlow), Action::kCooperate);
  // Cooperating with a cooperating fast peer yields f; defecting nets s.
  EXPECT_DOUBLE_EQ(
      game.payoff(Role::kSlow, Action::kCooperate, Action::kCooperate), 100.0);
  EXPECT_DOUBLE_EQ(
      game.payoff(Role::kSlow, Action::kCooperate, Action::kDefect), 20.0);
}

TEST(Payoff, SlowPeerDefectsInBirdsView) {
  const auto game = birds_payoffs(100.0, 20.0);
  EXPECT_EQ(game.dominant_action(Role::kSlow), Action::kDefect);
  EXPECT_EQ(game.dominant_action(Role::kFast), Action::kDefect);
  // Cooperating now costs the missed slow-slow relationship: f - s < f.
  EXPECT_DOUBLE_EQ(
      game.payoff(Role::kSlow, Action::kCooperate, Action::kCooperate), 80.0);
  EXPECT_DOUBLE_EQ(
      game.payoff(Role::kSlow, Action::kCooperate, Action::kDefect), 100.0);
}

TEST(Payoff, DictatorOutcomeIsNashInBitTorrentView) {
  const auto game = bittorrent_dilemma(100.0, 20.0);
  // Fast defects, slow cooperates — the one-sided outcome of Fig. 1(b).
  EXPECT_TRUE(game.is_nash(Action::kDefect, Action::kCooperate));
  EXPECT_FALSE(game.is_nash(Action::kCooperate, Action::kCooperate));
}

TEST(Payoff, MutualDefectionIsNashInBirdsView) {
  const auto game = birds_payoffs(100.0, 20.0);
  EXPECT_TRUE(game.is_nash(Action::kDefect, Action::kDefect));
}

TEST(Payoff, BestResponsesFollowDominance) {
  const auto game = bittorrent_dilemma(80.0, 10.0);
  EXPECT_EQ(game.best_response(Role::kFast, Action::kCooperate),
            Action::kDefect);
  EXPECT_EQ(game.best_response(Role::kSlow, Action::kCooperate),
            Action::kCooperate);
}

TEST(Payoff, RequiresFastStrictlyFasterThanSlow) {
  EXPECT_THROW(bittorrent_dilemma(10.0, 10.0), std::invalid_argument);
  EXPECT_THROW(bittorrent_dilemma(10.0, 20.0), std::invalid_argument);
  EXPECT_THROW(birds_payoffs(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(birds_payoffs(10.0, -1.0), std::invalid_argument);
}

class PayoffSpeedSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(PayoffSpeedSweep, DominanceHoldsAcrossSpeeds) {
  const auto [f, s] = GetParam();
  const auto bt = bittorrent_dilemma(f, s);
  const auto birds = birds_payoffs(f, s);
  EXPECT_EQ(bt.dominant_action(Role::kFast), Action::kDefect);
  EXPECT_EQ(bt.dominant_action(Role::kSlow), Action::kCooperate);
  EXPECT_EQ(birds.dominant_action(Role::kFast), Action::kDefect);
  EXPECT_EQ(birds.dominant_action(Role::kSlow), Action::kDefect);
}

INSTANTIATE_TEST_SUITE_P(
    Speeds, PayoffSpeedSweep,
    ::testing::Values(std::pair{100.0, 20.0}, std::pair{50.0, 49.0},
                      std::pair{1000.0, 1.0}, std::pair{2.0, 1.0},
                      std::pair{745.0, 56.0}));

// ------------------------------------------------------- expected wins ----

ClassSetup symmetric_setup() {
  ClassSetup setup;
  setup.peers_above = 10;
  setup.peers_below = 10;
  setup.peers_same = 10;
  setup.regular_slots = 4;
  return setup;
}

TEST(ExpectedWins, BitTorrentMatchesHandComputedValues) {
  // NA = NB = NC = 10, Ur = 4 -> Nr = 25, E[A->c] = 0.4,
  // K = 1 - (0.6 * 0.75)^4, Er[C->c] = 4 - 0.4 - K.
  const auto w = bittorrent_expected_wins(symmetric_setup());
  EXPECT_DOUBLE_EQ(w.reciprocated_above, 0.0);
  EXPECT_DOUBLE_EQ(w.free_above, 0.4);
  EXPECT_DOUBLE_EQ(w.reciprocated_below, 0.4);
  EXPECT_DOUBLE_EQ(w.free_below, 0.4);
  const double k = 1.0 - std::pow(0.6 * 0.75, 4.0);
  EXPECT_NEAR(w.reciprocated_same, 4.0 - 0.4 - k, 1e-12);
  EXPECT_NEAR(w.free_same, (10.0 - 1.0 - w.reciprocated_same) / 25.0, 1e-12);
}

TEST(ExpectedWins, BirdsMatchesHandComputedValues) {
  const auto w = birds_expected_wins(symmetric_setup());
  EXPECT_DOUBLE_EQ(w.reciprocated_above, 0.0);
  EXPECT_DOUBLE_EQ(w.reciprocated_below, 0.0);
  EXPECT_DOUBLE_EQ(w.reciprocated_same, 4.0);
  EXPECT_DOUBLE_EQ(w.free_above, 0.4);
  EXPECT_DOUBLE_EQ(w.free_below, 0.4);
  EXPECT_DOUBLE_EQ(w.free_same, (10.0 - 1.0 - 4.0) / 25.0);
}

TEST(ExpectedWins, ContentionPoolMatchesTable1) {
  const ClassSetup setup = symmetric_setup();
  EXPECT_DOUBLE_EQ(setup.contention_pool(), 30.0 - 4.0 - 1.0);
}

TEST(ExpectedWins, InvalidSetupsThrow) {
  ClassSetup setup = symmetric_setup();
  setup.regular_slots = 0;
  EXPECT_THROW(bittorrent_expected_wins(setup), std::invalid_argument);
  setup = symmetric_setup();
  setup.peers_above = 4;  // needs NA > Ur
  EXPECT_THROW(bittorrent_expected_wins(setup), std::invalid_argument);
  setup = symmetric_setup();
  setup.peers_same = 5;  // needs NC > Ur + 1
  EXPECT_THROW(birds_expected_wins(setup), std::invalid_argument);
}

TEST(ExpectedWins, SameClassReciprocationBoundedBySlots) {
  const auto bt = bittorrent_expected_wins(symmetric_setup());
  const auto birds = birds_expected_wins(symmetric_setup());
  EXPECT_LE(bt.reciprocated_same, 4.0);
  EXPECT_LE(birds.reciprocated_same, 4.0);
  EXPECT_GE(bt.reciprocated_same, 0.0);
}

TEST(ExpectedWins, BirdsKeepsMoreSameClassReciprocation) {
  // Birds never deserts same-class partners for higher classes.
  const auto bt = bittorrent_expected_wins(symmetric_setup());
  const auto birds = birds_expected_wins(symmetric_setup());
  EXPECT_GT(birds.reciprocated_same, bt.reciprocated_same);
}

using SetupTuple = std::tuple<int, int, int, int>;  // NA, NB, NC, Ur

class InvasionSweep : public ::testing::TestWithParam<SetupTuple> {
 protected:
  ClassSetup setup() const {
    const auto [na, nb, nc, ur] = GetParam();
    ClassSetup s;
    s.peers_above = na;
    s.peers_below = nb;
    s.peers_same = nc;
    s.regular_slots = ur;
    return s;
  }
};

TEST_P(InvasionSweep, BirdsInvaderBeatsBitTorrentIncumbents) {
  const auto analysis = birds_invades_bittorrent(setup());
  EXPECT_TRUE(analysis.invader_outperforms)
      << "invader=" << analysis.invader.total()
      << " incumbent=" << analysis.incumbent.total();
}

TEST_P(InvasionSweep, BitTorrentInvaderLosesToBirdsIncumbents) {
  const auto analysis = bittorrent_invades_birds(setup());
  EXPECT_FALSE(analysis.invader_outperforms)
      << "invader=" << analysis.invader.total()
      << " incumbent=" << analysis.incumbent.total();
}

TEST_P(InvasionSweep, SameClassInequalitiesOfTheAppendix) {
  // ErB[C->c]' > Er[C->c]' and E[C->c]' > EB[C->c]' (BT swarm);
  // ErB[C->c]'' > Er[C->c]'' and EB[C->c]'' > E[C->c]'' (Birds swarm).
  const auto bt_swarm = birds_invades_bittorrent(setup());
  EXPECT_GT(bt_swarm.invader.reciprocated_same,
            bt_swarm.incumbent.reciprocated_same);
  EXPECT_GT(bt_swarm.incumbent.free_same, bt_swarm.invader.free_same);

  const auto birds_swarm = bittorrent_invades_birds(setup());
  EXPECT_GT(birds_swarm.incumbent.reciprocated_same,
            birds_swarm.invader.reciprocated_same);
  EXPECT_GT(birds_swarm.incumbent.free_same, birds_swarm.invader.free_same);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, InvasionSweep,
    ::testing::Values(SetupTuple{10, 10, 10, 4}, SetupTuple{20, 5, 10, 4},
                      SetupTuple{6, 20, 8, 5}, SetupTuple{30, 30, 30, 9},
                      SetupTuple{8, 0, 7, 3}, SetupTuple{15, 2, 25, 1},
                      SetupTuple{100, 50, 40, 8}, SetupTuple{5, 5, 6, 2}));

// --------------------------------------------------- population model ----

TEST(PopulationWins, MatchesFocalSetupPerClass) {
  // The population view must agree with the focal-peer API for the class in
  // the middle.
  ClassProfile profile;
  profile.class_sizes = {10, 10, 10};  // slow, mid, fast
  profile.regular_slots = 4;
  ASSERT_TRUE(profile.valid());

  const auto population = bittorrent_population_wins(profile);
  ASSERT_EQ(population.size(), 3u);
  const auto focal = bittorrent_expected_wins(symmetric_setup());
  EXPECT_DOUBLE_EQ(population[1].total(), focal.total());
  EXPECT_DOUBLE_EQ(population[1].reciprocated_same, focal.reciprocated_same);
}

TEST(PopulationWins, FastestClassWinsMostUnderBitTorrent) {
  ClassProfile profile;
  profile.class_sizes = {12, 10, 8, 7};
  profile.regular_slots = 4;
  const auto wins = bittorrent_population_wins(profile);
  // Under TFT, higher classes keep their reciprocation and still collect
  // free wins; totals rise with class.
  for (std::size_t c = 1; c < wins.size(); ++c) {
    EXPECT_GT(wins[c].reciprocated_same + wins[c].reciprocated_below,
              wins[c - 1].reciprocated_same + wins[c - 1].reciprocated_below -
                  1e-9);
  }
  // The top class never receives upward reciprocation (there is no upward).
  EXPECT_DOUBLE_EQ(wins.back().reciprocated_above, 0.0);
  EXPECT_DOUBLE_EQ(wins.back().free_above, 0.0);
}

TEST(PopulationWins, BirdsEqualizesSameClassReciprocation) {
  ClassProfile profile;
  profile.class_sizes = {10, 10, 10};
  profile.regular_slots = 4;
  const auto birds = birds_population_wins(profile);
  for (const auto& w : birds) {
    EXPECT_DOUBLE_EQ(w.reciprocated_same, 4.0);  // Ur for every class
    EXPECT_DOUBLE_EQ(w.reciprocated_above, 0.0);
    EXPECT_DOUBLE_EQ(w.reciprocated_below, 0.0);
  }
}

TEST(PopulationWins, ProfileValidation) {
  ClassProfile profile;
  profile.class_sizes = {10};
  profile.regular_slots = 4;
  EXPECT_FALSE(profile.valid());  // a single class has nothing above/below
  profile.class_sizes = {10, 3};  // non-top class needs NA > Ur: 3 <= 4
  EXPECT_FALSE(profile.valid());
  profile.class_sizes = {10, 10};
  EXPECT_TRUE(profile.valid());
  profile.regular_slots = 0;
  EXPECT_FALSE(profile.valid());
  profile.regular_slots = 4;
  profile.class_sizes = {5, 10};  // class 0 needs NC > Ur + 1: 5 <= 5
  EXPECT_FALSE(profile.valid());
  EXPECT_THROW(bittorrent_population_wins(profile), std::invalid_argument);
  EXPECT_THROW(profile.setup_for(7), std::out_of_range);
}

TEST(PopulationWins, SetupForComputesClassNeighborhoods) {
  ClassProfile profile;
  profile.class_sizes = {6, 7, 8, 9};
  profile.regular_slots = 3;
  const ClassSetup mid = profile.setup_for(2);
  EXPECT_EQ(mid.peers_below, 13u);  // 6 + 7
  EXPECT_EQ(mid.peers_same, 8u);
  EXPECT_EQ(mid.peers_above, 9u);
  EXPECT_EQ(mid.regular_slots, 3u);
}

// ----------------------------------------------------------- iterated ----

std::vector<std::size_t> indices_of_class(const std::vector<PeerSpec>& peers,
                                          double speed, Strategy strategy) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (peers[i].speed == speed && peers[i].strategy == strategy) {
      out.push_back(i);
    }
  }
  return out;
}

TEST(Iterated, ValidatesInput) {
  IteratedConfig config;
  EXPECT_THROW(simulate_iterated_games({}, config), std::invalid_argument);
  EXPECT_THROW(simulate_iterated_games({PeerSpec{}}, config),
               std::invalid_argument);
  config.regular_slots = 0;
  EXPECT_THROW(
      simulate_iterated_games({PeerSpec{}, PeerSpec{}}, config),
      std::invalid_argument);
}

TEST(Iterated, DeterministicForSameSeed) {
  const auto peers =
      uniform_population({10.0, 50.0, 100.0}, 8, Strategy::kBitTorrent);
  IteratedConfig config;
  config.rounds = 100;
  const auto a = simulate_iterated_games(peers, config);
  const auto b = simulate_iterated_games(peers, config);
  EXPECT_EQ(a.average_wins, b.average_wins);
}

TEST(Iterated, TotalWinsConserved) {
  // Every cooperation event is one win for somebody: with 1 optimistic slot
  // and at most Ur reciprocations per peer, total wins per round <= Ur + 1
  // per peer and >= 1 (the optimistic slot always fires while partners are
  // scarce).
  const auto peers =
      uniform_population({10.0, 100.0}, 10, Strategy::kBitTorrent);
  IteratedConfig config;
  config.regular_slots = 4;
  config.rounds = 200;
  const auto result = simulate_iterated_games(peers, config);
  double total = 0.0;
  for (double w : result.average_wins) total += w;
  EXPECT_GE(total, static_cast<double>(peers.size()) * 1.0);
  EXPECT_LE(total, static_cast<double>(peers.size()) * 5.0);
}

/// Average (invader wins, incumbent same-class wins) over several seeds for
/// a single middle-class invader of `invader_strategy` in a swarm of
/// `incumbent_strategy` peers.
std::pair<double, double> invasion_wins(Strategy incumbent_strategy,
                                        Strategy invader_strategy) {
  double invader_total = 0.0;
  double incumbent_total = 0.0;
  constexpr int kSeeds = 8;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    auto peers =
        uniform_population({10.0, 50.0, 100.0}, 10, incumbent_strategy);
    const auto middles = indices_of_class(peers, 50.0, incumbent_strategy);
    peers[middles.front()].strategy = invader_strategy;

    IteratedConfig config;
    config.regular_slots = 4;
    config.rounds = 2000;
    config.seed = static_cast<std::uint64_t>(seed) * 7919;
    const auto result = simulate_iterated_games(peers, config);

    invader_total += result.average_wins[middles.front()];
    incumbent_total += result.mean_over(
        indices_of_class(peers, 50.0, incumbent_strategy));
  }
  return {invader_total / kSeeds, incumbent_total / kSeeds};
}

TEST(Iterated, BirdsInvaderOutperformsBitTorrentClassmates) {
  // One Birds peer in an otherwise all-BitTorrent swarm should, per the
  // Appendix, win more games than the average BT peer of its own class.
  const auto [invader, incumbent] =
      invasion_wins(Strategy::kBitTorrent, Strategy::kBirds);
  EXPECT_GT(invader, incumbent);
}

TEST(Iterated, BitTorrentInvaderGainsAtMostMarginallyOnBirds) {
  // The closed form (Appendix) gives Birds incumbents a small edge. The
  // richer agent model exposes a channel it ignores: fast Birds peers that
  // are short of fast cooperators reciprocate a mid-speed BT invader
  // (|100-50| < |100-10|), granting it a few percent more wins. We assert
  // the deviation stays marginal — the invader gains far less here than the
  // Birds invader gains against BitTorrent (next test).
  const auto [invader, incumbent] =
      invasion_wins(Strategy::kBirds, Strategy::kBitTorrent);
  EXPECT_LE(invader, incumbent * 1.08);
}

TEST(Iterated, BirdsInvasionAdvantageExceedsBitTorrentInvasionAdvantage) {
  // The sharp comparative claim behind "BT is not a NE, Birds (nearly) is":
  // deviating to Birds inside BitTorrent pays more than deviating to
  // BitTorrent inside Birds.
  const auto [birds_inv, bt_inc] =
      invasion_wins(Strategy::kBitTorrent, Strategy::kBirds);
  const auto [bt_inv, birds_inc] =
      invasion_wins(Strategy::kBirds, Strategy::kBitTorrent);
  EXPECT_GT(birds_inv / bt_inc, bt_inv / birds_inc);
}

TEST(Iterated, FastClassWinsMoreThanSlowClassUnderBitTorrent) {
  const auto peers =
      uniform_population({10.0, 100.0}, 15, Strategy::kBitTorrent);
  IteratedConfig config;
  config.rounds = 1000;
  const auto result = simulate_iterated_games(peers, config);
  const double slow =
      result.mean_over(indices_of_class(peers, 10.0, Strategy::kBitTorrent));
  const double fast =
      result.mean_over(indices_of_class(peers, 100.0, Strategy::kBitTorrent));
  EXPECT_GT(fast, slow);
}

TEST(Iterated, UniformPopulationBuilder) {
  const auto peers = uniform_population({1.0, 2.0}, 3, Strategy::kBirds);
  ASSERT_EQ(peers.size(), 6u);
  EXPECT_EQ(peers[0].speed, 1.0);
  EXPECT_EQ(peers[5].speed, 2.0);
  EXPECT_EQ(peers[2].strategy, Strategy::kBirds);
}

TEST(Iterated, MeanOverEmptyIsZero) {
  IteratedResult result;
  result.average_wins = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(result.mean_over({}), 0.0);
  EXPECT_DOUBLE_EQ(result.mean_over({0, 1}), 1.5);
}

}  // namespace
