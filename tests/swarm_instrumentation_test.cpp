// Tests for the swarm simulator's instrumentation (byte accounting, per-tick
// series) and the staggered-arrival process.
#include <gtest/gtest.h>

#include <vector>

#include "swarm/swarm_sim.hpp"

namespace {

using namespace dsa::swarm;

SwarmConfig small_config(std::uint64_t seed = 1) {
  SwarmConfig config;
  config.piece_count = 20;
  config.seed = seed;
  return config;
}

TEST(SwarmInstrumentation, UploadEqualsDownloadAcrossTheSwarm) {
  // Conservation: every transferred byte has exactly one sender and one
  // receiver. Leecher-side sums differ only by the seeder's contribution.
  SwarmConfig config = small_config(3);
  const auto result =
      run_swarm(std::vector<ClientVariant>(12, ClientVariant::kBitTorrent),
                std::vector<double>(12, 80.0), config);
  ASSERT_TRUE(result.all_completed);
  double up = 0.0, down = 0.0;
  for (std::size_t l = 0; l < 12; ++l) {
    up += result.uploaded_kb[l];
    down += result.downloaded_kb[l];
  }
  // down = up + seeder's uploads, so down > up and the difference is
  // bounded by what a 128 KBps seeder could have sent.
  EXPECT_GT(down, up);
  const double run_seconds = 20.0 * 64.0 / 128.0 * 12.0;  // generous bound
  EXPECT_LT(down - up, config.seeder_capacity_kbps * run_seconds);
}

TEST(SwarmInstrumentation, CompletedLeechersDownloadedAtLeastTheFile) {
  SwarmConfig config = small_config(5);
  const auto result =
      run_swarm(std::vector<ClientVariant>(10, ClientVariant::kBirds),
                std::vector<double>(10, 100.0), config);
  ASSERT_TRUE(result.all_completed);
  const double file_kb =
      static_cast<double>(config.piece_count) * config.piece_size_kb;
  for (double kb : result.downloaded_kb) {
    EXPECT_GE(kb, file_kb * 0.999);
  }
}

TEST(SwarmInstrumentation, SeriesTracksCompletionMonotonically) {
  SwarmConfig config = small_config(7);
  config.record_series = true;
  const auto result =
      run_swarm(std::vector<ClientVariant>(10, ClientVariant::kBitTorrent),
                std::vector<double>(10, 60.0), config);
  ASSERT_TRUE(result.all_completed);
  ASSERT_FALSE(result.series.empty());
  std::uint32_t prev_completed = 0;
  double prev_progress = 0.0;
  for (const SwarmTick& tick : result.series) {
    EXPECT_GE(tick.completed_leechers, prev_completed);
    EXPECT_GE(tick.mean_progress, prev_progress - 1e-12);
    EXPECT_LE(tick.active_leechers + tick.completed_leechers, 10u);
    prev_completed = tick.completed_leechers;
    prev_progress = tick.mean_progress;
  }
  EXPECT_EQ(result.series.back().completed_leechers, 10u);
  EXPECT_NEAR(result.series.back().mean_progress, 1.0, 1e-12);
}

TEST(SwarmInstrumentation, SeriesOffByDefault) {
  const auto result =
      run_swarm(std::vector<ClientVariant>(5, ClientVariant::kBitTorrent),
                std::vector<double>(5, 60.0), small_config(9));
  EXPECT_TRUE(result.series.empty());
}

TEST(SwarmArrivals, StaggeredArrivalsStillComplete) {
  SwarmConfig config = small_config(11);
  config.arrival_interval = 15;
  const auto result =
      run_swarm(std::vector<ClientVariant>(8, ClientVariant::kBitTorrent),
                std::vector<double>(8, 80.0), config);
  EXPECT_TRUE(result.all_completed);
  for (double t : result.completion_time) EXPECT_GT(t, 0.0);
}

TEST(SwarmArrivals, DownloadTimeMeasuredFromOwnArrival) {
  // A late arrival into a warmed-up swarm should not be charged the wait:
  // its measured download time stays in the same league as the first
  // arrival's, not larger by the full arrival offset.
  SwarmConfig config = small_config(13);
  config.arrival_interval = 30;
  const auto result =
      run_swarm(std::vector<ClientVariant>(6, ClientVariant::kBitTorrent),
                std::vector<double>(6, 80.0), config);
  ASSERT_TRUE(result.all_completed);
  const double first = result.completion_time.front();
  const double last = result.completion_time.back();
  // Total offset of the last arrival is 5 * 30 = 150 ticks; its measured
  // time must not include it.
  EXPECT_LT(last, first + 150.0);
}

TEST(SwarmArrivals, ZeroIntervalMatchesSimultaneousStart) {
  SwarmConfig a = small_config(17);
  SwarmConfig b = small_config(17);
  b.arrival_interval = 0;
  const std::vector<ClientVariant> leechers(8, ClientVariant::kBirds);
  const std::vector<double> caps(8, 70.0);
  const auto ra = run_swarm(leechers, caps, a);
  const auto rb = run_swarm(leechers, caps, b);
  EXPECT_EQ(ra.completion_time, rb.completion_time);
}

TEST(SwarmArrivals, FlashCrowdVersusTrickleBothServeEveryone) {
  for (std::size_t interval : {5u, 40u}) {
    SwarmConfig config = small_config(19);
    config.arrival_interval = interval;
    const auto result = run_swarm(
        std::vector<ClientVariant>(10, ClientVariant::kLoyalWhenNeeded),
        std::vector<double>(10, 90.0), config);
    EXPECT_TRUE(result.all_completed) << "interval " << interval;
  }
}

}  // namespace
