// Tests for util::json: the strict parser (line-numbered errors) and the
// Cursor schema walker (key-path errors).
#include <gtest/gtest.h>

#include <string>

#include "util/json.hpp"

namespace {

using namespace dsa::util::json;

// --------------------------------------------------------------- parse ----

TEST(JsonParse, ScalarsAndContainers) {
  const Value v = parse(R"({"a": 1, "b": [true, null, -2.5], "c": "x"})");
  ASSERT_EQ(v.type, Value::Type::kObject);
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("a")->number, 1.0);
  const Value* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_EQ(b->items[0].type, Value::Type::kBool);
  EXPECT_TRUE(b->items[0].boolean);
  EXPECT_EQ(b->items[1].type, Value::Type::kNull);
  EXPECT_EQ(b->items[2].number, -2.5);
  EXPECT_EQ(v.find("c")->text, "x");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  const Value v = parse(R"(["a\"b", "tab\there", "\u0041\u00e9"])");
  EXPECT_EQ(v.items[0].text, "a\"b");
  EXPECT_EQ(v.items[1].text, "tab\there");
  EXPECT_EQ(v.items[2].text, "A\xc3\xa9");
}

TEST(JsonParse, ErrorsNameOriginAndLine) {
  try {
    parse("{\n  \"a\": 1,\n  \"a\": 2\n}", "spec.json");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("spec.json:3"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate object key \"a\""), std::string::npos)
        << what;
  }
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(parse("01"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);       // trailing content
  EXPECT_THROW(parse("\"\\ud800\""), ParseError);  // lone surrogate
  EXPECT_THROW(parse("nul"), ParseError);
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  EXPECT_THROW(parse(deep), ParseError);
}

TEST(JsonEscape, QuotesControlCharacters) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(escape(std::string("\n\t\x01", 3)), "\\n\\t\\u0001");
}

// -------------------------------------------------------------- Cursor ----

TEST(JsonCursor, TypedReadsAndPaths) {
  const Value root = parse(
      R"({"name": "x", "n": 3, "f": 0.5, "on": true,
          "list": [10, 20]})",
      "t.json");
  const Cursor cursor(root, "t.json");
  EXPECT_EQ(cursor.key("name").as_string(), "x");
  EXPECT_EQ(cursor.key("n").as_int(), 3);
  EXPECT_EQ(cursor.key("f").as_double(), 0.5);
  EXPECT_TRUE(cursor.key("on").as_bool());
  const Cursor list = cursor.key("list");
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list.at(1).as_int(), 20);
  EXPECT_EQ(list.at(1).path(), "$.list[1]");
}

TEST(JsonCursor, MissingKeyNamesPath) {
  const Value root = parse(R"({"params": {"inner": {}}})", "t.json");
  const Cursor cursor(root, "t.json");
  try {
    (void)cursor.key("params").key("inner").key("rounds");
    FAIL() << "expected SchemaError";
  } catch (const SchemaError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("$.params.inner"), std::string::npos) << what;
    EXPECT_NE(what.find("missing required key \"rounds\""), std::string::npos)
        << what;
    EXPECT_NE(what.find("t.json:"), std::string::npos) << what;
  }
}

TEST(JsonCursor, TypeMismatchNamesBothTypes) {
  const Value root = parse(R"({"n": "not a number"})");
  const Cursor cursor(root, "t.json");
  try {
    (void)cursor.key("n").as_int();
    FAIL() << "expected SchemaError";
  } catch (const SchemaError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("$.n"), std::string::npos) << what;
    EXPECT_NE(what.find("expected"), std::string::npos) << what;
    EXPECT_NE(what.find("string"), std::string::npos) << what;
  }
}

TEST(JsonCursor, AsIntRejectsNonIntegral) {
  const Value root = parse(R"({"a": 1.5, "b": 1e300})");
  const Cursor cursor(root, "t.json");
  EXPECT_THROW((void)cursor.key("a").as_int(), SchemaError);
  EXPECT_THROW((void)cursor.key("b").as_int(), SchemaError);
}

TEST(JsonCursor, AllowOnlyRejectsUnknownKeys) {
  const Value root = parse(R"({"good": 1, "typo": 2})");
  const Cursor cursor(root, "t.json");
  try {
    cursor.allow_only({"good", "other"});
    FAIL() << "expected SchemaError";
  } catch (const SchemaError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unknown key \"typo\""), std::string::npos) << what;
    EXPECT_NE(what.find("good"), std::string::npos) << what;
  }
}

TEST(JsonCursor, TryKeyIsOptional) {
  const Value root = parse(R"({"present": 7})");
  const Cursor cursor(root, "t.json");
  ASSERT_TRUE(cursor.try_key("present").has_value());
  EXPECT_EQ(cursor.try_key("present")->as_int(), 7);
  EXPECT_FALSE(cursor.try_key("absent").has_value());
}

}  // namespace
