// Tests for the replicator dynamics (core/evolution.hpp) on a deterministic
// toy population model and on the real swarming substrate.
#include <gtest/gtest.h>

#include <vector>

#include "core/evolution.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/protocol.hpp"

namespace {

using namespace dsa;
using namespace dsa::core;

/// Toy domain: a protocol's utility is a fixed strength, independent of the
/// mix — so the strongest menu entry must take over.
class StrengthModel final : public PopulationModel {
 public:
  explicit StrengthModel(std::vector<double> strengths)
      : strengths_(std::move(strengths)) {}

  [[nodiscard]] std::vector<double> group_utilities(
      std::span<const GroupShare> groups, std::uint64_t) const override {
    std::vector<double> utilities;
    utilities.reserve(groups.size());
    for (const auto& group : groups) {
      utilities.push_back(strengths_.at(group.protocol));
    }
    return utilities;
  }

 private:
  std::vector<double> strengths_;
};

EvolutionConfig quick_config() {
  EvolutionConfig config;
  config.population = 30;
  config.generations = 40;
  config.runs_per_generation = 1;
  return config;
}

TEST(Replicator, StrongestProtocolFixates) {
  const StrengthModel model({1.0, 3.0, 2.0});
  ReplicatorDynamics dynamics(model, {0, 1, 2}, quick_config());
  const EvolutionResult result = dynamics.run_from_even_split();
  EXPECT_EQ(result.fixated_menu_index, 1);
  EXPECT_DOUBLE_EQ(result.final_shares()[1], 1.0);
  EXPECT_EQ(result.share_history.size(), 41u);  // initial + generations
}

TEST(Replicator, SharesAlwaysSumToOne) {
  const StrengthModel model({1.0, 1.5, 1.2, 0.5});
  ReplicatorDynamics dynamics(model, {0, 1, 2, 3}, quick_config());
  const EvolutionResult result = dynamics.run_from_even_split();
  for (const auto& shares : result.share_history) {
    double sum = 0.0;
    for (double s : shares) sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Replicator, DominantStrategyTrendsUpward) {
  // Wright-Fisher sampling adds drift, so per-generation monotonicity is
  // not guaranteed; the trend over the run must still favor the dominant
  // strategy decisively.
  const StrengthModel model({1.0, 2.0});
  ReplicatorDynamics dynamics(model, {0, 1}, quick_config());
  const EvolutionResult result = dynamics.run_from_even_split();
  EXPECT_GT(result.final_shares()[1], 0.9);
  // Early-vs-late comparison: the mean share over the last quarter beats
  // the mean over the first quarter.
  const std::size_t quarter = result.share_history.size() / 4;
  double early = 0.0, late = 0.0;
  for (std::size_t g = 0; g < quarter; ++g) {
    early += result.share_history[g][1];
    late += result.share_history[result.share_history.size() - 1 - g][1];
  }
  EXPECT_GT(late, early);
}

TEST(Replicator, ZeroFitnessEverywhereFreezesShares) {
  const StrengthModel model({0.0, 0.0});
  ReplicatorDynamics dynamics(model, {0, 1}, quick_config());
  const EvolutionResult result = dynamics.run_from_even_split();
  EXPECT_EQ(result.final_shares(), result.share_history.front());
  EXPECT_EQ(result.fixated_menu_index, -1);
}

TEST(Replicator, MutationKeepsExtinctProtocolsAlive) {
  const StrengthModel model({1.0, 5.0});
  EvolutionConfig config = quick_config();
  config.generations = 80;
  config.mutation_rate = 0.1;
  ReplicatorDynamics dynamics(model, {0, 1}, config);
  const EvolutionResult result = dynamics.run_from_even_split();
  // With 10% mutation the weak protocol cannot go permanently extinct.
  double weak_share_late = 0.0;
  for (std::size_t g = result.share_history.size() - 10;
       g < result.share_history.size(); ++g) {
    weak_share_late += result.share_history[g][0];
  }
  EXPECT_GT(weak_share_late, 0.0);
}

TEST(Replicator, ValidatesInput) {
  const StrengthModel model({1.0, 2.0});
  EXPECT_THROW(ReplicatorDynamics(model, {0}, quick_config()),
               std::invalid_argument);
  EXPECT_THROW(ReplicatorDynamics(model, {0, 0}, quick_config()),
               std::invalid_argument);
  EvolutionConfig bad = quick_config();
  bad.generations = 0;
  EXPECT_THROW(ReplicatorDynamics(model, {0, 1}, bad),
               std::invalid_argument);
  bad = quick_config();
  bad.mutation_rate = 1.0;
  EXPECT_THROW(ReplicatorDynamics(model, {0, 1}, bad),
               std::invalid_argument);

  ReplicatorDynamics ok(model, {0, 1}, quick_config());
  EXPECT_THROW(ok.run({1, 2}), std::invalid_argument);     // wrong total
  EXPECT_THROW(ok.run({30, 0, 0}), std::invalid_argument);  // wrong width
}

TEST(Replicator, DeterministicAcrossRuns) {
  const StrengthModel model({1.0, 1.01});
  EvolutionConfig config = quick_config();
  config.mutation_rate = 0.05;
  ReplicatorDynamics dynamics(model, {0, 1}, config);
  const auto a = dynamics.run_from_even_split();
  const auto b = dynamics.run_from_even_split();
  EXPECT_EQ(a.share_history, b.share_history);
}

// ------------------------------------------------ on the real substrate ----

TEST(ReplicatorOnSwarming, FreeriderShareCollapses) {
  swarming::SimulationConfig sim;
  sim.rounds = 100;
  const swarming::SwarmingModel model(
      sim, swarming::BandwidthDistribution::piatek());

  swarming::ProtocolSpec freerider;
  freerider.stranger_slots = 1;
  freerider.partner_slots = 9;
  freerider.allocation = swarming::AllocationPolicy::kFreeride;

  EvolutionConfig config;
  config.population = 50;
  config.generations = 25;
  config.runs_per_generation = 1;
  ReplicatorDynamics dynamics(
      model,
      {swarming::encode_protocol(swarming::bittorrent_protocol()),
       swarming::encode_protocol(freerider)},
      config);
  const EvolutionResult result = dynamics.run_from_even_split();
  EXPECT_LT(result.final_shares()[1], 0.1);
  EXPECT_GT(result.final_shares()[0], 0.9);
}

TEST(ReplicatorOnSwarming, GroupUtilitiesAlignWithGroups) {
  swarming::SimulationConfig sim;
  sim.rounds = 60;
  const swarming::SwarmingModel model(
      sim, swarming::BandwidthDistribution::piatek());
  const std::vector<GroupShare> groups = {
      {swarming::encode_protocol(swarming::bittorrent_protocol()), 20},
      {swarming::encode_protocol(swarming::birds_protocol()), 0},
      {swarming::encode_protocol(swarming::loyal_when_needed_protocol()), 10},
  };
  const auto utilities = model.group_utilities(groups, 5);
  ASSERT_EQ(utilities.size(), 3u);
  EXPECT_GT(utilities[0], 0.0);
  EXPECT_DOUBLE_EQ(utilities[1], 0.0);  // empty group
  EXPECT_GT(utilities[2], 0.0);
}

}  // namespace
