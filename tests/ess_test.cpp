// Tests for the ESS solution concept (core/ess.hpp) on deterministic toy
// models and the swarming substrate.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/ess.hpp"
#include "core/subspace.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/protocol.hpp"

namespace {

using namespace dsa;
using namespace dsa::core;

/// Strength-ordered toy domain (groups always earn their own strength).
class ToyModel final : public EncounterModel {
 public:
  explicit ToyModel(std::vector<double> strengths)
      : strengths_(std::move(strengths)) {}
  [[nodiscard]] std::uint32_t protocol_count() const override {
    return static_cast<std::uint32_t>(strengths_.size());
  }
  [[nodiscard]] std::string protocol_name(std::uint32_t id) const override {
    return "toy-" + std::to_string(id);
  }
  [[nodiscard]] double homogeneous_utility(std::uint32_t p, std::size_t,
                                           std::uint64_t) const override {
    return strengths_.at(p);
  }
  [[nodiscard]] std::pair<double, double> mixed_utilities(
      std::uint32_t a, std::uint32_t b, std::size_t, std::size_t,
      std::uint64_t) const override {
    return {strengths_.at(a), strengths_.at(b)};
  }

 private:
  std::vector<double> strengths_;
};

TEST(Ess, StrongestProtocolIsFullyStable) {
  std::vector<double> strengths(20);
  std::iota(strengths.begin(), strengths.end(), 1.0);
  const ToyModel model(strengths);
  EssConfig config;
  config.mutant_sample = 0;  // all mutants
  const EssQuantifier ess(model, config);
  const EssResult top = ess.stability_of(19);
  EXPECT_DOUBLE_EQ(top.stability, 1.0);
  EXPECT_TRUE(top.invaders.empty());
  const EssResult bottom = ess.stability_of(0);
  EXPECT_DOUBLE_EQ(bottom.stability, 0.0);
  EXPECT_EQ(bottom.invaders.size(), 19u);
}

TEST(Ess, StabilityIsMonotoneInStrength) {
  std::vector<double> strengths{3.0, 1.0, 4.0, 2.0};
  const ToyModel model(strengths);
  EssConfig config;
  config.mutant_sample = 0;
  const auto stability = EssQuantifier(model, config).stability_all();
  // Ordered by strength: 1.0 < 2.0 < 3.0 < 4.0 -> ids 1, 3, 0, 2.
  EXPECT_LT(stability[1], stability[3]);
  EXPECT_LT(stability[3], stability[0]);
  EXPECT_LT(stability[0], stability[2]);
  EXPECT_DOUBLE_EQ(stability[2], 1.0);
}

TEST(Ess, TiesDoNotCountAsInvasions) {
  const ToyModel model({5.0, 5.0});
  EssConfig config;
  config.mutant_sample = 0;
  const auto stability = EssQuantifier(model, config).stability_all();
  EXPECT_DOUBLE_EQ(stability[0], 1.0);
  EXPECT_DOUBLE_EQ(stability[1], 1.0);
}

TEST(Ess, InvaderRecordsCarryUtilities) {
  const ToyModel model({1.0, 2.0});
  EssConfig config;
  config.mutant_sample = 0;
  const EssResult result = EssQuantifier(model, config).stability_of(0);
  ASSERT_EQ(result.invaders.size(), 1u);
  EXPECT_EQ(result.invaders[0].mutant, 1u);
  EXPECT_DOUBLE_EQ(result.invaders[0].mutant_utility, 2.0);
  EXPECT_DOUBLE_EQ(result.invaders[0].resident_utility, 1.0);
}

TEST(Ess, ValidatesConfiguration) {
  const ToyModel model({1.0, 2.0});
  EssConfig config;
  config.mutant_fraction = 0.5;
  EXPECT_THROW(EssQuantifier(model, config), std::invalid_argument);
  config = EssConfig{};
  config.runs = 0;
  EXPECT_THROW(EssQuantifier(model, config), std::invalid_argument);
  config = EssConfig{};
  config.population = 1;
  EXPECT_THROW(EssQuantifier(model, config), std::invalid_argument);
  const EssQuantifier ok(model, EssConfig{});
  EXPECT_THROW(ok.stability_of(5), std::out_of_range);
}

TEST(EssOnSwarming, ReciprocatorResistsFreerider) {
  swarming::SimulationConfig sim;
  sim.rounds = 100;
  const swarming::SwarmingModel base(
      sim, swarming::BandwidthDistribution::piatek());

  swarming::ProtocolSpec freerider;
  freerider.stranger_slots = 1;
  freerider.partner_slots = 9;
  freerider.allocation = swarming::AllocationPolicy::kFreeride;

  const SubspaceModel subset(
      base, {swarming::encode_protocol(swarming::bittorrent_protocol()),
             swarming::encode_protocol(freerider)});
  EssConfig config;
  config.mutant_sample = 0;
  config.runs = 2;
  const EssQuantifier ess(subset, config);
  // BitTorrent residents are not invadable by a 10% freerider mutant group.
  EXPECT_DOUBLE_EQ(ess.stability_of(0).stability, 1.0);
}

}  // namespace
