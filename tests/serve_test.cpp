// Tests for src/serve and the manifest helpers it rides on: typed manifest
// trust reasons, the wire protocol's strict round trips, the
// content-addressed LRU cache (eviction, on-disk store survival, tamper
// rejection), and the daemon end to end over a real unix socket — a served
// answer, cold or cached, at any thread count and from any engine, must be
// byte-identical to the CSV `dsa_cli run` writes.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "report/report.hpp"
#include "scenario/manifest.hpp"
#include "scenario/plan.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"

namespace {

namespace fs = std::filesystem;
using namespace dsa;
using util::json::SchemaError;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const fs::path& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open()) << path;
  out << contents;
}

// Per-test temp dir, unique per case and per process (ctest runs cases in
// parallel processes).
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("dsa_serve_test_" + std::string(info->name()) + "_" +
            std::to_string(static_cast<long long>(::getpid())));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// A fast two-job sweep (protocols bt,birds in chunks of 1). `engine`
  /// and `seed` are spec knobs so tests can vary the cache key dimensions.
  std::string sweep_spec_text(const std::string& output_name,
                              const std::string& engine = "sparse",
                              int seed = 7) const {
    return std::string("{\"scenario\":\"serve-test\",\"kind\":\"sweep\","
                       "\"output\":\"") +
           (dir_ / output_name).string() +
           "\",\"chunk\":1,\"params\":{\"protocols\":\"bt,birds\","
           "\"rounds\":30,\"population\":20,\"performance_runs\":1,"
           "\"encounter_runs\":1,\"opponent_sample\":1,"
           "\"minority_fraction\":0.1,\"seed\":" +
           std::to_string(seed) + ",\"engine\":\"" + engine + "\"}}";
  }

  scenario::Plan sweep_plan(const std::string& output_name,
                            const std::string& engine = "sparse",
                            int seed = 7) const {
    return scenario::expand_plan(
        scenario::parse_scenario_text(sweep_spec_text(output_name, engine,
                                                      seed)));
  }

  fs::path dir_;
};

scenario::RunOptions quiet_options(std::size_t threads = 1) {
  scenario::RunOptions options;
  options.verbose = false;
  options.threads = threads;
  return options;
}

scenario::JobRows rows_of(std::initializer_list<std::vector<std::string>> r) {
  return scenario::JobRows(r);
}

/// One row of the width load_manifest verifies against the plan's columns.
scenario::JobRows plan_rows(const scenario::Plan& plan,
                            const std::string& tag) {
  return {std::vector<std::string>(plan.job_columns.size(), tag)};
}

// ------------------------------------------------- manifest helpers -------

TEST_F(ServeTest, MissingManifestIsTyped) {
  const scenario::Plan plan = sweep_plan("out.csv");
  const scenario::ManifestData data =
      scenario::load_manifest(plan, dir_ / "absent.jsonl");
  EXPECT_EQ(data.trust, scenario::ManifestTrust::kMissing);
  EXPECT_FALSE(data.header_ok);
  EXPECT_EQ(data.valid_bytes, 0u);
}

TEST_F(ServeTest, OwnManifestRoundTripsTrusted) {
  const scenario::Plan plan = sweep_plan("out.csv");
  const scenario::JobRows rows = plan_rows(plan, "cell");
  std::string manifest = scenario::manifest_header_line(plan) + "\n";
  manifest += scenario::manifest_job_line(plan.jobs[0], rows, 1.5) + "\n";
  const fs::path path = dir_ / "m.jsonl";
  write_file(path, manifest);

  const scenario::ManifestData data = scenario::load_manifest(plan, path);
  EXPECT_EQ(data.trust, scenario::ManifestTrust::kTrusted);
  EXPECT_TRUE(data.distrust_reason.empty());
  EXPECT_EQ(data.valid_bytes, manifest.size());
  ASSERT_EQ(data.have.size(), plan.jobs.size());
  EXPECT_TRUE(data.have[0]);
  EXPECT_FALSE(data.have[1]);
  EXPECT_EQ(data.rows[0], rows);
  EXPECT_DOUBLE_EQ(data.ms[0], 1.5);
}

TEST_F(ServeTest, TornTailNamesTrailingBytesAndKeepsPrefix) {
  const scenario::Plan plan = sweep_plan("out.csv");
  const scenario::JobRows rows = plan_rows(plan, "cell");
  const std::string good = scenario::manifest_header_line(plan) + "\n" +
                           scenario::manifest_job_line(plan.jobs[0], rows,
                                                       1.0) +
                           "\n";
  const fs::path path = dir_ / "m.jsonl";
  write_file(path, good + "{\"job\":1,\"fp\":\"dead");  // killed mid-append

  const scenario::ManifestData data = scenario::load_manifest(plan, path);
  EXPECT_EQ(data.trust, scenario::ManifestTrust::kTornTail);
  EXPECT_NE(data.distrust_reason.find("without a newline"),
            std::string::npos)
      << data.distrust_reason;
  EXPECT_EQ(data.valid_bytes, good.size());
  EXPECT_TRUE(data.have[0]);  // the complete prefix is still usable
}

TEST_F(ServeTest, ForeignHeaderDistrustsWholeFile) {
  const scenario::Plan plan = sweep_plan("out.csv");
  const scenario::Plan other = sweep_plan("other.csv", "sparse", 99);
  const scenario::JobRows rows = plan_rows(plan, "cell");
  const fs::path path = dir_ / "m.jsonl";
  write_file(path, scenario::manifest_header_line(other) + "\n" +
                       scenario::manifest_job_line(plan.jobs[0], rows, 1.0) +
                       "\n");

  const scenario::ManifestData data = scenario::load_manifest(plan, path);
  EXPECT_EQ(data.trust, scenario::ManifestTrust::kForeignHeader);
  EXPECT_NE(data.distrust_reason.find("does not match the plan"),
            std::string::npos)
      << data.distrust_reason;
  EXPECT_EQ(data.valid_bytes, 0u);  // nothing after a foreign header counts
  EXPECT_FALSE(data.have[0]);
}

TEST_F(ServeTest, FingerprintMismatchNamesTheJob) {
  const scenario::Plan plan = sweep_plan("out.csv");
  const scenario::JobRows rows = plan_rows(plan, "cell");
  scenario::Job altered = plan.jobs[0];
  altered.fingerprint ^= 0xff;
  const std::string header = scenario::manifest_header_line(plan) + "\n";
  const fs::path path = dir_ / "m.jsonl";
  write_file(path, header + scenario::manifest_job_line(altered, rows, 1.0) +
                       "\n");

  const scenario::ManifestData data = scenario::load_manifest(plan, path);
  EXPECT_EQ(data.trust, scenario::ManifestTrust::kBadJobLine);
  EXPECT_NE(data.distrust_reason.find("fingerprint mismatch for job 0"),
            std::string::npos)
      << data.distrust_reason;
  EXPECT_EQ(data.valid_bytes, header.size());
  EXPECT_FALSE(data.have[0]);
}

TEST_F(ServeTest, DuplicateJobLineRejected) {
  const scenario::Plan plan = sweep_plan("out.csv");
  const scenario::JobRows rows = plan_rows(plan, "cell");
  const std::string line =
      scenario::manifest_job_line(plan.jobs[0], rows, 1.0) + "\n";
  const fs::path path = dir_ / "m.jsonl";
  write_file(path,
             scenario::manifest_header_line(plan) + "\n" + line + line);

  const scenario::ManifestData data = scenario::load_manifest(plan, path);
  EXPECT_EQ(data.trust, scenario::ManifestTrust::kBadJobLine);
  EXPECT_NE(data.distrust_reason.find("duplicate entry for job 0"),
            std::string::npos)
      << data.distrust_reason;
  EXPECT_TRUE(data.have[0]);  // the first copy was fine
}

// ------------------------------------------------------ wire protocol ----

TEST(ServeProtocol, QueryRequestRoundTripsSpecBytes) {
  const std::string spec = "{\"scenario\": \"x\",\n  \"quote\": \"\\\"\"}";
  const serve::Request request =
      serve::parse_request(serve::make_query_request(spec, "table"));
  EXPECT_EQ(request.op, serve::Request::Op::kQuery);
  EXPECT_EQ(request.spec_text, spec);
  EXPECT_EQ(request.want, "table");
  EXPECT_EQ(serve::parse_request(serve::make_ping_request()).op,
            serve::Request::Op::kPing);
  EXPECT_EQ(serve::parse_request(serve::make_status_request()).op,
            serve::Request::Op::kStatus);
  EXPECT_EQ(serve::parse_request(serve::make_shutdown_request()).op,
            serve::Request::Op::kShutdown);
}

TEST(ServeProtocol, UnknownOpAndKeysAreNamedErrors) {
  try {
    (void)serve::parse_request("{\"op\":\"frobnicate\"}");
    FAIL() << "expected SchemaError";
  } catch (const SchemaError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("query"), std::string::npos) << what;  // valid ops
  }
  EXPECT_THROW((void)serve::parse_request("{\"op\":\"ping\",\"x\":1}"),
               SchemaError);
  // Non-query ops must not smuggle query fields.
  EXPECT_THROW(
      (void)serve::parse_request("{\"op\":\"ping\",\"spec\":\"{}\"}"),
      SchemaError);
  EXPECT_THROW((void)serve::parse_request(
                   "{\"op\":\"query\",\"spec\":\"{}\",\"want\":\"xml\"}"),
               SchemaError);
}

TEST(ServeProtocol, ResultResponseRoundTripsBodyBytes) {
  serve::Response result;
  result.type = "result";
  result.scenario = "s";
  result.kind = "sweep";
  result.want = "csv";
  result.body = "a,b\n1,2\n";  // embedded newlines must survive one-line framing
  result.jobs = 3;
  result.cached_jobs = 2;
  result.executed_jobs = 1;
  result.ms = 12.25;
  const serve::Response parsed =
      serve::parse_response(serve::make_result(result));
  EXPECT_EQ(parsed.type, "result");
  EXPECT_EQ(parsed.body, result.body);
  EXPECT_EQ(parsed.scenario, "s");
  EXPECT_EQ(parsed.jobs, 3u);
  EXPECT_EQ(parsed.cached_jobs, 2u);
  EXPECT_EQ(parsed.executed_jobs, 1u);
  EXPECT_DOUBLE_EQ(parsed.ms, 12.25);

  const serve::Response progress =
      serve::parse_response(serve::make_progress(1, 5, 4));
  EXPECT_EQ(progress.type, "progress");
  EXPECT_EQ(progress.done, 1u);
  EXPECT_EQ(progress.total, 5u);
  EXPECT_EQ(progress.cached, 4u);

  const serve::Response status = serve::parse_response(
      serve::make_status_response({{"cache_hits", 7}, {"queries", 2}}));
  EXPECT_EQ(status.type, "status");
  EXPECT_EQ(status.counters.at("cache_hits"), 7u);
  EXPECT_EQ(status.counters.at("queries"), 2u);

  const serve::Response error =
      serve::parse_response(serve::make_error("bad \"spec\""));
  EXPECT_EQ(error.type, "error");
  EXPECT_EQ(error.message, "bad \"spec\"");
}

// -------------------------------------------------------- result cache ----

TEST_F(ServeTest, CanonicalPlanPinsEngineAndBatchWidth) {
  const scenario::ScenarioSpec sparse = scenario::parse_scenario_text(
      sweep_spec_text("a.csv", "sparse"));
  const scenario::ScenarioSpec batch =
      scenario::parse_scenario_text(sweep_spec_text("b.csv", "batch"));
  const scenario::Plan canon_sparse = serve::canonical_plan(sparse);
  const scenario::Plan canon_batch = serve::canonical_plan(batch);
  ASSERT_EQ(canon_sparse.jobs.size(), canon_batch.jobs.size());
  for (std::size_t i = 0; i < canon_sparse.jobs.size(); ++i) {
    EXPECT_EQ(canon_sparse.jobs[i].fingerprint,
              canon_batch.jobs[i].fingerprint);
  }
  // A different seed is a genuinely different question: keys must differ.
  const scenario::Plan canon_other = serve::canonical_plan(
      scenario::parse_scenario_text(sweep_spec_text("c.csv", "sparse", 8)));
  EXPECT_NE(canon_other.jobs[0].fingerprint,
            canon_sparse.jobs[0].fingerprint);
}

TEST(ServeCache, LruEvictsUnderTinyBudget) {
  serve::ResultCache cache({.memory_budget_bytes = 1, .store_path = {}});
  cache.insert(1, rows_of({{"one"}}), 0.0);
  cache.insert(2, rows_of({{"two"}}), 0.0);  // evicts 1 (budget fits only 1)
  EXPECT_FALSE(cache.lookup(1).has_value());
  const std::optional<scenario::JobRows> hit = cache.lookup(2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0][0], "two");
  const serve::ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(ServeTest, StoreSurvivesRestartByteIdentically) {
  const fs::path store = dir_ / "cache.jsonl";
  const scenario::JobRows rows_a = rows_of({{"a", "1"}, {"b", "2"}});
  const scenario::JobRows rows_b = rows_of({{"c", "3"}});
  {
    serve::ResultCache cache({.memory_budget_bytes = 1 << 20,
                              .store_path = store});
    cache.insert(0xaaULL, rows_a, 1.0);
    cache.insert(0xbbULL, rows_b, 2.0);
  }
  serve::ResultCache reloaded({.memory_budget_bytes = 1 << 20,
                               .store_path = store});
  const serve::ResultCache::Stats stats = reloaded.stats();
  EXPECT_EQ(stats.store_loaded, 2u);
  EXPECT_EQ(stats.store_rejected, 0u);
  EXPECT_EQ(stats.inserts, 0u);  // restorations are not new work
  EXPECT_EQ(reloaded.lookup(0xaaULL), rows_a);
  EXPECT_EQ(reloaded.lookup(0xbbULL), rows_b);
}

TEST_F(ServeTest, StoreTornTailAndTamperedRowsRejected) {
  const fs::path store = dir_ / "cache.jsonl";
  {
    serve::ResultCache cache({.memory_budget_bytes = 1 << 20,
                              .store_path = store});
    cache.insert(0xaaULL, rows_of({{"honest", "1"}}), 1.0);
    cache.insert(0xbbULL, rows_of({{"fine", "2"}}), 1.0);
  }
  // Tamper with the first entry's rows (its "check" hash no longer
  // matches) and simulate a kill mid-append after the second.
  std::string contents = read_file(store);
  const std::size_t pos = contents.find("honest");
  ASSERT_NE(pos, std::string::npos);
  contents.replace(pos, 6, "forged");
  contents += "{\"job\":0,\"fp\":\"00";  // torn tail
  write_file(store, contents);

  serve::ResultCache reloaded({.memory_budget_bytes = 1 << 20,
                               .store_path = store});
  const serve::ResultCache::Stats stats = reloaded.stats();
  EXPECT_EQ(stats.store_loaded, 1u);
  EXPECT_EQ(stats.store_rejected, 2u);  // tampered line + torn tail
  EXPECT_FALSE(reloaded.lookup(0xaaULL).has_value());  // never served
  EXPECT_TRUE(reloaded.lookup(0xbbULL).has_value());
}

// ------------------------------------------------------- daemon e2e -------

/// An in-process daemon on a real unix socket, stopped on destruction.
class Daemon {
 public:
  explicit Daemon(serve::ServerOptions options)
      : server_(std::move(options)),
        thread_([this] { server_.serve(stop_); }) {}
  ~Daemon() {
    stop_.store(true);
    thread_.join();
  }
  serve::Server& server() { return server_; }

 private:
  std::atomic<bool> stop_{false};
  serve::Server server_;
  std::thread thread_;
};

serve::ServerOptions daemon_options(const fs::path& dir,
                                    std::size_t threads = 1,
                                    const fs::path& store = {}) {
  serve::ServerOptions options;
  options.socket_path = dir / "s.sock";
  options.threads = threads;
  options.poll_ms = 50;
  options.cache.store_path = store;
  return options;
}

TEST_F(ServeTest, ServedAnswerMatchesRunScenarioAndWarmHitIsIdentical) {
  // Reference: the CSV `dsa_cli run` writes for the same spec.
  const scenario::Plan plan = sweep_plan("reference.csv");
  scenario::run_scenario(plan, quiet_options());
  const std::string expected = read_file(plan.spec.output);

  Daemon daemon(daemon_options(dir_));
  serve::Client client(daemon.server().socket_path());
  const serve::Response cold = client.query(sweep_spec_text("q.csv"));
  EXPECT_EQ(cold.body, expected);
  EXPECT_EQ(cold.jobs, 2u);
  EXPECT_EQ(cold.cached_jobs, 0u);
  EXPECT_EQ(cold.executed_jobs, 2u);

  const serve::Response warm = client.query(sweep_spec_text("q.csv"));
  EXPECT_EQ(warm.body, expected);
  EXPECT_EQ(warm.cached_jobs, 2u);
  EXPECT_EQ(warm.executed_jobs, 0u);

  const std::map<std::string, std::uint64_t> counters =
      daemon.server().counters();
  EXPECT_EQ(counters.at("queries"), 2u);
  EXPECT_EQ(counters.at("cache_hits"), 2u);
  EXPECT_EQ(counters.at("jobs_executed"), 2u);
}

TEST_F(ServeTest, CacheKeyIsEngineAndThreadCountIndependent) {
  // Warm the cache on the sparse engine with a single-threaded daemon.
  std::string sparse_body;
  {
    Daemon daemon(daemon_options(dir_, 1, dir_ / "cache.jsonl"));
    serve::Client client(daemon.server().socket_path());
    sparse_body = client.query(sweep_spec_text("q.csv", "sparse")).body;
  }
  // A multi-threaded daemon restarted from the store must answer dense and
  // batch phrasings of the same question from cache, byte-identically.
  Daemon daemon(daemon_options(dir_, 3, dir_ / "cache.jsonl"));
  serve::Client client(daemon.server().socket_path());
  for (const std::string engine : {"dense", "batch"}) {
    const serve::Response response =
        client.query(sweep_spec_text("q.csv", engine));
    EXPECT_EQ(response.body, sparse_body) << engine;
    EXPECT_EQ(response.cached_jobs, 2u) << engine;
    EXPECT_EQ(response.executed_jobs, 0u) << engine;
  }
  // And a cold multi-threaded computation of a different seed still matches
  // a fresh single-threaded one bite for byte.
  const std::string threaded =
      client.query(sweep_spec_text("t3.csv", "sparse", 11)).body;
  const scenario::Plan plan = sweep_plan("t1.csv", "sparse", 11);
  scenario::run_scenario(plan, quiet_options(1));
  EXPECT_EQ(threaded, read_file(plan.spec.output));
}

TEST_F(ServeTest, TableWantRendersTheReportTable) {
  const scenario::Plan plan = sweep_plan("reference.csv");
  scenario::run_scenario(plan, quiet_options());

  Daemon daemon(daemon_options(dir_));
  serve::Client client(daemon.server().socket_path());
  const serve::Response response =
      client.query(sweep_spec_text("q.csv"), "table");
  EXPECT_EQ(response.want, "table");
  EXPECT_EQ(response.body, report::render_csv_table(
                               util::CsvTable::load(plan.spec.output)));
}

TEST_F(ServeTest, MalformedSpecIsAServerSideErrorNotADisconnect) {
  Daemon daemon(daemon_options(dir_));
  serve::Client client(daemon.server().socket_path());
  try {
    (void)client.query("{\"scenario\":\"x\",\"kind\":\"nope\"}");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("serve daemon:"),
              std::string::npos)
        << error.what();
  }
  // The connection survives the failed query.
  client.ping();
  EXPECT_EQ(daemon.server().counters().at("queries_failed"), 1u);
}

TEST_F(ServeTest, ShutdownRequestStopsTheServeLoop) {
  auto options = daemon_options(dir_);
  serve::Server server(std::move(options));
  std::atomic<bool> stop{false};
  std::thread thread([&] { server.serve(stop); });
  serve::Client client(server.socket_path());
  client.ping();
  client.shutdown();
  thread.join();  // returns because the shutdown request set `stop`
  EXPECT_TRUE(stop.load());
}

TEST_F(ServeTest, SecondDaemonOnTheSameSocketFailsConstruction) {
  Daemon daemon(daemon_options(dir_));
  EXPECT_THROW(serve::Server{daemon_options(dir_)}, std::runtime_error);
}

// ------------------------------------------------------- report table ----

TEST(ServeReport, RenderCsvTableAlignsColumns) {
  util::CsvTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string text = report::render_csv_table(table);
  EXPECT_EQ(text,
            "name   value\n"
            "------------\n"
            "alpha  1    \n"
            "b      22   \n");
}

}  // namespace
