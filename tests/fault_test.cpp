// Fault-injection tests: deterministic replay of fault plans in the swarm
// simulator, crash/rejoin piece accounting, seeder outages, message loss and
// piece-timeout retries, pluggable fault processes in the round model, and
// the field-named validation errors of both configs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/fault_process.hpp"
#include "swarm/swarm_sim.hpp"
#include "swarming/bandwidth.hpp"
#include "swarming/protocol.hpp"
#include "swarming/simulator.hpp"

namespace {

using namespace dsa;
using namespace dsa::swarm;

SwarmConfig small_config(std::uint64_t seed = 1) {
  SwarmConfig config;
  config.piece_count = 20;
  config.seed = seed;
  return config;
}

std::vector<ClientVariant> uniform(std::size_t n, ClientVariant v) {
  return std::vector<ClientVariant>(n, v);
}

void expect_identical(const SwarmResult& a, const SwarmResult& b) {
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.uploaded_kb, b.uploaded_kb);
  EXPECT_EQ(a.downloaded_kb, b.downloaded_kb);
  EXPECT_EQ(a.all_completed, b.all_completed);
  EXPECT_EQ(a.fault_stats.messages_lost, b.fault_stats.messages_lost);
  EXPECT_EQ(a.fault_stats.lost_kb, b.fault_stats.lost_kb);
  EXPECT_EQ(a.fault_stats.retries_issued, b.fault_stats.retries_issued);
  EXPECT_EQ(a.fault_stats.crashes, b.fault_stats.crashes);
  EXPECT_EQ(a.fault_stats.pieces_wiped, b.fault_stats.pieces_wiped);
  EXPECT_EQ(a.fault_stats.stall_ticks, b.fault_stats.stall_ticks);
  EXPECT_EQ(a.fault_stats.seeder_down_ticks,
            b.fault_stats.seeder_down_ticks);
  EXPECT_EQ(a.fault_stats.mean_seeder_recovery_ticks,
            b.fault_stats.mean_seeder_recovery_ticks);
}

// ----------------------------------------------------- replay determinism ----

TEST(SwarmFaults, SameSeedAndPlanReplayIdentically) {
  const auto leechers = uniform(12, ClientVariant::kBitTorrent);
  const std::vector<double> caps(12, 60.0);
  SwarmConfig config = small_config(21);
  fault::FaultSpec spec;
  spec.intensity = 0.6;
  spec.seed = 7;
  config.faults = fault::make_fault_plan(spec, 12, 400);
  const auto a = run_swarm(leechers, caps, config);
  const auto b = run_swarm(leechers, caps, config);
  expect_identical(a, b);
}

TEST(SwarmFaults, EmptyPlanMatchesFaultFreeBaselineBitwise) {
  const auto leechers = uniform(10, ClientVariant::kBirds);
  const std::vector<double> caps(10, 70.0);
  const auto baseline = run_swarm(leechers, caps, small_config(5));
  SwarmConfig with_empty_plan = small_config(5);
  fault::FaultSpec spec;  // intensity 0 -> empty plan, no RNG draws
  with_empty_plan.faults = fault::make_fault_plan(spec, 10, 400);
  EXPECT_TRUE(with_empty_plan.faults.empty());
  const auto injected = run_swarm(leechers, caps, with_empty_plan);
  expect_identical(baseline, injected);
  EXPECT_EQ(injected.fault_stats.messages_lost, 0u);
  EXPECT_EQ(injected.fault_stats.crashes, 0u);
}

TEST(MakeFaultPlan, IsDeterministicAndScalesWithIntensity) {
  fault::FaultSpec spec;
  spec.intensity = 0.5;
  spec.seed = 3;
  const auto a = fault::make_fault_plan(spec, 20, 1000);
  const auto b = fault::make_fault_plan(spec, 20, 1000);
  EXPECT_EQ(a.message_loss, b.message_loss);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].leecher, b.crashes[i].leecher);
    EXPECT_EQ(a.crashes[i].tick, b.crashes[i].tick);
    EXPECT_EQ(a.crashes[i].downtime, b.crashes[i].downtime);
  }
  EXPECT_EQ(a.crashes.size(), 5u);  // 0.5 intensity * 0.5 crash_frac * 20
  ASSERT_EQ(a.seeder_outages.size(), 1u);

  spec.intensity = 1.0;
  const auto harsher = fault::make_fault_plan(spec, 20, 1000);
  EXPECT_GT(harsher.message_loss, a.message_loss);
  EXPECT_GT(harsher.crashes.size(), a.crashes.size());
}

// --------------------------------------------------------- crash / rejoin ----

TEST(SwarmFaults, CrashedLeecherRejoinsAndStillCompletes) {
  SwarmConfig config = small_config(11);
  fault::CrashEvent crash;
  crash.leecher = 0;
  // Nobody can complete before the seeder has emitted the file once
  // (20 x 64 KB / 128 KBps = 10 s), so a crash at tick 8 always strikes.
  crash.tick = 8;
  crash.downtime = 10;
  config.faults.crashes.push_back(crash);
  const auto result = run_swarm(uniform(8, ClientVariant::kBitTorrent),
                                std::vector<double>(8, 80.0), config);
  EXPECT_EQ(result.fault_stats.crashes, 1u);
  EXPECT_TRUE(result.all_completed);
  // The victim restarts from zero pieces when it rejoins at tick 18.
  EXPECT_GT(result.completion_time[0], 18.0);
}

TEST(SwarmFaults, CrashWipesPiecesConsistently) {
  // Crash late enough that the victim certainly holds pieces.
  SwarmConfig config = small_config(13);
  fault::CrashEvent crash;
  crash.leecher = 2;
  crash.tick = 60;
  crash.downtime = 15;
  config.faults.crashes.push_back(crash);
  const auto result = run_swarm(uniform(8, ClientVariant::kBitTorrent),
                                std::vector<double>(8, 80.0), config);
  if (result.fault_stats.crashes == 1) {
    EXPECT_GT(result.fault_stats.pieces_wiped, 0u);
  } else {
    // The victim finished before tick 60; the event must then be a no-op.
    EXPECT_EQ(result.fault_stats.pieces_wiped, 0u);
  }
  EXPECT_TRUE(result.all_completed);
}

TEST(SwarmFaults, CrashAfterCompletionIsANoOp) {
  SwarmConfig config = small_config(17);
  fault::CrashEvent crash;
  crash.leecher = 0;
  crash.tick = config.max_ticks - 1;  // long after everyone finished
  crash.downtime = 5;
  config.faults.crashes.push_back(crash);
  const auto result = run_swarm(uniform(6, ClientVariant::kBitTorrent),
                                std::vector<double>(6, 90.0), config);
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.fault_stats.crashes, 0u);
  EXPECT_EQ(result.fault_stats.pieces_wiped, 0u);
}

// ---------------------------------------------------------- seeder outage ----

TEST(SwarmFaults, PermanentSeederOutageTerminatesAtMaxTicks) {
  SwarmConfig config = small_config(19);
  config.max_ticks = 50;
  fault::SeederOutage outage;
  outage.begin_tick = 0;
  outage.end_tick = config.max_ticks + 1;  // never comes back
  config.faults.seeder_outages.push_back(outage);
  const auto result = run_swarm(uniform(6, ClientVariant::kBitTorrent),
                                std::vector<double>(6, 90.0), config);
  EXPECT_FALSE(result.all_completed);
  for (double t : result.completion_time) EXPECT_LT(t, 0.0);
  // The only piece source was dark the whole run: every tick idled.
  EXPECT_EQ(result.fault_stats.seeder_down_ticks, config.max_ticks);
  EXPECT_EQ(result.fault_stats.stall_ticks, config.max_ticks);
  EXPECT_LT(result.fault_stats.mean_seeder_recovery_ticks, 0.0);
}

TEST(SwarmFaults, SeederOutageDelaysSwarmAndRecoveryIsMeasured) {
  const auto leechers = uniform(8, ClientVariant::kBitTorrent);
  const std::vector<double> caps(8, 80.0);
  const auto baseline = run_swarm(leechers, caps, small_config(23));
  ASSERT_TRUE(baseline.all_completed);

  SwarmConfig config = small_config(23);
  fault::SeederOutage outage;
  outage.begin_tick = 5;
  outage.end_tick = 45;
  config.faults.seeder_outages.push_back(outage);
  const auto degraded = run_swarm(leechers, caps, config);
  EXPECT_TRUE(degraded.all_completed);
  EXPECT_EQ(degraded.fault_stats.seeder_down_ticks, 40u);
  // The outage ended mid-run, so re-unchoke latency was recorded.
  EXPECT_GE(degraded.fault_stats.mean_seeder_recovery_ticks, 0.0);
  EXPECT_GT(degraded.group_mean_time(0, 8, config.max_ticks),
            baseline.group_mean_time(0, 8, config.max_ticks) - 1e-9);
}

// ------------------------------------------------- loss, timeouts, retry ----

TEST(SwarmFaults, MessageLossSlowsDownloads) {
  const auto leechers = uniform(10, ClientVariant::kBitTorrent);
  const std::vector<double> caps(10, 70.0);
  const auto clean = run_swarm(leechers, caps, small_config(29));
  SwarmConfig lossy_config = small_config(29);
  lossy_config.faults.message_loss = 0.3;
  const auto lossy = run_swarm(leechers, caps, lossy_config);
  EXPECT_GT(lossy.fault_stats.messages_lost, 0u);
  EXPECT_GT(lossy.fault_stats.lost_kb, 0.0);
  EXPECT_GT(lossy.group_mean_time(0, 10, lossy_config.max_ticks),
            clean.group_mean_time(0, 10, lossy_config.max_ticks));
}

TEST(SwarmFaults, TimeoutsIssueRetriesUnderHeavyLoss) {
  SwarmConfig config = small_config(31);
  config.max_ticks = 2000;
  config.faults.message_loss = 0.9;
  config.faults.piece_timeout_ticks = 3;
  config.faults.retry_backoff_ticks = 2;
  config.faults.max_backoff_ticks = 16;
  const auto result = run_swarm(uniform(8, ClientVariant::kBitTorrent),
                                std::vector<double>(8, 80.0), config);
  EXPECT_GT(result.fault_stats.retries_issued, 0u);
}

// ----------------------------------------------------- schedule edge cases ----

TEST(SwarmFaults, CrashAtTickZeroStrikesBeforeAnyTransfer) {
  SwarmConfig config = small_config(37);
  config.faults.crashes.push_back({/*leecher=*/1, /*tick=*/0, /*downtime=*/12});
  const auto result = run_swarm(uniform(8, ClientVariant::kBitTorrent),
                                std::vector<double>(8, 80.0), config);
  // The victim holds nothing yet, so the crash strikes but wipes nothing.
  EXPECT_EQ(result.fault_stats.crashes, 1u);
  EXPECT_EQ(result.fault_stats.pieces_wiped, 0u);
  EXPECT_TRUE(result.all_completed);
  // It sat out the first 12 ticks, so it cannot beat that bound.
  EXPECT_GT(result.completion_time[1], 12.0);
}

TEST(SwarmFaults, TwoCrashesOfTheSameLeecherBothStrike) {
  SwarmConfig config = small_config(41);
  // Second crash lands after the rejoin from the first (tick 8 + 10 < 25)
  // but before the victim can finish its re-download, so it is struck twice
  // and restarts from zero pieces twice.
  config.faults.crashes.push_back({/*leecher=*/0, /*tick=*/8, /*downtime=*/10});
  config.faults.crashes.push_back({/*leecher=*/0, /*tick=*/25, /*downtime=*/10});
  const auto once = [&] {
    SwarmConfig single = small_config(41);
    single.faults.crashes.push_back({0, 8, 10});
    return run_swarm(uniform(8, ClientVariant::kBitTorrent),
                     std::vector<double>(8, 80.0), single);
  }();
  const auto twice = run_swarm(uniform(8, ClientVariant::kBitTorrent),
                               std::vector<double>(8, 80.0), config);
  EXPECT_EQ(twice.fault_stats.crashes, 2u);
  EXPECT_TRUE(twice.all_completed);
  // The second strike wipes the progress rebuilt since the first rejoin;
  // the victim sat out until tick 35, so it cannot beat that bound.
  EXPECT_GE(twice.completion_time[0], once.completion_time[0]);
  EXPECT_GT(twice.completion_time[0], 35.0);
}

TEST(SwarmFaults, OutageSpanningTheFinalTickCountsOnlySimulatedTicks) {
  SwarmConfig config = small_config(43);
  config.max_ticks = 60;
  // The window runs past the horizon; only in-run ticks are counted, and a
  // window that never ends inside the run records no recovery sample.
  config.faults.seeder_outages.push_back({/*begin=*/50, /*end=*/200});
  const auto result = run_swarm(uniform(6, ClientVariant::kBitTorrent),
                                std::vector<double>(6, 90.0), config);
  EXPECT_LE(result.fault_stats.seeder_down_ticks, 10u);
  EXPECT_LT(result.fault_stats.mean_seeder_recovery_ticks, 0.0);
}

TEST(SwarmFaults, RetryBackoffSaturatesAtTheCapAndStillCompletes) {
  // Heavy loss with a tiny cap forces many consecutive timeouts per link;
  // the doubling backoff must clamp at max_backoff_ticks instead of growing
  // unboundedly (which would starve the link and strand the swarm).
  SwarmConfig config = small_config(47);
  config.max_ticks = 4000;
  config.faults.message_loss = 0.8;
  config.faults.piece_timeout_ticks = 2;
  config.faults.retry_backoff_ticks = 2;
  config.faults.max_backoff_ticks = 4;
  const auto capped = run_swarm(uniform(6, ClientVariant::kBitTorrent),
                                std::vector<double>(6, 90.0), config);
  EXPECT_GT(capped.fault_stats.retries_issued, 0u);
  EXPECT_TRUE(capped.all_completed);

  // A looser cap means longer waits between retries on hot links, so the
  // saturated plan never issues fewer retries than the loose one.
  SwarmConfig loose = config;
  loose.faults.max_backoff_ticks = 512;
  const auto uncapped = run_swarm(uniform(6, ClientVariant::kBitTorrent),
                                  std::vector<double>(6, 90.0), loose);
  EXPECT_GE(capped.fault_stats.retries_issued,
            uncapped.fault_stats.retries_issued);
}

// -------------------------------------------------------------- validation ----

template <typename Fn>
std::string thrown_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  return "";
}

TEST(FaultValidation, ErrorsNameTheOffendingField) {
  fault::FaultPlan plan;
  plan.message_loss = 1.5;
  EXPECT_NE(thrown_message([&] { plan.validate(10); }).find("message_loss"),
            std::string::npos);

  fault::FaultPlan bad_crash;
  bad_crash.crashes.push_back({/*leecher=*/10, /*tick=*/1, /*downtime=*/5});
  EXPECT_NE(thrown_message([&] { bad_crash.validate(10); }).find("crashes"),
            std::string::npos);

  fault::FaultPlan zero_downtime;
  zero_downtime.crashes.push_back({0, 1, 0});
  EXPECT_NE(
      thrown_message([&] { zero_downtime.validate(10); }).find("downtime"),
      std::string::npos);

  fault::FaultPlan bad_outage;
  bad_outage.seeder_outages.push_back({50, 50});
  EXPECT_NE(
      thrown_message([&] { bad_outage.validate(10); }).find("seeder_outages"),
      std::string::npos);

  fault::FaultPlan backoff;
  backoff.piece_timeout_ticks = 5;
  backoff.retry_backoff_ticks = 0;
  EXPECT_NE(
      thrown_message([&] { backoff.validate(10); }).find("retry_backoff"),
      std::string::npos);

  SwarmConfig config;
  config.piece_count = 0;
  EXPECT_NE(thrown_message([&] { config.validate(5); }).find("piece_count"),
            std::string::npos);

  fault::FaultSpec spec;
  spec.intensity = -0.1;
  EXPECT_NE(thrown_message([&] {
              (void)fault::make_fault_plan(spec, 10, 100);
            }).find("intensity"),
            std::string::npos);

  fault::FaultPlan overlapping;
  overlapping.seeder_outages.push_back({10, 50});
  overlapping.seeder_outages.push_back({40, 80});
  EXPECT_NE(
      thrown_message([&] { overlapping.validate(10); }).find("overlap"),
      std::string::npos);

  fault::FaultPlan beyond_horizon;
  beyond_horizon.crashes.push_back({0, 100, 5});
  EXPECT_NE(thrown_message([&] {
              beyond_horizon.validate(10, /*max_ticks=*/100);
            }).find("horizon"),
            std::string::npos);
  beyond_horizon.validate(10);  // no horizon given: any tick is legal

  fault::FaultPlan inverted_backoff;
  inverted_backoff.piece_timeout_ticks = 5;
  inverted_backoff.retry_backoff_ticks = 8;
  inverted_backoff.max_backoff_ticks = 4;
  EXPECT_NE(thrown_message([&] {
              inverted_backoff.validate(10);
            }).find("max_backoff"),
            std::string::npos);

  // The swarm config path funnels through the same plan validation.
  SwarmConfig faulty_config;
  faulty_config.faults.seeder_outages.push_back({5, 5});
  EXPECT_NE(thrown_message([&] {
              faulty_config.validate(5);
            }).find("seeder_outages"),
            std::string::npos);
}

TEST(MakeFaultPlan, IntensityOneClampsLossAndNeverEmitsZeroDowntime) {
  // At intensity exactly 1.0 the loss product must clamp into [0, 1] and
  // every generated crash must carry downtime >= 1, across many seeds and a
  // degenerate one-tick horizon.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    fault::FaultSpec spec;
    spec.intensity = 1.0;
    spec.max_message_loss = 1.0;
    spec.seed = seed;
    const auto plan = fault::make_fault_plan(spec, 20, 1000);
    EXPECT_LE(plan.message_loss, 1.0);
    EXPECT_GE(plan.message_loss, 0.0);
    for (const auto& crash : plan.crashes) EXPECT_GE(crash.downtime, 1u);
    plan.validate(20);

    const auto tiny = fault::make_fault_plan(spec, 4, /*horizon_ticks=*/1);
    for (const auto& crash : tiny.crashes) EXPECT_GE(crash.downtime, 1u);
    tiny.validate(4);
  }
}

// ------------------------------------------------- round-model processes ----

using namespace dsa::swarming;

const BandwidthDistribution& piatek() {
  static const BandwidthDistribution dist = BandwidthDistribution::piatek();
  return dist;
}

SimulationConfig quick(std::uint64_t seed = 1, std::size_t rounds = 60) {
  SimulationConfig config;
  config.rounds = rounds;
  config.seed = seed;
  return config;
}

TEST(RoundFaults, BurstChurnReplacesTheConfiguredFraction) {
  SimulationConfig config = quick(3, 20);
  config.faults.push_back(fault::FaultProcess::burst_churn(10, 0.5));
  const std::vector<ProtocolSpec> protocols(10, bittorrent_protocol());
  const std::vector<double> caps(10, 50.0);
  const auto outcome = simulate_rounds(protocols, caps, config, &piatek());
  // Bursts strike at the end of rounds 9 and 19: two bursts of 5 peers.
  EXPECT_EQ(outcome.peers_replaced, 10u);
}

TEST(RoundFaults, TargetedFailureHitsExactlyOnce) {
  SimulationConfig config = quick(5, 30);
  config.faults.push_back(fault::FaultProcess::targeted_failure(15, 0.3));
  const std::vector<ProtocolSpec> protocols(10, bittorrent_protocol());
  const std::vector<double> caps(10, 50.0);
  const auto outcome = simulate_rounds(protocols, caps, config, &piatek());
  EXPECT_EQ(outcome.peers_replaced, 3u);
}

TEST(RoundFaults, CapacityDegradationLowersThroughputWithoutReplacing) {
  const std::vector<ProtocolSpec> protocols(12, bittorrent_protocol());
  const std::vector<double> caps(12, 60.0);
  const auto healthy = simulate_rounds(protocols, caps, quick(7, 80));
  SimulationConfig config = quick(7, 80);
  config.faults.push_back(fault::FaultProcess::capacity_degradation(10, 0.4));
  // Degradation replaces nobody, so no churn source is needed.
  EXPECT_FALSE(config.needs_churn_source());
  const auto degraded = simulate_rounds(protocols, caps, config);
  EXPECT_EQ(degraded.peers_replaced, 0u);
  EXPECT_LT(degraded.population_mean(), healthy.population_mean());
}

TEST(RoundFaults, FaultRunsReplayDeterministically) {
  SimulationConfig config = quick(11, 40);
  config.faults.push_back(fault::FaultProcess::burst_churn(8, 0.25));
  config.faults.push_back(fault::FaultProcess::capacity_degradation(20, 0.7));
  const std::vector<ProtocolSpec> protocols(10, birds_protocol());
  const std::vector<double> caps(10, 45.0);
  const auto a = simulate_rounds(protocols, caps, config, &piatek());
  const auto b = simulate_rounds(protocols, caps, config, &piatek());
  EXPECT_EQ(a.peer_throughput, b.peer_throughput);
  EXPECT_EQ(a.peers_replaced, b.peers_replaced);
}

TEST(RoundFaults, LegacyChurnStillMapsToMemorylessProcess) {
  // churn_rate and an equivalent memoryless process both need a source and
  // both replace peers; their exact RNG draws differ (the legacy knob runs
  // first), so only the structural behavior is compared.
  SimulationConfig config = quick(13, 40);
  config.faults.push_back(fault::FaultProcess::memoryless_churn(0.2));
  EXPECT_TRUE(config.needs_churn_source());
  const std::vector<ProtocolSpec> protocols(10, bittorrent_protocol());
  const std::vector<double> caps(10, 50.0);
  EXPECT_THROW(simulate_rounds(protocols, caps, config, nullptr),
               std::invalid_argument);
  const auto outcome = simulate_rounds(protocols, caps, config, &piatek());
  EXPECT_GT(outcome.peers_replaced, 0u);
}

TEST(RoundFaults, SimulationConfigValidationNamesFields) {
  SimulationConfig config = quick();
  config.churn_rate = 2.0;
  EXPECT_NE(thrown_message([&] { config.validate(); }).find("churn_rate"),
            std::string::npos);

  SimulationConfig bad_process = quick();
  bad_process.faults.push_back(fault::FaultProcess::burst_churn(0, 0.5));
  EXPECT_NE(thrown_message([&] { bad_process.validate(); }).find("period"),
            std::string::npos);

  SimulationConfig bad_factor = quick();
  bad_factor.faults.push_back(
      fault::FaultProcess::capacity_degradation(5, 0.0));
  EXPECT_NE(thrown_message([&] { bad_factor.validate(); }).find("factor"),
            std::string::npos);
}

TEST(RoundFaults, ProcessNamesAreStable) {
  EXPECT_EQ(to_string(fault::FaultProcessKind::kMemorylessChurn),
            "memoryless-churn");
  EXPECT_EQ(to_string(fault::FaultProcessKind::kBurstChurn), "burst-churn");
  EXPECT_EQ(to_string(fault::FaultProcessKind::kCapacityDegradation),
            "capacity-degradation");
  EXPECT_EQ(to_string(fault::FaultProcessKind::kTargetedFailure),
            "targeted-failure");
}

}  // namespace
