// Tests for src/explore and the explore scenario kind: the closed-form
// enumeration oracle (visited + pruned == sum C(m,d) * g^d), partial-order
// pruning against an independently written canonicity predicate, ordinal
// chunking, shrinking to 1-minimal counterexamples, JSON round trips with
// bitwise replay, the sharded explore runner (thread-count invariance,
// kill-and-resume byte identity), and the acceptance claim that the bounded
// search beats 1000 random FaultSpec draws of comparable firepower.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "explore/counterexample.hpp"
#include "explore/explore.hpp"
#include "fault/fault_json.hpp"
#include "fault/fault_plan.hpp"
#include "obs/recorder.hpp"
#include "report/report.hpp"
#include "scenario/explore_kind.hpp"
#include "scenario/plan.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;
using namespace dsa;
using explore::Assignment;
using explore::Domain;
using explore::FaultTemplate;
using explore::Schedule;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Two crashes and a seeder outage over a 3-tick grid; durations chosen so
/// adjacent tick windows overlap (dependent) while the extreme ticks stay
/// disjoint (independent) — both pruning branches get exercised.
Domain small_domain() {
  Domain domain;
  domain.templates = {
      {FaultTemplate::Kind::kCrash, /*leecher=*/0, /*duration=*/60},
      {FaultTemplate::Kind::kCrash, /*leecher=*/1, /*duration=*/60},
      {FaultTemplate::Kind::kOutage, /*leecher=*/0, /*duration=*/80},
  };
  domain.ticks = {1, 41, 81};
  domain.max_faults = 2;
  return domain;
}

// Fresh reimplementation of the pruning predicate, as the test oracle.
bool windows_disjoint(std::size_t a_begin, std::size_t a_len,
                      std::size_t b_begin, std::size_t b_len) {
  return a_begin + a_len <= b_begin || b_begin + b_len <= a_begin;
}

bool oracle_independent(const Domain& domain, const Assignment& x,
                        const Assignment& y) {
  const FaultTemplate& tx = domain.templates[x.tmpl];
  const FaultTemplate& ty = domain.templates[y.tmpl];
  if (explore::footprint_peer(tx) == explore::footprint_peer(ty)) return false;
  const std::size_t ax = domain.ticks[x.tick_index];
  const std::size_t ay = domain.ticks[y.tick_index];
  // Disjoint under the chosen assignment AND under the tick swap.
  return windows_disjoint(ax, tx.duration, ay, ty.duration) &&
         windows_disjoint(ay, tx.duration, ax, ty.duration);
}

bool oracle_canonical(const Domain& domain, const Schedule& schedule) {
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    for (std::size_t j = i + 1; j < schedule.size(); ++j) {
      if (oracle_independent(domain, schedule[i], schedule[j]) &&
          domain.ticks[schedule[i].tick_index] >
              domain.ticks[schedule[j].tick_index]) {
        return false;
      }
    }
  }
  return true;
}

/// Every raw schedule of the space, depth-major, subsets lexicographic,
/// tick odometer last-fastest — the walker's documented ordinal order.
std::vector<Schedule> brute_force_schedules(const Domain& domain) {
  std::vector<Schedule> all;
  all.push_back({});
  const std::size_t m = domain.templates.size();
  const std::size_t g = domain.ticks.size();
  const auto next_combination = [m](std::vector<std::size_t>& subset) {
    const std::size_t depth = subset.size();
    for (std::size_t i = depth; i-- > 0;) {
      if (subset[i] + (depth - i) < m) {
        ++subset[i];
        for (std::size_t j = i + 1; j < depth; ++j) {
          subset[j] = subset[j - 1] + 1;
        }
        return true;
      }
    }
    return false;
  };
  const auto next_ticks = [g](std::vector<std::size_t>& ticks) {
    for (std::size_t i = ticks.size(); i-- > 0;) {
      if (++ticks[i] < g) return true;
      ticks[i] = 0;
    }
    return false;
  };
  for (std::size_t depth = 1; depth <= std::min(domain.max_faults, m);
       ++depth) {
    // Ascending template subsets of the given size, lexicographic.
    std::vector<std::size_t> subset(depth);
    for (std::size_t i = 0; i < depth; ++i) subset[i] = i;
    do {
      std::vector<std::size_t> ticks(depth, 0);
      do {
        Schedule schedule;
        for (std::size_t i = 0; i < depth; ++i) {
          schedule.push_back({subset[i], ticks[i]});
        }
        all.push_back(schedule);
      } while (next_ticks(ticks));
    } while (next_combination(subset));
  }
  return all;
}

std::uint64_t closed_form(std::size_t m, std::size_t g, std::size_t k) {
  std::uint64_t total = 0;
  for (std::size_t d = 0; d <= std::min(k, m); ++d) {
    std::uint64_t binom = 1;
    for (std::size_t i = 0; i < d; ++i) binom = binom * (m - i) / (i + 1);
    std::uint64_t pow = 1;
    for (std::size_t i = 0; i < d; ++i) pow *= g;
    total += binom * pow;
  }
  return total;
}

// ----------------------------------------------------------- enumeration ----

TEST(ExploreEnumeration, CountSpaceMatchesClosedForm) {
  Domain domain;
  domain.templates = {
      {FaultTemplate::Kind::kCrash, 0, 60},
      {FaultTemplate::Kind::kCrash, 1, 60},
      {FaultTemplate::Kind::kCrash, 2, 60},
      {FaultTemplate::Kind::kOutage, 0, 80},
  };
  domain.ticks = {1, 31, 61, 91, 121};
  domain.max_faults = 3;
  EXPECT_EQ(explore::count_space(domain), closed_form(4, 5, 3));  // 671

  domain.max_faults = 0;
  EXPECT_EQ(explore::count_space(domain), 1u);  // the fault-free baseline

  domain.max_faults = 9;  // delta bound above m clamps to m
  EXPECT_EQ(explore::count_space(domain), closed_form(4, 5, 4));
}

TEST(ExploreEnumeration, VisitedPlusPrunedEqualsOracleAndMatchesPredicate) {
  const Domain domain = small_domain();
  const std::uint64_t space = explore::count_space(domain);
  EXPECT_EQ(space, closed_form(3, 3, 2));  // 37

  std::set<std::string> visited;
  std::vector<std::uint64_t> ordinals;
  const explore::SpaceCount counts = explore::for_each_schedule(
      domain, [&](std::uint64_t ordinal, const Schedule& schedule) {
        ordinals.push_back(ordinal);
        EXPECT_TRUE(visited.insert(explore::describe(domain, schedule)).second);
      });
  EXPECT_EQ(counts.total, space);
  EXPECT_EQ(counts.visited + counts.pruned, counts.total);
  EXPECT_EQ(counts.visited, visited.size());
  EXPECT_GT(counts.pruned, 0u);  // the domain has independent pairs

  // Ordinals are strictly ascending within one walk.
  for (std::size_t i = 1; i < ordinals.size(); ++i) {
    EXPECT_LT(ordinals[i - 1], ordinals[i]);
  }

  // The visited set is exactly the canonical set of the fresh predicate,
  // and every pruned schedule's tick-swapped twin is canonical (so the
  // pruned region is covered by a visited representative).
  const std::vector<Schedule> all = brute_force_schedules(domain);
  ASSERT_EQ(all.size(), space);
  std::size_t canonical = 0;
  for (const Schedule& schedule : all) {
    if (oracle_canonical(domain, schedule)) {
      ++canonical;
      EXPECT_TRUE(visited.count(explore::describe(domain, schedule)))
          << explore::describe(domain, schedule);
    } else {
      EXPECT_FALSE(visited.count(explore::describe(domain, schedule)))
          << explore::describe(domain, schedule);
      if (schedule.size() == 2) {
        const Schedule twin = {{schedule[0].tmpl, schedule[1].tick_index},
                               {schedule[1].tmpl, schedule[0].tick_index}};
        EXPECT_TRUE(oracle_canonical(domain, twin))
            << explore::describe(domain, twin);
      }
    }
  }
  EXPECT_EQ(counts.visited, canonical);
}

TEST(ExploreEnumeration, ChunkedWalkEqualsFullWalk) {
  const Domain domain = small_domain();
  const std::uint64_t space = explore::count_space(domain);

  std::vector<std::pair<std::uint64_t, std::string>> full;
  const explore::SpaceCount full_counts = explore::for_each_schedule(
      domain, [&](std::uint64_t ordinal, const Schedule& schedule) {
        full.emplace_back(ordinal, explore::describe(domain, schedule));
      });

  // Any chunking must concatenate to the full walk and its SpaceCounts
  // must sum per range — the invariant the sharded runner relies on.
  for (const std::uint64_t chunk : {1ull, 7ull, 36ull, 500ull}) {
    std::vector<std::pair<std::uint64_t, std::string>> chunked;
    explore::SpaceCount sums;
    for (std::uint64_t begin = 0; begin < space; begin += chunk) {
      const explore::SpaceCount counts = explore::for_schedules_in(
          domain, begin, begin + chunk,
          [&](std::uint64_t ordinal, const Schedule& schedule) {
            chunked.emplace_back(ordinal, explore::describe(domain, schedule));
          });
      sums.total += counts.total;
      sums.visited += counts.visited;
      sums.pruned += counts.pruned;
    }
    EXPECT_EQ(chunked, full) << "chunk size " << chunk;
    EXPECT_EQ(sums.total, full_counts.total);
    EXPECT_EQ(sums.visited, full_counts.visited);
    EXPECT_EQ(sums.pruned, full_counts.pruned);
  }

  // Out-of-range and empty ranges are clamped, not errors.
  const explore::SpaceCount beyond =
      explore::for_schedules_in(domain, space, space + 10,
                                [](std::uint64_t, const Schedule&) {
                                  FAIL() << "nothing to visit";
                                });
  EXPECT_EQ(beyond.total, 0u);
}

TEST(ExploreEnumeration, DomainValidationNamesTheOffendingField) {
  const auto message = [](auto&& fn) -> std::string {
    try {
      fn();
    } catch (const std::invalid_argument& error) {
      return error.what();
    }
    return "";
  };

  Domain no_templates = small_domain();
  no_templates.templates.clear();
  EXPECT_NE(message([&] { no_templates.validate(20); }).find("templates"),
            std::string::npos);

  Domain zero_duration = small_domain();
  zero_duration.templates[1].duration = 0;
  EXPECT_NE(message([&] { zero_duration.validate(20); }).find("duration"),
            std::string::npos);

  Domain bad_leecher = small_domain();
  bad_leecher.templates[0].leecher = 20;
  EXPECT_NE(message([&] { bad_leecher.validate(20); }).find("leecher"),
            std::string::npos);

  Domain unsorted = small_domain();
  unsorted.ticks = {41, 41, 81};
  EXPECT_NE(message([&] { unsorted.validate(20); }).find("ascending"),
            std::string::npos);

  Domain past_horizon = small_domain();
  EXPECT_NE(message([&] {
              past_horizon.validate(20, /*max_ticks=*/81);
            }).find("horizon"),
            std::string::npos);

  Domain huge = small_domain();
  huge.templates.assign(40, {FaultTemplate::Kind::kCrash, 0, 10});
  huge.ticks.resize(100);
  for (std::size_t i = 0; i < huge.ticks.size(); ++i) huge.ticks[i] = i + 1;
  huge.max_faults = 6;
  EXPECT_NE(message([&] { huge.validate(50); }).find("space"),
            std::string::npos);
}

TEST(ExploreEnumeration, DescribeAndMaterializeAgree) {
  const Domain domain = small_domain();
  EXPECT_EQ(explore::describe(domain, {}), "none");
  const Schedule schedule = {{0, 2}, {2, 0}};
  EXPECT_EQ(explore::describe(domain, schedule), "crash:l0@81x60;outage@1x80");

  const fault::FaultPlan plan =
      explore::materialize(domain, schedule, /*message_loss=*/0.1,
                           /*piece_timeout_ticks=*/25);
  EXPECT_EQ(plan.message_loss, 0.1);
  EXPECT_EQ(plan.piece_timeout_ticks, 25u);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].leecher, 0u);
  EXPECT_EQ(plan.crashes[0].tick, 81u);
  EXPECT_EQ(plan.crashes[0].downtime, 60u);
  ASSERT_EQ(plan.seeder_outages.size(), 1u);
  EXPECT_EQ(plan.seeder_outages[0].begin_tick, 1u);
  EXPECT_EQ(plan.seeder_outages[0].end_tick, 81u);
  plan.validate(20);
}

TEST(ExploreEnumeration, MaterializeUnionsOverlappingOutageWindows) {
  // Two outage templates always share the seeder footprint (dependent), so
  // overlapping assignments are enumerated — the materialized plan must
  // union them into one window or FaultPlan::validate would reject it.
  Domain domain;
  domain.templates = {
      {FaultTemplate::Kind::kOutage, 0, 80},
      {FaultTemplate::Kind::kOutage, 0, 80},
  };
  domain.ticks = {1, 41};
  domain.max_faults = 2;
  const fault::FaultPlan plan =
      explore::materialize(domain, {{0, 0}, {1, 1}}, 0.0, 0);
  ASSERT_EQ(plan.seeder_outages.size(), 1u);
  EXPECT_EQ(plan.seeder_outages[0].begin_tick, 1u);
  EXPECT_EQ(plan.seeder_outages[0].end_tick, 121u);
  plan.validate(20);
}

// ---------------------------------------------------- objective + shrink ----

TEST(ExploreObjective, ParsesAndScoresWithUnfinishedCap) {
  EXPECT_EQ(explore::parse_objective("mean_time"),
            explore::Objective::kMeanTime);
  EXPECT_EQ(explore::parse_objective("max_time"), explore::Objective::kMaxTime);
  EXPECT_EQ(explore::parse_objective("stall_ticks"),
            explore::Objective::kStallTicks);
  EXPECT_THROW((void)explore::parse_objective("fastest"),
               std::invalid_argument);
  for (const auto objective :
       {explore::Objective::kMeanTime, explore::Objective::kMaxTime,
        explore::Objective::kStallTicks}) {
    EXPECT_EQ(explore::parse_objective(explore::to_string(objective)),
              objective);
  }

  swarm::SwarmResult result;
  result.completion_time = {100.0, 300.0, -1.0};  // one never finished
  result.fault_stats.stall_ticks = 42;
  EXPECT_DOUBLE_EQ(explore::objective_value(explore::Objective::kMeanTime,
                                            result, 500.0),
                   300.0);
  EXPECT_DOUBLE_EQ(
      explore::objective_value(explore::Objective::kMaxTime, result, 500.0),
      500.0);
  EXPECT_DOUBLE_EQ(explore::objective_value(explore::Objective::kStallTicks,
                                            result, 500.0),
                   42.0);
}

TEST(ExploreShrink, ProducesAOneMinimalSchedule) {
  // Synthetic objective: only templates 0 and 2 matter, 50 points each.
  const Schedule worst = {{0, 0}, {1, 1}, {2, 0}, {3, 2}};
  const explore::EvaluateFn evaluate = [](const Schedule& schedule) {
    double value = 0.0;
    for (const Assignment& a : schedule) {
      if (a.tmpl == 0 || a.tmpl == 2) value += 50.0;
    }
    return value;
  };
  const explore::ShrinkResult shrunk = explore::shrink(worst, 100.0, evaluate);
  ASSERT_EQ(shrunk.schedule.size(), 2u);
  EXPECT_EQ(shrunk.schedule[0].tmpl, 0u);
  EXPECT_EQ(shrunk.schedule[1].tmpl, 2u);
  EXPECT_EQ(shrunk.value, 100.0);
  EXPECT_GT(shrunk.evaluations, 0u);
  // 1-minimality: removing any remaining assignment falls below the target.
  for (std::size_t i = 0; i < shrunk.schedule.size(); ++i) {
    Schedule candidate = shrunk.schedule;
    candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_LT(evaluate(candidate), 100.0);
  }

  // A schedule that cannot shrink comes back unchanged.
  const Schedule tight = {{0, 0}, {2, 1}};
  const explore::ShrinkResult kept = explore::shrink(tight, 100.0, evaluate);
  EXPECT_EQ(kept.schedule.size(), 2u);
  EXPECT_EQ(kept.evaluations, 2u);  // tried (and rejected) both drops
}

// ------------------------------------------------------- JSON round trips ----

TEST(ExploreJson, FaultPlanRoundTripsThroughDisk) {
  fault::FaultPlan plan;
  plan.message_loss = 0.125;
  plan.piece_timeout_ticks = 30;
  plan.retry_backoff_ticks = 2;
  plan.max_backoff_ticks = 32;
  plan.seeder_outages.push_back({5, 45});
  plan.crashes.push_back({3, 17, 12});

  const fs::path path = fs::temp_directory_path() /
                        ("dsa_explore_plan_" +
                         std::to_string(static_cast<long long>(::getpid())) +
                         ".json");
  fault::save_fault_plan(path, plan);
  const fault::FaultPlan loaded = fault::load_fault_plan(path);
  EXPECT_EQ(fault::to_json(loaded), fault::to_json(plan));
  EXPECT_EQ(loaded.message_loss, plan.message_loss);
  ASSERT_EQ(loaded.crashes.size(), 1u);
  EXPECT_EQ(loaded.crashes[0].tick, 17u);
  fs::remove(path);
}

TEST(ExploreJson, CounterexampleReplaysBitwise) {
  explore::Counterexample ce;
  ce.plan.seeder_outages.push_back({1, 81});
  ce.a = "bt";
  ce.b = "same";
  ce.count_a = 5;
  ce.total = 10;
  ce.seed = 7;
  ce.piece_count = 20;
  ce.max_ticks = 2000;
  ce.objective = "mean_time";
  ce.schedule = "outage@1x80";

  // Record the value the run actually produces, then round-trip and replay.
  const swarm::SwarmResult original = explore::run_counterexample(ce);
  ce.value = explore::objective_value(explore::parse_objective(ce.objective),
                                      original,
                                      static_cast<double>(ce.max_ticks));

  const fs::path path = fs::temp_directory_path() /
                        ("dsa_explore_ce_" +
                         std::to_string(static_cast<long long>(::getpid())) +
                         ".json");
  explore::save_counterexample(path, ce);
  const explore::Counterexample loaded = explore::load_counterexample(path);
  EXPECT_EQ(explore::to_json(loaded), explore::to_json(ce));

  const swarm::SwarmResult replayed = explore::run_counterexample(loaded);
  EXPECT_EQ(replayed.completion_time, original.completion_time);
  EXPECT_EQ(explore::objective_value(
                explore::parse_objective(loaded.objective), replayed,
                static_cast<double>(loaded.max_ticks)),
            loaded.value);
  fs::remove(path);
}

// ----------------------------------------------------- failure reporting ----

TEST(ExploreReport, FaultTimelineRendersEventsChronologically) {
  std::vector<obs::Event> events;
  events.push_back({.kind = obs::EventKind::kFault,
                    .run = 1,
                    .time = 1,
                    .actor = 0,
                    .value = {{81.0, 0.0, 0.0, 0.0}},
                    .label = "outage_begin"});
  events.push_back({.kind = obs::EventKind::kFault,
                    .run = 1,
                    .time = 40,
                    .actor = 3,
                    .value = {{60.0, 7.0, 0.0, 0.0}},
                    .label = "crash"});
  events.push_back({.kind = obs::EventKind::kFault,
                    .run = 1,
                    .time = 81,
                    .actor = 0,
                    .value = {{80.0, 0.0, 0.0, 0.0}},
                    .label = "outage_end"});
  const std::string text = report::render_fault_timeline(events);
  EXPECT_NE(text.find("Fault timeline"), std::string::npos);
  EXPECT_NE(text.find("seeder"), std::string::npos);
  EXPECT_NE(text.find("leecher 2"), std::string::npos);  // actor 3 = leecher 2
  EXPECT_NE(text.find("until tick 81"), std::string::npos);
  EXPECT_NE(text.find("down 60 ticks, wiped 7 pieces"), std::string::npos);
  EXPECT_NE(text.find("dark for 80 ticks"), std::string::npos);

  const std::string empty = report::render_fault_timeline({});
  EXPECT_NE(empty.find("no fault events"), std::string::npos);
}

TEST(ExploreReport, FaultImpactContrastsWorstAgainstBaseline) {
  const auto leecher = [](std::uint32_t actor, double capacity, double time) {
    return obs::Event{.kind = obs::EventKind::kLeecher,
                      .run = 1,
                      .actor = actor,
                      .value = {{capacity, time, 0.0, 0.0}},
                      .label = "bt"};
  };
  const std::vector<obs::Event> worst = {leecher(0, 50.0, 140.0),
                                         leecher(1, 80.0, -1.0)};
  const std::vector<obs::Event> baseline = {leecher(0, 50.0, 60.0),
                                            leecher(1, 80.0, 55.0)};
  const std::string text = report::render_fault_impact(worst, baseline);
  EXPECT_NE(text.find("Per-leecher impact"), std::string::npos);
  EXPECT_NE(text.find("80.0"), std::string::npos);   // delta of leecher 0
  EXPECT_NE(text.find("-"), std::string::npos);      // unfinished leecher 1
  EXPECT_NE(text.find("1 leecher(s) never finished"), std::string::npos);
}

// ------------------------------------------------------- scenario runner ----

class ExploreScenario : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("dsa_explore_test_" + std::string(info->name()) + "_" +
            std::to_string(static_cast<long long>(::getpid())));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// A small explore spec: 2 crash templates + 1 outage over a 3-tick grid,
  /// 37 schedules, sharded 5 per job.
  scenario::Plan explore_plan(const std::string& name,
                              std::size_t tick_count = 3,
                              std::size_t max_faults = 2) const {
    const std::string json =
        R"({"scenario": "explore-test", "kind": "explore", "output": ")" +
        (dir_ / name).string() + R"(", "chunk": 5, "params": {
          "a": "bt", "total": 20, "seed": 500, "max_ticks": 2000,
          "crash_leechers": 2, "crash_downtime": 60,
          "outage_count": 1, "outage_length": 80,
          "tick_start": 1, "tick_step": 40, "tick_count": )" +
        std::to_string(tick_count) + R"(, "max_faults": )" +
        std::to_string(max_faults) + R"(, "objective": "mean_time"}})";
    return scenario::expand_plan(scenario::parse_scenario_text(json));
  }

  static scenario::RunOptions quiet(std::size_t threads = 1) {
    scenario::RunOptions options;
    options.verbose = false;
    options.threads = threads;
    return options;
  }

  fs::path dir_;
};

TEST_F(ExploreScenario, RowCountMatchesOracleMinusPruned) {
  // The pinned acceptance spec: n = 20 leechers, up to 3 simultaneous
  // faults. The merged CSV must hold exactly the canonical schedules —
  // closed form minus pruned — and start with the ordinal-0 baseline.
  const scenario::Plan plan = explore_plan("oracle.csv", /*tick_count=*/6,
                                           /*max_faults=*/3);
  const scenario::ExploreContext ctx =
      scenario::explore_context(plan.jobs.front().params);
  EXPECT_EQ(explore::count_space(ctx.domain), closed_form(3, 6, 3));  // 343

  const explore::SpaceCount counts = explore::for_each_schedule(
      ctx.domain, [](std::uint64_t, const Schedule&) {});
  EXPECT_EQ(counts.visited + counts.pruned, closed_form(3, 6, 3));

  scenario::run_scenario(plan, quiet(2));
  const util::CsvTable table = util::CsvTable::load(plan.spec.output);
  EXPECT_EQ(table.row_count(), counts.visited);
  EXPECT_EQ(table.at(0, "ordinal"), "0");
  EXPECT_EQ(table.at(0, "schedule"), "none");
}

TEST_F(ExploreScenario, ThreadCountNeverChangesOutputBytes) {
  const scenario::Plan one = explore_plan("one.csv");
  const scenario::Plan three = explore_plan("three.csv");
  scenario::run_scenario(one, quiet(1));
  scenario::run_scenario(three, quiet(3));
  const std::string bytes = read_file(one.spec.output);
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, read_file(three.spec.output));
}

TEST_F(ExploreScenario, KillAndResumeIsByteIdentical) {
  const scenario::Plan reference = explore_plan("reference.csv");
  scenario::run_scenario(reference, quiet(1));
  const std::string expected = read_file(reference.spec.output);

  const scenario::Plan plan = explore_plan("resumed.csv");
  ASSERT_GT(plan.jobs.size(), 3u);
  scenario::RunOptions abort_options = quiet(1);
  abort_options.max_jobs = 3;
  EXPECT_THROW(scenario::run_scenario(plan, abort_options),
               scenario::RunAborted);
  EXPECT_FALSE(fs::exists(plan.spec.output));
  EXPECT_EQ(scenario::completed_jobs_in_manifest(plan),
            (std::vector<std::size_t>{0, 1, 2}));

  const scenario::RunReport report = scenario::run_scenario(plan, quiet(2));
  EXPECT_EQ(report.skipped, 3u);
  EXPECT_EQ(read_file(plan.spec.output), expected);
  EXPECT_FALSE(fs::exists(scenario::manifest_path(plan)));
}

TEST_F(ExploreScenario, SpecCrossFieldViolationsAreRejectedAtPlanTime) {
  const std::string json =
      R"({"scenario": "bad", "kind": "explore", "output": ")" +
      (dir_ / "bad.csv").string() + R"(", "params": {
        "total": 4, "crash_leechers": 9}})";
  try {
    (void)scenario::expand_plan(scenario::parse_scenario_text(json));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("crash_leechers"), std::string::npos) << what;
    EXPECT_NE(what.find("9"), std::string::npos) << what;
  }
}

TEST_F(ExploreScenario, BoundedSearchBeatsRandomFaultSpecDraws) {
  // Acceptance: against 1000 random FaultSpec draws of comparable
  // firepower — the same fault classes (crashes + one outage, no ambient
  // loss), windows drawn from a 300-tick horizon whose maxima stay at or
  // below the domain's template durations — the exhaustive bounded search
  // (127 simulations here, well under the random budget) must find a
  // strictly worse schedule than the best random draw.
  const scenario::Plan plan = explore_plan("beats.csv", /*tick_count=*/6,
                                           /*max_faults=*/2);
  const scenario::ExploreContext ctx =
      scenario::explore_context(plan.jobs.front().params);

  double explorer_worst = 0.0;
  std::uint64_t simulated = 0;
  explore::for_each_schedule(
      ctx.domain, [&](std::uint64_t, const Schedule& schedule) {
        const double value = scenario::explore_value(
            ctx, scenario::run_explore_schedule(ctx, schedule));
        explorer_worst = std::max(explorer_worst, value);
        ++simulated;
      });
  EXPECT_LE(simulated, 1000u);  // equal (in fact smaller) sim budget

  util::Rng rng(2026);
  double random_worst = 0.0;
  for (std::size_t draw = 0; draw < 1000; ++draw) {
    fault::FaultSpec spec;
    spec.intensity = rng.uniform();
    spec.crash_fraction = 0.1;  // two victims at full intensity, like the domain
    spec.outage_fraction = 0.25 * rng.uniform();
    spec.seed = draw;
    swarm::SwarmConfig config = ctx.config;
    config.faults = fault::make_fault_plan(spec, ctx.total,
                                           /*horizon_ticks=*/300);
    config.faults.message_loss = 0.0;  // the domain has no ambient loss
    config.faults.piece_timeout_ticks = 0;
    const swarm::SwarmResult result =
        swarm::run_mixed_swarm(ctx.a, ctx.b, ctx.count_a, ctx.total, config);
    random_worst =
        std::max(random_worst, scenario::explore_value(ctx, result));
  }
  EXPECT_GT(explorer_worst, random_worst);
}

}  // namespace
