// Tests for the Sec. 4.2 design-space encoding and the Piatek bandwidth
// distribution.
#include <gtest/gtest.h>

#include <set>

#include "swarming/bandwidth.hpp"
#include "swarming/protocol.hpp"
#include "util/rng.hpp"

namespace {

using namespace dsa::swarming;

// ------------------------------------------------------------ protocol ----

TEST(ProtocolCodec, SpaceHas3270Protocols) {
  EXPECT_EQ(kProtocolCount, 3270u);
}

TEST(ProtocolCodec, EveryIdRoundTrips) {
  for (std::uint32_t id = 0; id < kProtocolCount; ++id) {
    const ProtocolSpec spec = decode_protocol(id);
    ASSERT_EQ(encode_protocol(spec), id) << "id " << id;
  }
}

TEST(ProtocolCodec, DecodedSpecsAreDistinct) {
  std::set<std::string> seen;
  for (std::uint32_t id = 0; id < kProtocolCount; ++id) {
    EXPECT_TRUE(seen.insert(decode_protocol(id).describe()).second)
        << "duplicate " << decode_protocol(id).describe();
  }
  EXPECT_EQ(seen.size(), kProtocolCount);
}

TEST(ProtocolCodec, FieldRangesMatchTheActualization) {
  std::set<int> hs, ks;
  std::size_t no_strangers = 0, no_partners = 0;
  for (std::uint32_t id = 0; id < kProtocolCount; ++id) {
    const ProtocolSpec spec = decode_protocol(id);
    hs.insert(spec.stranger_slots);
    ks.insert(spec.partner_slots);
    if (spec.stranger_slots == 0) ++no_strangers;
    if (spec.partner_slots == 0) ++no_partners;
  }
  EXPECT_EQ(hs, (std::set<int>{0, 1, 2, 3}));
  EXPECT_EQ(ks, (std::set<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  // One stranger singleton per selection x allocation combination.
  EXPECT_EQ(no_strangers, 109u * 3u);
  EXPECT_EQ(no_partners, 10u * 3u);
}

TEST(ProtocolCodec, OutOfRangeIdThrows) {
  EXPECT_THROW(decode_protocol(kProtocolCount), std::out_of_range);
}

TEST(ProtocolCodec, NonCanonicalSingletonsRejected) {
  ProtocolSpec spec;
  spec.stranger_slots = 0;
  spec.stranger_policy = StrangerPolicy::kDefect;  // must be canonical
  EXPECT_THROW(encode_protocol(spec), std::invalid_argument);
  spec = ProtocolSpec{};
  spec.partner_slots = 0;
  spec.ranking = RankingFunction::kLoyal;  // must be canonical
  EXPECT_THROW(encode_protocol(spec), std::invalid_argument);
  spec = ProtocolSpec{};
  spec.stranger_slots = 4;  // h outside [0, 3]
  EXPECT_THROW(encode_protocol(spec), std::invalid_argument);
  spec = ProtocolSpec{};
  spec.partner_slots = 10;  // k outside [0, 9]
  EXPECT_THROW(encode_protocol(spec), std::invalid_argument);
}

TEST(ProtocolCodec, NamedProtocolsLiveInTheSpace) {
  for (const ProtocolSpec& spec :
       {bittorrent_protocol(), birds_protocol(), loyal_when_needed_protocol(),
        sort_s_protocol(), random_rank_protocol()}) {
    const std::uint32_t id = encode_protocol(spec);
    EXPECT_LT(id, kProtocolCount);
    EXPECT_EQ(decode_protocol(id), spec);
  }
}

TEST(ProtocolCodec, NamedProtocolsMatchTheirPaperDefinitions) {
  EXPECT_EQ(bittorrent_protocol().ranking, RankingFunction::kFastest);
  EXPECT_EQ(birds_protocol().ranking, RankingFunction::kProximity);
  EXPECT_EQ(loyal_when_needed_protocol().ranking, RankingFunction::kLoyal);
  EXPECT_EQ(loyal_when_needed_protocol().stranger_policy,
            StrangerPolicy::kWhenNeeded);
  const ProtocolSpec sort_s = sort_s_protocol();
  EXPECT_EQ(sort_s.ranking, RankingFunction::kSlowest);
  EXPECT_EQ(sort_s.stranger_policy, StrangerPolicy::kDefect);
  EXPECT_EQ(sort_s.partner_slots, 1);
}

TEST(ProtocolCodec, DescribeIsHumanReadable) {
  EXPECT_EQ(loyal_when_needed_protocol().describe(),
            "WhenNeeded(h=1) | TFT/Loyal(k=4) | EqualSplit");
  ProtocolSpec spec;
  spec.stranger_slots = 0;
  spec.partner_slots = 0;
  spec.allocation = AllocationPolicy::kFreeride;
  EXPECT_EQ(spec.describe(), "NoStrangers | NoPartners | Freeride");
}

TEST(ProtocolCodec, EnumNames) {
  EXPECT_EQ(to_string(StrangerPolicy::kWhenNeeded), "WhenNeeded");
  EXPECT_EQ(to_string(CandidateWindow::kTf2t), "TF2T");
  EXPECT_EQ(to_string(RankingFunction::kProximity), "Proximity");
  EXPECT_EQ(to_string(AllocationPolicy::kPropShare), "PropShare");
}

// ----------------------------------------------------------- bandwidth ----

TEST(Bandwidth, PiatekQuantilesAreMonotone) {
  const auto dist = BandwidthDistribution::piatek();
  double prev = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double c = dist.capacity_at(i / 100.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(Bandwidth, PiatekShapeMatchesTheMeasurement) {
  const auto dist = BandwidthDistribution::piatek();
  EXPECT_NEAR(dist.capacity_at(0.5), 56.0, 1e-9);   // median ~56 KBps
  EXPECT_GT(dist.capacity_at(0.95), 1000.0);        // heavy tail
  EXPECT_LT(dist.capacity_at(0.2), 30.0);           // many slow peers
}

TEST(Bandwidth, CapacityAtClampsOutside) {
  const auto dist = BandwidthDistribution::piatek();
  EXPECT_DOUBLE_EQ(dist.capacity_at(-1.0), dist.capacity_at(0.0));
  EXPECT_DOUBLE_EQ(dist.capacity_at(2.0), dist.capacity_at(1.0));
}

TEST(Bandwidth, InterpolatesLinearlyBetweenKnots) {
  const BandwidthDistribution dist({{0.0, 10.0}, {1.0, 20.0}});
  EXPECT_DOUBLE_EQ(dist.capacity_at(0.25), 12.5);
  EXPECT_DOUBLE_EQ(dist.capacity_at(0.5), 15.0);
}

TEST(Bandwidth, StratifiedSampleIsSortedAndSpansTheRange) {
  const auto dist = BandwidthDistribution::piatek();
  const auto sample = dist.stratified_sample(50);
  ASSERT_EQ(sample.size(), 50u);
  for (std::size_t i = 1; i < sample.size(); ++i) {
    EXPECT_GE(sample[i], sample[i - 1]);
  }
  EXPECT_LT(sample.front(), 20.0);
  EXPECT_GT(sample.back(), 1000.0);
}

TEST(Bandwidth, RandomSampleStaysWithinSupport) {
  const auto dist = BandwidthDistribution::piatek();
  dsa::util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double c = dist.sample(rng);
    EXPECT_GE(c, dist.capacity_at(0.0));
    EXPECT_LE(c, dist.capacity_at(1.0));
  }
}

TEST(Bandwidth, RejectsInvalidKnotSequences) {
  using Knot = BandwidthDistribution::Knot;
  EXPECT_THROW(BandwidthDistribution({Knot{0.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(BandwidthDistribution({Knot{0.1, 1.0}, Knot{1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(BandwidthDistribution({Knot{0.0, 1.0}, Knot{0.9, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      BandwidthDistribution({Knot{0.0, 5.0}, Knot{0.5, 3.0}, Knot{1.0, 9.0}}),
      std::invalid_argument);
  EXPECT_THROW(BandwidthDistribution({Knot{0.0, 0.0}, Knot{1.0, 1.0}}),
               std::invalid_argument);
}

}  // namespace
