// Integration tests across core + swarming: the PRA quantification running
// on the real round-based simulator (over a focused subspace to stay fast),
// and the PRA dataset persistence layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "core/pra.hpp"
#include "core/subspace.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/pra_dataset.hpp"

namespace {

using namespace dsa;
using namespace dsa::swarming;

SwarmingModel quick_model(std::size_t rounds = 120) {
  SimulationConfig sim;
  sim.rounds = rounds;
  return SwarmingModel(sim, BandwidthDistribution::piatek());
}

std::uint32_t freerider_id() {
  ProtocolSpec spec;
  spec.stranger_policy = StrangerPolicy::kPeriodic;
  spec.stranger_slots = 1;
  spec.ranking = RankingFunction::kFastest;
  spec.partner_slots = 9;
  spec.allocation = AllocationPolicy::kFreeride;
  return encode_protocol(spec);
}

std::uint32_t robust_id() {
  ProtocolSpec spec;
  spec.stranger_policy = StrangerPolicy::kWhenNeeded;
  spec.stranger_slots = 2;
  spec.ranking = RankingFunction::kFastest;
  spec.partner_slots = 7;
  spec.allocation = AllocationPolicy::kPropShare;
  return encode_protocol(spec);
}

TEST(Integration, PraOverNamedProtocolSubspace) {
  const SwarmingModel model = quick_model();
  core::SubspaceModel subset(
      model, {encode_protocol(bittorrent_protocol()),
              encode_protocol(birds_protocol()),
              encode_protocol(loyal_when_needed_protocol()),
              encode_protocol(sort_s_protocol()), robust_id(),
              freerider_id()});

  core::PraConfig config;
  config.population = 50;
  config.performance_runs = 2;
  config.encounter_runs = 2;
  config.seed = 77;
  const core::PraScores scores = core::PraEngine(subset, config).run();

  // Indices in the subset, as listed above.
  constexpr std::size_t kBt = 0, kBirds = 1, kLoyal = 2, kRobust = 4,
                        kFreerider = 5;

  // The freerider never uploads to partners: terrible performance and it
  // loses every tournament against reciprocating protocols here.
  EXPECT_LT(scores.performance[kFreerider], 0.4);
  EXPECT_LT(scores.robustness[kFreerider], 0.5);

  // The paper's robust family (When-needed + Fastest + PropShare) and
  // Loyal-When-needed dominate the freerider.
  EXPECT_GT(scores.robustness[kRobust], scores.robustness[kFreerider]);
  EXPECT_GT(scores.robustness[kLoyal], scores.robustness[kFreerider]);

  // Every score lives in [0, 1]; the best performer is exactly 1.
  double best = 0.0;
  for (std::size_t i = 0; i < scores.performance.size(); ++i) {
    EXPECT_GE(scores.performance[i], 0.0);
    EXPECT_LE(scores.performance[i], 1.0);
    EXPECT_GE(scores.robustness[i], 0.0);
    EXPECT_LE(scores.robustness[i], 1.0);
    best = std::max(best, scores.performance[i]);
  }
  EXPECT_DOUBLE_EQ(best, 1.0);

  // Reference points of Sec. 4.4.2/5: BitTorrent and Birds are reciprocating
  // protocols with solid performance (well above the freerider's).
  EXPECT_GT(scores.performance[kBt], scores.performance[kFreerider]);
  EXPECT_GT(scores.performance[kBirds], scores.performance[kFreerider]);
}

TEST(Integration, PraResultsAreReproducibleAcrossEngineRuns) {
  const SwarmingModel model = quick_model(60);
  core::SubspaceModel subset(model,
                             {encode_protocol(bittorrent_protocol()),
                              encode_protocol(birds_protocol()), robust_id()});
  core::PraConfig config;
  config.performance_runs = 2;
  config.encounter_runs = 1;
  const auto first = core::PraEngine(subset, config).run();
  const auto second = core::PraEngine(subset, config).run();
  EXPECT_EQ(first.raw_performance, second.raw_performance);
  EXPECT_EQ(first.robustness, second.robustness);
  EXPECT_EQ(first.aggressiveness, second.aggressiveness);
}

// ----------------------------------------------------------- dataset IO ----

TEST(PraDataset, SaveLoadRoundTrip) {
  std::vector<PraRecord> records;
  for (std::uint32_t id : {0u, 17u, 1234u, kProtocolCount - 1}) {
    PraRecord rec;
    rec.protocol = id;
    rec.spec = decode_protocol(id);
    rec.raw_performance = 100.0 + id;
    rec.performance = 0.25;
    rec.robustness = 0.5;
    rec.aggressiveness = 0.75;
    records.push_back(rec);
  }
  const auto path =
      std::filesystem::temp_directory_path() / "dsa_pra_roundtrip.csv";
  save_pra_dataset(records, path);
  const auto loaded = load_pra_dataset(path);
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].protocol, records[i].protocol);
    EXPECT_EQ(loaded[i].spec, records[i].spec);
    EXPECT_DOUBLE_EQ(loaded[i].raw_performance, records[i].raw_performance);
    EXPECT_DOUBLE_EQ(loaded[i].robustness, records[i].robustness);
  }
  std::filesystem::remove(path);
}

TEST(PraDataset, OptionsReadEnvironment) {
  setenv("DSA_ROUNDS", "77", 1);
  setenv("DSA_PERF_RUNS", "9", 1);
  setenv("DSA_OPPONENTS", "5", 1);
  setenv("DSA_RESULTS", "/tmp/custom_pra.csv", 1);
  const auto options = PraDatasetOptions::from_environment();
  EXPECT_EQ(options.rounds, 77u);
  EXPECT_EQ(options.pra.performance_runs, 9u);
  EXPECT_EQ(options.pra.opponent_sample, 5u);
  EXPECT_EQ(options.path, std::filesystem::path("/tmp/custom_pra.csv"));
  unsetenv("DSA_ROUNDS");
  unsetenv("DSA_PERF_RUNS");
  unsetenv("DSA_OPPONENTS");
  unsetenv("DSA_RESULTS");
}

TEST(PraDataset, FullFlagRestoresPaperFidelityDefaults) {
  setenv("DSA_FULL", "1", 1);
  const auto options = PraDatasetOptions::from_environment();
  EXPECT_EQ(options.rounds, 500u);
  EXPECT_EQ(options.pra.performance_runs, 100u);
  EXPECT_EQ(options.pra.encounter_runs, 10u);
  EXPECT_EQ(options.pra.opponent_sample, 0u);  // exhaustive
  unsetenv("DSA_FULL");
}

TEST(PraDataset, DefaultsAreTheQuickScale) {
  for (const char* var : {"DSA_ROUNDS", "DSA_PERF_RUNS", "DSA_ENCOUNTER_RUNS",
                          "DSA_OPPONENTS", "DSA_FULL", "DSA_RESULTS"}) {
    unsetenv(var);
  }
  const auto options = PraDatasetOptions::from_environment();
  EXPECT_EQ(options.rounds, 120u);
  EXPECT_EQ(options.pra.performance_runs, 3u);
  EXPECT_EQ(options.pra.encounter_runs, 1u);
  EXPECT_EQ(options.pra.opponent_sample, 24u);
  EXPECT_EQ(options.path, std::filesystem::path("results/pra_results.csv"));
}

TEST(PraDataset, LoadMissingFileThrows) {
  EXPECT_THROW(load_pra_dataset("/nonexistent/pra.csv"), std::runtime_error);
}

TEST(PraDataset, CachedDatasetOnDiskIsWellFormedWhenPresent) {
  // Integrity check of the shared bench cache: one record per protocol,
  // metrics in range, normalization anchored at 1. Skipped when the cache
  // has not been generated yet.
  // ctest runs tests from the build tree (typically <repo>/build/tests);
  // the cache lives in the source tree.
  std::filesystem::path path;
  for (const char* candidate :
       {"results/pra_results.csv", "../results/pra_results.csv",
        "../../results/pra_results.csv"}) {
    if (std::filesystem::exists(candidate)) {
      path = candidate;
      break;
    }
  }
  if (path.empty()) {
    GTEST_SKIP() << "no cached dataset (run a figure bench first)";
  }
  const auto records = load_pra_dataset(path);
  ASSERT_EQ(records.size(), kProtocolCount);
  double best_performance = 0.0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    ASSERT_EQ(records[i].protocol, static_cast<std::uint32_t>(i));
    ASSERT_GE(records[i].performance, 0.0);
    ASSERT_LE(records[i].performance, 1.0);
    ASSERT_GE(records[i].robustness, 0.0);
    ASSERT_LE(records[i].robustness, 1.0);
    ASSERT_GE(records[i].aggressiveness, 0.0);
    ASSERT_LE(records[i].aggressiveness, 1.0);
    best_performance = std::max(best_performance, records[i].performance);
  }
  EXPECT_DOUBLE_EQ(best_performance, 1.0);
}

}  // namespace
