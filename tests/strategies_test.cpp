// Tests for the Axelrod-style strategies and round-robin tournament
// (gametheory/strategies.hpp), checking the classic iterated-PD results and
// the asymmetric BitTorrent Dilemma behavior.
#include <gtest/gtest.h>

#include "gametheory/strategies.hpp"

namespace {

using namespace dsa::gametheory;

TournamentConfig quick_config() {
  TournamentConfig config;
  config.rounds = 100;
  config.repeats = 1;
  return config;
}

MatchResult pd_match(StrategyKind a, StrategyKind b,
                     TournamentConfig config = quick_config()) {
  dsa::util::Rng rng(9);
  return play_match(prisoners_dilemma(), a, b, config, rng);
}

// ----------------------------------------------------------- matches ----

TEST(IteratedMatch, TftPairCooperatesForever) {
  const auto result = pd_match(StrategyKind::kTitForTat,
                               StrategyKind::kTitForTat);
  EXPECT_DOUBLE_EQ(result.cooperation_rate_fast, 1.0);
  EXPECT_DOUBLE_EQ(result.cooperation_rate_slow, 1.0);
  EXPECT_DOUBLE_EQ(result.mean_payoff_fast, 3.0);  // mutual reward
}

TEST(IteratedMatch, TftLosesOnlyTheFirstRoundToAllD) {
  TournamentConfig config = quick_config();
  const auto result =
      pd_match(StrategyKind::kTitForTat, StrategyKind::kAllDefect, config);
  // TFT is suckered exactly once (payoff 0), then mutual punishment (1).
  const double expected =
      (0.0 + (static_cast<double>(config.rounds) - 1.0) * 1.0) /
      static_cast<double>(config.rounds);
  EXPECT_DOUBLE_EQ(result.mean_payoff_fast, expected);
  EXPECT_DOUBLE_EQ(result.cooperation_rate_fast,
                   1.0 / static_cast<double>(config.rounds));
}

TEST(IteratedMatch, AllDExploitsAllC) {
  const auto result =
      pd_match(StrategyKind::kAllDefect, StrategyKind::kAllCooperate);
  EXPECT_DOUBLE_EQ(result.mean_payoff_fast, 5.0);  // temptation every round
  EXPECT_DOUBLE_EQ(result.mean_payoff_slow, 0.0);  // sucker every round
}

TEST(IteratedMatch, GrimNeverForgives) {
  // Against Random, Grim defects from the first opponent defection onward.
  TournamentConfig config = quick_config();
  dsa::util::Rng rng(4);
  const auto result = play_match(prisoners_dilemma(),
                                 StrategyKind::kGrimTrigger,
                                 StrategyKind::kRandom, config, rng);
  // Random defects ~half the time, so Grim triggers early and cooperates
  // for only a handful of rounds.
  EXPECT_LT(result.cooperation_rate_fast, 0.15);
}

TEST(IteratedMatch, Tf2tToleratesAnIsolatedDefection) {
  // With 1% noise a TFT pair collapses into retaliation spirals that TF2T
  // pairs avoid, so TF2T keeps a higher cooperation rate.
  TournamentConfig noisy = quick_config();
  noisy.rounds = 2000;
  noisy.noise = 0.01;
  dsa::util::Rng rng_a(7), rng_b(7);
  const auto tft = play_match(prisoners_dilemma(), StrategyKind::kTitForTat,
                              StrategyKind::kTitForTat, noisy, rng_a);
  const auto tf2t = play_match(prisoners_dilemma(),
                               StrategyKind::kTitForTwoTats,
                               StrategyKind::kTitForTwoTats, noisy, rng_b);
  EXPECT_GT(tf2t.cooperation_rate_fast, tft.cooperation_rate_fast);
}

TEST(IteratedMatch, WslsRecoversCooperationAfterNoise) {
  // The signature WSLS property (Posch): after a unilateral defection the
  // pair re-synchronizes on cooperation within two rounds, so under noise
  // WSLS sustains high cooperation.
  TournamentConfig noisy = quick_config();
  noisy.rounds = 2000;
  noisy.noise = 0.01;
  noisy.aspiration = 2.0;  // reward (3) is a win, punishment (1) is a loss
  dsa::util::Rng rng(11);
  const auto result = play_match(prisoners_dilemma(),
                                 StrategyKind::kWinStayLoseShift,
                                 StrategyKind::kWinStayLoseShift, noisy, rng);
  EXPECT_GT(result.cooperation_rate_fast, 0.8);
}

TEST(IteratedMatch, BitTorrentDilemmaFastRoleAlwaysPrefersDefection) {
  // In the asymmetric BT Dilemma, AllD in the fast role beats TFT in the
  // fast role against any fixed slow strategy (defection is dominant).
  const auto game = bittorrent_dilemma(100.0, 20.0);
  TournamentConfig config = quick_config();
  for (StrategyKind slow : all_strategies()) {
    dsa::util::Rng rng_a(3), rng_b(3);
    const auto with_alld =
        play_match(game, StrategyKind::kAllDefect, slow, config, rng_a);
    const auto with_tft =
        play_match(game, StrategyKind::kTitForTat, slow, config, rng_b);
    EXPECT_GE(with_alld.mean_payoff_fast + 1e-9, with_tft.mean_payoff_fast)
        << "slow strategy " << to_string(slow);
  }
}

// -------------------------------------------------------- tournament ----

TEST(Tournament, ClassicRosterRankingIsSane) {
  const auto result =
      round_robin(prisoners_dilemma(), all_strategies(), quick_config());
  ASSERT_EQ(result.score.size(), all_strategies().size());
  // The reciprocators (TFT family, Grim, WSLS) must outrank AllD in a
  // roster full of retaliators — the central Axelrod observation.
  auto score_of = [&](StrategyKind kind) {
    for (std::size_t i = 0; i < result.roster.size(); ++i) {
      if (result.roster[i] == kind) return result.score[i];
    }
    throw std::logic_error("missing strategy");
  };
  EXPECT_GT(score_of(StrategyKind::kTitForTat),
            score_of(StrategyKind::kAllDefect));
  EXPECT_GT(score_of(StrategyKind::kGrimTrigger),
            score_of(StrategyKind::kAllDefect));
  const StrategyKind winner = result.roster[result.winner()];
  EXPECT_NE(winner, StrategyKind::kAllDefect);
  EXPECT_NE(winner, StrategyKind::kRandom);
}

TEST(Tournament, PayoffMatrixDiagonalMatchesSelfPlay) {
  const std::vector<StrategyKind> roster{StrategyKind::kTitForTat,
                                         StrategyKind::kAllDefect};
  const auto result =
      round_robin(prisoners_dilemma(), roster, quick_config());
  EXPECT_DOUBLE_EQ(result.payoff_matrix[0][0], 3.0);  // TFT vs TFT: reward
  EXPECT_DOUBLE_EQ(result.payoff_matrix[1][1], 1.0);  // AllD: punishment
}

TEST(Tournament, DeterministicInSeed) {
  const auto a =
      round_robin(prisoners_dilemma(), all_strategies(), quick_config());
  const auto b =
      round_robin(prisoners_dilemma(), all_strategies(), quick_config());
  EXPECT_EQ(a.score, b.score);
}

TEST(Tournament, ValidatesInput) {
  EXPECT_THROW(round_robin(prisoners_dilemma(), {}, quick_config()),
               std::invalid_argument);
  TournamentConfig bad = quick_config();
  bad.rounds = 0;
  EXPECT_THROW(round_robin(prisoners_dilemma(), all_strategies(), bad),
               std::invalid_argument);
}

TEST(Tournament, PdFactoryValidatesOrdering) {
  EXPECT_THROW(prisoners_dilemma(1.0, 3.0, 2.0, 0.0), std::invalid_argument);
  EXPECT_NO_THROW(prisoners_dilemma());
}

// -------------------------------------------------------- replicator ----

TEST(StrategyReplicator, DefectorsStarveOnceReciprocatorsDominate) {
  // The classic dynamics: AllD feasts on AllC early, shrinking AllC, but
  // the growing TFT share starves AllD out; after AllD's extinction AllC
  // and TFT are payoff-identical (everyone cooperates), so they coexist at
  // whatever mix remained — cooperation wins, with TFT the majority.
  const auto tournament = round_robin(
      prisoners_dilemma(),
      {StrategyKind::kAllCooperate, StrategyKind::kAllDefect,
       StrategyKind::kTitForTat},
      quick_config());
  const auto trajectory = strategy_replicator(
      tournament, {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0}, 400);
  const auto& final_shares = trajectory.back();
  EXPECT_LT(final_shares[1], 0.01);                      // AllD starved
  EXPECT_GT(final_shares[0] + final_shares[2], 0.99);    // cooperators rule
  EXPECT_GT(final_shares[2], final_shares[0]);           // TFT majority
  // Phase 1 really happened: AllC's share dipped below its starting third.
  EXPECT_LT(trajectory[50][0], 1.0 / 3.0);
}

TEST(StrategyReplicator, SharesStayNormalized) {
  const auto tournament =
      round_robin(prisoners_dilemma(), all_strategies(), quick_config());
  std::vector<double> initial(all_strategies().size(),
                              1.0 / all_strategies().size());
  const auto trajectory = strategy_replicator(tournament, initial, 100);
  EXPECT_EQ(trajectory.size(), 101u);
  for (const auto& shares : trajectory) {
    double sum = 0.0;
    for (double s : shares) {
      EXPECT_GE(s, 0.0);
      sum += s;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(StrategyReplicator, MonomorphicPopulationIsFixed) {
  const auto tournament = round_robin(
      prisoners_dilemma(),
      {StrategyKind::kTitForTat, StrategyKind::kAllDefect}, quick_config());
  const auto trajectory =
      strategy_replicator(tournament, {1.0, 0.0}, 50);
  EXPECT_DOUBLE_EQ(trajectory.back()[0], 1.0);
  EXPECT_DOUBLE_EQ(trajectory.back()[1], 0.0);
}

TEST(StrategyReplicator, HandlesNegativePayoffGames) {
  // The BitTorrent Dilemma has negative entries (s - f); the internal shift
  // must keep the dynamics well-defined.
  const auto tournament = round_robin(
      bittorrent_dilemma(100.0, 20.0),
      {StrategyKind::kAllCooperate, StrategyKind::kAllDefect},
      quick_config());
  const auto trajectory =
      strategy_replicator(tournament, {0.5, 0.5}, 200);
  // Unconditional defection overruns unconditional cooperation.
  EXPECT_GT(trajectory.back()[1], 0.95);
}

TEST(StrategyReplicator, ValidatesInput) {
  const auto tournament = round_robin(
      prisoners_dilemma(),
      {StrategyKind::kTitForTat, StrategyKind::kAllDefect}, quick_config());
  EXPECT_THROW(strategy_replicator(tournament, {1.0}, 10),
               std::invalid_argument);
  EXPECT_THROW(strategy_replicator(tournament, {0.7, 0.7}, 10),
               std::invalid_argument);
  EXPECT_THROW(strategy_replicator(tournament, {-0.5, 1.5}, 10),
               std::invalid_argument);
}

TEST(Tournament, MeanPayoffAveragesBothRoles) {
  const auto tournament = round_robin(
      prisoners_dilemma(),
      {StrategyKind::kAllDefect, StrategyKind::kAllCooperate},
      quick_config());
  // AllD vs AllC: temptation (5) in both roles; AllC vs AllD: sucker (0).
  EXPECT_DOUBLE_EQ(tournament.mean_payoff(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(tournament.mean_payoff(1, 0), 0.0);
}

TEST(Tournament, StrategyNamesAreStable) {
  EXPECT_EQ(to_string(StrategyKind::kWinStayLoseShift), "WSLS");
  EXPECT_EQ(to_string(StrategyKind::kTitForTwoTats), "TF2T");
  EXPECT_EQ(all_strategies().size(), 7u);
}

}  // namespace
