// Streaming-sketch suite (obs/sketch): quantile accuracy against exact
// sorted-rank answers, exact merge associativity, shard-count determinism,
// serialization round-trips, and the DSA_METRICS_QUANTILES configuration.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "obs/sketch/sketch.hpp"

namespace {

using namespace dsa;

// --- helpers --------------------------------------------------------------

/// Restores an environment variable on scope exit.
struct EnvGuard {
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  const char* name_;
  std::string old_;
  bool had_ = false;
};

/// Deterministic LCG (same constants as PCG's underlying generator) so the
/// accuracy streams are identical on every platform.
struct Lcg {
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  double next_unit() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
  std::uint64_t state;
};

/// The exact-rank answer the sketch's cumulative walk targets: element of
/// rank ceil(q*n) (1-indexed), i.e. the value whose cumulative count first
/// reaches q*n.
double exact_quantile(const std::vector<double>& sorted, double q) {
  const double target = q * static_cast<double>(sorted.size());
  std::size_t rank =
      target <= 1.0 ? 1 : static_cast<std::size_t>(std::ceil(target));
  rank = std::min(rank, sorted.size());
  return sorted[rank - 1];
}

// --- quantile-list parsing ------------------------------------------------

TEST(QuantileList, ParsesLabelsAndFractions) {
  const auto specs = obs::parse_quantile_list("p50, p90 ,p999,0.25");
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].label, "p50");
  EXPECT_DOUBLE_EQ(specs[0].q, 0.5);
  EXPECT_EQ(specs[1].label, "p90");
  EXPECT_DOUBLE_EQ(specs[1].q, 0.9);
  EXPECT_EQ(specs[2].label, "p999");
  EXPECT_DOUBLE_EQ(specs[2].q, 0.999);
  EXPECT_EQ(specs[3].label, "p25");
  EXPECT_DOUBLE_EQ(specs[3].q, 0.25);
}

TEST(QuantileList, DigitsAfterPReadAsDecimalFraction) {
  // p5 and p50 are the same quantile spelled at different precision.
  EXPECT_DOUBLE_EQ(obs::parse_quantile_list("p5")[0].q, 0.5);
  EXPECT_DOUBLE_EQ(obs::parse_quantile_list("p50")[0].q, 0.5);
  EXPECT_DOUBLE_EQ(obs::parse_quantile_list("p05")[0].q, 0.05);
}

TEST(QuantileList, RejectsMalformedLists) {
  EXPECT_THROW(obs::parse_quantile_list(""), std::invalid_argument);
  EXPECT_THROW(obs::parse_quantile_list("p50,"), std::invalid_argument);
  EXPECT_THROW(obs::parse_quantile_list(",p50"), std::invalid_argument);
  EXPECT_THROW(obs::parse_quantile_list("p"), std::invalid_argument);
  EXPECT_THROW(obs::parse_quantile_list("p9x"), std::invalid_argument);
  EXPECT_THROW(obs::parse_quantile_list("median"), std::invalid_argument);
  EXPECT_THROW(obs::parse_quantile_list("1.5"), std::invalid_argument);
  EXPECT_THROW(obs::parse_quantile_list("0"), std::invalid_argument);
  EXPECT_THROW(obs::parse_quantile_list("p0"), std::invalid_argument);
}

TEST(QuantileList, EnvironmentParsingIsStrict) {
  {
    EnvGuard guard("DSA_METRICS_QUANTILES", nullptr);
    const auto specs = obs::quantiles_from_environment();
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].label, "p50");
    EXPECT_EQ(specs[2].label, "p99");
  }
  {
    EnvGuard guard("DSA_METRICS_QUANTILES", "p50,p999");
    const auto specs = obs::quantiles_from_environment();
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[1].label, "p999");
    EXPECT_DOUBLE_EQ(specs[1].q, 0.999);
  }
  {
    EnvGuard guard("DSA_METRICS_QUANTILES", "p50,,p99");
    EXPECT_THROW(obs::quantiles_from_environment(), std::runtime_error);
  }
}

TEST(QuantileList, ExportListRoundTripsAndEmptyRestoresDefault) {
  obs::set_export_quantiles({{"p25", 0.25}, {"p75", 0.75}});
  auto specs = obs::export_quantiles();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].label, "p25");
  obs::set_export_quantiles({});
  specs = obs::export_quantiles();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].label, "p50");
  EXPECT_EQ(specs[1].label, "p90");
  EXPECT_EQ(specs[2].label, "p99");
}

// --- shared bucket walk ---------------------------------------------------

TEST(QuantileBucket, CumulativeWalkSkipsEmptyBuckets) {
  const std::vector<std::uint64_t> buckets = {0, 3, 0, 2};
  EXPECT_EQ(obs::quantile_bucket(buckets, 5, 0.0).index, 1u);
  EXPECT_EQ(obs::quantile_bucket(buckets, 5, 0.6).index, 1u);
  EXPECT_EQ(obs::quantile_bucket(buckets, 5, 0.61).index, 3u);
  EXPECT_EQ(obs::quantile_bucket(buckets, 5, 1.0).index, 3u);
  // Empty distribution: one-past-the-end sentinel.
  EXPECT_EQ(obs::quantile_bucket(buckets, 0, 0.5).index, buckets.size());
}

// --- snapshot merge/math (no insert path, works even when compiled out) ---

TEST(SketchSnapshot, MergeIsExactlyAssociative) {
  const auto make = [](std::uint64_t zero, std::uint64_t a, std::uint64_t b) {
    obs::SketchSnapshot snap;
    snap.name = "m";
    snap.zero_count = zero;
    snap.positive = {a, b, 0, 1};
    snap.negative = {0, 0, b, a};
    return snap;
  };
  const obs::SketchSnapshot a = make(1, 10, 3);
  const obs::SketchSnapshot b = make(0, 7, 70);
  const obs::SketchSnapshot c = make(5, 0, 2);

  obs::SketchSnapshot left = a;
  left.merge(b);
  left.merge(c);
  obs::SketchSnapshot bc = b;
  bc.merge(c);
  obs::SketchSnapshot right = a;
  right.merge(bc);
  EXPECT_TRUE(left == right);  // bucket counts are integers: exact equality
  EXPECT_EQ(left.count(), a.count() + b.count() + c.count());
}

TEST(SketchSnapshot, MergeRejectsDifferentMappings) {
  obs::SketchSnapshot a;
  a.positive.assign(4, 0);
  a.negative.assign(4, 0);
  obs::SketchSnapshot b = a;
  b.options.relative_error = 0.05;
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(MomentsSnapshot, DerivedStatisticsAndMerge) {
  obs::MomentsSnapshot a;
  a.count = 2;
  a.min = 1.0;
  a.max = 3.0;
  a.sum = 4.0;          // values {1, 3}
  a.sum_squares = 10.0;
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.variance(), 1.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 1.0);

  obs::MomentsSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.variance(), 0.0);

  obs::MomentsSnapshot b;
  b.count = 1;
  b.min = b.max = -2.0;
  b.sum = -2.0;
  b.sum_squares = 4.0;
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.min, -2.0);
  EXPECT_DOUBLE_EQ(a.max, 3.0);
  a.merge(empty);  // merging nothing changes nothing
  EXPECT_EQ(a.count, 3u);

  obs::MomentsSnapshot from_empty;
  from_empty.merge(b);  // min/max adopt the other side's values
  EXPECT_DOUBLE_EQ(from_empty.min, -2.0);
  EXPECT_DOUBLE_EQ(from_empty.max, -2.0);
}

TEST(SketchSnapshot, FromJsonRejectsForeignOrMalformedObjects) {
  EXPECT_THROW(obs::SketchSnapshot::from_json("{\"type\":\"bench\"}"),
               std::runtime_error);
  EXPECT_THROW(obs::SketchSnapshot::from_json("{\"type\":\"sketch\"}"),
               std::runtime_error);
  EXPECT_THROW(
      obs::SketchSnapshot::from_json(
          "{\"type\":\"sketch\",\"alpha\":0.01,\"min_value\":1e-6,"
          "\"max_value\":1e9,\"zero\":0,\"neg\":{},\"pos\":{\"bogus\":3}}"),
      std::runtime_error);
}

#if DSA_OBS_COMPILED_IN

// --- insert path (needs the runtime switch) -------------------------------

/// Restores the global obs switch so test order never matters.
struct ObsStateGuard {
  ObsStateGuard() { obs::set_enabled(true); }
  ~ObsStateGuard() { obs::set_enabled(false); }
};

/// Inserts `values` into a fresh registry and checks every reported
/// quantile against the exact sorted-rank answer, within the registered
/// relative error. The 1.0001 factor absorbs float rounding in the
/// log-bucket index at bucket boundaries.
void expect_quantiles_within_alpha(const std::vector<double>& values) {
  constexpr double kAlpha = 0.01;
  ObsStateGuard guard;
  obs::SketchRegistry registry;
  const obs::QuantileSketch sketch = registry.sketch("acc");
  for (double v : values) sketch.insert(v);
  const obs::SketchSnapshot snap = registry.snapshot().sketches.at(0);
  ASSERT_EQ(snap.count(), values.size());

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double exact = exact_quantile(sorted, q);
    const double estimate = snap.quantile(q);
    EXPECT_LE(std::abs(estimate - exact), kAlpha * 1.0001 * exact + 1e-9)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(SketchAccuracy, UniformStreamWithinRelativeError) {
  Lcg rng(42);
  std::vector<double> values;
  values.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    values.push_back(1.0 + 999.0 * rng.next_unit());
  }
  expect_quantiles_within_alpha(values);
}

TEST(SketchAccuracy, HeavyTailedParetoStreamWithinRelativeError) {
  Lcg rng(7);
  std::vector<double> values;
  values.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    // Pareto(xm = 1, a = 1.5) by inverse transform; the tail stresses the
    // log-bucket mapping far from min_value.
    const double u = rng.next_unit();
    values.push_back(std::pow(1.0 - u * 0.9999, -1.0 / 1.5));
  }
  expect_quantiles_within_alpha(values);
}

TEST(SketchAccuracy, AdversarialSortedStreamsWithinRelativeError) {
  // Monotone insertion order is the classic worst case for interpolating
  // sketches (P² markers); the log-bucket mapping must not care.
  std::vector<double> ascending;
  ascending.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    ascending.push_back(0.5 + static_cast<double>(i));
  }
  expect_quantiles_within_alpha(ascending);
  std::vector<double> descending(ascending.rbegin(), ascending.rend());
  expect_quantiles_within_alpha(descending);
}

TEST(SketchAccuracy, SignedStreamOrdersNegativeZeroPositive) {
  ObsStateGuard guard;
  obs::SketchRegistry registry;
  const obs::QuantileSketch sketch = registry.sketch("signed");
  for (int i = 1; i <= 10; ++i) {
    sketch.insert(static_cast<double>(-i));
    sketch.insert(static_cast<double>(i));
  }
  sketch.insert(0.0);
  const obs::SketchSnapshot snap = registry.snapshot().sketches.at(0);
  EXPECT_EQ(snap.count(), 21u);
  EXPECT_LT(snap.quantile(0.02), -9.0);  // most negative magnitude first
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
  EXPECT_GT(snap.quantile(0.98), 9.0);
}

TEST(SketchInsert, EdgeValuesLandWhereDocumented) {
  ObsStateGuard guard;
  obs::SketchRegistry registry;
  const obs::QuantileSketch sketch = registry.sketch("edges");
  sketch.insert(0.0);
  sketch.insert(1e-9);   // below min_value: zero bucket
  sketch.insert(-1e-9);
  sketch.insert(1e12);   // above max_value: clamps into the edge bucket
  sketch.insert(std::nan(""));  // carries no rank: dropped
  const obs::SketchSnapshot snap = registry.snapshot().sketches.at(0);
  EXPECT_EQ(snap.count(), 4u);
  EXPECT_EQ(snap.zero_count, 3u);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
  const double top = snap.quantile(1.0);
  EXPECT_TRUE(std::isfinite(top));
  EXPECT_GT(top, 1e8);
}

TEST(SketchRegistry, ShardedInsertsMatchSingleThreadExactly) {
  ObsStateGuard guard;
  Lcg rng(99);
  std::vector<double> values;
  values.reserve(8000);
  for (int i = 0; i < 8000; ++i) {
    values.push_back(0.01 + 100.0 * rng.next_unit());
  }

  obs::SketchRegistry sharded;
  {
    const obs::QuantileSketch sketch = sharded.sketch("s");
    const obs::MomentsAccumulator moments = sharded.moments("s");
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < 4; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t i = t; i < values.size(); i += 4) {
          sketch.insert(values[i]);
          moments.insert(values[i]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  obs::SketchRegistry single;
  {
    const obs::QuantileSketch sketch = single.sketch("s");
    const obs::MomentsAccumulator moments = single.moments("s");
    for (double v : values) {
      sketch.insert(v);
      moments.insert(v);
    }
  }

  const obs::SketchRegistrySnapshot a = sharded.snapshot();
  const obs::SketchRegistrySnapshot b = single.snapshot();
  // Bucket counts are integer adds: 4-thread and 1-thread streams must be
  // IDENTICAL, not just close.
  EXPECT_TRUE(a.sketches.at(0) == b.sketches.at(0));
  // Moments: count/min/max are order-independent; the float sums are only
  // near-equal across shard merge orders (documented contract).
  EXPECT_EQ(a.moments.at(0).count, b.moments.at(0).count);
  EXPECT_DOUBLE_EQ(a.moments.at(0).min, b.moments.at(0).min);
  EXPECT_DOUBLE_EQ(a.moments.at(0).max, b.moments.at(0).max);
  EXPECT_NEAR(a.moments.at(0).mean(), b.moments.at(0).mean(),
              1e-9 * std::abs(b.moments.at(0).mean()));
  EXPECT_NEAR(a.moments.at(0).stddev(), b.moments.at(0).stddev(),
              1e-7 * std::abs(b.moments.at(0).stddev()));
}

TEST(SketchRegistry, ShardSnapshotsMergeToTheWholeStream) {
  ObsStateGuard guard;
  Lcg rng(123);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) values.push_back(0.1 + 50.0 * rng.next_unit());

  // Three independent registries each see a third of the stream — the
  // "merge partial sketches from separate processes" shape.
  obs::SketchRegistry parts[3];
  obs::SketchRegistry whole;
  const obs::QuantileSketch all = whole.sketch("w");
  for (std::size_t i = 0; i < values.size(); ++i) {
    parts[i % 3].sketch("w").insert(values[i]);
    all.insert(values[i]);
  }
  obs::SketchSnapshot merged = parts[0].snapshot().sketches.at(0);
  merged.merge(parts[1].snapshot().sketches.at(0));
  merged.merge(parts[2].snapshot().sketches.at(0));
  EXPECT_TRUE(merged == whole.snapshot().sketches.at(0));
}

TEST(SketchSnapshot, JsonRoundTripIsExact) {
  ObsStateGuard guard;
  obs::SketchRegistry registry;
  const obs::QuantileSketch sketch = registry.sketch("rt");
  Lcg rng(5);
  for (int i = 0; i < 500; ++i) {
    const double v = 200.0 * (rng.next_unit() - 0.5);
    sketch.insert(v);
  }
  sketch.insert(0.0);
  const obs::SketchSnapshot snap = registry.snapshot().sketches.at(0);
  const obs::SketchSnapshot parsed =
      obs::SketchSnapshot::from_json(snap.to_json());
  EXPECT_TRUE(snap == parsed);
  EXPECT_EQ(snap.to_json(), parsed.to_json());
}

TEST(SketchRegistry, ReRegistrationValidatesOptions) {
  obs::SketchRegistry registry;
  obs::SketchOptions options;
  (void)registry.sketch("x", options);
  (void)registry.sketch("x", options);  // idempotent
  options.relative_error = 0.05;
  EXPECT_THROW(registry.sketch("x", options), std::invalid_argument);

  obs::SketchOptions bad;
  bad.relative_error = 0.0;
  EXPECT_THROW(registry.sketch("y", bad), std::invalid_argument);
  bad = {};
  bad.min_value = 10.0;
  bad.max_value = 1.0;
  EXPECT_THROW(registry.sketch("y", bad), std::invalid_argument);
}

TEST(SketchRegistry, ResetZeroesCountsButKeepsRegistrations) {
  ObsStateGuard guard;
  obs::SketchRegistry registry;
  const obs::QuantileSketch sketch = registry.sketch("r");
  const obs::MomentsAccumulator moments = registry.moments("r");
  sketch.insert(3.0);
  moments.insert(3.0);
  registry.reset();
  const obs::SketchRegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.sketches.size(), 1u);
  EXPECT_EQ(snap.sketches[0].name, "r");
  EXPECT_EQ(snap.sketches[0].count(), 0u);
  ASSERT_EQ(snap.moments.size(), 1u);
  EXPECT_EQ(snap.moments[0].count, 0u);
  EXPECT_DOUBLE_EQ(snap.moments[0].min, 0.0);
  // Handles stay live after reset.
  sketch.insert(4.0);
  EXPECT_EQ(registry.snapshot().sketches.at(0).count(), 1u);
}

TEST(SketchRegistry, DisabledOrDetachedHandlesRecordNothing) {
  obs::SketchRegistry registry;
  const obs::QuantileSketch sketch = registry.sketch("off");
  const obs::MomentsAccumulator moments = registry.moments("off");
  obs::set_enabled(false);
  sketch.insert(1.0);
  moments.insert(1.0);
  EXPECT_EQ(registry.snapshot().sketches.at(0).count(), 0u);
  EXPECT_EQ(registry.snapshot().moments.at(0).count, 0u);
  // Default-constructed handles are inert even when obs is on.
  ObsStateGuard guard;
  obs::QuantileSketch detached;
  obs::MomentsAccumulator detached_moments;
  detached.insert(1.0);
  detached_moments.insert(1.0);
}

TEST(MomentsAccumulator, ExactExtremaAndNearMeanVariance) {
  ObsStateGuard guard;
  obs::SketchRegistry registry;
  const obs::MomentsAccumulator moments = registry.moments("m");
  double sum = 0.0, sum_squares = 0.0;
  Lcg rng(11);
  double min = 1e300, max = -1e300;
  for (int i = 0; i < 2000; ++i) {
    const double v = 10.0 * (rng.next_unit() - 0.3);
    moments.insert(v);
    sum += v;
    sum_squares += v * v;
    min = std::min(min, v);
    max = std::max(max, v);
  }
  const obs::MomentsSnapshot snap = registry.snapshot().moments.at(0);
  EXPECT_EQ(snap.count, 2000u);
  EXPECT_DOUBLE_EQ(snap.min, min);
  EXPECT_DOUBLE_EQ(snap.max, max);
  EXPECT_NEAR(snap.sum, sum, 1e-9 * std::abs(sum));
  const double mean = sum / 2000.0;
  EXPECT_NEAR(snap.variance(), sum_squares / 2000.0 - mean * mean, 1e-9);
}

#endif  // DSA_OBS_COMPILED_IN

}  // namespace
