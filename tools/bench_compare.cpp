// bench_compare — diff two BENCH_<name>.json perf summaries (bench/common.hpp
// schema), or two directories of them, and fail when a bench's median wall
// time regressed past a threshold.
//
//   bench_compare <baseline> <candidate> [--threshold PCT]
//
// <baseline>/<candidate> are either single BENCH_*.json files or directories
// (every BENCH_*.json inside is matched by file name). Exit status:
//   0  no bench regressed more than the threshold
//   1  at least one regression past the threshold
//   2  usage / unreadable input
//
// CI's perf-smoke job runs this against the committed baselines in
// results/perf_baseline/ with --threshold 25 — wide enough for shared-runner
// noise, tight enough to catch a real slowdown.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/table_printer.hpp"

namespace {

namespace fs = std::filesystem;
using dsa::util::json::Value;

struct BenchSummary {
  std::string bench;
  std::string engine;
  double threads = 0.0;
  double repetitions = 0.0;
  double median_ms = 0.0;
  double p10_ms = 0.0;
  double p90_ms = 0.0;
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "error: %s\n\n", error.c_str());
  std::fprintf(stderr,
               "usage: bench_compare <baseline> <candidate> "
               "[--threshold PCT]\n\n"
               "Compare BENCH_*.json perf summaries (files or directories "
               "of them)\nand exit 1 when any bench's median wall time "
               "regressed by more\nthan PCT percent (default 10).\n");
  std::exit(2);
}

double number_field(const Value& object, const std::string& key,
                    const std::string& origin) {
  const Value* field = object.find(key);
  if (field == nullptr || field->type != Value::Type::kNumber) {
    throw std::runtime_error(origin + ": missing numeric \"" + key + "\"");
  }
  return field->number;
}

BenchSummary load_summary(const fs::path& path) {
  const Value root = dsa::util::json::parse_file(path);
  const std::string origin = path.string();
  if (root.type != Value::Type::kObject) {
    throw std::runtime_error(origin + ": not a JSON object");
  }
  const Value* type = root.find("type");
  if (type == nullptr || type->type != Value::Type::kString ||
      type->text != "bench") {
    throw std::runtime_error(origin + ": not a BENCH summary (type!=bench)");
  }
  const Value* bench = root.find("bench");
  if (bench == nullptr || bench->type != Value::Type::kString) {
    throw std::runtime_error(origin + ": missing \"bench\" name");
  }
  const Value* wall = root.find("wall_time_ms");
  if (wall == nullptr || wall->type != Value::Type::kObject) {
    throw std::runtime_error(origin + ": missing \"wall_time_ms\" object");
  }
  BenchSummary summary;
  summary.bench = bench->text;
  const Value* engine = root.find("engine");
  if (engine != nullptr && engine->type == Value::Type::kString) {
    summary.engine = engine->text;
  }
  summary.threads = number_field(root, "threads", origin);
  summary.repetitions = number_field(root, "repetitions", origin);
  summary.median_ms = number_field(*wall, "median", origin);
  summary.p10_ms = number_field(*wall, "p10", origin);
  summary.p90_ms = number_field(*wall, "p90", origin);
  return summary;
}

/// File or directory -> summaries keyed by bench name.
std::map<std::string, BenchSummary> collect(const fs::path& path) {
  std::map<std::string, BenchSummary> summaries;
  if (fs::is_directory(path)) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(path)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
          entry.path().extension() == ".json") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      const BenchSummary summary = load_summary(file);
      summaries[summary.bench] = summary;
    }
  } else if (fs::is_regular_file(path)) {
    const BenchSummary summary = load_summary(path);
    summaries[summary.bench] = summary;
  } else {
    throw std::runtime_error(path.string() + ": no such file or directory");
  }
  return summaries;
}

std::string fixed1(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positionals;
  double threshold = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) usage("--threshold needs a value");
      try {
        threshold = std::stod(argv[++i]);
      } catch (const std::exception&) {
        usage("--threshold must be a number");
      }
      if (threshold <= 0.0) usage("--threshold must be > 0");
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else if (!arg.empty() && arg[0] == '-') {
      usage("unknown flag " + arg);
    } else {
      positionals.push_back(arg);
    }
  }
  if (positionals.size() != 2) usage("need exactly two paths to compare");

  try {
    const auto baseline = collect(positionals[0]);
    const auto candidate = collect(positionals[1]);

    dsa::util::TablePrinter table(
        {"bench", "baseline (ms)", "candidate (ms)", "delta", "status"});
    std::size_t compared = 0;
    std::vector<std::string> regressions;
    for (const auto& [name, base] : baseline) {
      const auto it = candidate.find(name);
      if (it == candidate.end()) {
        table.add_row({name, fixed1(base.median_ms), "-", "-", "missing"});
        continue;
      }
      const BenchSummary& cand = it->second;
      ++compared;
      const double delta_pct =
          base.median_ms > 0.0
              ? 100.0 * (cand.median_ms - base.median_ms) / base.median_ms
              : 0.0;
      std::string status = "ok";
      if (delta_pct > threshold) {
        status = "REGRESSION";
        regressions.push_back(name);
      } else if (delta_pct < -threshold) {
        status = "improved";
      }
      // Different engine or thread count means the numbers measure
      // different work — flag instead of judging.
      if (base.engine != cand.engine || base.threads != cand.threads) {
        status = "incomparable (engine/threads differ)";
      }
      table.add_row({name, fixed1(base.median_ms), fixed1(cand.median_ms),
                     fixed1(delta_pct) + "%", status});
    }
    for (const auto& [name, cand] : candidate) {
      if (baseline.find(name) == baseline.end()) {
        table.add_row({name, "-", fixed1(cand.median_ms), "-", "new"});
      }
    }
    table.print(std::cout);
    std::printf("\n%zu bench(es) compared, threshold %.1f%%\n", compared,
                threshold);
    if (!regressions.empty()) {
      std::printf("REGRESSED:");
      for (const auto& name : regressions) std::printf(" %s", name.c_str());
      std::printf("\n");
      return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
