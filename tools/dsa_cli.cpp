// dsa_cli — command-line front end to the library.
//
//   dsa_cli decode --id 1798
//   dsa_cli named
//   dsa_cli performance --protocol birds --rounds 300 --runs 5
//   dsa_cli encounter --a loyal --b bt --fraction 0.5 --runs 5
//   dsa_cli pra --protocols bt,birds,loyal,sorts --runs 3
//   dsa_cli swarm --a birds --b bt --fraction 0.25 --runs 10
//   dsa_cli nash --na 10 --nb 10 --nc 10 --ur 4
//   dsa_cli evolve --protocols bt,birds,loyal --generations 40
//   dsa_cli plan examples/scenarios/pra_sweep.json --jobs
//   dsa_cli run examples/scenarios/pra_sweep.json
//   dsa_cli explore examples/scenarios/fault_explore.json
//   dsa_cli swarm --fault-file results/fault_explore.worst.json
//   dsa_cli record --out r.jsonl --context demo swarm --runs 3
//   dsa_cli report r.jsonl --table fig9
//   DSA_STATUS=on dsa_cli run examples/scenarios/pra_sweep.json
//   dsa_cli top results            (attach a live monitor, ctrl-c to detach)
//   dsa_cli status results --json  (one-shot health report for scripts/CI)
//   dsa_cli serve --socket results/serve.sock   (resident query daemon)
//   dsa_cli query examples/scenarios/pra_sweep.json --table
//   dsa_cli help run
//
// Protocols are named (bt, birds, loyal, sorts, random) or numeric design-
// space ids. Every command accepts --seed.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ess.hpp"
#include "core/evolution.hpp"
#include "core/pra.hpp"
#include "core/subspace.hpp"
#include "explore/counterexample.hpp"
#include "explore/explore.hpp"
#include "fault/fault_plan.hpp"
#include "gametheory/expected_wins.hpp"
#include "obs/flame/flame.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/sketch/sketch.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "report/report.hpp"
#include "scenario/explore_kind.hpp"
#include "scenario/runner.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "stats/descriptive.hpp"
#include "swarm/swarm_sim.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/pra_dataset.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/fingerprint.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

// Build configuration baked in by tools/CMakeLists.txt so every trace or
// metrics file is attributable to the binary that produced it.
#ifndef DSA_BUILD_COMPILER
#define DSA_BUILD_COMPILER "unknown"
#endif
#ifndef DSA_BUILD_TYPE
#define DSA_BUILD_TYPE "unknown"
#endif
#ifndef DSA_BUILD_NATIVE
#define DSA_BUILD_NATIVE "OFF"
#endif
#ifndef DSA_BUILD_SANITIZE
#define DSA_BUILD_SANITIZE ""
#endif

namespace {

using namespace dsa;
using namespace dsa::swarming;

const util::HelpIndex& help_index() {
  static const util::HelpIndex index({
      {"decode", "describe a design-space protocol id",
       "usage: dsa_cli decode --id N\n\n"
       "Describe design-space protocol id N (0 <= N < 3270): stranger\n"
       "policy, candidate window, ranking function, slots, allocation.\n"},
      {"named", "list the named protocols and their ids",
       "usage: dsa_cli named\n\n"
       "List the named protocols (bt, birds, loyal, sorts, random) with\n"
       "their design-space ids and full descriptions.\n"},
      {"performance", "homogeneous population throughput",
       "usage: dsa_cli performance [--protocol P] [--rounds N] [--runs N]\n"
       "                           [--population N] [--churn X] [--seed N]\n\n"
       "Mean population throughput (KBps, +/- 95% CI) of a homogeneous\n"
       "population all running one protocol.\n"
       "protocols: bt, birds, loyal, sorts, random, or a numeric id\n"
       "defaults: --protocol bt --rounds 200 --runs 5 --population 50\n"
       "          --churn 0 --seed 42\n"},
      {"encounter", "one tournament encounter (group means, winner)",
       "usage: dsa_cli encounter [--a P] [--b P] [--fraction X] [--runs N]\n"
       "                         [--population N] [--rounds N] [--seed N]\n\n"
       "One mixed-population encounter: fraction*population peers run A,\n"
       "the rest run B; reports group mean utilities and the winner.\n"
       "defaults: --a bt --b birds --fraction 0.5 --runs 5\n"
       "          --population 50 --rounds 200 --seed 42\n"},
      {"pra", "PRA quantification over a protocol subset",
       "usage: dsa_cli pra [--protocols P,P,...] [--runs N] [--population N]\n"
       "                   [--rounds N] [--seed N] [--threads N]\n"
       "                   [--engine E] [--batch-width W]\n\n"
       "Performance / robustness / aggressiveness quantification over a\n"
       "comma-separated protocol subset (Sec. 4).\n"
       "--threads N worker threads; default DSA_THREADS, 0 = hardware\n"
       "concurrency. Results are thread-count independent.\n"
       "--engine sparse|dense|batch (default DSA_ENGINE); --batch-width W\n"
       "simulations per lockstep batch, 0 = auto (default DSA_BATCH_WIDTH).\n"
       "All engines and widths produce identical numbers.\n"
       "defaults: --protocols bt,birds,loyal,sorts --runs 3\n"
       "          --population 50 --rounds 200 --seed 2011\n"},
      {"sweep", "full design-space PRA sweep (resume + cached CSV)",
       "usage: dsa_cli sweep [--out FILE] [--threads N] [--engine E]\n"
       "                     [--batch-width W] [--force] [--quiet]\n\n"
       "PRA quantification of all 3270 protocols with live progress,\n"
       "checkpoint resume, and a cached CSV dataset (skipped when the\n"
       "output already exists; --force recomputes).\n"
       "Scale via DSA_FULL / DSA_ROUNDS / DSA_POPULATION / DSA_RUNS /\n"
       "DSA_SEED / DSA_ENGINE; threads via --threads or DSA_THREADS.\n"
       "--engine sparse|dense|batch and --batch-width W (0 = auto) select\n"
       "the execution path; the dataset is identical on every engine.\n"},
      {"swarm", "piece-level swarm head-to-head (Sec. 5)",
       "usage: dsa_cli swarm [--a C] [--b C] [--fraction X] [--runs N]\n"
       "                     [--seed N] [fault flags]\n"
       "       dsa_cli swarm --fault-file FILE [--runs N]\n\n"
       "Piece-level BitTorrent swarm: fraction*50 leechers run client A\n"
       "against the rest on B, capacities from the Piatek distribution.\n"
       "clients: bt, birds, loyal, sorts, random\n"
       "defaults: --a birds --b bt --fraction 0.5 --runs 10 --seed 1000\n\n"
       "fault flags (Sec. 5 robustness):\n"
       "  --fault X        overall fault intensity in [0,1]; derives a\n"
       "                   deterministic schedule of message loss, leecher\n"
       "                   crashes, and a seeder outage (0 = fault-free)\n"
       "  --loss P         override per-delivery message-loss probability\n"
       "  --timeout T      override in-flight piece timeout (ticks)\n"
       "  --crash-frac X   leecher fraction crashed at full intensity\n"
       "                   (default 0.5)\n"
       "  --outage-frac X  seeder outage length at full intensity, as a\n"
       "                   fraction of the horizon (default 0.25)\n"
       "  --horizon T      ticks the fault schedule spans; keep it near the\n"
       "                   expected run length (default 600)\n\n"
       "replay mode:\n"
       "  --fault-file F   replay a committed fault plan or explorer\n"
       "                   counterexample JSON (see `dsa_cli explore`); the\n"
       "                   embedded swarm block pins clients, composition,\n"
       "                   knobs, and seed, so --runs 1 (the default) is a\n"
       "                   bitwise replay of the recorded run. Exits 1 when\n"
       "                   the replayed objective value differs from the\n"
       "                   recorded one.\n"},
      {"nash", "Sec. 2.2/Appendix analytical model",
       "usage: dsa_cli nash [--na N] [--nb N] [--nc N] [--ur N]\n\n"
       "Analytical expected-game-wins model: homogeneous BT vs Birds plus\n"
       "both invasion checks (is either a Nash equilibrium?).\n"
       "defaults: --na 10 --nb 10 --nc 10 --ur 4\n"},
      {"stability", "ESS stability against sampled mutants",
       "usage: dsa_cli stability [--protocol P] [--fraction X] [--runs N]\n"
       "                         [--mutants N] [--population N] [--rounds N]\n"
       "                         [--seed N]\n\n"
       "Evolutionary stability of one protocol against sampled mutant\n"
       "groups; lists any successful invaders.\n"
       "defaults: --protocol bt --fraction 0.1 --runs 1 --mutants 24\n"
       "          --population 50 --rounds 200 --seed 2011\n"},
      {"evolve", "replicator dynamics over a protocol menu",
       "usage: dsa_cli evolve [--protocols P,P,...] [--generations N]\n"
       "                      [--runs N] [--mutation X] [--population N]\n"
       "                      [--rounds N] [--seed N]\n\n"
       "Replicator dynamics from an even split over a protocol menu;\n"
       "reports share trajectories and fixation.\n"
       "defaults: --protocols bt,birds,loyal --generations 40 --runs 2\n"
       "          --mutation 0 --population 50 --rounds 200 --seed 2011\n"},
      {"plan", "expand a scenario spec into its job list",
       "usage: dsa_cli plan <spec.json> [--jobs]\n\n"
       "Validate a declarative scenario spec (see examples/scenarios/),\n"
       "expand it into its deterministic job list, and report what `run`\n"
       "would do: job count, output path, and how many jobs an existing\n"
       "manifest already covers. --jobs lists every job with its stable\n"
       "fingerprint, resume state, and label.\n"},
      {"run", "execute a scenario spec (crash-tolerant, sharded)",
       "usage: dsa_cli run <spec.json> [--threads N] [--keep-manifest]\n"
       "                   [--quiet]\n\n"
       "Execute a scenario spec end to end. The plan is sharded into jobs\n"
       "that run on a thread pool with per-job retry; every finished job is\n"
       "appended to a JSONL manifest next to the output, so a killed run\n"
       "can simply be re-run and only the missing jobs execute. The merged\n"
       "CSV is written atomically and is byte-identical regardless of\n"
       "thread count or interruptions.\n\n"
       "flags:\n"
       "  --threads N      worker threads (default: DSA_THREADS, else the\n"
       "                   spec's \"threads\", else hardware concurrency);\n"
       "                   never affects the output bytes\n"
       "  --keep-manifest  keep the job manifest after a successful merge\n"
       "  --quiet          suppress the progress meter and resume notes\n"},
      {"explore", "worst-case fault-schedule search (explore spec)",
       "usage: dsa_cli explore <spec.json> [--threads N] [--keep-manifest]\n"
       "                       [--quiet] [--worst-out FILE]\n\n"
       "Systematic worst-case search over the fault-schedule space declared\n"
       "by an explore-kind scenario spec: every crash/outage schedule of at\n"
       "most `max_faults` faults is enumerated (order-equivalent twins are\n"
       "pruned), simulated against the pinned swarm run, and ranked by the\n"
       "spec's objective. Enumeration shards through the crash-tolerant\n"
       "scenario runner: a killed exploration resumes from its manifest and\n"
       "the ranked CSV is byte-identical at any thread count.\n\n"
       "After the sweep the worst schedule is shrunk delta-debugging-style\n"
       "to a 1-minimal counterexample, saved as a replayable JSON (see\n"
       "`dsa_cli swarm --fault-file`), and re-run under the flight recorder\n"
       "to render a failure report: fault timeline + per-leecher impact vs\n"
       "the fault-free baseline.\n\n"
       "flags:\n"
       "  --threads N      worker threads (default DSA_THREADS, 0 = auto);\n"
       "                   never affects the output bytes\n"
       "  --keep-manifest  keep the job manifest after a successful merge\n"
       "  --quiet          suppress the progress meter and resume notes\n"
       "  --worst-out F    counterexample path (default: the spec output\n"
       "                   with its extension replaced by .worst.json)\n"},
      {"record", "run a command with the flight recorder on",
       "usage: dsa_cli record [--out FILE] [--level rounds|full]\n"
       "                      [--stride N] [--context TEXT] <command> ...\n\n"
       "Run any dsa_cli command with the simulation flight recorder enabled\n"
       "and save the recording when it finishes. The recording is a JSONL\n"
       "event stream (or CSV when FILE ends in .csv) that `dsa_cli report`\n"
       "aggregates into paper-figure tables. Recording never changes the\n"
       "wrapped command's numeric output.\n\n"
       "flags (defaults: --out results/recording.jsonl, --level rounds, or\n"
       "DSA_RECORD / DSA_RECORD_STRIDE when set):\n"
       "  --level rounds   run headers, per-round aggregates, end-of-run\n"
       "                   summaries\n"
       "  --level full     adds per-decision detail: partner selections,\n"
       "                   stranger gifts, choke decisions, piece\n"
       "                   completions\n"
       "  --stride N       record every N-th round/tick of per-round kinds\n"
       "  --context TEXT   provenance tag stamped into run events; reports\n"
       "                   group series by it\n\n"
       "example: dsa_cli record --out r.jsonl --context demo swarm --runs 3\n"},
      {"report", "render figure tables from a recording",
       "usage: dsa_cli report <recording.jsonl> [--table T]\n"
       "       dsa_cli report --health <STATUS_run.timeseries.jsonl>\n\n"
       "Aggregate a flight recording into paper-figure-ready tables:\n"
       "  summary  event/run counts per kind\n"
       "  fig5     stranger-policy robustness CCDF (Fig. 5, from pra\n"
       "           events)\n"
       "  fig9     competitive swarm encounter series (Figs. 9-10)\n"
       "  pra      mean P/R/A by ranking and by allocation (Figs. 6-7)\n"
       "  wins     win matrix between two-group runs (Figs. 1/9 flavor)\n"
       "  swarm    download-time summary per client variant (Fig. 10)\n"
       "  all      every table that has matching events (default)\n\n"
       "The fig5/fig9 tables are byte-identical to what the corresponding\n"
       "benches print when both consume the same events.\n\n"
       "--health instead renders the swarm-health timelines of a live-\n"
       "telemetry time-series (written under DSA_STATUS=on): one table per\n"
       "streaming sketch (download progress, per-peer utilization, partner\n"
       "switch rate, score spread, ...) with per-interval quantile and\n"
       "moment columns.\n"},
      {"flame", "render a collapsed-stack profile as a terminal flamegraph",
       "usage: dsa_cli flame <profile.folded> [--min-attribution X]\n\n"
       "Render a collapsed-stack file written by the wall-clock sampling\n"
       "profiler (DSA_PROF=on, any command; results/PROF_<command>.folded\n"
       "by default) as an indented tree with per-phase sample counts,\n"
       "percentages, and bars, plus the hottest stacks. The same file\n"
       "loads directly into flamegraph.pl or https://speedscope.app.\n\n"
       "flags:\n"
       "  --min-attribution X  exit 1 when the fraction of non-idle\n"
       "                       samples attributed below a root phase is\n"
       "                       less than X (0..1; CI holds sweeps to 0.9)\n"},
      {"serve", "resident query daemon with a result cache",
       "usage: dsa_cli serve [--socket PATH] [--threads N] [--cache-mb N]\n"
       "                     [--store FILE] [--quiet]\n\n"
       "Run a long-lived design-space query daemon: the protocol dataset\n"
       "and simulators stay resident, and scenario queries arriving over a\n"
       "unix domain socket (newline-delimited JSON, see src/serve) are\n"
       "answered from a content-addressed result cache keyed by per-job\n"
       "fingerprints. A repeated query is served from memory byte-identical\n"
       "to a fresh computation at any thread count or engine; cache misses\n"
       "run on a shared thread pool with per-job progress streamed to the\n"
       "client. Completed jobs append to an on-disk JSONL store that\n"
       "pre-warms the cache on restart, so even a SIGKILLed daemon keeps\n"
       "its answers. The daemon heartbeats through the live-telemetry\n"
       "sampler, so `dsa_cli top` and `dsa_cli status` can watch it.\n"
       "Stop it with ctrl-c / SIGTERM or `dsa_cli query --shutdown`.\n\n"
       "flags:\n"
       "  --socket PATH  listening socket (default results/serve.sock);\n"
       "                 fails when another daemon already listens there\n"
       "  --threads N    worker threads (default DSA_THREADS, 0 = auto)\n"
       "  --cache-mb N   in-memory cache budget before LRU eviction\n"
       "                 (default 64)\n"
       "  --store FILE   on-disk cache store (default: the socket path\n"
       "                 with extension .cache.jsonl)\n"
       "  --quiet        suppress the startup banner and per-query notes\n"},
      {"query", "ask a running serve daemon for a scenario result",
       "usage: dsa_cli query <spec.json> [--socket PATH] [--table]\n"
       "                     [--out FILE] [--quiet]\n"
       "       dsa_cli query --ping|--status|--shutdown [--socket PATH]\n\n"
       "Submit a scenario spec to a `dsa_cli serve` daemon and print the\n"
       "merged result. Progress streams to stderr while jobs run; the\n"
       "answer lands on stdout (or --out FILE) as the exact CSV bytes\n"
       "`dsa_cli run` would have written, regardless of how much of it\n"
       "came from the daemon's cache.\n\n"
       "flags:\n"
       "  --socket PATH  daemon socket (default results/serve.sock)\n"
       "  --table        render an aligned text table instead of CSV\n"
       "  --out FILE     write the result atomically to FILE instead of\n"
       "                 stdout\n"
       "  --quiet        suppress the progress meter and summary\n"
       "  --ping         health-check the daemon and exit\n"
       "  --status       print the daemon's query/cache counters\n"
       "                 (--json for one machine-readable object)\n"
       "  --shutdown     ask the daemon to exit after in-flight queries\n"},
      {"status", "one-shot health report over heartbeat files",
       "usage: dsa_cli status [<status-file|results-dir>] [--json]\n\n"
       "Read the heartbeat files live runs maintain under DSA_STATUS=on\n"
       "(default target: results/) and report each run's health:\n"
       "  RUNNING  pid alive, heartbeat fresh\n"
       "  STALLED  pid alive but no heartbeat for > 3 sampling intervals\n"
       "  DEAD     heartbeat says running but the pid is gone (SIGKILL)\n"
       "  DONE     finished cleanly          FAILED  finished with errors\n\n"
       "--json emits one machine-readable status_report object (schema 1)\n"
       "for scripts and CI. Exit status: 0 when every run is RUNNING or\n"
       "DONE, 1 when any run is STALLED, DEAD, or FAILED (or no heartbeat\n"
       "files were found), 2 on unreadable/malformed heartbeats.\n"},
      {"top", "attachable live monitor for running experiments",
       "usage: dsa_cli top [<status-file|results-dir>] [--interval-ms N]\n"
       "                   [--frames N] [--once]\n\n"
       "Attach a read-only terminal monitor to the heartbeat files of runs\n"
       "started with DSA_STATUS=on (default target: results/). Each frame\n"
       "shows per-run health, phase, progress bar, throughput, ETA, RSS,\n"
       "pool queue depth, shard strip, and the last error, then redraws\n"
       "every --interval-ms (default 1000). Purely an observer: it only\n"
       "reads the heartbeat files and never touches the experiment.\n\n"
       "Exits when every run reaches a terminal state (DONE/FAILED/DEAD),\n"
       "after --frames N redraws, or immediately after one plain-text\n"
       "frame with --once (no screen clearing; for logs and CI).\n"},
      {"help", "show per-command usage",
       "usage: dsa_cli help [command]\n\n"
       "Show the command list, or the detailed usage of one command.\n"},
      {"version", "print the build configuration (also --version)",
       "usage: dsa_cli version\n\n"
       "Print compiler, build type, and observability configuration.\n"},
  });
  return index;
}

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "error: %s\n\n", error.c_str());
  std::fprintf(
      stderr,
      "usage: dsa_cli <command> [args] [--flags]\n\ncommands:\n%s\n"
      "run `dsa_cli help <command>` for per-command flags and defaults.\n\n"
      "global observability flags (valid with every command):\n"
      "  --trace FILE       record a Chrome trace-event JSON of the run;\n"
      "                     load it in chrome://tracing or\n"
      "                     https://ui.perfetto.dev\n"
      "  --metrics-out FILE write a JSONL metrics snapshot (counters,\n"
      "                     gauges, histograms) when the command finishes\n",
      help_index().command_list().c_str());
  std::exit(2);
}

std::uint32_t parse_protocol(const std::string& name) {
  if (name == "bt") return encode_protocol(bittorrent_protocol());
  if (name == "birds") return encode_protocol(birds_protocol());
  if (name == "loyal") return encode_protocol(loyal_when_needed_protocol());
  if (name == "sorts") return encode_protocol(sort_s_protocol());
  if (name == "random") return encode_protocol(random_rank_protocol());
  try {
    const unsigned long id = std::stoul(name);
    if (id >= kProtocolCount) throw std::out_of_range("id");
    return static_cast<std::uint32_t>(id);
  } catch (const std::exception&) {
    usage("unknown protocol '" + name + "'");
  }
}

std::vector<std::uint32_t> parse_protocol_list(const std::string& csv) {
  std::vector<std::uint32_t> protocols;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) protocols.push_back(parse_protocol(token));
  }
  if (protocols.size() < 2) usage("need at least two protocols");
  return protocols;
}

swarm::ClientVariant parse_client(const std::string& name) {
  using swarm::ClientVariant;
  if (name == "bt") return ClientVariant::kBitTorrent;
  if (name == "birds") return ClientVariant::kBirds;
  if (name == "loyal") return ClientVariant::kLoyalWhenNeeded;
  if (name == "sorts") return ClientVariant::kSortSlowest;
  if (name == "random") return ClientVariant::kRandomRank;
  usage("unknown swarm client '" + name + "'");
}

SimEngine engine_from_name(const std::string& name) {
  if (name == "sparse") return SimEngine::kSparse;
  if (name == "dense") return SimEngine::kDense;
  if (name == "batch") return SimEngine::kBatch;
  usage("unknown engine '" + name + "' (want sparse, dense, or batch)");
}

SwarmingModel make_model(const util::CliArgs& args) {
  SimulationConfig sim;
  sim.rounds = static_cast<std::size_t>(args.get_int("rounds", 200));
  sim.churn_rate = args.get_double("churn", 0.0);
  // --engine beats DSA_ENGINE; all engines are bitwise-identical, so this
  // only changes wall time. env_enum validates the env spelling, usage()
  // the flag spelling.
  sim.engine = engine_from_name(args.get(
      "engine",
      util::env_enum("DSA_ENGINE", "sparse", {"sparse", "dense", "batch"})));
  return SwarmingModel(sim, BandwidthDistribution::piatek());
}

/// --batch-width beats DSA_BATCH_WIDTH; 0 (the default) resolves to 8 on
/// the batch engine and 1 otherwise, mirroring
/// PraDatasetOptions::from_environment.
std::size_t resolve_batch_width(const util::CliArgs& args, SimEngine engine) {
  const std::int64_t width =
      args.get_int("batch-width", util::env_int("DSA_BATCH_WIDTH", 0));
  if (width < 0 || width > 64) {
    usage("--batch-width must be in [0, 64] (0 = auto)");
  }
  if (width != 0) return static_cast<std::size_t>(width);
  return engine == SimEngine::kBatch ? 8 : 1;
}

void reject_unknown_flags(const util::CliArgs& args) {
  const auto unknown = args.unconsumed();
  if (!unknown.empty()) usage("unknown flag --" + unknown.front());
  const auto stray = args.unconsumed_positionals();
  if (!stray.empty()) usage("unexpected argument '" + stray.front() + "'");
}

int cmd_decode(const util::CliArgs& args) {
  const auto id = static_cast<std::uint32_t>(args.get_int("id", 0));
  reject_unknown_flags(args);
  if (id >= kProtocolCount) usage("--id outside [0, 3270)");
  std::printf("#%u  %s\n", id, decode_protocol(id).describe().c_str());
  return 0;
}

int cmd_named(const util::CliArgs& args) {
  reject_unknown_flags(args);
  util::TablePrinter table({"name", "id", "protocol"});
  const std::pair<const char*, ProtocolSpec> named[] = {
      {"bt", bittorrent_protocol()},
      {"birds", birds_protocol()},
      {"loyal", loyal_when_needed_protocol()},
      {"sorts", sort_s_protocol()},
      {"random", random_rank_protocol()},
  };
  for (const auto& [name, spec] : named) {
    table.add_row({name, std::to_string(encode_protocol(spec)),
                   spec.describe()});
  }
  table.print(std::cout);
  return 0;
}

int cmd_performance(const util::CliArgs& args) {
  const std::uint32_t protocol =
      parse_protocol(args.get("protocol", "bt"));
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 5));
  const auto population =
      static_cast<std::size_t>(args.get_int("population", 50));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const SwarmingModel model = make_model(args);
  reject_unknown_flags(args);

  std::vector<double> samples;
  for (std::size_t run = 0; run < runs; ++run) {
    samples.push_back(model.homogeneous_utility(
        protocol, population, core::derive_seed(seed, 1, protocol, run)));
  }
  std::printf("%s\n", model.protocol_name(protocol).c_str());
  std::printf("population throughput: %.1f KBps (95%% CI +/- %.1f, %zu runs, "
              "%zu peers)\n",
              stats::mean(samples), stats::ci95_half_width(samples), runs,
              population);
  return 0;
}

int cmd_encounter(const util::CliArgs& args) {
  const std::uint32_t a = parse_protocol(args.get("a", "bt"));
  const std::uint32_t b = parse_protocol(args.get("b", "birds"));
  const double fraction = args.get_double("fraction", 0.5);
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 5));
  const auto population =
      static_cast<std::size_t>(args.get_int("population", 50));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const SwarmingModel model = make_model(args);
  reject_unknown_flags(args);
  if (fraction <= 0.0 || fraction >= 1.0) usage("--fraction outside (0,1)");

  const auto count_a = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::lround(fraction * population)), 1,
      population - 1);
  std::vector<double> mean_a, mean_b;
  std::size_t wins = 0;
  for (std::size_t run = 0; run < runs; ++run) {
    const auto [ua, ub] = model.mixed_utilities(
        a, b, count_a, population - count_a,
        core::derive_seed(seed, 2, (static_cast<std::uint64_t>(a) << 32) | b,
                          run));
    mean_a.push_back(ua);
    mean_b.push_back(ub);
    if (ua > ub) ++wins;
  }
  std::printf("A: %s\n   %zu peers, mean utility %.1f KBps\n",
              model.protocol_name(a).c_str(), count_a, stats::mean(mean_a));
  std::printf("B: %s\n   %zu peers, mean utility %.1f KBps\n",
              model.protocol_name(b).c_str(), population - count_a,
              stats::mean(mean_b));
  std::printf("A wins %zu/%zu encounters\n", wins, runs);
  return 0;
}

int cmd_pra(const util::CliArgs& args) {
  const auto protocols =
      parse_protocol_list(args.get("protocols", "bt,birds,loyal,sorts"));
  core::PraConfig pra;
  pra.population = static_cast<std::size_t>(args.get_int("population", 50));
  pra.performance_runs = static_cast<std::size_t>(args.get_int("runs", 3));
  pra.encounter_runs = pra.performance_runs;
  pra.seed = static_cast<std::uint64_t>(args.get_int("seed", 2011));
  // --threads beats DSA_THREADS beats hardware concurrency; results are
  // identical either way (per-item seeding), only wall time changes.
  pra.threads = static_cast<std::size_t>(
      args.get_int("threads", util::env_int("DSA_THREADS", 0)));
  const SwarmingModel model = make_model(args);
  pra.batch_width = resolve_batch_width(args, model.base_config().engine);
  reject_unknown_flags(args);

  const core::SubspaceModel subset(model, protocols);
  const core::PraScores scores = core::PraEngine(subset, pra).run();
  util::TablePrinter table({"protocol", "perf", "robust", "aggr"});
  for (std::uint32_t i = 0; i < subset.protocol_count(); ++i) {
    table.add_row({subset.protocol_name(i),
                   util::fixed(scores.performance[i], 3),
                   util::fixed(scores.robustness[i], 3),
                   util::fixed(scores.aggressiveness[i], 3)});
  }
  table.print(std::cout);
  return 0;
}

// `swarm --fault-file`: replay a committed fault plan / explorer
// counterexample. The file pins everything (clients, composition, knobs,
// seed), so the only knob left is --runs; run r uses seed + r, making the
// default --runs 1 a bitwise replay of the run the explorer recorded.
int cmd_swarm_replay(const std::string& path, const util::CliArgs& args) {
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 1));
  reject_unknown_flags(args);
  if (runs == 0) usage("--runs must be >= 1");
  try {
    const explore::Counterexample ce = explore::load_counterexample(path);
    const auto a = explore::client_from_name(ce.a);
    const auto b = ce.b == "same" ? a : explore::client_from_name(ce.b);
    const explore::Objective objective = explore::parse_objective(ce.objective);
    swarm::SwarmConfig config = explore::swarm_config(ce);
    const double cap = static_cast<double>(config.max_ticks);

    std::printf("replaying %s\n", path.c_str());
    std::printf("  %s vs %s, %zu/%zu leechers, seed %llu\n",
                to_string(a).c_str(), to_string(b).c_str(), ce.count_a,
                ce.total, static_cast<unsigned long long>(ce.seed));
    std::printf("  schedule: %s\n",
                ce.schedule.empty() ? "(unrecorded)" : ce.schedule.c_str());

    double replayed = 0.0;
    for (std::size_t run = 0; run < runs; ++run) {
      config.seed = ce.seed + run;
      const swarm::SwarmResult result =
          swarm::run_mixed_swarm(a, b, ce.count_a, ce.total, config);
      const double value = explore::objective_value(objective, result, cap);
      if (run == 0) replayed = value;
      double max_time = 0.0;
      for (const double t : result.completion_time) {
        max_time = std::max(max_time, t < 0.0 ? cap : t);
      }
      std::printf("  run %zu: %s = %s, mean %.1f s, max %.1f s, "
                  "%llu stall ticks%s\n",
                  run, ce.objective.c_str(), util::exact_number(value).c_str(),
                  result.group_mean_time(0, ce.total, cap), max_time,
                  static_cast<unsigned long long>(
                      result.fault_stats.stall_ticks),
                  result.all_completed ? "" : " (incomplete)");
    }
    // A bare fault plan carries no recorded value; only counterexamples
    // (schedule recorded) assert bitwise reproduction.
    if (!ce.schedule.empty()) {
      const bool match = replayed == ce.value;
      std::printf("recorded %s = %s -> %s\n", ce.objective.c_str(),
                  util::exact_number(ce.value).c_str(),
                  match ? "bitwise match" : "MISMATCH");
      if (!match) return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}

int cmd_swarm(const util::CliArgs& args) {
  const std::string fault_file = args.get("fault-file", "");
  if (!fault_file.empty()) return cmd_swarm_replay(fault_file, args);
  const auto a = parse_client(args.get("a", "birds"));
  const auto b = parse_client(args.get("b", "bt"));
  const double fraction = args.get_double("fraction", 0.5);
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1000));
  const double fault = args.get_double("fault", 0.0);
  const double loss = args.get_double("loss", -1.0);
  const int timeout = static_cast<int>(args.get_int("timeout", -1));
  const double crash_frac = args.get_double("crash-frac", 0.5);
  const double outage_frac = args.get_double("outage-frac", 0.25);
  const auto horizon =
      static_cast<std::size_t>(args.get_int("horizon", 600));
  reject_unknown_flags(args);
  if (fraction <= 0.0 || fraction >= 1.0) usage("--fraction outside (0,1)");
  if (fault < 0.0 || fault > 1.0) usage("--fault outside [0,1]");

  swarm::SwarmConfig config;
  const bool faulty = fault > 0.0 || loss >= 0.0 || timeout >= 0;
  const auto count_a =
      std::clamp<std::size_t>(static_cast<std::size_t>(std::lround(
                                  fraction * 50.0)),
                              1, 49);
  // Heartbeat for `dsa_cli top`: one shard-less run, one job per swarm run.
  // The sampler never touches the simulation, so results are identical
  // with DSA_STATUS on or off.
  obs::TelemetryRun telemetry = obs::Telemetry::global().begin_run(
      {.name = obs::sanitize_run_name("swarm_" + to_string(a) + "_vs_" +
                                      to_string(b)),
       .kind = "swarm",
       .spec_fingerprint = util::Fingerprint(0x5357)
                               .mix(to_string(a))
                               .mix(to_string(b))
                               .mix(count_a)
                               .mix(runs)
                               .mix(seed)
                               .mix_double(fault)
                               .value(),
       .jobs_total = runs,
       .output = ""});
  telemetry.set_phase("simulate");
  std::vector<double> times_a, times_b;
  swarm::FaultStats totals;
  double recovery_sum = 0.0;
  std::size_t recovery_runs = 0;
  std::size_t incomplete_runs = 0;
  for (std::size_t run = 0; run < runs; ++run) {
    config.seed = seed + run;
    if (faulty) {
      fault::FaultSpec spec;
      spec.intensity = fault;
      spec.crash_fraction = crash_frac;
      spec.outage_fraction = outage_frac;
      spec.seed = seed + run;
      config.faults = fault::make_fault_plan(spec, 50, horizon);
      if (loss >= 0.0) config.faults.message_loss = loss;
      if (timeout >= 0) {
        config.faults.piece_timeout_ticks =
            static_cast<std::size_t>(timeout);
      }
    }
    const auto result = swarm::run_mixed_swarm(a, b, count_a, 50, config);
    const double cap = static_cast<double>(config.max_ticks);
    times_a.push_back(result.group_mean_time(0, count_a, cap));
    times_b.push_back(result.group_mean_time(count_a, 50, cap));
    if (!result.all_completed) ++incomplete_runs;
    const swarm::FaultStats& fs = result.fault_stats;
    totals.messages_lost += fs.messages_lost;
    totals.lost_kb += fs.lost_kb;
    totals.retries_issued += fs.retries_issued;
    totals.crashes += fs.crashes;
    totals.pieces_wiped += fs.pieces_wiped;
    totals.stall_ticks += fs.stall_ticks;
    totals.seeder_down_ticks += fs.seeder_down_ticks;
    if (fs.mean_seeder_recovery_ticks >= 0.0) {
      recovery_sum += fs.mean_seeder_recovery_ticks;
      ++recovery_runs;
    }
    telemetry.add_done();
  }
  telemetry.finish(true);
  std::printf("%-18s %zu leechers, avg download %.1f s (+/- %.1f)\n",
              to_string(a).c_str(), count_a, stats::mean(times_a),
              stats::ci95_half_width(times_a));
  std::printf("%-18s %zu leechers, avg download %.1f s (+/- %.1f)\n",
              to_string(b).c_str(), 50 - count_a, stats::mean(times_b),
              stats::ci95_half_width(times_b));
  if (faulty) {
    std::printf("faults over %zu runs: %llu messages lost (%.0f KB), "
                "%llu retries, %llu crashes (%llu pieces wiped)\n",
                runs, static_cast<unsigned long long>(totals.messages_lost),
                totals.lost_kb,
                static_cast<unsigned long long>(totals.retries_issued),
                static_cast<unsigned long long>(totals.crashes),
                static_cast<unsigned long long>(totals.pieces_wiped));
    std::printf("  %llu stall ticks, %llu seeder-down ticks",
                static_cast<unsigned long long>(totals.stall_ticks),
                static_cast<unsigned long long>(totals.seeder_down_ticks));
    if (recovery_runs > 0) {
      std::printf(", mean seeder recovery %.1f ticks",
                  recovery_sum / static_cast<double>(recovery_runs));
    }
    std::printf("\n");
    if (incomplete_runs > 0) {
      std::printf("  %zu/%zu runs hit max_ticks before everyone finished\n",
                  incomplete_runs, runs);
    }
  }
  return 0;
}

int cmd_nash(const util::CliArgs& args) {
  gametheory::ClassSetup setup;
  setup.peers_above = static_cast<std::size_t>(args.get_int("na", 10));
  setup.peers_below = static_cast<std::size_t>(args.get_int("nb", 10));
  setup.peers_same = static_cast<std::size_t>(args.get_int("nc", 10));
  setup.regular_slots = static_cast<std::size_t>(args.get_int("ur", 4));
  reject_unknown_flags(args);
  if (!setup.valid()) {
    usage("setup violates model assumptions (need NA > Ur, NC > Ur+1)");
  }

  const auto bt = gametheory::bittorrent_expected_wins(setup);
  const auto birds = gametheory::birds_expected_wins(setup);
  std::printf("Homogeneous expected game wins (NA=%zu NB=%zu NC=%zu Ur=%zu):\n",
              setup.peers_above, setup.peers_below, setup.peers_same,
              setup.regular_slots);
  std::printf("  BitTorrent: %.3f   Birds: %.3f\n", bt.total(), birds.total());
  const auto birds_in_bt = gametheory::birds_invades_bittorrent(setup);
  const auto bt_in_birds = gametheory::bittorrent_invades_birds(setup);
  std::printf("Birds invader in BT swarm: %.3f vs incumbent %.3f -> %s\n",
              birds_in_bt.invader.total(), birds_in_bt.incumbent.total(),
              birds_in_bt.invader_outperforms ? "BT is NOT a Nash equilibrium"
                                              : "no gain");
  std::printf("BT invader in Birds swarm: %.3f vs incumbent %.3f -> %s\n",
              bt_in_birds.invader.total(), bt_in_birds.incumbent.total(),
              bt_in_birds.invader_outperforms
                  ? "Birds invaded!"
                  : "no gain (Birds is a Nash equilibrium)");
  return 0;
}

int cmd_stability(const util::CliArgs& args) {
  const std::uint32_t protocol =
      parse_protocol(args.get("protocol", "bt"));
  core::EssConfig config;
  config.population = static_cast<std::size_t>(args.get_int("population", 50));
  config.mutant_fraction = args.get_double("fraction", 0.1);
  config.runs = static_cast<std::size_t>(args.get_int("runs", 1));
  config.mutant_sample =
      static_cast<std::size_t>(args.get_int("mutants", 24));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2011));
  const SwarmingModel model = make_model(args);
  reject_unknown_flags(args);

  const core::EssQuantifier ess(model, config);
  const core::EssResult result = ess.stability_of(protocol);
  std::printf("%s\n", model.protocol_name(protocol).c_str());
  std::printf("stability %.3f against %zu sampled mutants (%.0f%% mutant "
              "groups)\n",
              result.stability,
              config.mutant_sample == 0
                  ? static_cast<std::size_t>(model.protocol_count() - 1)
                  : config.mutant_sample,
              100.0 * config.mutant_fraction);
  if (!result.invaders.empty()) {
    std::printf("successful invaders:\n");
    for (const auto& invader : result.invaders) {
      std::printf("  #%-5u %-55s %.1f vs %.1f KBps\n", invader.mutant,
                  model.protocol_name(invader.mutant).c_str(),
                  invader.mutant_utility, invader.resident_utility);
    }
  }
  return 0;
}

int cmd_evolve(const util::CliArgs& args) {
  const auto menu =
      parse_protocol_list(args.get("protocols", "bt,birds,loyal"));
  core::EvolutionConfig config;
  config.population = static_cast<std::size_t>(args.get_int("population", 50));
  config.generations =
      static_cast<std::size_t>(args.get_int("generations", 40));
  config.runs_per_generation =
      static_cast<std::size_t>(args.get_int("runs", 2));
  config.mutation_rate = args.get_double("mutation", 0.0);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2011));
  const SwarmingModel model = make_model(args);
  reject_unknown_flags(args);

  const core::ReplicatorDynamics dynamics(model, menu, config);
  const core::EvolutionResult result = dynamics.run_from_even_split();
  std::printf("Replicator dynamics, %zu generations, population %zu:\n",
              config.generations, config.population);
  for (std::size_t i = 0; i < menu.size(); ++i) {
    std::printf("  %-55s share %.2f -> %.2f\n",
                model.protocol_name(menu[i]).c_str(),
                result.share_history.front()[i], result.final_shares()[i]);
  }
  if (result.fixated_menu_index >= 0) {
    std::printf("fixated on: %s\n",
                model
                    .protocol_name(menu[static_cast<std::size_t>(
                        result.fixated_menu_index)])
                    .c_str());
  }
  return 0;
}

int cmd_sweep(const util::CliArgs& args) {
  PraDatasetOptions options = PraDatasetOptions::from_environment();
  options.pra.threads = static_cast<std::size_t>(args.get_int(
      "threads", static_cast<std::int64_t>(options.pra.threads)));
  if (args.has("engine")) {
    options.engine = engine_from_name(args.get("engine", "sparse"));
  }
  options.pra.batch_width = resolve_batch_width(args, options.engine);
  options.path = args.get("out", options.path.string());
  const bool force = args.has("force");
  const bool quiet = args.has("quiet");
  reject_unknown_flags(args);

  if (force) {
    std::error_code ignored;
    std::filesystem::remove(options.path, ignored);
  }
  const std::vector<PraRecord> records =
      load_or_compute_pra_dataset(options, /*verbose=*/!quiet);
  const PraRecord* best = nullptr;
  for (const PraRecord& rec : records) {
    if (best == nullptr || rec.performance > best->performance) best = &rec;
  }
  std::printf("%zu protocols -> %s\n", records.size(),
              options.path.string().c_str());
  if (best != nullptr) {
    std::printf("best performance: #%u  %s\n", best->protocol,
                best->spec.describe().c_str());
  }
  return 0;
}

int cmd_help(const util::CliArgs& args) {
  const std::string topic = args.positional(0);
  reject_unknown_flags(args);
  if (topic.empty()) {
    std::printf(
        "usage: dsa_cli <command> [args] [--flags]\n\ncommands:\n%s\n"
        "run `dsa_cli help <command>` for per-command flags and defaults.\n",
        help_index().command_list().c_str());
    return 0;
  }
  const util::CommandHelp* help = help_index().find(topic);
  if (help == nullptr) usage("unknown command '" + topic + "'");
  std::printf("%s", help->usage.c_str());
  return 0;
}

int cmd_plan(const util::CliArgs& args) {
  const std::string path = args.positional(0);
  const bool list_jobs = args.has("jobs");
  reject_unknown_flags(args);
  if (path.empty()) usage("plan needs a spec file: dsa_cli plan <spec.json>");
  try {
    const scenario::Plan plan =
        scenario::expand_plan(scenario::parse_scenario_file(path));
    const std::vector<std::size_t> done =
        scenario::completed_jobs_in_manifest(plan);
    std::printf("scenario: %s\nkind:     %s\noutput:   %s\nspec fp:  %016llx\n",
                plan.spec.name.c_str(),
                scenario::to_string(plan.spec.kind).c_str(),
                plan.spec.output.string().c_str(),
                static_cast<unsigned long long>(plan.spec_fingerprint));
    std::printf("jobs:     %zu (%zu already complete in %s)\n",
                plan.jobs.size(), done.size(),
                scenario::manifest_path(plan).string().c_str());
    if (list_jobs) {
      const std::set<std::size_t> complete(done.begin(), done.end());
      util::TablePrinter table({"job", "fingerprint", "state", "label"});
      for (const scenario::Job& job : plan.jobs) {
        char fp[17];
        std::snprintf(fp, sizeof(fp), "%016llx",
                      static_cast<unsigned long long>(job.fingerprint));
        table.add_row({std::to_string(job.index), fp,
                       complete.count(job.index) != 0 ? "done" : "todo",
                       job.label});
      }
      table.print(std::cout);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}

int cmd_run(const util::CliArgs& args) {
  const std::string path = args.positional(0);
  scenario::RunOptions options;
  options.threads = static_cast<std::size_t>(
      args.get_int("threads", util::env_int("DSA_THREADS", 0)));
  options.keep_manifest = args.has("keep-manifest");
  options.verbose = !args.has("quiet");
  reject_unknown_flags(args);
  if (path.empty()) usage("run needs a spec file: dsa_cli run <spec.json>");
  try {
    const scenario::Plan plan =
        scenario::expand_plan(scenario::parse_scenario_file(path));
    const scenario::RunReport report = scenario::run_scenario(plan, options);
    if (report.reused_output) {
      std::printf("output %s already exists (delete it to re-run)\n",
                  report.output.string().c_str());
    } else {
      std::printf("scenario '%s': %zu jobs (%zu run, %zu resumed",
                  plan.spec.name.c_str(), report.total, report.executed,
                  report.skipped);
      if (report.retried > 0) std::printf(", %zu retries", report.retried);
      std::printf(") -> %s\n", report.output.string().c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}

// The post-sweep half of `dsa_cli explore`: rank the merged CSV, shrink the
// worst schedule, save the counterexample, and render the failure report.
// Split out of cmd_explore so the try block stays readable.
int explore_postprocess(const scenario::Plan& plan,
                        const std::filesystem::path& output,
                        const std::string& worst_out) {
  // Rank: worst value first, ties to the lowest ordinal. Merged rows are in
  // ordinal order, so keeping the first strict improvement does both.
  const util::CsvTable table = util::CsvTable::load(output);
  if (table.row_count() == 0) {
    std::fprintf(stderr, "error: %s holds no schedules\n",
                 output.string().c_str());
    return 1;
  }
  std::size_t worst_row = 0;
  double worst_value = table.number_at(0, "value");
  double baseline_value = 0.0;
  bool saw_baseline = false;
  for (std::size_t row = 0; row < table.row_count(); ++row) {
    const double value = table.number_at(row, "value");
    if (value > worst_value) {
      worst_value = value;
      worst_row = row;
    }
    if (table.at(row, "ordinal") == "0") {
      baseline_value = value;
      saw_baseline = true;
    }
  }
  if (!saw_baseline) {
    // Ordinal 0 is the fault-free schedule; every full exploration has it.
    std::fprintf(stderr, "error: %s is missing the ordinal-0 baseline row\n",
                 output.string().c_str());
    return 1;
  }
  const std::uint64_t worst_ordinal =
      std::stoull(table.at(worst_row, "ordinal"));

  // Rebuild the worst Schedule from its ordinal (jobs all share the params).
  const scenario::ExploreContext ctx =
      scenario::explore_context(plan.jobs.front().params);
  explore::Schedule worst;
  explore::for_schedules_in(
      ctx.domain, worst_ordinal, worst_ordinal + 1,
      [&](std::uint64_t, const explore::Schedule& schedule) {
        worst = schedule;
      });
  std::printf("worst schedule: #%llu  %s\n",
              static_cast<unsigned long long>(worst_ordinal),
              table.at(worst_row, "schedule").c_str());
  std::printf("  %s = %s (fault-free baseline %s)\n",
              to_string(ctx.objective),
              util::exact_number(worst_value).c_str(),
              util::exact_number(baseline_value).c_str());
  if (worst.empty()) {
    std::printf("no schedule beats the fault-free baseline; nothing to "
                "shrink\n");
    return 0;
  }

  const explore::EvaluateFn evaluate =
      [&](const explore::Schedule& schedule) {
        return scenario::explore_value(
            ctx, scenario::run_explore_schedule(ctx, schedule));
      };
  const explore::ShrinkResult shrunk =
      explore::shrink(worst, worst_value, evaluate);
  std::printf("shrunk to %zu fault(s) in %zu evaluation(s): %s = %s\n",
              shrunk.schedule.size(), shrunk.evaluations,
              to_string(ctx.objective),
              util::exact_number(shrunk.value).c_str());

  explore::Counterexample ce;
  ce.plan = explore::materialize(ctx.domain, shrunk.schedule, ctx.loss,
                                 ctx.timeout);
  ce.a = ctx.a_name;
  ce.b = ctx.b_name;
  ce.count_a = ctx.count_a;
  ce.total = ctx.total;
  ce.seed = ctx.config.seed;
  ce.piece_count = ctx.config.piece_count;
  ce.piece_size_kb = ctx.config.piece_size_kb;
  ce.seeder_capacity_kbps = ctx.config.seeder_capacity_kbps;
  ce.max_ticks = ctx.config.max_ticks;
  ce.objective = explore::to_string(ctx.objective);
  ce.value = shrunk.value;
  ce.baseline = baseline_value;
  ce.schedule = explore::describe(ctx.domain, shrunk.schedule);
  std::filesystem::path ce_path;
  if (worst_out.empty()) {
    ce_path = plan.spec.output;
    ce_path.replace_extension();
    ce_path += ".worst.json";
  } else {
    ce_path = worst_out;
  }
  explore::save_counterexample(ce_path, ce);
  std::printf("counterexample -> %s\n", ce_path.string().c_str());
  std::printf("replay with: dsa_cli swarm --fault-file %s\n",
              ce_path.string().c_str());

#if DSA_OBS_COMPILED_IN
  // Failure report: re-run the shrunk schedule and the fault-free baseline
  // under the flight recorder at full detail, then contrast them. Any
  // ambient recording (e.g. `dsa_cli record explore ...`) is preserved
  // around the bracket.
  obs::Recorder& recorder = obs::Recorder::global();
  const obs::RecorderOptions saved{recorder.level(), recorder.stride()};
  std::vector<obs::Event> ambient = recorder.snapshot();
  recorder.configure({obs::RecordLevel::kFull, 1});
  recorder.reset();
  (void)scenario::run_explore_schedule(ctx, shrunk.schedule);
  const std::vector<obs::Event> worst_events = recorder.snapshot();
  recorder.reset();
  (void)scenario::run_explore_schedule(ctx, explore::Schedule{});
  const std::vector<obs::Event> baseline_events = recorder.snapshot();
  recorder.reset();
  recorder.configure(saved);
  recorder.append(std::move(ambient));
  std::cout << report::render_fault_timeline(worst_events);
  std::cout << report::render_fault_impact(worst_events, baseline_events);
#else
  std::printf("(failure report skipped: recorder compiled out, "
              "-DDSA_TRACE=OFF)\n");
#endif
  return 0;
}

int cmd_explore(const util::CliArgs& args) {
  const std::string path = args.positional(0);
  scenario::RunOptions options;
  options.threads = static_cast<std::size_t>(
      args.get_int("threads", util::env_int("DSA_THREADS", 0)));
  options.keep_manifest = args.has("keep-manifest");
  options.verbose = !args.has("quiet");
  const std::string worst_out = args.get("worst-out", "");
  reject_unknown_flags(args);
  if (path.empty()) {
    usage("explore needs a spec file: dsa_cli explore <spec.json>");
  }
  try {
    const scenario::Plan plan =
        scenario::expand_plan(scenario::parse_scenario_file(path));
    if (plan.spec.kind != scenario::Kind::kExplore) {
      throw std::runtime_error(
          "spec kind is \"" + scenario::to_string(plan.spec.kind) +
          "\"; `dsa_cli explore` needs kind \"explore\" (use `dsa_cli run`)");
    }
    const scenario::RunReport report = scenario::run_scenario(plan, options);
    if (report.reused_output) {
      std::printf("output %s already exists; ranking the cached sweep "
                  "(delete it to re-explore)\n",
                  report.output.string().c_str());
    } else {
      std::printf("explored '%s': %zu jobs (%zu run, %zu resumed",
                  plan.spec.name.c_str(), report.total, report.executed,
                  report.skipped);
      if (report.retried > 0) std::printf(", %zu retries", report.retried);
      std::printf(") -> %s\n", report.output.string().c_str());
    }
    return explore_postprocess(plan, report.output, worst_out);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}

int dispatch(const std::string& command, const util::CliArgs& args);

// `record` owns the flags before the inner command, then re-parses the rest
// as a normal invocation: main() hands it raw argv (starting at the token
// after "record") because util::CliArgs would otherwise swallow the inner
// command's flags.
int cmd_record(int argc, char** argv) {
  std::string out = "results/recording.jsonl";
  std::string context;
  obs::RecorderOptions options = obs::RecorderOptions::from_environment();
  if (options.level == obs::RecordLevel::kOff) {
    options.level = obs::RecordLevel::kRounds;
  }
  int i = 0;
  auto value_of = [&](const char* flag) -> std::string {
    if (i + 1 >= argc) usage(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      out = value_of("--out");
    } else if (arg == "--level") {
      options.level = obs::parse_record_level(value_of("--level"));
    } else if (arg == "--stride") {
      const int stride = std::stoi(value_of("--stride"));
      if (stride < 1) usage("--stride must be >= 1");
      options.stride = static_cast<std::uint32_t>(stride);
    } else if (arg == "--context") {
      context = value_of("--context");
    } else {
      break;
    }
  }
  if (i >= argc) {
    usage("record needs an inner command, e.g. "
          "dsa_cli record --out r.jsonl swarm --runs 3");
  }
#if !DSA_OBS_COMPILED_IN
  std::fprintf(stderr,
               "warning: recorder compiled out (-DDSA_TRACE=OFF); the "
               "recording will be empty\n");
#endif
  obs::Recorder::global().configure(options);
  if (!context.empty()) obs::Recorder::global().set_context(context);

  const util::CliArgs inner = util::CliArgs::parse(argc - i, argv + i);
  const int rc = dispatch(inner.subcommand(), inner);

  obs::Recorder::global().save(out);
  std::fprintf(stderr, "recording: %zu events -> %s\n",
               obs::Recorder::global().event_count(), out.c_str());
  return rc;
}

int cmd_report(const util::CliArgs& args) {
  const std::string table = args.get("table", "all");
  const bool health = args.has("health");
  // `report --health <file>` binds the path as the flag's value while
  // `report <file> --health` leaves it positional; accept both spellings.
  std::string path = args.positional(0);
  if (health && path.empty()) {
    try {
      path = args.get("health", "");
    } catch (const std::invalid_argument&) {
      // bare --health with no operand: fall through to the usage error
    }
  }
  reject_unknown_flags(args);
  if (path.empty()) {
    usage(health ? "report --health needs a time-series: dsa_cli report "
                   "--health <STATUS_run.timeseries.jsonl>"
                 : "report needs a recording: dsa_cli report "
                   "<recording.jsonl>");
  }
  if (health) {
    try {
      const std::vector<obs::TimeseriesSample> samples =
          obs::load_timeseries(path);
      std::cout << report::render_health_timeline(samples);
      return 0;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 2;
    }
  }
  const std::set<std::string> known = {"all",  "summary", "fig5",
                                      "fig9", "pra",     "wins",
                                      "swarm"};
  if (known.count(table) == 0) {
    usage("unknown --table '" + table +
          "' (all|summary|fig5|fig9|pra|wins|swarm)");
  }
  try {
    const report::Recording recording = report::load_recording(path);
    const auto has_kind = [&](obs::EventKind kind) {
      for (const obs::Event& event : recording.events) {
        if (event.kind == kind) return true;
      }
      return false;
    };
    const bool all = table == "all";
    // `all` renders only the tables with matching events; naming a table
    // renders it unconditionally (empty tables show their headers).
    if (all || table == "summary") {
      std::cout << report::render_summary(recording);
    }
    if (table == "fig5" || (all && has_kind(obs::EventKind::kPra))) {
      std::cout
          << report::render_fig5(
                 report::fig5_robustness_by_policy(
                     std::span<const obs::Event>(recording.events)))
                 .text;
    }
    if (table == "pra" || (all && has_kind(obs::EventKind::kPra))) {
      std::cout << report::render_pra_breakdowns(recording.events);
    }
    if (table == "fig9" || (all && has_kind(obs::EventKind::kMixedSwarm))) {
      for (const auto& series :
           report::encounter_series_from_events(recording.events)) {
        std::cout << report::render_encounter_series(series);
      }
    }
    if (table == "wins" || (all && (has_kind(obs::EventKind::kPeer) ||
                                    has_kind(obs::EventKind::kLeecher)))) {
      std::cout << report::render_win_matrix(recording.events);
    }
    if (table == "swarm" || (all && has_kind(obs::EventKind::kLeecher))) {
      std::cout << report::render_swarm_times(recording.events);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}

int cmd_flame(const util::CliArgs& args) {
  const std::string path = args.positional(0);
  const std::string floor_text = args.get("min-attribution", "");
  reject_unknown_flags(args);
  if (path.empty()) {
    usage("flame needs a collapsed-stack file: dsa_cli flame "
          "<profile.folded>");
  }
  double floor = -1.0;
  if (!floor_text.empty()) {
    try {
      std::size_t used = 0;
      floor = std::stod(floor_text, &used);
      if (used != floor_text.size() || !(floor >= 0.0) || floor > 1.0) {
        throw std::invalid_argument(floor_text);
      }
    } catch (const std::exception&) {
      usage("--min-attribution must be a fraction in [0, 1], got '" +
            floor_text + "'");
    }
  }
  try {
    const obs::FoldedStacks stacks = obs::load_folded(path);
    std::cout << obs::render_flame(stacks);
    if (floor >= 0.0) {
      const obs::FlameSummary summary = obs::summarize_folded(stacks);
      if (summary.attribution() < floor) {
        std::fprintf(stderr,
                     "flame: attribution %.1f%% is below the required "
                     "%.1f%%\n",
                     100.0 * summary.attribution(), 100.0 * floor);
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}

// ---------------------------------------------------------------------------
// `serve` / `query`: the resident query daemon (src/serve) and its client.

// SIGINT/SIGTERM flip this flag; the accept loop polls it so a ctrl-c
// drains in-flight queries instead of dropping them mid-merge.
std::atomic<bool> g_serve_stop{false};

void serve_stop_handler(int) { g_serve_stop.store(true); }

int cmd_serve(const util::CliArgs& args) {
  serve::ServerOptions options;
  options.socket_path = args.get("socket", "results/serve.sock");
  options.threads = static_cast<std::size_t>(
      args.get_int("threads", util::env_int("DSA_THREADS", 0)));
  const int cache_mb = args.get_int("cache-mb", 64);
  const std::string store = args.get("store", "");
  options.verbose = !args.has("quiet");
  reject_unknown_flags(args);
  if (cache_mb < 1) usage("--cache-mb must be >= 1");
  options.cache.memory_budget_bytes =
      static_cast<std::size_t>(cache_mb) * 1024 * 1024;
  if (store.empty()) {
    options.cache.store_path = options.socket_path;
    options.cache.store_path.replace_extension(".cache.jsonl");
  } else {
    options.cache.store_path = store;
  }

  // A daemon should be watchable without the operator remembering
  // DSA_STATUS=on: force the heartbeat sampler on (keeping any interval /
  // directory overrides from the environment) before the run registers.
  obs::TelemetryOptions telemetry = obs::Telemetry::global().options();
  if (!telemetry.enabled) {
    telemetry.enabled = true;
    obs::Telemetry::global().configure(telemetry);
  }

  try {
    serve::Server server(options);
    if (options.verbose) {
      const std::map<std::string, std::uint64_t> counters = server.counters();
      std::printf("serve: listening on %s (%d MB cache, store %s)\n",
                  options.socket_path.string().c_str(), cache_mb,
                  options.cache.store_path.string().c_str());
      std::printf(
          "serve: %llu cached job(s) pre-warmed from the store"
          " (%llu rejected)\n",
          static_cast<unsigned long long>(counters.at("store_loaded")),
          static_cast<unsigned long long>(counters.at("store_rejected")));
      std::printf("serve: query with `dsa_cli query <spec.json> --socket "
                  "%s`; ctrl-c to stop\n",
                  options.socket_path.string().c_str());
      std::fflush(stdout);
    }
    g_serve_stop.store(false);
    std::signal(SIGINT, serve_stop_handler);
    std::signal(SIGTERM, serve_stop_handler);
    server.serve(g_serve_stop);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    if (options.verbose) {
      const std::map<std::string, std::uint64_t> counters = server.counters();
      std::printf(
          "serve: stopped after %llu query(ies) (%llu cache hits, %llu "
          "misses, %llu jobs executed)\n",
          static_cast<unsigned long long>(counters.at("queries")),
          static_cast<unsigned long long>(counters.at("cache_hits")),
          static_cast<unsigned long long>(counters.at("cache_misses")),
          static_cast<unsigned long long>(counters.at("jobs_executed")));
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}

int cmd_query(const util::CliArgs& args) {
  const std::string spec_path = args.positional(0);
  const std::filesystem::path socket = args.get("socket", "results/serve.sock");
  const bool want_table = args.has("table");
  const std::string out = args.get("out", "");
  const bool quiet = args.has("quiet");
  const bool ping = args.has("ping");
  const bool status = args.has("status");
  const bool shutdown = args.has("shutdown");
  const bool json = args.has("json");
  reject_unknown_flags(args);
  if (static_cast<int>(ping) + static_cast<int>(status) +
          static_cast<int>(shutdown) >
      1) {
    usage("--ping, --status, and --shutdown are mutually exclusive");
  }
  if (spec_path.empty() && !ping && !status && !shutdown) {
    usage("query needs a spec file: dsa_cli query <spec.json> "
          "[--socket PATH]");
  }
  try {
    serve::Client client(socket);
    if (ping) {
      client.ping();
      std::printf("pong from %s\n", socket.string().c_str());
      return 0;
    }
    if (status) {
      const std::map<std::string, std::uint64_t> counters = client.status();
      if (json) {
        std::string line = "{\"type\":\"serve_status\",\"schema\":1";
        line += ",\"socket\":\"" + util::json::escape(socket.string()) + "\"";
        for (const auto& [name, value] : counters) {
          line += ",\"" + util::json::escape(name) +
                  "\":" + std::to_string(value);
        }
        line += "}";
        std::printf("%s\n", line.c_str());
      } else {
        util::TablePrinter table({"counter", "value"});
        for (const auto& [name, value] : counters) {
          table.add_row({name, std::to_string(value)});
        }
        table.print(std::cout);
      }
      return 0;
    }
    if (shutdown) {
      client.shutdown();
      std::printf("serve daemon at %s is shutting down\n",
                  socket.string().c_str());
      return 0;
    }

    std::ifstream spec_file(spec_path);
    if (!spec_file) {
      throw std::runtime_error("cannot read spec file " + spec_path);
    }
    std::stringstream spec_text;
    spec_text << spec_file.rdbuf();

    std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>
        on_progress;
    if (!quiet) {
      on_progress = [](std::uint64_t done, std::uint64_t total,
                       std::uint64_t cached) {
        std::fprintf(stderr, "\r  %llu/%llu jobs (%llu from cache)",
                     static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(total),
                     static_cast<unsigned long long>(cached));
        if (done == total) std::fputc('\n', stderr);
      };
    }
    const serve::Response result = client.query(
        spec_text.str(), want_table ? "table" : "csv", on_progress);
    if (!quiet) {
      std::fprintf(
          stderr,
          "query '%s' (%s): %llu jobs (%llu cached, %llu executed) in "
          "%s ms\n",
          result.scenario.c_str(), result.kind.c_str(),
          static_cast<unsigned long long>(result.jobs),
          static_cast<unsigned long long>(result.cached_jobs),
          static_cast<unsigned long long>(result.executed_jobs),
          util::fixed(result.ms, 1).c_str());
    }
    if (out.empty()) {
      std::fputs(result.body.c_str(), stdout);
    } else {
      util::atomic_write(out, result.body);
      if (!quiet) std::fprintf(stderr, "result -> %s\n", out.c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}

// ---------------------------------------------------------------------------
// `status` / `top`: read-only monitors over the heartbeat files live runs
// maintain under DSA_STATUS=on (src/obs/telemetry.hpp). Both only read
// those files — they never signal or otherwise touch the monitored
// processes, so attaching a monitor cannot change any result.

std::int64_t unix_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string format_duration(double seconds) {
  if (seconds < 0.0) return "--";
  const auto total = static_cast<unsigned long long>(seconds + 0.5);
  char buf[32];
  if (total < 60) {
    std::snprintf(buf, sizeof(buf), "%llus", total);
  } else if (total < 3600) {
    std::snprintf(buf, sizeof(buf), "%llum%02llus", total / 60, total % 60);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluh%02llum", total / 3600,
                  (total % 3600) / 60);
  }
  return buf;
}

std::string progress_bar(std::uint64_t done, std::uint64_t total,
                         std::size_t width) {
  if (total == 0) return std::string(width, '?');
  const std::size_t filled = std::min(
      width, static_cast<std::size_t>(
                 (static_cast<double>(done) / static_cast<double>(total)) *
                 static_cast<double>(width)));
  std::string bar(filled, '#');
  bar.append(width - filled, '.');
  return bar;
}

char shard_strip_char(const std::string& state) {
  if (state == "todo") return '.';
  if (state == "running") return '>';
  if (state == "done") return '#';
  if (state == "failed") return 'x';
  if (state == "resumed") return '=';
  return '?';
}

bool terminal_health(obs::RunHealth health) {
  return health == obs::RunHealth::kDone ||
         health == obs::RunHealth::kFailed || health == obs::RunHealth::kDead;
}

int cmd_status(const util::CliArgs& args) {
  std::string target = args.positional(0);
  const bool json = args.has("json");
  reject_unknown_flags(args);
  if (target.empty()) target = "results";

  const std::vector<std::filesystem::path> files =
      obs::find_status_files(target);
  const std::int64_t now = unix_now_ms();
  bool parse_error = false;
  std::vector<obs::StatusFile> statuses;
  std::vector<obs::RunHealth> healths;
  for (const std::filesystem::path& path : files) {
    try {
      obs::StatusFile status = obs::load_status_file(path);
      healths.push_back(
          obs::classify_status(status, now, obs::pid_alive(status.pid)));
      statuses.push_back(std::move(status));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      parse_error = true;
    }
  }

  if (json) {
    std::string out = "{\"type\":\"status_report\",\"schema\":1";
    out += ",\"target\":\"" + util::json::escape(target) + "\"";
    out += ",\"generated_unix_ms\":" + std::to_string(now);
    out += ",\"runs\":[";
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      const obs::StatusFile& s = statuses[i];
      if (i != 0) out += ',';
      out += "{\"name\":\"" + util::json::escape(s.name) + "\"";
      out += ",\"kind\":\"" + util::json::escape(s.kind) + "\"";
      out += ",\"health\":\"";
      out += obs::to_string(healths[i]);
      out += "\",\"state\":\"" + util::json::escape(s.state) + "\"";
      out += ",\"phase\":\"" + util::json::escape(s.phase) + "\"";
      out += ",\"pid\":" + std::to_string(s.pid);
      out += ",\"seq\":" + std::to_string(s.seq);
      out += ",\"jobs\":{\"done\":" + std::to_string(s.done);
      out += ",\"total\":" + std::to_string(s.total);
      out += ",\"failed\":" + std::to_string(s.failed) + "}";
      out += ",\"rate_per_sec\":" + util::exact_number(s.rate_per_sec);
      out += ",\"eta_sec\":" + util::exact_number(s.eta_sec);
      out += ",\"rss_kb\":" + std::to_string(s.rss_kb);
      out += ",\"peak_rss_kb\":" + std::to_string(s.peak_rss_kb);
      out += ",\"queue_depth\":" + std::to_string(s.queue_depth);
      out += ",\"uptime_sec\":" + util::exact_number(s.uptime_sec);
      out += ",\"timestamp_unix_ms\":" + std::to_string(s.timestamp_unix_ms);
      out += ",\"interval_ms\":" + std::to_string(s.interval_ms);
      // Cumulative metric counters and gauges from the heartbeat, so CI
      // can assert on feeds like serve.cache_hits without a daemon client.
      out += ",\"counters\":{";
      for (auto it = s.counters.begin(); it != s.counters.end(); ++it) {
        if (it != s.counters.begin()) out += ',';
        out += "\"" + util::json::escape(it->first) +
               "\":" + std::to_string(it->second);
      }
      out += "},\"gauges\":{";
      for (auto it = s.gauges.begin(); it != s.gauges.end(); ++it) {
        if (it != s.gauges.begin()) out += ',';
        out += "\"" + util::json::escape(it->first) +
               "\":" + util::exact_number(it->second);
      }
      out += "}";
      if (!s.spec_fp.empty()) {
        out += ",\"spec_fp\":\"" + util::json::escape(s.spec_fp) + "\"";
      }
      if (!s.output.empty()) {
        out += ",\"output\":\"" + util::json::escape(s.output) + "\"";
      }
      if (!s.last_error.empty()) {
        out += ",\"last_error\":\"" + util::json::escape(s.last_error) + "\"";
      }
      out += ",\"path\":\"" + util::json::escape(s.path.string()) + "\"}";
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
  } else if (statuses.empty()) {
    std::fprintf(stderr,
                 "no *.status.json under %s (start a run with DSA_STATUS=on)\n",
                 target.c_str());
  } else {
    util::TablePrinter table({"run", "kind", "health", "phase", "done",
                              "total", "fail", "rate/s", "eta", "rss KB",
                              "pid"});
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      const obs::StatusFile& s = statuses[i];
      table.add_row({s.name, s.kind, obs::to_string(healths[i]), s.phase,
                     std::to_string(s.done), std::to_string(s.total),
                     std::to_string(s.failed), util::fixed(s.rate_per_sec, 2),
                     format_duration(s.eta_sec), std::to_string(s.rss_kb),
                     std::to_string(s.pid)});
    }
    table.print(std::cout);
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      if (!statuses[i].last_error.empty()) {
        std::printf("%s last error: %s\n", statuses[i].name.c_str(),
                    statuses[i].last_error.c_str());
      }
    }
  }

  if (parse_error) return 2;
  if (statuses.empty()) return 1;
  for (const obs::RunHealth health : healths) {
    if (health != obs::RunHealth::kRunning &&
        health != obs::RunHealth::kDone) {
      return 1;
    }
  }
  return 0;
}

// Renders one run as a small block of lines into `out`.
void render_top_run(const obs::StatusFile& s, obs::RunHealth health,
                    std::int64_t now, std::string* out) {
  char line[512];
  const double beat_age =
      static_cast<double>(now - s.timestamp_unix_ms) / 1000.0;
  std::snprintf(line, sizeof(line),
                "%s  [%s]  %s  phase %s  pid %lld  up %s  beat %.1fs ago\n",
                s.name.c_str(), s.kind.c_str(), obs::to_string(health),
                s.phase.empty() ? "-" : s.phase.c_str(),
                static_cast<long long>(s.pid),
                format_duration(s.uptime_sec).c_str(), beat_age);
  *out += line;
  const double pct =
      s.total == 0 ? 0.0
                   : 100.0 * static_cast<double>(s.done) /
                         static_cast<double>(s.total);
  std::snprintf(line, sizeof(line),
                "  [%s] %5.1f%%  %llu/%llu jobs (%llu failed)  %.2f/s  "
                "eta %s\n",
                progress_bar(s.done, s.total, 30).c_str(), pct,
                static_cast<unsigned long long>(s.done),
                static_cast<unsigned long long>(s.total),
                static_cast<unsigned long long>(s.failed), s.rate_per_sec,
                format_duration(s.eta_sec).c_str());
  *out += line;
  std::snprintf(line, sizeof(line),
                "  rss %llu KB (peak %llu)  queue %llu\n",
                static_cast<unsigned long long>(s.rss_kb),
                static_cast<unsigned long long>(s.peak_rss_kb),
                static_cast<unsigned long long>(s.queue_depth));
  *out += line;
  if (!s.shards.empty()) {
    std::string strip;
    strip.reserve(s.shards.size());
    for (const auto& [id, state] : s.shards) {
      (void)id;
      strip.push_back(shard_strip_char(state));
    }
    *out += "  shards: " + strip + "\n";
  } else if (!s.shard_counts.empty()) {
    *out += "  shards:";
    for (const auto& [state, count] : s.shard_counts) {
      std::snprintf(line, sizeof(line), " %llu %s",
                    static_cast<unsigned long long>(count), state.c_str());
      *out += line;
    }
    *out += "\n";
  }
  // Sketch-backed health summaries (count first, then the quantile and
  // moment fields in map order).
  for (const auto& [metric, fields] : s.sketches) {
    std::string row = "  " + metric + ":";
    if (const auto count = fields.find("count"); count != fields.end()) {
      std::snprintf(line, sizeof(line), " n=%.0f", count->second);
      row += line;
    }
    for (const auto& [key, value] : fields) {
      if (key == "count") continue;
      std::snprintf(line, sizeof(line), " %s=%.4g", key.c_str(), value);
      row += line;
    }
    *out += row + "\n";
  }
  if (!s.last_error.empty()) {
    *out += "  last error: " + s.last_error + "\n";
  }
}

int cmd_top(const util::CliArgs& args) {
  std::string target = args.positional(0);
  const auto interval_ms =
      static_cast<std::int64_t>(args.get_int("interval-ms", 1000));
  const auto frame_limit =
      static_cast<std::int64_t>(args.get_int("frames", 0));
  const bool once = args.has("once");
  reject_unknown_flags(args);
  if (target.empty()) target = "results";
  if (interval_ms < 50) usage("--interval-ms must be >= 50");
  if (frame_limit < 0) usage("--frames must be >= 0");

  bool rendered_any = false;
  for (std::int64_t frame = 0;; ++frame) {
    const std::vector<std::filesystem::path> files =
        obs::find_status_files(target);
    const std::int64_t now = unix_now_ms();
    std::string screen;
    bool all_terminal = !files.empty();
    std::size_t shown = 0;
    for (const std::filesystem::path& path : files) {
      obs::StatusFile status;
      try {
        status = obs::load_status_file(path);
      } catch (const std::exception&) {
        // A heartbeat can be torn mid-write by a dying process; skip it
        // this frame and try again on the next one.
        all_terminal = false;
        continue;
      }
      const obs::RunHealth health =
          obs::classify_status(status, now, obs::pid_alive(status.pid));
      if (!terminal_health(health)) all_terminal = false;
      if (shown != 0) screen += "\n";
      render_top_run(status, health, now, &screen);
      ++shown;
    }
    if (shown == 0) {
      screen = "waiting for *.status.json under " + target +
               " (start a run with DSA_STATUS=on)\n";
    } else {
      rendered_any = true;
    }
    if (once) {
      std::fputs(screen.c_str(), stdout);
      return rendered_any ? 0 : 1;
    }
    // Home + clear-to-end redraw keeps the frame flicker-free on any TTY.
    std::printf("\x1b[H\x1b[J%s\n(dsa_cli top: %s, every %lldms; ctrl-c to "
                "detach)\n",
                screen.c_str(), target.c_str(),
                static_cast<long long>(interval_ms));
    std::fflush(stdout);
    if (all_terminal && shown != 0) return 0;
    if (frame_limit > 0 && frame + 1 >= frame_limit) {
      return rendered_any ? 0 : 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

int cmd_version() {
  const char* sanitize = DSA_BUILD_SANITIZE;
  std::printf("dsa_cli - design space analysis for distributed incentives\n");
  std::printf("  compiler:        %s\n", DSA_BUILD_COMPILER);
  std::printf("  build type:      %s\n", DSA_BUILD_TYPE);
  std::printf("  DSA_NATIVE:      %s\n", DSA_BUILD_NATIVE);
  std::printf("  DSA_SANITIZE:    %s\n",
              sanitize[0] != '\0' ? sanitize : "(none)");
  std::printf("  observability:   %s\n",
              DSA_OBS_COMPILED_IN != 0 ? "compiled in (DSA_TRACE=ON)"
                                       : "compiled out (DSA_TRACE=OFF)");
  std::printf("  live telemetry:  DSA_STATUS=on enables heartbeat + "
              "time-series sampling\n"
              "                   (DSA_STATUS_INTERVAL_MS, DSA_STATUS_DIR; "
              "metric feeds %s)\n",
              DSA_OBS_COMPILED_IN != 0 ? "compiled in" : "compiled out");
  std::printf("  profiler:        DSA_PROF=on enables wall-clock stack "
              "sampling -> collapsed\n"
              "                   stacks (DSA_PROF_HZ default 97, "
              "DSA_PROF_OUT; render with\n"
              "                   `dsa_cli flame`; live-stack depth %zu; "
              "phases %s)\n",
              obs::Profiler::kMaxLiveDepth,
              DSA_OBS_COMPILED_IN != 0 ? "compiled in" : "compiled out");
  std::printf("  sketches:        streaming quantile/moments summaries feed "
              "health timelines\n"
              "                   (DSA_METRICS_QUANTILES, default p50,p90,p99;"
              " `dsa_cli report\n"
              "                   --health`)\n");
  std::printf("  serve daemon:    compiled in (dsa_cli serve / query over a "
              "unix socket;\n"
              "                   content-addressed result cache, JSONL "
              "store pre-warm)\n");
  std::printf(
      "  engine default:  sparse (DSA_ENGINE or --engine: "
      "sparse|dense|batch)\n");
#if defined(__AVX512F__)
  const char* isa = "AVX-512";
#elif defined(__AVX2__)
  const char* isa = "AVX2";
#elif defined(__AVX__)
  const char* isa = "AVX";
#elif defined(__SSE2__) || defined(_M_X64)
  const char* isa = "SSE2";
#elif defined(__ARM_NEON)
  const char* isa = "NEON";
#else
  const char* isa = "scalar";
#endif
  std::printf(
      "  batch engine:    width 1-64, default 8 (DSA_BATCH_WIDTH or "
      "--batch-width); compiled for %s\n",
      isa);
  std::printf("  thread default:  %zu (DSA_THREADS or --threads override)\n",
              util::ThreadPool::default_thread_count());
  return 0;
}

int dispatch(const std::string& command, const util::CliArgs& args) {
  if (command == "decode") return cmd_decode(args);
  if (command == "named") return cmd_named(args);
  if (command == "performance") return cmd_performance(args);
  if (command == "encounter") return cmd_encounter(args);
  if (command == "pra") return cmd_pra(args);
  if (command == "sweep") return cmd_sweep(args);
  if (command == "swarm") return cmd_swarm(args);
  if (command == "nash") return cmd_nash(args);
  if (command == "stability") return cmd_stability(args);
  if (command == "evolve") return cmd_evolve(args);
  if (command == "plan") return cmd_plan(args);
  if (command == "run") return cmd_run(args);
  if (command == "explore") return cmd_explore(args);
  if (command == "report") return cmd_report(args);
  if (command == "flame") return cmd_flame(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "query") return cmd_query(args);
  if (command == "status") return cmd_status(args);
  if (command == "top") return cmd_top(args);
  if (command == "help") return cmd_help(args);
  if (command == "version") return cmd_version();
  usage(command.empty() ? "missing command"
                        : "unknown command '" + command + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // DSA_RECORD / DSA_RECORD_STRIDE arm the flight recorder for any
    // command; `dsa_cli record` layers its flags on top and saves the file.
    obs::Recorder::global().configure(
        obs::RecorderOptions::from_environment());
    // DSA_STATUS=on starts the live-telemetry sampler for any command;
    // strict parsing means a misspelled value aborts with a named error.
    obs::Telemetry::global().configure(
        obs::TelemetryOptions::from_environment());
    // DSA_METRICS_QUANTILES picks the quantiles every exporter renders
    // (metrics JSONL, telemetry sketch sections, bench summaries).
    obs::set_export_quantiles(obs::quantiles_from_environment());
    // DSA_PROF=on starts the wall-clock sampling profiler for any command.
    // Unless DSA_PROF_OUT says otherwise, the collapsed stacks land in
    // results/PROF_<command>.folded.
    obs::FlameOptions prof = obs::FlameOptions::from_environment();
    if (prof.enabled && util::env_string("DSA_PROF_OUT", "").empty() &&
        argc >= 2) {
      prof.out = "results/PROF_" + obs::sanitize_run_name(argv[1]) + ".folded";
    }
    obs::FlameSampler::global().configure(prof);
    const auto flame_epilogue = [&prof] {
      if (!prof.enabled) return;
      const std::uint64_t samples =
          obs::FlameSampler::global().stop_and_write();
      if (samples > 0) {
        std::fprintf(
            stderr, "prof: %llu samples -> %s (render with `dsa_cli flame`)\n",
            static_cast<unsigned long long>(samples),
            prof.out.string().c_str());
      }
    };
    if (argc >= 2 && std::string(argv[1]) == "record") {
      const int rc = cmd_record(argc - 2, argv + 2);
      flame_epilogue();
      return rc;
    }

    const util::CliArgs args = util::CliArgs::parse(argc - 1, argv + 1);
    if (args.subcommand().empty() && args.has("version")) return cmd_version();

    // Global observability flags wrap whichever command runs. Tracing and
    // metrics only read the wall clock and write their own files, so every
    // command's numeric output is identical with or without them.
    const std::string trace_path = args.get("trace", "");
    const std::string metrics_path = args.get("metrics-out", "");
    if (!trace_path.empty()) obs::TraceSink::global().start(trace_path);
    if (!metrics_path.empty()) obs::set_enabled(true);

    // The command name becomes the root phase on the main thread, so every
    // sampled stack (and the phase report) hangs below one root.
    const int rc = [&] {
      obs::ScopedPhase root_phase(args.subcommand());
      return dispatch(args.subcommand(), args);
    }();

    if (!trace_path.empty()) {
      const std::size_t events = obs::TraceSink::global().stop_and_write();
      std::fprintf(stderr, "trace: %zu events -> %s (load in chrome://tracing "
                   "or https://ui.perfetto.dev)\n",
                   events, trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      obs::Registry::global().snapshot().save_jsonl(metrics_path);
      std::fprintf(stderr, "metrics: wrote %s\n", metrics_path.c_str());
    }
    flame_epilogue();
    return rc;
  } catch (const std::exception& error) {
    usage(error.what());
  }
}
