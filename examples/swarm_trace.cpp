// Swarm trace: the "instrumented client" view of a download. Runs one swarm
// and prints the per-tick health series (active/completed leechers,
// aggregate transfer rate, mean progress) plus each leecher's final
// byte accounting — the kind of instrumentation the paper's modified
// BitTorrent client produced for Sec. 5.
//
//   $ ./swarm_trace                 # 30 BitTorrent leechers, flash crowd
//   $ ./swarm_trace birds 10        # 30 Birds leechers, one joining every 10s
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "stats/descriptive.hpp"
#include "swarm/swarm_sim.hpp"
#include "swarming/bandwidth.hpp"
#include "util/table_printer.hpp"

namespace {

dsa::swarm::ClientVariant parse_variant(const std::string& name) {
  using dsa::swarm::ClientVariant;
  if (name == "bt") return ClientVariant::kBitTorrent;
  if (name == "birds") return ClientVariant::kBirds;
  if (name == "loyal") return ClientVariant::kLoyalWhenNeeded;
  if (name == "sorts") return ClientVariant::kSortSlowest;
  if (name == "random") return ClientVariant::kRandomRank;
  std::fprintf(stderr, "unknown client '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsa;
  using namespace dsa::swarm;

  const ClientVariant variant = parse_variant(argc > 1 ? argv[1] : "bt");
  const auto arrival =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 0;

  constexpr std::size_t kLeechers = 30;
  SwarmConfig config;
  config.record_series = true;
  config.arrival_interval = arrival;
  config.seed = 7;

  std::vector<double> capacities =
      swarming::BandwidthDistribution::piatek().stratified_sample(kLeechers);

  const std::string arrival_text =
      arrival == 0
          ? std::string("flash crowd")
          : "one arrival every " + std::to_string(arrival) + " s";
  std::printf("Tracing a %zu-leecher %s swarm (%s)...\n\n", kLeechers,
              to_string(variant).c_str(), arrival_text.c_str());
  const SwarmResult result = run_swarm(
      std::vector<ClientVariant>(kLeechers, variant), capacities, config);

  // Per-tick health, downsampled to ~15 rows.
  util::TablePrinter series({"t (s)", "active", "done", "swarm rate (KBps)",
                             "mean progress"});
  const std::size_t stride = std::max<std::size_t>(1, result.series.size() / 15);
  for (std::size_t t = 0; t < result.series.size(); t += stride) {
    const SwarmTick& tick = result.series[t];
    series.add_row({std::to_string(t), std::to_string(tick.active_leechers),
                    std::to_string(tick.completed_leechers),
                    util::fixed(tick.transferred_kb, 0),
                    util::fixed(100.0 * tick.mean_progress, 1) + "%"});
  }
  series.print(std::cout);

  // Byte accounting: who contributed, who consumed.
  std::printf("\nPer-leecher accounting (every 5th leecher):\n");
  util::TablePrinter accounting(
      {"leecher", "capacity", "uploaded (KB)", "downloaded (KB)",
       "share ratio", "time (s)"});
  for (std::size_t l = 0; l < kLeechers; l += 5) {
    const double ratio = result.downloaded_kb[l] > 0.0
                             ? result.uploaded_kb[l] / result.downloaded_kb[l]
                             : 0.0;
    accounting.add_row({std::to_string(l), util::fixed(capacities[l], 0),
                        util::fixed(result.uploaded_kb[l], 0),
                        util::fixed(result.downloaded_kb[l], 0),
                        util::fixed(ratio, 2),
                        util::fixed(result.completion_time[l], 0)});
  }
  accounting.print(std::cout);

  std::vector<double> times = result.completion_time;
  std::printf("\nSwarm summary: %s | mean download %.1f s | slowest %.1f s\n",
              result.all_completed ? "all leechers completed" : "INCOMPLETE",
              stats::mean(times), stats::max_value(times));
  return 0;
}
