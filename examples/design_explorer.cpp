// Design explorer: sweep one dimension of the file-swarming design space
// while holding the rest fixed, and watch how Performance responds — the
// "what does this magic number cost me?" question DSA exists to answer.
//
//   $ ./design_explorer partners    # sweep k = 0..9
//   $ ./design_explorer strangers   # sweep stranger policy x h
//   $ ./design_explorer ranking     # sweep the six ranking functions
//   $ ./design_explorer allocation  # sweep the three allocation policies
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "stats/descriptive.hpp"
#include "swarming/bandwidth.hpp"
#include "swarming/protocol.hpp"
#include "swarming/simulator.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace dsa;
using namespace dsa::swarming;

double performance(const ProtocolSpec& spec) {
  SimulationConfig config;
  config.rounds = 250;
  static const BandwidthDistribution dist = BandwidthDistribution::piatek();
  std::vector<double> runs;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    config.seed = seed;
    runs.push_back(run_homogeneous_throughput(spec, 50, config, dist));
  }
  return stats::mean(runs);
}

void sweep(const std::string& dimension) {
  util::TablePrinter table({"protocol", "throughput (KBps)"});
  const ProtocolSpec base = bittorrent_protocol();

  if (dimension == "partners") {
    for (int k = 0; k <= 9; ++k) {
      ProtocolSpec spec = base;
      spec.partner_slots = static_cast<std::uint8_t>(k);
      if (k == 0) {
        spec.window = CandidateWindow::kTft;
        spec.ranking = RankingFunction::kFastest;
      }
      table.add_row({spec.describe(), util::fixed(performance(spec), 1)});
    }
  } else if (dimension == "strangers") {
    ProtocolSpec none = base;
    none.stranger_slots = 0;
    table.add_row({none.describe(), util::fixed(performance(none), 1)});
    for (StrangerPolicy policy : {StrangerPolicy::kPeriodic,
                                  StrangerPolicy::kWhenNeeded,
                                  StrangerPolicy::kDefect}) {
      for (int h = 1; h <= 3; ++h) {
        ProtocolSpec spec = base;
        spec.stranger_policy = policy;
        spec.stranger_slots = static_cast<std::uint8_t>(h);
        table.add_row({spec.describe(), util::fixed(performance(spec), 1)});
      }
    }
  } else if (dimension == "ranking") {
    for (RankingFunction ranking :
         {RankingFunction::kFastest, RankingFunction::kSlowest,
          RankingFunction::kProximity, RankingFunction::kAdaptive,
          RankingFunction::kLoyal, RankingFunction::kRandom}) {
      ProtocolSpec spec = base;
      spec.ranking = ranking;
      table.add_row({spec.describe(), util::fixed(performance(spec), 1)});
    }
  } else if (dimension == "allocation") {
    for (AllocationPolicy allocation :
         {AllocationPolicy::kEqualSplit, AllocationPolicy::kPropShare,
          AllocationPolicy::kFreeride}) {
      ProtocolSpec spec = base;
      spec.allocation = allocation;
      table.add_row({spec.describe(), util::fixed(performance(spec), 1)});
    }
  } else {
    std::fprintf(stderr,
                 "unknown dimension '%s' (expected partners|strangers|"
                 "ranking|allocation)\n",
                 dimension.c_str());
    std::exit(1);
  }

  std::printf("Homogeneous performance sweep over '%s' (base: %s):\n\n",
              dimension.c_str(), base.describe().c_str());
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  sweep(argc > 1 ? argv[1] : "partners");
  return 0;
}
