// Swarm showdown: the paper's Sec. 5 validation experiment as an example.
//
// Pits two BitTorrent-client variants against each other in a piece-level
// swarm (50 leechers, 5 MB file, one 128 KBps seeder) at a configurable
// mix, and reports each group's average download time.
//
//   $ ./swarm_showdown                 # Birds vs BitTorrent, 50/50
//   $ ./swarm_showdown loyal bt 0.25   # 25% Loyal-When-needed vs BitTorrent
//
// Client names: bt, birds, loyal, sorts, random.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "stats/descriptive.hpp"
#include "swarm/swarm_sim.hpp"

namespace {

dsa::swarm::ClientVariant parse_variant(const std::string& name) {
  using dsa::swarm::ClientVariant;
  if (name == "bt") return ClientVariant::kBitTorrent;
  if (name == "birds") return ClientVariant::kBirds;
  if (name == "loyal") return ClientVariant::kLoyalWhenNeeded;
  if (name == "sorts") return ClientVariant::kSortSlowest;
  if (name == "random") return ClientVariant::kRandomRank;
  std::fprintf(stderr,
               "unknown client '%s' (expected bt|birds|loyal|sorts|random)\n",
               name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsa;
  using namespace dsa::swarm;

  const ClientVariant a = parse_variant(argc > 1 ? argv[1] : "birds");
  const ClientVariant b = parse_variant(argc > 2 ? argv[2] : "bt");
  const double fraction = argc > 3 ? std::atof(argv[3]) : 0.5;
  if (fraction <= 0.0 || fraction >= 1.0) {
    std::fprintf(stderr, "fraction must be in (0, 1)\n");
    return 1;
  }

  SwarmConfig config;  // the paper's setup: 5 MB file, 128 KBps seeder
  constexpr std::size_t kLeechers = 50;
  const auto count_a =
      static_cast<std::size_t>(std::lround(fraction * kLeechers));

  std::printf("Swarm: %zu x %s vs %zu x %s | 5 MB file, %.0f KBps seeder, "
              "Piatek capacities\n\n",
              count_a, to_string(a).c_str(), kLeechers - count_a,
              to_string(b).c_str(), config.seeder_capacity_kbps);

  constexpr std::size_t kRuns = 10;
  std::vector<double> times_a, times_b;
  for (std::size_t run = 0; run < kRuns; ++run) {
    config.seed = 1000 + run;
    const SwarmResult result =
        run_mixed_swarm(a, b, count_a, kLeechers, config);
    const double cap = static_cast<double>(config.max_ticks);
    times_a.push_back(result.group_mean_time(0, count_a, cap));
    times_b.push_back(result.group_mean_time(count_a, kLeechers, cap));
  }

  const double mean_a = stats::mean(times_a);
  const double mean_b = stats::mean(times_b);
  std::printf("%-18s avg download time %6.1f s  (95%% CI +/- %.1f, %zu runs)\n",
              to_string(a).c_str(), mean_a, stats::ci95_half_width(times_a),
              kRuns);
  std::printf("%-18s avg download time %6.1f s  (95%% CI +/- %.1f, %zu runs)\n",
              to_string(b).c_str(), mean_b, stats::ci95_half_width(times_b),
              kRuns);
  std::printf("\n=> %s clients finish %.1f%% %s in this mix.\n",
              to_string(a).c_str(),
              100.0 * std::fabs(mean_b - mean_a) / mean_b,
              mean_a <= mean_b ? "faster" : "slower");
  return 0;
}
