// DSA beyond file swarming: the gossip-protocol design space sketched in
// Sec. 3.1 of the paper ("Selection function, Periodicity, Filtering,
// Record maintenance"), actualized into 48 protocols (src/gossip) and
// scored with the same PRA engine that drives the P2P analysis —
// demonstrating that the method is domain-agnostic.
//
//   $ ./gossip_space
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <numeric>
#include <vector>

#include "core/pra.hpp"
#include "gossip/gossip_model.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace dsa;

  const core::DesignSpace space = gossip::gossip_space();
  std::printf("Gossip design space: %llu protocols over %zu dimensions\n\n",
              static_cast<unsigned long long>(space.size()),
              space.dimension_count());

  const gossip::GossipModel model;
  core::PraConfig config;
  config.population = 30;
  config.performance_runs = 3;
  config.encounter_runs = 2;
  config.seed = 7;
  const core::PraScores scores = core::PraEngine(model, config).run();

  // Rank by robustness and show the extremes.
  std::vector<std::size_t> order(space.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores.robustness[a] > scores.robustness[b];
  });

  util::TablePrinter table({"protocol", "P", "R", "A"});
  std::printf("Most robust gossip protocols:\n");
  auto add = [&](std::size_t id) {
    table.add_row({space.describe(id), util::fixed(scores.performance[id], 3),
                   util::fixed(scores.robustness[id], 3),
                   util::fixed(scores.aggressiveness[id], 3)});
  };
  for (std::size_t i = 0; i < 5; ++i) add(order[i]);
  table.add_row({"...", "", "", ""});
  for (std::size_t i = order.size() - 3; i < order.size(); ++i) add(order[i]);
  table.print(std::cout);

  std::printf(
      "\nSame machinery, different domain: replying protocols dominate the "
      "tournament while\n'ignore'/'drop' variants sink — the gossip analogue "
      "of the freerider result.\n");
  return 0;
}
