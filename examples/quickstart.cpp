// Quickstart: Design Space Analysis in ~60 lines.
//
// We take five named protocols from the paper's file-swarming design space,
// run the PRA quantification (Performance, Robustness, Aggressiveness) over
// that focused subspace, and print the resulting characterization — the
// entire DSA workflow end to end.
//
//   $ ./quickstart
#include <cstdio>
#include <iostream>

#include "core/pra.hpp"
#include "core/subspace.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/protocol.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace dsa;
  using namespace dsa::swarming;

  // 1. A simulation substrate: the round-based P2P file-swarming model of
  //    Sec. 4.3.1, with peers drawing upload capacities from the Piatek et
  //    al. distribution.
  SimulationConfig sim;
  sim.rounds = 200;
  SwarmingModel model(sim, BandwidthDistribution::piatek());

  // 2. The protocols to characterize. Each is a point in the 3270-protocol
  //    design space; encode_protocol gives its dense id.
  ProtocolSpec freerider;  // periodic strangers, but gives partners nothing
  freerider.stranger_slots = 1;
  freerider.partner_slots = 9;
  freerider.allocation = AllocationPolicy::kFreeride;

  const std::vector<std::uint32_t> contenders = {
      encode_protocol(bittorrent_protocol()),
      encode_protocol(birds_protocol()),
      encode_protocol(loyal_when_needed_protocol()),
      encode_protocol(sort_s_protocol()),
      encode_protocol(freerider),
  };
  core::SubspaceModel subspace(model, contenders);

  // 3. The PRA quantification: homogeneous performance plus round-robin
  //    tournaments at the 50/50 (Robustness) and 10/90 (Aggressiveness)
  //    splits.
  core::PraConfig pra;
  pra.population = 50;
  pra.performance_runs = 5;
  pra.encounter_runs = 3;
  pra.seed = 42;
  const core::PraScores scores = core::PraEngine(subspace, pra).run();

  // 4. Report.
  std::printf("PRA characterization (%zu peers, %zu rounds/run):\n\n",
              pra.population, sim.rounds);
  util::TablePrinter table(
      {"protocol", "performance", "robustness", "aggressiveness"});
  for (std::uint32_t i = 0; i < subspace.protocol_count(); ++i) {
    table.add_row({subspace.protocol_name(i),
                   util::fixed(scores.performance[i], 3),
                   util::fixed(scores.robustness[i], 3),
                   util::fixed(scores.aggressiveness[i], 3)});
  }
  table.print(std::cout);

  std::printf(
      "\nReading the table: performance is normalized population throughput "
      "in a homogeneous swarm;\nrobustness/aggressiveness are tournament win "
      "rates when the protocol holds 50%% / 10%% of the\npopulation. The "
      "freerider's numbers show why incentive design matters.\n");
  return 0;
}
