// Heuristic search example (the paper's Sec. 7 future work): hill-climb the
// 3270-protocol design space toward protocols that balance homogeneous
// performance with tournament robustness, instead of scanning exhaustively.
//
//   $ ./heuristic_search            # default: 3 restarts x 30 steps
//   $ ./heuristic_search 5 60 0.3   # restarts, steps, performance weight
#include <cstdio>
#include <cstdlib>

#include "core/search.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/protocol.hpp"
#include "util/rng.hpp"

namespace {

using namespace dsa;
using namespace dsa::swarming;

/// Neighbor: re-roll one design dimension of the current protocol.
std::uint32_t mutate(std::uint32_t current, util::Rng& rng) {
  ProtocolSpec spec = decode_protocol(current);
  switch (rng.below(5)) {
    case 0: {
      const auto h = static_cast<std::uint8_t>(rng.below(4));
      spec.stranger_slots = h;
      spec.stranger_policy = h == 0
                                 ? StrangerPolicy::kPeriodic
                                 : static_cast<StrangerPolicy>(rng.below(3));
      break;
    }
    case 1:
      if (spec.partner_slots > 0) {
        spec.window = static_cast<CandidateWindow>(rng.below(2));
      }
      break;
    case 2:
      if (spec.partner_slots > 0) {
        spec.ranking = static_cast<RankingFunction>(rng.below(6));
      }
      break;
    case 3: {
      const auto k = static_cast<std::uint8_t>(rng.below(10));
      spec.partner_slots = k;
      if (k == 0) {
        spec.window = CandidateWindow::kTft;
        spec.ranking = RankingFunction::kFastest;
      }
      break;
    }
    default:
      spec.allocation = static_cast<AllocationPolicy>(rng.below(3));
  }
  return encode_protocol(spec);
}

}  // namespace

int main(int argc, char** argv) {
  SimulationConfig sim;
  sim.rounds = 150;
  const SwarmingModel model(sim, BandwidthDistribution::piatek());

  core::SearchConfig config;
  config.restarts = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  config.steps_per_restart =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 30;
  config.performance_weight = argc > 3 ? std::atof(argv[3]) : 0.5;
  config.eval_runs = 2;
  config.opponent_probes = 6;
  config.reference_protocol = encode_protocol(bittorrent_protocol());

  std::printf("Hill climbing the %u-protocol space (%zu restarts x %zu "
              "steps, perf weight %.2f)...\n\n",
              kProtocolCount, config.restarts, config.steps_per_restart,
              config.performance_weight);

  core::HeuristicSearch search(model, mutate, config);
  const core::SearchResult result = search.run();

  std::printf("Improvement trajectory:\n");
  for (const auto& [protocol, objective] : result.trajectory) {
    std::printf("  obj=%.3f  #%-5u %s\n", objective, protocol,
                decode_protocol(protocol).describe().c_str());
  }
  std::printf("\nBest found: #%u  %s\n", result.best_protocol,
              decode_protocol(result.best_protocol).describe().c_str());
  std::printf("Objective %.3f after evaluating %zu protocols (%.1f%% of the "
              "space).\n",
              result.best_objective, result.evaluations,
              100.0 * static_cast<double>(result.evaluations) /
                  kProtocolCount);
  return 0;
}
