// Axelrod tournament: the repeated-game lens behind Sec. 2. Runs the
// classic seven-strategy round-robin on (a) the standard Prisoner's Dilemma
// and (b) the asymmetric BitTorrent Dilemma of Fig. 1(a), with and without
// noise — showing why TFT-like reciprocation carries the PD while the fast
// role of the BT Dilemma is carried by unconditional defection.
//
//   $ ./axelrod_tournament          # noiseless
//   $ ./axelrod_tournament 0.02     # 2% per-move noise
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "gametheory/strategies.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace dsa;
using namespace dsa::gametheory;

void print_tournament(const std::string& title, const BimatrixGame& game,
                      const TournamentConfig& config) {
  const auto result = round_robin(game, all_strategies(), config);

  std::vector<std::size_t> order(result.roster.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.score[a] > result.score[b];
  });

  std::printf("\n%s (noise %.0f%%, %zu rounds/match):\n", title.c_str(),
              100.0 * config.noise, config.rounds);
  util::TablePrinter table({"rank", "strategy", "mean payoff/round"});
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    table.add_row({std::to_string(rank + 1),
                   to_string(result.roster[order[rank]]),
                   util::fixed(result.score[order[rank]], 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  TournamentConfig config;
  config.rounds = 500;
  config.repeats = 5;
  config.noise = argc > 1 ? std::atof(argv[1]) : 0.0;
  config.aspiration = 2.0;  // PD: reward counts as a win for WSLS

  print_tournament("Classic Prisoner's Dilemma (T=5 R=3 P=1 S=0)",
                   prisoners_dilemma(), config);

  // The BitTorrent Dilemma (f = 100, s = 20): the asymmetric game from the
  // paper's Fig. 1(a). Aspiration 0: any positive payoff is a "win".
  TournamentConfig bt_config = config;
  bt_config.aspiration = 0.5;
  print_tournament("BitTorrent Dilemma, Fig. 1(a) (f=100, s=20)",
                   bittorrent_dilemma(100.0, 20.0), bt_config);

  // Evolution of cooperation: replicator dynamics on the PD tournament.
  const std::vector<StrategyKind> eco_roster{StrategyKind::kAllCooperate,
                                             StrategyKind::kAllDefect,
                                             StrategyKind::kTitForTat};
  const auto eco =
      round_robin(prisoners_dilemma(), eco_roster, config);
  const auto trajectory = strategy_replicator(
      eco, {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0}, 300);
  std::printf("\nReplicator dynamics over {AllC, AllD, TFT} shares:\n");
  util::TablePrinter shares({"step", "AllC", "AllD", "TFT"});
  for (std::size_t step : {0u, 10u, 25u, 50u, 100u, 300u}) {
    shares.add_row({std::to_string(step),
                    util::fixed(trajectory[step][0], 3),
                    util::fixed(trajectory[step][1], 3),
                    util::fixed(trajectory[step][2], 3)});
  }
  shares.print(std::cout);

  std::printf(
      "\nReading the results: in the symmetric PD the reciprocators (TFT, "
      "Grim, WSLS) top the\ntable and AllD sinks — Axelrod's classic "
      "finding — and the replicator shows defectors\nfeasting on suckers "
      "before the reciprocators starve them out. In the BitTorrent\n"
      "Dilemma the fast role's dominant defection pays regardless of the "
      "opponent, which is\nexactly why the paper's Sec. 2 concludes "
      "BitTorrent's TFT is not an equilibrium\nbetween bandwidth classes.\n");
  return 0;
}
