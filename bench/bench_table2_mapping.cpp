// Table 2: existing protocols/designs mapped onto the generic P2P design
// space (Sec. 4.1). The table itself is a literature survey; what we can
// regenerate is the mapping of each system's policies onto concrete
// actualizations of OUR space — verifying that the parameterization is
// expressive enough to describe all six systems the paper lists.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "swarming/protocol.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarming;

namespace {

struct Mapping {
  const char* system;
  const char* stranger_policy;
  const char* selection;
  const char* allocation;
  ProtocolSpec closest;  // nearest point of our actualized space
};

}  // namespace

int main() {
  ::dsa::bench::MetricsScope metrics_scope("table2_mapping");
  bench::banner(
      "Table 2 — existing systems mapped to the generic design space",
      "peer discovery / stranger policy / selection function / resource "
      "allocation suffice to describe P2P Replica Storage, GTG, Maze, "
      "Pulse, BarterCast and private BT communities");

  ProtocolSpec replica;  // defect if partner set full ~ When-needed;
  replica.stranger_policy = StrangerPolicy::kWhenNeeded;
  replica.ranking = RankingFunction::kProximity;  // closest to own profile
  replica.partner_slots = 4;

  ProtocolSpec gtg;  // unconditional cooperation with strangers
  gtg.stranger_policy = StrangerPolicy::kPeriodic;
  gtg.stranger_slots = 2;
  gtg.ranking = RankingFunction::kFastest;  // sort on forwarding rank
  gtg.partner_slots = 4;

  ProtocolSpec maze;  // ranked on points, differentiated allocation
  maze.stranger_policy = StrangerPolicy::kPeriodic;  // initialized w/ points
  maze.ranking = RankingFunction::kFastest;
  maze.partner_slots = 6;
  maze.allocation = AllocationPolicy::kPropShare;

  ProtocolSpec pulse;  // positive score to strangers, missing/forward lists
  pulse.stranger_policy = StrangerPolicy::kPeriodic;
  pulse.ranking = RankingFunction::kAdaptive;
  pulse.partner_slots = 4;

  ProtocolSpec bartercast;  // unconditional cooperation + reputation rank
  bartercast.stranger_policy = StrangerPolicy::kPeriodic;
  bartercast.stranger_slots = 1;
  bartercast.ranking = RankingFunction::kLoyal;  // long-run reputation
  bartercast.partner_slots = 4;

  ProtocolSpec private_bt;  // initial credit, credit-proportional allocation
  private_bt.stranger_policy = StrangerPolicy::kWhenNeeded;
  private_bt.ranking = RankingFunction::kFastest;
  private_bt.partner_slots = 4;
  private_bt.allocation = AllocationPolicy::kPropShare;

  const Mapping mappings[] = {
      {"P2P Replica Storage", "Defect if partner set full",
       "Closest to own profile", "Equal", replica},
      {"Give-to-Get (GTG)", "Unconditional cooperation",
       "Sort on forwarding rank", "Equal", gtg},
      {"Maze", "Initialized with points", "Ranked on points",
       "Differentiated by rank", maze},
      {"Pulse", "Give positive score", "Missing/forwarding lists", "Equal",
       pulse},
      {"BarterCast", "Unconditional cooperation", "Rank/ban by reputation",
       "Equal", bartercast},
      {"Private BT communities", "Initial credit", "Credit/sharing ratio",
       "Differentiated by credits", private_bt},
  };

  util::TablePrinter table({"system", "paper's description",
                            "nearest protocol in our space", "id"});
  bool all_encodable = true;
  for (const auto& m : mappings) {
    std::uint32_t id = 0;
    try {
      id = encode_protocol(m.closest);
    } catch (const std::exception&) {
      all_encodable = false;
    }
    table.add_row({m.system,
                   std::string(m.stranger_policy) + " / " + m.selection +
                       " / " + m.allocation,
                   m.closest.describe(), std::to_string(id)});
  }
  std::printf("\n");
  table.print(std::cout);

  std::printf("\n");
  bench::verdict(all_encodable,
                 "all six surveyed systems map onto valid points of the "
                 "actualized 3270-protocol space");
  return 0;
}
