// Figure 1 + Sec. 2.2/2.3 + Appendix: the BitTorrent Dilemma payoff
// matrices, the analytical expected-game-wins model (Table 1 notation), and
// the Nash-equilibrium invasion analysis (BT is not a NE; Birds is).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "gametheory/expected_wins.hpp"
#include "gametheory/payoff.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::gametheory;

namespace {

void print_game(const std::string& title, const BimatrixGame& game) {
  std::printf("\n%s (fast payoff, slow payoff):\n", title.c_str());
  util::TablePrinter table({"fast \\ slow", "cooperate", "defect"});
  auto cell = [&](Action fa, Action sa) {
    return "(" + util::fixed(game.payoff(Role::kFast, fa, sa), 0) + ", " +
           util::fixed(game.payoff(Role::kSlow, fa, sa), 0) + ")";
  };
  table.add_row({"cooperate", cell(Action::kCooperate, Action::kCooperate),
                 cell(Action::kCooperate, Action::kDefect)});
  table.add_row({"defect", cell(Action::kDefect, Action::kCooperate),
                 cell(Action::kDefect, Action::kDefect)});
  table.print(std::cout);
}

void print_wins(const std::string& name, const ExpectedWins& w) {
  std::printf(
      "%-28s Er[A]=%.3f Er[B]=%.3f Er[C]=%.3f E[A]=%.3f E[B]=%.3f E[C]=%.3f "
      "total=%.3f\n",
      name.c_str(), w.reciprocated_above, w.reciprocated_below,
      w.reciprocated_same, w.free_above, w.free_below, w.free_same,
      w.total());
}

}  // namespace

int main() {
  ::dsa::bench::MetricsScope metrics_scope("fig1_nash");
  bench::banner(
      "Fig. 1 / Secs. 2.2-2.3 / Appendix — BitTorrent Dilemma & Nash analysis",
      "fast peers defect on slow peers; BitTorrent's TFT is NOT a Nash "
      "equilibrium, the Birds modification IS");

  const double f = 100.0, s = 20.0;
  const auto bt_game = bittorrent_dilemma(f, s);
  const auto birds_game = birds_payoffs(f, s);
  std::printf("\nSpeeds: f = %.0f KBps (fast), s = %.0f KBps (slow)\n", f, s);
  print_game("Fig. 1(a) — BitTorrent Dilemma", bt_game);
  std::printf("  dominant actions: fast=%s slow=%s\n",
              bt_game.dominant_action(Role::kFast) == Action::kDefect
                  ? "Defect"
                  : "Cooperate",
              bt_game.dominant_action(Role::kSlow) == Action::kDefect
                  ? "Defect"
                  : "Cooperate");
  print_game("Fig. 1(c) — Birds payoffs", birds_game);
  std::printf("  dominant actions: fast=%s slow=%s\n",
              birds_game.dominant_action(Role::kFast) == Action::kDefect
                  ? "Defect"
                  : "Cooperate",
              birds_game.dominant_action(Role::kSlow) == Action::kDefect
                  ? "Defect"
                  : "Cooperate");

  // Sec. 2.2: expected game wins for a range of class setups.
  std::printf("\nExpected game wins for peer c (Table 1 model):\n");
  bool bt_never_ne = true;
  bool birds_always_ne = true;
  for (const ClassSetup setup :
       {ClassSetup{10, 10, 10, 4}, ClassSetup{20, 5, 10, 4},
        ClassSetup{30, 30, 30, 9}, ClassSetup{8, 2, 7, 3}}) {
    std::printf("\n  NA=%zu NB=%zu NC=%zu Ur=%zu (Nr=%.0f)\n",
                setup.peers_above, setup.peers_below, setup.peers_same,
                setup.regular_slots, setup.contention_pool());
    print_wins("    BitTorrent (homogeneous)", bittorrent_expected_wins(setup));
    print_wins("    Birds (homogeneous)", birds_expected_wins(setup));

    const auto birds_in_bt = birds_invades_bittorrent(setup);
    const auto bt_in_birds = bittorrent_invades_birds(setup);
    print_wins("    Birds invader in BT swarm", birds_in_bt.invader);
    print_wins("    BT incumbent (same class)", birds_in_bt.incumbent);
    print_wins("    BT invader in Birds swarm", bt_in_birds.invader);
    print_wins("    Birds incumbent (same cls)", bt_in_birds.incumbent);
    std::printf("    -> Birds invader gains: %s | BT invader gains: %s\n",
                birds_in_bt.invader_outperforms ? "YES (BT not a NE)" : "no",
                bt_in_birds.invader_outperforms ? "YES" : "no (Birds is a NE)");
    bt_never_ne &= birds_in_bt.invader_outperforms;
    birds_always_ne &= !bt_in_birds.invader_outperforms;
  }

  std::printf("\n");
  bench::verdict(bt_never_ne && birds_always_ne,
                 "across all tested class setups a lone Birds deviator beats "
                 "BitTorrent incumbents while a lone BitTorrent deviator "
                 "cannot beat Birds incumbents");
  return 0;
}
