// Extension: evolutionary dynamics over the protocol menu — the population-
// level counterpart of the paper's Sec. 2 Nash analysis (and of the Feldman
// et al. evolutionary treatment the paper cites). Two experiments:
//   1. an even-split melting pot of the five headline protocols;
//   2. single-mutant invasions: one Birds peer in a BitTorrent population
//      and vice versa, echoing the Appendix invasion analysis.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/evolution.hpp"
#include "swarming/dsa_model.hpp"
#include "util/env.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::core;
using namespace dsa::swarming;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("evolution");
  bench::banner(
      "Extension — replicator dynamics over the protocol menu",
      "freeriding dies out; reciprocating protocols carry the population "
      "(population-level echo of the Sec. 2 equilibrium analysis)");

  SimulationConfig sim;
  sim.rounds = static_cast<std::size_t>(util::env_int("DSA_ROUNDS", 120));
  const SwarmingModel model(sim, BandwidthDistribution::piatek());

  ProtocolSpec freerider;
  freerider.stranger_slots = 1;
  freerider.partner_slots = 9;
  freerider.allocation = AllocationPolicy::kFreeride;

  const std::vector<std::uint32_t> menu = {
      encode_protocol(bittorrent_protocol()),
      encode_protocol(birds_protocol()),
      encode_protocol(loyal_when_needed_protocol()),
      encode_protocol(sort_s_protocol()),
      encode_protocol(freerider),
  };
  const std::vector<std::string> names = {"BitTorrent", "Birds", "LoyalWn",
                                          "Sort-S", "Freerider"};

  EvolutionConfig config;
  config.population = 50;
  config.generations =
      static_cast<std::size_t>(util::env_int("DSA_GENERATIONS", 40));
  config.runs_per_generation = 2;

  // Experiment 1: melting pot.
  ReplicatorDynamics dynamics(model, menu, config);
  const EvolutionResult pot = dynamics.run_from_even_split();

  std::printf("\nMelting pot (even split, %zu generations):\n",
              config.generations);
  util::TablePrinter table({"generation", names[0], names[1], names[2],
                            names[3], names[4]});
  for (std::size_t g = 0; g < pot.share_history.size();
       g += std::max<std::size_t>(1, pot.share_history.size() / 10)) {
    std::vector<std::string> row{std::to_string(g)};
    for (double share : pot.share_history[g]) {
      row.push_back(util::fixed(share, 2));
    }
    table.add_row(row);
  }
  std::vector<std::string> final_row{"final"};
  for (double share : pot.final_shares()) {
    final_row.push_back(util::fixed(share, 2));
  }
  table.add_row(final_row);
  table.print(std::cout);

  const double freerider_final = pot.final_shares()[4];
  bench::verdict(freerider_final < 0.05,
                 "the freerider strain dies out of the melting pot (final "
                 "share " + util::fixed(freerider_final, 2) + ")");

  // Experiment 2: single-mutant invasions (Appendix echo).
  std::printf("\nSingle-mutant invasions (10 generations each):\n");
  EvolutionConfig invasion_config = config;
  invasion_config.generations = 10;
  auto invade = [&](std::size_t resident, std::size_t mutant) {
    ReplicatorDynamics pair_dynamics(
        model, {menu[resident], menu[mutant]}, invasion_config);
    std::vector<std::size_t> counts = {49, 1};
    const EvolutionResult result = pair_dynamics.run(counts);
    std::printf("  1 %s mutant among 49 %s: mutant share %.2f -> %.2f\n",
                names[mutant].c_str(), names[resident].c_str(), 1.0 / 50.0,
                result.final_shares()[1]);
    return result.final_shares()[1];
  };
  const double birds_in_bt = invade(0, 1);
  const double bt_in_birds = invade(1, 0);
  std::printf("\n(The Appendix predicts a Birds deviator gains inside "
              "BitTorrent while a BitTorrent deviator does not gain inside "
              "Birds; under drift at N = 50 a single mutant can also die by "
              "chance.)\n");
  (void)birds_in_bt;
  (void)bt_in_birds;
  return 0;
}
