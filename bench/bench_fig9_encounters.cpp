// Figure 9: swarm-level competitive encounters on the validation substrate —
// (a) Loyal-When-needed vs BitTorrent, (b) Birds vs BitTorrent, (c) Birds vs
// Loyal-When-needed — at client fractions {0, .1, .25, .5, .75, .9, 1},
// reporting average download times with 95% confidence intervals.
//
// Ported to the flight recorder: the swarm engine records one kMixedSwarm
// header per experiment (tagged with the panel title as its context) plus a
// kLeecher summary per leecher, and dsa_report rebuilds the panel tables
// from those events — the exact code path `dsa_cli report --table fig9`
// uses, so the two outputs are byte-identical (enforced by the recorder
// golden test). With the recorder compiled out (-DDSA_TRACE=OFF) the twin
// path below computes the same series directly from the swarm results.
//
// Tables print the *realized* fraction count_a/50 (e.g. 0.26 for the
// nominal 0.25 mix), which both paths can reconstruct exactly.
//
// Run-key note: seeds are seed_base + run*131 + count_a with bases
// 1000/2000/3000 and count_a drawn from {0,5,13,25,38,45,50}. No two
// (panel, run, fraction) combinations can collide for any run count —
// 131*k - 1000 or - 2000 would have to land in the difference set of the
// count_a values, and none do — so all three panels share one recording
// without ambiguity.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/recorder.hpp"
#include "report/report.hpp"
#include "stats/descriptive.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/env.hpp"

using namespace dsa;
using namespace dsa::swarm;

namespace {

const std::vector<double>& fractions() {
  static const std::vector<double> f{0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
  return f;
}

report::EncounterSeries run_panel(const std::string& title, ClientVariant a,
                                  ClientVariant b, std::size_t runs,
                                  std::uint64_t seed_base) {
  SwarmConfig config;  // paper setup: 50 leechers, 5 MB, 128 KBps seeder

#if DSA_OBS_COMPILED_IN
  // Recorder path: tag the panel, run the experiments, and extract the
  // series from the recording.
  obs::Recorder::global().set_context(title);
  for (double fraction : fractions()) {
    const auto count_a =
        static_cast<std::size_t>(std::lround(fraction * 50.0));
    for (std::size_t run = 0; run < runs; ++run) {
      config.seed = seed_base + run * 131 + count_a;
      run_mixed_swarm(a, b, count_a, 50, config);
    }
  }
  const std::vector<obs::Event> events = obs::Recorder::global().snapshot();
  for (auto& series : report::encounter_series_from_events(events)) {
    if (series.title == title) return series;
  }
  throw std::runtime_error("recording produced no series for " + title);
#else
  // Recorder compiled out: build the identical series directly.
  report::EncounterSeries series;
  series.title = title;
  series.variant_a = to_string(a);
  series.variant_b = to_string(b);
  for (double fraction : fractions()) {
    const auto count_a =
        static_cast<std::size_t>(std::lround(fraction * 50.0));
    report::EncounterPoint point;
    point.count_a = count_a;
    point.fraction = static_cast<double>(count_a) / 50.0;
    std::vector<double> times_a, times_b;
    for (std::size_t run = 0; run < runs; ++run) {
      config.seed = seed_base + run * 131 + count_a;
      const auto result = run_mixed_swarm(a, b, count_a, 50, config);
      const double cap = static_cast<double>(config.max_ticks);
      if (count_a > 0) {
        times_a.push_back(result.group_mean_time(0, count_a, cap));
      }
      if (count_a < 50) {
        times_b.push_back(result.group_mean_time(count_a, 50, cap));
      }
    }
    if (!times_a.empty()) {
      point.has_a = true;
      point.mean_a = stats::mean(times_a);
      point.ci_a = stats::ci95_half_width(times_a);
    }
    if (!times_b.empty()) {
      point.has_b = true;
      point.mean_b = stats::mean(times_b);
      point.ci_b = stats::ci95_half_width(times_b);
    }
    series.points.push_back(point);
  }
  return series;
#endif
}

}  // namespace

int main() {
  ::dsa::bench::MetricsScope metrics_scope("fig9_encounters");
  bench::banner(
      "Fig. 9 — competitive swarm encounters (validation substrate)",
      "(a) Loyal-When-needed never does worse than BitTorrent and its "
      "download time barely depends on the mix; (b) Birds does as well as "
      "or better than BitTorrent; (c) an all-Birds swarm beats an all-"
      "Loyal-When-needed swarm on raw download time, while Loyal-When-"
      "needed is the more robust of the two");

  const auto runs = static_cast<std::size_t>(
      util::env_int("DSA_SWARM_RUNS", 10));
  metrics_scope.knob("swarm_runs", runs);

#if DSA_OBS_COMPILED_IN
  {
    obs::RecorderOptions options = obs::RecorderOptions::from_environment();
    if (options.level == obs::RecordLevel::kOff) {
      options.level = obs::RecordLevel::kRounds;
    }
    obs::Recorder::global().configure(options);
  }
#endif

  const auto fig9a =
      run_panel("Fig. 9(a): Loyal-When-needed vs BitTorrent",
                ClientVariant::kLoyalWhenNeeded, ClientVariant::kBitTorrent,
                runs, 1000);
  std::cout << report::render_encounter_series(fig9a);

  const auto fig9b =
      run_panel("Fig. 9(b): Birds vs BitTorrent", ClientVariant::kBirds,
                ClientVariant::kBitTorrent, runs, 2000);
  std::cout << report::render_encounter_series(fig9b);

  const auto fig9c =
      run_panel("Fig. 9(c): Birds vs Loyal-When-needed", ClientVariant::kBirds,
                ClientVariant::kLoyalWhenNeeded, runs, 3000);
  std::cout << report::render_encounter_series(fig9c);

#if DSA_OBS_COMPILED_IN
  bench::save_recording_if_requested();
#endif

  // Shape checks. Fig 9(a): Loyal-When-needed never substantially worse
  // than BT in any mixed swarm, and its times are stable across mixes.
  bool loyal_never_worse = true;
  double loyal_min = 1e18, loyal_max = 0.0;
  for (const auto& point : fig9a.points) {
    if (point.has_a && point.has_b &&
        point.mean_a > point.mean_b * 1.10) {
      loyal_never_worse = false;
    }
    if (point.has_a) {
      loyal_min = std::min(loyal_min, point.mean_a);
      loyal_max = std::max(loyal_max, point.mean_a);
    }
  }
  const bool loyal_stable = loyal_max < loyal_min * 1.25;

  std::printf("\n");
  bench::verdict(loyal_never_worse,
                 "Loyal-When-needed never does markedly worse than "
                 "BitTorrent in any mix (Fig. 9a)");
  bench::verdict(loyal_stable,
                 "Loyal-When-needed download times are largely independent "
                 "of swarm composition (spread " +
                     util::fixed(100.0 * (loyal_max / loyal_min - 1.0), 1) +
                     "%)");
  return 0;
}
