// Figure 9: swarm-level competitive encounters on the validation substrate —
// (a) Loyal-When-needed vs BitTorrent, (b) Birds vs BitTorrent, (c) Birds vs
// Loyal-When-needed — at client fractions {0, .1, .25, .5, .75, .9, 1},
// reporting average download times with 95% confidence intervals.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/env.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarm;

namespace {

struct SeriesPoint {
  double fraction;
  double mean_a = 0.0, ci_a = 0.0;  // group A download time (s)
  double mean_b = 0.0, ci_b = 0.0;  // group B download time (s)
  bool has_a = false, has_b = false;
};

std::vector<SeriesPoint> encounter_series(ClientVariant a, ClientVariant b,
                                          std::size_t runs,
                                          std::uint64_t seed_base) {
  const std::vector<double> fractions{0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
  std::vector<SeriesPoint> series;
  SwarmConfig config;  // paper setup: 50 leechers, 5 MB, 128 KBps seeder
  for (double fraction : fractions) {
    const auto count_a =
        static_cast<std::size_t>(std::lround(fraction * 50.0));
    SeriesPoint point;
    point.fraction = fraction;
    std::vector<double> times_a, times_b;
    for (std::size_t run = 0; run < runs; ++run) {
      config.seed = seed_base + run * 131 + count_a;
      const auto result = run_mixed_swarm(a, b, count_a, 50, config);
      const double cap = static_cast<double>(config.max_ticks);
      if (count_a > 0) times_a.push_back(result.group_mean_time(0, count_a, cap));
      if (count_a < 50) {
        times_b.push_back(result.group_mean_time(count_a, 50, cap));
      }
    }
    if (!times_a.empty()) {
      point.has_a = true;
      point.mean_a = stats::mean(times_a);
      point.ci_a = stats::ci95_half_width(times_a);
    }
    if (!times_b.empty()) {
      point.has_b = true;
      point.mean_b = stats::mean(times_b);
      point.ci_b = stats::ci95_half_width(times_b);
    }
    series.push_back(point);
  }
  return series;
}

void print_series(const std::string& title, ClientVariant a, ClientVariant b,
                  const std::vector<SeriesPoint>& series) {
  std::printf("\n%s\n", title.c_str());
  util::TablePrinter table({"fraction of " + to_string(a),
                            to_string(a) + " avg time (s)",
                            to_string(b) + " avg time (s)"});
  for (const auto& point : series) {
    table.add_row(
        {util::fixed(point.fraction, 2),
         point.has_a ? util::fixed(point.mean_a, 1) + " +/- " +
                           util::fixed(point.ci_a, 1)
                     : "-",
         point.has_b ? util::fixed(point.mean_b, 1) + " +/- " +
                           util::fixed(point.ci_b, 1)
                     : "-"});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  ::dsa::bench::MetricsScope metrics_scope("fig9_encounters");
  bench::banner(
      "Fig. 9 — competitive swarm encounters (validation substrate)",
      "(a) Loyal-When-needed never does worse than BitTorrent and its "
      "download time barely depends on the mix; (b) Birds does as well as "
      "or better than BitTorrent; (c) an all-Birds swarm beats an all-"
      "Loyal-When-needed swarm on raw download time, while Loyal-When-"
      "needed is the more robust of the two");

  const auto runs = static_cast<std::size_t>(
      util::env_int("DSA_SWARM_RUNS", 10));

  const auto fig9a =
      encounter_series(ClientVariant::kLoyalWhenNeeded,
                       ClientVariant::kBitTorrent, runs, 1000);
  print_series("Fig. 9(a): Loyal-When-needed vs BitTorrent",
               ClientVariant::kLoyalWhenNeeded, ClientVariant::kBitTorrent,
               fig9a);

  const auto fig9b = encounter_series(ClientVariant::kBirds,
                                      ClientVariant::kBitTorrent, runs, 2000);
  print_series("Fig. 9(b): Birds vs BitTorrent", ClientVariant::kBirds,
               ClientVariant::kBitTorrent, fig9b);

  const auto fig9c =
      encounter_series(ClientVariant::kBirds,
                       ClientVariant::kLoyalWhenNeeded, runs, 3000);
  print_series("Fig. 9(c): Birds vs Loyal-When-needed", ClientVariant::kBirds,
               ClientVariant::kLoyalWhenNeeded, fig9c);

  // Shape checks. Fig 9(a): Loyal-When-needed never substantially worse
  // than BT in any mixed swarm, and its times are stable across mixes.
  bool loyal_never_worse = true;
  double loyal_min = 1e18, loyal_max = 0.0;
  for (const auto& point : fig9a) {
    if (point.has_a && point.has_b &&
        point.mean_a > point.mean_b * 1.10) {
      loyal_never_worse = false;
    }
    if (point.has_a) {
      loyal_min = std::min(loyal_min, point.mean_a);
      loyal_max = std::max(loyal_max, point.mean_a);
    }
  }
  const bool loyal_stable = loyal_max < loyal_min * 1.25;

  std::printf("\n");
  bench::verdict(loyal_never_worse,
                 "Loyal-When-needed never does markedly worse than "
                 "BitTorrent in any mix (Fig. 9a)");
  bench::verdict(loyal_stable,
                 "Loyal-When-needed download times are largely independent "
                 "of swarm composition (spread " +
                     util::fixed(100.0 * (loyal_max / loyal_min - 1.0), 1) +
                     "%)");
  return 0;
}
