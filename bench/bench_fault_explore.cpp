// Throughput harness for the fault-schedule explorer (src/explore): how fast
// the bounded worst-case search covers its schedule space, split into the two
// costs that matter — pure enumeration (walking ordinals with partial-order
// pruning, no simulation) and full exploration (every canonical schedule
// simulated through the pinned swarm run, the scenario runner's hot path).
//
// The enumeration pass walks a deliberately larger domain than any committed
// spec (8 templates x 12 ticks, <= 3 simultaneous faults: 100k+ schedules) so
// the pruning ratio is measured where pruning actually pays. The simulation
// pass runs the committed example spec's space (127 schedules, 20 leechers)
// end to end, which is what `dsa_cli explore` spends its time on.
//
// BENCH_fault_explore.json (schema v1, via MetricsScope) records the wall
// time per simulation repetition plus knobs:
//   templates / grid / max_faults   enumeration-domain shape
//   enum_total / enum_visited       closed-form space and canonical count
//   pruning_ratio                   pruned / total over the enumeration pass
//   enum_schedules_per_sec          ordinal walk throughput (no simulation)
//   sim_schedules / sim_schedules_per_sec   explored-spec throughput
//
// Knobs: DSA_BENCH_EXPLORE_REPS  simulation repetitions (default 3)
#include <chrono>
#include <cstdio>
#include <string>

#include "common.hpp"
#include "explore/explore.hpp"
#include "scenario/explore_kind.hpp"
#include "scenario/plan.hpp"
#include "scenario/spec.hpp"
#include "util/env.hpp"

namespace {

using namespace dsa;

/// The committed example spec's parameters (examples/scenarios/
/// fault_explore.json) without the file dependency: 3 templates x 6 ticks,
/// <= 2 simultaneous faults = 127 schedules over a 20-leecher swarm.
scenario::ExploreContext example_context() {
  const std::string json = R"({
    "scenario": "bench-fault-explore", "kind": "explore",
    "output": "unused.csv", "params": {
      "a": "bt", "total": 20, "seed": 500, "max_ticks": 2000,
      "crash_leechers": 2, "crash_downtime": 60,
      "outage_count": 1, "outage_length": 80,
      "tick_start": 1, "tick_step": 40, "tick_count": 6,
      "max_faults": 2, "objective": "mean_time"}})";
  const scenario::Plan plan =
      scenario::expand_plan(scenario::parse_scenario_text(json));
  return scenario::explore_context(plan.jobs.front().params);
}

/// Enumeration-only domain: large enough that the walk, not setup, dominates.
explore::Domain enumeration_domain() {
  explore::Domain domain;
  for (std::size_t l = 0; l < 6; ++l) {
    domain.templates.push_back(
        {explore::FaultTemplate::Kind::kCrash, l, /*duration=*/60});
  }
  domain.templates.push_back({explore::FaultTemplate::Kind::kOutage, 0, 80});
  domain.templates.push_back({explore::FaultTemplate::Kind::kOutage, 0, 120});
  for (std::size_t i = 0; i < 12; ++i) domain.ticks.push_back(1 + 40 * i);
  domain.max_faults = 3;
  return domain;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  bench::MetricsScope metrics_scope("fault_explore");
  bench::banner("BENCH fault_explore",
                "design-space lens on robustness: the bounded fault-schedule "
                "search covers its declared space exactly (visited + pruned "
                "== closed form) at throughput that keeps full exploration "
                "an interactive-scale job");

  const auto reps =
      static_cast<std::size_t>(util::env_int("DSA_BENCH_EXPLORE_REPS", 3));

  // --- enumeration pass (no simulation) ---------------------------------
  const explore::Domain domain = enumeration_domain();
  const std::uint64_t space = explore::count_space(domain);
  const auto enum_start = std::chrono::steady_clock::now();
  std::uint64_t callbacks = 0;
  const explore::SpaceCount counts = explore::for_each_schedule(
      domain,
      [&callbacks](std::uint64_t, const explore::Schedule&) { ++callbacks; });
  const double enum_seconds = seconds_since(enum_start);
  const bool counts_ok = counts.total == space &&
                         counts.visited + counts.pruned == counts.total &&
                         counts.visited == callbacks;
  const double pruning_ratio =
      counts.total > 0
          ? static_cast<double>(counts.pruned) /
                static_cast<double>(counts.total)
          : 0.0;
  const double enum_rate =
      enum_seconds > 0.0 ? static_cast<double>(counts.total) / enum_seconds
                         : 0.0;
  std::printf("enumeration: %llu schedules (%llu visited, %llu pruned, "
              "%.1f%% pruned)  %.3f s  %.0f schedules/sec\n",
              static_cast<unsigned long long>(counts.total),
              static_cast<unsigned long long>(counts.visited),
              static_cast<unsigned long long>(counts.pruned),
              100.0 * pruning_ratio, enum_seconds, enum_rate);

  // --- simulation pass (the example spec, end to end) -------------------
  const scenario::ExploreContext ctx = example_context();
  const std::uint64_t sim_space = explore::count_space(ctx.domain);
  std::uint64_t simulated = 0;
  double worst = 0.0;
  double sim_seconds_total = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    explore::for_each_schedule(
        ctx.domain,
        [&](std::uint64_t, const explore::Schedule& schedule) {
          const double value = scenario::explore_value(
              ctx, scenario::run_explore_schedule(ctx, schedule));
          if (value > worst) worst = value;
          ++simulated;
        });
    const double seconds = seconds_since(start);
    sim_seconds_total += seconds;
    metrics_scope.add_wall_ms(seconds * 1000.0);
  }
  const double sim_rate = sim_seconds_total > 0.0
                              ? static_cast<double>(simulated) /
                                    sim_seconds_total
                              : 0.0;
  std::printf("simulation:  %llu-schedule space, %zu rep(s), worst %s = "
              "%.2f  %.3f s  %.1f schedules/sec\n",
              static_cast<unsigned long long>(sim_space), reps,
              explore::to_string(ctx.objective), worst, sim_seconds_total,
              sim_rate);

  metrics_scope.knob("templates", domain.templates.size());
  metrics_scope.knob("grid", domain.ticks.size());
  metrics_scope.knob("max_faults", domain.max_faults);
  metrics_scope.knob("enum_total", static_cast<std::int64_t>(counts.total));
  metrics_scope.knob("enum_visited",
                     static_cast<std::int64_t>(counts.visited));
  metrics_scope.knob("pruning_ratio", pruning_ratio);
  metrics_scope.knob("enum_schedules_per_sec", enum_rate);
  metrics_scope.knob("sim_schedules", static_cast<std::int64_t>(sim_space));
  metrics_scope.knob("sim_schedules_per_sec", sim_rate);

  bench::verdict(counts_ok && pruning_ratio > 0.0 && worst > 0.0,
                 "exact space coverage (visited + pruned == closed form), "
                 "nonzero pruning, and a worst schedule strictly above zero");
  return counts_ok ? 0 : 1;
}
