// Ablation: the fixed-lane allocation assumption (DESIGN.md). The paper's
// Fig. 3 result — top performers keep few partners — hinges on a protocol's
// partner-slot count k being a FIXED divisor of upload capacity, so unfilled
// slots waste bandwidth. This bench re-runs the k sweep under the idealized
// alternative (capacity divides among the partners actually selected) and
// shows the low-k advantage disappears, justifying the modeling choice.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "swarming/protocol.hpp"
#include "swarming/simulator.hpp"
#include "util/env.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarming;

namespace {

double performance_at(int k, LaneModel model, RankingFunction ranking,
                      std::size_t rounds) {
  ProtocolSpec spec;
  spec.stranger_policy = StrangerPolicy::kWhenNeeded;
  spec.stranger_slots = 1;
  spec.ranking = ranking;
  spec.partner_slots = static_cast<std::uint8_t>(k);
  spec.allocation = AllocationPolicy::kEqualSplit;

  SimulationConfig config;
  config.rounds = rounds;
  config.lane_model = model;
  static const BandwidthDistribution dist = BandwidthDistribution::piatek();
  std::vector<double> runs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    config.seed = seed;
    runs.push_back(run_homogeneous_throughput(spec, 50, config, dist));
  }
  return stats::mean(runs);
}

}  // namespace

int main() {
  ::dsa::bench::MetricsScope metrics_scope("ablation_lanes");
  bench::banner(
      "Ablation — fixed partner lanes vs divide-among-selected",
      "(methodology check) Fig. 3's low-k performance advantage requires "
      "the fixed-lane reading of the protocol's slot count");

  const auto rounds =
      static_cast<std::size_t>(util::env_int("DSA_ROUNDS", 200));

  for (RankingFunction ranking :
       {RankingFunction::kLoyal, RankingFunction::kFastest}) {
    std::printf("\nRanking %s, When-needed(h=1), Equal Split — population "
                "throughput (KBps) by k:\n",
                to_string(ranking).c_str());
    util::TablePrinter table({"lane model", "k=1", "k=3", "k=5", "k=7",
                              "k=9", "k=1 minus k=9"});
    double gap[2] = {0.0, 0.0};
    int model_index = 0;
    for (LaneModel model :
         {LaneModel::kFixedLanes, LaneModel::kDivideAmongSelected}) {
      std::vector<std::string> cells;
      cells.push_back(model == LaneModel::kFixedLanes
                          ? "fixed lanes (paper)"
                          : "divide among selected");
      double first = 0.0, last = 0.0;
      for (int k : {1, 3, 5, 7, 9}) {
        const double perf = performance_at(k, model, ranking, rounds);
        if (k == 1) first = perf;
        if (k == 9) last = perf;
        cells.push_back(util::fixed(perf, 1));
      }
      gap[model_index++] = first - last;
      cells.push_back(util::fixed(first - last, 1));
      table.add_row(cells);
    }
    table.print(std::cout);
    std::printf("  low-k advantage: fixed lanes %+.1f KBps vs idealized "
                "%+.1f KBps\n",
                gap[0], gap[1]);
  }

  std::printf("\n");
  bench::verdict(true,
                 "see the per-ranking gaps above: the fixed-lane model "
                 "preserves a low-k advantage that the idealized model "
                 "shrinks or removes");
  return 0;
}
