// Sec. 4.4 (in-text): performance of the space under churn rates 0.01 and
// 0.1 per round — low-partner-count protocols remain the best performers.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/pra.hpp"
#include "stats/descriptive.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/pra_dataset.hpp"
#include "util/env.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

using namespace dsa;
using namespace dsa::swarming;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("churn");
  bench::banner(
      "Sec. 4.4 — homogeneous performance under churn (rates 0.01 and 0.1)",
      "even under churn it is still the protocols with a low number of "
      "partners that perform best");

  // A deterministic 1-in-3 sample of the space keeps this bench minutes-
  // scale; DSA_CHURN_STRIDE=1 sweeps all 3270 protocols.
  const auto stride = static_cast<std::size_t>(
      util::env_int("DSA_CHURN_STRIDE", 3));
  const auto rounds =
      static_cast<std::size_t>(util::env_int("DSA_ROUNDS", 120));
  const auto runs =
      static_cast<std::size_t>(util::env_int("DSA_PERF_RUNS", 2));

  std::vector<std::uint32_t> members;
  for (std::uint32_t id = 0; id < kProtocolCount; id += stride) {
    members.push_back(id);
  }

  const auto bandwidths = BandwidthDistribution::piatek();

  for (double churn : {0.01, 0.1}) {
    SimulationConfig sim;
    sim.rounds = rounds;
    sim.churn_rate = churn;
    const SwarmingModel model(sim, bandwidths);

    std::vector<double> perf(members.size());
    util::ThreadPool pool;
    pool.parallel_for(members.size(), [&](std::size_t i) {
      double total = 0.0;
      for (std::size_t run = 0; run < runs; ++run) {
        total += model.homogeneous_utility(
            members[i], 50, core::derive_seed(2011, 0xC0, members[i], run));
      }
      perf[i] = total / static_cast<double>(runs);
    });

    // Mean performance per partner count, plus top-10 anatomy.
    double sum_by_k[10] = {};
    std::size_t count_by_k[10] = {};
    std::vector<std::size_t> order(members.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return perf[a] > perf[b]; });
    for (std::size_t i = 0; i < members.size(); ++i) {
      const auto k = decode_protocol(members[i]).partner_slots;
      sum_by_k[k] += perf[i];
      ++count_by_k[k];
    }

    std::printf("\nChurn rate %.2f (%zu protocols sampled, %zu runs each):\n",
                churn, members.size(), runs);
    util::TablePrinter table({"k", "protocols", "mean throughput (KBps)"});
    for (int k = 0; k <= 9; ++k) {
      table.add_row({std::to_string(k), std::to_string(count_by_k[k]),
                     count_by_k[k] ? util::fixed(sum_by_k[k] / count_by_k[k], 1)
                                   : "-"});
    }
    table.print(std::cout);

    double top20_mean_k = 0.0;
    std::printf("  top 10 performers:\n");
    for (std::size_t i = 0; i < 10; ++i) {
      const auto spec = decode_protocol(members[order[i]]);
      std::printf("    %2zu. %7.1f KBps  %s\n", i + 1, perf[order[i]],
                  spec.describe().c_str());
    }
    for (std::size_t i = 0; i < 20; ++i) {
      top20_mean_k += decode_protocol(members[order[i]]).partner_slots;
    }
    top20_mean_k /= 20.0;
    double all_mean_k = 0.0;
    for (std::uint32_t id : members) {
      all_mean_k += decode_protocol(id).partner_slots;
    }
    all_mean_k /= static_cast<double>(members.size());
    std::printf("  mean k of top-20: %.2f vs space mean %.2f\n", top20_mean_k,
                all_mean_k);
    bench::verdict(top20_mean_k < all_mean_k,
                   "low partner counts still dominate the top performers at "
                   "churn " + util::fixed(churn, 2));
  }
  return 0;
}
