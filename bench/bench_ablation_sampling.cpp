// Ablation: how many sampled opponents does the scaled-down tournament need
// before robustness estimates stabilize? Validates the DSA_OPPONENTS
// substitution for the paper's exhaustive (all-opponents) tournaments.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/pra.hpp"
#include "core/subspace.hpp"
#include "stats/correlation.hpp"
#include "swarming/dsa_model.hpp"
#include "util/env.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarming;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("ablation_sampling");
  bench::banner(
      "Ablation — opponent-sample size vs robustness estimate quality",
      "(methodology check, not a paper figure) sampled tournaments must "
      "correlate strongly with a denser reference tournament");

  const auto rounds =
      static_cast<std::size_t>(util::env_int("DSA_ROUNDS", 120));
  const auto subspace_size = static_cast<std::size_t>(
      util::env_int("DSA_ABLATION_PROTOCOLS", 64));

  // Deterministic spread of protocols across the space.
  std::vector<std::uint32_t> members;
  for (std::size_t i = 0; i < subspace_size; ++i) {
    members.push_back(static_cast<std::uint32_t>(
        (i * 2654435761u) % kProtocolCount));
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());

  SimulationConfig sim;
  sim.rounds = rounds;
  const SwarmingModel model(sim, BandwidthDistribution::piatek());
  const core::SubspaceModel subset(model, members);

  auto tournament_at = [&](std::size_t opponents, std::size_t runs) {
    core::PraConfig config;
    config.performance_runs = 1;
    config.encounter_runs = runs;
    config.opponent_sample = opponents;  // 0 = all
    config.seed = 2011;
    return core::PraEngine(subset, config).tournament(0.5);
  };

  std::fprintf(stderr, "reference tournament (all %zu opponents, 3 runs)...\n",
               members.size() - 1);
  const auto reference = tournament_at(0, 3);

  std::printf("\nCorrelation of sampled tournaments with the dense "
              "reference (%zu protocols):\n",
              members.size());
  util::TablePrinter table(
      {"opponents", "runs", "pearson", "spearman", "mean |error|"});
  bool converges = false;
  for (std::size_t opponents : {4u, 8u, 16u, 24u, 32u}) {
    if (opponents >= members.size() - 1) break;
    std::fprintf(stderr, "sampled tournament (%zu opponents)...\n", opponents);
    const auto sampled = tournament_at(opponents, 1);
    double abs_err = 0.0;
    for (std::size_t i = 0; i < sampled.size(); ++i) {
      abs_err += std::fabs(sampled[i] - reference[i]);
    }
    abs_err /= static_cast<double>(sampled.size());
    const double rho = stats::pearson(sampled, reference);
    table.add_row({std::to_string(opponents), "1", util::fixed(rho, 3),
                   util::fixed(stats::spearman(sampled, reference), 3),
                   util::fixed(abs_err, 3)});
    if (opponents >= 24 && rho > 0.9) converges = true;
  }
  table.print(std::cout);

  std::printf("\n");
  bench::verdict(converges,
                 "the default DSA_OPPONENTS=24 sample tracks the dense "
                 "tournament (rho > 0.9)");
  return 0;
}
