// Figure 4: normalized Robustness histograms per partner count — the mirror
// image of Fig. 3: highly robust protocols maintain MANY partners.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/histogram.hpp"
#include "util/table_printer.hpp"

using namespace dsa;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("fig4_partners_robust");
  bench::banner(
      "Fig. 4 — Robustness-interval x partner-count frequency map",
      "most highly robust protocols keep a high number of partners (the "
      "situation of Fig. 3 reversed)");

  const auto records = bench::dataset();

  stats::FrequencyGrid grid(10, 10);
  for (const auto& rec : records) {
    grid.add(rec.robustness, rec.spec.partner_slots);
  }

  std::printf("\nRow-relative frequencies, rows from high robustness to "
              "low:\n");
  util::TablePrinter table({"robustness", "k=0", "k=1", "k=2", "k=3", "k=4",
                            "k=5", "k=6", "k=7", "k=8", "k=9", "n"});
  for (std::size_t row = grid.rows(); row-- > 0;) {
    std::vector<std::string> cells;
    cells.push_back("[" + util::fixed(grid.row_lower(row), 1) + "," +
                    util::fixed(grid.row_upper(row), 1) + ")");
    for (std::size_t k = 0; k < 10; ++k) {
      cells.push_back(util::fixed(grid.row_relative_frequency(row, k), 2));
    }
    cells.push_back(std::to_string(grid.row_total(row)));
    table.add_row(cells);
  }
  table.print(std::cout);

  // Mean k among the most robust decile vs the space, and the most robust
  // protocol's anatomy.
  std::vector<std::size_t> order(records.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return records[a].robustness > records[b].robustness;
  });
  const std::size_t decile = records.size() / 10;
  double top_decile_k = 0.0, all_k = 0.0;
  for (std::size_t i = 0; i < decile; ++i) {
    top_decile_k += records[order[i]].spec.partner_slots;
  }
  top_decile_k /= static_cast<double>(decile);
  for (const auto& rec : records) all_k += rec.spec.partner_slots;
  all_k /= static_cast<double>(records.size());
  std::printf("\nMean partner count: most-robust decile %.2f vs whole space "
              "%.2f\n",
              top_decile_k, all_k);

  std::printf("\nTop 5 robust protocols:\n");
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& rec = records[order[i]];
    std::printf("  %zu. R=%.3f  %s  (P=%.3f)\n", i + 1, rec.robustness,
                rec.spec.describe().c_str(), rec.performance);
  }
  std::printf("  (paper's most robust protocol keeps 7 partners and combines "
              "When-needed + Sort Fastest + Prop Share)\n");

  bench::verdict(top_decile_k > all_k,
                 "robust protocols carry more partners than the space "
                 "average — the reverse of the performance picture");
  return 0;
}
