// Figure 5: complementary CDF of Robustness per stranger policy — only the
// When-needed policy reaches the very top robustness levels.
//
// Ported to the flight recorder: the dataset layer emits one kPra event per
// protocol and the tables are rendered from that recording by dsa_report —
// the exact code path `dsa_cli report --table fig5` uses, so the two outputs
// are byte-identical (enforced by the recorder golden test). With the
// recorder compiled out (-DDSA_TRACE=OFF) the twin extractor builds the
// same series straight from the PRA records.
#include <cstdio>

#include "common.hpp"
#include "obs/recorder.hpp"
#include "report/report.hpp"

using namespace dsa;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("fig5_stranger_ccdf");
  bench::banner(
      "Fig. 5 — CCDF of Robustness per stranger policy",
      "only protocols using the When-needed stranger policy reach the "
      "highest robustness levels (> 0.99 in the paper's exhaustive run)");

#if DSA_OBS_COMPILED_IN
  // Arm the recorder before touching the dataset so load-or-compute emits
  // the kPra events this bench renders from.
  {
    obs::RecorderOptions options = obs::RecorderOptions::from_environment();
    if (options.level == obs::RecordLevel::kOff) {
      options.level = obs::RecordLevel::kRounds;
    }
    obs::Recorder::global().configure(options);
  }
  [[maybe_unused]] const auto records = bench::dataset();
  const std::vector<obs::Event> events = obs::Recorder::global().snapshot();
  const auto by_policy = report::fig5_robustness_by_policy(
      std::span<const obs::Event>(events));
  bench::save_recording_if_requested();
#else
  const auto records = bench::dataset();
  const auto by_policy = report::fig5_robustness_by_policy(
      std::span<const swarming::PraRecord>(records));
#endif

  const report::Fig5Tables tables = report::render_fig5(by_policy);
  std::fputs(tables.text.c_str(), stdout);

  // The paper's separation: When-needed dominates at the very top and
  // Defect is clearly the worst.
  const bool when_needed_tops =
      tables.max_r[1] >= tables.max_r[0] && tables.max_r[1] >= tables.max_r[2];
  const bool defect_worst = tables.mean_r[2] < tables.mean_r[0] &&
                            tables.mean_r[2] < tables.mean_r[1];
  std::printf("\n");
  bench::verdict(when_needed_tops && defect_worst,
                 "When-needed reaches the top robustness levels; Defect has "
                 "the worst robustness profile");
  return 0;
}
