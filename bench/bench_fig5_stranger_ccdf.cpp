// Figure 5: complementary CDF of Robustness per stranger policy — only the
// When-needed policy reaches the very top robustness levels.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "swarming/protocol.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarming;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("fig5_stranger_ccdf");
  bench::banner(
      "Fig. 5 — CCDF of Robustness per stranger policy",
      "only protocols using the When-needed stranger policy reach the "
      "highest robustness levels (> 0.99 in the paper's exhaustive run)");

  const auto records = bench::dataset();

  std::vector<double> by_policy[3];
  for (const auto& rec : records) {
    if (rec.spec.stranger_slots == 0) continue;  // the h = 0 singleton
    by_policy[static_cast<std::size_t>(rec.spec.stranger_policy)].push_back(
        rec.robustness);
  }

  const char* names[3] = {"Periodic", "WhenNeeded", "Defect"};
  std::printf("\nCCDF series P(R > x):\n");
  util::TablePrinter table({"x", "Periodic", "WhenNeeded", "Defect"});
  std::vector<stats::Ccdf> ccdfs;
  for (int p = 0; p < 3; ++p) ccdfs.emplace_back(by_policy[p]);
  for (int i = 0; i <= 20; ++i) {
    const double x = i / 20.0;
    table.add_row({util::fixed(x, 2), util::fixed(ccdfs[0].at(x), 3),
                   util::fixed(ccdfs[1].at(x), 3),
                   util::fixed(ccdfs[2].at(x), 3)});
  }
  table.print(std::cout);

  std::printf("\nPer-policy robustness summary:\n");
  util::TablePrinter summary(
      {"policy", "n", "mean", "p90", "max"});
  double max_r[3];
  for (int p = 0; p < 3; ++p) {
    max_r[p] = stats::max_value(by_policy[p]);
    summary.add_row({names[p], std::to_string(by_policy[p].size()),
                     util::fixed(stats::mean(by_policy[p]), 3),
                     util::fixed(stats::percentile(by_policy[p], 0.9), 3),
                     util::fixed(max_r[p], 3)});
  }
  summary.print(std::cout);

  // The paper's separation: When-needed dominates at the very top and
  // Defect is clearly the worst.
  const bool when_needed_tops =
      max_r[1] >= max_r[0] && max_r[1] >= max_r[2];
  const bool defect_worst =
      stats::mean(by_policy[2]) < stats::mean(by_policy[0]) &&
      stats::mean(by_policy[2]) < stats::mean(by_policy[1]);
  std::printf("\n");
  bench::verdict(when_needed_tops && defect_worst,
                 "When-needed reaches the top robustness levels; Defect has "
                 "the worst robustness profile");
  return 0;
}
