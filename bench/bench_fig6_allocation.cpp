// Figure 6: Robustness per resource-allocation policy ("bigger circles
// represent better performance" in the paper; we report the joint summary).
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "swarming/protocol.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarming;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("fig6_allocation");
  bench::banner(
      "Fig. 6 — Robustness by resource-allocation policy",
      "Equal Split does well, but only Prop Share reaches the very top "
      "robustness; Freeride is far below both");

  const auto records = bench::dataset();

  std::vector<double> robustness[3], performance[3];
  for (const auto& rec : records) {
    const auto a = static_cast<std::size_t>(rec.spec.allocation);
    robustness[a].push_back(rec.robustness);
    performance[a].push_back(rec.performance);
  }

  const char* names[3] = {"EqualSplit", "PropShare", "Freeride"};
  util::TablePrinter table({"allocation", "n", "R mean", "R p75", "R p95",
                            "R max", "P mean (circle size)"});
  double max_r[3], mean_r[3];
  for (int a = 0; a < 3; ++a) {
    max_r[a] = stats::max_value(robustness[a]);
    mean_r[a] = stats::mean(robustness[a]);
    table.add_row({names[a], std::to_string(robustness[a].size()),
                   util::fixed(mean_r[a], 3),
                   util::fixed(stats::percentile(robustness[a], 0.75), 3),
                   util::fixed(stats::percentile(robustness[a], 0.95), 3),
                   util::fixed(max_r[a], 3),
                   util::fixed(stats::mean(performance[a]), 3)});
  }
  std::printf("\n");
  table.print(std::cout);

  // Which allocation owns the single most robust protocol?
  std::size_t best_idx = 0;
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].robustness > records[best_idx].robustness) best_idx = i;
  }
  std::printf("\nMost robust protocol overall: R=%.3f  %s\n",
              records[best_idx].robustness,
              records[best_idx].spec.describe().c_str());

  const bool propshare_tops = max_r[1] >= max_r[0];
  const bool freeride_worst =
      mean_r[2] < mean_r[0] && mean_r[2] < mean_r[1];
  std::printf("\n");
  bench::verdict(propshare_tops && freeride_worst,
                 "Prop Share reaches at least Equal Split's top robustness "
                 "and Freeride trails both");
  return 0;
}
