// Sec. 4.3.2 (in-text): the 50-50 robustness tournament is validated against
// a 90-10 split ("90% of the peers follow protocol Pi while 10% execute
// other protocols"); the paper reports Pearson rho = 0.97 between the two.
// We reproduce the check over a deterministic sample of the space.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/pra.hpp"
#include "core/subspace.hpp"
#include "stats/correlation.hpp"
#include "swarming/dsa_model.hpp"
#include "util/env.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarming;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("robustness_9010");
  bench::banner(
      "Sec. 4.3.2 — 50-50 vs 90-10 robustness correlation",
      "robustness measured with a 50% invading population predicts "
      "robustness against small (10%) invasions: Pearson rho ~= 0.97");

  const auto sample_size = static_cast<std::size_t>(
      util::env_int("DSA_9010_SAMPLE", 120));
  const auto rounds =
      static_cast<std::size_t>(util::env_int("DSA_ROUNDS", 120));

  // Deterministic, evenly spaced sample of the space.
  std::vector<std::uint32_t> members;
  for (std::size_t i = 0; i < sample_size; ++i) {
    members.push_back(static_cast<std::uint32_t>(
        i * (kProtocolCount / sample_size) % kProtocolCount));
  }

  SimulationConfig sim;
  sim.rounds = rounds;
  const SwarmingModel model(sim, BandwidthDistribution::piatek());
  const core::SubspaceModel subset(model, members);

  core::PraConfig config;
  config.performance_runs = 1;
  config.encounter_runs = 2;
  config.opponent_sample = 24;
  config.seed = 2011;
  const core::PraEngine engine(subset, config);

  std::fprintf(stderr, "running 50-50 tournament over %zu protocols...\n",
               members.size());
  const auto fifty = engine.tournament(0.5);
  std::fprintf(stderr, "running 90-10 tournament...\n");
  const auto ninety = engine.tournament(0.9);

  const double rho = stats::pearson(fifty, ninety);
  const double rank_rho = stats::spearman(fifty, ninety);

  std::printf("\nSampled protocols: %zu | opponents per protocol: %zu | "
              "encounter runs: %zu\n",
              members.size(), config.opponent_sample, config.encounter_runs);
  std::printf("Pearson rho(50-50, 90-10)  = %.4f (paper: 0.97)\n", rho);
  std::printf("Spearman rho(50-50, 90-10) = %.4f\n", rank_rho);

  // A few example rows.
  std::printf("\nfirst 10 sampled protocols (robustness at both splits):\n");
  for (std::size_t i = 0; i < 10 && i < members.size(); ++i) {
    std::printf("  #%-5u 50-50=%.3f 90-10=%.3f  %s\n", members[i], fifty[i],
                ninety[i], subset.protocol_name(static_cast<std::uint32_t>(i))
                               .c_str());
  }

  std::printf("\n");
  bench::verdict(rho > 0.85,
                 "the 50-50 tournament strongly predicts 90-10 outcomes");
  return 0;
}
