// Figure 3: normalized Performance histograms per partner count — the
// "darker squares" frequency map showing that top-performing protocols
// maintain few partners.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/histogram.hpp"
#include "util/table_printer.hpp"

using namespace dsa;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("fig3_partners_perf");
  bench::banner(
      "Fig. 3 — Performance-interval x partner-count frequency map",
      "all top-15 performers keep 1 partner; only 11 of the top 100 keep "
      "more than 2; low partner counts dominate the high-performance rows");

  const auto records = bench::dataset();

  stats::FrequencyGrid grid(10, 10);  // performance deciles x k in 0..9
  for (const auto& rec : records) {
    grid.add(rec.performance, rec.spec.partner_slots);
  }

  std::printf("\nRow-relative frequencies (Fig. 3's square darkness), rows "
              "from high performance to low:\n");
  util::TablePrinter table({"performance", "k=0", "k=1", "k=2", "k=3", "k=4",
                            "k=5", "k=6", "k=7", "k=8", "k=9", "n"});
  for (std::size_t row = grid.rows(); row-- > 0;) {
    std::vector<std::string> cells;
    cells.push_back("[" + util::fixed(grid.row_lower(row), 1) + "," +
                    util::fixed(grid.row_upper(row), 1) + ")");
    for (std::size_t k = 0; k < 10; ++k) {
      cells.push_back(util::fixed(grid.row_relative_frequency(row, k), 2));
    }
    cells.push_back(std::to_string(grid.row_total(row)));
    table.add_row(cells);
  }
  table.print(std::cout);

  // Top-N anatomy, as the paper reports it.
  std::vector<std::size_t> order(records.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return records[a].performance > records[b].performance;
  });
  std::size_t top15_low_k = 0;
  for (std::size_t i = 0; i < 15; ++i) {
    if (records[order[i]].spec.partner_slots <= 2) ++top15_low_k;
  }
  std::size_t top100_over2 = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    if (records[order[i]].spec.partner_slots > 2) ++top100_over2;
  }
  std::printf("\nTop 15 performers with k <= 2: %zu/15 (paper: 15/15 with "
              "k = 1)\n",
              top15_low_k);
  std::printf("Top 100 performers with k > 2: %zu/100 (paper: 11/100)\n",
              top100_over2);
  std::printf("\nTop 5 performers:\n");
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& rec = records[order[i]];
    std::printf("  %zu. P=%.3f  %s\n", i + 1, rec.performance,
                rec.spec.describe().c_str());
  }

  // Mean k among the top decile vs the space.
  double top_decile_k = 0.0, all_k = 0.0;
  const std::size_t decile = records.size() / 10;
  for (std::size_t i = 0; i < decile; ++i) {
    top_decile_k += records[order[i]].spec.partner_slots;
  }
  top_decile_k /= static_cast<double>(decile);
  for (const auto& rec : records) all_k += rec.spec.partner_slots;
  all_k /= static_cast<double>(records.size());
  std::printf("\nMean partner count: top decile %.2f vs whole space %.2f\n",
              top_decile_k, all_k);

  bench::verdict(top15_low_k >= 10 && top_decile_k < all_k,
                 "the high-performance region is dominated by low partner "
                 "counts");
  return 0;
}
