// Table 3: multiple linear regression of the PRA measures over the whole
// design space. Regressors follow the paper: standardized log partner/
// stranger counts (we use log(k+1), log(h+1) so the k=0 / h=0 singletons
// stay in the sample, then standardize) and dummy variables against the
// baselines B1 Periodic, C1 TFT, I1 Sort Fastest, R1 Equal Split.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "stats/regression.hpp"
#include "swarming/protocol.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarming;

namespace {

struct Row {
  std::vector<double> regressors;
  double performance, robustness, aggressiveness;
};

}  // namespace

int main() {
  ::dsa::bench::MetricsScope metrics_scope("table3_regression");
  bench::banner(
      "Table 3 — OLS regression of P / R / A on the design dimensions",
      "Freeride (R3) hurts all measures most; Defect strangers (B3) "
      "devastates robustness; more strangers (log h) helps everything; "
      "more partners (log k) helps R and A; TF2T (C2) is consistently "
      "negative");

  const auto records = bench::dataset();

  const std::vector<std::string> names = {
      "log(k~)", "log(h~)", "B2", "B3", "C2",
      "I2",      "I3",      "I4", "I5", "I6",
      "R2",      "R3"};

  // Build raw columns, then standardize the two numerical ones.
  std::vector<double> log_k, log_h;
  for (const auto& rec : records) {
    log_k.push_back(std::log(1.0 + rec.spec.partner_slots));
    log_h.push_back(std::log(1.0 + rec.spec.stranger_slots));
  }
  const auto z_k = stats::standardize(log_k);
  const auto z_h = stats::standardize(log_h);

  std::vector<Row> rows;
  rows.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ProtocolSpec& s = records[i].spec;
    Row row;
    row.regressors = {
        z_k[i],
        z_h[i],
        s.stranger_slots > 0 &&
                s.stranger_policy == StrangerPolicy::kWhenNeeded
            ? 1.0
            : 0.0,
        s.stranger_slots > 0 && s.stranger_policy == StrangerPolicy::kDefect
            ? 1.0
            : 0.0,
        s.window == CandidateWindow::kTf2t ? 1.0 : 0.0,
        s.ranking == RankingFunction::kSlowest ? 1.0 : 0.0,
        s.ranking == RankingFunction::kProximity ? 1.0 : 0.0,
        s.ranking == RankingFunction::kAdaptive ? 1.0 : 0.0,
        s.ranking == RankingFunction::kLoyal ? 1.0 : 0.0,
        s.ranking == RankingFunction::kRandom ? 1.0 : 0.0,
        s.allocation == AllocationPolicy::kPropShare ? 1.0 : 0.0,
        s.allocation == AllocationPolicy::kFreeride ? 1.0 : 0.0,
    };
    row.performance = records[i].performance;
    row.robustness = records[i].robustness;
    row.aggressiveness = records[i].aggressiveness;
    rows.push_back(std::move(row));
  }

  auto fit_for = [&](auto response) {
    stats::OlsModel model(names);
    for (const Row& row : rows) model.add(row.regressors, response(row));
    return model.fit();
  };
  const auto perf_fit = fit_for([](const Row& r) { return r.performance; });
  const auto robust_fit = fit_for([](const Row& r) { return r.robustness; });
  const auto aggr_fit =
      fit_for([](const Row& r) { return r.aggressiveness; });

  std::printf("\nadj. R^2: Performance %.2f | Robustness %.2f | "
              "Aggressiveness %.2f (paper: 0.68 / 0.52 / 0.61)\n\n",
              perf_fit.adjusted_r_squared, robust_fit.adjusted_r_squared,
              aggr_fit.adjusted_r_squared);

  util::TablePrinter table({"variable", "P est", "P t", "P sig", "R est",
                            "R t", "R sig", "A est", "A t", "A sig"});
  auto sig = [](const stats::Coefficient& c) {
    return c.significant_at(0.001) ? std::string("OK") : std::string("-");
  };
  std::vector<std::string> all_names = {"(intercept)"};
  all_names.insert(all_names.end(), names.begin(), names.end());
  for (const auto& name : all_names) {
    const auto& p = perf_fit.coefficient(name);
    const auto& r = robust_fit.coefficient(name);
    const auto& a = aggr_fit.coefficient(name);
    table.add_row({name, util::fixed(p.estimate, 3), util::fixed(p.t_value, 1),
                   sig(p), util::fixed(r.estimate, 3),
                   util::fixed(r.t_value, 1), sig(r),
                   util::fixed(a.estimate, 3), util::fixed(a.t_value, 1),
                   sig(a)});
  }
  table.print(std::cout);

  // The paper's headline sign pattern.
  const bool freeride_worst =
      perf_fit.coefficient("R3").estimate < 0 &&
      robust_fit.coefficient("R3").estimate < 0 &&
      aggr_fit.coefficient("R3").estimate < 0;
  const bool defect_hurts_robustness =
      robust_fit.coefficient("B3").estimate < 0;
  const bool strangers_help =
      perf_fit.coefficient("log(h~)").estimate > 0 &&
      robust_fit.coefficient("log(h~)").estimate > 0 &&
      aggr_fit.coefficient("log(h~)").estimate > 0;
  const bool partners_help_robustness =
      robust_fit.coefficient("log(k~)").estimate > 0 &&
      aggr_fit.coefficient("log(k~)").estimate > 0;

  std::printf("\nSign checks vs the paper:\n");
  std::printf("  R3 negative for P, R, A:       %s\n",
              freeride_worst ? "yes" : "NO");
  std::printf("  B3 negative for Robustness:    %s\n",
              defect_hurts_robustness ? "yes" : "NO");
  std::printf("  log(h) positive for P, R, A:   %s\n",
              strangers_help ? "yes" : "NO");
  std::printf("  log(k) positive for R and A:   %s\n",
              partners_help_robustness ? "yes" : "NO");

  std::printf("\n");
  bench::verdict(freeride_worst && defect_hurts_robustness && strangers_help,
                 "the dominant coefficient signs of Table 3 reproduce");
  return 0;
}
