// Figure 2: scatter of all 3270 protocols, Robustness vs Performance, with
// marginal histograms; plus the in-text analyses tied to it — the freerider
// clusters, the best-performing protocol's anatomy, and Birds' placement in
// the space (Sec. 4.4.2).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/histogram.hpp"
#include "swarming/protocol.hpp"
#include "util/csv.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarming;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("fig2_scatter");
  bench::banner(
      "Fig. 2 — Robustness vs Performance scatter over all 3270 protocols",
      "freeriders crowd the low-P/low-R corner (perf <= ~0.31 for "
      "partner-freeriders); some protocols reach both P and R above 0.8; "
      "Birds ranks high in P (~0.83) and upper-quartile in R");

  const auto records = bench::dataset();

  // Machine-readable scatter (also saved by the dataset cache itself).
  std::printf("\nscatter rows: protocol,performance,robustness (first 10 of %zu "
              "shown; full data in the PRA dataset CSV)\n",
              records.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(records.size(), 10); ++i) {
    std::printf("  %u,%s,%s\n", records[i].protocol,
                util::fixed(records[i].performance, 4).c_str(),
                util::fixed(records[i].robustness, 4).c_str());
  }

  // Marginal histograms, 10 bins each (the side panels of Fig. 2).
  stats::Histogram1D perf_hist(10, 0.0, 1.0);
  stats::Histogram1D robust_hist(10, 0.0, 1.0);
  for (const auto& rec : records) {
    perf_hist.add(rec.performance);
    robust_hist.add(rec.robustness);
  }
  std::printf("\nMarginal histograms (protocol counts per decile):\n");
  util::TablePrinter hist({"interval", "performance", "robustness"});
  for (std::size_t bin = 0; bin < 10; ++bin) {
    hist.add_row({"[" + util::fixed(perf_hist.bin_lower(bin), 1) + "," +
                      util::fixed(perf_hist.bin_upper(bin), 1) + ")",
                  std::to_string(perf_hist.count(bin)),
                  std::to_string(robust_hist.count(bin))});
  }
  hist.print(std::cout);

  // Freerider analysis (Sec. 4.4). Partner-freeriders = Freeride allocation.
  double max_freerider_perf = 0.0;
  std::size_t freeriders_low_corner = 0, freerider_count = 0;
  for (const auto& rec : records) {
    if (rec.spec.allocation != AllocationPolicy::kFreeride) continue;
    ++freerider_count;
    max_freerider_perf = std::max(max_freerider_perf, rec.performance);
    if (rec.performance <= 0.4 && rec.robustness <= 0.4) {
      ++freeriders_low_corner;
    }
  }
  std::printf("\nPartner-freeriders (Freeride allocation): %zu protocols, "
              "max performance %.3f (paper: ~0.31), %zu in the low-P/low-R "
              "corner\n",
              freerider_count, max_freerider_perf, freeriders_low_corner);

  // Best performer's anatomy.
  const auto best = std::max_element(
      records.begin(), records.end(),
      [](const auto& a, const auto& b) { return a.performance < b.performance; });
  std::printf("\nBest-performing protocol: #%u  %s\n  P=%.3f R=%.3f A=%.3f\n",
              best->protocol, best->spec.describe().c_str(),
              best->performance, best->robustness, best->aggressiveness);
  std::printf("  (paper's best performer: Defect strangers + Sort Slowest + "
              "1 partner; see EXPERIMENTS.md for the measured anatomy)\n");

  // High-P/high-R protocols (the paper finds 9, all Sort Loyal).
  std::size_t both_high = 0, both_high_loyal = 0;
  for (const auto& rec : records) {
    if (rec.performance > 0.8 && rec.robustness > 0.8) {
      ++both_high;
      if (rec.spec.ranking == RankingFunction::kLoyal) ++both_high_loyal;
    }
  }
  std::printf("\nProtocols with P > 0.8 AND R > 0.8: %zu (of which Sort "
              "Loyal: %zu) — paper: 9, all Sort Loyal\n",
              both_high, both_high_loyal);

  // Birds placement (Sec. 4.4.2): best variant that ranks by Proximity with
  // Equal Split.
  double birds_best_p = 0.0, birds_best_r = 0.0, birds_best_a = 0.0;
  for (const auto& rec : records) {
    if (rec.spec.ranking != RankingFunction::kProximity ||
        rec.spec.partner_slots == 0) {
      continue;
    }
    if (rec.spec.allocation == AllocationPolicy::kEqualSplit) {
      birds_best_p = std::max(birds_best_p, rec.performance);
    }
    birds_best_r = std::max(birds_best_r, rec.robustness);
    birds_best_a = std::max(birds_best_a, rec.aggressiveness);
  }
  auto rank_of = [&records](double value, auto metric) {
    std::size_t better = 0;
    for (const auto& rec : records) {
      if (metric(rec) > value) ++better;
    }
    return better + 1;
  };
  const std::size_t birds_p_rank = rank_of(
      birds_best_p, [](const PraRecord& r) { return r.performance; });
  const std::size_t birds_r_rank =
      rank_of(birds_best_r, [](const PraRecord& r) { return r.robustness; });
  const std::size_t birds_a_rank = rank_of(
      birds_best_a, [](const PraRecord& r) { return r.aggressiveness; });
  std::printf("\nBirds in the space (best Proximity variants):\n");
  std::printf("  Performance %.3f (rank %zu; paper: 0.83, rank 30)\n",
              birds_best_p, birds_p_rank);
  std::printf("  Robustness  %.3f (rank %zu; paper: 0.76, rank 714)\n",
              birds_best_r, birds_r_rank);
  std::printf("  Aggressiveness %.3f (rank %zu; paper: 0.74, rank 630)\n",
              birds_best_a, birds_a_rank);

  std::printf("\n");
  bench::verdict(
      max_freerider_perf < 0.5 && birds_best_p > 0.7 &&
          birds_p_rank < records.size() / 10,
      "freerider ceiling well below the cooperative cluster; Birds places "
      "in the top performance decile");
  return 0;
}
