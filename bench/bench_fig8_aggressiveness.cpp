// Figure 8: Robustness vs Aggressiveness scatter — the two measures are
// strongly linearly correlated (Pearson ~0.96 in the paper), so robust
// protocols are also aggressive.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/correlation.hpp"
#include "stats/histogram.hpp"
#include "util/table_printer.hpp"

using namespace dsa;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("fig8_aggressiveness");
  bench::banner(
      "Fig. 8 — Robustness vs Aggressiveness scatter",
      "Robustness and Aggressiveness are linearly correlated with Pearson "
      "rho ~= 0.96; conclusions about Robustness carry over");

  const auto records = bench::dataset();

  std::vector<double> robustness, aggressiveness;
  robustness.reserve(records.size());
  for (const auto& rec : records) {
    robustness.push_back(rec.robustness);
    aggressiveness.push_back(rec.aggressiveness);
  }

  const double rho = stats::pearson(robustness, aggressiveness);
  const double rank_rho = stats::spearman(robustness, aggressiveness);
  std::printf("\nPearson correlation:  %.4f (paper: 0.96)\n", rho);
  std::printf("Spearman correlation: %.4f\n", rank_rho);

  // A coarse 2-D density table as the textual scatter.
  std::printf("\nJoint density (robustness rows x aggressiveness columns, "
              "counts):\n");
  constexpr std::size_t kBins = 5;
  std::size_t grid[kBins][kBins] = {};
  for (std::size_t i = 0; i < robustness.size(); ++i) {
    auto bin = [](double v) {
      auto b = static_cast<std::size_t>(v * kBins);
      return std::min(b, kBins - 1);
    };
    ++grid[bin(robustness[i])][bin(aggressiveness[i])];
  }
  util::TablePrinter table(
      {"R \\ A", "[0,.2)", "[.2,.4)", "[.4,.6)", "[.6,.8)", "[.8,1]"});
  for (std::size_t r = kBins; r-- > 0;) {
    std::vector<std::string> cells;
    cells.push_back("[" + util::fixed(r * 0.2, 1) + "," +
                    util::fixed((r + 1) * 0.2, 1) + ")");
    for (std::size_t a = 0; a < kBins; ++a) {
      cells.push_back(std::to_string(grid[r][a]));
    }
    table.add_row(cells);
  }
  table.print(std::cout);

  std::printf("\n");
  bench::verdict(rho > 0.85,
                 "robustness and aggressiveness are strongly linearly "
                 "correlated (rho = " + util::fixed(rho, 3) + ")");
  return 0;
}
