// Figure 10: homogeneous-swarm performance of the five validated clients —
// average download times when every leecher runs the same protocol.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/env.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarm;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("fig10_performance");
  bench::banner(
      "Fig. 10 — homogeneous swarm download times per client",
      "in the paper Sort-S and Birds fare best, Random performs as well as "
      "BitTorrent, and the figure says nothing about robustness");

  const auto runs =
      static_cast<std::size_t>(util::env_int("DSA_SWARM_RUNS", 10));
  SwarmConfig config;

  const std::vector<ClientVariant> variants{
      ClientVariant::kSortSlowest, ClientVariant::kRandomRank,
      ClientVariant::kLoyalWhenNeeded, ClientVariant::kBitTorrent,
      ClientVariant::kBirds};

  util::TablePrinter table({"client", "avg download time (s)", "95% CI"});
  std::vector<double> means;
  for (ClientVariant variant : variants) {
    std::vector<double> times;
    for (std::size_t run = 0; run < runs; ++run) {
      config.seed = 500 + run;
      const auto result = run_mixed_swarm(variant, variant, 25, 50, config);
      times.push_back(
          result.group_mean_time(0, 50, static_cast<double>(config.max_ticks)));
    }
    means.push_back(stats::mean(times));
    table.add_row({to_string(variant), util::fixed(means.back(), 1),
                   "+/- " + util::fixed(stats::ci95_half_width(times), 1)});
  }
  std::printf("\n");
  table.print(std::cout);

  // Shape checks our substrate supports (see EXPERIMENTS.md for the Sort-S
  // deviation): Random ~ BitTorrent, Loyal-When-needed ~ BitTorrent.
  const double random_t = means[1], loyal_t = means[2], bt_t = means[3];
  const bool random_close = random_t < bt_t * 1.15 && random_t > bt_t * 0.7;
  const bool loyal_close = loyal_t < bt_t * 1.15;

  std::printf("\n");
  bench::verdict(random_close,
                 "the Random-ranking client performs in BitTorrent's league "
                 "(paper: 'performs as well as BitTorrent')");
  bench::verdict(loyal_close,
                 "Loyal-When-needed matches BitTorrent in a homogeneous "
                 "swarm");
  std::printf(
      "NOTE: Sort-S is the paper's fastest homogeneous swarm; on this "
      "substrate its serve-one-peer-at-a-time behavior interacts badly with "
      "leave-on-completion and it finishes last. Documented in "
      "EXPERIMENTS.md.\n");
  return 0;
}
