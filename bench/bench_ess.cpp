// Extension: the Evolutionary-Stability quantification (a second DSA
// solution concept, cf. Sec. 3.2's "other solution concepts within DSA
// could also be devised"). Measures how strongly ESS stability agrees with
// PRA Robustness over a protocol sample, and reports the stability of the
// paper's named protocols with their most successful invaders.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/ess.hpp"
#include "stats/correlation.hpp"
#include "swarming/dsa_model.hpp"
#include "util/env.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarming;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("ess");
  bench::banner(
      "Extension — ESS stability vs PRA robustness",
      "(no paper counterpart) a protocol that wins 50-50 tournaments should "
      "also resist small mutant groups; the two solution concepts must "
      "broadly agree");

  SimulationConfig sim;
  sim.rounds = static_cast<std::size_t>(util::env_int("DSA_ROUNDS", 120));
  const SwarmingModel model(sim, BandwidthDistribution::piatek());

  core::EssConfig config;
  config.mutant_sample =
      static_cast<std::size_t>(util::env_int("DSA_OPPONENTS", 24));
  const core::EssQuantifier ess(model, config);

  // Stability of the named protocols, with their strongest invaders.
  std::printf("\nStability of the paper's named protocols (10%% mutant "
              "groups, %zu sampled mutants):\n",
              config.mutant_sample);
  util::TablePrinter named({"protocol", "stability", "example invader"});
  const std::pair<const char*, ProtocolSpec> protocols[] = {
      {"BitTorrent", bittorrent_protocol()},
      {"Birds", birds_protocol()},
      {"Loyal-When-needed", loyal_when_needed_protocol()},
      {"Sort-S", sort_s_protocol()},
  };
  for (const auto& [name, spec] : protocols) {
    const auto result = ess.stability_of(encode_protocol(spec));
    std::string invader = "-";
    if (!result.invaders.empty()) {
      invader = decode_protocol(result.invaders.front().mutant).describe();
    }
    named.add_row({name, util::fixed(result.stability, 3), invader});
  }
  named.print(std::cout);

  // Correlation with PRA robustness over the shared dataset sample.
  const auto records = bench::dataset();
  const auto stride = static_cast<std::size_t>(
      util::env_int("DSA_ESS_STRIDE", 40));
  std::vector<double> stability_values, robustness_values;
  for (std::size_t i = 0; i < records.size(); i += stride) {
    stability_values.push_back(
        ess.stability_of(records[i].protocol).stability);
    robustness_values.push_back(records[i].robustness);
  }
  const double rho = stats::pearson(stability_values, robustness_values);
  const double rank_rho =
      stats::spearman(stability_values, robustness_values);
  std::printf("\nAgreement over %zu sampled protocols: Pearson %.3f, "
              "Spearman %.3f\n",
              stability_values.size(), rho, rank_rho);

  bench::verdict(rho > 0.6,
                 "the two solution concepts rank protocols consistently");
  return 0;
}
