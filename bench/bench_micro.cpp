// Microbenchmarks (google-benchmark): throughput of the two simulators and
// the PRA engine's building blocks. These calibrate the DSA_* scale knobs —
// the figure benches' wall-clock cost is (simulations) x (time/run) measured
// here.
#include <benchmark/benchmark.h>

#include "core/pra.hpp"
#include "swarm/swarm_sim.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/simulator.hpp"

namespace {

using namespace dsa;

void BM_RoundSimHomogeneous(benchmark::State& state) {
  const auto rounds = static_cast<std::size_t>(state.range(0));
  swarming::SimulationConfig config;
  config.rounds = rounds;
  const auto bandwidths = swarming::BandwidthDistribution::piatek();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(swarming::run_homogeneous_throughput(
        swarming::bittorrent_protocol(), 50, config, bandwidths));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rounds) * 50);
}
BENCHMARK(BM_RoundSimHomogeneous)->Arg(120)->Arg(500);

void BM_RoundSimEncounter(benchmark::State& state) {
  swarming::SimulationConfig config;
  config.rounds = static_cast<std::size_t>(state.range(0));
  const auto bandwidths = swarming::BandwidthDistribution::piatek();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(
        swarming::run_encounter(swarming::bittorrent_protocol(),
                                swarming::loyal_when_needed_protocol(), 25, 25,
                                config, bandwidths));
  }
}
BENCHMARK(BM_RoundSimEncounter)->Arg(120)->Arg(500);

void BM_SwarmDownload(benchmark::State& state) {
  swarm::SwarmConfig config;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(
        swarm::run_mixed_swarm(swarm::ClientVariant::kBitTorrent,
                               swarm::ClientVariant::kBirds, 25, 50, config));
  }
}
BENCHMARK(BM_SwarmDownload);

void BM_ProtocolCodec(benchmark::State& state) {
  std::uint32_t id = 0;
  for (auto _ : state) {
    const auto spec = swarming::decode_protocol(id);
    benchmark::DoNotOptimize(swarming::encode_protocol(spec));
    id = (id + 1) % swarming::kProtocolCount;
  }
}
BENCHMARK(BM_ProtocolCodec);

}  // namespace

BENCHMARK_MAIN();
