// Microbenchmarks (google-benchmark): throughput of the two simulators and
// the PRA engine's building blocks. These calibrate the DSA_* scale knobs —
// the figure benches' wall-clock cost is (simulations) x (time/run) measured
// here.
//
// The round-model benchmarks run the sparse production engine, the dense
// reference engine, and the batch-lockstep engine side-by-side, and main()
// first asserts all three produce bit-for-bit identical outcomes on a
// churning mixed population — a cheap guard against silent divergence that
// runs every time the bench does.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "common.hpp"
#include "core/pra.hpp"
#include "swarm/swarm_sim.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/simulator.hpp"

namespace {

using namespace dsa;

swarming::SimEngine engine_arg(std::int64_t value) {
  switch (value) {
    case 1:
      return swarming::SimEngine::kDense;
    case 2:
      return swarming::SimEngine::kBatch;
    default:
      return swarming::SimEngine::kSparse;
  }
}

void BM_RoundSimHomogeneous(benchmark::State& state) {
  const auto rounds = static_cast<std::size_t>(state.range(0));
  swarming::SimulationConfig config;
  config.rounds = rounds;
  config.engine = engine_arg(state.range(1));
  const auto bandwidths = swarming::BandwidthDistribution::piatek();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(swarming::run_homogeneous_throughput(
        swarming::bittorrent_protocol(), 50, config, bandwidths));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rounds) * 50);
}
BENCHMARK(BM_RoundSimHomogeneous)
    ->ArgNames({"rounds", "engine"})  // engine: 0 sparse, 1 dense, 2 batch
    ->Args({120, 0})
    ->Args({120, 1})
    ->Args({120, 2})
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({500, 2});

void BM_RoundSimEncounter(benchmark::State& state) {
  swarming::SimulationConfig config;
  config.rounds = static_cast<std::size_t>(state.range(0));
  config.engine = engine_arg(state.range(1));
  const auto bandwidths = swarming::BandwidthDistribution::piatek();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(
        swarming::run_encounter(swarming::bittorrent_protocol(),
                                swarming::loyal_when_needed_protocol(), 25, 25,
                                config, bandwidths));
  }
}
BENCHMARK(BM_RoundSimEncounter)
    ->ArgNames({"rounds", "engine"})  // engine: 0 sparse, 1 dense, 2 batch
    ->Args({120, 0})
    ->Args({120, 1})
    ->Args({120, 2})
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({500, 2});

void BM_SwarmDownload(benchmark::State& state) {
  swarm::SwarmConfig config;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(
        swarm::run_mixed_swarm(swarm::ClientVariant::kBitTorrent,
                               swarm::ClientVariant::kBirds, 25, 50, config));
  }
}
BENCHMARK(BM_SwarmDownload);

void BM_ProtocolCodec(benchmark::State& state) {
  std::uint32_t id = 0;
  for (auto _ : state) {
    const auto spec = swarming::decode_protocol(id);
    benchmark::DoNotOptimize(swarming::encode_protocol(spec));
    id = (id + 1) % swarming::kProtocolCount;
  }
}
BENCHMARK(BM_ProtocolCodec);

/// Runs one churning mixed-population config on all three engines and aborts
/// on any outcome difference — the engines' contract is bitwise identity,
/// not mere closeness, so compare with == rather than a tolerance.
void assert_engines_match() {
  swarming::SimulationConfig config;
  config.rounds = 200;
  config.churn_rate = 0.02;
  config.intake_factor = 1.5;
  config.seed = 77;
  const auto bandwidths = swarming::BandwidthDistribution::piatek();
  swarming::ProtocolSpec freerider = swarming::bittorrent_protocol();
  freerider.allocation = swarming::AllocationPolicy::kFreeride;
  std::vector<swarming::ProtocolSpec> protocols;
  protocols.insert(protocols.end(), 20, swarming::bittorrent_protocol());
  protocols.insert(protocols.end(), 20,
                   swarming::loyal_when_needed_protocol());
  protocols.insert(protocols.end(), 10, freerider);
  const std::vector<double> capacities =
      bandwidths.stratified_sample(protocols.size());

  config.engine = swarming::SimEngine::kSparse;
  const auto sparse =
      simulate_rounds(protocols, capacities, config, &bandwidths);
  config.engine = swarming::SimEngine::kDense;
  const auto dense =
      simulate_rounds(protocols, capacities, config, &bandwidths);
  config.engine = swarming::SimEngine::kBatch;
  const auto batch =
      simulate_rounds(protocols, capacities, config, &bandwidths);

  const auto matches = [&](const swarming::SimulationOutcome& other) {
    return sparse.peer_throughput == other.peer_throughput &&
           sparse.peers_replaced == other.peers_replaced;
  };
  if (!matches(dense) || !matches(batch)) {
    std::fprintf(stderr,
                 "FATAL: engines diverged on the guard config (seed=%llu): "
                 "dense %s, batch %s\n",
                 static_cast<unsigned long long>(config.seed),
                 matches(dense) ? "ok" : "DIVERGED",
                 matches(batch) ? "ok" : "DIVERGED");
    std::abort();
  }
  std::fprintf(stderr,
               "[guard] sparse, dense, and batch engine outcomes identical\n");
}

}  // namespace

int main(int argc, char** argv) {
  ::dsa::bench::MetricsScope metrics_scope("micro");
  dsa::bench::runtime_banner();
  assert_engines_match();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
