// Ablation: convergence of the round-based simulator — how many rounds are
// needed before population throughput settles? Justifies running the
// scaled-down PRA sweep at DSA_ROUNDS=120 instead of the paper's 500.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "swarming/protocol.hpp"
#include "swarming/simulator.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarming;

namespace {

/// Mean round throughput over rounds [lo, hi) averaged across seeds.
double window_mean(const ProtocolSpec& spec, std::size_t lo, std::size_t hi) {
  static const BandwidthDistribution dist = BandwidthDistribution::piatek();
  SimulationConfig config;
  config.rounds = hi;
  config.record_round_series = true;
  double total = 0.0;
  constexpr int kSeeds = 4;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    config.seed = static_cast<std::uint64_t>(seed);
    const std::vector<ProtocolSpec> protocols(50, spec);
    const auto outcome = simulate_rounds(
        protocols, dist.stratified_sample(50), config);
    double window = 0.0;
    for (std::size_t r = lo; r < hi; ++r) window += outcome.round_throughput[r];
    total += window / static_cast<double>(hi - lo);
  }
  return total / kSeeds;
}

}  // namespace

int main() {
  ::dsa::bench::MetricsScope metrics_scope("ablation_rounds");
  bench::banner(
      "Ablation — simulator convergence over rounds",
      "(methodology check) by round ~100 the population throughput of every "
      "headline protocol is within a few percent of its 500-round value, so "
      "the quick-scale DSA_ROUNDS=120 preserves the PRA ordering");

  struct Case {
    const char* name;
    ProtocolSpec spec;
  };
  ProtocolSpec robust;
  robust.stranger_policy = StrangerPolicy::kWhenNeeded;
  robust.stranger_slots = 2;
  robust.partner_slots = 7;
  robust.allocation = AllocationPolicy::kPropShare;
  const Case cases[] = {
      {"BitTorrent", bittorrent_protocol()},
      {"Birds", birds_protocol()},
      {"Loyal-When-needed", loyal_when_needed_protocol()},
      {"Sort-S", sort_s_protocol()},
      {"WhenNeeded/PropShare", robust},
  };

  util::TablePrinter table({"protocol", "rounds 20-60", "rounds 80-120",
                            "rounds 200-300", "rounds 400-500",
                            "120 vs 500 gap"});
  bool all_converged = true;
  for (const Case& c : cases) {
    const double early = window_mean(c.spec, 20, 60);
    const double mid = window_mean(c.spec, 80, 120);
    const double late = window_mean(c.spec, 200, 300);
    const double settled = window_mean(c.spec, 400, 500);
    const double gap =
        settled > 0.0 ? (mid - settled) / settled : 0.0;
    if (std::abs(gap) > 0.10) all_converged = false;
    table.add_row({c.name, util::fixed(early, 1), util::fixed(mid, 1),
                   util::fixed(late, 1), util::fixed(settled, 1),
                   util::fixed(100.0 * gap, 1) + "%"});
  }
  std::printf("\nPopulation throughput (KBps) by round window:\n");
  table.print(std::cout);

  std::printf("\n");
  bench::verdict(all_converged,
                 "every headline protocol is within 10% of its settled "
                 "throughput by rounds 80-120");
  return 0;
}
