// Shared helpers for the figure/table bench binaries: PRA dataset access
// (cached in results/pra_results.csv), and small formatting utilities.
//
// Every bench prints (a) a short header with the experiment id and the
// paper's claim, (b) machine-readable series rows, and (c) a summary that
// states whether the claim's *shape* reproduced at the current scale.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "swarming/pra_dataset.hpp"
#include "util/table_printer.hpp"

namespace dsa::bench {

/// Loads (or computes and caches) the PRA dataset at env-configured scale.
inline std::vector<swarming::PraRecord> dataset() {
  return swarming::load_or_compute_pra_dataset(
      swarming::PraDatasetOptions::from_environment());
}

/// Prints the standard bench banner.
inline void banner(const std::string& experiment, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// "REPRODUCED" / "DEVIATION" verdict line.
inline void verdict(bool reproduced, const std::string& detail) {
  std::printf("[%s] %s\n", reproduced ? "REPRODUCED" : "DEVIATION",
              detail.c_str());
}

}  // namespace dsa::bench
