// Shared helpers for the figure/table bench binaries: PRA dataset access
// (cached in results/pra_results.csv), and small formatting utilities.
//
// Every bench prints (a) a short header with the experiment id and the
// paper's claim, (b) machine-readable series rows, and (c) a summary that
// states whether the claim's *shape* reproduced at the current scale.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "swarming/pra_dataset.hpp"
#include "util/env.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace dsa::bench {

/// Metrics collection defaults to on for benches (DSA_METRICS=0 disables it,
/// e.g. when measuring the disabled-path overhead of the obs layer itself).
inline bool metrics_requested() {
  const std::string value = util::env_string("DSA_METRICS", "1");
  return value != "0" && value != "false";
}

/// Writes the process-wide metrics snapshot to results/METRICS_<name>.jsonl
/// (atomically), next to the bench's own results file. No-op when metrics
/// are disabled.
inline void write_metrics(const std::string& name) {
  if (!obs::enabled()) return;
  std::string path = "results/METRICS_";
  path += name;
  path += ".jsonl";
  obs::Registry::global().snapshot().save_jsonl(path);
  std::fprintf(stderr, "[metrics] wrote %s\n", path.c_str());
}

/// RAII guard for bench mains: enables metrics on entry (unless DSA_METRICS=0)
/// and dumps the snapshot on every exit path, including early returns.
struct MetricsScope {
  explicit MetricsScope(std::string name) : name_(std::move(name)) {
    if (metrics_requested()) obs::set_enabled(true);
  }
  ~MetricsScope() { write_metrics(name_); }
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  std::string name_;
};

/// Loads (or computes and caches) the PRA dataset at env-configured scale.
inline std::vector<swarming::PraRecord> dataset() {
  return swarming::load_or_compute_pra_dataset(
      swarming::PraDatasetOptions::from_environment());
}

/// Prints the effective runtime configuration — thread count and every DSA_*
/// scale knob — to stderr, so any captured bench output records the scale it
/// ran at and runs are comparable across machines/PRs.
inline void runtime_banner() {
  const auto options = swarming::PraDatasetOptions::from_environment();
  const std::size_t threads = options.pra.threads == 0
                                  ? util::ThreadPool::default_thread_count()
                                  : options.pra.threads;
  std::fprintf(
      stderr,
      "[config] threads=%zu rounds=%zu population=%zu perf_runs=%zu "
      "encounter_runs=%zu opponents=%zu seed=%llu engine=%s\n",
      threads, options.rounds, options.pra.population,
      options.pra.performance_runs, options.pra.encounter_runs,
      options.pra.opponent_sample,
      static_cast<unsigned long long>(options.pra.seed),
      options.engine == swarming::SimEngine::kDense ? "dense" : "sparse");
}

/// Prints the standard bench banner (and the runtime config to stderr).
inline void banner(const std::string& experiment, const std::string& claim) {
  runtime_banner();
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// "REPRODUCED" / "DEVIATION" verdict line.
inline void verdict(bool reproduced, const std::string& detail) {
  std::printf("[%s] %s\n", reproduced ? "REPRODUCED" : "DEVIATION",
              detail.c_str());
}

}  // namespace dsa::bench
