// Shared helpers for the figure/table bench binaries: PRA dataset access
// (cached in results/pra_results.csv), standardized perf output
// (results/BENCH_<name>.json), and small formatting utilities.
//
// Every bench prints (a) a short header with the experiment id and the
// paper's claim, (b) machine-readable series rows, and (c) a summary that
// states whether the claim's *shape* reproduced at the current scale.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/flame/flame.hpp"
#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/recorder.hpp"
#include "obs/sketch/sketch.hpp"
#include "stats/descriptive.hpp"
#include "swarming/pra_dataset.hpp"
#include "util/env.hpp"
#include "util/fingerprint.hpp"
#include "util/fs.hpp"
#include "util/proc_stat.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace dsa::bench {

/// Metrics collection defaults to on for benches (DSA_METRICS=0 disables it,
/// e.g. when measuring the disabled-path overhead of the obs layer itself).
/// It also gates the BENCH_<name>.json perf summary below.
inline bool metrics_requested() {
  const std::string value = util::env_string("DSA_METRICS", "1");
  return value != "0" && value != "false";
}

/// Output directory for METRICS_*.jsonl and BENCH_*.json files. Defaults to
/// results/; CI's perf-smoke job points it at a scratch directory.
inline std::string metrics_dir() {
  return util::env_string("DSA_METRICS_DIR", "results");
}

/// Writes the process-wide metrics snapshot to
/// <DSA_METRICS_DIR>/METRICS_<name>.jsonl (atomically). No-op when metrics
/// are disabled.
inline void write_metrics(const std::string& name) {
  if (!obs::enabled()) return;
  const std::string path = metrics_dir() + "/METRICS_" + name + ".jsonl";
  obs::Registry::global().snapshot().save_jsonl(path);
  std::fprintf(stderr, "[metrics] wrote %s\n", path.c_str());
}

/// Display name of a simulation engine, for banners and BENCH json.
inline const char* engine_name(swarming::SimEngine engine) {
  switch (engine) {
    case swarming::SimEngine::kDense:
      return "dense";
    case swarming::SimEngine::kBatch:
      return "batch";
    case swarming::SimEngine::kSparse:
      break;
  }
  return "sparse";
}

/// Renders the shared BENCH_<name>.json schema: bench id, the env scale
/// knobs plus any bench-specific ones, engine, threads, and the wall-time
/// distribution over the sample list (median / p10 / p90, milliseconds).
/// tools/bench_compare diffs two of these files (or directories of them).
inline std::string bench_json(
    const std::string& name, const std::vector<double>& wall_ms,
    const std::vector<std::pair<std::string, std::string>>& knobs) {
  const auto options = swarming::PraDatasetOptions::from_environment();
  // End-of-run memory footprint (zeros off-Linux). bench_compare reads only
  // the fields it is asked about, so the extra object never breaks committed
  // baselines.
  const util::ProcStat mem = util::read_proc_stat();
  const std::size_t threads = options.pra.threads == 0
                                  ? util::ThreadPool::default_thread_count()
                                  : options.pra.threads;
  std::ostringstream out;
  out << "{\"type\":\"bench\",\"schema\":1,\"bench\":\""
      << util::json::escape(name) << "\",\"engine\":\""
      << engine_name(options.engine) << "\",\"threads\":" << threads
      << ",\"repetitions\":" << wall_ms.size() << ",\"wall_time_ms\":{"
      << "\"median\":" << util::exact_number(stats::percentile(wall_ms, 0.5))
      << ",\"p10\":" << util::exact_number(stats::percentile(wall_ms, 0.1))
      << ",\"p90\":" << util::exact_number(stats::percentile(wall_ms, 0.9))
      << "},\"mem_kb\":{\"rss\":" << mem.rss_kb
      << ",\"peak\":" << mem.peak_rss_kb << "},\"knobs\":{";
  bool first = true;
  for (const auto& [key, json_value] : knobs) {
    if (!first) out << ',';
    first = false;
    out << '"' << util::json::escape(key) << "\":" << json_value;
  }
  out << "}}\n";
  return std::move(out).str();
}

/// RAII guard for bench mains: enables metrics on entry (unless DSA_METRICS=0)
/// and on every exit path dumps the metrics snapshot plus the
/// BENCH_<name>.json perf summary. Benches with a real repetition loop feed
/// per-repetition wall times through add_wall_ms(); otherwise the scope's
/// own lifetime becomes the single sample.
struct MetricsScope {
  explicit MetricsScope(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    if (metrics_requested()) obs::set_enabled(true);
    // DSA_METRICS_QUANTILES picks the histogram quantiles the metrics
    // snapshot exports; DSA_PROF=on samples this bench's wall-clock stacks
    // into <DSA_METRICS_DIR>/PROF_<name>.folded (unless DSA_PROF_OUT says
    // otherwise).
    obs::set_export_quantiles(obs::quantiles_from_environment());
    obs::FlameOptions prof = obs::FlameOptions::from_environment();
    if (prof.enabled && util::env_string("DSA_PROF_OUT", "").empty()) {
      prof.out = metrics_dir() + "/PROF_" + name_ + ".folded";
    }
    obs::FlameSampler::global().configure(prof);
  }

  /// One timed repetition, in milliseconds (steady-clock measured).
  void add_wall_ms(double ms) { wall_ms_.push_back(ms); }

  /// Bench-specific config knob for the BENCH json. The typed overloads
  /// render the JSON value; keys appear in insertion order.
  void knob(const std::string& key, std::int64_t value) {
    knobs_.emplace_back(key, std::to_string(value));
  }
  void knob(const std::string& key, std::size_t value) {
    knobs_.emplace_back(key, std::to_string(value));
  }
  void knob(const std::string& key, double value) {
    knobs_.emplace_back(key, util::exact_number(value));
  }
  void knob(const std::string& key, const std::string& value) {
    knobs_.emplace_back(key, '"' + util::json::escape(value) + '"');
  }

  ~MetricsScope() {
    // A bench's perf summary must never turn a successful run into a crash:
    // swallow I/O errors (e.g. a missing results/ dir on a read-only mount).
    try {
      if (obs::enabled()) {
        const util::ProcStat mem = util::read_proc_stat();
        obs::Registry::global().gauge("proc.rss_kb").set(
            static_cast<double>(mem.rss_kb));
        obs::Registry::global().gauge("proc.peak_rss_kb").set(
            static_cast<double>(mem.peak_rss_kb));
      }
      write_metrics(name_);
      if (metrics_requested()) {
        if (wall_ms_.empty()) {
          const auto elapsed =
              std::chrono::steady_clock::now() - start_;
          wall_ms_.push_back(
              std::chrono::duration<double, std::milli>(elapsed).count());
        }
        const std::string path =
            metrics_dir() + "/BENCH_" + name_ + ".json";
        util::atomic_write(path, bench_json(name_, wall_ms_, knobs_));
        std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
      }
      if (obs::FlameSampler::global().enabled()) {
        const std::string out =
            obs::FlameSampler::global().options().out.string();
        const std::uint64_t samples =
            obs::FlameSampler::global().stop_and_write();
        if (samples > 0) {
          std::fprintf(stderr, "[prof] %llu samples -> %s\n",
                       static_cast<unsigned long long>(samples), out.c_str());
        }
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "[bench] perf summary failed: %s\n", error.what());
    }
  }
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<double> wall_ms_;
  std::vector<std::pair<std::string, std::string>> knobs_;
};

/// Saves the process-wide flight recording to $DSA_RECORD_OUT when the
/// variable is set and the bench armed the recorder — this is how the
/// committed example recordings under examples/recordings/ were produced.
inline void save_recording_if_requested() {
  const std::string out = util::env_string("DSA_RECORD_OUT", "");
  if (out.empty()) return;
  obs::Recorder::global().save(out);
  std::fprintf(stderr, "[record] %zu events -> %s\n",
               obs::Recorder::global().event_count(), out.c_str());
}

/// Loads (or computes and caches) the PRA dataset at env-configured scale.
inline std::vector<swarming::PraRecord> dataset() {
  return swarming::load_or_compute_pra_dataset(
      swarming::PraDatasetOptions::from_environment());
}

/// Prints the effective runtime configuration — thread count and every DSA_*
/// scale knob — to stderr, so any captured bench output records the scale it
/// ran at and runs are comparable across machines/PRs.
inline void runtime_banner() {
  const auto options = swarming::PraDatasetOptions::from_environment();
  const std::size_t threads = options.pra.threads == 0
                                  ? util::ThreadPool::default_thread_count()
                                  : options.pra.threads;
  std::fprintf(
      stderr,
      "[config] threads=%zu rounds=%zu population=%zu perf_runs=%zu "
      "encounter_runs=%zu opponents=%zu seed=%llu engine=%s\n",
      threads, options.rounds, options.pra.population,
      options.pra.performance_runs, options.pra.encounter_runs,
      options.pra.opponent_sample,
      static_cast<unsigned long long>(options.pra.seed),
      engine_name(options.engine));
}

/// Prints the standard bench banner (and the runtime config to stderr).
inline void banner(const std::string& experiment, const std::string& claim) {
  runtime_banner();
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// "REPRODUCED" / "DEVIATION" verdict line.
inline void verdict(bool reproduced, const std::string& detail) {
  std::printf("[%s] %s\n", reproduced ? "REPRODUCED" : "DEVIATION",
              detail.c_str());
}

}  // namespace dsa::bench
