// Robustness validation: degradation curves of the Sec. 5 swarm clients
// under increasing fault intensity. Each intensity derives a deterministic
// FaultPlan (message loss + leecher crashes + a seeder outage) and the bench
// reports mean download time per client and intensity. Intensity 0 runs the
// exact fault-free configuration of bench_fig10_performance (same seeds,
// empty plan), so its column reproduces today's Sec. 5 numbers bit-for-bit.
//
// Scale knobs:
//   DSA_FAULT_RUNS     swarm repetitions per (client, intensity)  (default 5)
//   DSA_FAULT_HORIZON  tick horizon faults are scheduled within (default 600)
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "fault/fault_plan.hpp"
#include "stats/descriptive.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarm;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("fault_degradation");
  bench::banner(
      "Fault degradation — Sec. 5 clients under injected faults",
      "the incentive designs keep working as conditions degrade; download "
      "times rise smoothly (no cliff) with fault intensity");

  const auto runs =
      static_cast<std::size_t>(util::env_int("DSA_FAULT_RUNS", 5));
  const auto horizon =
      static_cast<std::size_t>(util::env_int("DSA_FAULT_HORIZON", 600));
  const std::vector<double> intensities{0.0, 0.2, 0.5, 0.8};

  const std::vector<ClientVariant> variants{
      ClientVariant::kBitTorrent, ClientVariant::kBirds,
      ClientVariant::kLoyalWhenNeeded, ClientVariant::kSortSlowest,
      ClientVariant::kRandomRank};

  std::vector<std::string> header{"client"};
  for (double intensity : intensities) {
    header.push_back("t@" + util::fixed(intensity, 1) + " (s)");
  }
  header.emplace_back("trend");
  util::TablePrinter table(header);
  util::CsvTable csv({"client", "intensity", "mean_download_s", "ci95_s"});

  bool all_monotone = true;
  bool baseline_positive = true;
  for (ClientVariant variant : variants) {
    std::vector<double> means;
    std::vector<std::string> row{to_string(variant)};
    for (double intensity : intensities) {
      std::vector<double> times;
      for (std::size_t run = 0; run < runs; ++run) {
        SwarmConfig config;
        config.seed = 500 + run;  // bench_fig10's seeds: intensity 0 == Fig 10
        if (intensity > 0.0) {
          fault::FaultSpec spec;
          spec.intensity = intensity;
          spec.seed = 500 + run;
          config.faults = fault::make_fault_plan(spec, 50, horizon);
        }
        const auto result = run_mixed_swarm(variant, variant, 25, 50, config);
        times.push_back(result.group_mean_time(
            0, 50, static_cast<double>(config.max_ticks)));
      }
      means.push_back(stats::mean(times));
      row.push_back(util::fixed(means.back(), 1));
      csv.add_row({to_string(variant), util::format_number(intensity),
                   util::format_number(means.back()),
                   util::format_number(stats::ci95_half_width(times))});
    }
    // Monotone label: downloads must not get *faster* as faults intensify
    // (2% slack absorbs run-to-run noise at bench scale).
    bool monotone = true;
    for (std::size_t i = 1; i < means.size(); ++i) {
      if (means[i] < means[i - 1] * 0.98) monotone = false;
    }
    row.push_back(monotone ? "monotone" : "NON-MONOTONE");
    table.add_row(row);
    all_monotone = all_monotone && monotone;
    baseline_positive = baseline_positive && means.front() > 0.0;
  }

  std::printf("\n");
  table.print(std::cout);
  csv.save("results/fault_degradation.csv");
  std::printf("\nseries written to results/fault_degradation.csv\n");
  std::printf("intensity-0 column = bench_fig10 configuration (empty fault "
              "plan, same seeds)\n");

  std::printf("\n");
  bench::verdict(all_monotone && baseline_positive,
                 "every client's mean download time degrades monotonically "
                 "(within noise) as fault intensity rises — graceful "
                 "degradation, no cliff");
  return all_monotone && baseline_positive ? 0 : 1;
}
