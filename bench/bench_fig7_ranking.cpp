// Figure 7: Robustness per ranking function — Sort Fastest is the most
// robust; Sort Loyal reaches a surprisingly high maximum.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "swarming/protocol.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarming;

int main() {
  ::dsa::bench::MetricsScope metrics_scope("fig7_ranking");
  bench::banner(
      "Fig. 7 — Robustness by ranking function",
      "Sort Fastest protocols are the most robust; the best Sort Loyal "
      "protocol still reaches a very high robustness (0.97 in the paper)");

  const auto records = bench::dataset();

  std::vector<double> robustness[6], performance[6];
  for (const auto& rec : records) {
    if (rec.spec.partner_slots == 0) continue;  // the k = 0 singleton
    const auto r = static_cast<std::size_t>(rec.spec.ranking);
    robustness[r].push_back(rec.robustness);
    performance[r].push_back(rec.performance);
  }

  const char* names[6] = {"Fastest", "Slowest",  "Proximity",
                          "Adaptive", "Loyal", "Random"};
  util::TablePrinter table({"ranking", "n", "R mean", "R p75", "R max",
                            "P mean (circle size)"});
  double max_r[6], mean_r[6];
  for (int r = 0; r < 6; ++r) {
    max_r[r] = stats::max_value(robustness[r]);
    mean_r[r] = stats::mean(robustness[r]);
    table.add_row({names[r], std::to_string(robustness[r].size()),
                   util::fixed(mean_r[r], 3),
                   util::fixed(stats::percentile(robustness[r], 0.75), 3),
                   util::fixed(max_r[r], 3),
                   util::fixed(stats::mean(performance[r]), 3)});
  }
  std::printf("\n");
  table.print(std::cout);

  bool fastest_tops_mean = true;
  for (int r = 1; r < 6; ++r) {
    if (mean_r[0] < mean_r[r]) fastest_tops_mean = false;
  }
  const std::size_t kLoyal = 4;
  const bool loyal_high = max_r[kLoyal] > 0.8;
  std::printf("\nBest Sort Loyal robustness: %.3f (paper: 0.97)\n",
              max_r[kLoyal]);
  bench::verdict(fastest_tops_mean && loyal_high,
                 "Sort Fastest has the strongest robustness profile and "
                 "Sort Loyal still reaches a very high maximum");
  return 0;
}
