// Throughput harness for the PRA sweep's hot path: runs the same flattened
// quantify() batch on the dense reference engine (the seed implementation's
// round model), on the sparse production engine, and on the batch-lockstep
// engine, on the same machine with the same knobs, and emits
// machine-readable before/after numbers to results/BENCH_pra_sweep.json so
// future PRs have a perf trajectory.
//
// The measured batch strides the full 3270-protocol space (SubspaceModel over
// ids 0, S, 2S, ...) rather than taking a contiguous prefix: protocol ids
// enumerate the design space lexicographically, so a prefix is one corner of
// it (small k, no strangers) and badly misrepresents sweep cost.
//
// The sparse engine's advantage grows with population (the terms it removes
// are the O(n^2) ones), so alongside the default-scale sweep the harness
// measures a per-simulation population-scaling series on both engines.
//
// JSON schema (one object):
//   bench            "pra_sweep_throughput"
//   threads          worker threads used
//   knobs            { protocols, stride, rounds, population,
//                      performance_runs, encounter_runs, opponents, seed }
//   modes            [ { engine, simulations, wall_seconds, sims_per_sec }, … ]
//                    (dense first = before, then sparse, then batch)
//   speedup_sparse_vs_dense   sims_per_sec ratio at the default population
//   speedup_batch_vs_sparse   same ratio, batch engine over sparse
//   speedup_batch_vs_dense    same ratio, batch engine over dense
//   scaling          [ { population, dense_ms_per_sim, sparse_ms_per_sim,
//                        speedup, identical }, … ]
//   batch_widths     [ { width, sims_per_sec, speedup_vs_width1 }, … ]
//                    lockstep width scaling of the batch engine alone
//   outcomes_identical        quantify() results bitwise-equal across engines
//   peak_rss_kb      getrusage peak resident set after all passes
//
// Knobs: the DSA_* scale variables (see pra_dataset.hpp) plus
//   DSA_BENCH_PROTOCOLS  protocols in the measured batch (default 64)
//   DSA_BENCH_JSON       output path (default results/BENCH_pra_sweep.json)
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/pra.hpp"
#include "core/subspace.hpp"
#include "obs/recorder.hpp"
#include "swarming/batch_engine.hpp"
#include "swarming/dsa_model.hpp"
#include "swarming/pra_dataset.hpp"
#include "util/env.hpp"
#include "util/fs.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace dsa;

std::vector<std::uint32_t> strided_members(std::uint32_t count) {
  const std::uint32_t stride = swarming::kProtocolCount / count;
  std::vector<std::uint32_t> members;
  members.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) members.push_back(i * stride);
  return members;
}

struct ModeResult {
  std::string engine;
  std::size_t simulations = 0;
  double wall_seconds = 0.0;
  double sims_per_sec = 0.0;
  std::vector<core::ProtocolMetrics> metrics;
};

ModeResult run_mode(swarming::SimEngine engine, const char* name,
                    const swarming::PraDatasetOptions& options,
                    const std::vector<std::uint32_t>& members,
                    util::ThreadPool& pool, std::size_t batch_width = 1) {
  swarming::SimulationConfig sim;
  sim.rounds = options.rounds;
  sim.engine = engine;
  swarming::SwarmingModel model(sim,
                                swarming::BandwidthDistribution::piatek());
  core::SubspaceModel subspace(model, members);
  core::PraConfig pra = options.pra;
  pra.batch_width = batch_width;
  core::PraEngine engine_runner(subspace, pra, &pool);

  ModeResult result;
  result.engine = name;
  const std::size_t in_space = members.size();
  const std::size_t opponents =
      options.pra.opponent_sample > 0 &&
              options.pra.opponent_sample < in_space - 1
          ? options.pra.opponent_sample
          : in_space - 1;
  result.simulations =
      in_space * (options.pra.performance_runs +
                  2 * opponents * options.pra.encounter_runs);

  const auto start = std::chrono::steady_clock::now();
  result.metrics =
      engine_runner.quantify(0, static_cast<std::uint32_t>(in_space));
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.sims_per_sec = result.wall_seconds > 0.0
                            ? static_cast<double>(result.simulations) /
                                  result.wall_seconds
                            : 0.0;
  std::printf("%-6s  %8zu sims  %8.2f s  %10.1f sims/sec\n", name,
              result.simulations, result.wall_seconds, result.sims_per_sec);
  return result;
}

bool metrics_identical(const std::vector<core::ProtocolMetrics>& a,
                       const std::vector<core::ProtocolMetrics>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].raw_performance != b[i].raw_performance ||
        a[i].robustness != b[i].robustness ||
        a[i].aggressiveness != b[i].aggressiveness) {
      return false;
    }
  }
  return true;
}

struct ScalePoint {
  std::size_t population = 0;
  double dense_ms = 0.0;
  double sparse_ms = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

// Per-simulation cost of one default protocol at growing swarm sizes. The
// sweep above fixes the population at the paper's default; this series shows
// where the removed O(n^2) terms start to dominate.
std::vector<ScalePoint> scaling_series(std::size_t rounds) {
  const auto dist = swarming::BandwidthDistribution::piatek();
  std::vector<ScalePoint> series;
  for (const std::size_t n : {std::size_t{50}, std::size_t{100},
                              std::size_t{200}, std::size_t{400}}) {
    const std::vector<swarming::ProtocolSpec> population(
        n, swarming::bittorrent_protocol());
    const std::vector<double> capacities = dist.stratified_sample(n);
    swarming::SimulationConfig config;
    config.rounds = rounds;
    config.seed = 42;

    ScalePoint point;
    point.population = n;
    constexpr int kReps = 3;
    std::vector<double> dense_throughput;
    std::vector<double> sparse_throughput;
    for (const auto engine :
         {swarming::SimEngine::kDense, swarming::SimEngine::kSparse}) {
      config.engine = engine;
      const auto start = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kReps; ++rep) {
        auto outcome =
            swarming::simulate_rounds(population, capacities, config, &dist);
        if (rep == 0) {
          (engine == swarming::SimEngine::kDense ? dense_throughput
                                                 : sparse_throughput) =
              std::move(outcome.peer_throughput);
        }
      }
      const auto stop = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(stop - start).count() /
          kReps;
      (engine == swarming::SimEngine::kDense ? point.dense_ms
                                             : point.sparse_ms) = ms;
    }
    point.speedup = point.sparse_ms > 0.0 ? point.dense_ms / point.sparse_ms
                                          : 0.0;
    point.identical = dense_throughput == sparse_throughput;
    std::printf("  n=%-4zu  dense %8.2f ms/sim  sparse %8.2f ms/sim  "
                "%5.2fx  %s\n",
                point.population, point.dense_ms, point.sparse_ms,
                point.speedup, point.identical ? "identical" : "MISMATCH");
    series.push_back(point);
  }
  return series;
}

struct WidthPoint {
  std::size_t width = 0;
  double sims_per_sec = 0.0;
  double speedup_vs_width1 = 0.0;
};

// Accumulates one value per timed batch so the compiler cannot hoist or
// drop the simulate_rounds_batch calls.
volatile double benchmark_guard = 0.0;

// Lockstep-width scaling of the batch engine alone: the same 64 homogeneous
// simulations executed as batches of W lanes. Capacities and seeds are
// precomputed outside the timed region, so the series isolates the engine's
// amortization of the round loop across the batch.
std::vector<WidthPoint> width_series(std::size_t rounds) {
  const auto dist = swarming::BandwidthDistribution::piatek();
  constexpr std::size_t kSims = 64;
  constexpr std::size_t kPeers = 50;
  const std::vector<swarming::ProtocolSpec> protocols(
      kPeers, swarming::bittorrent_protocol());
  std::vector<std::vector<double>> capacities;
  std::vector<std::uint64_t> seeds;
  for (std::size_t s = 0; s < kSims; ++s) {
    seeds.push_back(1000 + s);
    capacities.push_back(
        swarming::shuffled_capacities(kPeers, dist, seeds[s]));
  }
  swarming::SimulationConfig config;
  config.rounds = rounds;

  std::vector<WidthPoint> series;
  for (const std::size_t width :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8},
        std::size_t{16}}) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t base = 0; base < kSims; base += width) {
      const std::size_t lanes_now = std::min(width, kSims - base);
      std::vector<swarming::BatchLane> lanes;
      lanes.reserve(lanes_now);
      for (std::size_t w = 0; w < lanes_now; ++w) {
        lanes.push_back({&protocols, &capacities[base + w], seeds[base + w]});
      }
      const auto outcomes = swarming::simulate_rounds_batch(lanes, config);
      benchmark_guard = benchmark_guard + outcomes.front().peer_throughput.front();
    }
    const auto stop = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(stop - start).count();
    WidthPoint point;
    point.width = width;
    point.sims_per_sec =
        seconds > 0.0 ? static_cast<double>(kSims) / seconds : 0.0;
    point.speedup_vs_width1 =
        series.empty() || series.front().sims_per_sec <= 0.0
            ? 1.0
            : point.sims_per_sec / series.front().sims_per_sec;
    std::printf("  W=%-3zu  %10.1f sims/sec  %5.2fx vs W=1\n", point.width,
                point.sims_per_sec, point.speedup_vs_width1);
    series.push_back(point);
  }
  return series;
}

}  // namespace

int main() {
  ::dsa::bench::MetricsScope metrics_scope("sweep_throughput");
  bench::runtime_banner();
  // Honor DSA_RECORD / DSA_RECORD_STRIDE (default off): this bench doubles
  // as the recorder's overhead gate, so the recording level must be exactly
  // what the environment asked for.
  obs::Recorder::global().configure(obs::RecorderOptions::from_environment());
  const auto options = swarming::PraDatasetOptions::from_environment();
  const auto protocols = static_cast<std::uint32_t>(std::min<long long>(
      util::env_int("DSA_BENCH_PROTOCOLS", 64), swarming::kProtocolCount));
  const std::string json_path =
      util::env_string("DSA_BENCH_JSON", "results/BENCH_pra_sweep.json");
  util::ThreadPool pool(options.pra.threads == 0
                            ? util::ThreadPool::default_thread_count()
                            : options.pra.threads);

  bench::banner("BENCH pra_sweep_throughput",
                "engineering target (ROADMAP): the PRA sweep runs as fast as "
                "the hardware allows; sparse and batch engines vs the dense "
                "seed path, bitwise-identical results");
  const std::vector<std::uint32_t> members = strided_members(protocols);
  // The batch engine's lockstep width: DSA_BATCH_WIDTH, or 8 when unset
  // (the width the sweep auto-selects under DSA_ENGINE=batch).
  const auto env_width =
      static_cast<std::size_t>(util::env_int("DSA_BATCH_WIDTH", 0));
  const std::size_t batch_width = env_width != 0 ? env_width : 8;
  std::printf("protocols in batch: %u (stride %u over the %u-protocol space)"
              "   threads: %zu   batch width: %zu\n\n",
              protocols, swarming::kProtocolCount / protocols,
              swarming::kProtocolCount, pool.thread_count(), batch_width);

  // Dense first (the "before"/seed implementation), then sparse, then batch.
  const ModeResult dense = run_mode(swarming::SimEngine::kDense, "dense",
                                    options, members, pool);
  const ModeResult sparse = run_mode(swarming::SimEngine::kSparse, "sparse",
                                     options, members, pool);
  const ModeResult batch = run_mode(swarming::SimEngine::kBatch, "batch",
                                    options, members, pool, batch_width);

  const bool identical = metrics_identical(dense.metrics, sparse.metrics) &&
                         metrics_identical(dense.metrics, batch.metrics);
  const double speedup = dense.sims_per_sec > 0.0
                             ? sparse.sims_per_sec / dense.sims_per_sec
                             : 0.0;
  const double batch_vs_sparse = sparse.sims_per_sec > 0.0
                                     ? batch.sims_per_sec / sparse.sims_per_sec
                                     : 0.0;
  const double batch_vs_dense = dense.sims_per_sec > 0.0
                                    ? batch.sims_per_sec / dense.sims_per_sec
                                    : 0.0;

  std::printf("\nper-simulation cost vs population (%zu rounds):\n",
              options.rounds);
  const std::vector<ScalePoint> scaling = scaling_series(options.rounds);
  bool scaling_identical = true;
  double best_scaling_speedup = 0.0;
  for (const ScalePoint& point : scaling) {
    scaling_identical = scaling_identical && point.identical;
    best_scaling_speedup = std::max(best_scaling_speedup, point.speedup);
  }

  std::printf("\nbatch-engine lockstep width scaling (%zu rounds):\n",
              options.rounds);
  const std::vector<WidthPoint> widths = width_series(options.rounds);

  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);

  std::printf("\nsweep speedup (sparse vs dense, default population): %.2fx\n",
              speedup);
  std::printf("sweep speedup (batch vs sparse): %.2fx   (batch vs dense): "
              "%.2fx\n",
              batch_vs_sparse, batch_vs_dense);
  std::printf("best scaling-series speedup: %.2fx\n", best_scaling_speedup);
  std::printf("outcomes identical: %s\n",
              identical && scaling_identical ? "yes" : "NO");
  std::printf("peak RSS: %ld KB\n", usage.ru_maxrss);
  bench::verdict(identical && scaling_identical &&
                     (speedup >= 3.0 || best_scaling_speedup >= 3.0 ||
                      batch_vs_dense >= 3.0),
                 "bitwise-identical metrics and >= 3x over the dense seed "
                 "path (default-scale sweep, the population series, or the "
                 "batch engine)");

  // Rendered to a string and atomically replaced on disk, so a crash or
  // concurrent reader never sees a truncated results file.
  std::string json;
  const auto append = [&json](const char* fmt, auto... args) {
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer), fmt, args...);
    json += buffer;
  };
  append("{\n");
  append("  \"bench\": \"pra_sweep_throughput\",\n");
  append("  \"threads\": %zu,\n", pool.thread_count());
  append(
      "  \"knobs\": {\"protocols\": %u, \"stride\": %u, "
      "\"rounds\": %zu, \"population\": %zu, "
      "\"performance_runs\": %zu, \"encounter_runs\": %zu, "
      "\"opponents\": %zu, \"seed\": %llu, \"batch_width\": %zu},\n",
      protocols, swarming::kProtocolCount / protocols, options.rounds,
      options.pra.population, options.pra.performance_runs,
      options.pra.encounter_runs, options.pra.opponent_sample,
      static_cast<unsigned long long>(options.pra.seed), batch_width);
  append("  \"modes\": [\n");
  for (const ModeResult* mode : {&dense, &sparse, &batch}) {
    append(
        "    {\"engine\": \"%s\", \"simulations\": %zu, "
        "\"wall_seconds\": %.6f, \"sims_per_sec\": %.1f}%s\n",
        mode->engine.c_str(), mode->simulations, mode->wall_seconds,
        mode->sims_per_sec, mode == &batch ? "" : ",");
  }
  append("  ],\n");
  append("  \"speedup_sparse_vs_dense\": %.3f,\n", speedup);
  append("  \"speedup_batch_vs_sparse\": %.3f,\n", batch_vs_sparse);
  append("  \"speedup_batch_vs_dense\": %.3f,\n", batch_vs_dense);
  append("  \"scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalePoint& point = scaling[i];
    append(
        "    {\"population\": %zu, \"dense_ms_per_sim\": %.3f, "
        "\"sparse_ms_per_sim\": %.3f, \"speedup\": %.3f, "
        "\"identical\": %s}%s\n",
        point.population, point.dense_ms, point.sparse_ms, point.speedup,
        point.identical ? "true" : "false",
        i + 1 < scaling.size() ? "," : "");
  }
  append("  ],\n");
  append("  \"batch_widths\": [\n");
  for (std::size_t i = 0; i < widths.size(); ++i) {
    append(
        "    {\"width\": %zu, \"sims_per_sec\": %.1f, "
        "\"speedup_vs_width1\": %.3f}%s\n",
        widths[i].width, widths[i].sims_per_sec, widths[i].speedup_vs_width1,
        i + 1 < widths.size() ? "," : "");
  }
  append("  ],\n");
  append("  \"outcomes_identical\": %s,\n",
         identical && scaling_identical ? "true" : "false");
  append("  \"peak_rss_kb\": %ld\n", usage.ru_maxrss);
  append("}\n");
  util::atomic_write(json_path, json);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  bench::save_recording_if_requested();
  return identical && scaling_identical ? 0 : 1;
}
