// Load harness for the resident query daemon (src/serve): an in-process
// Server on a scratch unix socket answers a mix of distinct sweep queries
// cold (every job computed), then the same mix warm (every job a cache
// hit) from N concurrent client connections. Reports cold and warm QPS,
// their ratio, and the daemon's own hit counters, and verifies that every
// warm answer is byte-identical to its cold computation — the cache must
// never trade correctness for speed.
//
// The BENCH_serve.json wall-time distribution samples per-warm-query
// latency, so tools/bench_compare gates the hot path a resident daemon
// exists for: answering a repeated design-space question from memory.
//
// Knobs:
//   DSA_BENCH_CONNECTIONS  concurrent warm-phase clients (default 4)
//   DSA_BENCH_QUERIES      distinct specs in the mix (default 8)
//   DSA_BENCH_REPEATS      warm repetitions of the mix per client (default 25)
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/env.hpp"

namespace {

using namespace dsa;

// One spec per index: the same tiny sweep over four named protocols, but a
// distinct seed, so every spec expands to distinct job fingerprints and the
// cold pass cannot accidentally hit another spec's cache entries.
std::string spec_text(const std::filesystem::path& dir, std::size_t index) {
  std::string text = "{\"scenario\":\"bench-serve-";
  text += std::to_string(index);
  text += "\",\"kind\":\"sweep\",\"output\":\"";
  text += (dir / ("bench_serve_" + std::to_string(index) + ".csv")).string();
  text += "\",\"chunk\":2,\"params\":{\"protocols\":\"bt,birds,loyal,sorts\","
          "\"rounds\":40,\"population\":20,\"performance_runs\":1,"
          "\"encounter_runs\":1,\"opponent_sample\":4,"
          "\"minority_fraction\":0.1,\"seed\":";
  text += std::to_string(1000 + index);
  text += ",\"engine\":\"sparse\"}}";
  return text;
}

}  // namespace

int main() {
  bench::MetricsScope metrics_scope("serve");

  const auto connections = static_cast<std::size_t>(
      util::env_int("DSA_BENCH_CONNECTIONS", 4));
  const auto queries =
      static_cast<std::size_t>(util::env_int("DSA_BENCH_QUERIES", 8));
  const auto repeats =
      static_cast<std::size_t>(util::env_int("DSA_BENCH_REPEATS", 25));

  bench::banner("BENCH serve (design-space-as-a-service)",
                "engineering target (ROADMAP): a resident daemon answers a "
                "repeated design-space query from its content-addressed "
                "cache byte-identically and an order of magnitude faster "
                "than recomputing it");

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("bench_serve_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  serve::ServerOptions options;
  options.socket_path = dir / "serve.sock";
  options.cache.store_path = dir / "serve.cache.jsonl";
  options.verbose = false;

  serve::Server server(options);
  std::atomic<bool> stop{false};
  std::thread daemon([&] { server.serve(stop); });

  std::printf("connections: %zu   distinct specs: %zu   warm repeats: %zu\n\n",
              connections, queries, repeats);

  // Cold pass: one connection, every spec computed for the first time.
  std::vector<std::string> cold_bodies(queries);
  const auto cold_start = std::chrono::steady_clock::now();
  {
    serve::Client client(options.socket_path);
    for (std::size_t i = 0; i < queries; ++i) {
      cold_bodies[i] = client.query(spec_text(dir, i)).body;
    }
  }
  const double cold_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cold_start)
          .count();
  const double cold_qps =
      cold_seconds > 0.0 ? static_cast<double>(queries) / cold_seconds : 0.0;
  std::printf("cold:  %zu queries  %8.3f s  %10.1f q/s\n", queries,
              cold_seconds, cold_qps);

  // Warm pass: every client replays the full mix; every job is a cache hit.
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::vector<double>> per_client_ms(connections);
  const auto warm_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
      clients.emplace_back([&, c] {
        serve::Client client(options.socket_path);
        per_client_ms[c].reserve(repeats * queries);
        for (std::size_t rep = 0; rep < repeats; ++rep) {
          for (std::size_t i = 0; i < queries; ++i) {
            const auto start = std::chrono::steady_clock::now();
            const serve::Response response = client.query(spec_text(dir, i));
            per_client_ms[c].push_back(
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count());
            if (response.body != cold_bodies[i]) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  const double warm_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    warm_start)
          .count();
  const std::size_t warm_queries = connections * repeats * queries;
  const double warm_qps =
      warm_seconds > 0.0 ? static_cast<double>(warm_queries) / warm_seconds
                         : 0.0;
  std::printf("warm:  %zu queries  %8.3f s  %10.1f q/s\n", warm_queries,
              warm_seconds, warm_qps);

  const std::map<std::string, std::uint64_t> counters = server.counters();
  stop.store(true);
  daemon.join();

  const std::uint64_t hits = counters.at("cache_hits");
  const std::uint64_t misses = counters.at("cache_misses");
  const double hit_ratio =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  const double speedup = cold_qps > 0.0 ? warm_qps / cold_qps : 0.0;
  const bool identical = mismatches.load() == 0;

  std::printf("\nwarm vs cold: %.1fx   cache hit ratio: %.4f "
              "(%llu hits / %llu misses)\n",
              speedup, hit_ratio, static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));
  std::printf("warm answers byte-identical to cold: %s\n",
              identical ? "yes" : "NO");
  bench::verdict(identical && speedup >= 10.0,
                 "every warm answer byte-identical to its cold computation "
                 "and warm QPS >= 10x cold QPS");

  for (const std::vector<double>& samples : per_client_ms) {
    for (const double ms : samples) metrics_scope.add_wall_ms(ms);
  }
  metrics_scope.knob("connections", connections);
  metrics_scope.knob("distinct_specs", queries);
  metrics_scope.knob("warm_repeats", repeats);
  metrics_scope.knob("cold_qps", cold_qps);
  metrics_scope.knob("warm_qps", warm_qps);
  metrics_scope.knob("warm_vs_cold", speedup);
  metrics_scope.knob("hit_ratio", hit_ratio);
  metrics_scope.knob("identical", identical ? std::string("true")
                                            : std::string("false"));

  std::error_code ignored;
  std::filesystem::remove_all(dir, ignored);
  bench::save_recording_if_requested();
  return identical && speedup >= 10.0 ? 0 : 1;
}
