// Extension (paper's Sec. 7 future work): heuristic design-space search.
// Compares stochastic hill climbing against an exhaustive scan of a random
// subspace on (a) quality of the best protocol found and (b) number of
// protocols evaluated.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/pra.hpp"
#include "core/search.hpp"
#include "core/subspace.hpp"
#include "swarming/dsa_model.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"

using namespace dsa;
using namespace dsa::swarming;

namespace {

/// Neighbor move: re-actualize one design dimension uniformly.
std::uint32_t mutate(std::uint32_t current, util::Rng& rng) {
  ProtocolSpec spec = decode_protocol(current);
  switch (rng.below(5)) {
    case 0: {  // stranger policy + h
      const auto h = static_cast<std::uint8_t>(rng.below(4));
      spec.stranger_slots = h;
      spec.stranger_policy =
          h == 0 ? StrangerPolicy::kPeriodic
                 : static_cast<StrangerPolicy>(rng.below(3));
      break;
    }
    case 1:
      if (spec.partner_slots > 0) {
        spec.window = static_cast<CandidateWindow>(rng.below(2));
      }
      break;
    case 2:
      if (spec.partner_slots > 0) {
        spec.ranking = static_cast<RankingFunction>(rng.below(6));
      }
      break;
    case 3: {  // k
      const auto k = static_cast<std::uint8_t>(rng.below(10));
      spec.partner_slots = k;
      if (k == 0) {
        spec.window = CandidateWindow::kTft;
        spec.ranking = RankingFunction::kFastest;
      }
      break;
    }
    default:
      spec.allocation = static_cast<AllocationPolicy>(rng.below(3));
  }
  return encode_protocol(spec);
}

}  // namespace

int main() {
  ::dsa::bench::MetricsScope metrics_scope("search_ablation");
  bench::banner(
      "Extension — heuristic search over the design space (Sec. 7 future "
      "work)",
      "a heuristic scan should find near-top protocols at a small fraction "
      "of the exhaustive cost");

  const auto rounds =
      static_cast<std::size_t>(util::env_int("DSA_ROUNDS", 120));
  SimulationConfig sim;
  sim.rounds = rounds;
  const SwarmingModel model(sim, BandwidthDistribution::piatek());

  core::SearchConfig config;
  config.restarts = static_cast<std::size_t>(
      util::env_int("DSA_SEARCH_RESTARTS", 4));
  config.steps_per_restart = static_cast<std::size_t>(
      util::env_int("DSA_SEARCH_STEPS", 40));
  config.eval_runs = 2;
  config.opponent_probes = 6;
  config.reference_protocol = encode_protocol(bittorrent_protocol());
  config.seed = 7;

  core::HeuristicSearch search(model, mutate, config);
  std::fprintf(stderr, "hill climbing (%zu restarts x %zu steps)...\n",
               config.restarts, config.steps_per_restart);
  const core::SearchResult found = search.run();

  std::printf("\nHeuristic search result:\n");
  std::printf("  best protocol: #%u  %s\n", found.best_protocol,
              decode_protocol(found.best_protocol).describe().c_str());
  std::printf("  objective: %.3f | protocols evaluated: %zu of %u (%.1f%%)\n",
              found.best_objective, found.evaluations, kProtocolCount,
              100.0 * static_cast<double>(found.evaluations) / kProtocolCount);
  std::printf("  improvement trajectory (%zu points):\n",
              found.trajectory.size());
  for (const auto& [protocol, objective] : found.trajectory) {
    std::printf("    #%-5u obj=%.3f  %s\n", protocol, objective,
                decode_protocol(protocol).describe().c_str());
  }

  // Exhaustive baseline over a same-budget random subset: evaluate as many
  // random protocols as the search evaluated and take the best.
  util::Rng rng(99);
  double best_random = 0.0;
  std::uint32_t best_random_id = 0;
  for (std::size_t i = 0; i < found.evaluations; ++i) {
    const auto id = static_cast<std::uint32_t>(rng.below(kProtocolCount));
    const double objective = search.objective(id);
    if (objective > best_random) {
      best_random = objective;
      best_random_id = id;
    }
  }
  std::printf("\nSame-budget random scan: best obj=%.3f (#%u %s)\n",
              best_random, best_random_id,
              decode_protocol(best_random_id).describe().c_str());

  bench::verdict(found.best_objective >= best_random * 0.95 &&
                     found.evaluations < kProtocolCount / 4,
                 "hill climbing matches or beats a same-budget random scan "
                 "while evaluating a small fraction of the space");
  return 0;
}
