// The BitTorrent Dilemma (Fig. 1 of the paper): a 2x2 game between a fast
// peer (upload speed f) and a slow peer (upload speed s < f).
//
// Payoffs are reconstructed from the paper's prose (Sec. 2.1, 2.3), which
// pins down every strategic claim:
//  * a fast peer cooperating with a slow peer nets s - f < 0 (it receives s
//    but forgoes an f-speed partner), so Defect dominates for the fast peer;
//  * in Fig. 1(a) a slow peer values cooperating with a fast peer at f
//    (the download it receives) and defecting at s (grab f once, then fall
//    back to a slow-slow relationship: f + (s - f) = s), so Cooperate
//    dominates for the slow peer — the one-sided "Dictator-like" structure;
//  * Fig. 1(c) (the Birds view) charges the slow peer the opportunity cost
//    of the missed slow-slow relationship when it cooperates with the fast
//    peer (f - s instead of f) and removes the regret from defecting
//    (payoff f), so Defect becomes dominant for both classes.
#pragma once

#include <array>
#include <stdexcept>

namespace dsa::gametheory {

/// Action in a single round of the dilemma.
enum class Action { kCooperate = 0, kDefect = 1 };

/// Roles in the dilemma.
enum class Role { kFast = 0, kSlow = 1 };

/// A 2x2 bimatrix game; row player is the fast peer, column player the slow
/// peer.
class BimatrixGame {
 public:
  /// payoffs[row][col] = {fast payoff, slow payoff}.
  using Cell = std::array<double, 2>;
  using Table = std::array<std::array<Cell, 2>, 2>;

  explicit BimatrixGame(const Table& payoffs) : payoffs_(payoffs) {}

  /// Payoff of `role` when fast plays `fast_action` and slow plays
  /// `slow_action`.
  [[nodiscard]] double payoff(Role role, Action fast_action,
                              Action slow_action) const {
    const Cell& cell = payoffs_[index(fast_action)][index(slow_action)];
    return cell[static_cast<std::size_t>(role)];
  }

  /// Best response of `role` to the opponent's action; ties resolve to
  /// Cooperate (TFT-style default).
  [[nodiscard]] Action best_response(Role role, Action opponent) const;

  /// Returns the strictly-or-weakly dominant action of `role`, or throws
  /// std::logic_error when neither action dominates.
  [[nodiscard]] Action dominant_action(Role role) const;

  /// True when (fast_action, slow_action) is a pure-strategy Nash
  /// equilibrium.
  [[nodiscard]] bool is_nash(Action fast_action, Action slow_action) const;

 private:
  static std::size_t index(Action a) { return static_cast<std::size_t>(a); }

  Table payoffs_;
};

/// Fig. 1(a): the BitTorrent Dilemma as BitTorrent's TFT perceives it.
/// Requires f > s > 0; throws std::invalid_argument otherwise.
BimatrixGame bittorrent_dilemma(double fast_speed, double slow_speed);

/// Fig. 1(c): the modified payoffs that produce the Birds protocol.
/// Requires f > s > 0; throws std::invalid_argument otherwise.
BimatrixGame birds_payoffs(double fast_speed, double slow_speed);

/// The classic symmetric Prisoner's Dilemma with temptation T, reward R,
/// punishment P, sucker's payoff S. Requires T > R > P > S (and, for the
/// iterated game to favor cooperation, 2R > T + S, which is not enforced).
/// Throws std::invalid_argument when the ordering is violated.
BimatrixGame prisoners_dilemma(double temptation = 5.0, double reward = 3.0,
                               double punishment = 1.0, double sucker = 0.0);

}  // namespace dsa::gametheory
