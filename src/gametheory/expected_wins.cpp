#include "gametheory/expected_wins.hpp"

#include <cmath>
#include <stdexcept>

namespace dsa::gametheory {

namespace {

void check(const ClassSetup& setup) {
  if (!setup.valid()) {
    throw std::invalid_argument(
        "ClassSetup violates the model assumptions (need Ur >= 1, NA > Ur, "
        "NC > Ur + 1, Nr > 0)");
  }
}

/// K = 1 - ((1 - E[A->c]) (1 - 1/Ur))^Ur  — the probability that at least
/// one of c's same-class partners receives a free game win from a higher
/// class (and deserts c to reciprocate it). `exponent` is Ur in the
/// homogeneous model and Ur - 1 in the Appendix's K'.
double desertion_probability(double free_from_above, double regular_slots,
                             double exponent) {
  const double keep =
      (1.0 - free_from_above) * (1.0 - 1.0 / regular_slots);
  return 1.0 - std::pow(keep, exponent);
}

}  // namespace

double ClassSetup::contention_pool() const {
  return static_cast<double>(peers_above + peers_below + peers_same) -
         static_cast<double>(regular_slots) - 1.0;
}

bool ClassSetup::valid() const {
  return regular_slots >= 1 && peers_above > regular_slots &&
         peers_same > regular_slots + 1 && contention_pool() > 0.0;
}

namespace {

/// Formula bodies without the standing-assumption check; the population
/// functions admit the top class (NA = 0), for which E[A->c] = 0 and K
/// reduces to the partners' own optimistic-churn term.
ExpectedWins bittorrent_wins_impl(const ClassSetup& setup);
ExpectedWins birds_wins_impl(const ClassSetup& setup);

}  // namespace

ExpectedWins bittorrent_expected_wins(const ClassSetup& setup) {
  check(setup);
  return bittorrent_wins_impl(setup);
}

namespace {

ExpectedWins bittorrent_wins_impl(const ClassSetup& setup) {
  const double nr = setup.contention_pool();
  const double na = static_cast<double>(setup.peers_above);
  const double nb = static_cast<double>(setup.peers_below);
  const double nc = static_cast<double>(setup.peers_same);
  const double ur = static_cast<double>(setup.regular_slots);

  ExpectedWins w;
  // Higher classes never reciprocate (Er[A->c] = 0) but do hand out
  // optimistic first moves: E[A->c] = NA / Nr.
  w.reciprocated_above = 0.0;
  w.free_above = na / nr;
  // Lower classes: E[B->c] = Er[B->c] = NB / Nr.
  w.reciprocated_below = nb / nr;
  w.free_below = nb / nr;
  // Same class (formula (1)): Er[C->c] = Ur - E[A->c] - K.
  const double k = desertion_probability(w.free_above, ur, ur);
  w.reciprocated_same = ur - w.free_above - k;
  // E[C->c] = (NC - 1 - Er[C->c]) / Nr.
  w.free_same = (nc - 1.0 - w.reciprocated_same) / nr;
  return w;
}

}  // namespace

ExpectedWins birds_expected_wins(const ClassSetup& setup) {
  check(setup);
  return birds_wins_impl(setup);
}

namespace {

ExpectedWins birds_wins_impl(const ClassSetup& setup) {
  const double nr = setup.contention_pool();
  const double na = static_cast<double>(setup.peers_above);
  const double nb = static_cast<double>(setup.peers_below);
  const double nc = static_cast<double>(setup.peers_same);
  const double ur = static_cast<double>(setup.regular_slots);

  ExpectedWins w;
  // Birds peers only reciprocate within their own class:
  // ErB[A->c] = ErB[B->c] = 0, ErB[C->c] = Ur.
  w.reciprocated_above = 0.0;
  w.reciprocated_below = 0.0;
  w.reciprocated_same = ur;
  // Free game wins are unchanged relative to BitTorrent.
  w.free_above = na / nr;
  w.free_below = nb / nr;
  // EB[C->c] = (NC - 1 - Ur) / Nr.
  w.free_same = (nc - 1.0 - ur) / nr;
  return w;
}

}  // namespace

bool ClassProfile::valid() const {
  if (class_sizes.size() < 2 || regular_slots == 0) return false;
  std::size_t above = 0;
  // Walk from the fastest class down; `above` accumulates the faster peers.
  for (std::size_t c = class_sizes.size(); c-- > 0;) {
    const ClassSetup setup = setup_for(c);
    if (setup.peers_same <= regular_slots + 1) return false;
    if (above > 0 && above <= regular_slots) return false;
    if (setup.contention_pool() <= 0.0) return false;
    above += class_sizes[c];
  }
  return true;
}

ClassSetup ClassProfile::setup_for(std::size_t c) const {
  if (c >= class_sizes.size()) {
    throw std::out_of_range("ClassProfile::setup_for: class index");
  }
  ClassSetup setup;
  setup.regular_slots = regular_slots;
  setup.peers_same = class_sizes[c];
  for (std::size_t i = 0; i < c; ++i) setup.peers_below += class_sizes[i];
  for (std::size_t i = c + 1; i < class_sizes.size(); ++i) {
    setup.peers_above += class_sizes[i];
  }
  return setup;
}

namespace {

std::vector<ExpectedWins> population_wins(
    const ClassProfile& profile, ExpectedWins (*impl)(const ClassSetup&)) {
  if (!profile.valid()) {
    throw std::invalid_argument(
        "ClassProfile violates the model assumptions (need Ur >= 1, every "
        "class > Ur + 1 peers, every non-top class with > Ur peers above)");
  }
  std::vector<ExpectedWins> wins;
  wins.reserve(profile.class_sizes.size());
  for (std::size_t c = 0; c < profile.class_sizes.size(); ++c) {
    wins.push_back(impl(profile.setup_for(c)));
  }
  return wins;
}

}  // namespace

std::vector<ExpectedWins> bittorrent_population_wins(
    const ClassProfile& profile) {
  return population_wins(profile, &bittorrent_wins_impl);
}

std::vector<ExpectedWins> birds_population_wins(const ClassProfile& profile) {
  return population_wins(profile, &birds_wins_impl);
}

InvasionAnalysis birds_invades_bittorrent(const ClassSetup& setup) {
  check(setup);
  const double nr = setup.contention_pool();
  const double na = static_cast<double>(setup.peers_above);
  const double nb = static_cast<double>(setup.peers_below);
  const double nc = static_cast<double>(setup.peers_same);
  const double nc_prime = nc - 1.0;  // BT peers left in c's class
  const double ur = static_cast<double>(setup.regular_slots);

  const double free_above = na / nr;
  const double k = desertion_probability(free_above, ur, ur);
  const double k_prime = desertion_probability(free_above, ur, ur - 1.0);

  InvasionAnalysis analysis;

  // Wins sourced from other classes are identical for invader and incumbent:
  // with a BT majority the lower classes reciprocate upward, so the Birds
  // invader's ErB[B->c]' = NB/Nr too (Appendix).
  for (ExpectedWins* w : {&analysis.invader, &analysis.incumbent}) {
    w->reciprocated_above = 0.0;
    w->free_above = free_above;
    w->reciprocated_below = nb / nr;
    w->free_below = nb / nr;
  }

  // Same-class reciprocation (Appendix):
  //   Birds invader:   ErB[C->c]' = Ur - K
  //   BT incumbent:    Er[C->c]'  = Ur - K - E[A->c] - (Ur/NC')(K + K')
  analysis.invader.reciprocated_same = ur - k;
  analysis.incumbent.reciprocated_same =
      ur - k - free_above - (ur / nc_prime) * (k + k_prime);

  // Same-class free game wins (Appendix):
  //   EB[C->c]' = (NC'/NC) (NC - Er[C->c]') / Nr
  //   E[C->c]'  = EB[C->c]' + (NC - ErB[C->c]') / (NC Nr)
  analysis.invader.free_same =
      (nc_prime / nc) * (nc - analysis.incumbent.reciprocated_same) / nr;
  analysis.incumbent.free_same =
      analysis.invader.free_same +
      (nc - analysis.invader.reciprocated_same) / (nc * nr);

  analysis.invader_outperforms =
      analysis.invader.total() > analysis.incumbent.total();
  return analysis;
}

InvasionAnalysis bittorrent_invades_birds(const ClassSetup& setup) {
  check(setup);
  const double nr = setup.contention_pool();
  const double na = static_cast<double>(setup.peers_above);
  const double nb = static_cast<double>(setup.peers_below);
  const double nc = static_cast<double>(setup.peers_same);
  const double nc_prime = nc - 1.0;  // Birds peers left in c's class
  const double ur = static_cast<double>(setup.regular_slots);

  const double free_above = na / nr;

  InvasionAnalysis analysis;

  // In an all-Birds swarm nobody reciprocates across classes; free game wins
  // from other classes are unchanged (Appendix: "Free game wins remain the
  // same").
  for (ExpectedWins* w : {&analysis.invader, &analysis.incumbent}) {
    w->reciprocated_above = 0.0;
    w->reciprocated_below = 0.0;
    w->free_above = free_above;
    w->free_below = nb / nr;
  }

  // Same-class reciprocation (Appendix):
  //   Birds incumbent: ErB[C->c]'' = Ur - (Ur/NC') E[A->c]
  //   BT invader:      Er[C->c]''  = Ur - E[A->c]
  analysis.incumbent.reciprocated_same =
      ur - (ur / nc_prime) * free_above;
  analysis.invader.reciprocated_same = ur - free_above;

  // Same-class free game wins (Appendix). The unprimed ErB/Er terms refer to
  // the homogeneous-population values of Secs. 2.2-2.3: ErB[C->c] = Ur and
  // Er[C->c] = Ur - E[A->c] - K.
  const double k = desertion_probability(free_above, ur, ur);
  const double homogeneous_birds_same = ur;
  const double homogeneous_bt_same = ur - free_above - k;
  analysis.invader.free_same =
      (nc_prime / nc) * (nc_prime - homogeneous_birds_same) / nr;
  analysis.incumbent.free_same =
      analysis.invader.free_same +
      (nc_prime - homogeneous_bt_same) / (nc_prime * nr);

  analysis.invader_outperforms =
      analysis.invader.total() > analysis.incumbent.total();
  return analysis;
}

}  // namespace dsa::gametheory
