#include "gametheory/strategies.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dsa::gametheory {

std::string to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kAllCooperate: return "AllC";
    case StrategyKind::kAllDefect: return "AllD";
    case StrategyKind::kTitForTat: return "TFT";
    case StrategyKind::kTitForTwoTats: return "TF2T";
    case StrategyKind::kGrimTrigger: return "Grim";
    case StrategyKind::kWinStayLoseShift: return "WSLS";
    case StrategyKind::kRandom: return "Random";
  }
  return "?";
}

std::vector<StrategyKind> all_strategies() {
  return {StrategyKind::kAllCooperate,    StrategyKind::kAllDefect,
          StrategyKind::kTitForTat,       StrategyKind::kTitForTwoTats,
          StrategyKind::kGrimTrigger,     StrategyKind::kWinStayLoseShift,
          StrategyKind::kRandom};
}

StrategyPlayer::StrategyPlayer(StrategyKind kind, double aspiration)
    : kind_(kind), aspiration_(aspiration) {}

Action StrategyPlayer::next_action(util::Rng& rng) const {
  switch (kind_) {
    case StrategyKind::kAllCooperate:
      return Action::kCooperate;
    case StrategyKind::kAllDefect:
      return Action::kDefect;
    case StrategyKind::kTitForTat:
      return first_round_ ? Action::kCooperate : opponent_last_;
    case StrategyKind::kTitForTwoTats:
      return (!first_round_ && opponent_last_ == Action::kDefect &&
              opponent_prev_ == Action::kDefect)
                 ? Action::kDefect
                 : Action::kCooperate;
    case StrategyKind::kGrimTrigger:
      return any_defection_ ? Action::kDefect : Action::kCooperate;
    case StrategyKind::kWinStayLoseShift: {
      if (first_round_) return Action::kCooperate;
      const bool won = last_payoff_ >= aspiration_;
      if (won) return own_last_;
      return own_last_ == Action::kCooperate ? Action::kDefect
                                             : Action::kCooperate;
    }
    case StrategyKind::kRandom:
      return rng.chance(0.5) ? Action::kCooperate : Action::kDefect;
  }
  return Action::kCooperate;
}

void StrategyPlayer::observe(Action own, Action opponent, double payoff) {
  opponent_prev_ = first_round_ ? opponent : opponent_last_;
  opponent_last_ = opponent;
  own_last_ = own;
  last_payoff_ = payoff;
  if (opponent == Action::kDefect) any_defection_ = true;
  first_round_ = false;
}

namespace {

Action maybe_flip(Action intended, double noise, util::Rng& rng) {
  if (noise > 0.0 && rng.chance(noise)) {
    return intended == Action::kCooperate ? Action::kDefect
                                          : Action::kCooperate;
  }
  return intended;
}

}  // namespace

MatchResult play_match(const BimatrixGame& game, StrategyKind fast_kind,
                       StrategyKind slow_kind, const TournamentConfig& config,
                       util::Rng& rng) {
  StrategyPlayer fast(fast_kind, config.aspiration);
  StrategyPlayer slow(slow_kind, config.aspiration);
  MatchResult result;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    const Action fast_action =
        maybe_flip(fast.next_action(rng), config.noise, rng);
    const Action slow_action =
        maybe_flip(slow.next_action(rng), config.noise, rng);
    const double fast_payoff =
        game.payoff(Role::kFast, fast_action, slow_action);
    const double slow_payoff =
        game.payoff(Role::kSlow, fast_action, slow_action);
    fast.observe(fast_action, slow_action, fast_payoff);
    slow.observe(slow_action, fast_action, slow_payoff);
    result.mean_payoff_fast += fast_payoff;
    result.mean_payoff_slow += slow_payoff;
    if (fast_action == Action::kCooperate) result.cooperation_rate_fast += 1.0;
    if (slow_action == Action::kCooperate) result.cooperation_rate_slow += 1.0;
  }
  const auto rounds = static_cast<double>(config.rounds);
  result.mean_payoff_fast /= rounds;
  result.mean_payoff_slow /= rounds;
  result.cooperation_rate_fast /= rounds;
  result.cooperation_rate_slow /= rounds;
  return result;
}

std::size_t TournamentResult::winner() const {
  if (score.empty()) throw std::logic_error("TournamentResult: empty");
  return static_cast<std::size_t>(
      std::max_element(score.begin(), score.end()) - score.begin());
}

double TournamentResult::mean_payoff(std::size_t i, std::size_t j) const {
  return 0.5 * (payoff_matrix.at(i).at(j) + slow_payoff_matrix.at(i).at(j));
}

std::vector<std::vector<double>> strategy_replicator(
    const TournamentResult& tournament, std::vector<double> shares,
    std::size_t steps) {
  const std::size_t n = tournament.roster.size();
  if (shares.size() != n) {
    throw std::invalid_argument("strategy_replicator: share width mismatch");
  }
  double total = 0.0;
  for (double s : shares) {
    if (s < 0.0) {
      throw std::invalid_argument("strategy_replicator: negative share");
    }
    total += s;
  }
  if (std::fabs(total - 1.0) > 1e-9) {
    throw std::invalid_argument("strategy_replicator: shares must sum to 1");
  }

  // Shift payoffs so fitness is non-negative (replicator dynamics are
  // invariant under a common additive shift of the payoff matrix).
  double min_payoff = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      min_payoff = std::min(min_payoff, tournament.mean_payoff(i, j));
    }
  }
  const double shift = -min_payoff + 1e-6;

  std::vector<std::vector<double>> trajectory;
  trajectory.push_back(shares);
  std::vector<double> fitness(n, 0.0);
  for (std::size_t step = 0; step < steps; ++step) {
    double mean_fitness = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      fitness[i] = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        fitness[i] += shares[j] * (tournament.mean_payoff(i, j) + shift);
      }
      mean_fitness += shares[i] * fitness[i];
    }
    if (mean_fitness <= 0.0) {
      trajectory.push_back(shares);
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      shares[i] = shares[i] * fitness[i] / mean_fitness;
    }
    trajectory.push_back(shares);
  }
  return trajectory;
}

TournamentResult round_robin(const BimatrixGame& game,
                             const std::vector<StrategyKind>& roster,
                             const TournamentConfig& config) {
  if (roster.empty() || config.rounds == 0 || config.repeats == 0) {
    throw std::invalid_argument("round_robin: degenerate configuration");
  }
  const std::size_t n = roster.size();
  TournamentResult result;
  result.roster = roster;
  result.score.assign(n, 0.0);
  result.payoff_matrix.assign(n, std::vector<double>(n, 0.0));
  result.slow_payoff_matrix.assign(n, std::vector<double>(n, 0.0));

  util::Rng master(config.seed);
  std::vector<std::size_t> matches(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double fast_total = 0.0;
      double slow_total = 0.0;
      for (std::size_t repeat = 0; repeat < config.repeats; ++repeat) {
        util::Rng rng = master.derive(i, j, repeat);
        const MatchResult match =
            play_match(game, roster[i], roster[j], config, rng);
        fast_total += match.mean_payoff_fast;
        slow_total += match.mean_payoff_slow;
      }
      result.payoff_matrix[i][j] =
          fast_total / static_cast<double>(config.repeats);
      result.slow_payoff_matrix[j][i] =
          slow_total / static_cast<double>(config.repeats);
      // Both participants bank their side of the ordered match.
      result.score[i] += fast_total / static_cast<double>(config.repeats);
      result.score[j] += slow_total / static_cast<double>(config.repeats);
      ++matches[i];
      ++matches[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    result.score[i] /= static_cast<double>(matches[i]);
  }
  return result;
}

}  // namespace dsa::gametheory
