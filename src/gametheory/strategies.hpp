// Axelrod-style iterated-game strategies and round-robin tournaments — the
// intellectual scaffolding behind the paper's Sec. 2 (BitTorrent as a
// TFT-like strategy in iterated games) and Sec. 3 (DSA "taking inspiration
// from Axelrod"). The tournament runs any BimatrixGame, so the classic
// Prisoner's Dilemma results and the asymmetric BitTorrent Dilemma can be
// compared side by side.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gametheory/payoff.hpp"
#include "util/rng.hpp"

namespace dsa::gametheory {

/// The classic repeated-game strategies (Axelrod 1984; Posch 1999 for WSLS).
enum class StrategyKind {
  kAllCooperate,
  kAllDefect,
  kTitForTat,        // cooperate first, then mirror the opponent's last move
  kTitForTwoTats,    // defect only after two consecutive opponent defections
  kGrimTrigger,      // cooperate until the first defection, then defect forever
  kWinStayLoseShift, // repeat your move after a good payoff, switch otherwise
  kRandom,           // coin flip every round
};

std::string to_string(StrategyKind kind);

/// All seven kinds, in enum order (convenient tournament roster).
std::vector<StrategyKind> all_strategies();

/// Per-match mutable state of one strategy instance.
class StrategyPlayer {
 public:
  /// `aspiration` is WSLS's "win" threshold: a round counts as a win when
  /// the own payoff is >= aspiration.
  StrategyPlayer(StrategyKind kind, double aspiration);

  /// Action for the next round. `rng` is only consulted by kRandom.
  [[nodiscard]] Action next_action(util::Rng& rng) const;

  /// Records the finished round (own action may differ from next_action()
  /// under noise).
  void observe(Action own, Action opponent, double payoff);

  [[nodiscard]] StrategyKind kind() const noexcept { return kind_; }

 private:
  StrategyKind kind_;
  double aspiration_;
  Action opponent_last_ = Action::kCooperate;
  Action opponent_prev_ = Action::kCooperate;
  Action own_last_ = Action::kCooperate;
  double last_payoff_ = 0.0;
  bool any_defection_ = false;
  bool first_round_ = true;
};

/// Outcome of one iterated match.
struct MatchResult {
  double mean_payoff_fast = 0.0;  // per-round averages
  double mean_payoff_slow = 0.0;
  double cooperation_rate_fast = 0.0;
  double cooperation_rate_slow = 0.0;
};

/// Tournament controls.
struct TournamentConfig {
  std::size_t rounds = 200;
  std::size_t repeats = 3;     // matches per ordered pair
  double noise = 0.0;          // per-move flip probability
  double aspiration = 0.0;     // WSLS win threshold ("payoff > 0 is a win")
  std::uint64_t seed = 42;
};

/// Plays `fast_kind` (row role) vs `slow_kind` (column role) for
/// config.rounds. Deterministic in the rng.
MatchResult play_match(const BimatrixGame& game, StrategyKind fast_kind,
                       StrategyKind slow_kind, const TournamentConfig& config,
                       util::Rng& rng);

/// Round-robin results over a roster.
struct TournamentResult {
  std::vector<StrategyKind> roster;
  /// score[i] = mean per-round payoff of roster[i] over all its matches
  /// (playing both roles against every roster member, including itself).
  std::vector<double> score;
  /// payoff_matrix[i][j] = roster[i]'s mean payoff when playing the fast
  /// role against roster[j] in the slow role.
  std::vector<std::vector<double>> payoff_matrix;
  /// slow_payoff_matrix[i][j] = roster[i]'s mean payoff when playing the
  /// SLOW role against roster[j] in the fast role.
  std::vector<std::vector<double>> slow_payoff_matrix;

  /// Index of the highest-scoring strategy.
  [[nodiscard]] std::size_t winner() const;

  /// Role-averaged payoff of roster[i] against roster[j]: the fitness used
  /// by the replicator below (each encounter plays both roles).
  [[nodiscard]] double mean_payoff(std::size_t i, std::size_t j) const;
};

/// Runs the full round-robin (every ordered pair, config.repeats times).
/// Throws std::invalid_argument on an empty roster or zero rounds/repeats.
TournamentResult round_robin(const BimatrixGame& game,
                             const std::vector<StrategyKind>& roster,
                             const TournamentConfig& config);

/// Continuous (infinite-population) replicator dynamics on a tournament's
/// role-averaged payoff matrix — the "evolution of cooperation" analysis:
/// share'_i = share_i * fitness_i / mean_fitness, iterated `steps` times.
/// Payoffs are shifted to be non-negative internally, so games with
/// negative entries (the BitTorrent Dilemma) are handled. Returns the share
/// trajectory (steps + 1 entries, starting with `initial`). Throws
/// std::invalid_argument when `initial` mismatches the roster, has negative
/// entries, or does not sum to ~1.
std::vector<std::vector<double>> strategy_replicator(
    const TournamentResult& tournament, std::vector<double> initial,
    std::size_t steps);

}  // namespace dsa::gametheory
