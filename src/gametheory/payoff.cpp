#include "gametheory/payoff.hpp"

namespace dsa::gametheory {

Action BimatrixGame::best_response(Role role, Action opponent) const {
  double coop, defect;
  if (role == Role::kFast) {
    coop = payoff(role, Action::kCooperate, opponent);
    defect = payoff(role, Action::kDefect, opponent);
  } else {
    coop = payoff(role, opponent, Action::kCooperate);
    defect = payoff(role, opponent, Action::kDefect);
  }
  return defect > coop ? Action::kDefect : Action::kCooperate;
}

Action BimatrixGame::dominant_action(Role role) const {
  const Action vs_coop = best_response(role, Action::kCooperate);
  const Action vs_defect = best_response(role, Action::kDefect);
  if (vs_coop == vs_defect) return vs_coop;
  // One action may still weakly dominate if the other arm is a tie.
  auto value = [&](Action own, Action other) {
    return role == Role::kFast ? payoff(role, own, other)
                               : payoff(role, other, own);
  };
  for (Action candidate : {Action::kCooperate, Action::kDefect}) {
    const Action alternative = candidate == Action::kCooperate
                                   ? Action::kDefect
                                   : Action::kCooperate;
    bool dominates = true;
    for (Action other : {Action::kCooperate, Action::kDefect}) {
      if (value(candidate, other) < value(alternative, other)) {
        dominates = false;
        break;
      }
    }
    if (dominates) return candidate;
  }
  throw std::logic_error("BimatrixGame: no dominant action for this role");
}

bool BimatrixGame::is_nash(Action fast_action, Action slow_action) const {
  const Action fast_alternative = fast_action == Action::kCooperate
                                      ? Action::kDefect
                                      : Action::kCooperate;
  const Action slow_alternative = slow_action == Action::kCooperate
                                      ? Action::kDefect
                                      : Action::kCooperate;
  const bool fast_happy =
      payoff(Role::kFast, fast_action, slow_action) >=
      payoff(Role::kFast, fast_alternative, slow_action);
  const bool slow_happy =
      payoff(Role::kSlow, fast_action, slow_action) >=
      payoff(Role::kSlow, fast_action, slow_alternative);
  return fast_happy && slow_happy;
}

namespace {
void check_speeds(double fast_speed, double slow_speed) {
  if (!(fast_speed > slow_speed) || !(slow_speed > 0.0)) {
    throw std::invalid_argument("BitTorrent Dilemma requires f > s > 0");
  }
}
}  // namespace

BimatrixGame bittorrent_dilemma(double f, double s) {
  check_speeds(f, s);
  BimatrixGame::Table t{};
  // Cell = {fast payoff, slow payoff}; rows = fast action, cols = slow.
  t[0][0] = {s - f, f};  // both cooperate
  t[0][1] = {0.0, s};    // fast cooperates, slow defects (slow nets f+(s-f))
  t[1][0] = {s, 0.0};    // fast defects on a cooperating slow
  t[1][1] = {0.0, 0.0};  // both defect
  return BimatrixGame(t);
}

BimatrixGame prisoners_dilemma(double temptation, double reward,
                               double punishment, double sucker) {
  if (!(temptation > reward && reward > punishment && punishment > sucker)) {
    throw std::invalid_argument("prisoners_dilemma requires T > R > P > S");
  }
  BimatrixGame::Table t{};
  t[0][0] = {reward, reward};
  t[0][1] = {sucker, temptation};
  t[1][0] = {temptation, sucker};
  t[1][1] = {punishment, punishment};
  return BimatrixGame(t);
}

BimatrixGame birds_payoffs(double f, double s) {
  check_speeds(f, s);
  BimatrixGame::Table t{};
  // The slow peer now accounts for the opportunity cost of a missed
  // slow-slow relationship when cooperating with the fast peer.
  t[0][0] = {s - f, f - s};  // both cooperate
  t[0][1] = {0.0, f};        // fast cooperates, slow defects
  t[1][0] = {s, 0.0};        // fast defects, slow cooperates
  t[1][1] = {0.0, 0.0};      // both defect
  return BimatrixGame(t);
}

}  // namespace dsa::gametheory
