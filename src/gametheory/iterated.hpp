// Agent-based simulator of the Sec. 2.1 iterated-games model: a population
// of peers, each with an upload speed (its bandwidth class), playing
// TFT-style rounds with Ur regular reciprocation slots and one optimistic
// first-move slot. A peer "wins a game" whenever another peer cooperates
// with it in a round (Table 1's notion of game wins).
//
// Two strategies are modeled:
//  * BitTorrent — reciprocate with the Ur *fastest* of last round's
//    cooperators;
//  * Birds      — reciprocate with the Ur cooperators *closest to one's own
//    speed* (Sec. 2.3's deployment of the Fig. 1(c) payoffs).
//
// The simulator exists to cross-check the closed forms of expected_wins.hpp:
// a lone Birds invader should out-win the BitTorrent incumbents of its own
// class, and a lone BitTorrent invader should under-win Birds incumbents.
#pragma once

#include <cstdint>
#include <vector>

namespace dsa::gametheory {

/// Peer strategy in the iterated-games model.
enum class Strategy { kBitTorrent, kBirds };

/// One peer of the population.
struct PeerSpec {
  double speed = 1.0;
  Strategy strategy = Strategy::kBitTorrent;
};

/// Simulation controls.
struct IteratedConfig {
  std::size_t regular_slots = 4;  // Ur
  std::size_t rounds = 500;
  std::uint64_t seed = 42;
};

/// Per-peer outcome.
struct IteratedResult {
  /// Average games won per round, indexed like the input population.
  std::vector<double> average_wins;

  /// Mean of average_wins over the peers selected by `indices`.
  [[nodiscard]] double mean_over(const std::vector<std::size_t>& indices) const;
};

/// Runs the iterated-games model. Throws std::invalid_argument for empty
/// populations or zero slots/rounds.
IteratedResult simulate_iterated_games(const std::vector<PeerSpec>& peers,
                                       const IteratedConfig& config);

/// Convenience: builds a population with `count_per_class` peers at each of
/// the given class speeds, all using `strategy`.
std::vector<PeerSpec> uniform_population(
    const std::vector<double>& class_speeds, std::size_t count_per_class,
    Strategy strategy);

}  // namespace dsa::gametheory
