// The analytical model of Sec. 2.2 and the Appendix: closed-form expected
// numbers of "game wins" (received cooperation) for a peer c of a given
// bandwidth class, under the BitTorrent (TFT) and Birds protocols, plus the
// single-invader analysis that proves BitTorrent is not a Nash equilibrium
// while Birds is.
//
// Notation follows Table 1 of the paper:
//   NA / NB / NC — number of peers in classes above / below / equal to c's;
//   Ur           — number of regular (reciprocation) unchoke slots;
//   Nr           — NA + NB + NC - Ur - 1;
// and the number of optimistic-unchoke slots is fixed at 1, as in the paper.
#pragma once

#include <cstddef>
#include <vector>

namespace dsa::gametheory {

/// Population composition around a focal peer c (Table 1).
struct ClassSetup {
  std::size_t peers_above = 0;   // NA
  std::size_t peers_below = 0;   // NB
  std::size_t peers_same = 0;    // NC (includes peer c itself)
  std::size_t regular_slots = 0; // Ur

  /// Nr = NA + NB + NC - Ur - 1.
  [[nodiscard]] double contention_pool() const;

  /// The model's standing assumptions: NA > Ur (higher classes never need
  /// lower-class partners), NC > Ur + 1 (a full partner set fits in c's own
  /// class), and Ur >= 1.
  [[nodiscard]] bool valid() const;
};

/// Expected game wins of the focal peer, split by source (Table 1's
/// Er[X -> c] and E[X -> c]).
struct ExpectedWins {
  double reciprocated_above = 0.0;  // Er[A -> c]
  double reciprocated_below = 0.0;  // Er[B -> c]
  double reciprocated_same = 0.0;   // Er[C -> c]
  double free_above = 0.0;          // E[A -> c]
  double free_below = 0.0;          // E[B -> c]
  double free_same = 0.0;           // E[C -> c]

  [[nodiscard]] double total() const {
    return reciprocated_above + reciprocated_below + reciprocated_same +
           free_above + free_below + free_same;
  }
};

/// Sec. 2.2: expected wins of a BitTorrent peer in an all-BitTorrent swarm.
/// Throws std::invalid_argument when !setup.valid().
ExpectedWins bittorrent_expected_wins(const ClassSetup& setup);

/// Sec. 2.3: expected wins of a Birds peer in an all-Birds swarm.
ExpectedWins birds_expected_wins(const ClassSetup& setup);

/// Outcome of the Appendix single-invader analysis.
struct InvasionAnalysis {
  ExpectedWins invader;            // the single deviating peer
  ExpectedWins incumbent;          // a same-class peer of the majority
  bool invader_outperforms = false;  // invader.total() > incumbent.total()
};

/// Appendix, part 1: one Birds peer enters a swarm of BitTorrent peers.
/// invader_outperforms == true demonstrates BitTorrent is NOT a Nash
/// equilibrium.
InvasionAnalysis birds_invades_bittorrent(const ClassSetup& setup);

/// Appendix, part 2: one BitTorrent peer enters a swarm of Birds peers.
/// invader_outperforms == false (the Birds incumbents win) demonstrates
/// Birds IS a Nash equilibrium.
InvasionAnalysis bittorrent_invades_birds(const ClassSetup& setup);

/// A full multi-class population: class_sizes[i] peers in class i, ordered
/// from slowest (index 0) to fastest. The Table 1 quantities for a focal
/// peer of class c follow as NA = sum of sizes above c, NB = sum below,
/// NC = class_sizes[c].
struct ClassProfile {
  std::vector<std::size_t> class_sizes;  // slowest first
  std::size_t regular_slots = 0;         // Ur

  /// The model's assumptions applied per class: every class needs
  /// NC > Ur + 1, and every non-top class needs NA > Ur (the top class has
  /// NA = 0 — nobody above to desert to, so its K uses E[A->c] = 0).
  [[nodiscard]] bool valid() const;

  /// The focal-peer view from class `c`; throws std::out_of_range.
  [[nodiscard]] ClassSetup setup_for(std::size_t c) const;
};

/// Sec. 2.2 evaluated for EVERY class of a population at once: entry c is
/// the expected wins of a peer in class c when all peers run BitTorrent
/// (resp. Birds). Throws std::invalid_argument when !profile.valid().
std::vector<ExpectedWins> bittorrent_population_wins(
    const ClassProfile& profile);
std::vector<ExpectedWins> birds_population_wins(const ClassProfile& profile);

}  // namespace dsa::gametheory
