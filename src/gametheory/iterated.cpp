#include "gametheory/iterated.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace dsa::gametheory {

double IteratedResult::mean_over(
    const std::vector<std::size_t>& indices) const {
  if (indices.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i : indices) sum += average_wins.at(i);
  return sum / static_cast<double>(indices.size());
}

IteratedResult simulate_iterated_games(const std::vector<PeerSpec>& peers,
                                       const IteratedConfig& config) {
  const std::size_t n = peers.size();
  if (n < 2) {
    throw std::invalid_argument("simulate_iterated_games: need >= 2 peers");
  }
  if (config.regular_slots == 0 || config.rounds == 0) {
    throw std::invalid_argument(
        "simulate_iterated_games: slots and rounds must be positive");
  }

  util::Rng rng(config.seed);

  // cooperated_last[i] lists who cooperated with peer i in the previous
  // round; wins[i] counts incoming cooperations over all rounds.
  std::vector<std::vector<std::uint32_t>> cooperated_last(n);
  std::vector<std::vector<std::uint32_t>> cooperated_next(n);
  std::vector<std::uint64_t> wins(n, 0);

  std::vector<std::uint32_t> candidates;
  std::vector<char> chosen(n, 0);

  for (std::size_t round = 0; round < config.rounds; ++round) {
    for (auto& list : cooperated_next) list.clear();

    for (std::size_t me = 0; me < n; ++me) {
      const PeerSpec& self = peers[me];
      candidates.assign(cooperated_last[me].begin(),
                        cooperated_last[me].end());

      // Rank last round's cooperators per strategy and reciprocate with the
      // top Ur of them.
      if (self.strategy == Strategy::kBitTorrent) {
        std::sort(candidates.begin(), candidates.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                    if (peers[a].speed != peers[b].speed) {
                      return peers[a].speed > peers[b].speed;
                    }
                    return a < b;
                  });
      } else {
        std::sort(candidates.begin(), candidates.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                    const double da = std::fabs(peers[a].speed - self.speed);
                    const double db = std::fabs(peers[b].speed - self.speed);
                    if (da != db) return da < db;
                    return a < b;
                  });
      }
      const std::size_t reciprocations =
          std::min(config.regular_slots, candidates.size());

      std::fill(chosen.begin(), chosen.end(), 0);
      for (std::size_t slot = 0; slot < reciprocations; ++slot) {
        const std::uint32_t partner = candidates[slot];
        chosen[partner] = 1;
        cooperated_next[partner].push_back(static_cast<std::uint32_t>(me));
        ++wins[partner];
      }

      // One optimistic first-move cooperation with a random non-partner
      // (skipped when every other peer is already reciprocated with).
      if (reciprocations < n - 1) {
        std::uint32_t target;
        do {
          target = static_cast<std::uint32_t>(rng.below(n));
        } while (target == me || chosen[target]);
        cooperated_next[target].push_back(static_cast<std::uint32_t>(me));
        ++wins[target];
      }
    }

    cooperated_last.swap(cooperated_next);
  }

  IteratedResult result;
  result.average_wins.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.average_wins[i] =
        static_cast<double>(wins[i]) / static_cast<double>(config.rounds);
  }
  return result;
}

std::vector<PeerSpec> uniform_population(
    const std::vector<double>& class_speeds, std::size_t count_per_class,
    Strategy strategy) {
  std::vector<PeerSpec> peers;
  peers.reserve(class_speeds.size() * count_per_class);
  for (double speed : class_speeds) {
    for (std::size_t i = 0; i < count_per_class; ++i) {
      peers.push_back(PeerSpec{speed, strategy});
    }
  }
  return peers;
}

}  // namespace dsa::gametheory
