#include "report/report.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "swarming/protocol.hpp"
#include "util/json.hpp"
#include "util/table_printer.hpp"

namespace dsa::report {

std::string render_csv_table(const util::CsvTable& table) {
  util::TablePrinter printer(table.header());
  for (std::size_t i = 0; i < table.row_count(); ++i) {
    printer.add_row(table.row(i));
  }
  std::ostringstream out;
  printer.print(out);
  return out.str();
}

namespace {

std::uint64_t parse_run_key(const util::json::Value& value,
                            const std::string& origin) {
  // run is serialized as a decimal string (full 64-bit seeds do not fit a
  // JSON number); accept a plain number too for hand-written fixtures.
  if (value.type == util::json::Value::Type::kString) {
    return std::strtoull(value.text.c_str(), nullptr, 10);
  }
  if (value.type == util::json::Value::Type::kNumber) {
    return static_cast<std::uint64_t>(value.number);
  }
  throw std::runtime_error(origin + ": event 'run' must be a string");
}

}  // namespace

Recording load_recording(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open recording: " + path.string());
  }
  const std::string origin = path.string();
  Recording recording;
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const util::json::Value value = util::json::parse(line, origin);
    if (!saw_header) {
      const auto* type = value.find("type");
      if (type == nullptr || type->text != "recording") {
        throw std::runtime_error(origin +
                                 ": not a recording (missing header line)");
      }
      if (const auto* level = value.find("level")) {
        recording.level = obs::parse_record_level(level->text);
      }
      if (const auto* stride = value.find("stride")) {
        recording.stride = static_cast<std::uint32_t>(stride->number);
      }
      saw_header = true;
      continue;
    }
    obs::Event event;
    const auto* kind = value.find("kind");
    if (kind == nullptr) {
      throw std::runtime_error(origin + ": event line without 'kind'");
    }
    event.kind = obs::parse_event_kind(kind->text);
    if (const auto* run = value.find("run")) {
      event.run = parse_run_key(*run, origin);
    }
    if (const auto* time = value.find("time")) {
      event.time = static_cast<std::uint32_t>(time->number);
    }
    if (const auto* actor = value.find("actor")) {
      event.actor = static_cast<std::uint32_t>(actor->number);
    }
    if (const auto* peer = value.find("peer")) {
      event.peer = static_cast<std::uint32_t>(peer->number);
    }
    if (const auto* values = value.find("value")) {
      for (std::size_t i = 0; i < values->items.size() && i < 4; ++i) {
        event.value[i] = values->items[i].number;
      }
    }
    if (const auto* label = value.find("label")) event.label = label->text;
    if (const auto* detail = value.find("detail")) event.detail = detail->text;
    recording.events.push_back(std::move(event));
  }
  if (!saw_header) {
    throw std::runtime_error(origin + ": empty recording");
  }
  return recording;
}

// ---------------------------------------------------------------- Fig. 5

std::array<std::vector<double>, 3> fig5_robustness_by_policy(
    std::span<const obs::Event> events) {
  std::array<std::vector<double>, 3> by_policy;
  for (const obs::Event& event : events) {
    if (event.kind != obs::EventKind::kPra) continue;
    const auto spec = swarming::decode_protocol(event.actor);
    if (spec.stranger_slots == 0) continue;  // the h = 0 singleton
    by_policy[static_cast<std::size_t>(spec.stranger_policy)].push_back(
        event.value[1]);
  }
  return by_policy;
}

std::array<std::vector<double>, 3> fig5_robustness_by_policy(
    std::span<const swarming::PraRecord> records) {
  std::array<std::vector<double>, 3> by_policy;
  for (const auto& rec : records) {
    if (rec.spec.stranger_slots == 0) continue;
    by_policy[static_cast<std::size_t>(rec.spec.stranger_policy)].push_back(
        rec.robustness);
  }
  return by_policy;
}

Fig5Tables render_fig5(const std::array<std::vector<double>, 3>& by_policy) {
  static const char* const kNames[3] = {"Periodic", "WhenNeeded", "Defect"};
  Fig5Tables tables;
  std::ostringstream out;

  out << "\nCCDF series P(R > x):\n";
  util::TablePrinter ccdf_table({"x", "Periodic", "WhenNeeded", "Defect"});
  std::array<std::optional<stats::Ccdf>, 3> ccdfs;
  for (int p = 0; p < 3; ++p) {
    if (!by_policy[p].empty()) ccdfs[p].emplace(by_policy[p]);
  }
  for (int i = 0; i <= 20; ++i) {
    const double x = i / 20.0;
    std::vector<std::string> row{util::fixed(x, 2)};
    for (int p = 0; p < 3; ++p) {
      row.push_back(ccdfs[p] ? util::fixed(ccdfs[p]->at(x), 3) : "-");
    }
    ccdf_table.add_row(std::move(row));
  }
  ccdf_table.print(out);

  out << "\nPer-policy robustness summary:\n";
  util::TablePrinter summary({"policy", "n", "mean", "p90", "max"});
  for (int p = 0; p < 3; ++p) {
    tables.mean_r[p] = stats::mean(by_policy[p]);
    tables.max_r[p] = stats::max_value(by_policy[p]);
    summary.add_row(
        {kNames[p], std::to_string(by_policy[p].size()),
         util::fixed(tables.mean_r[p], 3),
         by_policy[p].empty() ? "-"
                              : util::fixed(
                                    stats::percentile(by_policy[p], 0.9), 3),
         util::fixed(tables.max_r[p], 3)});
  }
  summary.print(out);

  tables.text = std::move(out).str();
  return tables;
}

// ---------------------------------------------------------------- Fig. 9

namespace {

/// Mean group download time over leechers [begin, end), unfinished runs
/// capped — the exact arithmetic of SwarmResult::group_mean_time, summed in
/// ascending leecher order.
double group_mean(const std::vector<double>& times, std::size_t begin,
                  std::size_t end, double cap) {
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    sum += times[i] >= 0.0 ? times[i] : cap;
  }
  return sum / static_cast<double>(end - begin);
}

}  // namespace

std::vector<EncounterSeries> encounter_series_from_events(
    std::span<const obs::Event> events) {
  // Per-run leecher completion times, ascending leecher index (the
  // canonical sort order guarantees ascending actor within a run).
  std::unordered_map<std::uint64_t, std::vector<double>> leecher_times;
  for (const obs::Event& event : events) {
    if (event.kind != obs::EventKind::kLeecher) continue;
    auto& times = leecher_times[event.run];
    if (times.size() != event.actor) {
      throw std::runtime_error(
          "recording has non-contiguous leecher summaries for run " +
          std::to_string(event.run));
    }
    times.push_back(event.value[1]);
  }

  struct Group {
    std::string title, variant_a, variant_b;
    // count_a -> mixed-swarm runs in file order (= run key ascending).
    std::map<std::size_t, std::vector<const obs::Event*>> by_count;
  };
  std::vector<Group> groups;
  std::map<std::pair<std::string, std::string>, std::size_t> group_index;
  for (const obs::Event& event : events) {
    if (event.kind != obs::EventKind::kMixedSwarm) continue;
    const auto key = std::make_pair(event.detail, event.label);
    auto [it, inserted] = group_index.emplace(key, groups.size());
    if (inserted) {
      Group group;
      group.title = event.detail.empty() ? event.label : event.detail;
      const auto bar = event.label.find('|');
      group.variant_a = event.label.substr(0, bar);
      group.variant_b =
          bar == std::string::npos ? "" : event.label.substr(bar + 1);
      groups.push_back(std::move(group));
    }
    groups[it->second].by_count[static_cast<std::size_t>(event.value[0])]
        .push_back(&event);
  }

  std::vector<EncounterSeries> result;
  for (const Group& group : groups) {
    EncounterSeries series;
    series.title = group.title;
    series.variant_a = group.variant_a;
    series.variant_b = group.variant_b;
    for (const auto& [count_a, runs] : group.by_count) {
      EncounterPoint point;
      point.count_a = count_a;
      std::vector<double> times_a, times_b;
      for (const obs::Event* mixed : runs) {
        const auto total = static_cast<std::size_t>(mixed->value[1]);
        const double cap = mixed->value[2];
        point.fraction = static_cast<double>(count_a) /
                         static_cast<double>(total);
        const auto it = leecher_times.find(mixed->run);
        if (it == leecher_times.end() || it->second.size() != total) {
          throw std::runtime_error(
              "recording lacks leecher summaries for mixed-swarm run " +
              std::to_string(mixed->run));
        }
        if (count_a > 0) {
          times_a.push_back(group_mean(it->second, 0, count_a, cap));
        }
        if (count_a < total) {
          times_b.push_back(group_mean(it->second, count_a, total, cap));
        }
      }
      if (!times_a.empty()) {
        point.has_a = true;
        point.mean_a = stats::mean(times_a);
        point.ci_a = stats::ci95_half_width(times_a);
      }
      if (!times_b.empty()) {
        point.has_b = true;
        point.mean_b = stats::mean(times_b);
        point.ci_b = stats::ci95_half_width(times_b);
      }
      series.points.push_back(point);
    }
    result.push_back(std::move(series));
  }
  return result;
}

std::string render_encounter_series(const EncounterSeries& series) {
  std::ostringstream out;
  out << '\n' << series.title << '\n';
  util::TablePrinter table({"fraction of " + series.variant_a,
                            series.variant_a + " avg time (s)",
                            series.variant_b + " avg time (s)"});
  for (const auto& point : series.points) {
    table.add_row(
        {util::fixed(point.fraction, 2),
         point.has_a ? util::fixed(point.mean_a, 1) + " +/- " +
                           util::fixed(point.ci_a, 1)
                     : "-",
         point.has_b ? util::fixed(point.mean_b, 1) + " +/- " +
                           util::fixed(point.ci_b, 1)
                     : "-"});
  }
  table.print(out);
  return std::move(out).str();
}

// ------------------------------------------------- generic report tables

std::string render_summary(const Recording& recording) {
  std::ostringstream out;
  out << "\nRecording: level=" << obs::to_string(recording.level)
      << " stride=" << recording.stride << " events="
      << recording.events.size() << '\n';
  util::TablePrinter table({"kind", "events", "runs"});
  for (int k = 0; k <= static_cast<int>(obs::EventKind::kMixedSwarm); ++k) {
    const auto kind = static_cast<obs::EventKind>(k);
    std::size_t count = 0;
    std::vector<std::uint64_t> runs;
    for (const obs::Event& event : recording.events) {
      if (event.kind != kind) continue;
      ++count;
      runs.push_back(event.run);
    }
    if (count == 0) continue;
    std::sort(runs.begin(), runs.end());
    runs.erase(std::unique(runs.begin(), runs.end()), runs.end());
    table.add_row({obs::to_string(kind), std::to_string(count),
                   std::to_string(runs.size())});
  }
  table.print(out);
  return std::move(out).str();
}

namespace {

struct MeanAccumulator {
  double perf = 0.0, robust = 0.0, aggr = 0.0;
  std::size_t n = 0;
  void add(const obs::Event& event) {
    perf += event.value[0];
    robust += event.value[1];
    aggr += event.value[2];
    ++n;
  }
  [[nodiscard]] std::vector<std::string> row(const std::string& name) const {
    const auto d = static_cast<double>(n == 0 ? 1 : n);
    return {name, std::to_string(n), util::fixed(perf / d, 3),
            util::fixed(robust / d, 3), util::fixed(aggr / d, 3)};
  }
};

}  // namespace

std::string render_pra_breakdowns(std::span<const obs::Event> events) {
  std::ostringstream out;

  out << "\nMean PRA by ranking function (Fig. 6):\n";
  {
    std::array<MeanAccumulator, 6> by_ranking;
    for (const obs::Event& event : events) {
      if (event.kind != obs::EventKind::kPra) continue;
      const auto spec = swarming::decode_protocol(event.actor);
      if (spec.partner_slots == 0) continue;  // ranking is inert at k = 0
      by_ranking[static_cast<std::size_t>(spec.ranking)].add(event);
    }
    util::TablePrinter table({"ranking", "n", "perf", "robust", "aggr"});
    for (int r = 0; r < 6; ++r) {
      if (by_ranking[r].n == 0) continue;
      table.add_row(by_ranking[r].row(
          swarming::to_string(static_cast<swarming::RankingFunction>(r))));
    }
    table.print(out);
  }

  out << "\nMean PRA by allocation policy (Fig. 7):\n";
  {
    std::array<MeanAccumulator, 3> by_allocation;
    for (const obs::Event& event : events) {
      if (event.kind != obs::EventKind::kPra) continue;
      const auto spec = swarming::decode_protocol(event.actor);
      by_allocation[static_cast<std::size_t>(spec.allocation)].add(event);
    }
    util::TablePrinter table({"allocation", "n", "perf", "robust", "aggr"});
    for (int a = 0; a < 3; ++a) {
      if (by_allocation[a].n == 0) continue;
      table.add_row(by_allocation[a].row(
          swarming::to_string(static_cast<swarming::AllocationPolicy>(a))));
    }
    table.print(out);
  }
  return std::move(out).str();
}

std::string render_win_matrix(std::span<const obs::Event> events) {
  // Per run: mean outcome per label. Round-model kPeer summaries score by
  // throughput (higher wins); swarm kLeecher summaries score by download
  // time (lower wins; unfinished = +inf-ish sentinel).
  struct RunTally {
    std::map<std::string, std::pair<double, std::size_t>> by_label;
    bool time_based = false;
  };
  std::map<std::uint64_t, RunTally> runs;
  for (const obs::Event& event : events) {
    if (event.kind == obs::EventKind::kPeer) {
      auto& entry = runs[event.run].by_label[event.label];
      entry.first += event.value[1];
      ++entry.second;
    } else if (event.kind == obs::EventKind::kLeecher) {
      RunTally& tally = runs[event.run];
      tally.time_based = true;
      auto& entry = tally.by_label[event.label];
      entry.first += event.value[1] >= 0.0 ? event.value[1] : 1e18;
      ++entry.second;
    }
  }

  struct Cell {
    std::size_t wins_a = 0, wins_b = 0, ties = 0, games = 0;
  };
  std::map<std::pair<std::string, std::string>, Cell> matrix;
  for (const auto& [run, tally] : runs) {
    if (tally.by_label.size() != 2) continue;
    const auto first = tally.by_label.begin();
    const auto second = std::next(first);
    const double mean_a = first->second.first /
                          static_cast<double>(first->second.second);
    const double mean_b = second->second.first /
                          static_cast<double>(second->second.second);
    Cell& cell = matrix[{first->first, second->first}];
    ++cell.games;
    // A strictly better group mean wins the game (Sec. 4.3.2).
    const bool a_wins =
        tally.time_based ? mean_a < mean_b : mean_a > mean_b;
    const bool b_wins =
        tally.time_based ? mean_b < mean_a : mean_b > mean_a;
    if (a_wins) {
      ++cell.wins_a;
    } else if (b_wins) {
      ++cell.wins_b;
    } else {
      ++cell.ties;
    }
  }

  std::ostringstream out;
  out << "\nWin matrix (two-group games):\n";
  util::TablePrinter table({"A", "B", "A wins", "B wins", "ties", "games"});
  for (const auto& [pair, cell] : matrix) {
    table.add_row({pair.first, pair.second, std::to_string(cell.wins_a),
                   std::to_string(cell.wins_b), std::to_string(cell.ties),
                   std::to_string(cell.games)});
  }
  table.print(out);
  return std::move(out).str();
}

std::string render_swarm_times(std::span<const obs::Event> events) {
  struct VariantTimes {
    std::size_t n = 0;
    std::vector<double> completed;
  };
  std::map<std::string, VariantTimes> by_variant;
  for (const obs::Event& event : events) {
    if (event.kind != obs::EventKind::kLeecher) continue;
    VariantTimes& entry = by_variant[event.label];
    ++entry.n;
    if (event.value[1] >= 0.0) entry.completed.push_back(event.value[1]);
  }

  std::ostringstream out;
  out << "\nDownload times by client variant (Fig. 10):\n";
  util::TablePrinter table(
      {"variant", "n", "completed", "mean (s)", "p90 (s)", "max (s)"});
  for (const auto& [variant, entry] : by_variant) {
    const bool any = !entry.completed.empty();
    table.add_row(
        {variant, std::to_string(entry.n),
         std::to_string(entry.completed.size()),
         any ? util::fixed(stats::mean(entry.completed), 1) : "-",
         any ? util::fixed(stats::percentile(entry.completed, 0.9), 1) : "-",
         any ? util::fixed(stats::max_value(entry.completed), 1) : "-"});
  }
  table.print(out);
  return std::move(out).str();
}

namespace {

std::string fault_peer_name(std::uint32_t actor) {
  // kFault actors use engine indexing: 0 = seeder, leecher l at l + 1.
  return actor == 0 ? "seeder" : "leecher " + std::to_string(actor - 1);
}

}  // namespace

std::string render_fault_timeline(std::span<const obs::Event> events) {
  std::ostringstream out;
  out << "\nFault timeline:\n";
  util::TablePrinter table({"tick", "peer", "event", "detail"});
  std::size_t count = 0;
  for (const obs::Event& event : events) {
    if (event.kind != obs::EventKind::kFault) continue;
    ++count;
    std::string detail;
    if (event.label == "crash") {
      detail = "down " + util::fixed(event.value[0], 0) + " ticks, wiped " +
               util::fixed(event.value[1], 0) + " pieces";
    } else if (event.label == "outage_begin") {
      detail = "until tick " + util::fixed(event.value[0], 0);
    } else if (event.label == "outage_end") {
      detail = "dark for " + util::fixed(event.value[0], 0) + " ticks";
    }
    table.add_row({std::to_string(event.time), fault_peer_name(event.actor),
                   event.label, detail});
  }
  if (count == 0) {
    out << "  (no fault events recorded)\n";
    return std::move(out).str();
  }
  table.print(out);
  return std::move(out).str();
}

std::string render_fault_impact(std::span<const obs::Event> worst,
                                std::span<const obs::Event> baseline) {
  // kLeecher actors are 0-based leecher indices (seeder excluded), so the
  // two runs join directly on the actor.
  struct LeecherRow {
    std::string client;
    double capacity = 0.0;
    double worst_s = -1.0;
    double baseline_s = -1.0;
    bool in_worst = false, in_baseline = false;
  };
  std::map<std::uint32_t, LeecherRow> rows;
  for (const obs::Event& event : worst) {
    if (event.kind != obs::EventKind::kLeecher) continue;
    LeecherRow& row = rows[event.actor];
    row.client = event.label;
    row.capacity = event.value[0];
    row.worst_s = event.value[1];
    row.in_worst = true;
  }
  for (const obs::Event& event : baseline) {
    if (event.kind != obs::EventKind::kLeecher) continue;
    LeecherRow& row = rows[event.actor];
    row.client = event.label;
    row.capacity = event.value[0];
    row.baseline_s = event.value[1];
    row.in_baseline = true;
  }

  std::ostringstream out;
  out << "\nPer-leecher impact (worst schedule vs fault-free baseline):\n";
  if (rows.empty()) {
    out << "  (no leecher summaries recorded)\n";
    return std::move(out).str();
  }
  util::TablePrinter table({"leecher", "client", "capacity", "baseline (s)",
                            "worst (s)", "delta (s)"});
  std::vector<double> deltas;
  for (const auto& [actor, row] : rows) {
    const bool base_done = row.in_baseline && row.baseline_s >= 0.0;
    const bool worst_done = row.in_worst && row.worst_s >= 0.0;
    std::string delta = "-";
    if (base_done && worst_done) {
      deltas.push_back(row.worst_s - row.baseline_s);
      delta = util::fixed(row.worst_s - row.baseline_s, 1);
    }
    table.add_row({std::to_string(actor), row.client,
                   util::fixed(row.capacity, 0),
                   base_done ? util::fixed(row.baseline_s, 1) : "-",
                   worst_done ? util::fixed(row.worst_s, 1) : "-", delta});
  }
  table.print(out);
  if (!deltas.empty()) {
    out << "mean delta over " << deltas.size()
        << " leechers finishing in both runs: "
        << util::fixed(stats::mean(deltas), 1) << " s\n";
  }
  const std::size_t unfinished = [&] {
    std::size_t n = 0;
    for (const auto& [actor, row] : rows) {
      if (row.in_worst && row.worst_s < 0.0) ++n;
    }
    return n;
  }();
  if (unfinished > 0) {
    out << unfinished
        << " leecher(s) never finished under the worst schedule\n";
  }
  return std::move(out).str();
}

std::string render_health_timeline(
    std::span<const obs::TimeseriesSample> samples) {
  // Union of metric names and of each metric's field keys across all
  // samples, so a metric that appears mid-run still gets full columns.
  std::map<std::string, std::set<std::string>> fields_by_metric;
  for (const obs::TimeseriesSample& sample : samples) {
    for (const auto& [metric, fields] : sample.sketches) {
      for (const auto& [key, value] : fields) {
        fields_by_metric[metric].insert(key);
      }
    }
  }

  std::ostringstream out;
  out << "\nSwarm-health timelines (" << samples.size() << " samples):\n";
  if (fields_by_metric.empty()) {
    out << "  (no sketch sections in this time-series; run with\n"
           "   DSA_STATUS=on and metric feeds enabled)\n";
    return std::move(out).str();
  }

  for (const auto& [metric, keys] : fields_by_metric) {
    // Stable column order: count, quantiles (map order sorts p50 < p90 <
    // p99 < p999), then the moment fields.
    std::vector<std::string> columns;
    if (keys.count("count") != 0) columns.push_back("count");
    for (const std::string& key : keys) {
      if (!key.empty() && key[0] == 'p') columns.push_back(key);
    }
    for (const char* moment : {"min", "mean", "max", "stddev"}) {
      if (keys.count(moment) != 0) columns.push_back(moment);
    }
    for (const std::string& key : keys) {
      if (std::find(columns.begin(), columns.end(), key) == columns.end()) {
        columns.push_back(key);
      }
    }

    out << "\n" << metric << ":\n";
    std::vector<std::string> header = {"sample", "uptime (s)"};
    header.insert(header.end(), columns.begin(), columns.end());
    util::TablePrinter table(header);
    for (const obs::TimeseriesSample& sample : samples) {
      const auto entry = sample.sketches.find(metric);
      if (entry == sample.sketches.end()) continue;
      std::vector<std::string> row = {std::to_string(sample.seq),
                                      util::fixed(sample.uptime_sec, 1)};
      for (const std::string& column : columns) {
        const auto field = entry->second.find(column);
        if (field == entry->second.end()) {
          row.push_back("-");
        } else if (column == "count") {
          row.push_back(util::fixed(field->second, 0));
        } else {
          row.push_back(util::fixed(field->second, 4));
        }
      }
      table.add_row(std::move(row));
    }
    table.print(out);
  }
  return std::move(out).str();
}

}  // namespace dsa::report
