// Figure-grade aggregation over flight recordings (obs/recorder.hpp).
//
// The layer is split in two so the figure benches and `dsa_cli report`
// render *the same bytes* from either source:
//
//  * extraction — typed series pulled out of a recording's event stream
//    (fig5_robustness_by_policy, encounter_series_from_events, ...). Each
//    extractor also has a twin that builds the identical series straight
//    from in-memory results (PraRecord rows, swarm outcomes), which is what
//    the benches fall back to when the recorder is compiled out
//    (-DDSA_TRACE=OFF).
//  * rendering — pure functions from a typed series to the exact table text
//    the corresponding bench has always printed. Byte-for-byte equality of
//    the two paths is enforced by the recorder golden tests.
//
// Lives in its own library (dsa_report) rather than dsa_obs because the
// extractors decode protocol ids and client variants — dsa_obs must stay
// below dsa_swarming/dsa_swarm in the layering.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "swarming/pra_dataset.hpp"
#include "util/csv.hpp"

namespace dsa::report {

// ----------------------------------------------------- scenario results

/// Renders a merged scenario result as an aligned text table (header,
/// separator, rows) — the `dsa_cli query --table` view of a serve answer.
/// Pure function of the table's cells, so it is as deterministic as the
/// CSV it mirrors.
std::string render_csv_table(const util::CsvTable& table);

/// A parsed recording file: the header's capture settings plus the events
/// in file order (which save() wrote canonically sorted).
struct Recording {
  obs::RecordLevel level = obs::RecordLevel::kOff;
  std::uint32_t stride = 1;
  std::vector<obs::Event> events;
};

/// Parses a recording JSONL written by obs::Recorder::save. Throws
/// std::runtime_error (or util::json::ParseError) on unreadable files,
/// missing headers, or unknown event kinds. Serializing the result back
/// through obs::to_recording_jsonl reproduces the input bytes.
Recording load_recording(const std::filesystem::path& path);

// ---------------------------------------------------------------- Fig. 5

/// Robustness samples per stranger policy (Periodic, WhenNeeded, Defect),
/// from the kPra events of a recording, in protocol-id order; the h = 0
/// singleton is skipped, exactly like the Fig. 5 bench.
std::array<std::vector<double>, 3> fig5_robustness_by_policy(
    std::span<const obs::Event> events);

/// The same series straight from PRA records (the recorder-off twin).
std::array<std::vector<double>, 3> fig5_robustness_by_policy(
    std::span<const swarming::PraRecord> records);

/// The rendered Fig. 5 tables plus the summary statistics the bench's
/// verdict lines test.
struct Fig5Tables {
  std::string text;  // CCDF table + per-policy summary table
  std::array<double, 3> mean_r{};
  std::array<double, 3> max_r{};
};

/// Renders the CCDF table and per-policy summary exactly as
/// bench_fig5_stranger_ccdf prints them. Policies with no samples render
/// empty-distribution rows ("-") instead of throwing.
Fig5Tables render_fig5(const std::array<std::vector<double>, 3>& by_policy);

// ---------------------------------------------------------------- Fig. 9

/// One client-mix point of a competitive-encounter series.
struct EncounterPoint {
  double fraction = 0.0;  // realized fraction: count_a / total
  std::size_t count_a = 0;
  double mean_a = 0.0, ci_a = 0.0;
  double mean_b = 0.0, ci_b = 0.0;
  bool has_a = false, has_b = false;
};

/// One Fig. 9 panel: every mixed-swarm experiment sharing a (context,
/// variant-pair) tag, fractions ascending.
struct EncounterSeries {
  std::string title;      // the recording context, e.g. "Fig. 9(a): ..."
  std::string variant_a;  // client names split from the "A|B" label
  std::string variant_b;
  std::vector<EncounterPoint> points;
};

/// Rebuilds encounter series from kMixedSwarm + kLeecher events: groups by
/// (context, variant pair) ordered by first run key, fractions by count_a
/// ascending, repetitions by run key ascending — the same iteration order
/// the Fig. 9 bench uses, so means and confidence intervals match bitwise.
std::vector<EncounterSeries> encounter_series_from_events(
    std::span<const obs::Event> events);

/// Renders one panel exactly as bench_fig9_encounters prints it: a blank
/// line, the title, and the fraction/time table.
std::string render_encounter_series(const EncounterSeries& series);

// ------------------------------------------------- generic report tables

/// Event-count / run-count overview of a recording.
std::string render_summary(const Recording& recording);

/// Mean P/R/A by ranking function and by allocation policy (Figs. 6-7),
/// from kPra events.
std::string render_pra_breakdowns(std::span<const obs::Event> events);

/// Win matrix between protocol/variant groups (Figs. 1/9 flavor): for every
/// run whose kPeer (round model) or kLeecher (swarm) summaries span exactly
/// two labels, the higher group-mean throughput (or lower group-mean
/// download time) wins; cells count wins across runs.
std::string render_win_matrix(std::span<const obs::Event> events);

/// Download-time summary per client variant from kLeecher events (Fig. 10
/// flavor): n, completed, mean/p90/max seconds per label.
std::string render_swarm_times(std::span<const obs::Event> events);

// ------------------------------------------------- failure reports (explore)

/// Chronological table of a run's kFault events (crashes, seeder outage
/// begin/end) with per-event detail — the "what struck when" half of a
/// worst-case failure report. Renders a placeholder note when the events
/// hold no faults.
std::string render_fault_timeline(std::span<const obs::Event> events);

/// Per-leecher impact table contrasting a worst-schedule run against the
/// fault-free baseline, from each run's kLeecher events: capacity, both
/// download times, and the delta, plus mean-delta summary lines. Leechers
/// that never finished render "-" and are excluded from the means.
std::string render_fault_impact(std::span<const obs::Event> worst,
                                std::span<const obs::Event> baseline);

// ------------------------------------------------- health timelines (obs)

/// Renders the per-interval swarm-health timelines of one telemetry
/// time-series (obs::load_timeseries): one table per sketch metric, a row
/// per sample carrying the sketch's count plus its quantile/moment
/// columns — the `dsa_cli report --health` view. Pure function of the
/// samples; renders a placeholder note when no sample carries sketches.
std::string render_health_timeline(
    std::span<const obs::TimeseriesSample> samples);

}  // namespace dsa::report
