// Cycle-based simulation model of Sec. 4.3.1.
//
// Time advances in synchronous rounds. Every round each peer, using only the
// previous rounds' state:
//   1. builds its candidate list — the peers that *interacted* with it
//      (allocated it an upload slot, possibly of zero bandwidth) within its
//      candidate window (TFT: last round; TF2T: last two rounds);
//   2. ranks the candidates with its ranking function and selects the top
//      k as partners;
//   3. contacts strangers (peers outside the candidate list) per its
//      stranger policy — Periodic: always h of them; When-needed: h only
//      while it has fewer than k *contributing* partners (positive receipts
//      over the window — zero-giving candidates don't make a partner set
//      "full", or freeriders could lock a peer out of recruitment forever);
//      Defect: contacts h strangers but allocates them nothing (the
//      defection is visible to the stranger, which the paper's Sort-Slowest
//      analysis relies on);
//   4. divides its upload capacity across FIXED lanes: k partner lanes (the
//      protocol's configured slot count — a "magic number" of the design)
//      plus one lane per gifted stranger. A partner lane with nobody behind
//      it wastes its bandwidth, which is why low-k protocols lead the
//      performance ranking (Fig. 3) and partner-freeriders cap out at their
//      stranger-gift fraction (Sec. 4.4's ~0.31 ceiling). Partner lanes
//      carry Equal Split (one lane each), Prop Share (the k-lane budget
//      split proportionally to contributions over the candidate window; an
//      all-zero window yields nothing, reproducing the paper's
//      bootstrap-failure observation), or Freeride (nothing). Defect-policy
//      stranger contacts open no lane — defecting costs nothing.
//
// A peer's utility is its mean received bandwidth per round ("download
// speed"); the population's performance is the mean peer utility
// ("throughput of the population").
//
// Churn (studied in Sec. 4.4) replaces a peer with a fresh same-protocol
// peer (new capacity, empty history) with a per-round probability. The
// legacy churn_rate knob is one instance of the pluggable fault processes
// in fault/fault_process.hpp — burst churn, capacity degradation, and
// targeted failure of the top-capacity class plug in the same way via
// SimulationConfig::faults.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fault/fault_process.hpp"
#include "swarming/bandwidth.hpp"
#include "swarming/protocol.hpp"
#include "util/rng.hpp"

namespace dsa::swarming {

/// Which implementation of the round model executes a run. All engines
/// produce bitwise-identical outcomes for every configuration (enforced by
/// the simulator tests and the golden-fingerprint tests); kSparse is the
/// default production path, kDense the original O(n^2)-per-round
/// implementation kept as the reference for equivalence checks and
/// before/after benchmarking, and kBatch the lockstep engine that advances
/// W independent simulations at once (see batch_engine.hpp).
enum class SimEngine : std::uint8_t {
  /// Epoch-stamped sparse round state + reusable workspace: per-round cost
  /// O(n * (k + h)) instead of O(n^2), O(1) allocations per reused
  /// workspace instead of ~10 per simulation.
  kSparse,
  /// The seed implementation: dense n^2 matrices refilled every round,
  /// freshly allocated per simulation.
  kDense,
  /// Batch-lockstep engine: W simulations advance round-by-round together,
  /// per-peer scalars held as W-wide lanes (structure-of-arrays over runs)
  /// and RNG draws bulk-advanced across the batch. Through this scalar
  /// entry point it runs a single-lane batch; the W-wide path is
  /// simulate_rounds_batch in batch_engine.hpp.
  kBatch,
};

/// Reusable scratch memory for the sparse engine: the interaction-history
/// generations, stamps, streaks, and per-peer scratch vectors of a run.
/// Reusing one workspace across many simulate_rounds calls (one per thread —
/// a workspace must never be shared between concurrent runs) keeps a sweep
/// at O(1) heap allocations per thread; epoch stamping makes reuse safe
/// without clearing the O(n^2) arrays between runs. A default-constructed
/// workspace holds no memory until its first run. The dense engine ignores
/// it.
class SimWorkspace {
 public:
  SimWorkspace();
  ~SimWorkspace();
  SimWorkspace(SimWorkspace&&) noexcept;
  SimWorkspace& operator=(SimWorkspace&&) noexcept;
  SimWorkspace(const SimWorkspace&) = delete;
  SimWorkspace& operator=(const SimWorkspace&) = delete;

  struct Impl;
  [[nodiscard]] Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// How a peer's capacity maps onto its partner slots. kFixedLanes is the
/// paper-faithful model (see the header comment); kDivideAmongSelected is
/// the idealized alternative where unfilled slots redistribute instead of
/// wasting — kept for the ablation bench, which shows that Fig. 3's
/// low-partner-count advantage hinges on the fixed-lane assumption.
enum class LaneModel : std::uint8_t {
  kFixedLanes,
  kDivideAmongSelected,
};

/// Controls for one simulation run.
struct SimulationConfig {
  std::size_t rounds = 500;    // the paper's default
  double churn_rate = 0.0;     // per-peer per-round replacement probability
  std::uint64_t seed = 1;
  /// Smoothing factor of the Adaptive ranking's aspiration level
  /// (Posch-style win-stay/lose-shift adjustment).
  double aspiration_smoothing = 0.25;
  LaneModel lane_model = LaneModel::kFixedLanes;
  /// Fraction of a stranger lane's bandwidth that actually reaches the
  /// stranger. Stranger cooperation is a short-lived probe (BitTorrent's
  /// optimistic unchoke is active only "for some iterations" within a
  /// choke period), so a gift lane delivers less than a settled partner
  /// lane. This is what caps gift-only protocols (freeriders, partnerless
  /// gifters) near the paper's ~0.31 performance ceiling while leaving
  /// reciprocal relationships at full efficiency.
  double stranger_efficiency = 0.3;
  /// Optional receiver-side intake cap, as a multiple of the peer's own
  /// upload capacity: inbound bandwidth beyond intake_factor * capacity is
  /// lost (scaled down proportionally across senders). Disabled (<= 0) by
  /// default; exposed for ablations of download-constrained settings.
  double intake_factor = 0.0;
  /// When true, SimulationOutcome::round_throughput records the population
  /// mean received bandwidth of every round (convergence analysis).
  bool record_round_series = false;
  /// Fault processes applied in order at the end of every round, after the
  /// legacy churn_rate (kept for backward compatibility — it is equivalent
  /// to a leading memoryless_churn process). Any process that replaces
  /// peers requires a churn_source.
  std::vector<fault::FaultProcess> faults;
  /// Which engine executes the run. The two paths are bitwise-identical;
  /// kDense exists for equivalence checks and before/after benchmarks.
  SimEngine engine = SimEngine::kSparse;

  /// Rejects degenerate configurations with std::invalid_argument naming
  /// the offending field.
  void validate() const;

  /// True when the run replaces peers (legacy churn or a fault process) and
  /// therefore needs a bandwidth distribution for fresh capacities.
  [[nodiscard]] bool needs_churn_source() const noexcept;
};

/// Result of one run.
struct SimulationOutcome {
  /// Mean received bandwidth per round, per peer (KBps).
  std::vector<double> peer_throughput;

  /// Population mean received bandwidth per round (only filled when
  /// SimulationConfig::record_round_series is set).
  std::vector<double> round_throughput;

  /// Peers replaced over the run by churn and fault processes.
  std::size_t peers_replaced = 0;

  /// Mean throughput over peers [begin, end).
  [[nodiscard]] double group_mean(std::size_t begin, std::size_t end) const;

  /// Mean throughput over the whole population.
  [[nodiscard]] double population_mean() const;
};

/// Runs the round-based model for an arbitrary mixed population.
///
/// `protocols[i]` and `capacities[i]` describe peer i; the two vectors must
/// be equal-length and non-empty (throws std::invalid_argument otherwise).
/// `churn_source` must be provided whenever the config replaces peers —
/// churn_rate > 0 or any peer-replacing fault process (fresh peers draw
/// their capacity from it).
///
/// `workspace` supplies reusable scratch memory for the sparse engine; when
/// null, a thread-local workspace is used, so back-to-back runs on one
/// thread already reuse allocations. Passing an explicit workspace gives the
/// caller control over reuse (e.g. a fresh workspace per run for the
/// determinism tests). The outcome never depends on which workspace is used
/// or what it previously ran.
SimulationOutcome simulate_rounds(
    const std::vector<ProtocolSpec>& protocols,
    const std::vector<double>& capacities, const SimulationConfig& config,
    const BandwidthDistribution* churn_source = nullptr,
    SimWorkspace* workspace = nullptr);

/// Stratified capacities shuffled with the run's seed so group membership is
/// uncorrelated with capacity — the capacity draw every encounter and
/// homogeneous run uses. Exposed so batch callers can reproduce the exact
/// per-run capacity vectors.
std::vector<double> shuffled_capacities(std::size_t count,
                                        const BandwidthDistribution& dist,
                                        std::uint64_t seed);

/// Mean utilities of the two protocol groups in a mixed population.
struct EncounterOutcome {
  double group_a_mean = 0.0;
  double group_b_mean = 0.0;

  [[nodiscard]] bool a_wins() const { return group_a_mean > group_b_mean; }
};

/// Runs one encounter (Sec. 4.3.2): `count_a` peers run `a` and `count_b`
/// run `b`; capacities are a stratified draw from `bandwidths`, shuffled so
/// both groups face the same capacity mix in expectation.
EncounterOutcome run_encounter(const ProtocolSpec& a, const ProtocolSpec& b,
                               std::size_t count_a, std::size_t count_b,
                               const SimulationConfig& config,
                               const BandwidthDistribution& bandwidths);

/// Population throughput when all `count` peers execute `spec` (the
/// Performance experiments of Sec. 4.3.2).
double run_homogeneous_throughput(const ProtocolSpec& spec, std::size_t count,
                                  const SimulationConfig& config,
                                  const BandwidthDistribution& bandwidths);

}  // namespace dsa::swarming
