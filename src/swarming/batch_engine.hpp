// Batch-lockstep execution of the round model: W independent simulations
// advance round-by-round together.
//
// The lanes share the round/churn/fault configuration and the population
// size but carry their own protocol vector, capacity vector, and seed. Per
// round the engine:
//   * bulk-advances all W RNG streams for the tie-priority draws
//     (util::LaneRng::next_all — the auto-vectorizable inner loop),
//   * runs every peer's act() across the lanes at the same round index, so
//     the protocol table and config stay hot while the batch is swept,
//   * updates the per-peer scalar state (capacities, aspiration, received
//     totals) held as W-wide lanes — structure-of-arrays over runs, index
//     [peer * W + lane] — in straight-line loops over the batch.
//
// Every lane's result is bitwise-identical to running that lane alone on
// the sparse or dense engine with the same seed: each lane owns a private
// RNG stream equal to util::Rng(seed) draw-for-draw, and all floating-point
// expressions keep the sparse engine's exact shape (no reassociation, no
// precomputed reciprocals), so identical operations execute in identical
// order per lane. The equivalence is enforced by the simulator tests and
// the golden-fingerprint suites at every tested batch width.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault_process.hpp"
#include "swarming/bandwidth.hpp"
#include "swarming/protocol.hpp"
#include "swarming/simulator.hpp"

namespace dsa::swarming {

/// One lane of a lockstep batch: an independent simulation. The pointed-to
/// vectors must outlive the simulate_rounds_batch call and all lanes of one
/// call must describe the same population size.
struct BatchLane {
  const std::vector<ProtocolSpec>* protocols = nullptr;
  const std::vector<double>* capacities = nullptr;
  std::uint64_t seed = 0;
};

/// Reusable scratch memory for the batch engine: per-lane interaction
/// histories plus the W-wide state lanes of a batch. Same reuse contract as
/// SimWorkspace — one workspace per thread, never shared between concurrent
/// calls, reuse across calls is allocation-free once grown and never
/// changes results.
class BatchWorkspace {
 public:
  BatchWorkspace();
  ~BatchWorkspace();
  BatchWorkspace(BatchWorkspace&&) noexcept;
  BatchWorkspace& operator=(BatchWorkspace&&) noexcept;
  BatchWorkspace(const BatchWorkspace&) = delete;
  BatchWorkspace& operator=(const BatchWorkspace&) = delete;

  struct Impl;
  [[nodiscard]] Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// Runs all `lanes` in lockstep; entry w is exactly what
/// simulate_rounds(*lanes[w].protocols, *lanes[w].capacities, config) with
/// config.seed = lanes[w].seed would return on any engine. `config.seed` is
/// ignored (each lane carries its own). Throws std::invalid_argument on an
/// empty batch, mismatched population sizes, or a missing churn source when
/// the config replaces peers. When `workspace` is null a thread-local one
/// is used, so back-to-back batches on one thread reuse allocations.
std::vector<SimulationOutcome> simulate_rounds_batch(
    std::span<const BatchLane> lanes, const SimulationConfig& config,
    const BandwidthDistribution* churn_source = nullptr,
    BatchWorkspace* workspace = nullptr);

/// Batched homogeneous performance runs: all `count` peers execute `spec`;
/// lane w uses seeds[w] (capacities drawn per lane exactly as
/// run_homogeneous_throughput does). out[w] receives lane w's population
/// mean; out.size() must equal seeds.size().
void run_homogeneous_throughput_batch(const ProtocolSpec& spec,
                                      std::size_t count,
                                      const SimulationConfig& config,
                                      const BandwidthDistribution& bandwidths,
                                      std::span<const std::uint64_t> seeds,
                                      std::span<double> out);

/// One encounter of a batched tournament: lane w plays `a` (count_a peers)
/// against opponents[w] (count_b peers) with seeds[w].
struct BatchEncounter {
  ProtocolSpec opponent;
  std::uint64_t seed = 0;
};

/// Batched encounters sharing protocol `a` and the group split; out[w]
/// receives lane w's (group a mean, group b mean). out.size() must equal
/// encounters.size().
void run_encounter_batch(const ProtocolSpec& a, std::size_t count_a,
                         std::size_t count_b, const SimulationConfig& config,
                         const BandwidthDistribution& bandwidths,
                         std::span<const BatchEncounter> encounters,
                         std::span<EncounterOutcome> out);

}  // namespace dsa::swarming
