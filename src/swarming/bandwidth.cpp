#include "swarming/bandwidth.hpp"

#include <algorithm>
#include <stdexcept>

namespace dsa::swarming {

BandwidthDistribution::BandwidthDistribution(std::vector<Knot> knots)
    : knots_(std::move(knots)) {
  if (knots_.size() < 2 || knots_.front().quantile != 0.0 ||
      knots_.back().quantile != 1.0) {
    throw std::invalid_argument(
        "BandwidthDistribution: knots must span quantiles [0, 1]");
  }
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (knots_[i].quantile <= knots_[i - 1].quantile ||
        knots_[i].capacity_kbps < knots_[i - 1].capacity_kbps) {
      throw std::invalid_argument(
          "BandwidthDistribution: knots must be strictly increasing in "
          "quantile and non-decreasing in capacity");
    }
  }
  if (knots_.front().capacity_kbps <= 0.0) {
    throw std::invalid_argument(
        "BandwidthDistribution: capacities must be positive");
  }
}

BandwidthDistribution BandwidthDistribution::piatek() {
  // Approximation of Piatek et al. (NSDI'07), Fig. 2: upload capacities of
  // BitTorrent peers. Median ~56 KBps; 80th percentile ~300 KBps; a few
  // percent of peers above 1 MBps.
  return BandwidthDistribution({
      {0.00, 6.0},
      {0.10, 14.0},
      {0.20, 28.0},
      {0.30, 41.0},
      {0.40, 50.0},
      {0.50, 56.0},
      {0.60, 80.0},
      {0.70, 150.0},
      {0.80, 300.0},
      {0.90, 745.0},
      {0.95, 1523.0},
      {1.00, 5000.0},
  });
}

double BandwidthDistribution::capacity_at(double quantile) const {
  const double q = std::clamp(quantile, 0.0, 1.0);
  // Find the segment containing q (knot count is tiny; linear scan).
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (q <= knots_[i].quantile) {
      const Knot& lo = knots_[i - 1];
      const Knot& hi = knots_[i];
      const double t = (q - lo.quantile) / (hi.quantile - lo.quantile);
      return lo.capacity_kbps + t * (hi.capacity_kbps - lo.capacity_kbps);
    }
  }
  return knots_.back().capacity_kbps;
}

double BandwidthDistribution::sample(util::Rng& rng) const {
  return capacity_at(rng.uniform());
}

std::vector<double> BandwidthDistribution::stratified_sample(
    std::size_t count) const {
  std::vector<double> capacities(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double q = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(count);
    capacities[i] = capacity_at(q);
  }
  return capacities;
}

}  // namespace dsa::swarming
