#include "swarming/protocol.hpp"

#include <stdexcept>

namespace dsa::swarming {

namespace {

// Sub-space sizes (Sec. 4.2).
constexpr std::uint32_t kStrangerOptions = 10;   // 3 policies * h{1..3} + h=0
constexpr std::uint32_t kSelectionOptions = 109;  // 2 * 6 * 9 + k=0
constexpr std::uint32_t kAllocationOptions = 3;
constexpr std::uint32_t kNoStrangerIndex = 9;    // the h = 0 singleton
constexpr std::uint32_t kNoPartnerIndex = 108;   // the k = 0 singleton

static_assert(kStrangerOptions * kSelectionOptions * kAllocationOptions ==
              kProtocolCount);

}  // namespace

std::string ProtocolSpec::describe() const {
  std::string text;
  if (stranger_slots == 0) {
    text += "NoStrangers";
  } else {
    text += to_string(stranger_policy) + "(h=" +
            std::to_string(stranger_slots) + ")";
  }
  text += " | ";
  if (partner_slots == 0) {
    text += "NoPartners";
  } else {
    text += to_string(window) + "/" + to_string(ranking) +
            "(k=" + std::to_string(partner_slots) + ")";
  }
  text += " | " + to_string(allocation);
  return text;
}

ProtocolSpec decode_protocol(std::uint32_t id) {
  if (id >= kProtocolCount) {
    throw std::out_of_range("decode_protocol: id " + std::to_string(id) +
                            " outside [0, " + std::to_string(kProtocolCount) +
                            ")");
  }
  const std::uint32_t allocation = id % kAllocationOptions;
  const std::uint32_t selection = (id / kAllocationOptions) % kSelectionOptions;
  const std::uint32_t stranger =
      id / (kAllocationOptions * kSelectionOptions);

  ProtocolSpec spec;
  spec.allocation = static_cast<AllocationPolicy>(allocation);

  if (stranger == kNoStrangerIndex) {
    spec.stranger_policy = StrangerPolicy::kPeriodic;  // canonical inert value
    spec.stranger_slots = 0;
  } else {
    spec.stranger_policy = static_cast<StrangerPolicy>(stranger / 3);
    spec.stranger_slots = static_cast<std::uint8_t>(stranger % 3 + 1);
  }

  if (selection == kNoPartnerIndex) {
    spec.window = CandidateWindow::kTft;  // canonical inert values
    spec.ranking = RankingFunction::kFastest;
    spec.partner_slots = 0;
  } else {
    spec.window = static_cast<CandidateWindow>(selection / (6 * 9));
    spec.ranking = static_cast<RankingFunction>((selection / 9) % 6);
    spec.partner_slots = static_cast<std::uint8_t>(selection % 9 + 1);
  }
  return spec;
}

std::uint32_t encode_protocol(const ProtocolSpec& spec) {
  if (spec.stranger_slots > 3 || spec.partner_slots > 9) {
    throw std::invalid_argument("encode_protocol: h or k outside the space");
  }
  std::uint32_t stranger;
  if (spec.stranger_slots == 0) {
    if (spec.stranger_policy != StrangerPolicy::kPeriodic) {
      throw std::invalid_argument(
          "encode_protocol: h = 0 requires the canonical kPeriodic policy");
    }
    stranger = kNoStrangerIndex;
  } else {
    stranger = static_cast<std::uint32_t>(spec.stranger_policy) * 3 +
               (spec.stranger_slots - 1);
  }

  std::uint32_t selection;
  if (spec.partner_slots == 0) {
    if (spec.window != CandidateWindow::kTft ||
        spec.ranking != RankingFunction::kFastest) {
      throw std::invalid_argument(
          "encode_protocol: k = 0 requires canonical TFT/Fastest fields");
    }
    selection = kNoPartnerIndex;
  } else {
    selection = static_cast<std::uint32_t>(spec.window) * 6 * 9 +
                static_cast<std::uint32_t>(spec.ranking) * 9 +
                (spec.partner_slots - 1);
  }

  return stranger * kSelectionOptions * kAllocationOptions +
         selection * kAllocationOptions +
         static_cast<std::uint32_t>(spec.allocation);
}

ProtocolSpec bittorrent_protocol() {
  ProtocolSpec spec;
  spec.stranger_policy = StrangerPolicy::kPeriodic;
  spec.stranger_slots = 1;  // the optimistic unchoke slot
  spec.window = CandidateWindow::kTft;
  spec.ranking = RankingFunction::kFastest;
  spec.partner_slots = 4;  // BitTorrent's default regular unchoke count
  spec.allocation = AllocationPolicy::kEqualSplit;
  return spec;
}

ProtocolSpec birds_protocol() {
  ProtocolSpec spec = bittorrent_protocol();
  spec.ranking = RankingFunction::kProximity;
  return spec;
}

ProtocolSpec loyal_when_needed_protocol() {
  ProtocolSpec spec = bittorrent_protocol();
  spec.ranking = RankingFunction::kLoyal;
  spec.stranger_policy = StrangerPolicy::kWhenNeeded;
  return spec;
}

ProtocolSpec sort_s_protocol() {
  ProtocolSpec spec;
  spec.stranger_policy = StrangerPolicy::kDefect;
  spec.stranger_slots = 1;
  spec.window = CandidateWindow::kTft;
  spec.ranking = RankingFunction::kSlowest;
  spec.partner_slots = 1;
  spec.allocation = AllocationPolicy::kEqualSplit;
  return spec;
}

ProtocolSpec random_rank_protocol() {
  ProtocolSpec spec = bittorrent_protocol();
  spec.ranking = RankingFunction::kRandom;
  return spec;
}

std::string to_string(StrangerPolicy policy) {
  switch (policy) {
    case StrangerPolicy::kPeriodic: return "Periodic";
    case StrangerPolicy::kWhenNeeded: return "WhenNeeded";
    case StrangerPolicy::kDefect: return "Defect";
  }
  return "?";
}

std::string to_string(CandidateWindow window) {
  switch (window) {
    case CandidateWindow::kTft: return "TFT";
    case CandidateWindow::kTf2t: return "TF2T";
  }
  return "?";
}

std::string to_string(RankingFunction ranking) {
  switch (ranking) {
    case RankingFunction::kFastest: return "Fastest";
    case RankingFunction::kSlowest: return "Slowest";
    case RankingFunction::kProximity: return "Proximity";
    case RankingFunction::kAdaptive: return "Adaptive";
    case RankingFunction::kLoyal: return "Loyal";
    case RankingFunction::kRandom: return "Random";
  }
  return "?";
}

std::string to_string(AllocationPolicy allocation) {
  switch (allocation) {
    case AllocationPolicy::kEqualSplit: return "EqualSplit";
    case AllocationPolicy::kPropShare: return "PropShare";
    case AllocationPolicy::kFreeride: return "Freeride";
  }
  return "?";
}

}  // namespace dsa::swarming
