// The actualized P2P file-swarming design space of Sec. 4.2.
//
// A protocol is the combination of:
//   Stranger policy   — Periodic / When-needed / Defect, with h in {1,2,3}
//                       strangers, plus the singleton "no strangers" (h = 0):
//                       3*3 + 1 = 10 options;
//   Selection function — candidate window TFT / TF2T, ranking function
//                       (Sort Fastest / Slowest / Proximity / Adaptive /
//                       Loyal / Random), k in {1..9} partners, plus the
//                       singleton "no partners" (k = 0):
//                       2*6*9 + 1 = 109 options;
//   Resource allocation — Equal Split / Prop Share / Freeride: 3 options.
//
// Total: 10 * 109 * 3 = 3270 unique protocols, densely encoded as ids in
// [0, 3270) so that tournament results can live in flat arrays.
#pragma once

#include <cstdint>
#include <string>

namespace dsa::swarming {

/// B1-B3 of Sec. 4.2.
enum class StrangerPolicy : std::uint8_t {
  kPeriodic = 0,    // B1: give to up to h strangers every round
  kWhenNeeded = 1,  // B2: only while the partner set is not full
  kDefect = 2,      // B3: contact strangers but give them nothing
};

/// C1-C2: how far back the candidate list looks.
enum class CandidateWindow : std::uint8_t {
  kTft = 0,   // C1: peers that interacted with us in the last round
  kTf2t = 1,  // C2: ... in either of the last two rounds
};

/// I1-I6 of Sec. 4.2.
enum class RankingFunction : std::uint8_t {
  kFastest = 0,    // I1
  kSlowest = 1,    // I2
  kProximity = 2,  // I3: closest to own upload capacity (Birds)
  kAdaptive = 3,   // I4: closest to an adaptive aspiration level
  kLoyal = 4,      // I5: longest uninterrupted cooperation
  kRandom = 5,     // I6
};

/// R1-R3 of Sec. 4.2.
enum class AllocationPolicy : std::uint8_t {
  kEqualSplit = 0,  // R1
  kPropShare = 1,   // R2: proportional to the partner's past contribution
  kFreeride = 2,    // R3: give partners nothing
};

/// Number of protocols in the actualized space.
inline constexpr std::uint32_t kProtocolCount = 10 * 109 * 3;

/// Fully decoded protocol. When stranger_slots == 0 the stranger policy is
/// canonicalized to kPeriodic; when partner_slots == 0 the window/ranking are
/// canonicalized to kTft/kFastest — those fields are inert in that case, and
/// canonicalization keeps encode(decode(id)) == id.
struct ProtocolSpec {
  StrangerPolicy stranger_policy = StrangerPolicy::kPeriodic;
  std::uint8_t stranger_slots = 1;  // h in {0..3}
  CandidateWindow window = CandidateWindow::kTft;
  RankingFunction ranking = RankingFunction::kFastest;
  std::uint8_t partner_slots = 1;  // k in {0..9}
  AllocationPolicy allocation = AllocationPolicy::kEqualSplit;

  bool operator==(const ProtocolSpec&) const = default;

  /// Human-readable summary, e.g.
  /// "WhenNeeded(h=2) | TFT/Loyal(k=7) | PropShare".
  [[nodiscard]] std::string describe() const;
};

/// Decodes a dense id in [0, kProtocolCount); throws std::out_of_range
/// otherwise.
ProtocolSpec decode_protocol(std::uint32_t id);

/// Inverse of decode_protocol; throws std::invalid_argument for specs
/// outside the space (h > 3, k > 9, or non-canonical inert fields).
std::uint32_t encode_protocol(const ProtocolSpec& spec);

/// Named protocols the paper singles out.
/// BitTorrent reference: TFT + Sort Fastest, k = 4 regular unchoke slots,
/// Equal Split, Periodic strangers h = 1 (the optimistic unchoke slot).
ProtocolSpec bittorrent_protocol();
/// Birds (Sec. 2.3): BitTorrent with the Proximity ranking function.
ProtocolSpec birds_protocol();
/// Loyal-When-needed (Sec. 5): Sort Loyal + When-needed strangers.
ProtocolSpec loyal_when_needed_protocol();
/// Sort-S (Sec. 4.4/5): Sort Slowest, defect on strangers, one partner.
ProtocolSpec sort_s_protocol();
/// Random-ranking BitTorrent variant used in Fig. 10.
ProtocolSpec random_rank_protocol();

/// Short display names for enum values (used in tables and CSV).
std::string to_string(StrangerPolicy policy);
std::string to_string(CandidateWindow window);
std::string to_string(RankingFunction ranking);
std::string to_string(AllocationPolicy allocation);

}  // namespace dsa::swarming
