#include "swarming/simulator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "swarming/batch_engine.hpp"
#include "swarming/engine_detail.hpp"

namespace dsa::swarming {

void SimulationConfig::validate() const {
  if (rounds == 0) {
    throw std::invalid_argument("SimulationConfig.rounds: must be > 0");
  }
  if (!(churn_rate >= 0.0 && churn_rate <= 1.0)) {
    throw std::invalid_argument(
        "SimulationConfig.churn_rate: must be in [0, 1]");
  }
  if (!(aspiration_smoothing >= 0.0 && aspiration_smoothing <= 1.0)) {
    throw std::invalid_argument(
        "SimulationConfig.aspiration_smoothing: must be in [0, 1]");
  }
  if (!(stranger_efficiency >= 0.0 && stranger_efficiency <= 1.0)) {
    throw std::invalid_argument(
        "SimulationConfig.stranger_efficiency: must be in [0, 1]");
  }
  if (!(intake_factor >= 0.0)) {
    throw std::invalid_argument(
        "SimulationConfig.intake_factor: must be >= 0");
  }
  for (const fault::FaultProcess& process : faults) process.validate();
}

bool SimulationConfig::needs_churn_source() const noexcept {
  if (churn_rate > 0.0) return true;
  for (const fault::FaultProcess& process : faults) {
    if (process.replaces_peers()) return true;
  }
  return false;
}

double SimulationOutcome::group_mean(std::size_t begin, std::size_t end) const {
  if (begin >= end || end > peer_throughput.size()) {
    throw std::invalid_argument("SimulationOutcome::group_mean: bad range");
  }
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += peer_throughput[i];
  return sum / static_cast<double>(end - begin);
}

double SimulationOutcome::population_mean() const {
  return group_mean(0, peer_throughput.size());
}

// ------------------------------------------------------------ workspace --
// SimWorkspace::Impl itself is defined in engine_detail.hpp, shared with the
// batch-lockstep engine.

SimWorkspace::SimWorkspace() : impl_(std::make_unique<Impl>()) {}
SimWorkspace::~SimWorkspace() = default;
SimWorkspace::SimWorkspace(SimWorkspace&&) noexcept = default;
SimWorkspace& SimWorkspace::operator=(SimWorkspace&&) noexcept = default;

namespace {

/// The original (seed) implementation: all mutable per-run state laid out as
/// dense n^2 matrices refilled every round, freshly allocated per run.
/// Matrices are indexed [receiver * n + giver] so that one peer's view of
/// everyone who served it is a contiguous row. Kept verbatim as the
/// reference the sparse engine is tested bitwise-identical against, and as
/// the "before" side of bench_sweep_throughput.
class DenseEngine {
 public:
  DenseEngine(const std::vector<ProtocolSpec>& protocols,
              const std::vector<double>& capacities,
              const SimulationConfig& config,
              const BandwidthDistribution* churn_source)
      : protocols_(protocols),
        capacities_(capacities),
        config_(config),
        churn_source_(churn_source),
        n_(protocols.size()),
        rng_(config.seed),
        received_now_(n_ * n_, 0.0),
        received_prev_(n_ * n_, 0.0),
        received_next_(n_ * n_, 0.0),
        interacted_now_(n_ * n_, 0),
        interacted_prev_(n_ * n_, 0),
        interacted_next_(n_ * n_, 0),
        streak_(n_ * n_, 0),
        aspiration_(capacities),
        round_received_(n_, 0.0),
        total_received_(n_, 0.0) {
    candidates_.reserve(n_);
    eligible_strangers_.reserve(n_);
    is_candidate_.assign(n_, 0);
    tie_priority_.assign(n_, 0);
  }

  SimulationOutcome run() {
    DSA_OBS_PHASE("sim/run");
    SimulationOutcome outcome;
    if (config_.record_round_series) {
      outcome.round_throughput.reserve(config_.rounds);
    }
    if (capture_.rounds()) {
      capture_.emit({.kind = obs::EventKind::kRun,
                     .run = config_.seed,
                     .value = {{static_cast<double>(n_),
                                static_cast<double>(config_.rounds),
                                config_.churn_rate, 0.0}},
                     .label = "round",
                     .detail = capture_.context()});
    }
    {
      // The inner-loop span: a wall-clock sample landing anywhere in the
      // round loop attributes as sim/run;sim/rounds (one span per run, so
      // the disabled path stays a single branch).
      DSA_OBS_PHASE("sim/rounds");
      for (std::size_t round = 0; round < config_.rounds; ++round) {
        step(round);
        if (config_.record_round_series) {
          double round_mean = 0.0;
          for (std::size_t i = 0; i < n_; ++i) round_mean += round_received_[i];
          outcome.round_throughput.push_back(round_mean /
                                             static_cast<double>(n_));
        }
        if (capture_.rounds() && capture_.sampled(round)) {
          double round_mean = 0.0;
          for (std::size_t i = 0; i < n_; ++i) round_mean += round_received_[i];
          capture_.emit({.kind = obs::EventKind::kRound,
                         .run = config_.seed,
                         .time = static_cast<std::uint32_t>(round),
                         .value = {{round_mean / static_cast<double>(n_),
                                    static_cast<double>(peers_replaced_), 0.0,
                                    0.0}}});
        }
      }
    }
    outcome.peer_throughput.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      outcome.peer_throughput[i] =
          total_received_[i] / static_cast<double>(config_.rounds);
    }
    outcome.peers_replaced = peers_replaced_;
    observe_score_spread(outcome.peer_throughput);
    if (capture_.rounds()) {
      for (std::size_t i = 0; i < n_; ++i) {
        capture_.emit({.kind = obs::EventKind::kPeer,
                       .run = config_.seed,
                       .actor = static_cast<std::uint32_t>(i),
                       .value = {{capacities_[i], outcome.peer_throughput[i],
                                  0.0, 0.0}},
                       .label = protocols_[i].describe()});
      }
    }
    flush_metrics();
    return outcome;
  }

 private:
  void step(std::size_t round) {
    std::fill(round_received_.begin(), round_received_.end(), 0.0);
    std::fill(received_next_.begin(), received_next_.end(), 0.0);
    std::fill(interacted_next_.begin(), interacted_next_.end(), 0);
    // Fresh random ranking tie-breaks each round; a fixed (e.g. index-based)
    // order would funnel every all-zero-tied choice onto the same peers.
    for (auto& priority : tie_priority_) {
      priority = static_cast<std::uint32_t>(rng_());
    }

    round_ = static_cast<std::uint32_t>(round);
    // act() is templated on the record flag, and the dispatch sits outside
    // the peer loop, so the non-recording round compiles to exactly the
    // pre-recorder hot path — the emit sites must not cost codegen (or
    // loop shape) when recording is off.
    if (capture_.full() && capture_.sampled(round)) {
      for (std::size_t me = 0; me < n_; ++me) act<true>(me);
    } else {
      for (std::size_t me = 0; me < n_; ++me) act<false>(me);
    }

    finish_round(round);
  }

  /// Peer `me` selects partners/strangers and allocates its capacity,
  /// reading only the *_now_ / *_prev_ state and writing *_next_.
  /// noinline+flatten: keeps each instantiation a standalone function with
  /// rank_candidates/pick_strangers inlined into it — the same codegen
  /// shape as the pre-template build. Without this the inliner splits the
  /// helpers out (they now have two callers), costing ~3% on the dense
  /// engine's bench_sweep_throughput path.
  template <bool kRecordFull>
  [[gnu::noinline]] [[gnu::flatten]] void act(std::size_t me) {
    const ProtocolSpec& spec = protocols_[me];
    const bool two_rounds = spec.window == CandidateWindow::kTf2t;

    // 1. Candidate list: everyone that interacted with me in the window.
    candidates_.clear();
    const std::uint8_t* now_row = &interacted_now_[me * n_];
    const std::uint8_t* prev_row = &interacted_prev_[me * n_];
    for (std::size_t j = 0; j < n_; ++j) {
      const bool known = now_row[j] || (two_rounds && prev_row[j]);
      is_candidate_[j] = known ? 1 : 0;
      if (known) candidates_.push_back(static_cast<std::uint32_t>(j));
    }
    candidates_scanned_ += n_;  // the dense build always walks the full row

    // 2. Rank and select the top k partners.
    const std::size_t k = spec.partner_slots;
    std::size_t partner_count = std::min(k, candidates_.size());
    if (partner_count > 0) rank_candidates(me, spec, partner_count);

    // 3. Strangers. "When needed" measures fullness in *contributing*
    // partners (positive receipts over the window): a partner set stuffed
    // with zero-giving candidates is not full, so the peer keeps recruiting
    // — otherwise freeriders could permanently lock it out of cooperation by
    // flooding its candidate list.
    std::size_t stranger_count = 0;
    if (spec.stranger_slots > 0) {
      bool wants_strangers = true;
      if (spec.stranger_policy == StrangerPolicy::kWhenNeeded) {
        std::size_t contributing = 0;
        for (std::size_t p = 0; p < partner_count; ++p) {
          if (window_received(me, candidates_[p], two_rounds) > 0.0) {
            ++contributing;
          }
        }
        wants_strangers = contributing < k;
      }
      if (wants_strangers) {
        stranger_count = pick_strangers(me, spec.stranger_slots);
      }
    }

    // 4. Allocation over FIXED lanes. The protocol's partner-slot count k is
    // one of its "magic numbers": capacity is split across k partner lanes
    // plus one lane per gifted stranger, and a partner lane with no partner
    // behind it simply wastes its bandwidth. This fixed-lane structure is
    // what makes low-k protocols the performance leaders (Fig. 3: filling 1
    // lane is easy, filling 9 is not) and caps partner-freeriders' utility
    // at their stranger-gift fraction (the ~0.31 ceiling of Sec. 4.4).
    // Defect-policy stranger contacts open no lane: defecting costs nothing.
    const bool defects_on_strangers =
        spec.stranger_policy == StrangerPolicy::kDefect;
    const std::size_t gifted_strangers =
        defects_on_strangers ? 0 : stranger_count;
    // Under kDivideAmongSelected the partner-lane count shrinks to the
    // partners actually present, so nothing is wasted (the ablation mode).
    const std::size_t partner_lanes =
        config_.lane_model == LaneModel::kFixedLanes ? k : partner_count;
    const std::size_t lanes = partner_lanes + gifted_strangers;
    // Decision events (full level, strided): pure reads of already-computed
    // values — no RNG, no sim-state writes.
    if constexpr (kRecordFull) {
      capture_.emit({.kind = obs::EventKind::kSelect,
                     .run = config_.seed,
                     .time = round_,
                     .actor = static_cast<std::uint32_t>(me),
                     .value = {{static_cast<double>(candidates_.size()),
                                static_cast<double>(partner_count),
                                static_cast<double>(stranger_count),
                                static_cast<double>(lanes)}}});
    }
    auto record_give = [&](obs::EventKind kind, std::uint32_t to,
                           double amount) {
      if constexpr (!kRecordFull) {
        (void)kind;
        (void)to;
        (void)amount;
        return;
      } else {
        obs::Event event{.kind = kind,
                         .run = config_.seed,
                         .time = round_,
                         .actor = static_cast<std::uint32_t>(me),
                         .peer = to};
        event.value[0] = amount;
        if (kind == obs::EventKind::kPartner) {
          event.value[1] = window_received(me, to, two_rounds);
        }
        capture_.emit(std::move(event));
      }
    };
    if (defects_on_strangers) {
      for (std::size_t s = 0; s < stranger_count; ++s) {
        give(me, eligible_strangers_[s], 0.0);  // visible defection
        record_give(obs::EventKind::kStranger, eligible_strangers_[s], 0.0);
      }
    }
    if (lanes == 0) return;

    const double capacity = capacities_[me];
    const double lane_rate = capacity / static_cast<double>(lanes);
    // Stranger lanes are short-lived probes; only a fraction of the lane's
    // bandwidth reaches the stranger (see SimulationConfig).
    const double gift = lane_rate * config_.stranger_efficiency;
    for (std::size_t s = 0; s < gifted_strangers; ++s) {
      give(me, eligible_strangers_[s], gift);
      record_give(obs::EventKind::kStranger, eligible_strangers_[s], gift);
    }

    if (partner_count == 0) return;
    const double partner_budget =
        lane_rate * static_cast<double>(partner_lanes);
    switch (spec.allocation) {
      case AllocationPolicy::kEqualSplit: {
        // One lane per partner; unfilled lanes (partner_count < k) waste.
        for (std::size_t p = 0; p < partner_count; ++p) {
          give(me, candidates_[p], lane_rate);
          record_give(obs::EventKind::kPartner, candidates_[p], lane_rate);
        }
        break;
      }
      case AllocationPolicy::kPropShare: {
        double contribution_sum = 0.0;
        for (std::size_t p = 0; p < partner_count; ++p) {
          contribution_sum += window_received(me, candidates_[p], two_rounds);
        }
        for (std::size_t p = 0; p < partner_count; ++p) {
          // An all-zero window gives nothing — the paper's bootstrap hazard.
          const double share =
              contribution_sum > 0.0
                  ? partner_budget *
                        window_received(me, candidates_[p], two_rounds) /
                        contribution_sum
                  : 0.0;
          give(me, candidates_[p], share);
          record_give(obs::EventKind::kPartner, candidates_[p], share);
        }
        break;
      }
      case AllocationPolicy::kFreeride: {
        for (std::size_t p = 0; p < partner_count; ++p) {
          give(me, candidates_[p], 0.0);
          record_give(obs::EventKind::kPartner, candidates_[p], 0.0);
        }
        break;
      }
    }
  }

  /// Bandwidth `me` observed from `j` over the candidate window.
  [[nodiscard]] double window_received(std::size_t me, std::size_t j,
                                       bool two_rounds) const {
    double amount = received_now_[me * n_ + j];
    if (two_rounds) amount += received_prev_[me * n_ + j];
    return amount;
  }

  /// Partially sorts candidates_ so its first `top` entries are the selected
  /// partners under `spec.ranking`. Ties break on peer index for
  /// reproducibility.
  void rank_candidates(std::size_t me, const ProtocolSpec& spec,
                       std::size_t top) {
    const bool two_rounds = spec.window == CandidateWindow::kTf2t;
    auto by_key = [&](auto key, bool descending) {
      auto cmp = [&, descending](std::uint32_t a, std::uint32_t b) {
        const double ka = key(a);
        const double kb = key(b);
        if (ka != kb) return descending ? ka > kb : ka < kb;
        if (tie_priority_[a] != tie_priority_[b]) {
          return tie_priority_[a] < tie_priority_[b];
        }
        return a < b;
      };
      std::partial_sort(candidates_.begin(), candidates_.begin() + top,
                        candidates_.end(), cmp);
    };
    switch (spec.ranking) {
      case RankingFunction::kFastest:
        by_key([&](std::uint32_t j) { return window_received(me, j, two_rounds); },
               /*descending=*/true);
        break;
      case RankingFunction::kSlowest:
        by_key([&](std::uint32_t j) { return window_received(me, j, two_rounds); },
               /*descending=*/false);
        break;
      case RankingFunction::kProximity:
        by_key(
            [&](std::uint32_t j) {
              return std::fabs(capacities_[j] - capacities_[me]);
            },
            /*descending=*/false);
        break;
      case RankingFunction::kAdaptive:
        by_key(
            [&](std::uint32_t j) {
              return std::fabs(capacities_[j] - aspiration_[me]);
            },
            /*descending=*/false);
        break;
      case RankingFunction::kLoyal:
        by_key(
            [&](std::uint32_t j) {
              return static_cast<double>(streak_[me * n_ + j]);
            },
            /*descending=*/true);
        break;
      case RankingFunction::kRandom:
        // A random draw of `top` candidates via partial Fisher-Yates.
        for (std::size_t i = 0; i < top; ++i) {
          const std::size_t j =
              i + static_cast<std::size_t>(rng_.below(candidates_.size() - i));
          std::swap(candidates_[i], candidates_[j]);
        }
        break;
    }
  }

  /// Fills the front of eligible_strangers_ with up to `want` uniformly
  /// chosen peers outside the candidate list; returns how many were found.
  std::size_t pick_strangers(std::size_t me, std::size_t want) {
    eligible_strangers_.clear();
    for (std::size_t j = 0; j < n_; ++j) {
      if (j != me && !is_candidate_[j]) {
        eligible_strangers_.push_back(static_cast<std::uint32_t>(j));
      }
    }
    const std::size_t found = std::min(want, eligible_strangers_.size());
    for (std::size_t i = 0; i < found; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(
                  rng_.below(eligible_strangers_.size() - i));
      std::swap(eligible_strangers_[i], eligible_strangers_[j]);
    }
    return found;
  }

  /// Opens a slot from `me` to `to` carrying `amount` (possibly zero).
  void give(std::size_t me, std::size_t to, double amount) {
    interacted_next_[to * n_ + me] = 1;
    received_next_[to * n_ + me] = amount;
    round_received_[to] += amount;
  }

  void finish_round(std::size_t round) {
    // Receiver intake cap: a peer absorbs at most intake_factor * capacity
    // per round; excess inbound is lost proportionally across senders.
    if (config_.intake_factor > 0.0) {
      for (std::size_t j = 0; j < n_; ++j) {
        const double intake = config_.intake_factor * capacities_[j];
        if (round_received_[j] <= intake) continue;
        const double scale = intake / round_received_[j];
        double* row = &received_next_[j * n_];
        for (std::size_t i = 0; i < n_; ++i) row[i] *= scale;
        round_received_[j] = intake;
      }
    }

    // Shift the history window.
    received_prev_.swap(received_now_);
    received_now_.swap(received_next_);
    interacted_prev_.swap(interacted_now_);
    interacted_now_.swap(interacted_next_);

    // Cooperation streaks (Loyal): consecutive rounds with a positive gift.
    for (std::size_t idx = 0; idx < n_ * n_; ++idx) {
      streak_[idx] = received_now_[idx] > 0.0
                         ? static_cast<std::uint16_t>(
                               std::min<int>(streak_[idx] + 1, 0xffff))
                         : std::uint16_t{0};
    }

    // Aspiration tracking (Adaptive): smooth toward this round's per-slot
    // receipts.
    for (std::size_t i = 0; i < n_; ++i) {
      const double slots =
          std::max<double>(1.0, protocols_[i].partner_slots);
      const double per_slot = round_received_[i] / slots;
      aspiration_[i] += config_.aspiration_smoothing *
                        (per_slot - aspiration_[i]);
      total_received_[i] += round_received_[i];
    }

    // Churn: replace peers with fresh same-protocol ones. The legacy knob
    // runs first (preserving the historical RNG draw order), then the
    // scheduled fault processes in list order.
    if (config_.churn_rate > 0.0) {
      for (std::size_t i = 0; i < n_; ++i) {
        if (rng_.chance(config_.churn_rate)) replace_peer(i);
      }
    }
    for (const fault::FaultProcess& process : config_.faults) {
      apply_fault(process, round);
    }
  }

  void apply_fault(const fault::FaultProcess& process, std::size_t round) {
    using fault::FaultProcessKind;
    switch (process.kind) {
      case FaultProcessKind::kMemorylessChurn: {
        if (process.rate <= 0.0) break;
        for (std::size_t i = 0; i < n_; ++i) {
          if (rng_.chance(process.rate)) replace_peer(i);
        }
        break;
      }
      case FaultProcessKind::kBurstChurn: {
        // The burst strikes at the end of rounds period-1, 2*period-1, ...
        if ((round + 1) % process.period != 0) break;
        const auto hit = static_cast<std::size_t>(std::lround(
            process.fraction * static_cast<double>(n_)));
        if (hit == 0) break;
        victim_scratch_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) {
          victim_scratch_[i] = static_cast<std::uint32_t>(i);
        }
        for (std::size_t i = 0; i < hit; ++i) {
          const std::size_t j =
              i + static_cast<std::size_t>(rng_.below(n_ - i));
          std::swap(victim_scratch_[i], victim_scratch_[j]);
          replace_peer(victim_scratch_[i]);
        }
        break;
      }
      case FaultProcessKind::kCapacityDegradation: {
        if (round != process.round) break;
        for (std::size_t i = 0; i < n_; ++i) {
          capacities_[i] *= process.factor;
        }
        break;
      }
      case FaultProcessKind::kTargetedFailure: {
        if (round != process.round) break;
        const auto hit = static_cast<std::size_t>(std::lround(
            process.fraction * static_cast<double>(n_)));
        if (hit == 0) break;
        // Take out exactly the top-capacity class (ties break on index so
        // replays are deterministic).
        victim_scratch_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) {
          victim_scratch_[i] = static_cast<std::uint32_t>(i);
        }
        std::partial_sort(victim_scratch_.begin(),
                          victim_scratch_.begin() +
                              static_cast<std::ptrdiff_t>(std::min(hit, n_)),
                          victim_scratch_.end(),
                          [&](std::uint32_t a, std::uint32_t b) {
                            if (capacities_[a] != capacities_[b]) {
                              return capacities_[a] > capacities_[b];
                            }
                            return a < b;
                          });
        for (std::size_t i = 0; i < std::min(hit, n_); ++i) {
          replace_peer(victim_scratch_[i]);
        }
        break;
      }
    }
  }

  void replace_peer(std::size_t i) {
    ++peers_replaced_;
    capacities_[i] = churn_source_->sample(rng_);
    aspiration_[i] = capacities_[i];
    for (std::size_t j = 0; j < n_; ++j) {
      const std::size_t row = i * n_ + j;
      const std::size_t col = j * n_ + i;
      for (auto* m : {&received_now_, &received_prev_}) {
        (*m)[row] = 0.0;
        (*m)[col] = 0.0;
      }
      for (auto* m : {&interacted_now_, &interacted_prev_}) {
        (*m)[row] = 0;
        (*m)[col] = 0;
      }
      streak_[row] = 0;
      streak_[col] = 0;
    }
    // The fresh peer's past downloads belong to the departed peer; the
    // paper measures population throughput, so the accumulator stays.
  }

  const std::vector<ProtocolSpec>& protocols_;
  std::vector<double> capacities_;
  const SimulationConfig& config_;
  const BandwidthDistribution* churn_source_;
  const std::size_t n_;
  util::Rng rng_;

  // History matrices, [receiver * n + giver].
  std::vector<double> received_now_, received_prev_, received_next_;
  std::vector<std::uint8_t> interacted_now_, interacted_prev_,
      interacted_next_;
  std::vector<std::uint16_t> streak_;

  std::vector<double> aspiration_;
  std::vector<double> round_received_;
  std::vector<double> total_received_;

  // Scratch buffers reused across rounds.
  std::vector<std::uint32_t> candidates_;
  std::vector<std::uint32_t> eligible_strangers_;
  std::vector<std::uint8_t> is_candidate_;
  std::vector<std::uint32_t> tie_priority_;
  std::vector<std::uint32_t> victim_scratch_;

  std::size_t peers_replaced_ = 0;
  // Plain local tallies, flushed to the metrics registry once per run —
  // the hot loops never touch an atomic.
  std::size_t candidates_scanned_ = 0;

  // Flight recorder: level/stride latched at construction, events buffered
  // locally and flushed once when the engine dies. Never touches rng_.
  obs::RunCapture capture_{obs::Recorder::global()};
  std::uint32_t round_ = 0;

  void flush_metrics() const {
    if (!obs::enabled()) return;
    static const obs::Counter runs =
        obs::Registry::global().counter("sim.dense.runs");
    static const obs::Counter rounds =
        obs::Registry::global().counter("sim.dense.rounds");
    static const obs::Counter scanned =
        obs::Registry::global().counter("sim.dense.candidates_scanned");
    static const obs::Counter replaced =
        obs::Registry::global().counter("sim.dense.peers_replaced");
    runs.increment();
    rounds.add(config_.rounds);
    scanned.add(candidates_scanned_);
    replaced.add(peers_replaced_);
  }
};

/// The production hot path: same model, same RNG draw sequence, same
/// floating-point operations in the same order as DenseEngine — the
/// simulator tests assert bitwise-identical outcomes — but with the state
/// held in a reusable SimWorkspace and per-round cost proportional to the
/// slots actually opened, O(n * (k + h)), instead of O(n^2):
///
///  * The three history generations rotate roles; recycling one bumps its
///    epoch instead of refilling n^2 cells, and stamp mismatches read as
///    "no slot" / 0.0.
///  * Candidate lists come from per-receiver incoming-giver lists (built
///    ascending as peers act in index order, so the merged candidate order
///    matches the dense engine's ascending row scan exactly).
///  * Streaks update only over the cells touched this round; absent stamped
///    entries are streak 0, which is exactly what the dense full-matrix
///    pass computes for untouched cells.
///  * Churn invalidates a peer's history with an O(n) stamp walk (stamp 0
///    is never a live epoch), mirroring the dense row/column zeroing.
class SparseEngine {
  using Generation = SimWorkspace::Impl::Generation;

 public:
  SparseEngine(const std::vector<ProtocolSpec>& protocols,
               const std::vector<double>& capacities,
               const SimulationConfig& config,
               const BandwidthDistribution* churn_source,
               SimWorkspace::Impl& ws)
      : protocols_(protocols),
        config_(config),
        churn_source_(churn_source),
        n_(protocols.size()),
        rng_(config.seed),
        ws_(ws) {
    ws_.prepare(n_, capacities);
  }

  SimulationOutcome run() {
    DSA_OBS_PHASE("sim/run");
    SimulationOutcome outcome;
    if (config_.record_round_series) {
      outcome.round_throughput.reserve(config_.rounds);
    }
    if (capture_.rounds()) {
      capture_.emit({.kind = obs::EventKind::kRun,
                     .run = config_.seed,
                     .value = {{static_cast<double>(n_),
                                static_cast<double>(config_.rounds),
                                config_.churn_rate, 1.0}},
                     .label = "round",
                     .detail = capture_.context()});
    }
    {
      DSA_OBS_PHASE("sim/rounds");
      for (std::size_t round = 0; round < config_.rounds; ++round) {
        step(round);
        if (config_.record_round_series) {
          double round_mean = 0.0;
          for (std::size_t i = 0; i < n_; ++i) {
            round_mean += ws_.round_received[i];
          }
          outcome.round_throughput.push_back(round_mean /
                                             static_cast<double>(n_));
        }
        if (capture_.rounds() && capture_.sampled(round)) {
          double round_mean = 0.0;
          for (std::size_t i = 0; i < n_; ++i) {
            round_mean += ws_.round_received[i];
          }
          capture_.emit({.kind = obs::EventKind::kRound,
                         .run = config_.seed,
                         .time = static_cast<std::uint32_t>(round),
                         .value = {{round_mean / static_cast<double>(n_),
                                    static_cast<double>(peers_replaced_), 0.0,
                                    0.0}}});
        }
      }
    }
    outcome.peer_throughput.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      outcome.peer_throughput[i] =
          ws_.total_received[i] / static_cast<double>(config_.rounds);
    }
    outcome.peers_replaced = peers_replaced_;
    observe_score_spread(outcome.peer_throughput);
    if (capture_.rounds()) {
      for (std::size_t i = 0; i < n_; ++i) {
        capture_.emit({.kind = obs::EventKind::kPeer,
                       .run = config_.seed,
                       .actor = static_cast<std::uint32_t>(i),
                       .value = {{ws_.capacities[i], outcome.peer_throughput[i],
                                  0.0, 0.0}},
                       .label = protocols_[i].describe()});
      }
    }
    flush_metrics();
    return outcome;
  }

 private:
  [[nodiscard]] Generation& gen(int role) { return ws_.gen[role]; }
  [[nodiscard]] const Generation& gen(int role) const { return ws_.gen[role]; }

  void step(std::size_t round) {
    std::fill(ws_.round_received.begin(), ws_.round_received.end(), 0.0);
    // Same tie-break draws, in the same RNG positions, as the dense engine.
    for (auto& priority : ws_.tie_priority) {
      priority = static_cast<std::uint32_t>(rng_());
    }

    round_ = static_cast<std::uint32_t>(round);
    // act() is templated on the record flag so the non-recording
    // instantiation compiles to exactly the pre-recorder hot path — the
    // emit sites must not cost codegen when recording is off.
    const bool record_full = capture_.full() && capture_.sampled(round);
    for (std::size_t me = 0; me < n_; ++me) {
      if (record_full) {
        act<true>(me);
      } else {
        act<false>(me);
      }
      // Restore the all-zero candidate-mark invariant for the next peer
      // (the dense engine instead overwrites the whole array per peer).
      // excluded_scratch holds the full candidate set in build order — the
      // candidates list itself only keeps its ranked top-k intact.
      for (const std::uint32_t j : ws_.excluded_scratch) {
        ws_.is_candidate[j] = 0;
      }
    }

    finish_round(round);
  }

  /// Builds the candidate list of `me` — everyone with a live slot to it in
  /// the window — in ascending peer order, matching the dense row scan.
  void build_candidates(std::size_t me, bool two_rounds) {
    auto& candidates = ws_.candidates;
    candidates.clear();
    ws_.candidate_window.clear();
    const Generation& now = gen(now_);
    const std::size_t base = me * n_;
    // Each push records the candidate's window bandwidth alongside it; the
    // arithmetic mirrors window_received() addend for addend, so a ranking
    // key read from candidate_window is bit-equal to recomputing it.
    auto push = [&](std::uint32_t j, double window) {
      ws_.is_candidate[j] = 1;
      candidates.push_back(j);
      ws_.candidate_window.push_back(window);
    };
    const std::vector<std::uint32_t>& now_in = now.in[me];
    if (!two_rounds) {
      for (const std::uint32_t j : now_in) {
        const SimWorkspace::Impl::Cell& cell = now.cell[base + j];
        if (cell.stamp == now.epoch) push(j, cell.value);
      }
      return;
    }
    // Merge the two ascending giver lists, deduplicating; a giver counts if
    // its slot in either generation is still live (churn may have stamped
    // one of them out).
    const Generation& prev = gen(prev_);
    const std::vector<std::uint32_t>& prev_in = prev.in[me];
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < now_in.size() || b < prev_in.size()) {
      if (b == prev_in.size() ||
          (a < now_in.size() && now_in[a] < prev_in[b])) {
        // Only in now's list: the prev generation never wrote this cell, so
        // the prev addend of the window is exactly 0.0.
        const std::uint32_t j = now_in[a++];
        const SimWorkspace::Impl::Cell& cell = now.cell[base + j];
        if (cell.stamp == now.epoch) push(j, cell.value + 0.0);
      } else if (a == now_in.size() || prev_in[b] < now_in[a]) {
        const std::uint32_t j = prev_in[b++];
        const SimWorkspace::Impl::Cell& cell = prev.cell[base + j];
        if (cell.stamp == prev.epoch) push(j, 0.0 + cell.value);
      } else {
        const std::uint32_t j = now_in[a];
        ++a;
        ++b;
        const SimWorkspace::Impl::Cell& now_cell = now.cell[base + j];
        const SimWorkspace::Impl::Cell& prev_cell = prev.cell[base + j];
        const bool now_live = now_cell.stamp == now.epoch;
        const bool prev_live = prev_cell.stamp == prev.epoch;
        if (now_live || prev_live) {
          double window = now_live ? now_cell.value : 0.0;
          window += prev_live ? prev_cell.value : 0.0;
          push(j, window);
        }
      }
    }
  }

  template <bool kRecordFull>
  void act(std::size_t me) {
    const ProtocolSpec& spec = protocols_[me];
    const bool two_rounds = spec.window == CandidateWindow::kTf2t;

    // 1. Candidate list (see build_candidates).
    build_candidates(me, two_rounds);
    auto& candidates = ws_.candidates;
    candidates_scanned_ += candidates.size();  // only live slots are touched
    // Snapshot the ascending candidate set before ranking permutes the
    // list: it is the stranger-exclusion set and the mark-clearing list.
    ws_.excluded_scratch.assign(candidates.begin(), candidates.end());

    // 2. Rank and select the top k partners.
    const std::size_t k = spec.partner_slots;
    std::size_t partner_count = std::min(k, candidates.size());
    if (partner_count > 0) rank_candidates(me, spec, partner_count);

    // 3. Strangers — same "when needed" fullness rule as the dense engine.
    std::size_t stranger_count = 0;
    if (spec.stranger_slots > 0) {
      bool wants_strangers = true;
      if (spec.stranger_policy == StrangerPolicy::kWhenNeeded) {
        std::size_t contributing = 0;
        for (std::size_t p = 0; p < partner_count; ++p) {
          if (window_received(me, candidates[p], two_rounds) > 0.0) {
            ++contributing;
          }
        }
        wants_strangers = contributing < k;
      }
      if (wants_strangers) {
        stranger_count = pick_strangers(me, spec.stranger_slots);
      }
    }

    // 4. Allocation over FIXED lanes (see DenseEngine::act for the paper
    // rationale; the arithmetic here is operation-for-operation the same).
    const bool defects_on_strangers =
        spec.stranger_policy == StrangerPolicy::kDefect;
    const std::size_t gifted_strangers =
        defects_on_strangers ? 0 : stranger_count;
    const std::size_t partner_lanes =
        config_.lane_model == LaneModel::kFixedLanes ? k : partner_count;
    const std::size_t lanes = partner_lanes + gifted_strangers;
    // Decision events: same sites and payloads as the dense engine, so a
    // recording is engine-independent. Pure reads; rng_ is never touched.
    if constexpr (kRecordFull) {
      capture_.emit({.kind = obs::EventKind::kSelect,
                     .run = config_.seed,
                     .time = round_,
                     .actor = static_cast<std::uint32_t>(me),
                     .value = {{static_cast<double>(candidates.size()),
                                static_cast<double>(partner_count),
                                static_cast<double>(stranger_count),
                                static_cast<double>(lanes)}}});
    }
    auto record_give = [&](obs::EventKind kind, std::uint32_t to,
                           double amount) {
      if constexpr (!kRecordFull) {
        (void)kind;
        (void)to;
        (void)amount;
        return;
      } else {
        obs::Event event{.kind = kind,
                         .run = config_.seed,
                         .time = round_,
                         .actor = static_cast<std::uint32_t>(me),
                         .peer = to};
        event.value[0] = amount;
        if (kind == obs::EventKind::kPartner) {
          event.value[1] = window_received(me, to, two_rounds);
        }
        capture_.emit(std::move(event));
      }
    };
    if (defects_on_strangers) {
      for (std::size_t s = 0; s < stranger_count; ++s) {
        give(me, ws_.eligible_strangers[s], 0.0);  // visible defection
        record_give(obs::EventKind::kStranger, ws_.eligible_strangers[s], 0.0);
      }
    }
    if (lanes == 0) return;

    const double capacity = ws_.capacities[me];
    const double lane_rate = capacity / static_cast<double>(lanes);
    const double gift = lane_rate * config_.stranger_efficiency;
    for (std::size_t s = 0; s < gifted_strangers; ++s) {
      give(me, ws_.eligible_strangers[s], gift);
      record_give(obs::EventKind::kStranger, ws_.eligible_strangers[s], gift);
    }

    if (partner_count == 0) return;
    const double partner_budget =
        lane_rate * static_cast<double>(partner_lanes);
    switch (spec.allocation) {
      case AllocationPolicy::kEqualSplit: {
        for (std::size_t p = 0; p < partner_count; ++p) {
          give(me, candidates[p], lane_rate);
          record_give(obs::EventKind::kPartner, candidates[p], lane_rate);
        }
        break;
      }
      case AllocationPolicy::kPropShare: {
        double contribution_sum = 0.0;
        for (std::size_t p = 0; p < partner_count; ++p) {
          contribution_sum += window_received(me, candidates[p], two_rounds);
        }
        for (std::size_t p = 0; p < partner_count; ++p) {
          const double share =
              contribution_sum > 0.0
                  ? partner_budget *
                        window_received(me, candidates[p], two_rounds) /
                        contribution_sum
                  : 0.0;
          give(me, candidates[p], share);
          record_give(obs::EventKind::kPartner, candidates[p], share);
        }
        break;
      }
      case AllocationPolicy::kFreeride: {
        for (std::size_t p = 0; p < partner_count; ++p) {
          give(me, candidates[p], 0.0);
          record_give(obs::EventKind::kPartner, candidates[p], 0.0);
        }
        break;
      }
    }
  }

  /// Bandwidth `me` observed from `j` over the window: stamped reads, so a
  /// recycled or churn-invalidated cell contributes exactly 0.0.
  [[nodiscard]] double window_received(std::size_t me, std::size_t j,
                                       bool two_rounds) const {
    const std::size_t idx = me * n_ + j;
    const Generation& now = gen(now_);
    const SimWorkspace::Impl::Cell& now_cell = now.cell[idx];
    double amount = now_cell.stamp == now.epoch ? now_cell.value : 0.0;
    if (two_rounds) {
      const Generation& prev = gen(prev_);
      const SimWorkspace::Impl::Cell& prev_cell = prev.cell[idx];
      amount += prev_cell.stamp == prev.epoch ? prev_cell.value : 0.0;
    }
    return amount;
  }

  [[nodiscard]] double streak_of(std::size_t me, std::size_t j) const {
    const SimWorkspace::Impl::Streak& s = ws_.streak[me * n_ + j];
    return s.stamp == ws_.streak_epoch ? static_cast<double>(s.value) : 0.0;
  }

  void rank_candidates(std::size_t me, const ProtocolSpec& spec,
                       std::size_t top) {
    auto& candidates = ws_.candidates;
    // The ordering (key, then tie priority, then index) is a strict total
    // order, so the selected top-k — and their order — is the same for any
    // correct selection algorithm; hoisting the keys out of the comparator
    // cannot change the result, only the cost per comparison.
    auto by_key = [&](auto key, bool descending) {
      using RankEntry = SimWorkspace::Impl::RankEntry;
      auto cmp = [descending](const RankEntry& a, const RankEntry& b) {
        if (a.key != b.key) return descending ? a.key > b.key : a.key < b.key;
        if (a.tie != b.tie) return a.tie < b.tie;
        return a.id < b.id;
      };
      constexpr std::size_t kSmallTop = 16;  // design space: k <= 9
      const std::size_t count = candidates.size();
      if (top <= kSmallTop) {
        ++topk_boundary_scans_;
        // Boundary-scan selection: keep a sorted window of the best `top`
        // seen so far; most entries fail the single compare against the
        // window's worst and cost nothing more.
        RankEntry best[kSmallTop];
        std::size_t filled = 0;
        for (std::size_t i = 0; i < count; ++i) {
          const std::uint32_t j = candidates[i];
          const RankEntry e{key(i, j), ws_.tie_priority[j], j};
          if (filled == top && !cmp(e, best[top - 1])) continue;
          std::size_t pos = filled < top ? filled : top - 1;
          while (pos > 0 && cmp(e, best[pos - 1])) {
            best[pos] = best[pos - 1];
            --pos;
          }
          best[pos] = e;
          if (filled < top) ++filled;
        }
        for (std::size_t i = 0; i < top; ++i) candidates[i] = best[i].id;
        return;
      }
      auto& entries = ws_.rank_entries;
      entries.clear();
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t j = candidates[i];
        entries.push_back({key(i, j), ws_.tie_priority[j], j});
      }
      std::partial_sort(entries.begin(), entries.begin() + top, entries.end(),
                        cmp);
      for (std::size_t i = 0; i < top; ++i) candidates[i] = entries[i].id;
    };
    // Keys take (position, id): Fastest/Slowest read the window recorded at
    // build time (bit-equal to window_received, see build_candidates), the
    // others derive from the id.
    switch (spec.ranking) {
      case RankingFunction::kFastest:
        by_key([&](std::size_t i, std::uint32_t) {
                 return ws_.candidate_window[i];
               },
               /*descending=*/true);
        break;
      case RankingFunction::kSlowest:
        by_key([&](std::size_t i, std::uint32_t) {
                 return ws_.candidate_window[i];
               },
               /*descending=*/false);
        break;
      case RankingFunction::kProximity:
        by_key(
            [&](std::size_t, std::uint32_t j) {
              return std::fabs(ws_.capacities[j] - ws_.capacities[me]);
            },
            /*descending=*/false);
        break;
      case RankingFunction::kAdaptive:
        by_key(
            [&](std::size_t, std::uint32_t j) {
              return std::fabs(ws_.capacities[j] - ws_.aspiration[me]);
            },
            /*descending=*/false);
        break;
      case RankingFunction::kLoyal:
        by_key([&](std::size_t, std::uint32_t j) { return streak_of(me, j); },
               /*descending=*/true);
        break;
      case RankingFunction::kRandom:
        for (std::size_t i = 0; i < top; ++i) {
          const std::size_t j =
              i + static_cast<std::size_t>(rng_.below(candidates.size() - i));
          std::swap(candidates[i], candidates[j]);
        }
        break;
    }
  }

  /// Uniform strangers without materializing the eligible list. The dense
  /// engine builds `eligible` = ascending [0, n) minus {me} minus the
  /// candidates, then partially Fisher-Yates-shuffles its front; here the
  /// same draws (`below(eligible_size - i)`, identical arguments, identical
  /// order) index a *virtual* copy of that list: position x resolves to the
  /// x-th non-excluded peer in O(|excluded|), and the handful of swaps the
  /// shuffle would have made live in a tiny overlay. Falls back to the
  /// materialized scan when the exclusion set is a large fraction of n —
  /// both paths pick identical peers.
  std::size_t pick_strangers(std::size_t me, std::size_t want) {
    constexpr std::size_t kMaxOverlayPicks = 8;  // design space: h <= 3
    auto& eligible = ws_.eligible_strangers;

    // excluded_scratch already holds the ascending candidate set (snapshot
    // taken in act() before ranking permuted the list); slot `me` in.
    auto& excluded = ws_.excluded_scratch;
    const auto me_id = static_cast<std::uint32_t>(me);
    excluded.insert(std::lower_bound(excluded.begin(), excluded.end(), me_id),
                    me_id);
    const std::size_t eligible_size = n_ - excluded.size();

    if (want > kMaxOverlayPicks) {
      // Materialize the eligible list as the complement of the sorted
      // exclusions — contiguous runs instead of a per-element branch.
      eligible.clear();
      std::uint32_t from = 0;
      for (const std::uint32_t e : excluded) {
        for (std::uint32_t j = from; j < e; ++j) eligible.push_back(j);
        from = e + 1;
      }
      for (std::uint32_t j = from; j < n_; ++j) eligible.push_back(j);
      const std::size_t found = std::min(want, eligible.size());
      for (std::size_t i = 0; i < found; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng_.below(eligible.size() - i));
        std::swap(eligible[i], eligible[j]);
      }
      return found;
    }

    // x-th element of ascending [0, n) minus the sorted exclusions. The
    // full walk is branch-predictable (a conditional increment, no early
    // exit) and the exclusion list is small.
    auto base = [&](std::size_t x) {
      std::uint32_t value = static_cast<std::uint32_t>(x);
      for (const std::uint32_t e : excluded) {
        if (e <= value) ++value;
      }
      return value;
    };
    // Sparse overlay of the virtual list: at most two entries per pick.
    struct Patch {
      std::size_t pos;
      std::uint32_t value;
    };
    Patch patches[2 * kMaxOverlayPicks];
    std::size_t patch_count = 0;
    auto read = [&](std::size_t pos) {
      for (std::size_t p = 0; p < patch_count; ++p) {
        if (patches[p].pos == pos) return patches[p].value;
      }
      return base(pos);
    };
    auto write = [&](std::size_t pos, std::uint32_t value) {
      for (std::size_t p = 0; p < patch_count; ++p) {
        if (patches[p].pos == pos) {
          patches[p].value = value;
          return;
        }
      }
      patches[patch_count++] = {pos, value};
    };

    eligible.clear();
    const std::size_t found = std::min(want, eligible_size);
    for (std::size_t i = 0; i < found; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng_.below(eligible_size - i));
      const std::uint32_t picked = read(j);
      write(j, read(i));
      write(i, picked);
      eligible.push_back(picked);
    }
    return found;
  }

  /// Opens a slot from `me` to `to` carrying `amount` (possibly zero).
  void give(std::size_t me, std::size_t to, double amount) {
    Generation& next = gen(next_);
    next.cell[to * n_ + me] = {amount, next.epoch};
    next.in[to].push_back(static_cast<std::uint32_t>(me));
    ws_.round_received[to] += amount;
  }

  void finish_round(std::size_t round) {
    auto& round_received = ws_.round_received;

    // Receiver intake cap, over the touched cells only. Every touched cell
    // of `next` is still live here (nothing can invalidate `next` before
    // the swap), and scaling untouched cells would multiply zeros.
    if (config_.intake_factor > 0.0) {
      Generation& next = gen(next_);
      bool any_capped = false;
      for (std::size_t j = 0; j < n_; ++j) {
        const double intake = config_.intake_factor * ws_.capacities[j];
        if (round_received[j] <= intake) {
          ws_.intake_scale[j] = -1.0;  // sentinel: not capped
          continue;
        }
        ws_.intake_scale[j] = intake / round_received[j];
        round_received[j] = intake;
        any_capped = true;
      }
      if (any_capped) {
        for (std::size_t to = 0; to < n_; ++to) {
          const double scale = ws_.intake_scale[to];
          if (scale < 0.0) continue;
          const std::size_t base = to * n_;
          for (const std::uint32_t giver : next.in[to]) {
            next.cell[base + giver].value *= scale;
          }
        }
      }
    }

    // Shift the history window: rotate generation roles; the recycled one
    // gets a fresh epoch instead of an O(n^2) refill.
    const int recycled = prev_;
    prev_ = now_;
    now_ = next_;
    next_ = recycled;
    Generation& fresh = gen(next_);
    fresh.epoch = ws_.next_epoch();
    for (std::size_t j = 0; j < n_; ++j) fresh.in[j].clear();

    // Cooperation streaks: only cells given to this round can be positive;
    // every other cell's streak is 0, i.e. simply absent under the new
    // streak epoch. The in-lists enumerate exactly this round's cells.
    const Generation& now = gen(now_);
    const std::uint64_t new_streak_epoch = ws_.next_epoch();
    for (std::size_t to = 0; to < n_; ++to) {
      const std::size_t base = to * n_;
      for (const std::uint32_t giver : now.in[to]) {
        const std::size_t idx = base + giver;
        if (now.cell[idx].value > 0.0) {
          SimWorkspace::Impl::Streak& s = ws_.streak[idx];
          const int prev_streak = s.stamp == ws_.streak_epoch ? s.value : 0;
          s.value = static_cast<std::uint16_t>(
              std::min<int>(prev_streak + 1, 0xffff));
          s.stamp = new_streak_epoch;
        }
      }
    }
    ws_.streak_epoch = new_streak_epoch;

    // Aspiration tracking (Adaptive): smooth toward this round's per-slot
    // receipts.
    for (std::size_t i = 0; i < n_; ++i) {
      const double slots =
          std::max<double>(1.0, protocols_[i].partner_slots);
      const double per_slot = round_received[i] / slots;
      ws_.aspiration[i] += config_.aspiration_smoothing *
                           (per_slot - ws_.aspiration[i]);
      ws_.total_received[i] += round_received[i];
    }

    // Churn, then scheduled fault processes — same RNG draw order as the
    // dense engine.
    if (config_.churn_rate > 0.0) {
      for (std::size_t i = 0; i < n_; ++i) {
        if (rng_.chance(config_.churn_rate)) replace_peer(i);
      }
    }
    for (const fault::FaultProcess& process : config_.faults) {
      apply_fault(process, round);
    }
  }

  void apply_fault(const fault::FaultProcess& process, std::size_t round) {
    using fault::FaultProcessKind;
    switch (process.kind) {
      case FaultProcessKind::kMemorylessChurn: {
        if (process.rate <= 0.0) break;
        for (std::size_t i = 0; i < n_; ++i) {
          if (rng_.chance(process.rate)) replace_peer(i);
        }
        break;
      }
      case FaultProcessKind::kBurstChurn: {
        if ((round + 1) % process.period != 0) break;
        const auto hit = static_cast<std::size_t>(std::lround(
            process.fraction * static_cast<double>(n_)));
        if (hit == 0) break;
        auto& victims = ws_.victim_scratch;
        victims.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) {
          victims[i] = static_cast<std::uint32_t>(i);
        }
        for (std::size_t i = 0; i < hit; ++i) {
          const std::size_t j =
              i + static_cast<std::size_t>(rng_.below(n_ - i));
          std::swap(victims[i], victims[j]);
          replace_peer(victims[i]);
        }
        break;
      }
      case FaultProcessKind::kCapacityDegradation: {
        if (round != process.round) break;
        for (std::size_t i = 0; i < n_; ++i) {
          ws_.capacities[i] *= process.factor;
        }
        break;
      }
      case FaultProcessKind::kTargetedFailure: {
        if (round != process.round) break;
        const auto hit = static_cast<std::size_t>(std::lround(
            process.fraction * static_cast<double>(n_)));
        if (hit == 0) break;
        auto& victims = ws_.victim_scratch;
        victims.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) {
          victims[i] = static_cast<std::uint32_t>(i);
        }
        std::partial_sort(victims.begin(),
                          victims.begin() +
                              static_cast<std::ptrdiff_t>(std::min(hit, n_)),
                          victims.end(),
                          [&](std::uint32_t a, std::uint32_t b) {
                            if (ws_.capacities[a] != ws_.capacities[b]) {
                              return ws_.capacities[a] > ws_.capacities[b];
                            }
                            return a < b;
                          });
        for (std::size_t i = 0; i < std::min(hit, n_); ++i) {
          replace_peer(victims[i]);
        }
        break;
      }
    }
  }

  /// Replaces peer i with a fresh same-protocol peer. History invalidation
  /// is an O(n) stamp walk over i's row and column in the live generations
  /// and the streak table — stamp 0 is never a live epoch.
  void replace_peer(std::size_t i) {
    ++peers_replaced_;
    ws_.capacities[i] = churn_source_->sample(rng_);
    ws_.aspiration[i] = ws_.capacities[i];
    Generation& now = gen(now_);
    Generation& prev = gen(prev_);
    for (std::size_t j = 0; j < n_; ++j) {
      const std::size_t row = i * n_ + j;
      const std::size_t col = j * n_ + i;
      now.cell[row].stamp = 0;
      now.cell[col].stamp = 0;
      prev.cell[row].stamp = 0;
      prev.cell[col].stamp = 0;
      ws_.streak[row].stamp = 0;
      ws_.streak[col].stamp = 0;
    }
  }

  const std::vector<ProtocolSpec>& protocols_;
  const SimulationConfig& config_;
  const BandwidthDistribution* churn_source_;
  const std::size_t n_;
  util::Rng rng_;
  SimWorkspace::Impl& ws_;

  // Roles of ws_.gen entries; rotated each round.
  int prev_ = 0;
  int now_ = 1;
  int next_ = 2;

  std::size_t peers_replaced_ = 0;
  // Plain local tallies, flushed to the metrics registry once per run —
  // the hot loops never touch an atomic.
  std::size_t candidates_scanned_ = 0;
  std::size_t topk_boundary_scans_ = 0;

  // Flight recorder: level/stride latched at construction, events buffered
  // locally and flushed once when the engine dies. Never touches rng_.
  obs::RunCapture capture_{obs::Recorder::global()};
  std::uint32_t round_ = 0;

  void flush_metrics() const {
    if (!obs::enabled()) return;
    static const obs::Counter runs =
        obs::Registry::global().counter("sim.sparse.runs");
    static const obs::Counter rounds =
        obs::Registry::global().counter("sim.sparse.rounds");
    static const obs::Counter scanned =
        obs::Registry::global().counter("sim.sparse.candidates_scanned");
    static const obs::Counter boundary =
        obs::Registry::global().counter("sim.sparse.topk_boundary_scans");
    static const obs::Counter reuse =
        obs::Registry::global().counter("sim.sparse.workspace_reuse_hits");
    static const obs::Counter replaced =
        obs::Registry::global().counter("sim.sparse.peers_replaced");
    runs.increment();
    rounds.add(config_.rounds);
    scanned.add(candidates_scanned_);
    boundary.add(topk_boundary_scans_);
    if (ws_.last_prepare_reused) reuse.increment();
    replaced.add(peers_replaced_);
  }
};

}  // namespace

SimulationOutcome simulate_rounds(const std::vector<ProtocolSpec>& protocols,
                                  const std::vector<double>& capacities,
                                  const SimulationConfig& config,
                                  const BandwidthDistribution* churn_source,
                                  SimWorkspace* workspace) {
  if (protocols.empty() || protocols.size() != capacities.size()) {
    throw std::invalid_argument(
        "simulate_rounds: protocols/capacities must be equal-length and "
        "non-empty");
  }
  config.validate();
  if (config.needs_churn_source() && churn_source == nullptr) {
    throw std::invalid_argument(
        "simulate_rounds: replacing peers (churn_rate or a fault process) "
        "requires a bandwidth distribution");
  }
  if (config.engine == SimEngine::kDense) {
    DenseEngine engine(protocols, capacities, config, churn_source);
    return engine.run();
  }
  if (config.engine == SimEngine::kBatch) {
    // A single-lane batch: the lockstep engine degenerates to one stream,
    // so the scalar entry point exercises the same code the W-wide path
    // runs — and stays bitwise-identical to the other engines.
    const BatchLane lane{&protocols, &capacities, config.seed};
    return std::move(
        simulate_rounds_batch(std::span<const BatchLane>(&lane, 1), config,
                              churn_source)
            .front());
  }
  if (workspace == nullptr) {
    // One reusable workspace per thread: a sweep's worker threads each
    // allocate once and then run every simulation allocation-free.
    static thread_local SimWorkspace shared;
    workspace = &shared;
  }
  SparseEngine engine(protocols, capacities, config, churn_source,
                      workspace->impl());
  return engine.run();
}

std::vector<double> shuffled_capacities(std::size_t count,
                                        const BandwidthDistribution& dist,
                                        std::uint64_t seed) {
  std::vector<double> capacities = dist.stratified_sample(count);
  util::Rng rng(util::hash64(seed ^ 0x9d2c5680cafef00dULL));
  rng.shuffle(capacities);
  return capacities;
}

EncounterOutcome run_encounter(const ProtocolSpec& a, const ProtocolSpec& b,
                               std::size_t count_a, std::size_t count_b,
                               const SimulationConfig& config,
                               const BandwidthDistribution& bandwidths) {
  if (count_a == 0 || count_b == 0) {
    throw std::invalid_argument("run_encounter: both groups must be non-empty");
  }
  const std::size_t n = count_a + count_b;
  std::vector<ProtocolSpec> protocols;
  protocols.reserve(n);
  protocols.insert(protocols.end(), count_a, a);
  protocols.insert(protocols.end(), count_b, b);
  const SimulationOutcome outcome =
      simulate_rounds(protocols, shuffled_capacities(n, bandwidths, config.seed),
                      config, &bandwidths);
  EncounterOutcome result;
  result.group_a_mean = outcome.group_mean(0, count_a);
  result.group_b_mean = outcome.group_mean(count_a, n);
  return result;
}

double run_homogeneous_throughput(const ProtocolSpec& spec, std::size_t count,
                                  const SimulationConfig& config,
                                  const BandwidthDistribution& bandwidths) {
  if (count == 0) {
    throw std::invalid_argument("run_homogeneous_throughput: empty swarm");
  }
  std::vector<ProtocolSpec> protocols(count, spec);
  const SimulationOutcome outcome = simulate_rounds(
      protocols, shuffled_capacities(count, bandwidths, config.seed), config,
      &bandwidths);
  return outcome.population_mean();
}

}  // namespace dsa::swarming
