#include "swarming/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dsa::swarming {

void SimulationConfig::validate() const {
  if (rounds == 0) {
    throw std::invalid_argument("SimulationConfig.rounds: must be > 0");
  }
  if (!(churn_rate >= 0.0 && churn_rate <= 1.0)) {
    throw std::invalid_argument(
        "SimulationConfig.churn_rate: must be in [0, 1]");
  }
  if (!(aspiration_smoothing >= 0.0 && aspiration_smoothing <= 1.0)) {
    throw std::invalid_argument(
        "SimulationConfig.aspiration_smoothing: must be in [0, 1]");
  }
  if (!(stranger_efficiency >= 0.0 && stranger_efficiency <= 1.0)) {
    throw std::invalid_argument(
        "SimulationConfig.stranger_efficiency: must be in [0, 1]");
  }
  if (!(intake_factor >= 0.0)) {
    throw std::invalid_argument(
        "SimulationConfig.intake_factor: must be >= 0");
  }
  for (const fault::FaultProcess& process : faults) process.validate();
}

bool SimulationConfig::needs_churn_source() const noexcept {
  if (churn_rate > 0.0) return true;
  for (const fault::FaultProcess& process : faults) {
    if (process.replaces_peers()) return true;
  }
  return false;
}

double SimulationOutcome::group_mean(std::size_t begin, std::size_t end) const {
  if (begin >= end || end > peer_throughput.size()) {
    throw std::invalid_argument("SimulationOutcome::group_mean: bad range");
  }
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += peer_throughput[i];
  return sum / static_cast<double>(end - begin);
}

double SimulationOutcome::population_mean() const {
  return group_mean(0, peer_throughput.size());
}

namespace {

/// All mutable per-run state, laid out flat for cache friendliness.
/// Matrices are indexed [receiver * n + giver] so that one peer's view of
/// everyone who served it is a contiguous row.
class Engine {
 public:
  Engine(const std::vector<ProtocolSpec>& protocols,
         const std::vector<double>& capacities,
         const SimulationConfig& config,
         const BandwidthDistribution* churn_source)
      : protocols_(protocols),
        capacities_(capacities),
        config_(config),
        churn_source_(churn_source),
        n_(protocols.size()),
        rng_(config.seed),
        received_now_(n_ * n_, 0.0),
        received_prev_(n_ * n_, 0.0),
        received_next_(n_ * n_, 0.0),
        interacted_now_(n_ * n_, 0),
        interacted_prev_(n_ * n_, 0),
        interacted_next_(n_ * n_, 0),
        streak_(n_ * n_, 0),
        aspiration_(capacities),
        round_received_(n_, 0.0),
        total_received_(n_, 0.0) {
    candidates_.reserve(n_);
    eligible_strangers_.reserve(n_);
    is_candidate_.assign(n_, 0);
    tie_priority_.assign(n_, 0);
  }

  SimulationOutcome run() {
    SimulationOutcome outcome;
    if (config_.record_round_series) {
      outcome.round_throughput.reserve(config_.rounds);
    }
    for (std::size_t round = 0; round < config_.rounds; ++round) {
      step(round);
      if (config_.record_round_series) {
        double round_mean = 0.0;
        for (std::size_t i = 0; i < n_; ++i) round_mean += round_received_[i];
        outcome.round_throughput.push_back(round_mean /
                                           static_cast<double>(n_));
      }
    }
    outcome.peer_throughput.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      outcome.peer_throughput[i] =
          total_received_[i] / static_cast<double>(config_.rounds);
    }
    outcome.peers_replaced = peers_replaced_;
    return outcome;
  }

 private:
  void step(std::size_t round) {
    std::fill(round_received_.begin(), round_received_.end(), 0.0);
    std::fill(received_next_.begin(), received_next_.end(), 0.0);
    std::fill(interacted_next_.begin(), interacted_next_.end(), 0);
    // Fresh random ranking tie-breaks each round; a fixed (e.g. index-based)
    // order would funnel every all-zero-tied choice onto the same peers.
    for (auto& priority : tie_priority_) {
      priority = static_cast<std::uint32_t>(rng_());
    }

    for (std::size_t me = 0; me < n_; ++me) act(me);

    finish_round(round);
  }

  /// Peer `me` selects partners/strangers and allocates its capacity,
  /// reading only the *_now_ / *_prev_ state and writing *_next_.
  void act(std::size_t me) {
    const ProtocolSpec& spec = protocols_[me];
    const bool two_rounds = spec.window == CandidateWindow::kTf2t;

    // 1. Candidate list: everyone that interacted with me in the window.
    candidates_.clear();
    const std::uint8_t* now_row = &interacted_now_[me * n_];
    const std::uint8_t* prev_row = &interacted_prev_[me * n_];
    for (std::size_t j = 0; j < n_; ++j) {
      const bool known = now_row[j] || (two_rounds && prev_row[j]);
      is_candidate_[j] = known ? 1 : 0;
      if (known) candidates_.push_back(static_cast<std::uint32_t>(j));
    }

    // 2. Rank and select the top k partners.
    const std::size_t k = spec.partner_slots;
    std::size_t partner_count = std::min(k, candidates_.size());
    if (partner_count > 0) rank_candidates(me, spec, partner_count);

    // 3. Strangers. "When needed" measures fullness in *contributing*
    // partners (positive receipts over the window): a partner set stuffed
    // with zero-giving candidates is not full, so the peer keeps recruiting
    // — otherwise freeriders could permanently lock it out of cooperation by
    // flooding its candidate list.
    std::size_t stranger_count = 0;
    if (spec.stranger_slots > 0) {
      bool wants_strangers = true;
      if (spec.stranger_policy == StrangerPolicy::kWhenNeeded) {
        std::size_t contributing = 0;
        for (std::size_t p = 0; p < partner_count; ++p) {
          if (window_received(me, candidates_[p], two_rounds) > 0.0) {
            ++contributing;
          }
        }
        wants_strangers = contributing < k;
      }
      if (wants_strangers) {
        stranger_count = pick_strangers(me, spec.stranger_slots);
      }
    }

    // 4. Allocation over FIXED lanes. The protocol's partner-slot count k is
    // one of its "magic numbers": capacity is split across k partner lanes
    // plus one lane per gifted stranger, and a partner lane with no partner
    // behind it simply wastes its bandwidth. This fixed-lane structure is
    // what makes low-k protocols the performance leaders (Fig. 3: filling 1
    // lane is easy, filling 9 is not) and caps partner-freeriders' utility
    // at their stranger-gift fraction (the ~0.31 ceiling of Sec. 4.4).
    // Defect-policy stranger contacts open no lane: defecting costs nothing.
    const bool defects_on_strangers =
        spec.stranger_policy == StrangerPolicy::kDefect;
    const std::size_t gifted_strangers =
        defects_on_strangers ? 0 : stranger_count;
    // Under kDivideAmongSelected the partner-lane count shrinks to the
    // partners actually present, so nothing is wasted (the ablation mode).
    const std::size_t partner_lanes =
        config_.lane_model == LaneModel::kFixedLanes ? k : partner_count;
    const std::size_t lanes = partner_lanes + gifted_strangers;
    if (defects_on_strangers) {
      for (std::size_t s = 0; s < stranger_count; ++s) {
        give(me, eligible_strangers_[s], 0.0);  // visible defection
      }
    }
    if (lanes == 0) return;

    const double capacity = capacities_[me];
    const double lane_rate = capacity / static_cast<double>(lanes);
    // Stranger lanes are short-lived probes; only a fraction of the lane's
    // bandwidth reaches the stranger (see SimulationConfig).
    const double gift = lane_rate * config_.stranger_efficiency;
    for (std::size_t s = 0; s < gifted_strangers; ++s) {
      give(me, eligible_strangers_[s], gift);
    }

    if (partner_count == 0) return;
    const double partner_budget =
        lane_rate * static_cast<double>(partner_lanes);
    switch (spec.allocation) {
      case AllocationPolicy::kEqualSplit: {
        // One lane per partner; unfilled lanes (partner_count < k) waste.
        for (std::size_t p = 0; p < partner_count; ++p) {
          give(me, candidates_[p], lane_rate);
        }
        break;
      }
      case AllocationPolicy::kPropShare: {
        double contribution_sum = 0.0;
        for (std::size_t p = 0; p < partner_count; ++p) {
          contribution_sum += window_received(me, candidates_[p], two_rounds);
        }
        for (std::size_t p = 0; p < partner_count; ++p) {
          // An all-zero window gives nothing — the paper's bootstrap hazard.
          const double share =
              contribution_sum > 0.0
                  ? partner_budget *
                        window_received(me, candidates_[p], two_rounds) /
                        contribution_sum
                  : 0.0;
          give(me, candidates_[p], share);
        }
        break;
      }
      case AllocationPolicy::kFreeride: {
        for (std::size_t p = 0; p < partner_count; ++p) {
          give(me, candidates_[p], 0.0);
        }
        break;
      }
    }
  }

  /// Bandwidth `me` observed from `j` over the candidate window.
  [[nodiscard]] double window_received(std::size_t me, std::size_t j,
                                       bool two_rounds) const {
    double amount = received_now_[me * n_ + j];
    if (two_rounds) amount += received_prev_[me * n_ + j];
    return amount;
  }

  /// Partially sorts candidates_ so its first `top` entries are the selected
  /// partners under `spec.ranking`. Ties break on peer index for
  /// reproducibility.
  void rank_candidates(std::size_t me, const ProtocolSpec& spec,
                       std::size_t top) {
    const bool two_rounds = spec.window == CandidateWindow::kTf2t;
    auto by_key = [&](auto key, bool descending) {
      auto cmp = [&, descending](std::uint32_t a, std::uint32_t b) {
        const double ka = key(a);
        const double kb = key(b);
        if (ka != kb) return descending ? ka > kb : ka < kb;
        if (tie_priority_[a] != tie_priority_[b]) {
          return tie_priority_[a] < tie_priority_[b];
        }
        return a < b;
      };
      std::partial_sort(candidates_.begin(), candidates_.begin() + top,
                        candidates_.end(), cmp);
    };
    switch (spec.ranking) {
      case RankingFunction::kFastest:
        by_key([&](std::uint32_t j) { return window_received(me, j, two_rounds); },
               /*descending=*/true);
        break;
      case RankingFunction::kSlowest:
        by_key([&](std::uint32_t j) { return window_received(me, j, two_rounds); },
               /*descending=*/false);
        break;
      case RankingFunction::kProximity:
        by_key(
            [&](std::uint32_t j) {
              return std::fabs(capacities_[j] - capacities_[me]);
            },
            /*descending=*/false);
        break;
      case RankingFunction::kAdaptive:
        by_key(
            [&](std::uint32_t j) {
              return std::fabs(capacities_[j] - aspiration_[me]);
            },
            /*descending=*/false);
        break;
      case RankingFunction::kLoyal:
        by_key(
            [&](std::uint32_t j) {
              return static_cast<double>(streak_[me * n_ + j]);
            },
            /*descending=*/true);
        break;
      case RankingFunction::kRandom:
        // A random draw of `top` candidates via partial Fisher-Yates.
        for (std::size_t i = 0; i < top; ++i) {
          const std::size_t j =
              i + static_cast<std::size_t>(rng_.below(candidates_.size() - i));
          std::swap(candidates_[i], candidates_[j]);
        }
        break;
    }
  }

  /// Fills the front of eligible_strangers_ with up to `want` uniformly
  /// chosen peers outside the candidate list; returns how many were found.
  std::size_t pick_strangers(std::size_t me, std::size_t want) {
    eligible_strangers_.clear();
    for (std::size_t j = 0; j < n_; ++j) {
      if (j != me && !is_candidate_[j]) {
        eligible_strangers_.push_back(static_cast<std::uint32_t>(j));
      }
    }
    const std::size_t found = std::min(want, eligible_strangers_.size());
    for (std::size_t i = 0; i < found; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(
                  rng_.below(eligible_strangers_.size() - i));
      std::swap(eligible_strangers_[i], eligible_strangers_[j]);
    }
    return found;
  }

  /// Opens a slot from `me` to `to` carrying `amount` (possibly zero).
  void give(std::size_t me, std::size_t to, double amount) {
    interacted_next_[to * n_ + me] = 1;
    received_next_[to * n_ + me] = amount;
    round_received_[to] += amount;
  }

  void finish_round(std::size_t round) {
    // Receiver intake cap: a peer absorbs at most intake_factor * capacity
    // per round; excess inbound is lost proportionally across senders.
    if (config_.intake_factor > 0.0) {
      for (std::size_t j = 0; j < n_; ++j) {
        const double intake = config_.intake_factor * capacities_[j];
        if (round_received_[j] <= intake) continue;
        const double scale = intake / round_received_[j];
        double* row = &received_next_[j * n_];
        for (std::size_t i = 0; i < n_; ++i) row[i] *= scale;
        round_received_[j] = intake;
      }
    }

    // Shift the history window.
    received_prev_.swap(received_now_);
    received_now_.swap(received_next_);
    interacted_prev_.swap(interacted_now_);
    interacted_now_.swap(interacted_next_);

    // Cooperation streaks (Loyal): consecutive rounds with a positive gift.
    for (std::size_t idx = 0; idx < n_ * n_; ++idx) {
      streak_[idx] = received_now_[idx] > 0.0
                         ? static_cast<std::uint16_t>(
                               std::min<int>(streak_[idx] + 1, 0xffff))
                         : std::uint16_t{0};
    }

    // Aspiration tracking (Adaptive): smooth toward this round's per-slot
    // receipts.
    for (std::size_t i = 0; i < n_; ++i) {
      const double slots =
          std::max<double>(1.0, protocols_[i].partner_slots);
      const double per_slot = round_received_[i] / slots;
      aspiration_[i] += config_.aspiration_smoothing *
                        (per_slot - aspiration_[i]);
      total_received_[i] += round_received_[i];
    }

    // Churn: replace peers with fresh same-protocol ones. The legacy knob
    // runs first (preserving the historical RNG draw order), then the
    // scheduled fault processes in list order.
    if (config_.churn_rate > 0.0) {
      for (std::size_t i = 0; i < n_; ++i) {
        if (rng_.chance(config_.churn_rate)) replace_peer(i);
      }
    }
    for (const fault::FaultProcess& process : config_.faults) {
      apply_fault(process, round);
    }
  }

  void apply_fault(const fault::FaultProcess& process, std::size_t round) {
    using fault::FaultProcessKind;
    switch (process.kind) {
      case FaultProcessKind::kMemorylessChurn: {
        if (process.rate <= 0.0) break;
        for (std::size_t i = 0; i < n_; ++i) {
          if (rng_.chance(process.rate)) replace_peer(i);
        }
        break;
      }
      case FaultProcessKind::kBurstChurn: {
        // The burst strikes at the end of rounds period-1, 2*period-1, ...
        if ((round + 1) % process.period != 0) break;
        const auto hit = static_cast<std::size_t>(std::lround(
            process.fraction * static_cast<double>(n_)));
        if (hit == 0) break;
        victim_scratch_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) {
          victim_scratch_[i] = static_cast<std::uint32_t>(i);
        }
        for (std::size_t i = 0; i < hit; ++i) {
          const std::size_t j =
              i + static_cast<std::size_t>(rng_.below(n_ - i));
          std::swap(victim_scratch_[i], victim_scratch_[j]);
          replace_peer(victim_scratch_[i]);
        }
        break;
      }
      case FaultProcessKind::kCapacityDegradation: {
        if (round != process.round) break;
        for (std::size_t i = 0; i < n_; ++i) {
          capacities_[i] *= process.factor;
        }
        break;
      }
      case FaultProcessKind::kTargetedFailure: {
        if (round != process.round) break;
        const auto hit = static_cast<std::size_t>(std::lround(
            process.fraction * static_cast<double>(n_)));
        if (hit == 0) break;
        // Take out exactly the top-capacity class (ties break on index so
        // replays are deterministic).
        victim_scratch_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) {
          victim_scratch_[i] = static_cast<std::uint32_t>(i);
        }
        std::partial_sort(victim_scratch_.begin(),
                          victim_scratch_.begin() +
                              static_cast<std::ptrdiff_t>(std::min(hit, n_)),
                          victim_scratch_.end(),
                          [&](std::uint32_t a, std::uint32_t b) {
                            if (capacities_[a] != capacities_[b]) {
                              return capacities_[a] > capacities_[b];
                            }
                            return a < b;
                          });
        for (std::size_t i = 0; i < std::min(hit, n_); ++i) {
          replace_peer(victim_scratch_[i]);
        }
        break;
      }
    }
  }

  void replace_peer(std::size_t i) {
    ++peers_replaced_;
    capacities_[i] = churn_source_->sample(rng_);
    aspiration_[i] = capacities_[i];
    for (std::size_t j = 0; j < n_; ++j) {
      const std::size_t row = i * n_ + j;
      const std::size_t col = j * n_ + i;
      for (auto* m : {&received_now_, &received_prev_}) {
        (*m)[row] = 0.0;
        (*m)[col] = 0.0;
      }
      for (auto* m : {&interacted_now_, &interacted_prev_}) {
        (*m)[row] = 0;
        (*m)[col] = 0;
      }
      streak_[row] = 0;
      streak_[col] = 0;
    }
    // The fresh peer's past downloads belong to the departed peer; the
    // paper measures population throughput, so the accumulator stays.
  }

  const std::vector<ProtocolSpec>& protocols_;
  std::vector<double> capacities_;
  const SimulationConfig& config_;
  const BandwidthDistribution* churn_source_;
  const std::size_t n_;
  util::Rng rng_;

  // History matrices, [receiver * n + giver].
  std::vector<double> received_now_, received_prev_, received_next_;
  std::vector<std::uint8_t> interacted_now_, interacted_prev_,
      interacted_next_;
  std::vector<std::uint16_t> streak_;

  std::vector<double> aspiration_;
  std::vector<double> round_received_;
  std::vector<double> total_received_;

  // Scratch buffers reused across rounds.
  std::vector<std::uint32_t> candidates_;
  std::vector<std::uint32_t> eligible_strangers_;
  std::vector<std::uint8_t> is_candidate_;
  std::vector<std::uint32_t> tie_priority_;
  std::vector<std::uint32_t> victim_scratch_;

  std::size_t peers_replaced_ = 0;
};

}  // namespace

SimulationOutcome simulate_rounds(const std::vector<ProtocolSpec>& protocols,
                                  const std::vector<double>& capacities,
                                  const SimulationConfig& config,
                                  const BandwidthDistribution* churn_source) {
  if (protocols.empty() || protocols.size() != capacities.size()) {
    throw std::invalid_argument(
        "simulate_rounds: protocols/capacities must be equal-length and "
        "non-empty");
  }
  config.validate();
  if (config.needs_churn_source() && churn_source == nullptr) {
    throw std::invalid_argument(
        "simulate_rounds: replacing peers (churn_rate or a fault process) "
        "requires a bandwidth distribution");
  }
  Engine engine(protocols, capacities, config, churn_source);
  return engine.run();
}

namespace {

/// Stratified capacities shuffled with the run's seed so group membership is
/// uncorrelated with capacity.
std::vector<double> shuffled_capacities(std::size_t count,
                                        const BandwidthDistribution& dist,
                                        std::uint64_t seed) {
  std::vector<double> capacities = dist.stratified_sample(count);
  util::Rng rng(util::hash64(seed ^ 0x9d2c5680cafef00dULL));
  rng.shuffle(capacities);
  return capacities;
}

}  // namespace

EncounterOutcome run_encounter(const ProtocolSpec& a, const ProtocolSpec& b,
                               std::size_t count_a, std::size_t count_b,
                               const SimulationConfig& config,
                               const BandwidthDistribution& bandwidths) {
  if (count_a == 0 || count_b == 0) {
    throw std::invalid_argument("run_encounter: both groups must be non-empty");
  }
  const std::size_t n = count_a + count_b;
  std::vector<ProtocolSpec> protocols;
  protocols.reserve(n);
  protocols.insert(protocols.end(), count_a, a);
  protocols.insert(protocols.end(), count_b, b);
  const SimulationOutcome outcome =
      simulate_rounds(protocols, shuffled_capacities(n, bandwidths, config.seed),
                      config, &bandwidths);
  EncounterOutcome result;
  result.group_a_mean = outcome.group_mean(0, count_a);
  result.group_b_mean = outcome.group_mean(count_a, n);
  return result;
}

double run_homogeneous_throughput(const ProtocolSpec& spec, std::size_t count,
                                  const SimulationConfig& config,
                                  const BandwidthDistribution& bandwidths) {
  if (count == 0) {
    throw std::invalid_argument("run_homogeneous_throughput: empty swarm");
  }
  std::vector<ProtocolSpec> protocols(count, spec);
  const SimulationOutcome outcome = simulate_rounds(
      protocols, shuffled_capacities(count, bandwidths, config.seed), config,
      &bandwidths);
  return outcome.population_mean();
}

}  // namespace dsa::swarming
