// Generation, persistence, and loading of the full PRA dataset over the
// file-swarming design space — the expensive computation shared by the
// Figure 2-8 and Table 3 benches.
//
// Scale is controlled by environment variables so the same binaries serve a
// quick laptop pass and a paper-fidelity cluster run:
//   DSA_ROUNDS          rounds per simulation       (default 120; paper 500)
//   DSA_POPULATION      peers per simulation        (default 50;  paper 50)
//   DSA_PERF_RUNS       homogeneous runs/protocol   (default 3;   paper 100)
//   DSA_ENCOUNTER_RUNS  runs per protocol pair      (default 1;   paper 10)
//   DSA_OPPONENTS       opponents sampled/protocol  (default 24;  paper: all)
//   DSA_THREADS         worker threads              (default: hardware)
//   DSA_SEED            master seed                 (default 2011)
//   DSA_FULL=1          shorthand for the paper-fidelity values above
//   DSA_RESULTS         dataset path (default results/pra_results.csv)
#pragma once

#include <filesystem>
#include <optional>
#include <vector>

#include "core/pra.hpp"
#include "swarming/protocol.hpp"
#include "util/csv.hpp"

namespace dsa::swarming {

/// One protocol's PRA characterization plus its decoded design dimensions.
struct PraRecord {
  std::uint32_t protocol = 0;
  ProtocolSpec spec;
  double raw_performance = 0.0;
  double performance = 0.0;
  double robustness = 0.0;
  double aggressiveness = 0.0;
};

/// Reads the scale knobs above into a PraConfig (and rounds/population into
/// the returned simulation config through PraDatasetOptions).
struct PraDatasetOptions {
  core::PraConfig pra;
  std::size_t rounds = 120;
  std::filesystem::path path = "results/pra_results.csv";

  /// Builds options from the environment (see header comment).
  static PraDatasetOptions from_environment();
};

/// Runs the full PRA quantification over all 3270 protocols with the given
/// options, printing coarse progress to stderr when `verbose`.
std::vector<PraRecord> compute_pra_dataset(const PraDatasetOptions& options,
                                           bool verbose = false);

/// CSV round-trip.
void save_pra_dataset(const std::vector<PraRecord>& records,
                      const std::filesystem::path& path);
std::vector<PraRecord> load_pra_dataset(const std::filesystem::path& path);

/// Loads the dataset at options.path, computing and saving it first when
/// missing (the shared-cache behavior of the figure benches).
std::vector<PraRecord> load_or_compute_pra_dataset(
    const PraDatasetOptions& options, bool verbose = true);

}  // namespace dsa::swarming
