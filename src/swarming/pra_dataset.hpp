// Generation, persistence, and loading of the full PRA dataset over the
// file-swarming design space — the expensive computation shared by the
// Figure 2-8 and Table 3 benches.
//
// Scale is controlled by environment variables so the same binaries serve a
// quick laptop pass and a paper-fidelity cluster run:
//   DSA_ROUNDS          rounds per simulation       (default 120; paper 500)
//   DSA_POPULATION      peers per simulation        (default 50;  paper 50)
//   DSA_PERF_RUNS       homogeneous runs/protocol   (default 3;   paper 100)
//   DSA_ENCOUNTER_RUNS  runs per protocol pair      (default 1;   paper 10)
//   DSA_OPPONENTS       opponents sampled/protocol  (default 24;  paper: all)
//   DSA_THREADS         worker threads              (default: hardware)
//   DSA_SEED            master seed                 (default 2011)
//   DSA_ENGINE          sparse (default) | dense | batch simulation engine —
//                       all bitwise-identical; dense is the slow reference
//                       path kept for equivalence checks, batch the lockstep
//                       engine that runs DSA_BATCH_WIDTH simulations at once
//   DSA_BATCH_WIDTH     simulations per lockstep batch (1-64; default 0 =
//                       auto: 8 with DSA_ENGINE=batch, else 1). Never
//                       changes results — only how the task grid is grouped
//   DSA_FULL=1          shorthand for the paper-fidelity values above
//   DSA_RESULTS         dataset path (default results/pra_results.csv)
//   DSA_CHECKPOINT      protocols per checkpoint chunk (default 256; 0 off)
//
// The sweep checkpoints its partial results every DSA_CHECKPOINT protocols
// to `<path>.partial-<fingerprint>` (the fingerprint encodes every scale
// knob, so a resumed run never mixes incompatible numbers) and resumes from
// the checkpoint after a crash or kill. Per-protocol seeds depend only on
// (seed, protocol, run), so a resumed sweep produces bitwise-identical
// results to an uninterrupted one.
#pragma once

#include <filesystem>
#include <optional>
#include <vector>

#include "core/pra.hpp"
#include "swarming/protocol.hpp"
#include "swarming/simulator.hpp"
#include "util/csv.hpp"

namespace dsa::swarming {

/// One protocol's PRA characterization plus its decoded design dimensions.
struct PraRecord {
  std::uint32_t protocol = 0;
  ProtocolSpec spec;
  double raw_performance = 0.0;
  double performance = 0.0;
  double robustness = 0.0;
  double aggressiveness = 0.0;
};

/// Reads the scale knobs above into a PraConfig (and rounds/population into
/// the returned simulation config through PraDatasetOptions).
struct PraDatasetOptions {
  core::PraConfig pra;
  std::size_t rounds = 120;
  std::filesystem::path path = "results/pra_results.csv";
  /// Protocols computed between checkpoint saves; 0 disables checkpointing.
  std::size_t checkpoint_interval = 256;
  /// Simulation engine (DSA_ENGINE=dense selects the reference path,
  /// DSA_ENGINE=batch the lockstep path). Deliberately excluded from the
  /// checkpoint fingerprint, as is pra.batch_width: engines and widths are
  /// bitwise-identical, so their checkpoints are interchangeable.
  SimEngine engine = SimEngine::kSparse;

  /// Builds options from the environment (see header comment).
  static PraDatasetOptions from_environment();
};

/// Where the partial-results checkpoint of a sweep with these options lives:
/// `<path>.partial-<fingerprint>`, the fingerprint hashing every knob that
/// affects the numbers (seed, rounds, population, run counts, sampling,
/// minority fraction).
std::filesystem::path pra_checkpoint_path(const PraDatasetOptions& options);

/// Persists the first `count` records of a sweep (atomically, via
/// CsvTable::save). Only raw metrics are stored; normalization happens once
/// the sweep finishes.
void save_pra_checkpoint(const std::vector<PraRecord>& records,
                         std::size_t count, const std::filesystem::path& path);

/// Loads a checkpoint written by save_pra_checkpoint. Returns the records in
/// protocol order; an absent, unreadable, or malformed checkpoint (rows not
/// a contiguous protocol prefix) yields an empty vector — the sweep then
/// just starts over.
std::vector<PraRecord> load_pra_checkpoint(const std::filesystem::path& path);

/// Runs the full PRA quantification over all 3270 protocols with the given
/// options, printing coarse progress to stderr when `verbose`.
std::vector<PraRecord> compute_pra_dataset(const PraDatasetOptions& options,
                                           bool verbose = false);

/// CSV round-trip.
void save_pra_dataset(const std::vector<PraRecord>& records,
                      const std::filesystem::path& path);
std::vector<PraRecord> load_pra_dataset(const std::filesystem::path& path);

/// Loads the dataset at options.path, computing and saving it first when
/// missing (the shared-cache behavior of the figure benches).
std::vector<PraRecord> load_or_compute_pra_dataset(
    const PraDatasetOptions& options, bool verbose = true);

}  // namespace dsa::swarming
