#include "swarming/pra_dataset.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "swarming/dsa_model.hpp"
#include "util/env.hpp"

namespace dsa::swarming {

PraDatasetOptions PraDatasetOptions::from_environment() {
  PraDatasetOptions options;
  const bool full = util::env_flag("DSA_FULL");
  options.rounds = static_cast<std::size_t>(
      util::env_int("DSA_ROUNDS", full ? 500 : 120));
  options.pra.population = static_cast<std::size_t>(
      util::env_int("DSA_POPULATION", 50));
  options.pra.performance_runs = static_cast<std::size_t>(
      util::env_int("DSA_PERF_RUNS", full ? 100 : 3));
  options.pra.encounter_runs = static_cast<std::size_t>(
      util::env_int("DSA_ENCOUNTER_RUNS", full ? 10 : 1));
  options.pra.opponent_sample = static_cast<std::size_t>(
      util::env_int("DSA_OPPONENTS", full ? 0 : 24));
  options.pra.threads =
      static_cast<std::size_t>(util::env_int("DSA_THREADS", 0));
  options.pra.seed =
      static_cast<std::uint64_t>(util::env_int("DSA_SEED", 2011));
  options.path = util::env_string("DSA_RESULTS", "results/pra_results.csv");
  return options;
}

std::vector<PraRecord> compute_pra_dataset(const PraDatasetOptions& options,
                                           bool verbose) {
  SimulationConfig sim;
  sim.rounds = options.rounds;
  SwarmingModel model(sim, BandwidthDistribution::piatek());

  core::PraConfig pra = options.pra;
  if (verbose) {
    pra.progress = [](std::size_t done, std::size_t total) {
      if (done % 256 == 0 || done == total) {
        std::fprintf(stderr, "  pra: %zu/%zu protocols\n", done, total);
      }
    };
  }

  core::PraEngine engine(model, pra);
  if (verbose) std::fprintf(stderr, "PRA pass 1/3: performance\n");
  core::PraScores scores;
  scores.raw_performance = engine.raw_performance();
  const double best = *std::max_element(scores.raw_performance.begin(),
                                        scores.raw_performance.end());
  scores.performance.resize(scores.raw_performance.size());
  for (std::size_t i = 0; i < scores.performance.size(); ++i) {
    scores.performance[i] =
        best > 0.0 ? scores.raw_performance[i] / best : 0.0;
  }
  if (verbose) std::fprintf(stderr, "PRA pass 2/3: robustness (50-50)\n");
  scores.robustness = engine.tournament(0.5);
  if (verbose) std::fprintf(stderr, "PRA pass 3/3: aggressiveness (10-90)\n");
  scores.aggressiveness = engine.tournament(pra.minority_fraction);

  std::vector<PraRecord> records(kProtocolCount);
  for (std::uint32_t id = 0; id < kProtocolCount; ++id) {
    PraRecord& rec = records[id];
    rec.protocol = id;
    rec.spec = decode_protocol(id);
    rec.raw_performance = scores.raw_performance[id];
    rec.performance = scores.performance[id];
    rec.robustness = scores.robustness[id];
    rec.aggressiveness = scores.aggressiveness[id];
  }
  return records;
}

void save_pra_dataset(const std::vector<PraRecord>& records,
                      const std::filesystem::path& path) {
  util::CsvTable table({"protocol", "stranger_policy", "h", "window",
                        "ranking", "k", "allocation", "raw_performance",
                        "performance", "robustness", "aggressiveness"});
  for (const PraRecord& rec : records) {
    table.add_row({
        std::to_string(rec.protocol),
        to_string(rec.spec.stranger_policy),
        std::to_string(rec.spec.stranger_slots),
        to_string(rec.spec.window),
        to_string(rec.spec.ranking),
        std::to_string(rec.spec.partner_slots),
        to_string(rec.spec.allocation),
        util::format_number(rec.raw_performance),
        util::format_number(rec.performance),
        util::format_number(rec.robustness),
        util::format_number(rec.aggressiveness),
    });
  }
  table.save(path);
}

std::vector<PraRecord> load_pra_dataset(const std::filesystem::path& path) {
  const util::CsvTable table = util::CsvTable::load(path);
  std::vector<PraRecord> records;
  records.reserve(table.row_count());
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    PraRecord rec;
    rec.protocol =
        static_cast<std::uint32_t>(table.number_at(r, "protocol"));
    rec.spec = decode_protocol(rec.protocol);
    rec.raw_performance = table.number_at(r, "raw_performance");
    rec.performance = table.number_at(r, "performance");
    rec.robustness = table.number_at(r, "robustness");
    rec.aggressiveness = table.number_at(r, "aggressiveness");
    records.push_back(rec);
  }
  return records;
}

std::vector<PraRecord> load_or_compute_pra_dataset(
    const PraDatasetOptions& options, bool verbose) {
  if (std::filesystem::exists(options.path)) {
    if (verbose) {
      std::fprintf(stderr, "loading cached PRA dataset: %s\n",
                   options.path.string().c_str());
    }
    return load_pra_dataset(options.path);
  }
  if (verbose) {
    std::fprintf(stderr,
                 "no cached PRA dataset at %s; computing (set DSA_* env vars "
                 "to rescale)...\n",
                 options.path.string().c_str());
  }
  std::vector<PraRecord> records = compute_pra_dataset(options, verbose);
  save_pra_dataset(records, options.path);
  if (verbose) {
    std::fprintf(stderr, "saved PRA dataset: %s\n",
                 options.path.string().c_str());
  }
  return records;
}

}  // namespace dsa::swarming
