#include "swarming/pra_dataset.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/progress.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "swarming/dsa_model.hpp"
#include "util/env.hpp"
#include "util/fingerprint.hpp"
#include "util/thread_pool.hpp"

namespace dsa::swarming {

namespace {

using util::exact_number;

/// Hash of every option that affects the sweep's numbers. Baked into the
/// checkpoint filename so a resume never continues from incompatible data.
std::uint64_t options_fingerprint(const PraDatasetOptions& options) {
  return util::Fingerprint(options.pra.seed ^ 0x50a5c4ec8f21d3b7ULL)
      .mix(static_cast<std::uint64_t>(options.pra.population))
      .mix(static_cast<std::uint64_t>(options.pra.performance_runs))
      .mix(static_cast<std::uint64_t>(options.pra.encounter_runs))
      .mix(static_cast<std::uint64_t>(options.pra.opponent_sample))
      .mix(static_cast<std::uint64_t>(
          std::llround(options.pra.minority_fraction * 1e6)))
      .mix(static_cast<std::uint64_t>(options.rounds))
      .value();
}

/// One kPra summary event per protocol (run = actor = protocol id, so the
/// canonical event sort equals the dataset's protocol order). Emitted for
/// both computed and CSV-loaded datasets so a recording carries the exact
/// values a report consumes, whichever path produced them.
void record_pra_events(const std::vector<PraRecord>& records) {
  obs::RunCapture capture(obs::Recorder::global());
  if (!capture.rounds()) return;
  for (const PraRecord& rec : records) {
    capture.emit({.kind = obs::EventKind::kPra,
                  .run = rec.protocol,
                  .actor = rec.protocol,
                  .value = {{rec.performance, rec.robustness,
                             rec.aggressiveness, rec.raw_performance}},
                  .label = rec.spec.describe()});
  }
}

}  // namespace

PraDatasetOptions PraDatasetOptions::from_environment() {
  PraDatasetOptions options;
  const bool full = util::env_flag("DSA_FULL");
  options.rounds = static_cast<std::size_t>(
      util::env_int("DSA_ROUNDS", full ? 500 : 120));
  options.pra.population = static_cast<std::size_t>(
      util::env_int("DSA_POPULATION", 50));
  options.pra.performance_runs = static_cast<std::size_t>(
      util::env_int("DSA_PERF_RUNS", full ? 100 : 3));
  options.pra.encounter_runs = static_cast<std::size_t>(
      util::env_int("DSA_ENCOUNTER_RUNS", full ? 10 : 1));
  options.pra.opponent_sample = static_cast<std::size_t>(
      util::env_int("DSA_OPPONENTS", full ? 0 : 24));
  options.pra.threads =
      static_cast<std::size_t>(util::env_int("DSA_THREADS", 0));
  options.pra.seed =
      static_cast<std::uint64_t>(util::env_int("DSA_SEED", 2011));
  const std::string engine =
      util::env_enum("DSA_ENGINE", "sparse", {"sparse", "dense", "batch"});
  options.engine = engine == "dense"   ? SimEngine::kDense
                   : engine == "batch" ? SimEngine::kBatch
                                       : SimEngine::kSparse;
  // 0 = auto: a useful lockstep width on the batch engine, the plain scalar
  // grid otherwise. Validated here so a bad value names the variable instead
  // of surfacing as a PraEngine constructor error mid-sweep.
  const auto batch_width =
      static_cast<std::size_t>(util::env_int("DSA_BATCH_WIDTH", 0));
  if (batch_width > 64) {
    throw std::invalid_argument(
        "DSA_BATCH_WIDTH: must be in [0, 64] (0 = auto), got " +
        std::to_string(batch_width));
  }
  options.pra.batch_width =
      batch_width != 0 ? batch_width
                       : (options.engine == SimEngine::kBatch ? 8 : 1);
  options.path = util::env_string("DSA_RESULTS", "results/pra_results.csv");
  options.checkpoint_interval =
      static_cast<std::size_t>(util::env_int("DSA_CHECKPOINT", 256));
  return options;
}

std::filesystem::path pra_checkpoint_path(const PraDatasetOptions& options) {
  return util::checkpoint_path(options.path, options_fingerprint(options));
}

void save_pra_checkpoint(const std::vector<PraRecord>& records,
                         std::size_t count,
                         const std::filesystem::path& path) {
  util::CsvTable table(
      {"protocol", "raw_performance", "robustness", "aggressiveness"});
  count = std::min(count, records.size());
  for (std::size_t i = 0; i < count; ++i) {
    table.add_row({
        std::to_string(records[i].protocol),
        exact_number(records[i].raw_performance),
        exact_number(records[i].robustness),
        exact_number(records[i].aggressiveness),
    });
  }
  table.save(path);
}

std::vector<PraRecord> load_pra_checkpoint(const std::filesystem::path& path) {
  std::vector<PraRecord> records;
  if (!std::filesystem::exists(path)) return records;
  try {
    const util::CsvTable table = util::CsvTable::load(path);
    records.reserve(table.row_count());
    for (std::size_t r = 0; r < table.row_count(); ++r) {
      PraRecord rec;
      rec.protocol =
          static_cast<std::uint32_t>(table.number_at(r, "protocol"));
      if (rec.protocol != r || rec.protocol >= kProtocolCount) {
        // Not a contiguous protocol prefix — treat as corrupt.
        records.clear();
        return records;
      }
      rec.spec = decode_protocol(rec.protocol);
      rec.raw_performance = table.number_at(r, "raw_performance");
      rec.robustness = table.number_at(r, "robustness");
      rec.aggressiveness = table.number_at(r, "aggressiveness");
      records.push_back(rec);
    }
  } catch (const std::exception&) {
    records.clear();
  }
  return records;
}

std::vector<PraRecord> compute_pra_dataset(const PraDatasetOptions& options,
                                           bool verbose) {
  SimulationConfig sim;
  sim.rounds = options.rounds;
  sim.engine = options.engine;
  SwarmingModel model(sim, BandwidthDistribution::piatek());
  // One pool for the whole sweep, shared with the engine: the pool must
  // outlive the engine, and every checkpoint chunk reuses its threads (and
  // their thread-local simulation workspaces).
  util::ThreadPool pool(options.pra.threads == 0
                            ? util::ThreadPool::default_thread_count()
                            : options.pra.threads);

  // Heartbeat + time-series for `dsa_cli top`/`status`. Declared after the
  // pool (destroyed first, so the queue-depth watch can never dangle) and
  // before the engine (whose progress callback references it). A pure
  // observer: consumes no RNG, so the sweep's bytes are identical with
  // DSA_STATUS on or off.
  obs::TelemetryRun telemetry = obs::Telemetry::global().begin_run(
      {.name = obs::sanitize_run_name(options.path.stem().string()),
       .kind = "sweep",
       .spec_fingerprint = options_fingerprint(options),
       .jobs_total = kProtocolCount,
       .output = options.path.string()});
  telemetry.watch_pool(&pool);

  // Live progress + ETA over the whole 3270-protocol sweep. The engine's
  // per-chunk progress callback reports chunk-local completions; adding the
  // chunk base converts them to a global protocol count. Progress reads
  // only the wall clock and writes only stderr, so it cannot change any
  // result (and it stays monotone even with out-of-order callbacks).
  obs::ProgressMeter meter("pra", kProtocolCount, verbose);
  std::atomic<std::size_t> chunk_base{0};
  core::PraConfig pra_config = options.pra;
  pra_config.progress = [&meter, &chunk_base,
                         &telemetry](std::size_t done, std::size_t) {
    const std::size_t global =
        chunk_base.load(std::memory_order_relaxed) + done;
    meter.update(global);
    telemetry.update_done(global);
  };
  core::PraEngine engine(model, pra_config, &pool);

  // The sweep runs protocol-by-protocol (all three metrics per protocol)
  // instead of metric-by-metric so a checkpoint prefix is self-contained.
  // Per-item seeds depend only on (seed, protocol, run), so the order change
  // does not change any number.
  std::vector<PraRecord> records(kProtocolCount);
  const std::filesystem::path checkpoint = pra_checkpoint_path(options);
  std::size_t first_missing = 0;
  telemetry.set_phase("resume-check");
  if (options.checkpoint_interval > 0) {
    const std::vector<PraRecord> resumed = load_pra_checkpoint(checkpoint);
    for (const PraRecord& rec : resumed) records[rec.protocol] = rec;
    first_missing = resumed.size();
    if (first_missing > 0) {
      if (verbose) {
        std::fprintf(stderr,
                     "resuming PRA sweep from checkpoint %s (%zu/%u)\n",
                     checkpoint.string().c_str(), first_missing,
                     kProtocolCount);
      }
      if (obs::enabled()) {
        obs::Registry::global().counter("pra.checkpoint_resumes").increment();
      }
      obs::TraceSink::global().instant("pra/checkpoint-resume");
      meter.update(first_missing);
      telemetry.update_done(first_missing);
    }
  }

  const std::size_t chunk_size = options.checkpoint_interval > 0
                                     ? options.checkpoint_interval
                                     : kProtocolCount;
  // One telemetry shard per checkpoint chunk, so `dsa_cli top` shows which
  // slices of the protocol space are resumed/running/done.
  {
    std::vector<std::string> chunk_labels;
    for (std::size_t begin = 0; begin < kProtocolCount; begin += chunk_size) {
      const std::size_t end =
          std::min<std::size_t>(begin + chunk_size, kProtocolCount);
      chunk_labels.push_back("protocols-" + std::to_string(begin) + "-" +
                             std::to_string(end));
    }
    telemetry.init_shards(std::move(chunk_labels));
    for (std::size_t begin = 0; begin + chunk_size <= first_missing;
         begin += chunk_size) {
      telemetry.set_shard_state(begin / chunk_size, obs::ShardState::kResumed);
    }
  }
  telemetry.set_phase("quantify");
  for (std::size_t begin = first_missing; begin < kProtocolCount;
       begin += chunk_size) {
    const std::size_t end = std::min<std::size_t>(begin + chunk_size,
                                                  kProtocolCount);
    chunk_base.store(begin, std::memory_order_relaxed);
    telemetry.set_shard_state(begin / chunk_size, obs::ShardState::kRunning);
    // One flattened task grid per chunk: every simulation of every protocol
    // in [begin, end) schedules independently, so a slow protocol cannot
    // straggle the chunk the way the old per-protocol parallel_for could.
    const std::vector<core::ProtocolMetrics> metrics = engine.quantify(
        static_cast<std::uint32_t>(begin), static_cast<std::uint32_t>(end));
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      const auto id = static_cast<std::uint32_t>(begin + i);
      PraRecord& rec = records[id];
      rec.protocol = id;
      rec.spec = decode_protocol(id);
      rec.raw_performance = metrics[i].raw_performance;
      rec.robustness = metrics[i].robustness;
      rec.aggressiveness = metrics[i].aggressiveness;
    }
    if (options.checkpoint_interval > 0 && end < kProtocolCount) {
      DSA_OBS_PHASE("pra/checkpoint-save");
      telemetry.set_phase("checkpoint-save");
      save_pra_checkpoint(records, end, checkpoint);
      if (obs::enabled()) {
        obs::Registry::global().counter("pra.checkpoint_saves").increment();
      }
      obs::TraceSink::global().instant("pra/checkpoint-save");
      telemetry.set_phase("quantify");
    }
    telemetry.set_shard_state(begin / chunk_size, obs::ShardState::kDone);
    meter.update(end);
    telemetry.update_done(end);
  }
  meter.finish();
  telemetry.set_phase("normalize");

  // Normalize performance against the global best only once every raw value
  // exists (a checkpoint prefix has no meaningful normalization).
  double best = 0.0;
  for (const PraRecord& rec : records) {
    best = std::max(best, rec.raw_performance);
  }
  for (PraRecord& rec : records) {
    rec.performance = best > 0.0 ? rec.raw_performance / best : 0.0;
  }
  record_pra_events(records);
  return records;
}

void save_pra_dataset(const std::vector<PraRecord>& records,
                      const std::filesystem::path& path) {
  util::CsvTable table({"protocol", "stranger_policy", "h", "window",
                        "ranking", "k", "allocation", "raw_performance",
                        "performance", "robustness", "aggressiveness"});
  for (const PraRecord& rec : records) {
    table.add_row({
        std::to_string(rec.protocol),
        to_string(rec.spec.stranger_policy),
        std::to_string(rec.spec.stranger_slots),
        to_string(rec.spec.window),
        to_string(rec.spec.ranking),
        std::to_string(rec.spec.partner_slots),
        to_string(rec.spec.allocation),
        util::format_number(rec.raw_performance),
        util::format_number(rec.performance),
        util::format_number(rec.robustness),
        util::format_number(rec.aggressiveness),
    });
  }
  table.save(path);
}

std::vector<PraRecord> load_pra_dataset(const std::filesystem::path& path) {
  const util::CsvTable table = util::CsvTable::load(path);
  std::vector<PraRecord> records;
  records.reserve(table.row_count());
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    PraRecord rec;
    rec.protocol =
        static_cast<std::uint32_t>(table.number_at(r, "protocol"));
    rec.spec = decode_protocol(rec.protocol);
    rec.raw_performance = table.number_at(r, "raw_performance");
    rec.performance = table.number_at(r, "performance");
    rec.robustness = table.number_at(r, "robustness");
    rec.aggressiveness = table.number_at(r, "aggressiveness");
    records.push_back(rec);
  }
  record_pra_events(records);
  return records;
}

std::vector<PraRecord> load_or_compute_pra_dataset(
    const PraDatasetOptions& options, bool verbose) {
  if (std::filesystem::exists(options.path)) {
    if (verbose) {
      std::fprintf(stderr, "loading cached PRA dataset: %s\n",
                   options.path.string().c_str());
    }
    return load_pra_dataset(options.path);
  }
  if (verbose) {
    std::fprintf(stderr,
                 "no cached PRA dataset at %s; computing (set DSA_* env vars "
                 "to rescale)...\n",
                 options.path.string().c_str());
  }
  std::vector<PraRecord> records = compute_pra_dataset(options, verbose);
  save_pra_dataset(records, options.path);
  // The finished dataset supersedes any partial checkpoint.
  std::error_code ignored;
  std::filesystem::remove(pra_checkpoint_path(options), ignored);
  if (verbose) {
    std::fprintf(stderr, "saved PRA dataset: %s\n",
                 options.path.string().c_str());
  }
  return records;
}

}  // namespace dsa::swarming
