#include "swarming/dsa_model.hpp"

#include <stdexcept>
#include <vector>

#include "obs/recorder.hpp"
#include "swarming/batch_engine.hpp"
#include "util/rng.hpp"

namespace dsa::swarming {

// A PRA sweep drives ~1e5 inner simulations per protocol batch; recording
// each of them would swamp a recording with per-round events nobody asked
// for. SuppressScope latches the flight recorder off for sims spawned by the
// quantification tournament — the sweep's own summary (kPra events) is
// emitted by the dataset layer after normalisation. Purely observer-side:
// sim outputs are unaffected.

double SwarmingModel::homogeneous_utility(std::uint32_t protocol,
                                          std::size_t population,
                                          std::uint64_t seed) const {
  obs::SuppressScope suppress;
  SimulationConfig config = base_;
  config.seed = seed;
  return run_homogeneous_throughput(decode_protocol(protocol), population,
                                    config, bandwidths_);
}

std::vector<double> SwarmingModel::group_utilities(
    std::span<const core::GroupShare> groups, std::uint64_t seed) const {
  obs::SuppressScope suppress;
  std::size_t total = 0;
  for (const auto& group : groups) total += group.count;
  if (total == 0) {
    throw std::invalid_argument(
        "SwarmingModel::group_utilities: empty population");
  }

  std::vector<ProtocolSpec> protocols;
  protocols.reserve(total);
  for (const auto& group : groups) {
    protocols.insert(protocols.end(), group.count,
                     decode_protocol(group.protocol));
  }

  std::vector<double> capacities = bandwidths_.stratified_sample(total);
  util::Rng rng(util::hash64(seed ^ 0x9d2c5680cafef00dULL));
  rng.shuffle(capacities);

  SimulationConfig config = base_;
  config.seed = seed;
  const SimulationOutcome outcome =
      simulate_rounds(protocols, capacities, config, &bandwidths_);

  std::vector<double> utilities(groups.size(), 0.0);
  std::size_t offset = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].count > 0) {
      utilities[g] = outcome.group_mean(offset, offset + groups[g].count);
      offset += groups[g].count;
    }
  }
  return utilities;
}

std::pair<double, double> SwarmingModel::mixed_utilities(
    std::uint32_t a, std::uint32_t b, std::size_t count_a,
    std::size_t count_b, std::uint64_t seed) const {
  obs::SuppressScope suppress;
  SimulationConfig config = base_;
  config.seed = seed;
  const EncounterOutcome outcome =
      run_encounter(decode_protocol(a), decode_protocol(b), count_a, count_b,
                    config, bandwidths_);
  return {outcome.group_a_mean, outcome.group_b_mean};
}

void SwarmingModel::homogeneous_utility_batch(
    std::uint32_t protocol, std::size_t population,
    std::span<const std::uint64_t> seeds, std::span<double> out) const {
  if (base_.engine != SimEngine::kBatch) {
    core::EncounterModel::homogeneous_utility_batch(protocol, population,
                                                    seeds, out);
    return;
  }
  obs::SuppressScope suppress;
  run_homogeneous_throughput_batch(decode_protocol(protocol), population,
                                   base_, bandwidths_, seeds, out);
}

void SwarmingModel::mixed_utilities_batch(
    std::uint32_t a, std::size_t count_a, std::size_t count_b,
    std::span<const core::MixedJob> jobs,
    std::span<std::pair<double, double>> out) const {
  if (base_.engine != SimEngine::kBatch) {
    core::EncounterModel::mixed_utilities_batch(a, count_a, count_b, jobs,
                                                out);
    return;
  }
  obs::SuppressScope suppress;
  std::vector<BatchEncounter> encounters;
  encounters.reserve(jobs.size());
  for (const auto& job : jobs) {
    encounters.push_back({decode_protocol(job.opponent), job.seed});
  }
  std::vector<EncounterOutcome> outcomes(jobs.size());
  run_encounter_batch(decode_protocol(a), count_a, count_b, base_,
                      bandwidths_, encounters, outcomes);
  for (std::size_t w = 0; w < jobs.size(); ++w) {
    out[w] = {outcomes[w].group_a_mean, outcomes[w].group_b_mean};
  }
}

}  // namespace dsa::swarming
