#include "swarming/batch_engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "swarming/engine_detail.hpp"
#include "util/rng.hpp"

namespace dsa::swarming {

// ------------------------------------------------------------ workspace --

struct BatchWorkspace::Impl {
  using Cell = SimWorkspace::Impl::Cell;
  using Streak = SimWorkspace::Impl::Streak;
  using Generation = SimWorkspace::Impl::Generation;
  using RankEntry = SimWorkspace::Impl::RankEntry;

  /// One lane's interaction history: the same epoch-stamped generations and
  /// streak table the sparse engine keeps, private to the lane. Histories
  /// stay array-of-lanes (act() walks one lane's in-lists at a time); only
  /// the per-peer scalars below transpose into W-wide lanes.
  struct LaneHist {
    std::array<Generation, 3> gen;
    std::vector<Streak> streak;
    std::uint64_t streak_epoch = 0;
  };

  std::vector<LaneHist> lane;
  /// Monotone epoch source shared by every lane — uniqueness is all that
  /// stamp liveness needs, and one counter keeps cross-run reuse safe for
  /// the whole batch exactly as in SimWorkspace::Impl.
  std::uint64_t epoch_counter = 0;

  std::size_t width = 0;  // W of the current batch
  std::size_t n = 0;      // population size of the current batch

  // W-wide per-peer state lanes, indexed [peer * width + w] so the batch
  // dimension is contiguous and the lockstep update loops vectorize.
  std::vector<double> capacities;
  std::vector<double> aspiration;
  std::vector<double> round_received;
  std::vector<double> total_received;
  /// max(1.0, partner_slots) per (peer, lane) — protocols never change
  /// within a run, so the aspiration divisor is precomputed once. Values
  /// only; the division itself stays in the round loop so the arithmetic
  /// matches the scalar engines bit-for-bit.
  std::vector<double> slots;
  std::vector<std::uint32_t> tie_priority;  // [peer * width + w]
  std::vector<std::uint64_t> draw_buf;      // width-sized next_all target
  std::vector<std::uint64_t> seed_scratch;
  util::LaneRng rng;

  // Transient scratch shared across lanes: each buffer is only live inside
  // one lane's act()/fault step, and the candidate marks are restored to
  // all-zero after every act, so lanes can safely take turns with them.
  std::vector<std::uint32_t> candidates;
  std::vector<std::uint32_t> eligible_strangers;
  std::vector<std::uint8_t> is_candidate;
  std::vector<std::uint32_t> victim_scratch;
  std::vector<double> intake_scale;
  std::vector<RankEntry> rank_entries;
  std::vector<std::uint32_t> excluded_scratch;
  std::vector<double> candidate_window;

  std::uint64_t next_epoch() noexcept { return ++epoch_counter; }

  /// True when the last prepare() found every O(n^2) array already sized.
  bool last_prepare_reused = false;

  /// Readies the workspace for a W-lane, n-peer batch. Zero allocations
  /// once the buffers have grown to this (W, n).
  void prepare(std::span<const BatchLane> lanes) {
    width = lanes.size();
    n = lanes.front().protocols->size();
    const std::size_t cells = n * n;

    last_prepare_reused = lane.size() >= width;
    if (lane.size() < width) lane.resize(width);
    for (std::size_t w = 0; w < width; ++w) {
      LaneHist& h = lane[w];
      last_prepare_reused = last_prepare_reused &&
                            h.gen[0].cell.size() >= cells &&
                            h.streak.size() >= cells;
      for (Generation& g : h.gen) {
        g.cell.resize(cells);
        g.epoch = next_epoch();
        for (auto& list : g.in) list.clear();
        g.in.resize(n);
      }
      h.streak.resize(cells);
      h.streak_epoch = next_epoch();
    }

    const std::size_t wide = n * width;
    capacities.resize(wide);
    aspiration.resize(wide);
    slots.resize(wide);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t w = 0; w < width; ++w) {
        const double cap = (*lanes[w].capacities)[i];
        capacities[i * width + w] = cap;
        aspiration[i * width + w] = cap;
        slots[i * width + w] = std::max<double>(
            1.0, (*lanes[w].protocols)[i].partner_slots);
      }
    }
    round_received.assign(wide, 0.0);
    total_received.assign(wide, 0.0);
    tie_priority.assign(wide, 0);
    draw_buf.resize(width);
    seed_scratch.resize(width);
    for (std::size_t w = 0; w < width; ++w) seed_scratch[w] = lanes[w].seed;
    rng.reset(seed_scratch);

    candidates.clear();
    candidates.reserve(n);
    eligible_strangers.clear();
    eligible_strangers.reserve(n);
    is_candidate.assign(n, 0);
    victim_scratch.clear();
    intake_scale.assign(n, 0.0);
    rank_entries.clear();
    rank_entries.reserve(n);
    excluded_scratch.clear();
    excluded_scratch.reserve(n);
    candidate_window.clear();
    candidate_window.reserve(n);
  }
};

BatchWorkspace::BatchWorkspace() : impl_(std::make_unique<Impl>()) {}
BatchWorkspace::~BatchWorkspace() = default;
BatchWorkspace::BatchWorkspace(BatchWorkspace&&) noexcept = default;
BatchWorkspace& BatchWorkspace::operator=(BatchWorkspace&&) noexcept = default;

namespace {

/// The W-wide lockstep port of SparseEngine: per lane it executes the same
/// model steps, the same RNG draws, and the same floating-point expressions
/// in the same order as a solo sparse run with that lane's seed — the
/// equivalence tests assert bitwise identity at every width. The batch wins
/// come from the lockstep structure: the tie-priority draws bulk-advance
/// all W RNG streams per peer (LaneRng::next_all vectorizes), the
/// aspiration/accumulator update is one flat vectorizable loop over the
/// n*W state lanes, and the protocol/config tables stay hot across the
/// whole batch instead of being re-walked per run.
class BatchEngine {
  using Cell = SimWorkspace::Impl::Cell;
  using Generation = SimWorkspace::Impl::Generation;
  using RankEntry = SimWorkspace::Impl::RankEntry;

 public:
  BatchEngine(std::span<const BatchLane> lanes,
              const SimulationConfig& config,
              const BandwidthDistribution* churn_source,
              BatchWorkspace::Impl& ws)
      : lanes_(lanes),
        config_(config),
        churn_source_(churn_source),
        n_(lanes.front().protocols->size()),
        W_(lanes.size()),
        ws_(ws) {
    ws_.prepare(lanes);
    peers_replaced_.assign(W_, 0);
    captures_.reserve(W_);
    for (std::size_t w = 0; w < W_; ++w) {
      captures_.push_back(
          std::make_unique<obs::RunCapture>(obs::Recorder::global()));
    }
  }

  std::vector<SimulationOutcome> run() {
    DSA_OBS_PHASE("sim/run");
    std::vector<SimulationOutcome> outcomes(W_);
    for (std::size_t w = 0; w < W_; ++w) {
      if (config_.record_round_series) {
        outcomes[w].round_throughput.reserve(config_.rounds);
      }
      if (captures_[w]->rounds()) {
        captures_[w]->emit({.kind = obs::EventKind::kRun,
                            .run = lanes_[w].seed,
                            .value = {{static_cast<double>(n_),
                                       static_cast<double>(config_.rounds),
                                       config_.churn_rate, 2.0}},
                            .label = "round",
                            .detail = captures_[w]->context()});
      }
    }
    {
      // Inner-loop span for the wall-clock sampler: one scope over the
      // whole lockstep round loop, so batch samples attribute as
      // sim/run;sim/rounds like the scalar engines.
      DSA_OBS_PHASE("sim/rounds");
      for (std::size_t round = 0; round < config_.rounds; ++round) {
        step(round);
        if (config_.record_round_series) {
          for (std::size_t w = 0; w < W_; ++w) {
            double round_mean = 0.0;
            for (std::size_t i = 0; i < n_; ++i) {
              round_mean += ws_.round_received[i * W_ + w];
            }
            outcomes[w].round_throughput.push_back(round_mean /
                                                   static_cast<double>(n_));
          }
        }
        if (captures_.front()->rounds() && captures_.front()->sampled(round)) {
          for (std::size_t w = 0; w < W_; ++w) {
            double round_mean = 0.0;
            for (std::size_t i = 0; i < n_; ++i) {
              round_mean += ws_.round_received[i * W_ + w];
            }
            captures_[w]->emit(
                {.kind = obs::EventKind::kRound,
                 .run = lanes_[w].seed,
                 .time = static_cast<std::uint32_t>(round),
                 .value = {{round_mean / static_cast<double>(n_),
                            static_cast<double>(peers_replaced_[w]), 0.0,
                            0.0}}});
          }
        }
      }
    }
    for (std::size_t w = 0; w < W_; ++w) {
      outcomes[w].peer_throughput.resize(n_);
      for (std::size_t i = 0; i < n_; ++i) {
        outcomes[w].peer_throughput[i] =
            ws_.total_received[i * W_ + w] /
            static_cast<double>(config_.rounds);
      }
      outcomes[w].peers_replaced = peers_replaced_[w];
      observe_score_spread(outcomes[w].peer_throughput);
      if (captures_[w]->rounds()) {
        for (std::size_t i = 0; i < n_; ++i) {
          captures_[w]->emit(
              {.kind = obs::EventKind::kPeer,
               .run = lanes_[w].seed,
               .actor = static_cast<std::uint32_t>(i),
               .value = {{ws_.capacities[i * W_ + w],
                          outcomes[w].peer_throughput[i], 0.0, 0.0}},
               .label = (*lanes_[w].protocols)[i].describe()});
        }
      }
    }
    flush_metrics();
    return outcomes;
  }

 private:
  [[nodiscard]] Generation& gen(std::size_t w, int role) {
    return ws_.lane[w].gen[static_cast<std::size_t>(role)];
  }
  [[nodiscard]] const Generation& gen(std::size_t w, int role) const {
    return ws_.lane[w].gen[static_cast<std::size_t>(role)];
  }

  void step(std::size_t round) {
    std::fill(ws_.round_received.begin(),
              ws_.round_received.begin() +
                  static_cast<std::ptrdiff_t>(n_ * W_),
              0.0);
    // Tie-break draws in lockstep: for each peer j all W streams advance by
    // one draw, so per lane the draws land in the same positions as the
    // scalar engines' per-round fill — and the lane loop vectorizes.
    for (std::size_t j = 0; j < n_; ++j) {
      ws_.rng.next_all(ws_.draw_buf.data());
      std::uint32_t* tie = &ws_.tie_priority[j * W_];
      const std::uint64_t* buf = ws_.draw_buf.data();
      for (std::size_t w = 0; w < W_; ++w) {
        tie[w] = static_cast<std::uint32_t>(buf[w]);
      }
    }

    round_ = static_cast<std::uint32_t>(round);
    // All captures latched the same level at construction, so one flag
    // covers the batch. act() stays templated on it as in the scalar
    // engines: the non-recording instantiation carries no emit code.
    const bool record_full =
        captures_.front()->full() && captures_.front()->sampled(round);
    for (std::size_t me = 0; me < n_; ++me) {
      for (std::size_t w = 0; w < W_; ++w) {
        if (record_full) {
          act<true>(w, me);
        } else {
          act<false>(w, me);
        }
        // Restore the all-zero candidate-mark invariant before the next
        // lane borrows the shared scratch.
        for (const std::uint32_t j : ws_.excluded_scratch) {
          ws_.is_candidate[j] = 0;
        }
      }
    }

    finish_round(round);
  }

  /// Candidate list of `me` on lane `w` — identical merge logic to
  /// SparseEngine::build_candidates over the lane's private generations.
  void build_candidates(std::size_t w, std::size_t me, bool two_rounds) {
    auto& candidates = ws_.candidates;
    candidates.clear();
    ws_.candidate_window.clear();
    const Generation& now = gen(w, now_);
    const std::size_t base = me * n_;
    auto push = [&](std::uint32_t j, double window) {
      ws_.is_candidate[j] = 1;
      candidates.push_back(j);
      ws_.candidate_window.push_back(window);
    };
    const std::vector<std::uint32_t>& now_in = now.in[me];
    if (!two_rounds) {
      for (const std::uint32_t j : now_in) {
        const Cell& cell = now.cell[base + j];
        if (cell.stamp == now.epoch) push(j, cell.value);
      }
      return;
    }
    const Generation& prev = gen(w, prev_);
    const std::vector<std::uint32_t>& prev_in = prev.in[me];
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < now_in.size() || b < prev_in.size()) {
      if (b == prev_in.size() ||
          (a < now_in.size() && now_in[a] < prev_in[b])) {
        const std::uint32_t j = now_in[a++];
        const Cell& cell = now.cell[base + j];
        if (cell.stamp == now.epoch) push(j, cell.value + 0.0);
      } else if (a == now_in.size() || prev_in[b] < now_in[a]) {
        const std::uint32_t j = prev_in[b++];
        const Cell& cell = prev.cell[base + j];
        if (cell.stamp == prev.epoch) push(j, 0.0 + cell.value);
      } else {
        const std::uint32_t j = now_in[a];
        ++a;
        ++b;
        const Cell& now_cell = now.cell[base + j];
        const Cell& prev_cell = prev.cell[base + j];
        const bool now_live = now_cell.stamp == now.epoch;
        const bool prev_live = prev_cell.stamp == prev.epoch;
        if (now_live || prev_live) {
          double window = now_live ? now_cell.value : 0.0;
          window += prev_live ? prev_cell.value : 0.0;
          push(j, window);
        }
      }
    }
  }

  template <bool kRecordFull>
  void act(std::size_t w, std::size_t me) {
    const ProtocolSpec& spec = (*lanes_[w].protocols)[me];
    const bool two_rounds = spec.window == CandidateWindow::kTf2t;

    // 1. Candidate list.
    build_candidates(w, me, two_rounds);
    auto& candidates = ws_.candidates;
    candidates_scanned_ += candidates.size();
    ws_.excluded_scratch.assign(candidates.begin(), candidates.end());

    // 2. Rank and select the top k partners.
    const std::size_t k = spec.partner_slots;
    std::size_t partner_count = std::min(k, candidates.size());
    if (partner_count > 0) rank_candidates(w, me, spec, partner_count);

    // 3. Strangers — same "when needed" fullness rule as the scalar engines.
    std::size_t stranger_count = 0;
    if (spec.stranger_slots > 0) {
      bool wants_strangers = true;
      if (spec.stranger_policy == StrangerPolicy::kWhenNeeded) {
        std::size_t contributing = 0;
        for (std::size_t p = 0; p < partner_count; ++p) {
          if (window_received(w, me, candidates[p], two_rounds) > 0.0) {
            ++contributing;
          }
        }
        wants_strangers = contributing < k;
      }
      if (wants_strangers) {
        stranger_count = pick_strangers(w, me, spec.stranger_slots);
      }
    }

    // 4. Allocation over FIXED lanes (see DenseEngine::act for the paper
    // rationale; the arithmetic is operation-for-operation the same).
    const bool defects_on_strangers =
        spec.stranger_policy == StrangerPolicy::kDefect;
    const std::size_t gifted_strangers =
        defects_on_strangers ? 0 : stranger_count;
    const std::size_t partner_lanes =
        config_.lane_model == LaneModel::kFixedLanes ? k : partner_count;
    const std::size_t lanes = partner_lanes + gifted_strangers;
    if constexpr (kRecordFull) {
      captures_[w]->emit({.kind = obs::EventKind::kSelect,
                          .run = lanes_[w].seed,
                          .time = round_,
                          .actor = static_cast<std::uint32_t>(me),
                          .value = {{static_cast<double>(candidates.size()),
                                     static_cast<double>(partner_count),
                                     static_cast<double>(stranger_count),
                                     static_cast<double>(lanes)}}});
    }
    auto record_give = [&](obs::EventKind kind, std::uint32_t to,
                           double amount) {
      if constexpr (!kRecordFull) {
        (void)kind;
        (void)to;
        (void)amount;
        return;
      } else {
        obs::Event event{.kind = kind,
                         .run = lanes_[w].seed,
                         .time = round_,
                         .actor = static_cast<std::uint32_t>(me),
                         .peer = to};
        event.value[0] = amount;
        if (kind == obs::EventKind::kPartner) {
          event.value[1] = window_received(w, me, to, two_rounds);
        }
        captures_[w]->emit(std::move(event));
      }
    };
    if (defects_on_strangers) {
      for (std::size_t s = 0; s < stranger_count; ++s) {
        give(w, me, ws_.eligible_strangers[s], 0.0);  // visible defection
        record_give(obs::EventKind::kStranger, ws_.eligible_strangers[s],
                    0.0);
      }
    }
    if (lanes == 0) return;

    const double capacity = ws_.capacities[me * W_ + w];
    const double lane_rate = capacity / static_cast<double>(lanes);
    const double gift = lane_rate * config_.stranger_efficiency;
    for (std::size_t s = 0; s < gifted_strangers; ++s) {
      give(w, me, ws_.eligible_strangers[s], gift);
      record_give(obs::EventKind::kStranger, ws_.eligible_strangers[s], gift);
    }

    if (partner_count == 0) return;
    const double partner_budget =
        lane_rate * static_cast<double>(partner_lanes);
    switch (spec.allocation) {
      case AllocationPolicy::kEqualSplit: {
        for (std::size_t p = 0; p < partner_count; ++p) {
          give(w, me, candidates[p], lane_rate);
          record_give(obs::EventKind::kPartner, candidates[p], lane_rate);
        }
        break;
      }
      case AllocationPolicy::kPropShare: {
        double contribution_sum = 0.0;
        for (std::size_t p = 0; p < partner_count; ++p) {
          contribution_sum +=
              window_received(w, me, candidates[p], two_rounds);
        }
        for (std::size_t p = 0; p < partner_count; ++p) {
          const double share =
              contribution_sum > 0.0
                  ? partner_budget *
                        window_received(w, me, candidates[p], two_rounds) /
                        contribution_sum
                  : 0.0;
          give(w, me, candidates[p], share);
          record_give(obs::EventKind::kPartner, candidates[p], share);
        }
        break;
      }
      case AllocationPolicy::kFreeride: {
        for (std::size_t p = 0; p < partner_count; ++p) {
          give(w, me, candidates[p], 0.0);
          record_give(obs::EventKind::kPartner, candidates[p], 0.0);
        }
        break;
      }
    }
  }

  [[nodiscard]] double window_received(std::size_t w, std::size_t me,
                                       std::size_t j, bool two_rounds) const {
    const std::size_t idx = me * n_ + j;
    const Generation& now = gen(w, now_);
    const Cell& now_cell = now.cell[idx];
    double amount = now_cell.stamp == now.epoch ? now_cell.value : 0.0;
    if (two_rounds) {
      const Generation& prev = gen(w, prev_);
      const Cell& prev_cell = prev.cell[idx];
      amount += prev_cell.stamp == prev.epoch ? prev_cell.value : 0.0;
    }
    return amount;
  }

  [[nodiscard]] double streak_of(std::size_t w, std::size_t me,
                                 std::size_t j) const {
    const SimWorkspace::Impl::Streak& s = ws_.lane[w].streak[me * n_ + j];
    return s.stamp == ws_.lane[w].streak_epoch ? static_cast<double>(s.value)
                                               : 0.0;
  }

  void rank_candidates(std::size_t w, std::size_t me,
                       const ProtocolSpec& spec, std::size_t top) {
    auto& candidates = ws_.candidates;
    auto by_key = [&](auto key, bool descending) {
      auto cmp = [descending](const RankEntry& a, const RankEntry& b) {
        if (a.key != b.key) return descending ? a.key > b.key : a.key < b.key;
        if (a.tie != b.tie) return a.tie < b.tie;
        return a.id < b.id;
      };
      constexpr std::size_t kSmallTop = 16;  // design space: k <= 9
      const std::size_t count = candidates.size();
      if (top <= kSmallTop) {
        ++topk_boundary_scans_;
        RankEntry best[kSmallTop];
        std::size_t filled = 0;
        for (std::size_t i = 0; i < count; ++i) {
          const std::uint32_t j = candidates[i];
          const RankEntry e{key(i, j), ws_.tie_priority[j * W_ + w], j};
          if (filled == top && !cmp(e, best[top - 1])) continue;
          std::size_t pos = filled < top ? filled : top - 1;
          while (pos > 0 && cmp(e, best[pos - 1])) {
            best[pos] = best[pos - 1];
            --pos;
          }
          best[pos] = e;
          if (filled < top) ++filled;
        }
        for (std::size_t i = 0; i < top; ++i) candidates[i] = best[i].id;
        return;
      }
      auto& entries = ws_.rank_entries;
      entries.clear();
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t j = candidates[i];
        entries.push_back({key(i, j), ws_.tie_priority[j * W_ + w], j});
      }
      std::partial_sort(entries.begin(), entries.begin() + top, entries.end(),
                        cmp);
      for (std::size_t i = 0; i < top; ++i) candidates[i] = entries[i].id;
    };
    switch (spec.ranking) {
      case RankingFunction::kFastest:
        by_key([&](std::size_t i, std::uint32_t) {
                 return ws_.candidate_window[i];
               },
               /*descending=*/true);
        break;
      case RankingFunction::kSlowest:
        by_key([&](std::size_t i, std::uint32_t) {
                 return ws_.candidate_window[i];
               },
               /*descending=*/false);
        break;
      case RankingFunction::kProximity:
        by_key(
            [&](std::size_t, std::uint32_t j) {
              return std::fabs(ws_.capacities[j * W_ + w] -
                               ws_.capacities[me * W_ + w]);
            },
            /*descending=*/false);
        break;
      case RankingFunction::kAdaptive:
        by_key(
            [&](std::size_t, std::uint32_t j) {
              return std::fabs(ws_.capacities[j * W_ + w] -
                               ws_.aspiration[me * W_ + w]);
            },
            /*descending=*/false);
        break;
      case RankingFunction::kLoyal:
        by_key(
            [&](std::size_t, std::uint32_t j) { return streak_of(w, me, j); },
            /*descending=*/true);
        break;
      case RankingFunction::kRandom:
        for (std::size_t i = 0; i < top; ++i) {
          const std::size_t j =
              i + static_cast<std::size_t>(
                      ws_.rng.below(w, candidates.size() - i));
          std::swap(candidates[i], candidates[j]);
        }
        break;
    }
  }

  /// Virtual-list stranger picks, identical to SparseEngine::pick_strangers
  /// (same draws, same overlay) with the draws taken from lane w's stream.
  std::size_t pick_strangers(std::size_t w, std::size_t me,
                             std::size_t want) {
    constexpr std::size_t kMaxOverlayPicks = 8;  // design space: h <= 3
    auto& eligible = ws_.eligible_strangers;

    auto& excluded = ws_.excluded_scratch;
    const auto me_id = static_cast<std::uint32_t>(me);
    excluded.insert(std::lower_bound(excluded.begin(), excluded.end(), me_id),
                    me_id);
    const std::size_t eligible_size = n_ - excluded.size();

    if (want > kMaxOverlayPicks) {
      eligible.clear();
      std::uint32_t from = 0;
      for (const std::uint32_t e : excluded) {
        for (std::uint32_t j = from; j < e; ++j) eligible.push_back(j);
        from = e + 1;
      }
      for (std::uint32_t j = from; j < n_; ++j) eligible.push_back(j);
      const std::size_t found = std::min(want, eligible.size());
      for (std::size_t i = 0; i < found; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(
                    ws_.rng.below(w, eligible.size() - i));
        std::swap(eligible[i], eligible[j]);
      }
      return found;
    }

    auto base = [&](std::size_t x) {
      std::uint32_t value = static_cast<std::uint32_t>(x);
      for (const std::uint32_t e : excluded) {
        if (e <= value) ++value;
      }
      return value;
    };
    struct Patch {
      std::size_t pos;
      std::uint32_t value;
    };
    Patch patches[2 * kMaxOverlayPicks];
    std::size_t patch_count = 0;
    auto read = [&](std::size_t pos) {
      for (std::size_t p = 0; p < patch_count; ++p) {
        if (patches[p].pos == pos) return patches[p].value;
      }
      return base(pos);
    };
    auto write = [&](std::size_t pos, std::uint32_t value) {
      for (std::size_t p = 0; p < patch_count; ++p) {
        if (patches[p].pos == pos) {
          patches[p].value = value;
          return;
        }
      }
      patches[patch_count++] = {pos, value};
    };

    eligible.clear();
    const std::size_t found = std::min(want, eligible_size);
    for (std::size_t i = 0; i < found; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(ws_.rng.below(w, eligible_size - i));
      const std::uint32_t picked = read(j);
      write(j, read(i));
      write(i, picked);
      eligible.push_back(picked);
    }
    return found;
  }

  /// Opens a slot from `me` to `to` on lane `w` carrying `amount`.
  void give(std::size_t w, std::size_t me, std::size_t to, double amount) {
    Generation& next = gen(w, next_);
    next.cell[to * n_ + me] = {amount, next.epoch};
    next.in[to].push_back(static_cast<std::uint32_t>(me));
    ws_.round_received[to * W_ + w] += amount;
  }

  void finish_round(std::size_t round) {
    auto& round_received = ws_.round_received;

    // Receiver intake cap, lane by lane over the touched cells — the same
    // arithmetic as the scalar engines per lane.
    if (config_.intake_factor > 0.0) {
      for (std::size_t w = 0; w < W_; ++w) {
        Generation& next = gen(w, next_);
        bool any_capped = false;
        for (std::size_t j = 0; j < n_; ++j) {
          const double intake =
              config_.intake_factor * ws_.capacities[j * W_ + w];
          if (round_received[j * W_ + w] <= intake) {
            ws_.intake_scale[j] = -1.0;  // sentinel: not capped
            continue;
          }
          ws_.intake_scale[j] = intake / round_received[j * W_ + w];
          round_received[j * W_ + w] = intake;
          any_capped = true;
        }
        if (any_capped) {
          for (std::size_t to = 0; to < n_; ++to) {
            const double scale = ws_.intake_scale[to];
            if (scale < 0.0) continue;
            const std::size_t base = to * n_;
            for (const std::uint32_t giver : next.in[to]) {
              next.cell[base + giver].value *= scale;
            }
          }
        }
      }
    }

    // Shift the history window: the role rotation is shared by all lanes;
    // each lane's recycled generation gets its own fresh epoch.
    const int recycled = prev_;
    prev_ = now_;
    now_ = next_;
    next_ = recycled;
    for (std::size_t w = 0; w < W_; ++w) {
      Generation& fresh = gen(w, next_);
      fresh.epoch = ws_.next_epoch();
      for (std::size_t j = 0; j < n_; ++j) fresh.in[j].clear();
    }

    // Cooperation streaks per lane, over the cells touched this round.
    for (std::size_t w = 0; w < W_; ++w) {
      const Generation& now = gen(w, now_);
      auto& hist = ws_.lane[w];
      const std::uint64_t new_streak_epoch = ws_.next_epoch();
      for (std::size_t to = 0; to < n_; ++to) {
        const std::size_t base = to * n_;
        for (const std::uint32_t giver : now.in[to]) {
          const std::size_t idx = base + giver;
          if (now.cell[idx].value > 0.0) {
            SimWorkspace::Impl::Streak& s = hist.streak[idx];
            const int prev_streak =
                s.stamp == hist.streak_epoch ? s.value : 0;
            s.value = static_cast<std::uint16_t>(
                std::min<int>(prev_streak + 1, 0xffff));
            s.stamp = new_streak_epoch;
          }
        }
      }
      hist.streak_epoch = new_streak_epoch;
    }

    // Aspiration tracking and the received accumulators: one flat loop over
    // all n*W state lanes — the vectorized heart of the lockstep update.
    // The expression keeps the scalar engines' exact shape (divide by the
    // precomputed slot count, then one smoothing step), so each lane's
    // floating-point results are bit-equal to its solo run.
    {
      const double smoothing = config_.aspiration_smoothing;
      const std::size_t wide = n_ * W_;
      const double* slots = ws_.slots.data();
      double* rr = round_received.data();
      double* asp = ws_.aspiration.data();
      double* tr = ws_.total_received.data();
      for (std::size_t idx = 0; idx < wide; ++idx) {
        const double per_slot = rr[idx] / slots[idx];
        asp[idx] += smoothing * (per_slot - asp[idx]);
        tr[idx] += rr[idx];
      }
    }

    // Churn, then scheduled fault processes — per lane, same draw order as
    // the scalar engines.
    for (std::size_t w = 0; w < W_; ++w) {
      if (config_.churn_rate > 0.0) {
        for (std::size_t i = 0; i < n_; ++i) {
          if (ws_.rng.chance(w, config_.churn_rate)) replace_peer(w, i);
        }
      }
      for (const fault::FaultProcess& process : config_.faults) {
        apply_fault(w, process, round);
      }
    }
  }

  void apply_fault(std::size_t w, const fault::FaultProcess& process,
                   std::size_t round) {
    using fault::FaultProcessKind;
    switch (process.kind) {
      case FaultProcessKind::kMemorylessChurn: {
        if (process.rate <= 0.0) break;
        for (std::size_t i = 0; i < n_; ++i) {
          if (ws_.rng.chance(w, process.rate)) replace_peer(w, i);
        }
        break;
      }
      case FaultProcessKind::kBurstChurn: {
        if ((round + 1) % process.period != 0) break;
        const auto hit = static_cast<std::size_t>(std::lround(
            process.fraction * static_cast<double>(n_)));
        if (hit == 0) break;
        auto& victims = ws_.victim_scratch;
        victims.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) {
          victims[i] = static_cast<std::uint32_t>(i);
        }
        for (std::size_t i = 0; i < hit; ++i) {
          const std::size_t j =
              i + static_cast<std::size_t>(ws_.rng.below(w, n_ - i));
          std::swap(victims[i], victims[j]);
          replace_peer(w, victims[i]);
        }
        break;
      }
      case FaultProcessKind::kCapacityDegradation: {
        if (round != process.round) break;
        for (std::size_t i = 0; i < n_; ++i) {
          ws_.capacities[i * W_ + w] *= process.factor;
        }
        break;
      }
      case FaultProcessKind::kTargetedFailure: {
        if (round != process.round) break;
        const auto hit = static_cast<std::size_t>(std::lround(
            process.fraction * static_cast<double>(n_)));
        if (hit == 0) break;
        auto& victims = ws_.victim_scratch;
        victims.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) {
          victims[i] = static_cast<std::uint32_t>(i);
        }
        std::partial_sort(
            victims.begin(),
            victims.begin() +
                static_cast<std::ptrdiff_t>(std::min(hit, n_)),
            victims.end(), [&](std::uint32_t a, std::uint32_t b) {
              if (ws_.capacities[a * W_ + w] != ws_.capacities[b * W_ + w]) {
                return ws_.capacities[a * W_ + w] >
                       ws_.capacities[b * W_ + w];
              }
              return a < b;
            });
        for (std::size_t i = 0; i < std::min(hit, n_); ++i) {
          replace_peer(w, victims[i]);
        }
        break;
      }
    }
  }

  /// Replaces peer i on lane w with a fresh same-protocol peer; the O(n)
  /// stamp walk covers only that lane's history.
  void replace_peer(std::size_t w, std::size_t i) {
    ++peers_replaced_[w];
    // Mirrors BandwidthDistribution::sample — one uniform draw through the
    // inverse CDF — on lane w's stream.
    ws_.capacities[i * W_ + w] =
        churn_source_->capacity_at(ws_.rng.uniform(w));
    ws_.aspiration[i * W_ + w] = ws_.capacities[i * W_ + w];
    Generation& now = gen(w, now_);
    Generation& prev = gen(w, prev_);
    auto& streak = ws_.lane[w].streak;
    for (std::size_t j = 0; j < n_; ++j) {
      const std::size_t row = i * n_ + j;
      const std::size_t col = j * n_ + i;
      now.cell[row].stamp = 0;
      now.cell[col].stamp = 0;
      prev.cell[row].stamp = 0;
      prev.cell[col].stamp = 0;
      streak[row].stamp = 0;
      streak[col].stamp = 0;
    }
  }

  std::span<const BatchLane> lanes_;
  const SimulationConfig& config_;
  const BandwidthDistribution* churn_source_;
  const std::size_t n_;
  const std::size_t W_;
  BatchWorkspace::Impl& ws_;

  // Roles of every lane's gen entries; rotated once per round.
  int prev_ = 0;
  int now_ = 1;
  int next_ = 2;

  std::vector<std::size_t> peers_replaced_;
  // Plain local tallies, flushed to the metrics registry once per batch.
  std::size_t candidates_scanned_ = 0;
  std::size_t topk_boundary_scans_ = 0;

  // One flight-recorder capture per lane so events carry their lane's run
  // key; all latch the same level at construction.
  std::vector<std::unique_ptr<obs::RunCapture>> captures_;
  std::uint32_t round_ = 0;

  void flush_metrics() const {
    if (!obs::enabled()) return;
    static const obs::Counter batches =
        obs::Registry::global().counter("sim.batch.batches");
    static const obs::Counter runs =
        obs::Registry::global().counter("sim.batch.runs");
    static const obs::Counter rounds =
        obs::Registry::global().counter("sim.batch.rounds");
    static const obs::Counter scanned =
        obs::Registry::global().counter("sim.batch.candidates_scanned");
    static const obs::Counter boundary =
        obs::Registry::global().counter("sim.batch.topk_boundary_scans");
    static const obs::Counter reuse =
        obs::Registry::global().counter("sim.batch.workspace_reuse_hits");
    static const obs::Counter replaced =
        obs::Registry::global().counter("sim.batch.peers_replaced");
    batches.increment();
    runs.add(W_);
    rounds.add(config_.rounds * W_);
    scanned.add(candidates_scanned_);
    boundary.add(topk_boundary_scans_);
    if (ws_.last_prepare_reused) reuse.increment();
    std::size_t total_replaced = 0;
    for (const std::size_t r : peers_replaced_) total_replaced += r;
    replaced.add(total_replaced);
  }
};

}  // namespace

std::vector<SimulationOutcome> simulate_rounds_batch(
    std::span<const BatchLane> lanes, const SimulationConfig& config,
    const BandwidthDistribution* churn_source, BatchWorkspace* workspace) {
  if (lanes.empty()) {
    throw std::invalid_argument("simulate_rounds_batch: empty batch");
  }
  const std::size_t n = lanes.front().protocols == nullptr
                            ? 0
                            : lanes.front().protocols->size();
  for (const BatchLane& lane : lanes) {
    if (lane.protocols == nullptr || lane.capacities == nullptr ||
        lane.protocols->empty() || lane.protocols->size() != n ||
        lane.capacities->size() != n) {
      throw std::invalid_argument(
          "simulate_rounds_batch: every lane needs equal-length, non-empty "
          "protocols/capacities of one shared population size");
    }
  }
  config.validate();
  if (config.needs_churn_source() && churn_source == nullptr) {
    throw std::invalid_argument(
        "simulate_rounds_batch: replacing peers (churn_rate or a fault "
        "process) requires a bandwidth distribution");
  }
  if (workspace == nullptr) {
    // One reusable workspace per thread, as with the sparse engine.
    static thread_local BatchWorkspace shared;
    workspace = &shared;
  }
  BatchEngine engine(lanes, config, churn_source, workspace->impl());
  return engine.run();
}

void run_homogeneous_throughput_batch(const ProtocolSpec& spec,
                                      std::size_t count,
                                      const SimulationConfig& config,
                                      const BandwidthDistribution& bandwidths,
                                      std::span<const std::uint64_t> seeds,
                                      std::span<double> out) {
  if (count == 0) {
    throw std::invalid_argument("run_homogeneous_throughput_batch: empty swarm");
  }
  if (seeds.size() != out.size()) {
    throw std::invalid_argument(
        "run_homogeneous_throughput_batch: seeds/out size mismatch");
  }
  if (seeds.empty()) return;
  const std::vector<ProtocolSpec> protocols(count, spec);
  std::vector<std::vector<double>> capacities(seeds.size());
  std::vector<BatchLane> lanes(seeds.size());
  for (std::size_t w = 0; w < seeds.size(); ++w) {
    capacities[w] = shuffled_capacities(count, bandwidths, seeds[w]);
    lanes[w] = {&protocols, &capacities[w], seeds[w]};
  }
  const std::vector<SimulationOutcome> outcomes =
      simulate_rounds_batch(lanes, config, &bandwidths);
  for (std::size_t w = 0; w < seeds.size(); ++w) {
    out[w] = outcomes[w].population_mean();
  }
}

void run_encounter_batch(const ProtocolSpec& a, std::size_t count_a,
                         std::size_t count_b, const SimulationConfig& config,
                         const BandwidthDistribution& bandwidths,
                         std::span<const BatchEncounter> encounters,
                         std::span<EncounterOutcome> out) {
  if (count_a == 0 || count_b == 0) {
    throw std::invalid_argument(
        "run_encounter_batch: both groups must be non-empty");
  }
  if (encounters.size() != out.size()) {
    throw std::invalid_argument(
        "run_encounter_batch: encounters/out size mismatch");
  }
  if (encounters.empty()) return;
  const std::size_t n = count_a + count_b;
  std::vector<std::vector<ProtocolSpec>> protocols(encounters.size());
  std::vector<std::vector<double>> capacities(encounters.size());
  std::vector<BatchLane> lanes(encounters.size());
  for (std::size_t w = 0; w < encounters.size(); ++w) {
    protocols[w].reserve(n);
    protocols[w].insert(protocols[w].end(), count_a, a);
    protocols[w].insert(protocols[w].end(), count_b, encounters[w].opponent);
    capacities[w] = shuffled_capacities(n, bandwidths, encounters[w].seed);
    lanes[w] = {&protocols[w], &capacities[w], encounters[w].seed};
  }
  const std::vector<SimulationOutcome> outcomes =
      simulate_rounds_batch(lanes, config, &bandwidths);
  for (std::size_t w = 0; w < encounters.size(); ++w) {
    out[w].group_a_mean = outcomes[w].group_mean(0, count_a);
    out[w].group_b_mean = outcomes[w].group_mean(count_a, n);
  }
}

}  // namespace dsa::swarming
