// Adapter exposing the Sec. 4.2 file-swarming design space to the generic
// PRA engine (core/pra.hpp): protocol ids map through protocol.hpp's dense
// encoding and utilities come from the round-based simulator.
#pragma once

#include "core/evolution.hpp"
#include "core/model.hpp"
#include "swarming/bandwidth.hpp"
#include "swarming/protocol.hpp"
#include "swarming/simulator.hpp"

namespace dsa::swarming {

/// EncounterModel (2-group tournaments) and PopulationModel (N-group
/// evolutionary dynamics) over the 3270-protocol file-swarming space.
class SwarmingModel final : public core::EncounterModel,
                            public core::PopulationModel {
 public:
  /// `base` provides rounds / churn / aspiration smoothing; its seed field
  /// is ignored (the PRA engine supplies per-run seeds).
  SwarmingModel(SimulationConfig base, BandwidthDistribution bandwidths)
      : base_(base), bandwidths_(std::move(bandwidths)) {}

  [[nodiscard]] std::uint32_t protocol_count() const override {
    return kProtocolCount;
  }

  [[nodiscard]] std::string protocol_name(std::uint32_t id) const override {
    return decode_protocol(id).describe();
  }

  [[nodiscard]] double homogeneous_utility(std::uint32_t protocol,
                                           std::size_t population,
                                           std::uint64_t seed) const override;

  [[nodiscard]] std::pair<double, double> mixed_utilities(
      std::uint32_t a, std::uint32_t b, std::size_t count_a,
      std::size_t count_b, std::uint64_t seed) const override;

  /// Batched overrides: when the base config selects SimEngine::kBatch the
  /// lanes run through the lockstep engine (batch_engine.hpp); on any other
  /// engine they fall back to the scalar virtuals lane-by-lane. Results are
  /// bitwise-identical either way.
  void homogeneous_utility_batch(std::uint32_t protocol,
                                 std::size_t population,
                                 std::span<const std::uint64_t> seeds,
                                 std::span<double> out) const override;

  void mixed_utilities_batch(
      std::uint32_t a, std::size_t count_a, std::size_t count_b,
      std::span<const core::MixedJob> jobs,
      std::span<std::pair<double, double>> out) const override;

  /// N-group mixed population (PopulationModel): groups occupy consecutive
  /// index ranges; capacities are a stratified draw shuffled by the seed.
  [[nodiscard]] std::vector<double> group_utilities(
      std::span<const core::GroupShare> groups,
      std::uint64_t seed) const override;

  [[nodiscard]] const BandwidthDistribution& bandwidths() const noexcept {
    return bandwidths_;
  }
  [[nodiscard]] const SimulationConfig& base_config() const noexcept {
    return base_;
  }

 private:
  SimulationConfig base_;
  BandwidthDistribution bandwidths_;
};

}  // namespace dsa::swarming
