// Upload-capacity distribution used to initialize peers "in order to lend
// realism" (Sec. 4.3.1), standing in for the measured distribution of
// Piatek et al., "Do incentives build robustness in BitTorrent?" (NSDI'07).
//
// We encode a piecewise-linear inverse CDF with the published shape: a median
// around 56 KBps, most peers below ~300 KBps, and a thin but heavy tail of
// high-capacity peers up to 5 MBps. Absolute numbers matter less than the
// heterogeneity (many slow classes, few fast ones), which drives every
// class-based result in the paper.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace dsa::swarming {

/// Piecewise-linear inverse CDF of peer upload capacity in KBps.
class BandwidthDistribution {
 public:
  /// One knot: `quantile` in [0, 1] maps to `capacity_kbps`.
  struct Knot {
    double quantile;
    double capacity_kbps;
  };

  /// Builds from knots sorted by quantile, starting at quantile 0 and ending
  /// at quantile 1, with non-decreasing capacities. Throws
  /// std::invalid_argument otherwise.
  explicit BandwidthDistribution(std::vector<Knot> knots);

  /// The Piatek et al. NSDI'07 approximation described above.
  static BandwidthDistribution piatek();

  /// Inverse CDF: capacity at `quantile` in [0, 1]; clamps outside values.
  [[nodiscard]] double capacity_at(double quantile) const;

  /// Draws one capacity.
  [[nodiscard]] double sample(util::Rng& rng) const;

  /// Deterministic population of `count` capacities at evenly spaced
  /// quantiles (stratified; midpoint rule). Shuffled by the caller if order
  /// matters. Stratification keeps 50-peer populations faithful to the
  /// distribution instead of re-rolling heavy tails.
  [[nodiscard]] std::vector<double> stratified_sample(std::size_t count) const;

 private:
  std::vector<Knot> knots_;
};

}  // namespace dsa::swarming
