// Definition of SimWorkspace::Impl — the epoch-stamped round-state layout
// shared by the sparse engine (simulator.cpp) and the batch-lockstep engine
// (batch_engine.cpp). Lives in its own header so both translation units see
// one Cell/Streak/Generation definition; everything here is an internal
// detail of the swarming library, not part of its public interface.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "obs/obs.hpp"
#include "obs/sketch/sketch.hpp"
#include "swarming/simulator.hpp"

namespace dsa::swarming {

struct SimWorkspace::Impl {
  /// One generation of the interaction history. The now/prev/next roles
  /// rotate between rounds instead of copying. value[receiver * n + giver]
  /// carries a slot's bandwidth; the slot exists only while stamp matches
  /// the generation's epoch, so recycling a generation is an epoch bump
  /// plus list clears instead of an O(n^2) fill, and invalidating a churned
  /// peer's history is an O(n) stamp walk.
  /// A slot's bandwidth and the epoch stamp that says whether it is live.
  /// Packed together so a give or a stamped read touches one cache line.
  struct Cell {
    double value;
    std::uint64_t stamp;
  };
  struct Streak {
    std::uint64_t stamp;
    std::uint16_t value;
  };

  struct Generation {
    std::vector<Cell> cell;
    std::uint64_t epoch = 0;
    /// Per receiver: the givers that opened a slot to it this round, in
    /// ascending order (peers act in index order). Doubles as the round's
    /// touched-cell list — each ordered (giver, receiver) pair opens at
    /// most one slot per round.
    std::vector<std::vector<std::uint32_t>> in;
  };

  std::array<Generation, 3> gen;
  std::vector<Streak> streak;
  std::uint64_t streak_epoch = 0;
  /// Monotone epoch source, never reset: stamps written in earlier rounds
  /// or earlier runs can never collide with a live epoch, which is what
  /// makes cross-run reuse safe without clearing the O(n^2) arrays.
  std::uint64_t epoch_counter = 0;

  std::vector<double> capacities;
  std::vector<double> aspiration;
  std::vector<double> round_received;
  std::vector<double> total_received;

  // Per-peer scratch reused across rounds.
  std::vector<std::uint32_t> candidates;
  std::vector<std::uint32_t> eligible_strangers;
  std::vector<std::uint8_t> is_candidate;
  std::vector<std::uint32_t> tie_priority;
  std::vector<std::uint32_t> victim_scratch;
  std::vector<double> intake_scale;

  /// One ranked candidate with its ordering key hoisted out, so the
  /// partial sort compares scalars instead of re-reading the stamped
  /// history matrices on every comparison.
  struct RankEntry {
    double key;
    std::uint32_t tie;
    std::uint32_t id;
  };
  std::vector<RankEntry> rank_entries;
  std::vector<std::uint32_t> excluded_scratch;
  /// Window bandwidth per candidate, aligned with `candidates` at build
  /// time — the Fastest/Slowest ranking key without re-reading the
  /// history matrices.
  std::vector<double> candidate_window;

  std::uint64_t next_epoch() noexcept { return ++epoch_counter; }

  /// True when the last prepare() found the O(n^2) arrays already sized.
  bool last_prepare_reused = false;

  /// Readies the workspace for a fresh n-peer run. O(n) work and, once the
  /// buffers have grown to this n, zero allocations.
  void prepare(std::size_t n, const std::vector<double>& caps) {
    const std::size_t cells = n * n;
    // A reuse hit means the epoch-stamped arrays were already big enough —
    // the whole run proceeds allocation-free (reported as the
    // sim.sparse.workspace_reuse_hits metric).
    last_prepare_reused =
        gen[0].cell.size() >= cells && streak.size() >= cells;
    for (Generation& g : gen) {
      g.cell.resize(cells);
      g.epoch = next_epoch();
      // Clear every receiver list, including ones beyond this run's n left
      // over from an earlier, larger run.
      for (auto& list : g.in) list.clear();
      g.in.resize(n);
    }
    streak.resize(cells);
    streak_epoch = next_epoch();

    capacities = caps;
    aspiration = caps;
    round_received.assign(n, 0.0);
    total_received.assign(n, 0.0);
    candidates.clear();
    candidates.reserve(n);
    eligible_strangers.clear();
    eligible_strangers.reserve(n);
    is_candidate.assign(n, 0);
    tie_priority.assign(n, 0);
    victim_scratch.clear();
    intake_scale.assign(n, 0.0);
    rank_entries.clear();
    rank_entries.reserve(n);
    excluded_scratch.clear();
    excluded_scratch.reserve(n);
    candidate_window.clear();
    candidate_window.reserve(n);
  }
};

/// Streams one finished run's per-peer score spread into the swarm-health
/// sketches ("sim.score" quantiles + moments). Shared by all three engines
/// so the telemetry timeline reads the same regardless of engine choice;
/// pure observer — never touches RNG or outcome values.
inline void observe_score_spread(const std::vector<double>& peer_throughput) {
  if (!obs::enabled()) return;
  static const obs::QuantileSketch score =
      obs::SketchRegistry::global().sketch("sim.score");
  static const obs::MomentsAccumulator spread =
      obs::SketchRegistry::global().moments("sim.score");
  for (double value : peer_throughput) {
    score.insert(value);
    spread.insert(value);
  }
}

}  // namespace dsa::swarming
