#include "core/design_space.hpp"

#include <stdexcept>

namespace dsa::core {

void DesignSpace::add_dimension(std::string name,
                                std::vector<std::string> levels) {
  if (levels.empty()) {
    throw std::invalid_argument("DesignSpace: dimension '" + name +
                                "' has no levels");
  }
  dimensions_.push_back(Dimension{std::move(name), std::move(levels)});
}

std::uint64_t DesignSpace::size() const noexcept {
  std::uint64_t product = 1;
  for (const auto& dim : dimensions_) product *= dim.levels.size();
  return product;
}

std::vector<std::size_t> DesignSpace::decode(std::uint64_t id) const {
  if (id >= size()) {
    throw std::out_of_range("DesignSpace::decode: id outside the space");
  }
  std::vector<std::size_t> levels(dimensions_.size());
  // Last dimension varies fastest, matching row-major enumeration.
  for (std::size_t i = dimensions_.size(); i-- > 0;) {
    const std::uint64_t radix = dimensions_[i].levels.size();
    levels[i] = static_cast<std::size_t>(id % radix);
    id /= radix;
  }
  return levels;
}

std::uint64_t DesignSpace::encode(std::span<const std::size_t> levels) const {
  if (levels.size() != dimensions_.size()) {
    throw std::invalid_argument("DesignSpace::encode: wrong level count");
  }
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    const std::size_t radix = dimensions_[i].levels.size();
    if (levels[i] >= radix) {
      throw std::invalid_argument("DesignSpace::encode: level out of range");
    }
    id = id * radix + levels[i];
  }
  return id;
}

std::string DesignSpace::describe(std::uint64_t id) const {
  const std::vector<std::size_t> levels = decode(id);
  std::string text;
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    if (i) text += ", ";
    text += dimensions_[i].name + "=" + dimensions_[i].levels[levels[i]];
  }
  return text;
}

}  // namespace dsa::core
