// A view of an EncounterModel restricted to a subset of protocol ids.
// Useful for focused tournaments (e.g. the paper's Sec. 5 head-to-heads),
// fast integration tests, and quickstart-scale demos: the PRA engine sees a
// dense [0, subset_size) space while simulations run the underlying
// protocols.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/model.hpp"

namespace dsa::core {

/// Adapter restricting `base` to `members` (base-protocol ids).
class SubspaceModel final : public EncounterModel {
 public:
  /// `base` must outlive the subspace. Throws std::invalid_argument when
  /// members has fewer than 2 entries, duplicates, or out-of-range ids.
  SubspaceModel(const EncounterModel& base,
                std::vector<std::uint32_t> members);

  [[nodiscard]] std::uint32_t protocol_count() const override {
    return static_cast<std::uint32_t>(members_.size());
  }

  [[nodiscard]] std::string protocol_name(std::uint32_t id) const override {
    return base_.protocol_name(member(id));
  }

  [[nodiscard]] double homogeneous_utility(std::uint32_t protocol,
                                           std::size_t population,
                                           std::uint64_t seed) const override {
    return base_.homogeneous_utility(member(protocol), population, seed);
  }

  [[nodiscard]] std::pair<double, double> mixed_utilities(
      std::uint32_t a, std::uint32_t b, std::size_t count_a,
      std::size_t count_b, std::uint64_t seed) const override {
    return base_.mixed_utilities(member(a), member(b), count_a, count_b,
                                 seed);
  }

  // Forward the batched entry points with ids remapped, so a lockstep base
  // model keeps its W-wide execution through a subspace view.
  void homogeneous_utility_batch(std::uint32_t protocol,
                                 std::size_t population,
                                 std::span<const std::uint64_t> seeds,
                                 std::span<double> out) const override {
    base_.homogeneous_utility_batch(member(protocol), population, seeds, out);
  }

  void mixed_utilities_batch(
      std::uint32_t a, std::size_t count_a, std::size_t count_b,
      std::span<const MixedJob> jobs,
      std::span<std::pair<double, double>> out) const override {
    std::vector<MixedJob> mapped(jobs.begin(), jobs.end());
    for (MixedJob& job : mapped) job.opponent = member(job.opponent);
    base_.mixed_utilities_batch(member(a), count_a, count_b, mapped, out);
  }

  /// Base-space id of subset protocol `id`; throws std::out_of_range.
  [[nodiscard]] std::uint32_t member(std::uint32_t id) const {
    if (id >= members_.size()) {
      throw std::out_of_range("SubspaceModel: protocol id outside subset");
    }
    return members_[id];
  }

 private:
  const EncounterModel& base_;
  std::vector<std::uint32_t> members_;
};

}  // namespace dsa::core
