#include "core/evolution.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "core/pra.hpp"
#include "util/rng.hpp"

namespace dsa::core {

ReplicatorDynamics::ReplicatorDynamics(const PopulationModel& model,
                                       std::vector<std::uint32_t> menu,
                                       EvolutionConfig config)
    : model_(model), menu_(std::move(menu)), config_(config) {
  if (menu_.size() < 2) {
    throw std::invalid_argument("ReplicatorDynamics: menu needs >= 2 entries");
  }
  std::unordered_set<std::uint32_t> seen;
  for (std::uint32_t protocol : menu_) {
    if (!seen.insert(protocol).second) {
      throw std::invalid_argument("ReplicatorDynamics: duplicate menu entry");
    }
  }
  if (config_.population < menu_.size() || config_.generations == 0 ||
      config_.runs_per_generation == 0) {
    throw std::invalid_argument("ReplicatorDynamics: degenerate config");
  }
  if (config_.mutation_rate < 0.0 || config_.mutation_rate >= 1.0) {
    throw std::invalid_argument(
        "ReplicatorDynamics: mutation_rate outside [0, 1)");
  }
}

EvolutionResult ReplicatorDynamics::run(
    std::vector<std::size_t> counts) const {
  if (counts.size() != menu_.size()) {
    throw std::invalid_argument("ReplicatorDynamics::run: count width");
  }
  if (std::accumulate(counts.begin(), counts.end(), std::size_t{0}) !=
      config_.population) {
    throw std::invalid_argument(
        "ReplicatorDynamics::run: counts must sum to the population size");
  }

  const std::size_t n = menu_.size();
  util::Rng rng(derive_seed(config_.seed, 0xEE0, 0, 0));

  EvolutionResult result;
  auto record = [&]() {
    std::vector<double> shares(n);
    for (std::size_t i = 0; i < n; ++i) {
      shares[i] = static_cast<double>(counts[i]) /
                  static_cast<double>(config_.population);
    }
    result.share_history.push_back(std::move(shares));
  };
  record();

  for (std::size_t generation = 0; generation < config_.generations;
       ++generation) {
    // Assemble the group view (zero-count groups included to keep menu
    // alignment).
    std::vector<GroupShare> groups(n);
    for (std::size_t i = 0; i < n; ++i) {
      groups[i] = GroupShare{menu_[i], counts[i]};
    }

    // Average fitness over repeated simulations.
    std::vector<double> fitness(n, 0.0);
    for (std::size_t run = 0; run < config_.runs_per_generation; ++run) {
      const std::vector<double> utilities = model_.group_utilities(
          groups, derive_seed(config_.seed, 0xEE1, generation, run));
      if (utilities.size() != n) {
        throw std::runtime_error(
            "ReplicatorDynamics: model returned wrong group count");
      }
      for (std::size_t i = 0; i < n; ++i) fitness[i] += utilities[i];
    }

    // Replicator step: next share_i proportional to count_i * fitness_i.
    // When total weight vanishes (nobody earns anything) shares persist.
    std::vector<double> weight(n, 0.0);
    double total_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      weight[i] = static_cast<double>(counts[i]) * fitness[i];
      total_weight += weight[i];
    }
    if (total_weight > 0.0) {
      // Wright-Fisher resampling: each of the N next-generation seats is
      // drawn independently with probability proportional to the group's
      // (count * fitness) weight. Deterministic rounding schemes plateau
      // one seat short of fixation; sampling lets selection finish the job
      // (and models drift in small populations).
      std::vector<std::size_t> next(n, 0);
      for (std::size_t seat = 0; seat < config_.population; ++seat) {
        double pick = rng.uniform() * total_weight;
        std::size_t chosen = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
          pick -= weight[i];
          if (pick < 0.0) {
            chosen = i;
            break;
          }
        }
        ++next[chosen];
      }
      counts = std::move(next);
    }

    // Mutation: each peer flips to a uniformly random menu protocol.
    if (config_.mutation_rate > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        std::size_t leaving = 0;
        for (std::size_t peer = 0; peer < counts[i]; ++peer) {
          if (rng.chance(config_.mutation_rate)) ++leaving;
        }
        counts[i] -= leaving;
        for (std::size_t peer = 0; peer < leaving; ++peer) {
          ++counts[rng.below(n)];
        }
      }
    }

    record();
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (counts[i] == config_.population) {
      result.fixated_menu_index = static_cast<int>(i);
    }
  }
  return result;
}

EvolutionResult ReplicatorDynamics::run_from_even_split() const {
  const std::size_t n = menu_.size();
  std::vector<std::size_t> counts(n, config_.population / n);
  std::size_t assigned = (config_.population / n) * n;
  for (std::size_t i = 0; assigned < config_.population; ++i, ++assigned) {
    ++counts[i];
  }
  return run(std::move(counts));
}

}  // namespace dsa::core
