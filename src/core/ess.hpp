// A second solution concept within DSA (the paper notes "other solution
// concepts within DSA could also be devised", Sec. 3.2): the Evolutionary
// Stability quantification. Where PRA's Robustness asks "does a 50% invasion
// outperform me?", ESS asks the game-theoretic stability question — can a
// SMALL mutant group strictly gain by deviating into my population? The
// score is the fraction of sampled mutants that cannot.
//
// stability(Pi) = |{ m : u_mutant(m, Pi) <= u_resident(m, Pi) }| / |mutants|
//
// where u_* come from a mixed population with `mutant_fraction` of the peers
// running m. A protocol with stability 1 is empirically un-invadable at that
// granularity — the simulation analogue of the Appendix's Nash arguments.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model.hpp"

namespace dsa::core {

/// Controls for the stability quantification.
struct EssConfig {
  std::size_t population = 50;
  double mutant_fraction = 0.1;   // size of the deviating group
  std::size_t runs = 1;           // repetitions per mutant
  /// Mutants sampled per protocol; 0 = every other protocol.
  std::size_t mutant_sample = 24;
  std::uint64_t seed = 2011;
};

/// Per-protocol stability outcome.
struct EssResult {
  double stability = 0.0;  // fraction of mutants that do not gain
  /// Mutants that strictly gained (successful invaders), most recent run's
  /// utilities attached.
  struct Invader {
    std::uint32_t mutant = 0;
    double mutant_utility = 0.0;
    double resident_utility = 0.0;
  };
  std::vector<Invader> invaders;
};

/// Evaluates evolutionary stability over an EncounterModel.
class EssQuantifier {
 public:
  /// The model must outlive the quantifier. Throws std::invalid_argument on
  /// degenerate configs.
  EssQuantifier(const EncounterModel& model, EssConfig config);

  /// Stability of one protocol against (sampled) mutants.
  [[nodiscard]] EssResult stability_of(std::uint32_t protocol) const;

  /// Stability of every protocol in the space (parallelized by the caller
  /// if desired; this runs serially).
  [[nodiscard]] std::vector<double> stability_all() const;

 private:
  [[nodiscard]] std::vector<std::uint32_t> mutants_of(
      std::uint32_t protocol) const;

  const EncounterModel& model_;
  EssConfig config_;
};

}  // namespace dsa::core
