// The substrate interface the PRA quantification drives. A domain (P2P file
// swarming, gossip, ...) implements EncounterModel; the engine in pra.hpp
// only ever sees protocol ids, population splits, and seeds.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>

namespace dsa::core {

/// One lane of a batched mixed_utilities call: the varying coordinates of a
/// tournament game (the opponent and the run seed); protocol A and the group
/// split are shared across the batch.
struct MixedJob {
  std::uint32_t opponent = 0;
  std::uint64_t seed = 0;
};

/// A simulatable domain over a finite protocol space. Implementations must
/// be thread-safe for concurrent const calls and deterministic in `seed`.
class EncounterModel {
 public:
  virtual ~EncounterModel() = default;

  /// Number of protocols in the domain's design space.
  [[nodiscard]] virtual std::uint32_t protocol_count() const = 0;

  /// Human-readable description of a protocol id.
  [[nodiscard]] virtual std::string protocol_name(std::uint32_t id) const = 0;

  /// Mean peer utility when all `population` peers execute `protocol`.
  [[nodiscard]] virtual double homogeneous_utility(
      std::uint32_t protocol, std::size_t population,
      std::uint64_t seed) const = 0;

  /// Mean utilities (group A, group B) in a mixed population where
  /// `count_a` peers run `a` and `count_b` run `b`.
  [[nodiscard]] virtual std::pair<double, double> mixed_utilities(
      std::uint32_t a, std::uint32_t b, std::size_t count_a,
      std::size_t count_b, std::uint64_t seed) const = 0;

  // Batched variants: evaluate many runs at once so a model with a lockstep
  // execution path (SimEngine::kBatch) can amortize its round loop across
  // the batch. out[w] must equal the corresponding scalar call exactly —
  // batching is an execution strategy, never a semantic change — which the
  // defaults guarantee by delegating to the scalar virtuals one lane at a
  // time. out.size() must equal seeds.size() / jobs.size().

  /// homogeneous_utility(protocol, population, seeds[w]) for every lane.
  virtual void homogeneous_utility_batch(std::uint32_t protocol,
                                         std::size_t population,
                                         std::span<const std::uint64_t> seeds,
                                         std::span<double> out) const {
    for (std::size_t w = 0; w < seeds.size(); ++w) {
      out[w] = homogeneous_utility(protocol, population, seeds[w]);
    }
  }

  /// mixed_utilities(a, jobs[w].opponent, count_a, count_b, jobs[w].seed)
  /// for every lane.
  virtual void mixed_utilities_batch(
      std::uint32_t a, std::size_t count_a, std::size_t count_b,
      std::span<const MixedJob> jobs,
      std::span<std::pair<double, double>> out) const {
    for (std::size_t w = 0; w < jobs.size(); ++w) {
      out[w] = mixed_utilities(a, jobs[w].opponent, count_a, count_b,
                               jobs[w].seed);
    }
  }
};

}  // namespace dsa::core
