// The substrate interface the PRA quantification drives. A domain (P2P file
// swarming, gossip, ...) implements EncounterModel; the engine in pra.hpp
// only ever sees protocol ids, population splits, and seeds.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace dsa::core {

/// A simulatable domain over a finite protocol space. Implementations must
/// be thread-safe for concurrent const calls and deterministic in `seed`.
class EncounterModel {
 public:
  virtual ~EncounterModel() = default;

  /// Number of protocols in the domain's design space.
  [[nodiscard]] virtual std::uint32_t protocol_count() const = 0;

  /// Human-readable description of a protocol id.
  [[nodiscard]] virtual std::string protocol_name(std::uint32_t id) const = 0;

  /// Mean peer utility when all `population` peers execute `protocol`.
  [[nodiscard]] virtual double homogeneous_utility(
      std::uint32_t protocol, std::size_t population,
      std::uint64_t seed) const = 0;

  /// Mean utilities (group A, group B) in a mixed population where
  /// `count_a` peers run `a` and `count_b` run `b`.
  [[nodiscard]] virtual std::pair<double, double> mixed_utilities(
      std::uint32_t a, std::uint32_t b, std::size_t count_a,
      std::size_t count_b, std::uint64_t seed) const = 0;
};

}  // namespace dsa::core
