#include "core/search.hpp"

#include <stdexcept>

#include "core/pra.hpp"
#include "stats/descriptive.hpp"

namespace dsa::core {

HeuristicSearch::HeuristicSearch(const EncounterModel& model,
                                 NeighborFn neighbor, SearchConfig config)
    : model_(model), neighbor_(std::move(neighbor)), config_(config) {
  if (!neighbor_) {
    throw std::invalid_argument("HeuristicSearch: neighbor fn required");
  }
  if (config_.restarts == 0 || config_.steps_per_restart == 0 ||
      config_.eval_runs == 0 || config_.opponent_probes == 0) {
    throw std::invalid_argument("HeuristicSearch: counts must be positive");
  }
  if (config_.performance_weight < 0.0 || config_.performance_weight > 1.0) {
    throw std::invalid_argument(
        "HeuristicSearch: performance_weight outside [0, 1]");
  }
  if (config_.reference_protocol >= model_.protocol_count()) {
    throw std::invalid_argument(
        "HeuristicSearch: reference protocol outside the space");
  }
  memo_.assign(model_.protocol_count(), -1.0);
}

double HeuristicSearch::objective(std::uint32_t protocol) {
  if (protocol >= model_.protocol_count()) {
    throw std::out_of_range("HeuristicSearch::objective: bad protocol id");
  }
  if (memo_[protocol] >= 0.0) return memo_[protocol];

  auto homogeneous = [&](std::uint32_t p) {
    std::vector<double> runs(config_.eval_runs);
    for (std::size_t r = 0; r < config_.eval_runs; ++r) {
      runs[r] = model_.homogeneous_utility(
          p, config_.population, derive_seed(config_.seed, 0x5EA, p, r));
    }
    return stats::mean(runs);
  };
  if (reference_performance_ < 0.0) {
    reference_performance_ = homogeneous(config_.reference_protocol);
  }

  const double raw = homogeneous(protocol);
  const double denom = raw + reference_performance_;
  const double perf_score = denom > 0.0 ? raw / denom : 0.0;

  // Robustness probe: 50/50 encounters against random opponents.
  util::Rng rng(derive_seed(config_.seed, 0x0B, protocol, 1));
  std::size_t wins = 0;
  const std::size_t half = config_.population / 2;
  for (std::size_t probe = 0; probe < config_.opponent_probes; ++probe) {
    std::uint32_t opponent;
    do {
      opponent = static_cast<std::uint32_t>(rng.below(model_.protocol_count()));
    } while (opponent == protocol);
    const auto [mine, theirs] = model_.mixed_utilities(
        protocol, opponent, half, config_.population - half,
        derive_seed(config_.seed, 0x0C, protocol, probe));
    if (mine > theirs) ++wins;
  }
  const double win_rate = static_cast<double>(wins) /
                          static_cast<double>(config_.opponent_probes);

  const double value = config_.performance_weight * perf_score +
                       (1.0 - config_.performance_weight) * win_rate;
  memo_[protocol] = value;
  return value;
}

SearchResult HeuristicSearch::run() {
  SearchResult result;
  util::Rng rng(derive_seed(config_.seed, 0x5EEC, 0, 0));

  for (std::size_t restart = 0; restart < config_.restarts; ++restart) {
    std::uint32_t current =
        static_cast<std::uint32_t>(rng.below(model_.protocol_count()));
    double current_value = objective(current);
    result.trajectory.emplace_back(current, current_value);

    for (std::size_t step = 0; step < config_.steps_per_restart; ++step) {
      const std::uint32_t candidate = neighbor_(current, rng);
      if (candidate >= model_.protocol_count()) {
        throw std::out_of_range(
            "HeuristicSearch: neighbor returned an invalid protocol");
      }
      const double candidate_value = objective(candidate);
      if (candidate_value > current_value) {
        current = candidate;
        current_value = candidate_value;
        result.trajectory.emplace_back(current, current_value);
      }
    }
    if (current_value > result.best_objective ||
        result.evaluations == 0) {
      result.best_objective = current_value;
      result.best_protocol = current;
    }
    // Count evaluations so far (memoized entries).
    result.evaluations = 0;
    for (double v : memo_) {
      if (v >= 0.0) ++result.evaluations;
    }
  }
  return result;
}

}  // namespace dsa::core
