// The PRA quantification (Sec. 3.2): maps every protocol in a design space
// to a (Performance, Robustness, Aggressiveness) point in [0,1]^3.
//
//  * Performance — population utility when everyone runs the protocol,
//    averaged over repetitions and normalized so the best protocol scores 1.
//  * Robustness — fraction of encounters won against (all | a sample of)
//    other protocols when the protocol holds 50% of the population; a win is
//    a strictly higher group-average utility (Sec. 4.3.2).
//  * Aggressiveness — the same with the protocol holding 10%.
//
// The engine also exposes tournaments at arbitrary splits, which the paper
// uses for its 90-10 robustness validation (Pearson rho ~= 0.97 vs 50-50).
//
// The paper ran this as ~107 million simulations on a 50-node cluster; the
// engine reproduces the statistic with a thread pool plus optional opponent
// sampling (opponent_sample > 0), trading precision of the win-rate estimate
// for tractable wall-clock time. Every simulation derives its own seed from
// (master seed, experiment tag, protocol, opponent, run), so results are
// independent of thread scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/model.hpp"

namespace dsa::util {
class ThreadPool;
}  // namespace dsa::util

namespace dsa::core {

/// Tournament and performance-experiment controls.
struct PraConfig {
  std::size_t population = 50;       // swarm size (Sec. 4.3.1)
  std::size_t performance_runs = 100;  // homogeneous repetitions per protocol
  std::size_t encounter_runs = 10;   // repetitions per protocol pair
  /// Opponents per protocol in tournaments: 0 = every other protocol
  /// (the paper's exhaustive setting), else a per-protocol random sample.
  std::size_t opponent_sample = 0;
  double minority_fraction = 0.1;    // Aggressiveness split for protocol Pi
  std::uint64_t seed = 2011;
  std::size_t threads = 0;           // 0 = hardware concurrency
  /// Simulations per batched model call in quantify: each parallel task
  /// evaluates up to batch_width runs through the model's batched entry
  /// points (EncounterModel::homogeneous_utility_batch /
  /// mixed_utilities_batch), which a lockstep engine turns into one W-wide
  /// sweep. 1 = the scalar task grid. Results are identical at every width
  /// (the batcher only regroups the flattened grid; seeds and reduction
  /// order are unchanged). Must be in [1, 64].
  std::size_t batch_width = 1;
  /// Optional progress observer: (protocols finished, protocols total).
  /// May be invoked concurrently from worker threads.
  std::function<void(std::size_t, std::size_t)> progress;
};

/// The full PRA characterization of a design space.
struct PraScores {
  std::vector<double> raw_performance;  // domain units (e.g. KBps)
  std::vector<double> performance;      // normalized to [0, 1]
  std::vector<double> robustness;       // win rate at the 50/50 split
  std::vector<double> aggressiveness;   // win rate at the 10/90 split
};

/// All three metrics of one protocol, as computed by PraEngine::quantify.
struct ProtocolMetrics {
  double raw_performance = 0.0;  // domain units (not normalized)
  double robustness = 0.0;       // win rate at the 50/50 split
  double aggressiveness = 0.0;   // win rate at the minority split
};

/// Runs PRA over a model's whole protocol space.
///
/// All scheduling goes through one ThreadPool — caller-provided or lazily
/// owned — and every experiment is flattened into a grid of independent
/// per-simulation tasks, so one slow protocol never straggles a pass.
/// Methods parallelize internally; the engine itself must not be driven from
/// multiple threads at once. Results are independent of the pool size and
/// of task scheduling (per-item seed derivation).
class PraEngine {
 public:
  /// The model must outlive the engine. Throws std::invalid_argument on
  /// degenerate configs (population < 2, zero runs, fraction outside (0,1)).
  ///
  /// When `pool` is non-null the engine schedules every experiment on it
  /// (the pool must outlive the engine and config.threads is ignored);
  /// otherwise the engine lazily creates its own pool with config.threads
  /// workers (0 = hardware concurrency) on first use.
  PraEngine(const EncounterModel& model, PraConfig config,
            util::ThreadPool* pool = nullptr);
  ~PraEngine();
  PraEngine(const PraEngine&) = delete;
  PraEngine& operator=(const PraEngine&) = delete;

  /// Homogeneous-population performance, averaged over performance_runs,
  /// in raw domain units (one entry per protocol).
  [[nodiscard]] std::vector<double> raw_performance() const;

  /// Raw performance of a single protocol. Seeds derive from (seed, p, run)
  /// only, so raw_performance()[p] == raw_performance_of(p) exactly — the
  /// property the checkpoint/resume path of the PRA sweep relies on.
  [[nodiscard]] double raw_performance_of(std::uint32_t p) const;

  /// Win rate per protocol when it holds `pi_fraction` of the population.
  /// pi_fraction = 0.5 gives Robustness, 0.1 Aggressiveness, 0.9 the 90-10
  /// validation. Throws std::invalid_argument unless 0 < pi_fraction < 1.
  [[nodiscard]] std::vector<double> tournament(double pi_fraction) const;

  /// Win rate of a single protocol at a split; tournament(f)[p] ==
  /// win_rate_of(p, f) exactly (same per-item seed derivation). Runs
  /// serially on the calling thread.
  [[nodiscard]] double win_rate_of(std::uint32_t p, double pi_fraction) const;

  /// All three metrics for protocols [begin, end), scheduled as one
  /// flattened grid of performance_runs + 2 * opponents * encounter_runs
  /// simulations per protocol — the batch primitive behind the PRA dataset
  /// sweep's checkpoint chunks. Entry i describes protocol begin + i, with
  /// values exactly equal to raw_performance_of / win_rate_of(·, 0.5) /
  /// win_rate_of(·, minority_fraction). The progress callback, if set,
  /// reports (protocols finished, protocols in batch).
  [[nodiscard]] std::vector<ProtocolMetrics> quantify(std::uint32_t begin,
                                                      std::uint32_t end) const;

  /// Performance + Robustness + Aggressiveness in one pass.
  [[nodiscard]] PraScores run() const;

  [[nodiscard]] const PraConfig& config() const noexcept { return config_; }

 private:
  /// Peers assigned to protocol Pi at a split; at least 1, at most
  /// population - 1.
  [[nodiscard]] std::size_t pi_count(double pi_fraction) const;

  /// Opponents every protocol faces per tournament: everyone else, or the
  /// configured sample size.
  [[nodiscard]] std::size_t opponent_count() const noexcept;

  /// The j-th opponent of protocol p (j < opponent_count()): arithmetic in
  /// the exhaustive case, a lookup into the precomputed per-protocol sample
  /// otherwise. Replaces the old opponents_of, which rebuilt and reshuffled
  /// the full list on every win_rate_of call.
  [[nodiscard]] std::uint32_t opponent_at(std::uint32_t p,
                                          std::size_t j) const;

  /// The shared scheduler: the caller's pool, or the lazily-built owned one.
  [[nodiscard]] util::ThreadPool& pool() const;

  /// Chunk size for parallel_for over `total` simulation tasks: large enough
  /// to amortize the shared atomic counter, small enough to keep every
  /// worker busy.
  [[nodiscard]] std::size_t grain_for(std::size_t total) const;

  const EncounterModel& model_;
  PraConfig config_;
  util::ThreadPool* pool_ = nullptr;
  mutable std::unique_ptr<util::ThreadPool> owned_pool_;
  /// Per-protocol opponent samples (empty in the exhaustive case), built
  /// once in the constructor with the same seeded partial Fisher-Yates the
  /// old per-call path used, so samples are unchanged and split-stable.
  std::vector<std::vector<std::uint32_t>> sampled_opponents_;
};

/// Mixes a master seed with an experiment tag and work-item coordinates into
/// an independent simulation seed.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t tag,
                          std::uint64_t a, std::uint64_t b);

}  // namespace dsa::core
