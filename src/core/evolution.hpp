// Evolutionary dynamics over a protocol menu — the population-level
// counterpart of the paper's Nash-equilibrium analysis (Sec. 2) and a bridge
// to the evolutionary game-theoretic treatment of Feldman et al. that the
// paper cites as related work.
//
// A discrete replicator process (Wright-Fisher sampling) runs on a finite
// population: each generation, the mixed population is simulated, every
// protocol group earns its mean utility as fitness, and each seat of the
// next generation is sampled with probability proportional to
// (share * fitness), with optional mutation (a peer switching to a random
// menu protocol). A protocol that is a Nash equilibrium of the underlying
// game should resist invasion; a dominated protocol's share should
// collapse.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/model.hpp"

namespace dsa::core {

/// One protocol group inside a mixed population.
struct GroupShare {
  std::uint32_t protocol = 0;
  std::size_t count = 0;
};

/// A domain that can simulate populations mixing ANY number of protocol
/// groups (the EncounterModel interface only mixes two). Implementations
/// must be deterministic in `seed` and thread-safe for const calls.
class PopulationModel {
 public:
  virtual ~PopulationModel() = default;

  /// Mean utility of each group (aligned with `groups`). Groups with
  /// count == 0 may receive any value (they are ignored by callers).
  [[nodiscard]] virtual std::vector<double> group_utilities(
      std::span<const GroupShare> groups, std::uint64_t seed) const = 0;
};

/// Replicator process controls.
struct EvolutionConfig {
  std::size_t population = 50;   // peers alive each generation
  std::size_t generations = 60;
  std::size_t runs_per_generation = 2;  // utility averaging
  double mutation_rate = 0.0;    // per-peer chance to switch protocol
  std::uint64_t seed = 2011;
};

/// Trajectory of one replicator run.
struct EvolutionResult {
  /// share_history[g][i] = fraction of the population running menu entry i
  /// at generation g (generation 0 = the initial population).
  std::vector<std::vector<double>> share_history;
  /// Menu index that owns the whole population at the end, or -1 if the
  /// population is still mixed.
  int fixated_menu_index = -1;

  [[nodiscard]] const std::vector<double>& final_shares() const {
    return share_history.back();
  }
};

/// Discrete replicator dynamics over `menu` protocols of a PopulationModel.
class ReplicatorDynamics {
 public:
  /// The model must outlive the dynamics. Throws std::invalid_argument for
  /// menus with < 2 entries or duplicate protocols, or degenerate configs.
  ReplicatorDynamics(const PopulationModel& model,
                     std::vector<std::uint32_t> menu, EvolutionConfig config);

  /// Runs from the given initial counts (aligned with the menu; must sum to
  /// config.population — throws otherwise).
  [[nodiscard]] EvolutionResult run(std::vector<std::size_t> initial_counts)
      const;

  /// Convenience: starts from an (almost) even split across the menu.
  [[nodiscard]] EvolutionResult run_from_even_split() const;

  [[nodiscard]] const std::vector<std::uint32_t>& menu() const noexcept {
    return menu_;
  }

 private:
  const PopulationModel& model_;
  std::vector<std::uint32_t> menu_;
  EvolutionConfig config_;
};

}  // namespace dsa::core
