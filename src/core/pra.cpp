#include "core/pra.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <span>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "stats/descriptive.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dsa::core {

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t tag,
                          std::uint64_t a, std::uint64_t b) {
  std::uint64_t mix = util::hash64(master ^ 0x2545f4914f6cdd1dULL);
  mix ^= util::hash64(tag) * 0x9e3779b97f4a7c15ULL;
  mix ^= util::hash64(a) * 0xff51afd7ed558ccdULL;
  mix ^= util::hash64(b) * 0xc4ceb9fe1a85ec53ULL;
  return util::hash64(mix);
}

PraEngine::PraEngine(const EncounterModel& model, PraConfig config,
                     util::ThreadPool* pool)
    : model_(model), config_(std::move(config)), pool_(pool) {
  if (config_.population < 2) {
    throw std::invalid_argument("PraEngine: population must be >= 2");
  }
  if (config_.performance_runs == 0 || config_.encounter_runs == 0) {
    throw std::invalid_argument("PraEngine: run counts must be positive");
  }
  if (!(config_.minority_fraction > 0.0 && config_.minority_fraction < 1.0)) {
    throw std::invalid_argument(
        "PraEngine: minority_fraction must be in (0, 1)");
  }
  if (config_.batch_width < 1 || config_.batch_width > 64) {
    throw std::invalid_argument("PraEngine: batch_width must be in [1, 64]");
  }
  if (model_.protocol_count() < 2) {
    throw std::invalid_argument("PraEngine: need at least 2 protocols");
  }

  // Precompute the per-protocol opponent samples once. The seeded partial
  // Fisher-Yates matches what the old per-call opponents_of drew, so the
  // samples are unchanged — and stable across splits, which keeps the 50-50
  // and minority tournaments comparable.
  const std::uint32_t count = model_.protocol_count();
  if (config_.opponent_sample > 0 &&
      config_.opponent_sample < static_cast<std::size_t>(count) - 1) {
    sampled_opponents_.resize(count);
    std::vector<std::uint32_t> all;
    all.reserve(count - 1);
    for (std::uint32_t p = 0; p < count; ++p) {
      all.clear();
      for (std::uint32_t o = 0; o < count; ++o) {
        if (o != p) all.push_back(o);
      }
      util::Rng rng(derive_seed(config_.seed, /*tag=*/0xA11, p, 0));
      for (std::size_t i = 0; i < config_.opponent_sample; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.below(all.size() - i));
        std::swap(all[i], all[j]);
      }
      sampled_opponents_[p].assign(all.begin(),
                                   all.begin() + static_cast<std::ptrdiff_t>(
                                                     config_.opponent_sample));
    }
  }
}

PraEngine::~PraEngine() = default;

util::ThreadPool& PraEngine::pool() const {
  if (pool_ != nullptr) return *pool_;
  if (!owned_pool_) {
    owned_pool_ = std::make_unique<util::ThreadPool>(
        config_.threads == 0 ? util::ThreadPool::default_thread_count()
                             : config_.threads);
  }
  return *owned_pool_;
}

std::size_t PraEngine::grain_for(std::size_t total) const {
  // Aim for ~32 chunks per worker so stragglers rebalance, but never let a
  // chunk shrink to the point where the shared counter is hot.
  const std::size_t threads = pool().thread_count();
  return std::clamp<std::size_t>(total / (threads * 32 + 1), 1, 64);
}

std::size_t PraEngine::pi_count(double pi_fraction) const {
  const auto count = static_cast<std::size_t>(
      std::lround(pi_fraction * static_cast<double>(config_.population)));
  return std::clamp<std::size_t>(count, 1, config_.population - 1);
}

std::size_t PraEngine::opponent_count() const noexcept {
  const auto others =
      static_cast<std::size_t>(model_.protocol_count()) - 1;
  return sampled_opponents_.empty() ? others : config_.opponent_sample;
}

std::uint32_t PraEngine::opponent_at(std::uint32_t p, std::size_t j) const {
  if (!sampled_opponents_.empty()) return sampled_opponents_[p][j];
  // Exhaustive case: ascending protocol ids with p skipped.
  const auto o = static_cast<std::uint32_t>(j);
  return o < p ? o : o + 1;
}

double PraEngine::raw_performance_of(std::uint32_t p) const {
  std::vector<double> runs(config_.performance_runs);
  for (std::size_t r = 0; r < config_.performance_runs; ++r) {
    runs[r] = model_.homogeneous_utility(
        p, config_.population, derive_seed(config_.seed, /*tag=*/0x9E4F, p, r));
  }
  return stats::mean(runs);
}

std::vector<double> PraEngine::raw_performance() const {
  DSA_OBS_PHASE("pra/performance");
  const std::uint32_t count = model_.protocol_count();
  const std::size_t runs = config_.performance_runs;
  const std::size_t total = static_cast<std::size_t>(count) * runs;

  // Flattened (protocol, run) grid: every simulation is its own task, so a
  // protocol with slow runs cannot straggle a whole lane.
  std::vector<double> slots(total, 0.0);
  std::vector<std::atomic<std::size_t>> remaining(count);
  for (auto& r : remaining) r.store(runs, std::memory_order_relaxed);
  std::atomic<std::size_t> done{0};
  pool().parallel_for(
      total,
      [&](std::size_t t) {
        const auto p = static_cast<std::uint32_t>(t / runs);
        const std::size_t r = t % runs;
        slots[t] = model_.homogeneous_utility(
            p, config_.population,
            derive_seed(config_.seed, /*tag=*/0x9E4F, p, r));
        if (remaining[p].fetch_sub(1, std::memory_order_acq_rel) == 1 &&
            config_.progress) {
          config_.progress(++done, count);
        }
      },
      grain_for(total));

  // Reduce in run order — the same summation order as raw_performance_of,
  // so the mean is bitwise-identical.
  std::vector<double> raw(count, 0.0);
  for (std::uint32_t p = 0; p < count; ++p) {
    raw[p] = stats::mean(std::span<const double>(&slots[p * runs], runs));
  }
  return raw;
}

double PraEngine::win_rate_of(std::uint32_t p, double pi_fraction) const {
  if (!(pi_fraction > 0.0 && pi_fraction < 1.0)) {
    throw std::invalid_argument("PraEngine::win_rate_of: bad split");
  }
  const std::size_t count_pi = pi_count(pi_fraction);
  const std::size_t count_other = config_.population - count_pi;
  // Distinct seeds per split so the 50-50 and 90-10 experiments are
  // independent samples, as in the paper.
  const auto split_tag =
      static_cast<std::uint64_t>(std::llround(pi_fraction * 1000.0));

  const std::size_t opponents = opponent_count();
  std::size_t wins = 0;
  std::size_t games = 0;
  for (std::size_t j = 0; j < opponents; ++j) {
    const std::uint32_t opponent = opponent_at(p, j);
    for (std::size_t run = 0; run < config_.encounter_runs; ++run) {
      const std::uint64_t seed =
          derive_seed(config_.seed, split_tag,
                      (static_cast<std::uint64_t>(p) << 32) | opponent, run);
      const auto [pi_mean, other_mean] =
          model_.mixed_utilities(p, opponent, count_pi, count_other, seed);
      // A strict win, as in Sec. 4.3.2 ("otherwise we mark it as a Loss").
      if (pi_mean > other_mean) ++wins;
      ++games;
    }
  }
  return games == 0 ? 0.0
                    : static_cast<double>(wins) / static_cast<double>(games);
}

std::vector<double> PraEngine::tournament(double pi_fraction) const {
  DSA_OBS_PHASE("pra/tournament");
  if (!(pi_fraction > 0.0 && pi_fraction < 1.0)) {
    throw std::invalid_argument("PraEngine::tournament: bad split");
  }
  const std::uint32_t count = model_.protocol_count();
  const std::size_t count_pi = pi_count(pi_fraction);
  const std::size_t count_other = config_.population - count_pi;
  const auto split_tag =
      static_cast<std::uint64_t>(std::llround(pi_fraction * 1000.0));
  const std::size_t opponents = opponent_count();
  const std::size_t runs = config_.encounter_runs;
  const std::size_t games = opponents * runs;
  const std::size_t total = static_cast<std::size_t>(count) * games;

  // Flattened (protocol, opponent, run) grid; each task records one win bit.
  std::vector<std::uint8_t> win(total, 0);
  std::vector<std::atomic<std::size_t>> remaining(count);
  for (auto& r : remaining) r.store(games, std::memory_order_relaxed);
  std::atomic<std::size_t> done{0};
  pool().parallel_for(
      total,
      [&](std::size_t t) {
        const auto p = static_cast<std::uint32_t>(t / games);
        const std::size_t rem = t % games;
        const std::uint32_t opponent = opponent_at(p, rem / runs);
        const std::size_t run = rem % runs;
        const std::uint64_t seed =
            derive_seed(config_.seed, split_tag,
                        (static_cast<std::uint64_t>(p) << 32) | opponent, run);
        const auto [pi_mean, other_mean] =
            model_.mixed_utilities(p, opponent, count_pi, count_other, seed);
        win[t] = pi_mean > other_mean ? 1 : 0;
        if (remaining[p].fetch_sub(1, std::memory_order_acq_rel) == 1 &&
            config_.progress) {
          config_.progress(++done, count);
        }
      },
      grain_for(total));

  // Integer win counts are order-free, so this matches win_rate_of exactly.
  std::vector<double> win_rate(count, 0.0);
  for (std::uint32_t p = 0; p < count; ++p) {
    std::size_t wins = 0;
    for (std::size_t g = 0; g < games; ++g) {
      wins += win[static_cast<std::size_t>(p) * games + g];
    }
    win_rate[p] = games == 0 ? 0.0
                             : static_cast<double>(wins) /
                                   static_cast<double>(games);
  }
  return win_rate;
}

std::vector<ProtocolMetrics> PraEngine::quantify(std::uint32_t begin,
                                                 std::uint32_t end) const {
  if (begin > end || end > model_.protocol_count()) {
    throw std::invalid_argument("PraEngine::quantify: bad protocol range");
  }
  const std::size_t batch = end - begin;
  if (batch == 0) return {};

  const std::size_t perf_runs = config_.performance_runs;
  const std::size_t runs = config_.encounter_runs;
  const std::size_t opponents = opponent_count();
  const std::size_t games = opponents * runs;  // per split

  const std::size_t count_rob = pi_count(0.5);
  const std::size_t count_agg = pi_count(config_.minority_fraction);
  const auto rob_tag = static_cast<std::uint64_t>(std::llround(0.5 * 1000.0));
  const auto agg_tag = static_cast<std::uint64_t>(
      std::llround(config_.minority_fraction * 1000.0));

  // Every simulation of the batch — performance runs and both tournaments'
  // games, across all protocols — is one task in a single flattened grid,
  // so the chunk finishes when the last simulation does, not when the last
  // protocol's serial loop does.
  //
  // With batch_width > 1 the grid is regrouped into jobs of up to
  // batch_width consecutive slots, evaluated through the model's batched
  // entry points in one call (a lockstep engine turns that into a W-wide
  // sweep). The regrouping never crosses a (protocol, split) boundary and
  // leaves the per-simulation seeds and the reduction arrays untouched, so
  // results are identical at every width.
  const std::size_t per_protocol = perf_runs + 2 * games;
  const std::size_t total = batch * per_protocol;
  const std::size_t width = config_.batch_width;
  const bool batched = width > 1;
  const std::size_t perf_jobs = (perf_runs + width - 1) / width;
  const std::size_t split_jobs = (games + width - 1) / width;
  const std::size_t per_protocol_tasks =
      batched ? perf_jobs + 2 * split_jobs : per_protocol;
  const std::size_t task_count = batch * per_protocol_tasks;

  std::vector<double> perf_slots(batch * perf_runs, 0.0);
  std::vector<std::uint8_t> win(batch * 2 * games, 0);
  std::vector<std::atomic<std::size_t>> remaining(batch);
  for (auto& r : remaining) {
    r.store(per_protocol_tasks, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> done{0};

  // Instrumentation is hoisted once per chunk: the flag, the metric
  // handles, and the per-protocol accumulators. Inside the task the only
  // extra work when disabled is one predictable branch; timing reads only
  // the steady clock, never RNG state, so results are unaffected.
  DSA_OBS_PHASE("pra/quantify");
  const bool obs_on = obs::enabled();
  obs::Histogram task_ms;
  obs::Histogram protocol_ms;
  std::vector<std::atomic<std::uint64_t>> protocol_ns(obs_on ? batch : 0);
  std::chrono::steady_clock::time_point chunk_start;
  if (obs_on) {
    auto& registry = obs::Registry::global();
    task_ms = registry.histogram(
        "pra.task_ms", {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000});
    protocol_ms = registry.histogram(
        "pra.protocol_ms",
        {1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000});
    chunk_start = std::chrono::steady_clock::now();
  }

  // One task of the batched grid: up to `width` consecutive slots of the
  // same (protocol, split), evaluated through one batched model call.
  const auto run_batched = [&](std::size_t slot, std::size_t local) {
    const auto p = static_cast<std::uint32_t>(begin + slot);
    if (local < perf_jobs) {
      const std::size_t lane0 = local * width;
      const std::size_t lanes = std::min(width, perf_runs - lane0);
      thread_local std::vector<std::uint64_t> seeds;
      seeds.resize(lanes);
      for (std::size_t w = 0; w < lanes; ++w) {
        seeds[w] = derive_seed(config_.seed, /*tag=*/0x9E4F, p, lane0 + w);
      }
      model_.homogeneous_utility_batch(
          p, config_.population, seeds,
          std::span<double>(&perf_slots[slot * perf_runs + lane0], lanes));
      return;
    }
    local -= perf_jobs;
    const std::size_t split = local / split_jobs;  // 0 = 50/50, 1 = minority
    const std::size_t job = local % split_jobs;
    const std::uint64_t tag = split == 0 ? rob_tag : agg_tag;
    const std::size_t count_pi = split == 0 ? count_rob : count_agg;
    const std::size_t game0 = job * width;
    const std::size_t lanes = std::min(width, games - game0);
    thread_local std::vector<MixedJob> jobs;
    thread_local std::vector<std::pair<double, double>> outs;
    jobs.resize(lanes);
    outs.resize(lanes);
    for (std::size_t w = 0; w < lanes; ++w) {
      const std::size_t game = game0 + w;
      const std::uint32_t opponent = opponent_at(p, game / runs);
      const std::size_t run = game % runs;
      jobs[w] = {opponent,
                 derive_seed(config_.seed, tag,
                             (static_cast<std::uint64_t>(p) << 32) | opponent,
                             run)};
    }
    model_.mixed_utilities_batch(p, count_pi, config_.population - count_pi,
                                 jobs, outs);
    for (std::size_t w = 0; w < lanes; ++w) {
      win[slot * 2 * games + split * games + game0 + w] =
          outs[w].first > outs[w].second ? 1 : 0;
    }
  };

  pool().parallel_for(
      task_count,
      [&](std::size_t t) {
        std::chrono::steady_clock::time_point task_start;
        if (obs_on) task_start = std::chrono::steady_clock::now();
        const std::size_t slot = t / per_protocol_tasks;
        const auto p = static_cast<std::uint32_t>(begin + slot);
        std::size_t local = t % per_protocol_tasks;
        if (batched) {
          run_batched(slot, local);
        } else if (local < perf_runs) {
          perf_slots[slot * perf_runs + local] = model_.homogeneous_utility(
              p, config_.population,
              derive_seed(config_.seed, /*tag=*/0x9E4F, p, local));
        } else {
          local -= perf_runs;
          const std::size_t split = local / games;  // 0 = 50/50, 1 = minority
          const std::size_t game = local % games;
          const std::uint32_t opponent = opponent_at(p, game / runs);
          const std::size_t run = game % runs;
          const std::uint64_t tag = split == 0 ? rob_tag : agg_tag;
          const std::size_t count_pi = split == 0 ? count_rob : count_agg;
          const std::uint64_t seed = derive_seed(
              config_.seed, tag,
              (static_cast<std::uint64_t>(p) << 32) | opponent, run);
          const auto [pi_mean, other_mean] = model_.mixed_utilities(
              p, opponent, count_pi, config_.population - count_pi, seed);
          win[slot * 2 * games + split * games + game] =
              pi_mean > other_mean ? 1 : 0;
        }
        if (obs_on) {
          const auto task_ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - task_start)
                  .count());
          task_ms.observe(static_cast<double>(task_ns) / 1e6);
          protocol_ns[slot].fetch_add(task_ns, std::memory_order_relaxed);
        }
        if (remaining[slot].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          if (obs_on) {
            protocol_ms.observe(
                static_cast<double>(
                    protocol_ns[slot].load(std::memory_order_relaxed)) /
                1e6);
          }
          if (config_.progress) config_.progress(++done, batch);
        }
      },
      grain_for(task_count));

  if (obs_on) {
    auto& registry = obs::Registry::global();
    // Counted in simulations, not jobs, so pra.tasks_per_sec stays a
    // sims/sec throughput figure at every batch width.
    registry.counter("pra.tasks_completed").add(total);
    registry.counter("pra.protocols_quantified").add(batch);
    const double elapsed_s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - chunk_start)
                                 .count();
    if (elapsed_s > 0.0) {
      registry.gauge("pra.tasks_per_sec")
          .set(static_cast<double>(total) / elapsed_s);
    }
  }

  std::vector<ProtocolMetrics> metrics(batch);
  for (std::size_t slot = 0; slot < batch; ++slot) {
    // Mean in run order — bitwise-identical to raw_performance_of.
    metrics[slot].raw_performance = stats::mean(
        std::span<const double>(&perf_slots[slot * perf_runs], perf_runs));
    const std::uint8_t* w = &win[slot * 2 * games];
    std::size_t rob_wins = 0;
    std::size_t agg_wins = 0;
    for (std::size_t g = 0; g < games; ++g) {
      rob_wins += w[g];
      agg_wins += w[games + g];
    }
    metrics[slot].robustness =
        games == 0 ? 0.0
                   : static_cast<double>(rob_wins) /
                         static_cast<double>(games);
    metrics[slot].aggressiveness =
        games == 0 ? 0.0
                   : static_cast<double>(agg_wins) /
                         static_cast<double>(games);
  }
  return metrics;
}

PraScores PraEngine::run() const {
  PraScores scores;
  scores.raw_performance = raw_performance();
  const double best = stats::max_value(scores.raw_performance);
  scores.performance.resize(scores.raw_performance.size(), 0.0);
  if (best > 0.0) {
    for (std::size_t i = 0; i < scores.performance.size(); ++i) {
      scores.performance[i] = scores.raw_performance[i] / best;
    }
  }
  scores.robustness = tournament(0.5);
  scores.aggressiveness = tournament(config_.minority_fraction);
  return scores;
}

}  // namespace dsa::core
