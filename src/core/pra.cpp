#include "core/pra.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dsa::core {

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t tag,
                          std::uint64_t a, std::uint64_t b) {
  std::uint64_t mix = util::hash64(master ^ 0x2545f4914f6cdd1dULL);
  mix ^= util::hash64(tag) * 0x9e3779b97f4a7c15ULL;
  mix ^= util::hash64(a) * 0xff51afd7ed558ccdULL;
  mix ^= util::hash64(b) * 0xc4ceb9fe1a85ec53ULL;
  return util::hash64(mix);
}

PraEngine::PraEngine(const EncounterModel& model, PraConfig config)
    : model_(model), config_(std::move(config)) {
  if (config_.population < 2) {
    throw std::invalid_argument("PraEngine: population must be >= 2");
  }
  if (config_.performance_runs == 0 || config_.encounter_runs == 0) {
    throw std::invalid_argument("PraEngine: run counts must be positive");
  }
  if (!(config_.minority_fraction > 0.0 && config_.minority_fraction < 1.0)) {
    throw std::invalid_argument(
        "PraEngine: minority_fraction must be in (0, 1)");
  }
  if (model_.protocol_count() < 2) {
    throw std::invalid_argument("PraEngine: need at least 2 protocols");
  }
}

std::size_t PraEngine::pi_count(double pi_fraction) const {
  const auto count = static_cast<std::size_t>(
      std::lround(pi_fraction * static_cast<double>(config_.population)));
  return std::clamp<std::size_t>(count, 1, config_.population - 1);
}

std::vector<std::uint32_t> PraEngine::opponents_of(std::uint32_t p) const {
  const std::uint32_t count = model_.protocol_count();
  std::vector<std::uint32_t> all;
  all.reserve(count - 1);
  for (std::uint32_t o = 0; o < count; ++o) {
    if (o != p) all.push_back(o);
  }
  if (config_.opponent_sample == 0 || config_.opponent_sample >= all.size()) {
    return all;
  }
  // A seeded partial Fisher-Yates keeps the sample stable across calls for
  // the same protocol, so tournaments at different splits stay comparable.
  util::Rng rng(derive_seed(config_.seed, /*tag=*/0xA11, p, 0));
  for (std::size_t i = 0; i < config_.opponent_sample; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(all.size() - i));
    std::swap(all[i], all[j]);
  }
  all.resize(config_.opponent_sample);
  return all;
}

double PraEngine::raw_performance_of(std::uint32_t p) const {
  std::vector<double> runs(config_.performance_runs);
  for (std::size_t r = 0; r < config_.performance_runs; ++r) {
    runs[r] = model_.homogeneous_utility(
        p, config_.population, derive_seed(config_.seed, /*tag=*/0x9E4F, p, r));
  }
  return stats::mean(runs);
}

std::vector<double> PraEngine::raw_performance() const {
  const std::uint32_t count = model_.protocol_count();
  std::vector<double> raw(count, 0.0);
  std::atomic<std::size_t> done{0};

  util::ThreadPool pool(config_.threads == 0
                            ? util::ThreadPool::default_thread_count()
                            : config_.threads);
  pool.parallel_for(count, [&](std::size_t p) {
    raw[p] = raw_performance_of(static_cast<std::uint32_t>(p));
    if (config_.progress) config_.progress(++done, count);
  });
  return raw;
}

double PraEngine::win_rate_of(std::uint32_t p, double pi_fraction) const {
  if (!(pi_fraction > 0.0 && pi_fraction < 1.0)) {
    throw std::invalid_argument("PraEngine::win_rate_of: bad split");
  }
  const std::size_t count_pi = pi_count(pi_fraction);
  const std::size_t count_other = config_.population - count_pi;
  // Distinct seeds per split so the 50-50 and 90-10 experiments are
  // independent samples, as in the paper.
  const auto split_tag =
      static_cast<std::uint64_t>(std::llround(pi_fraction * 1000.0));

  const std::vector<std::uint32_t> opponents = opponents_of(p);
  std::size_t wins = 0;
  std::size_t games = 0;
  for (std::uint32_t opponent : opponents) {
    for (std::size_t run = 0; run < config_.encounter_runs; ++run) {
      const std::uint64_t seed =
          derive_seed(config_.seed, split_tag,
                      (static_cast<std::uint64_t>(p) << 32) | opponent, run);
      const auto [pi_mean, other_mean] =
          model_.mixed_utilities(p, opponent, count_pi, count_other, seed);
      // A strict win, as in Sec. 4.3.2 ("otherwise we mark it as a Loss").
      if (pi_mean > other_mean) ++wins;
      ++games;
    }
  }
  return games == 0 ? 0.0
                    : static_cast<double>(wins) / static_cast<double>(games);
}

std::vector<double> PraEngine::tournament(double pi_fraction) const {
  if (!(pi_fraction > 0.0 && pi_fraction < 1.0)) {
    throw std::invalid_argument("PraEngine::tournament: bad split");
  }
  const std::uint32_t count = model_.protocol_count();
  std::vector<double> win_rate(count, 0.0);
  std::atomic<std::size_t> done{0};

  util::ThreadPool pool(config_.threads == 0
                            ? util::ThreadPool::default_thread_count()
                            : config_.threads);
  pool.parallel_for(count, [&](std::size_t p) {
    win_rate[p] = win_rate_of(static_cast<std::uint32_t>(p), pi_fraction);
    if (config_.progress) config_.progress(++done, count);
  });
  return win_rate;
}

PraScores PraEngine::run() const {
  PraScores scores;
  scores.raw_performance = raw_performance();
  const double best = stats::max_value(scores.raw_performance);
  scores.performance.resize(scores.raw_performance.size(), 0.0);
  if (best > 0.0) {
    for (std::size_t i = 0; i < scores.performance.size(); ++i) {
      scores.performance[i] = scores.raw_performance[i] / best;
    }
  }
  scores.robustness = tournament(0.5);
  scores.aggressiveness = tournament(config_.minority_fraction);
  return scores;
}

}  // namespace dsa::core
