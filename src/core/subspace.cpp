#include "core/subspace.hpp"

#include <unordered_set>

namespace dsa::core {

SubspaceModel::SubspaceModel(const EncounterModel& base,
                             std::vector<std::uint32_t> members)
    : base_(base), members_(std::move(members)) {
  if (members_.size() < 2) {
    throw std::invalid_argument("SubspaceModel: need at least 2 members");
  }
  std::unordered_set<std::uint32_t> seen;
  for (std::uint32_t id : members_) {
    if (id >= base_.protocol_count()) {
      throw std::invalid_argument("SubspaceModel: member outside base space");
    }
    if (!seen.insert(id).second) {
      throw std::invalid_argument("SubspaceModel: duplicate member");
    }
  }
}

}  // namespace dsa::core
