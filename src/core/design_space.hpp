// Generic design-space specification (Sec. 3.1): Parameterization names the
// salient dimensions, Actualization lists concrete implementations per
// dimension. A DesignSpace is the cartesian product of its dimensions with a
// dense mixed-radix encoding, which is what a DSA solution concept (e.g. the
// PRA quantification in pra.hpp) systematically explores.
//
// Domains with folded singleton options (like the file-swarming space of
// Sec. 4.2, where "no strangers" collapses 3 policies into one id) may keep a
// bespoke encoding instead — see swarming/protocol.hpp — and still plug into
// the PRA engine, which only needs protocol ids.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dsa::core {

/// One salient dimension and its actualized implementations.
struct Dimension {
  std::string name;
  std::vector<std::string> levels;
};

/// Cartesian product of dimensions with dense ids in [0, size()).
class DesignSpace {
 public:
  DesignSpace() = default;

  /// Adds a dimension; throws std::invalid_argument for empty level lists.
  void add_dimension(std::string name, std::vector<std::string> levels);

  [[nodiscard]] std::size_t dimension_count() const noexcept {
    return dimensions_.size();
  }
  [[nodiscard]] const Dimension& dimension(std::size_t i) const {
    return dimensions_.at(i);
  }

  /// Number of unique protocols (product of level counts; 1 when empty).
  [[nodiscard]] std::uint64_t size() const noexcept;

  /// Level index per dimension for a protocol id; throws std::out_of_range
  /// for id >= size().
  [[nodiscard]] std::vector<std::size_t> decode(std::uint64_t id) const;

  /// Inverse of decode; throws std::invalid_argument on bad level indices.
  [[nodiscard]] std::uint64_t encode(std::span<const std::size_t> levels) const;

  /// "dim=level" summary of a protocol id, e.g.
  /// "Selection=Best, Periodicity=Fast".
  [[nodiscard]] std::string describe(std::uint64_t id) const;

 private:
  std::vector<Dimension> dimensions_;
};

}  // namespace dsa::core
