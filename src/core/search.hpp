// Heuristic exploration of a design space — the solution concept the paper
// names as future work (Sec. 7): "a heuristic based approach ... could be
// needed in situations where a thorough scan of the design space becomes
// infeasible due to its size."
//
// We implement stochastic hill climbing with random restarts. The objective
// blends the two PRA measures a designer typically trades off:
//
//   objective(p) = w * perf(p) / (perf(p) + perf(reference))
//               + (1 - w) * win-rate of p vs a random opponent probe set
//
// where perf() is homogeneous-population utility. The performance term is a
// bounded monotone transform (0.5 means "as good as the reference
// protocol"), so the objective lives in [0, 1) without knowing the space's
// true maximum — exactly the situation a heuristic search is for.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/model.hpp"
#include "util/rng.hpp"

namespace dsa::core {

/// Produces a random neighbor of `current` (a protocol differing in one
/// design dimension, typically). Must return a valid protocol id.
using NeighborFn = std::function<std::uint32_t(std::uint32_t current,
                                               util::Rng& rng)>;

/// Search controls.
struct SearchConfig {
  std::size_t population = 50;
  std::size_t restarts = 4;            // independent climbs
  std::size_t steps_per_restart = 40;  // neighbor proposals per climb
  std::size_t eval_runs = 3;           // homogeneous runs per evaluation
  std::size_t opponent_probes = 8;     // random opponents per evaluation
  double performance_weight = 0.5;     // w above
  std::uint32_t reference_protocol = 0;  // perf scale anchor
  std::uint64_t seed = 7;
};

/// Outcome of a search.
struct SearchResult {
  std::uint32_t best_protocol = 0;
  double best_objective = 0.0;
  /// (protocol, objective) whenever a climb improved its local best.
  std::vector<std::pair<std::uint32_t, double>> trajectory;
  std::size_t evaluations = 0;  // distinct protocols evaluated
};

/// Stochastic hill climber over an EncounterModel's protocol space.
class HeuristicSearch {
 public:
  /// The model must outlive the search. Throws std::invalid_argument on
  /// degenerate configs (zero restarts/steps/runs, weight outside [0, 1],
  /// reference protocol out of range).
  HeuristicSearch(const EncounterModel& model, NeighborFn neighbor,
                  SearchConfig config);

  /// Runs all restarts; deterministic in config.seed.
  [[nodiscard]] SearchResult run();

  /// The blended objective of one protocol (memoized across calls).
  [[nodiscard]] double objective(std::uint32_t protocol);

 private:
  const EncounterModel& model_;
  NeighborFn neighbor_;
  SearchConfig config_;
  double reference_performance_ = -1.0;  // lazily computed
  std::vector<double> memo_;             // -1 = not yet evaluated
};

}  // namespace dsa::core
