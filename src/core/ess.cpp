#include "core/ess.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/pra.hpp"
#include "util/rng.hpp"

namespace dsa::core {

EssQuantifier::EssQuantifier(const EncounterModel& model, EssConfig config)
    : model_(model), config_(config) {
  if (config_.population < 2 || config_.runs == 0) {
    throw std::invalid_argument("EssQuantifier: degenerate config");
  }
  if (!(config_.mutant_fraction > 0.0 && config_.mutant_fraction < 0.5)) {
    throw std::invalid_argument(
        "EssQuantifier: mutant_fraction must be in (0, 0.5) — mutants are a "
        "small deviating group");
  }
  if (model_.protocol_count() < 2) {
    throw std::invalid_argument("EssQuantifier: need >= 2 protocols");
  }
}

std::vector<std::uint32_t> EssQuantifier::mutants_of(
    std::uint32_t protocol) const {
  std::vector<std::uint32_t> all;
  all.reserve(model_.protocol_count() - 1);
  for (std::uint32_t m = 0; m < model_.protocol_count(); ++m) {
    if (m != protocol) all.push_back(m);
  }
  if (config_.mutant_sample == 0 || config_.mutant_sample >= all.size()) {
    return all;
  }
  util::Rng rng(derive_seed(config_.seed, 0xE55, protocol, 0));
  for (std::size_t i = 0; i < config_.mutant_sample; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(all.size() - i));
    std::swap(all[i], all[j]);
  }
  all.resize(config_.mutant_sample);
  return all;
}

EssResult EssQuantifier::stability_of(std::uint32_t protocol) const {
  if (protocol >= model_.protocol_count()) {
    throw std::out_of_range("EssQuantifier: protocol outside the space");
  }
  const auto mutant_count = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::lround(config_.mutant_fraction *
                      static_cast<double>(config_.population))),
      1, config_.population - 1);
  const std::size_t resident_count = config_.population - mutant_count;

  const std::vector<std::uint32_t> mutants = mutants_of(protocol);
  EssResult result;
  std::size_t resisted = 0;
  for (std::uint32_t mutant : mutants) {
    // A mutant invades when it strictly gains in EVERY run (persistent
    // advantage, not a lucky draw).
    bool gains_always = true;
    double last_mutant_utility = 0.0;
    double last_resident_utility = 0.0;
    for (std::size_t run = 0; run < config_.runs; ++run) {
      const auto [mutant_utility, resident_utility] = model_.mixed_utilities(
          mutant, protocol, mutant_count, resident_count,
          derive_seed(config_.seed, 0xE56,
                      (static_cast<std::uint64_t>(protocol) << 32) | mutant,
                      run));
      last_mutant_utility = mutant_utility;
      last_resident_utility = resident_utility;
      if (!(mutant_utility > resident_utility)) {
        gains_always = false;
        break;
      }
    }
    if (gains_always) {
      result.invaders.push_back(EssResult::Invader{
          mutant, last_mutant_utility, last_resident_utility});
    } else {
      ++resisted;
    }
  }
  result.stability = mutants.empty()
                         ? 1.0
                         : static_cast<double>(resisted) /
                               static_cast<double>(mutants.size());
  return result;
}

std::vector<double> EssQuantifier::stability_all() const {
  std::vector<double> stability(model_.protocol_count());
  for (std::uint32_t p = 0; p < model_.protocol_count(); ++p) {
    stability[p] = stability_of(p).stability;
  }
  return stability;
}

}  // namespace dsa::core
