// A second actualization domain for DSA: the gossip-protocol design space
// sketched in the paper's Sec. 3.1 ("Selection function for choosing
// partners, Periodicity of data exchange, Filtering function, Record
// maintenance policy"), actualized into 48 concrete protocols over a
// miniature news-dissemination substrate.
//
// The substrate: every round each peer publishes a fresh news item about
// itself; on its gossip tick it picks a partner per its Selection function
// and pushes a filtered batch of known items; the partner reciprocates,
// ignores, or drops per ITS Reply/record policy. A peer's utility is the
// number of new items it learns per round.
//
// GossipModel implements core::EncounterModel, so the PRA engine, the ESS
// quantifier, and the heuristic search all run on it unchanged — the point
// of the exercise.
#pragma once

#include <cstdint>
#include <vector>

#include "core/design_space.hpp"
#include "core/model.hpp"

namespace dsa::gossip {

/// Dimension levels (indices into the DesignSpace's actualizations).
enum Selection { kRandom = 0, kBest = 1, kLoyal = 2, kSimilar = 3 };
enum Periodicity { kFast = 0, kSlow = 1 };
enum Filtering { kNewest = 0, kRandomPick = 1 };
enum Reply { kRespond = 0, kIgnore = 1, kDropAndIgnore = 2 };

/// The actualized 4 x 2 x 2 x 3 = 48-protocol gossip design space.
core::DesignSpace gossip_space();

/// Simulation controls.
struct GossipConfig {
  std::size_t rounds = 120;
  std::size_t batch = 5;  // items pushed per exchange
};

/// EncounterModel over the gossip space.
class GossipModel final : public core::EncounterModel {
 public:
  explicit GossipModel(GossipConfig config = GossipConfig{});

  [[nodiscard]] std::uint32_t protocol_count() const override;
  [[nodiscard]] std::string protocol_name(std::uint32_t id) const override;

  [[nodiscard]] double homogeneous_utility(std::uint32_t protocol,
                                           std::size_t population,
                                           std::uint64_t seed) const override;
  [[nodiscard]] std::pair<double, double> mixed_utilities(
      std::uint32_t a, std::uint32_t b, std::size_t count_a,
      std::size_t count_b, std::uint64_t seed) const override;

  /// Per-peer items-learned-per-round for an arbitrary mixed population
  /// (protocols[i] = design-space id of peer i). Throws
  /// std::invalid_argument for empty populations or bad ids.
  [[nodiscard]] std::vector<double> simulate(
      const std::vector<std::uint32_t>& protocols, std::uint64_t seed) const;

 private:
  core::DesignSpace space_;
  GossipConfig config_;
};

}  // namespace dsa::gossip
