#include "gossip/gossip_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace dsa::gossip {

core::DesignSpace gossip_space() {
  core::DesignSpace space;
  space.add_dimension("Selection", {"Random", "Best", "Loyal", "Similar"});
  space.add_dimension("Periodicity", {"Fast", "Slow"});
  space.add_dimension("Filtering", {"Newest", "Random"});
  space.add_dimension("Reply", {"Respond", "Ignore", "DropAndIgnore"});
  return space;
}

GossipModel::GossipModel(GossipConfig config)
    : space_(gossip_space()), config_(config) {
  if (config_.rounds == 0 || config_.batch == 0) {
    throw std::invalid_argument("GossipModel: degenerate config");
  }
}

std::uint32_t GossipModel::protocol_count() const {
  return static_cast<std::uint32_t>(space_.size());
}

std::string GossipModel::protocol_name(std::uint32_t id) const {
  return space_.describe(id);
}

namespace {

std::size_t pick_random(util::Rng& rng, std::size_t n, std::size_t self) {
  std::size_t j;
  do {
    j = rng.below(n);
  } while (j == self);
  return j;
}

/// Sends up to `batch` items from `from` to `to`; returns how many were
/// actually news to the receiver. `known[i][p]` is the newest round-stamp
/// of producer p's news known to peer i (-1 = unknown).
double transfer(std::vector<std::vector<std::int64_t>>& known,
                std::size_t from, std::size_t to, bool newest_first,
                std::size_t batch, util::Rng& rng) {
  const std::size_t n = known.size();
  std::vector<std::size_t> producers;
  for (std::size_t p = 0; p < n; ++p) {
    if (known[from][p] >= 0) producers.push_back(p);
  }
  if (newest_first) {
    std::sort(producers.begin(), producers.end(),
              [&](std::size_t a, std::size_t b) {
                return known[from][a] > known[from][b];
              });
  } else {
    rng.shuffle(producers);
  }
  double news = 0.0;
  for (std::size_t idx = 0; idx < producers.size() && idx < batch; ++idx) {
    const std::size_t p = producers[idx];
    if (known[from][p] > known[to][p]) {
      known[to][p] = known[from][p];
      news += 1.0;
    }
  }
  return news;
}

}  // namespace

std::vector<double> GossipModel::simulate(
    const std::vector<std::uint32_t>& protocols, std::uint64_t seed) const {
  const std::size_t n = protocols.size();
  if (n < 2) {
    throw std::invalid_argument("GossipModel::simulate: need >= 2 peers");
  }
  std::vector<std::vector<std::size_t>> levels;
  levels.reserve(n);
  for (std::uint32_t id : protocols) {
    levels.push_back(space_.decode(id));  // throws on bad ids
  }

  util::Rng rng(seed);
  std::vector<std::vector<std::int64_t>> known(
      n, std::vector<std::int64_t>(n, -1));
  std::vector<double> gained(n, 0.0);
  std::vector<std::vector<double>> given(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<std::uint32_t>> streak(
      n, std::vector<std::uint32_t>(n, 0));

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      known[i][i] = static_cast<std::int64_t>(round);
    }

    for (std::size_t i = 0; i < n; ++i) {
      if (levels[i][1] == kSlow && round % 2 == 1) continue;

      // Selection function.
      std::size_t partner = n;
      switch (levels[i][0]) {
        case kRandom:
          partner = pick_random(rng, n, i);
          break;
        case kBest: {
          double best = -1.0;
          for (std::size_t j = 0; j < n; ++j) {
            if (j != i && given[i][j] > best) {
              best = given[i][j];
              partner = j;
            }
          }
          if (best <= 0.0) partner = pick_random(rng, n, i);
          break;
        }
        case kLoyal: {
          std::uint32_t best = 0;
          for (std::size_t j = 0; j < n; ++j) {
            if (j != i && streak[i][j] > best) {
              best = streak[i][j];
              partner = j;
            }
          }
          if (best == 0) partner = pick_random(rng, n, i);
          break;
        }
        case kSimilar: {
          // Ring distance as the similarity proxy; random scan start
          // breaks ties fairly.
          std::size_t best_distance = n;
          const std::size_t offset = rng.below(n);
          for (std::size_t raw = 0; raw < n; ++raw) {
            const std::size_t j = (raw + offset) % n;
            if (j == i) continue;
            const std::size_t d = std::min((i + n - j) % n, (j + n - i) % n);
            if (d < best_distance) {
              best_distance = d;
              partner = j;
            }
          }
          break;
        }
      }
      if (partner >= n) continue;

      const double pushed = transfer(known, i, partner,
                                     levels[i][2] == kNewest, config_.batch,
                                     rng);
      gained[partner] += pushed;
      given[partner][i] += pushed;

      double replied = 0.0;
      const std::size_t partner_reply = levels[partner][3];
      if (partner_reply == kRespond) {
        replied = transfer(known, partner, i, levels[partner][2] == kNewest,
                           config_.batch, rng);
        gained[i] += replied;
        given[i][partner] += replied;
      } else if (partner_reply == kDropAndIgnore) {
        // Record maintenance "drop": discard everything just received
        // (and everything else foreign) instead of storing it.
        gained[partner] -= pushed;
        for (std::size_t producer = 0; producer < n; ++producer) {
          if (producer != partner) known[partner][producer] = -1;
        }
      }
      streak[i][partner] = replied > 0.0 ? streak[i][partner] + 1 : 0;
    }
  }

  std::vector<double> per_round(n);
  for (std::size_t i = 0; i < n; ++i) {
    per_round[i] = gained[i] / static_cast<double>(config_.rounds);
  }
  return per_round;
}

double GossipModel::homogeneous_utility(std::uint32_t protocol,
                                        std::size_t population,
                                        std::uint64_t seed) const {
  const std::vector<std::uint32_t> protocols(population, protocol);
  const auto per_peer = simulate(protocols, seed);
  double total = 0.0;
  for (double v : per_peer) total += v;
  return total / static_cast<double>(population);
}

std::pair<double, double> GossipModel::mixed_utilities(
    std::uint32_t a, std::uint32_t b, std::size_t count_a,
    std::size_t count_b, std::uint64_t seed) const {
  std::vector<std::uint32_t> protocols;
  protocols.reserve(count_a + count_b);
  protocols.insert(protocols.end(), count_a, a);
  protocols.insert(protocols.end(), count_b, b);
  const auto per_peer = simulate(protocols, seed);
  double sum_a = 0.0, sum_b = 0.0;
  for (std::size_t i = 0; i < count_a; ++i) sum_a += per_peer[i];
  for (std::size_t i = count_a; i < per_peer.size(); ++i) {
    sum_b += per_peer[i];
  }
  return {count_a ? sum_a / static_cast<double>(count_a) : 0.0,
          count_b ? sum_b / static_cast<double>(count_b) : 0.0};
}

}  // namespace dsa::gossip
