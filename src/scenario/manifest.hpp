// Scenario manifest I/O, extracted from the runner so resident frontends
// (the `dsa_cli serve` daemon's result cache) can read, verify, and append
// the same JSONL format the crash-tolerant runner writes.
//
// Format — one JSON document per newline-terminated line:
//   line 1:  {"scenario":...,"kind":...,"spec_fp":...,"jobs":N,"columns":[..]}
//   line 2+: {"job":i,"fp":"<16 hex>","ms":X,"rows":[["..."],...]}
// Only newline-terminated lines count; a torn tail from a kill mid-write is
// untrusted. Every line is verified against the current plan before being
// trusted, and load_manifest() reports *why* a file was distrusted as a
// typed reason (ManifestTrust) instead of silently returning an empty
// resume state.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "scenario/plan.hpp"
#include "util/json.hpp"

namespace dsa::scenario {

/// Rows one job contributes to the merged output, in job_columns order.
using JobRows = std::vector<std::vector<std::string>>;

/// `value` as 16 lowercase hex digits — the wire form of every fingerprint
/// in manifests and the serve cache.
[[nodiscard]] std::string hex16(std::uint64_t value);

/// Why a manifest's contents were (or were not) trusted. Ordered by where
/// in the file the anomaly was found; the *first* anomaly wins, and
/// everything before it remains usable as a valid prefix.
enum class ManifestTrust {
  kTrusted,        // every byte parsed and verified against the plan
  kMissing,        // no file (or unreadable) — nothing to resume
  kForeignHeader,  // header absent, unparsable, or for a different plan
  kBadJobLine,     // a job line was unparsable or failed verification
  kTornTail,       // trailing bytes without a newline (killed mid-write)
};

[[nodiscard]] const char* to_string(ManifestTrust trust);

/// Resume state recovered from a manifest file.
struct ManifestData {
  /// Bytes of trusted, newline-terminated lines. The runner truncates the
  /// file to this length before appending so it never chases a torn tail.
  std::size_t valid_bytes = 0;
  bool header_ok = false;
  ManifestTrust trust = ManifestTrust::kMissing;
  /// Human-readable detail for any trust != kTrusted (which line, what was
  /// wrong). Empty when trusted.
  std::string distrust_reason;
  std::vector<bool> have;       // per plan job: rows recovered?
  std::vector<JobRows> rows;    // per plan job: the recovered rows
  std::vector<double> ms;       // per-job wall time; -1 when the line had none
};

/// The header line for `plan` (no trailing newline).
[[nodiscard]] std::string manifest_header_line(const Plan& plan);

/// One completed-job line (no trailing newline). wall_ms is provenance
/// (latency summaries), never identity: resume validation ignores it, and
/// it feeds no fingerprint or merged cell.
[[nodiscard]] std::string manifest_job_line(const Job& job,
                                            const JobRows& rows,
                                            double wall_ms);

/// A structurally-parsed job line, before any plan verification. The serve
/// cache stores these lines keyed by fingerprint alone, so it parses them
/// without a plan in hand.
struct ParsedJobLine {
  std::size_t index = 0;   // "job": position in the originating plan
  std::string fp_hex;      // "fp": 16 lowercase hex digits
  double ms = -1.0;        // "ms": wall time, -1 when absent
  JobRows rows;
};

/// Parses one already-JSON-parsed line as a job line. Returns nullopt when
/// the shape is wrong (missing/ill-typed fields, non-string cells). Does
/// NOT verify fingerprints or row widths against any plan.
[[nodiscard]] std::optional<ParsedJobLine> parse_job_line(
    const util::json::Value& value);

/// Loads and verifies `path` against `plan`. Never throws on bad content:
/// the valid prefix is returned and `trust` + `distrust_reason` say why the
/// rest (if any) was rejected. A foreign or unparsable header distrusts the
/// whole file (valid_bytes == 0, nothing recovered).
[[nodiscard]] ManifestData load_manifest(const Plan& plan,
                                         const std::filesystem::path& path);

}  // namespace dsa::scenario
