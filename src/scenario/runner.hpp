// The crash-tolerant job runner behind `dsa_cli run`.
//
// Jobs execute on a shared ThreadPool with per-job retry. Every finished
// job's rows are appended — one flushed JSONL line — to a manifest next to
// the output (`<output>.manifest-<spec fingerprint>.jsonl`), so a killed
// run loses at most the jobs in flight. Re-running the same spec loads the
// manifest, verifies the header and per-job fingerprints, skips completed
// jobs, and finishes the rest; because per-job numbers are deterministic
// and the merge walks jobs in plan order, the merged output is
// byte-identical to an uninterrupted single-thread run. The merge itself is
// atomic (write-then-rename via CsvTable::save), and the manifest is
// removed once the output exists.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/plan.hpp"

namespace dsa::scenario {

struct RunOptions {
  /// Worker threads; 0 = spec.threads, which itself defaults to hardware
  /// concurrency. Never affects the output bytes.
  std::size_t threads = 0;
  /// Progress meter + resume notes on stderr.
  bool verbose = true;
  /// Keep the manifest after a successful merge (debugging aid).
  bool keep_manifest = false;
  /// Test hook: abort the run (throwing RunAborted) after this many jobs
  /// have executed — a deterministic stand-in for kill -9. 0 = off.
  std::size_t max_jobs = 0;
  /// Test hook: invoked before each execution attempt of a job as
  /// (job index, attempt starting at 0); throwing makes the attempt fail.
  std::function<void(std::size_t, std::size_t)> before_attempt;
};

struct RunReport {
  std::size_t total = 0;      // jobs in the plan
  std::size_t executed = 0;   // jobs run in this process
  std::size_t skipped = 0;    // jobs restored from the manifest
  std::size_t retried = 0;    // failed attempts that were retried
  std::filesystem::path output;
  std::filesystem::path manifest;
  /// True when the output already existed and nothing ran.
  bool reused_output = false;
  /// Per-job wall-time summary over every job with a recorded latency
  /// (jobs executed here plus manifest-resumed jobs whose lines carried
  /// an "ms" field). All zero / slowest_job == -1 when nothing recorded.
  double job_ms_p50 = 0.0;
  double job_ms_p90 = 0.0;
  double job_ms_p99 = 0.0;
  std::int64_t slowest_job = -1;  // plan index of the slowest job
  std::string slowest_label;
  double slowest_ms = 0.0;
};

/// Thrown when RunOptions::max_jobs aborts a run. The manifest keeps every
/// job that finished before the abort.
struct RunAborted : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Where the plan's manifest lives: `<output>.manifest-<16 hex>.jsonl`.
[[nodiscard]] std::filesystem::path manifest_path(const Plan& plan);

/// Job indices a manifest already holds valid results for (ascending).
/// Missing, foreign, or torn manifests yield the valid prefix (possibly
/// empty) — the same data a resumed run would reuse.
[[nodiscard]] std::vector<std::size_t> completed_jobs_in_manifest(
    const Plan& plan);

/// Executes the plan (see file comment for resume semantics). Throws
/// RunAborted on the max_jobs hook and std::runtime_error when a job
/// exhausts its retries (completed jobs stay in the manifest either way).
RunReport run_scenario(const Plan& plan, const RunOptions& options = {});

}  // namespace dsa::scenario
